
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_cache.cc" "tests/CMakeFiles/storemlp_tests.dir/test_cache.cc.o" "gcc" "tests/CMakeFiles/storemlp_tests.dir/test_cache.cc.o.d"
  "/root/repo/tests/test_cache_sweep.cc" "tests/CMakeFiles/storemlp_tests.dir/test_cache_sweep.cc.o" "gcc" "tests/CMakeFiles/storemlp_tests.dir/test_cache_sweep.cc.o.d"
  "/root/repo/tests/test_coherence.cc" "tests/CMakeFiles/storemlp_tests.dir/test_coherence.cc.o" "gcc" "tests/CMakeFiles/storemlp_tests.dir/test_coherence.cc.o.d"
  "/root/repo/tests/test_config_io.cc" "tests/CMakeFiles/storemlp_tests.dir/test_config_io.cc.o" "gcc" "tests/CMakeFiles/storemlp_tests.dir/test_config_io.cc.o.d"
  "/root/repo/tests/test_consistency.cc" "tests/CMakeFiles/storemlp_tests.dir/test_consistency.cc.o" "gcc" "tests/CMakeFiles/storemlp_tests.dir/test_consistency.cc.o.d"
  "/root/repo/tests/test_cpi_model.cc" "tests/CMakeFiles/storemlp_tests.dir/test_cpi_model.cc.o" "gcc" "tests/CMakeFiles/storemlp_tests.dir/test_cpi_model.cc.o.d"
  "/root/repo/tests/test_dual_core.cc" "tests/CMakeFiles/storemlp_tests.dir/test_dual_core.cc.o" "gcc" "tests/CMakeFiles/storemlp_tests.dir/test_dual_core.cc.o.d"
  "/root/repo/tests/test_engine_edges.cc" "tests/CMakeFiles/storemlp_tests.dir/test_engine_edges.cc.o" "gcc" "tests/CMakeFiles/storemlp_tests.dir/test_engine_edges.cc.o.d"
  "/root/repo/tests/test_engine_matrix.cc" "tests/CMakeFiles/storemlp_tests.dir/test_engine_matrix.cc.o" "gcc" "tests/CMakeFiles/storemlp_tests.dir/test_engine_matrix.cc.o.d"
  "/root/repo/tests/test_figure_shapes.cc" "tests/CMakeFiles/storemlp_tests.dir/test_figure_shapes.cc.o" "gcc" "tests/CMakeFiles/storemlp_tests.dir/test_figure_shapes.cc.o.d"
  "/root/repo/tests/test_generator.cc" "tests/CMakeFiles/storemlp_tests.dir/test_generator.cc.o" "gcc" "tests/CMakeFiles/storemlp_tests.dir/test_generator.cc.o.d"
  "/root/repo/tests/test_locks.cc" "tests/CMakeFiles/storemlp_tests.dir/test_locks.cc.o" "gcc" "tests/CMakeFiles/storemlp_tests.dir/test_locks.cc.o.d"
  "/root/repo/tests/test_mlp_sim.cc" "tests/CMakeFiles/storemlp_tests.dir/test_mlp_sim.cc.o" "gcc" "tests/CMakeFiles/storemlp_tests.dir/test_mlp_sim.cc.o.d"
  "/root/repo/tests/test_moesi.cc" "tests/CMakeFiles/storemlp_tests.dir/test_moesi.cc.o" "gcc" "tests/CMakeFiles/storemlp_tests.dir/test_moesi.cc.o.d"
  "/root/repo/tests/test_paper_examples.cc" "tests/CMakeFiles/storemlp_tests.dir/test_paper_examples.cc.o" "gcc" "tests/CMakeFiles/storemlp_tests.dir/test_paper_examples.cc.o.d"
  "/root/repo/tests/test_properties.cc" "tests/CMakeFiles/storemlp_tests.dir/test_properties.cc.o" "gcc" "tests/CMakeFiles/storemlp_tests.dir/test_properties.cc.o.d"
  "/root/repo/tests/test_replacement.cc" "tests/CMakeFiles/storemlp_tests.dir/test_replacement.cc.o" "gcc" "tests/CMakeFiles/storemlp_tests.dir/test_replacement.cc.o.d"
  "/root/repo/tests/test_rng.cc" "tests/CMakeFiles/storemlp_tests.dir/test_rng.cc.o" "gcc" "tests/CMakeFiles/storemlp_tests.dir/test_rng.cc.o.d"
  "/root/repo/tests/test_runner.cc" "tests/CMakeFiles/storemlp_tests.dir/test_runner.cc.o" "gcc" "tests/CMakeFiles/storemlp_tests.dir/test_runner.cc.o.d"
  "/root/repo/tests/test_sim_result.cc" "tests/CMakeFiles/storemlp_tests.dir/test_sim_result.cc.o" "gcc" "tests/CMakeFiles/storemlp_tests.dir/test_sim_result.cc.o.d"
  "/root/repo/tests/test_smac.cc" "tests/CMakeFiles/storemlp_tests.dir/test_smac.cc.o" "gcc" "tests/CMakeFiles/storemlp_tests.dir/test_smac.cc.o.d"
  "/root/repo/tests/test_smoke.cc" "tests/CMakeFiles/storemlp_tests.dir/test_smoke.cc.o" "gcc" "tests/CMakeFiles/storemlp_tests.dir/test_smoke.cc.o.d"
  "/root/repo/tests/test_stats.cc" "tests/CMakeFiles/storemlp_tests.dir/test_stats.cc.o" "gcc" "tests/CMakeFiles/storemlp_tests.dir/test_stats.cc.o.d"
  "/root/repo/tests/test_trace.cc" "tests/CMakeFiles/storemlp_tests.dir/test_trace.cc.o" "gcc" "tests/CMakeFiles/storemlp_tests.dir/test_trace.cc.o.d"
  "/root/repo/tests/test_trace_v2.cc" "tests/CMakeFiles/storemlp_tests.dir/test_trace_v2.cc.o" "gcc" "tests/CMakeFiles/storemlp_tests.dir/test_trace_v2.cc.o.d"
  "/root/repo/tests/test_transactional.cc" "tests/CMakeFiles/storemlp_tests.dir/test_transactional.cc.o" "gcc" "tests/CMakeFiles/storemlp_tests.dir/test_transactional.cc.o.d"
  "/root/repo/tests/test_uarch.cc" "tests/CMakeFiles/storemlp_tests.dir/test_uarch.cc.o" "gcc" "tests/CMakeFiles/storemlp_tests.dir/test_uarch.cc.o.d"
  "/root/repo/tests/test_workload_stats.cc" "tests/CMakeFiles/storemlp_tests.dir/test_workload_stats.cc.o" "gcc" "tests/CMakeFiles/storemlp_tests.dir/test_workload_stats.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/storemlp.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
