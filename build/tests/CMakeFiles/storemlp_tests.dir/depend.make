# Empty dependencies file for storemlp_tests.
# This may be replaced when dependencies are built.
