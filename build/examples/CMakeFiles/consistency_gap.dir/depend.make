# Empty dependencies file for consistency_gap.
# This may be replaced when dependencies are built.
