file(REMOVE_RECURSE
  "CMakeFiles/consistency_gap.dir/consistency_gap.cpp.o"
  "CMakeFiles/consistency_gap.dir/consistency_gap.cpp.o.d"
  "consistency_gap"
  "consistency_gap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/consistency_gap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
