file(REMOVE_RECURSE
  "CMakeFiles/store_optimization_study.dir/store_optimization_study.cpp.o"
  "CMakeFiles/store_optimization_study.dir/store_optimization_study.cpp.o.d"
  "store_optimization_study"
  "store_optimization_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/store_optimization_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
