# Empty compiler generated dependencies file for store_optimization_study.
# This may be replaced when dependencies are built.
