file(REMOVE_RECURSE
  "CMakeFiles/dual_core_study.dir/dual_core_study.cpp.o"
  "CMakeFiles/dual_core_study.dir/dual_core_study.cpp.o.d"
  "dual_core_study"
  "dual_core_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dual_core_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
