# Empty compiler generated dependencies file for dual_core_study.
# This may be replaced when dependencies are built.
