file(REMOVE_RECURSE
  "CMakeFiles/smac_sizing.dir/smac_sizing.cpp.o"
  "CMakeFiles/smac_sizing.dir/smac_sizing.cpp.o.d"
  "smac_sizing"
  "smac_sizing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/smac_sizing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
