# Empty dependencies file for smac_sizing.
# This may be replaced when dependencies are built.
