file(REMOVE_RECURSE
  "CMakeFiles/table1_missrates.dir/table1_missrates.cc.o"
  "CMakeFiles/table1_missrates.dir/table1_missrates.cc.o.d"
  "table1_missrates"
  "table1_missrates.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_missrates.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
