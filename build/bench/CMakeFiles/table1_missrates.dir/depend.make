# Empty dependencies file for table1_missrates.
# This may be replaced when dependencies are built.
