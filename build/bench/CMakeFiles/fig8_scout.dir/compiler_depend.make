# Empty compiler generated dependencies file for fig8_scout.
# This may be replaced when dependencies are built.
