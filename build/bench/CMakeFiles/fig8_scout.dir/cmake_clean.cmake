file(REMOVE_RECURSE
  "CMakeFiles/fig8_scout.dir/fig8_scout.cc.o"
  "CMakeFiles/fig8_scout.dir/fig8_scout.cc.o.d"
  "fig8_scout"
  "fig8_scout.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_scout.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
