file(REMOVE_RECURSE
  "CMakeFiles/ablate_coalescing.dir/ablate_coalescing.cc.o"
  "CMakeFiles/ablate_coalescing.dir/ablate_coalescing.cc.o.d"
  "ablate_coalescing"
  "ablate_coalescing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablate_coalescing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
