# Empty dependencies file for ablate_coalescing.
# This may be replaced when dependencies are built.
