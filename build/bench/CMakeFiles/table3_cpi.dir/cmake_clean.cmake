file(REMOVE_RECURSE
  "CMakeFiles/table3_cpi.dir/table3_cpi.cc.o"
  "CMakeFiles/table3_cpi.dir/table3_cpi.cc.o.d"
  "table3_cpi"
  "table3_cpi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_cpi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
