# Empty dependencies file for table3_cpi.
# This may be replaced when dependencies are built.
