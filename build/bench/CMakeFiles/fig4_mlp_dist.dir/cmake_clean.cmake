file(REMOVE_RECURSE
  "CMakeFiles/fig4_mlp_dist.dir/fig4_mlp_dist.cc.o"
  "CMakeFiles/fig4_mlp_dist.dir/fig4_mlp_dist.cc.o.d"
  "fig4_mlp_dist"
  "fig4_mlp_dist.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_mlp_dist.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
