# Empty compiler generated dependencies file for fig4_mlp_dist.
# This may be replaced when dependencies are built.
