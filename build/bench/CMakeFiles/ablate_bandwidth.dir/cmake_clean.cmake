file(REMOVE_RECURSE
  "CMakeFiles/ablate_bandwidth.dir/ablate_bandwidth.cc.o"
  "CMakeFiles/ablate_bandwidth.dir/ablate_bandwidth.cc.o.d"
  "ablate_bandwidth"
  "ablate_bandwidth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablate_bandwidth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
