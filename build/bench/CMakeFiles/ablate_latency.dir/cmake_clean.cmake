file(REMOVE_RECURSE
  "CMakeFiles/ablate_latency.dir/ablate_latency.cc.o"
  "CMakeFiles/ablate_latency.dir/ablate_latency.cc.o.d"
  "ablate_latency"
  "ablate_latency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablate_latency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
