# Empty dependencies file for perf_throughput.
# This may be replaced when dependencies are built.
