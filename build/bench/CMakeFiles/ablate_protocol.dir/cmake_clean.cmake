file(REMOVE_RECURSE
  "CMakeFiles/ablate_protocol.dir/ablate_protocol.cc.o"
  "CMakeFiles/ablate_protocol.dir/ablate_protocol.cc.o.d"
  "ablate_protocol"
  "ablate_protocol.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablate_protocol.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
