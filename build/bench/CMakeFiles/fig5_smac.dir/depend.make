# Empty dependencies file for fig5_smac.
# This may be replaced when dependencies are built.
