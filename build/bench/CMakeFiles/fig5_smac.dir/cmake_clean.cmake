file(REMOVE_RECURSE
  "CMakeFiles/fig5_smac.dir/fig5_smac.cc.o"
  "CMakeFiles/fig5_smac.dir/fig5_smac.cc.o.d"
  "fig5_smac"
  "fig5_smac.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_smac.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
