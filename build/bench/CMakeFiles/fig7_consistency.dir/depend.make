# Empty dependencies file for fig7_consistency.
# This may be replaced when dependencies are built.
