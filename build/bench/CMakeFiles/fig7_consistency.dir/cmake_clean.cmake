file(REMOVE_RECURSE
  "CMakeFiles/fig7_consistency.dir/fig7_consistency.cc.o"
  "CMakeFiles/fig7_consistency.dir/fig7_consistency.cc.o.d"
  "fig7_consistency"
  "fig7_consistency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_consistency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
