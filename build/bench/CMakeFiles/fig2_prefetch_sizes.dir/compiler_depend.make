# Empty compiler generated dependencies file for fig2_prefetch_sizes.
# This may be replaced when dependencies are built.
