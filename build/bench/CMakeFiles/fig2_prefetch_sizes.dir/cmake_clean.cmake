file(REMOVE_RECURSE
  "CMakeFiles/fig2_prefetch_sizes.dir/fig2_prefetch_sizes.cc.o"
  "CMakeFiles/fig2_prefetch_sizes.dir/fig2_prefetch_sizes.cc.o.d"
  "fig2_prefetch_sizes"
  "fig2_prefetch_sizes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_prefetch_sizes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
