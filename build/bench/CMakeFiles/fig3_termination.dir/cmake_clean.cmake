file(REMOVE_RECURSE
  "CMakeFiles/fig3_termination.dir/fig3_termination.cc.o"
  "CMakeFiles/fig3_termination.dir/fig3_termination.cc.o.d"
  "fig3_termination"
  "fig3_termination.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_termination.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
