# Empty compiler generated dependencies file for fig3_termination.
# This may be replaced when dependencies are built.
