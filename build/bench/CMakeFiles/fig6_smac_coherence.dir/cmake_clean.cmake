file(REMOVE_RECURSE
  "CMakeFiles/fig6_smac_coherence.dir/fig6_smac_coherence.cc.o"
  "CMakeFiles/fig6_smac_coherence.dir/fig6_smac_coherence.cc.o.d"
  "fig6_smac_coherence"
  "fig6_smac_coherence.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_smac_coherence.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
