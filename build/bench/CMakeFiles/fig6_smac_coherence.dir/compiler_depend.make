# Empty compiler generated dependencies file for fig6_smac_coherence.
# This may be replaced when dependencies are built.
