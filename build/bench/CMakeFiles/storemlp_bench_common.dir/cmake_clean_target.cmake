file(REMOVE_RECURSE
  "libstoremlp_bench_common.a"
)
