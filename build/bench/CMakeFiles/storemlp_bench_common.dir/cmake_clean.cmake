file(REMOVE_RECURSE
  "CMakeFiles/storemlp_bench_common.dir/bench_common.cc.o"
  "CMakeFiles/storemlp_bench_common.dir/bench_common.cc.o.d"
  "libstoremlp_bench_common.a"
  "libstoremlp_bench_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/storemlp_bench_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
