# Empty compiler generated dependencies file for storemlp_bench_common.
# This may be replaced when dependencies are built.
