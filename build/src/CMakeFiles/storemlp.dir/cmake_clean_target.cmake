file(REMOVE_RECURSE
  "libstoremlp.a"
)
