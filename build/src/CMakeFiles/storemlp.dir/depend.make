# Empty dependencies file for storemlp.
# This may be replaced when dependencies are built.
