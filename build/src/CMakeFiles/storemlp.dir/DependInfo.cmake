
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cache/hierarchy.cc" "src/CMakeFiles/storemlp.dir/cache/hierarchy.cc.o" "gcc" "src/CMakeFiles/storemlp.dir/cache/hierarchy.cc.o.d"
  "/root/repo/src/cache/set_assoc_cache.cc" "src/CMakeFiles/storemlp.dir/cache/set_assoc_cache.cc.o" "gcc" "src/CMakeFiles/storemlp.dir/cache/set_assoc_cache.cc.o.d"
  "/root/repo/src/cache/tlb.cc" "src/CMakeFiles/storemlp.dir/cache/tlb.cc.o" "gcc" "src/CMakeFiles/storemlp.dir/cache/tlb.cc.o.d"
  "/root/repo/src/coherence/bus.cc" "src/CMakeFiles/storemlp.dir/coherence/bus.cc.o" "gcc" "src/CMakeFiles/storemlp.dir/coherence/bus.cc.o.d"
  "/root/repo/src/coherence/chip.cc" "src/CMakeFiles/storemlp.dir/coherence/chip.cc.o" "gcc" "src/CMakeFiles/storemlp.dir/coherence/chip.cc.o.d"
  "/root/repo/src/coherence/smac.cc" "src/CMakeFiles/storemlp.dir/coherence/smac.cc.o" "gcc" "src/CMakeFiles/storemlp.dir/coherence/smac.cc.o.d"
  "/root/repo/src/coherence/traffic.cc" "src/CMakeFiles/storemlp.dir/coherence/traffic.cc.o" "gcc" "src/CMakeFiles/storemlp.dir/coherence/traffic.cc.o.d"
  "/root/repo/src/consistency/memory_model.cc" "src/CMakeFiles/storemlp.dir/consistency/memory_model.cc.o" "gcc" "src/CMakeFiles/storemlp.dir/consistency/memory_model.cc.o.d"
  "/root/repo/src/consistency/sle.cc" "src/CMakeFiles/storemlp.dir/consistency/sle.cc.o" "gcc" "src/CMakeFiles/storemlp.dir/consistency/sle.cc.o.d"
  "/root/repo/src/consistency/transactional.cc" "src/CMakeFiles/storemlp.dir/consistency/transactional.cc.o" "gcc" "src/CMakeFiles/storemlp.dir/consistency/transactional.cc.o.d"
  "/root/repo/src/core/config_io.cc" "src/CMakeFiles/storemlp.dir/core/config_io.cc.o" "gcc" "src/CMakeFiles/storemlp.dir/core/config_io.cc.o.d"
  "/root/repo/src/core/cpi_model.cc" "src/CMakeFiles/storemlp.dir/core/cpi_model.cc.o" "gcc" "src/CMakeFiles/storemlp.dir/core/cpi_model.cc.o.d"
  "/root/repo/src/core/dual_core.cc" "src/CMakeFiles/storemlp.dir/core/dual_core.cc.o" "gcc" "src/CMakeFiles/storemlp.dir/core/dual_core.cc.o.d"
  "/root/repo/src/core/mlp_sim.cc" "src/CMakeFiles/storemlp.dir/core/mlp_sim.cc.o" "gcc" "src/CMakeFiles/storemlp.dir/core/mlp_sim.cc.o.d"
  "/root/repo/src/core/runner.cc" "src/CMakeFiles/storemlp.dir/core/runner.cc.o" "gcc" "src/CMakeFiles/storemlp.dir/core/runner.cc.o.d"
  "/root/repo/src/core/scout.cc" "src/CMakeFiles/storemlp.dir/core/scout.cc.o" "gcc" "src/CMakeFiles/storemlp.dir/core/scout.cc.o.d"
  "/root/repo/src/core/sim_config.cc" "src/CMakeFiles/storemlp.dir/core/sim_config.cc.o" "gcc" "src/CMakeFiles/storemlp.dir/core/sim_config.cc.o.d"
  "/root/repo/src/core/sim_result.cc" "src/CMakeFiles/storemlp.dir/core/sim_result.cc.o" "gcc" "src/CMakeFiles/storemlp.dir/core/sim_result.cc.o.d"
  "/root/repo/src/stats/counter.cc" "src/CMakeFiles/storemlp.dir/stats/counter.cc.o" "gcc" "src/CMakeFiles/storemlp.dir/stats/counter.cc.o.d"
  "/root/repo/src/stats/histogram.cc" "src/CMakeFiles/storemlp.dir/stats/histogram.cc.o" "gcc" "src/CMakeFiles/storemlp.dir/stats/histogram.cc.o.d"
  "/root/repo/src/stats/table.cc" "src/CMakeFiles/storemlp.dir/stats/table.cc.o" "gcc" "src/CMakeFiles/storemlp.dir/stats/table.cc.o.d"
  "/root/repo/src/trace/generator.cc" "src/CMakeFiles/storemlp.dir/trace/generator.cc.o" "gcc" "src/CMakeFiles/storemlp.dir/trace/generator.cc.o.d"
  "/root/repo/src/trace/lock_detector.cc" "src/CMakeFiles/storemlp.dir/trace/lock_detector.cc.o" "gcc" "src/CMakeFiles/storemlp.dir/trace/lock_detector.cc.o.d"
  "/root/repo/src/trace/rewriter.cc" "src/CMakeFiles/storemlp.dir/trace/rewriter.cc.o" "gcc" "src/CMakeFiles/storemlp.dir/trace/rewriter.cc.o.d"
  "/root/repo/src/trace/trace.cc" "src/CMakeFiles/storemlp.dir/trace/trace.cc.o" "gcc" "src/CMakeFiles/storemlp.dir/trace/trace.cc.o.d"
  "/root/repo/src/trace/trace_io.cc" "src/CMakeFiles/storemlp.dir/trace/trace_io.cc.o" "gcc" "src/CMakeFiles/storemlp.dir/trace/trace_io.cc.o.d"
  "/root/repo/src/trace/workload.cc" "src/CMakeFiles/storemlp.dir/trace/workload.cc.o" "gcc" "src/CMakeFiles/storemlp.dir/trace/workload.cc.o.d"
  "/root/repo/src/uarch/branch_predictor.cc" "src/CMakeFiles/storemlp.dir/uarch/branch_predictor.cc.o" "gcc" "src/CMakeFiles/storemlp.dir/uarch/branch_predictor.cc.o.d"
  "/root/repo/src/uarch/regdep.cc" "src/CMakeFiles/storemlp.dir/uarch/regdep.cc.o" "gcc" "src/CMakeFiles/storemlp.dir/uarch/regdep.cc.o.d"
  "/root/repo/src/uarch/store_buffer.cc" "src/CMakeFiles/storemlp.dir/uarch/store_buffer.cc.o" "gcc" "src/CMakeFiles/storemlp.dir/uarch/store_buffer.cc.o.d"
  "/root/repo/src/uarch/store_queue.cc" "src/CMakeFiles/storemlp.dir/uarch/store_queue.cc.o" "gcc" "src/CMakeFiles/storemlp.dir/uarch/store_queue.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
