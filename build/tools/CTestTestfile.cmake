# CMake generated Testfile for 
# Source directory: /root/repo/tools
# Build directory: /root/repo/build/tools
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(tools.sim_csv "/root/repo/build/tools/storemlp_sim" "--workload" "specjbb" "--warmup" "20000" "--measure" "40000" "--csv")
set_tests_properties(tools.sim_csv PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;14;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(tools.sim_help "/root/repo/build/tools/storemlp_sim" "--help")
set_tests_properties(tools.sim_help PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;17;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(tools.tracegen_roundtrip "sh" "-c" "/root/repo/build/tools/storemlp_tracegen --workload tpcw --count 20000        --out /root/repo/build/tools/smoke.trc --v2 &&      /root/repo/build/tools/storemlp_traceinfo --in        /root/repo/build/tools/smoke.trc --dump 3")
set_tests_properties(tools.tracegen_roundtrip PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;19;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(tools.epochs_timeline "/root/repo/build/tools/storemlp_epochs" "--workload" "tpcw" "--count" "5" "--warmup" "100000")
set_tests_properties(tools.epochs_timeline PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;25;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(tools.calibrate_one_iter "/root/repo/build/tools/storemlp_calibrate" "--workload" "specweb" "--knob" "loadColdProb" "--metric" "loadMiss" "--target" "0.14" "--warmup" "50000" "--measure" "50000" "--iters" "1")
set_tests_properties(tools.calibrate_one_iter PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;27;add_test;/root/repo/tools/CMakeLists.txt;0;")
