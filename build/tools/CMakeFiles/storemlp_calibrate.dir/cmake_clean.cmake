file(REMOVE_RECURSE
  "CMakeFiles/storemlp_calibrate.dir/storemlp_calibrate.cc.o"
  "CMakeFiles/storemlp_calibrate.dir/storemlp_calibrate.cc.o.d"
  "storemlp_calibrate"
  "storemlp_calibrate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/storemlp_calibrate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
