# Empty compiler generated dependencies file for storemlp_calibrate.
# This may be replaced when dependencies are built.
