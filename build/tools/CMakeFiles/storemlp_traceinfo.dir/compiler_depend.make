# Empty compiler generated dependencies file for storemlp_traceinfo.
# This may be replaced when dependencies are built.
