file(REMOVE_RECURSE
  "CMakeFiles/storemlp_traceinfo.dir/storemlp_traceinfo.cc.o"
  "CMakeFiles/storemlp_traceinfo.dir/storemlp_traceinfo.cc.o.d"
  "storemlp_traceinfo"
  "storemlp_traceinfo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/storemlp_traceinfo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
