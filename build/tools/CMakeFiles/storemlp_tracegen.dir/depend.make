# Empty dependencies file for storemlp_tracegen.
# This may be replaced when dependencies are built.
