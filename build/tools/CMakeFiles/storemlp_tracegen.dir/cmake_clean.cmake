file(REMOVE_RECURSE
  "CMakeFiles/storemlp_tracegen.dir/storemlp_tracegen.cc.o"
  "CMakeFiles/storemlp_tracegen.dir/storemlp_tracegen.cc.o.d"
  "storemlp_tracegen"
  "storemlp_tracegen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/storemlp_tracegen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
