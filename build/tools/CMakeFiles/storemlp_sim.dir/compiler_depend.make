# Empty compiler generated dependencies file for storemlp_sim.
# This may be replaced when dependencies are built.
