file(REMOVE_RECURSE
  "CMakeFiles/storemlp_sim.dir/storemlp_sim.cc.o"
  "CMakeFiles/storemlp_sim.dir/storemlp_sim.cc.o.d"
  "storemlp_sim"
  "storemlp_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/storemlp_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
