# Empty dependencies file for storemlp_epochs.
# This may be replaced when dependencies are built.
