file(REMOVE_RECURSE
  "CMakeFiles/storemlp_epochs.dir/storemlp_epochs.cc.o"
  "CMakeFiles/storemlp_epochs.dir/storemlp_epochs.cc.o.d"
  "storemlp_epochs"
  "storemlp_epochs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/storemlp_epochs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
