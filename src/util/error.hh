/**
 * @file
 * Structured error hierarchy for the simulator. Every failure the
 * engine can surface to a caller derives from `SimError`, so tools and
 * the sweep engine can contain faults with a single catch clause while
 * still distinguishing the three failure families:
 *
 *   ConfigError      — malformed external configuration (config files,
 *                      environment variables, profile files).
 *   TraceFormatError — malformed binary trace input (declared in
 *                      trace/trace_io.hh; derives from SimError).
 *   RunError         — a simulation run failed; carries the run index
 *                      and configuration name so a batch report can
 *                      point at the exact failing point.
 *
 * The hierarchy exists for containment, not control flow: a throwing
 * run inside a parallel sweep must degrade to one failed result slot,
 * never to std::terminate.
 */

#ifndef STOREMLP_UTIL_ERROR_HH
#define STOREMLP_UTIL_ERROR_HH

#include <cstddef>
#include <stdexcept>
#include <string>

namespace storemlp
{

/** Base class of every error the simulator raises deliberately. */
class SimError : public std::runtime_error
{
  public:
    explicit SimError(const std::string &what) : std::runtime_error(what)
    {
    }
};

/** Malformed external configuration: files, flags, environment. */
class ConfigError : public SimError
{
  public:
    explicit ConfigError(const std::string &what) : SimError(what) {}
};

/**
 * A simulation run failed. Wraps the underlying cause with the run's
 * batch index and configuration name, so sweep reports and JSON
 * artifacts identify the failing point without guessing.
 */
class RunError : public SimError
{
  public:
    RunError(size_t run_index, std::string config_name,
             const std::string &cause)
        : SimError("run " + std::to_string(run_index) +
                   (config_name.empty() ? std::string()
                                        : " (" + config_name + ")") +
                   ": " + cause),
          _runIndex(run_index), _configName(std::move(config_name))
    {
    }

    size_t runIndex() const { return _runIndex; }
    const std::string &configName() const { return _configName; }

  private:
    size_t _runIndex;
    std::string _configName;
};

} // namespace storemlp

#endif // STOREMLP_UTIL_ERROR_HH
