/**
 * @file
 * Strict numeric parsing implementation.
 */

#include "util/parse.hh"

#include <cctype>
#include <cerrno>
#include <cmath>
#include <cstdlib>

#include "util/error.hh"

namespace storemlp
{

std::optional<uint64_t>
parseU64Strict(const std::string &s)
{
    if (s.empty())
        return std::nullopt;
    for (char c : s) {
        if (!std::isdigit(static_cast<unsigned char>(c)))
            return std::nullopt;
    }
    errno = 0;
    char *end = nullptr;
    unsigned long long v = std::strtoull(s.c_str(), &end, 10);
    if (errno == ERANGE || end != s.c_str() + s.size())
        return std::nullopt;
    return static_cast<uint64_t>(v);
}

std::optional<double>
parseDoubleStrict(const std::string &s)
{
    if (s.empty())
        return std::nullopt;
    // strtod also accepts hex ("0x10"), "nan" and "inf"; a decimal
    // number needs nothing outside this set.
    for (char c : s) {
        if (!std::isdigit(static_cast<unsigned char>(c)) &&
            c != '.' && c != 'e' && c != 'E' && c != '+' && c != '-')
            return std::nullopt;
    }
    errno = 0;
    char *end = nullptr;
    double v = std::strtod(s.c_str(), &end);
    if (errno == ERANGE || end != s.c_str() + s.size())
        return std::nullopt;
    if (!std::isfinite(v))
        return std::nullopt;
    return v;
}

uint64_t
envU64Strict(const char *name, uint64_t def, uint64_t min_value,
             uint64_t max_value)
{
    const char *env = std::getenv(name);
    if (!env)
        return def;
    std::optional<uint64_t> v = parseU64Strict(env);
    if (!v) {
        throw ConfigError(std::string(name) + "='" + env +
                          "' is not a decimal integer");
    }
    if (*v < min_value || *v > max_value) {
        throw ConfigError(std::string(name) + "=" +
                          std::to_string(*v) + " out of range [" +
                          std::to_string(min_value) + ", " +
                          std::to_string(max_value) + "]");
    }
    return *v;
}

} // namespace storemlp
