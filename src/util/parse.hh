/**
 * @file
 * Strict numeric parsing for external inputs (CLI flags, environment
 * variables, config files). The C library's strtoull-style parsers
 * silently accept garbage — "abc" parses as 0, "10k" as 10, "-1"
 * wraps to 2^64-1 — which turns a typo into a silently wrong
 * experiment. These helpers reject anything that is not exactly a
 * decimal number, and the env variants raise ConfigError naming the
 * offending variable.
 */

#ifndef STOREMLP_UTIL_PARSE_HH
#define STOREMLP_UTIL_PARSE_HH

#include <cstdint>
#include <optional>
#include <string>

namespace storemlp
{

/**
 * Parse a full string as a decimal uint64_t. Returns nullopt unless
 * the entire string is digits and the value fits: empty strings,
 * signs, whitespace, trailing characters ("10k") and out-of-range
 * values all fail.
 */
std::optional<uint64_t> parseU64Strict(const std::string &s);

/**
 * Parse a full string as a finite decimal double. Same contract as
 * parseU64Strict: the entire string must be the number ("0.4x",
 * "nan", "inf" and empty strings all fail). A leading '-' is
 * accepted; range checking is the caller's business.
 */
std::optional<double> parseDoubleStrict(const std::string &s);

/**
 * Read an environment variable as a uint64_t in [min_value,
 * max_value]. Unset returns `def`; set-but-malformed (or out of
 * range) throws ConfigError naming the variable — a mistyped knob
 * must never silently fall back to a default.
 */
uint64_t envU64Strict(const char *name, uint64_t def,
                      uint64_t min_value = 0,
                      uint64_t max_value = UINT64_MAX);

} // namespace storemlp

#endif // STOREMLP_UTIL_PARSE_HH
