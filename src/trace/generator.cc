/**
 * @file
 * Synthetic trace generator implementation.
 */

#include "trace/generator.hh"

#include <algorithm>
#include <cassert>

namespace storemlp
{

namespace
{
constexpr uint64_t kLineBytes = 64;
constexpr unsigned kNumRegs = 48; // architectural registers 1..47 in use
} // namespace

SyntheticTraceGenerator::SyntheticTraceGenerator(
        const WorkloadProfile &profile, uint64_t seed, uint32_t chip_id)
    : _prof(profile), _rng(seed, 0x9e3779b97f4a7c15ULL ^ chip_id),
      _chipId(chip_id)
{
    _privStoreBase = AddressMap::kPrivateStoreBase +
        chip_id * AddressMap::kPrivateStoreStride;
    _coldLoadBase = AddressMap::kColdLoadBase +
        chip_id * AddressMap::kColdLoadStride;
    // Hot data and lock words are process-private: each chip/core id
    // gets its own copy (only the designated shared store region is
    // shared between chips).
    _hotDataBase = AddressMap::kHotDataBase +
        chip_id * uint64_t(32) * 1024 * 1024;
    _lockBase = AddressMap::kLockBase +
        chip_id * uint64_t(1) * 1024 * 1024;
    for (auto &r : _recent)
        r = 1 + static_cast<uint8_t>(_rng.below(kNumRegs - 1));
}

Trace
SyntheticTraceGenerator::generate(uint64_t count)
{
    Trace t;
    generateInto(t, count);
    return t;
}

void
SyntheticTraceGenerator::generateInto(Trace &trace, uint64_t count)
{
    trace.reserve(trace.size() + count + 64);
    uint64_t goal = trace.size() + count;
    while (trace.size() < goal)
        emitSlot(trace);
}

uint64_t
SyntheticTraceGenerator::nextPc()
{
    if (_excursionLeft > 0) {
        --_excursionLeft;
        uint64_t pc = _excursionPc;
        _excursionPc += 4;
        return pc;
    }
    // Possibly start a cold-code excursion.
    if (!_inCs && _flushLeft == 0 && _prof.instColdProb > 0.0 &&
        _rng.chance(_prof.instColdProb)) {
        uint32_t lines = _rng.geometric(_prof.instBurstCont, 4);
        // Stay within `lines` fresh cache lines of cold code.
        _excursionPc = AddressMap::kColdCodeBase + _coldPcCursor;
        _coldPcCursor += lines * kLineBytes;
        // Execute most of the excursion lines' worth of instructions.
        _excursionLeft = lines * (kLineBytes / 4) - 1;
        uint64_t pc = _excursionPc;
        _excursionPc += 4;
        return pc;
    }
    // Hot code: loop within a window; occasionally hop to another
    // window of the code footprint (function-call locality).
    uint64_t window = std::max<uint64_t>(64, _prof.hotCodeWindowBytes);
    if (_prof.hotCodeJumpProb > 0.0 &&
        _rng.chance(_prof.hotCodeJumpProb) &&
        _prof.hotCodeBytes > window) {
        uint64_t windows = _prof.hotCodeBytes / window;
        _hotWindowBase = _rng.below64(windows) * window;
        _hotPcOff = 0;
    }
    uint64_t pc = AddressMap::kHotCodeBase + _hotWindowBase + _hotPcOff;
    _hotPcOff = (_hotPcOff + 4) % window;
    return pc;
}

uint64_t
SyntheticTraceGenerator::hotDataAddr()
{
    // Two-tier temporal locality: most accesses hit an L1-resident
    // tier; the rest roam the full (L2-resident) hot region.
    uint64_t span = _rng.chance(_prof.hotL1Frac)
        ? std::min(_prof.hotL1Bytes, _prof.hotDataBytes)
        : _prof.hotDataBytes;
    uint64_t off = _rng.below64(span / 8) * 8;
    return _hotDataBase + off;
}

uint64_t
SyntheticTraceGenerator::coldLoadAddr()
{
    // Some cold loads read the shared region (consuming data other
    // chips produced); the rest stream fresh private lines
    // (guaranteed compulsory misses).
    if (_prof.sharedLoadFrac > 0.0 &&
        _rng.chance(_prof.sharedLoadFrac)) {
        uint64_t region = _rng.chance(_prof.sharedHotFrac)
            ? std::min(_prof.sharedHotBytes,
                       _prof.sharedStoreRegionBytes)
            : _prof.sharedStoreRegionBytes;
        uint64_t off = _rng.below64(region / kLineBytes) * kLineBytes;
        return AddressMap::kSharedStoreBase + off;
    }
    uint64_t a = _coldLoadBase + _coldLoadCursor;
    _coldLoadCursor += kLineBytes;
    return a;
}

uint64_t
SyntheticTraceGenerator::coldStoreAddr(bool fresh)
{
    if (_granulesLeft == 0) {
        if (_runLinesLeft == 0) {
            // Jump to a random spot, picking the shared or the private
            // region, and start a fresh spatial run of lines.
            _storeLineShared = _rng.chance(_prof.sharedStoreFrac);
            uint64_t region_bytes = _storeLineShared
                ? _prof.sharedStoreRegionBytes
                : _prof.storeMissRegionBytes;
            if (_storeLineShared &&
                _rng.chance(_prof.sharedHotFrac)) {
                // Contended shared structures: all chips write these.
                region_bytes = std::min(region_bytes,
                                        _prof.sharedHotBytes);
            }
            uint64_t lines = region_bytes / kLineBytes;
            if (!fresh && !_storeLineShared && _runRingSize > 0 &&
                _rng.chance(_prof.storeRevisitFrac)) {
                // Buffer-pool reuse: rewrite a recently used area.
                _storeLineOff = _runRing[_rng.below(
                    static_cast<uint32_t>(_runRingSize))];
            } else {
                _storeLineOff = _rng.below64(lines) * kLineBytes;
            }
            if (!_storeLineShared) {
                _runRing[_runRingIdx] = _storeLineOff;
                _runRingIdx = (_runRingIdx + 1) % kRunRing;
                _runRingSize = std::min(_runRingSize + 1, kRunRing);
            }
            _runLinesLeft = std::max(1u, _prof.storeSpatialRun);
        } else {
            _storeLineOff += kLineBytes;
        }
        --_runLinesLeft;
        _granulesLeft = std::max(1u, _prof.coldStoresPerLine);
        _granuleIdx = 0;
    }
    uint64_t base = _storeLineShared
        ? AddressMap::kSharedStoreBase : _privStoreBase;
    uint64_t region_bytes = _storeLineShared
        ? _prof.sharedStoreRegionBytes : _prof.storeMissRegionBytes;
    uint64_t off = (_storeLineOff + _granuleIdx * 8) % region_bytes;
    ++_granuleIdx;
    --_granulesLeft;
    return base + off;
}

uint8_t
SyntheticTraceGenerator::freshReg()
{
    uint8_t r = 1 + static_cast<uint8_t>(_rng.below(kNumRegs - 1));
    _recent[_recentIdx % 8] = r;
    ++_recentIdx;
    return r;
}

uint8_t
SyntheticTraceGenerator::pickSrc()
{
    if (_rng.chance(_prof.depNearProb))
        return _recent[_rng.below(8)];
    return 1 + static_cast<uint8_t>(_rng.below(kNumRegs - 1));
}

void
SyntheticTraceGenerator::emitSlot(Trace &trace)
{
    // Flush phases: burst buffer/log writebacks with no locks and no
    // cold loads.
    if (_flushLeft > 0) {
        --_flushLeft;
        double d = _rng.uniform();
        if (d < _prof.flushStoreFrac) {
            emitStore(trace, _rng.chance(_prof.flushColdProb));
        } else if (d < _prof.flushStoreFrac + _prof.loadFrac) {
            _loadBurstLeft = 0; // hot load only
            TraceRecord r;
            r.pc = nextPc();
            r.cls = InstClass::Load;
            r.addr = hotDataAddr();
            r.size = 8;
            r.src1 = pickSrc();
            r.dst = freshReg();
            _lastLoadDst = r.dst;
            trace.append(r);
        } else {
            emitAlu(trace);
        }
        return;
    }
    if (_prof.flushPhaseProb > 0.0 &&
        _rng.chance(_prof.flushPhaseProb)) {
        double cont = 1.0 - 1.0 / std::max(1u, _prof.flushLenMean);
        _flushLeft = _rng.geometric(cont, 4 * _prof.flushLenMean);
    }

    // Dense store bursts: store-dominated stretches (memset-like).
    if (_burstLeft > 0) {
        --_burstLeft;
        double d = _rng.uniform();
        if (d < _prof.burstStoreFrac) {
            emitStore(trace, _rng.chance(_prof.burstColdProb));
        } else {
            emitAlu(trace);
        }
        return;
    }
    if (_prof.burstPhaseProb > 0.0 &&
        _rng.chance(_prof.burstPhaseProb)) {
        double cont = 1.0 - 1.0 / std::max(1u, _prof.burstLenMean);
        _burstLeft = _rng.geometric(cont, 4 * _prof.burstLenMean);
    }

    // Critical sections are emitted atomically (acquire/body/release).
    if (_prof.lockProb > 0.0 && _rng.chance(_prof.lockProb)) {
        emitCriticalSection(trace);
        return;
    }
    if (_prof.membarProb > 0.0 && _rng.chance(_prof.membarProb)) {
        emitMembar(trace);
        return;
    }
    double d = _rng.uniform();
    if (d < _prof.loadFrac) {
        emitLoad(trace);
    } else if (d < _prof.loadFrac + _prof.storeFrac) {
        emitStore(trace);
    } else if (d < _prof.loadFrac + _prof.storeFrac + _prof.branchFrac) {
        emitBranch(trace);
    } else {
        emitAlu(trace);
    }
}

void
SyntheticTraceGenerator::emitCriticalSection(Trace &trace)
{
    _inCs = true;
    uint64_t lock_addr = _lockBase +
        _rng.below(_prof.lockCount) * kLineBytes;

    // Lock acquire: casa (atomic load+store, serializing under TSO).
    TraceRecord acq;
    acq.pc = nextPc();
    acq.cls = InstClass::AtomicCas;
    acq.addr = lock_addr;
    acq.size = 8;
    acq.dst = freshReg();
    acq.src1 = pickSrc();
    acq.flags = kFlagLockAcquire;
    trace.append(acq);

    // Body: loads/stores/alu, no nested locks or cold-code excursions.
    uint32_t body = 4 + _rng.below(std::max(1u, 2 * _prof.csBodyLen - 4));
    for (uint32_t i = 0; i < body; ++i) {
        double d = _rng.uniform();
        if (d < _prof.loadFrac) {
            emitLoad(trace);
        } else if (d < _prof.loadFrac + _prof.storeFrac) {
            emitStore(trace);
        } else {
            emitAlu(trace);
        }
    }

    // Lock release: plain store to the lock word.
    TraceRecord rel;
    rel.pc = nextPc();
    rel.cls = InstClass::Store;
    rel.addr = lock_addr;
    rel.size = 8;
    rel.src2 = pickSrc();
    rel.flags = kFlagLockRelease;
    trace.append(rel);
    _inCs = false;
}

void
SyntheticTraceGenerator::emitLoad(Trace &trace)
{
    bool cold;
    if (_loadBurstLeft > 0) {
        cold = true;
        --_loadBurstLeft;
    } else {
        double mean_burst = 1.0 / (1.0 - _prof.loadBurstCont);
        cold = _rng.chance(_prof.loadColdProb / mean_burst);
        if (cold)
            _loadBurstLeft = _rng.geometric(_prof.loadBurstCont) - 1;
    }
    TraceRecord r;
    r.pc = nextPc();
    r.cls = InstClass::Load;
    r.addr = cold ? coldLoadAddr() : hotDataAddr();
    r.size = 8;
    r.src1 = pickSrc();
    r.dst = freshReg();
    _lastLoadDst = r.dst;
    trace.append(r);
}

void
SyntheticTraceGenerator::emitStore(Trace &trace, bool force_cold)
{
    bool cold;
    if (force_cold) {
        cold = true;
    } else if (_storeBurstLeft > 0) {
        cold = true;
        --_storeBurstLeft;
    } else {
        double mean_burst = 1.0 / (1.0 - _prof.storeBurstCont);
        cold = _rng.chance(_prof.storeColdProb / mean_burst);
        if (cold)
            _storeBurstLeft = _rng.geometric(_prof.storeBurstCont) - 1;
    }
    TraceRecord r;
    r.pc = nextPc();
    r.cls = InstClass::Store;
    r.addr = cold ? coldStoreAddr(force_cold) : hotDataAddr();
    r.size = 8;
    r.src1 = pickSrc();
    r.src2 = pickSrc();
    trace.append(r);
}

void
SyntheticTraceGenerator::emitBranch(Trace &trace)
{
    TraceRecord r;
    // Branches live at fixed sites (the last word of each 32-byte
    // group), as in real code: stable sites train the predictor and
    // BTB instead of scattering one-shot branch pcs everywhere.
    r.pc = (nextPc() & ~uint64_t(31)) | 28;
    r.cls = InstClass::Branch;
    if (_rng.chance(_prof.branchDependsOnLoadProb) && _lastLoadDst)
        r.src1 = _lastLoadDst;
    else
        r.src1 = pickSrc();
    // Outcome keyed off a per-pc hash: most static branches are
    // deterministic (loop bounds, error checks); the rest are hard
    // data-dependent branches with a majority bias.
    uint64_t h = ((r.pc >> 2) * 0x9e3779b97f4a7c15ULL) >> 32;
    bool direction = (h & 1) != 0;
    bool easy = (h >> 1) % 1000 <
        static_cast<uint64_t>(_prof.easyBranchFrac * 1000.0);
    bool taken = easy
        ? direction
        : (_rng.chance(_prof.branchBias) ? direction : !direction);
    if (taken)
        r.flags |= kFlagTaken;
    trace.append(r);
}

void
SyntheticTraceGenerator::emitAlu(Trace &trace)
{
    TraceRecord r;
    r.pc = nextPc();
    r.cls = InstClass::Alu;
    r.src1 = pickSrc();
    r.src2 = pickSrc();
    r.dst = freshReg();
    trace.append(r);
}

void
SyntheticTraceGenerator::emitMembar(Trace &trace)
{
    TraceRecord r;
    r.pc = nextPc();
    r.cls = InstClass::Membar;
    trace.append(r);
}

LitmusProgram
litmusProgram(LitmusIdiom idiom, bool power_dialect, bool fenced)
{
    // Two independent shared locations on distinct cache lines.
    constexpr uint64_t kX = 0x1000;
    constexpr uint64_t kY = 0x2000;

    LitmusProgram p;
    TraceBuilder t0(0x10000);
    TraceBuilder t1(0x20000);
    // Ordering fences per dialect: a full fence (SPARC membar; the
    // Power full sync has the same SerializeEffect), the Power
    // store-store fence, and the Power execution fence.
    auto full = [&](TraceBuilder &t) { t.membar(); };
    auto stFence = [&](TraceBuilder &t) {
        power_dialect ? t.lwsync() : t.membar();
    };
    auto exFence = [&](TraceBuilder &t) {
        power_dialect ? t.isync() : t.membar();
    };

    switch (idiom) {
      case LitmusIdiom::StoreBuffering:
        p.name = "SB";
        t0.store(kX);
        if (fenced)
            full(t0); // only a full fence orders St -> Ld
        t0.load(kY);
        t1.store(kY);
        if (fenced)
            full(t1);
        t1.load(kX);
        p.relaxedOutcome = {0, 0}; // both loads miss the other store
        break;
      case LitmusIdiom::MessagePassing:
        p.name = "MP";
        t0.store(kX);
        if (fenced)
            stFence(t0);
        t0.store(kY);
        t1.load(kY);
        if (fenced)
            exFence(t1);
        t1.load(kX);
        p.relaxedOutcome = {1, 0}; // flag seen, data stale
        break;
      case LitmusIdiom::LoadBuffering:
        p.name = "LB";
        t0.load(kY);
        if (fenced)
            exFence(t0);
        t0.store(kX);
        t1.load(kX);
        if (fenced)
            exFence(t1);
        t1.store(kY);
        p.relaxedOutcome = {1, 1}; // both loads see the future store
        break;
    }
    p.name += power_dialect ? ".power" : ".sparc";
    if (fenced)
        p.name += "+fence";
    p.thread0 = t0.build();
    p.thread1 = t1.build();
    return p;
}

} // namespace storemlp
