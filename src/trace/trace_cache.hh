/**
 * @file
 * Keyed, thread-safe cache of immutable trace data. A paper figure
 * runs 6-8 configurations against the *same* workload trace (same
 * profile, seed, length, and memory-model rewrite); regenerating it
 * per run is the dominant redundant work in a sweep. The cache builds
 * each distinct entry exactly once — concurrent requesters for the
 * same key block on the first builder — and hands out shared immutable
 * references, so worker threads never copy or mutate trace data.
 *
 * Two entry kinds share one keyed store and one byte budget: whole
 * traces (`getOrBuild`, the materialized path) and decoded streaming
 * chunks (`getOrBuildChunk`, keyed fingerprint + "#c" + chunk index by
 * CachedSource) so parallel sweep workers share chunk decodes the way
 * they share whole traces.
 */

#ifndef STOREMLP_TRACE_TRACE_CACHE_HH
#define STOREMLP_TRACE_TRACE_CACHE_HH

#include <cstdint>
#include <functional>
#include <future>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "trace/trace.hh"

namespace storemlp
{

/** Aggregate cache statistics (monotonic; see resetStats()). */
struct TraceCacheStats
{
    uint64_t hits = 0;       ///< lookups served from an existing entry
    uint64_t misses = 0;     ///< lookups that triggered a build
    uint64_t evictions = 0;  ///< entries dropped by the byte budget
    uint64_t bytes = 0;      ///< resident trace bytes (approximate)
};

/**
 * Shared trace store. Keys are opaque strings; callers compose them
 * from everything that determines the trace bytes (workload profile
 * fingerprint, seed, length, PC->WC rewrite, chip id) — see
 * `Runner::traceCacheKey`. Entries are evicted LRU once the byte
 * budget (`STOREMLP_TRACE_CACHE_MB`, default 2048) is exceeded;
 * outstanding shared_ptrs keep evicted traces alive until released.
 */
class TraceChunk;

class TraceCache
{
  public:
    using Builder = std::function<Trace()>;
    using ChunkBuilder = std::function<std::shared_ptr<const TraceChunk>()>;

    explicit TraceCache(uint64_t max_bytes = defaultMaxBytes());

    /**
     * Return the trace for `key`, building it via `build` on the
     * first request. Concurrent callers with the same key wait for
     * the in-flight build instead of duplicating it. If `was_hit` is
     * non-null it reports whether this call found an existing entry.
     */
    std::shared_ptr<const Trace> getOrBuild(const std::string &key,
                                            const Builder &build,
                                            bool *was_hit = nullptr);

    /**
     * Same contract for one decoded chunk of a streaming source. The
     * builder must not return nullptr — CachedSource encodes
     * end-of-stream as an empty chunk so the length itself is cached.
     */
    std::shared_ptr<const TraceChunk>
    getOrBuildChunk(const std::string &key, const ChunkBuilder &build,
                    bool *was_hit = nullptr);

    /** Drop every completed entry (in-flight builds finish normally). */
    void clear();

    TraceCacheStats stats() const;
    void resetStats();

    /** Byte budget from STOREMLP_TRACE_CACHE_MB (default 2 GiB). */
    static uint64_t defaultMaxBytes();

    /** Process-wide cache shared by benches, tools and tests. */
    static TraceCache &global();

  private:
    // Entries are type-erased so traces and chunks share one LRU and
    // one byte budget; the typed getOrBuild* fronts restore the type.
    struct Entry
    {
        std::shared_future<std::shared_ptr<const void>> future;
        uint64_t bytes = 0;                ///< 0 until the build lands
        std::list<std::string>::iterator lruIt;
    };

    /** Builder returns (value, payload bytes); key bytes are added. */
    using ErasedBuilder =
        std::function<std::pair<std::shared_ptr<const void>, uint64_t>()>;

    std::shared_ptr<const void>
    getOrBuildErased(const std::string &key, const ErasedBuilder &build,
                     bool *was_hit);

    void touchLocked(Entry &entry, const std::string &key);
    void evictLocked();

    mutable std::mutex _mu;
    std::unordered_map<std::string, Entry> _entries;
    std::list<std::string> _lru; ///< front = most recently used
    uint64_t _maxBytes;
    TraceCacheStats _stats;
};

} // namespace storemlp

#endif // STOREMLP_TRACE_TRACE_CACHE_HH
