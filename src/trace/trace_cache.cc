/**
 * @file
 * Trace cache implementation.
 */

#include "trace/trace_cache.hh"

#include <tuple>
#include <utility>

#include "trace/trace_source.hh"
#include "util/parse.hh"

namespace storemlp
{

TraceCache::TraceCache(uint64_t max_bytes) : _maxBytes(max_bytes) {}

uint64_t
TraceCache::defaultMaxBytes()
{
    // Cap at 2^44 bytes worth of megabytes so the *1024*1024 below
    // cannot overflow; throws ConfigError on a malformed value.
    uint64_t mb = envU64Strict("STOREMLP_TRACE_CACHE_MB", 2048, 1,
                               uint64_t{1} << 24);
    return mb * 1024 * 1024;
}

TraceCache &
TraceCache::global()
{
    static TraceCache cache;
    return cache;
}

std::shared_ptr<const Trace>
TraceCache::getOrBuild(const std::string &key, const Builder &build,
                       bool *was_hit)
{
    std::shared_ptr<const void> v = getOrBuildErased(
        key,
        [&]() -> std::pair<std::shared_ptr<const void>, uint64_t> {
            auto trace = std::make_shared<const Trace>(build());
            uint64_t bytes = trace->size() * sizeof(TraceRecord);
            return {std::move(trace), bytes};
        },
        was_hit);
    return std::static_pointer_cast<const Trace>(v);
}

std::shared_ptr<const TraceChunk>
TraceCache::getOrBuildChunk(const std::string &key,
                            const ChunkBuilder &build, bool *was_hit)
{
    std::shared_ptr<const void> v = getOrBuildErased(
        key,
        [&]() -> std::pair<std::shared_ptr<const void>, uint64_t> {
            std::shared_ptr<const TraceChunk> chunk = build();
            uint64_t bytes = chunk->bytes();
            return {std::move(chunk), bytes};
        },
        was_hit);
    return std::static_pointer_cast<const TraceChunk>(v);
}

std::shared_ptr<const void>
TraceCache::getOrBuildErased(const std::string &key,
                             const ErasedBuilder &build, bool *was_hit)
{
    std::shared_future<std::shared_ptr<const void>> fut;
    std::promise<std::shared_ptr<const void>> promise;
    bool builder = false;

    {
        std::lock_guard<std::mutex> lk(_mu);
        auto it = _entries.find(key);
        if (it != _entries.end()) {
            ++_stats.hits;
            touchLocked(it->second, key);
            fut = it->second.future;
        } else {
            ++_stats.misses;
            builder = true;
            Entry entry;
            entry.future = promise.get_future().share();
            _lru.push_front(key);
            entry.lruIt = _lru.begin();
            fut = entry.future;
            _entries.emplace(key, std::move(entry));
        }
    }
    if (was_hit)
        *was_hit = !builder;

    if (!builder)
        return fut.get(); // blocks while the first builder works

    // Build outside the lock so other keys proceed concurrently.
    std::shared_ptr<const void> value;
    uint64_t payload_bytes = 0;
    try {
        std::tie(value, payload_bytes) = build();
    } catch (...) {
        promise.set_exception(std::current_exception());
        std::lock_guard<std::mutex> lk(_mu);
        auto it = _entries.find(key);
        if (it != _entries.end()) {
            _lru.erase(it->second.lruIt);
            _entries.erase(it);
        }
        throw;
    }
    promise.set_value(value);

    std::lock_guard<std::mutex> lk(_mu);
    auto it = _entries.find(key);
    if (it != _entries.end()) {
        it->second.bytes = payload_bytes + key.size();
        _stats.bytes += it->second.bytes;
        evictLocked();
    }
    return value;
}

void
TraceCache::touchLocked(Entry &entry, const std::string &key)
{
    _lru.erase(entry.lruIt);
    _lru.push_front(key);
    entry.lruIt = _lru.begin();
}

void
TraceCache::evictLocked()
{
    // Scan from the LRU tail toward the head, skipping in-flight
    // builds (bytes == 0 until the build lands) rather than stopping
    // at them — one pending build at the tail must not pin the whole
    // cache above budget. The head (most recent, typically the entry
    // just inserted) is never evicted.
    auto victim = _lru.end();
    while (_stats.bytes > _maxBytes && victim != _lru.begin()) {
        --victim;
        if (victim == _lru.begin())
            break;
        auto it = _entries.find(*victim);
        if (it == _entries.end() || it->second.bytes == 0)
            continue;
        _stats.bytes -= it->second.bytes;
        ++_stats.evictions;
        _entries.erase(it);
        victim = _lru.erase(victim);
    }
}

void
TraceCache::clear()
{
    std::lock_guard<std::mutex> lk(_mu);
    for (auto it = _entries.begin(); it != _entries.end();) {
        if (it->second.bytes > 0) {
            _stats.bytes -= it->second.bytes;
            _lru.erase(it->second.lruIt);
            it = _entries.erase(it);
        } else {
            ++it;
        }
    }
}

TraceCacheStats
TraceCache::stats() const
{
    std::lock_guard<std::mutex> lk(_mu);
    return _stats;
}

void
TraceCache::resetStats()
{
    std::lock_guard<std::mutex> lk(_mu);
    uint64_t bytes = _stats.bytes;
    _stats = TraceCacheStats{};
    _stats.bytes = bytes;
}

} // namespace storemlp
