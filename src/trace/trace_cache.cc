/**
 * @file
 * Trace cache implementation.
 */

#include "trace/trace_cache.hh"

#include <cstdlib>
#include <utility>

namespace storemlp
{

TraceCache::TraceCache(uint64_t max_bytes) : _maxBytes(max_bytes) {}

uint64_t
TraceCache::defaultMaxBytes()
{
    uint64_t mb = 2048;
    if (const char *env = std::getenv("STOREMLP_TRACE_CACHE_MB")) {
        uint64_t v = std::strtoull(env, nullptr, 10);
        if (v > 0)
            mb = v;
    }
    return mb * 1024 * 1024;
}

TraceCache &
TraceCache::global()
{
    static TraceCache cache;
    return cache;
}

std::shared_ptr<const Trace>
TraceCache::getOrBuild(const std::string &key, const Builder &build,
                       bool *was_hit)
{
    std::shared_future<std::shared_ptr<const Trace>> fut;
    std::promise<std::shared_ptr<const Trace>> promise;
    bool builder = false;

    {
        std::lock_guard<std::mutex> lk(_mu);
        auto it = _entries.find(key);
        if (it != _entries.end()) {
            ++_stats.hits;
            touchLocked(it->second, key);
            fut = it->second.future;
        } else {
            ++_stats.misses;
            builder = true;
            Entry entry;
            entry.future = promise.get_future().share();
            _lru.push_front(key);
            entry.lruIt = _lru.begin();
            fut = entry.future;
            _entries.emplace(key, std::move(entry));
        }
    }
    if (was_hit)
        *was_hit = !builder;

    if (!builder)
        return fut.get(); // blocks while the first builder works

    // Build outside the lock so other keys proceed concurrently.
    std::shared_ptr<const Trace> trace;
    try {
        trace = std::make_shared<const Trace>(build());
    } catch (...) {
        promise.set_exception(std::current_exception());
        std::lock_guard<std::mutex> lk(_mu);
        auto it = _entries.find(key);
        if (it != _entries.end()) {
            _lru.erase(it->second.lruIt);
            _entries.erase(it);
        }
        throw;
    }
    promise.set_value(trace);

    std::lock_guard<std::mutex> lk(_mu);
    auto it = _entries.find(key);
    if (it != _entries.end()) {
        it->second.bytes =
            trace->size() * sizeof(TraceRecord) + key.size();
        _stats.bytes += it->second.bytes;
        evictLocked();
    }
    return trace;
}

void
TraceCache::touchLocked(Entry &entry, const std::string &key)
{
    _lru.erase(entry.lruIt);
    _lru.push_front(key);
    entry.lruIt = _lru.begin();
}

void
TraceCache::evictLocked()
{
    // Never evict the most recent entry (the one just inserted) and
    // skip in-flight builds (bytes == 0 until the build lands).
    while (_stats.bytes > _maxBytes && _lru.size() > 1) {
        auto victim = std::prev(_lru.end());
        auto it = _entries.find(*victim);
        if (it == _entries.end() || it->second.bytes == 0)
            break;
        _stats.bytes -= it->second.bytes;
        ++_stats.evictions;
        _entries.erase(it);
        _lru.erase(victim);
    }
}

void
TraceCache::clear()
{
    std::lock_guard<std::mutex> lk(_mu);
    for (auto it = _entries.begin(); it != _entries.end();) {
        if (it->second.bytes > 0) {
            _stats.bytes -= it->second.bytes;
            _lru.erase(it->second.lruIt);
            it = _entries.erase(it);
        } else {
            ++it;
        }
    }
}

TraceCacheStats
TraceCache::stats() const
{
    std::lock_guard<std::mutex> lk(_mu);
    return _stats;
}

void
TraceCache::resetStats()
{
    std::lock_guard<std::mutex> lk(_mu);
    uint64_t bytes = _stats.bytes;
    _stats = TraceCacheStats{};
    _stats.bytes = bytes;
}

} // namespace storemlp
