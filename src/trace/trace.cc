/**
 * @file
 * Trace container implementation.
 */

#include "trace/trace.hh"

#include <atomic>

namespace storemlp
{

void
deriveLanes(const TraceRecord *data, uint64_t n, TraceLanes &out)
{
    out.pc.resize(n);
    out.addr.resize(n);
    out.cls.resize(n);
    out.meta.resize(n);
    for (uint64_t i = 0; i < n; ++i) {
        const TraceRecord &r = data[i];
        out.pc[i] = r.pc;
        out.addr[i] = r.addr;
        out.cls[i] = static_cast<uint8_t>(r.cls);
        out.meta[i] = static_cast<uint32_t>(r.dst) |
            (static_cast<uint32_t>(r.src1) << 8) |
            (static_cast<uint32_t>(r.src2) << 16) |
            (static_cast<uint32_t>(r.flags) << 24);
    }
}

std::shared_ptr<const TraceLanes>
Trace::lanes() const
{
    std::shared_ptr<const TraceLanes> l = std::atomic_load(&_lanes);
    if (l)
        return l;
    auto built = std::make_shared<TraceLanes>();
    deriveLanes(_records.data(), _records.size(), *built);
    std::shared_ptr<const TraceLanes> candidate = std::move(built);
    // First deriver wins; a concurrent loser's copy is simply dropped.
    std::shared_ptr<const TraceLanes> expected;
    if (std::atomic_compare_exchange_strong(&_lanes, &expected,
                                            candidate)) {
        return candidate;
    }
    return expected;
}

const char *
instClassName(InstClass c)
{
    switch (c) {
      case InstClass::Alu: return "alu";
      case InstClass::Load: return "load";
      case InstClass::Store: return "store";
      case InstClass::Branch: return "branch";
      case InstClass::AtomicCas: return "casa";
      case InstClass::Membar: return "membar";
      case InstClass::LoadLocked: return "lwarx";
      case InstClass::StoreCond: return "stwcx";
      case InstClass::Isync: return "isync";
      case InstClass::Lwsync: return "lwsync";
      default: return "?";
    }
}

Trace::Mix
Trace::mix() const
{
    Mix m;
    m.total = _records.size();
    for (const auto &r : _records) {
        if (r.cls == InstClass::AtomicCas || r.cls == InstClass::StoreCond ||
            r.cls == InstClass::LoadLocked) {
            ++m.atomics;
        }
        if (isLoadClass(r.cls))
            ++m.loads;
        if (isStoreClass(r.cls))
            ++m.stores;
        if (r.cls == InstClass::Branch)
            ++m.branches;
        if (isBarrierClass(r.cls))
            ++m.barriers;
    }
    return m;
}

TraceBuilder &
TraceBuilder::emit(TraceRecord r)
{
    r.pc = _pc;
    _pc += 4;
    _records.push_back(r);
    return *this;
}

TraceBuilder &
TraceBuilder::alu(uint8_t dst, uint8_t src1, uint8_t src2)
{
    TraceRecord r;
    r.cls = InstClass::Alu;
    r.dst = dst;
    r.src1 = src1;
    r.src2 = src2;
    return emit(r);
}

TraceBuilder &
TraceBuilder::load(uint64_t addr, uint8_t dst, uint8_t base)
{
    TraceRecord r;
    r.cls = InstClass::Load;
    r.addr = addr;
    r.size = 8;
    r.dst = dst;
    r.src1 = base;
    return emit(r);
}

TraceBuilder &
TraceBuilder::store(uint64_t addr, uint8_t data_src, uint8_t base)
{
    TraceRecord r;
    r.cls = InstClass::Store;
    r.addr = addr;
    r.size = 8;
    r.src1 = base;
    r.src2 = data_src;
    return emit(r);
}

TraceBuilder &
TraceBuilder::branch(bool taken, uint8_t src)
{
    TraceRecord r;
    r.cls = InstClass::Branch;
    r.src1 = src;
    if (taken)
        r.flags |= kFlagTaken;
    return emit(r);
}

TraceBuilder &
TraceBuilder::casa(uint64_t addr, uint8_t dst)
{
    TraceRecord r;
    r.cls = InstClass::AtomicCas;
    r.addr = addr;
    r.size = 8;
    r.dst = dst;
    return emit(r);
}

TraceBuilder &
TraceBuilder::membar()
{
    TraceRecord r;
    r.cls = InstClass::Membar;
    return emit(r);
}

TraceBuilder &
TraceBuilder::loadLocked(uint64_t addr, uint8_t dst)
{
    TraceRecord r;
    r.cls = InstClass::LoadLocked;
    r.addr = addr;
    r.size = 8;
    r.dst = dst;
    return emit(r);
}

TraceBuilder &
TraceBuilder::storeCond(uint64_t addr, uint8_t src)
{
    TraceRecord r;
    r.cls = InstClass::StoreCond;
    r.addr = addr;
    r.size = 8;
    r.src2 = src;
    return emit(r);
}

TraceBuilder &
TraceBuilder::isync()
{
    TraceRecord r;
    r.cls = InstClass::Isync;
    return emit(r);
}

TraceBuilder &
TraceBuilder::lwsync()
{
    TraceRecord r;
    r.cls = InstClass::Lwsync;
    return emit(r);
}

TraceBuilder &
TraceBuilder::withFlags(uint8_t flags)
{
    _records.back().flags |= flags;
    return *this;
}

TraceBuilder &
TraceBuilder::atPc(uint64_t pc)
{
    _records.back().pc = pc;
    _pc = pc + 4;
    return *this;
}

TraceBuilder &
TraceBuilder::withSize(uint8_t size)
{
    _records.back().size = size;
    return *this;
}

} // namespace storemlp
