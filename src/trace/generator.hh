/**
 * @file
 * Synthetic trace generator. Produces SPARC-TSO flavoured dynamic
 * instruction traces whose statistical structure (instruction mix,
 * miss placement and clustering, spatial locality of store misses,
 * lock idioms, register dependences) is set by a WorkloadProfile.
 */

#ifndef STOREMLP_TRACE_GENERATOR_HH
#define STOREMLP_TRACE_GENERATOR_HH

#include <cstdint>
#include <string>
#include <vector>

#include "trace/rng.hh"
#include "trace/trace.hh"
#include "trace/workload.hh"

namespace storemlp
{

/** The classic two-thread litmus idioms the harness exercises. */
enum class LitmusIdiom : uint8_t
{
    StoreBuffering, ///< SB / Dekker: St x; Ld y || St y; Ld x
    MessagePassing, ///< MP: St x; St y || Ld y; Ld x
    LoadBuffering,  ///< LB: Ld y; St x || Ld x; St y
};

/**
 * A two-thread litmus program: one record sequence per thread plus
 * the idiom's distinguishing weak outcome. Stores conceptually write
 * the value 1 to locations that start at 0.
 */
struct LitmusProgram
{
    std::string name;
    Trace thread0;
    Trace thread1;
    /**
     * The relaxed (weak) outcome: the observed value of every load,
     * thread 0's loads in program order followed by thread 1's. A
     * model "allows" the idiom iff an execution can produce this
     * observation (see consistency/litmus.hh).
     */
    std::vector<uint8_t> relaxedOutcome;
};

/**
 * Emit the idiom's record sequences. The fenced variants insert the
 * fences that restore ordering under every shipped model:
 * Power-dialect programs use lwsync (store-store) and isync
 * (pipeline drain), SPARC-dialect programs use membar.
 */
LitmusProgram litmusProgram(LitmusIdiom idiom, bool power_dialect,
                            bool fenced);

/**
 * Deterministic trace generator; one instance per simulated core/chip.
 * Distinct `chipId`s place the private store-miss and cold-load
 * regions at disjoint addresses while sharing one global shared store
 * region, which is what drives cross-chip coherence in the SMAC
 * experiments (paper Figure 6).
 */
class SyntheticTraceGenerator
{
  public:
    SyntheticTraceGenerator(const WorkloadProfile &profile, uint64_t seed,
                            uint32_t chip_id = 0);

    /** Generate the next `count` instructions (streamable). */
    Trace generate(uint64_t count);

    /** Append `count` instructions to an existing trace. */
    void generateInto(Trace &trace, uint64_t count);

    const WorkloadProfile &profile() const { return _prof; }
    uint32_t chipId() const { return _chipId; }

  private:
    void emitSlot(Trace &trace);
    void emitCriticalSection(Trace &trace);
    void emitLoad(Trace &trace);
    void emitStore(Trace &trace, bool force_cold = false);
    void emitBranch(Trace &trace);
    void emitAlu(Trace &trace);
    void emitMembar(Trace &trace);

    uint64_t nextPc();
    uint64_t hotDataAddr();
    uint64_t coldLoadAddr();
    uint64_t coldStoreAddr(bool fresh = false);
    uint8_t freshReg();
    uint8_t pickSrc();
    void notePc(uint64_t bytes = 4);

    WorkloadProfile _prof;
    Pcg32 _rng;
    uint32_t _chipId;

    // address-space bases resolved for this chip/core
    uint64_t _privStoreBase;
    uint64_t _coldLoadBase;
    uint64_t _hotDataBase;
    uint64_t _lockBase;

    // pc state
    uint64_t _hotPcOff = 0;       ///< offset within the current window
    uint64_t _hotWindowBase = 0;  ///< hot-code window base offset
    uint64_t _coldPcCursor = 0;   ///< monotonically fresh cold code
    uint32_t _excursionLeft = 0;  ///< cold-code instructions remaining
    uint64_t _excursionPc = 0;

    // cold load state
    uint64_t _coldLoadCursor = 0;
    uint32_t _loadBurstLeft = 0;

    // cold store state (spatial walker)
    uint32_t _flushLeft = 0;      ///< flush-phase instructions left
    uint32_t _burstLeft = 0;      ///< dense-burst instructions left
    uint32_t _storeBurstLeft = 0;
    uint64_t _storeLineOff = 0;   ///< line offset within current region
    bool _storeLineShared = false;
    uint32_t _granulesLeft = 0;
    uint32_t _granuleIdx = 0;
    uint32_t _runLinesLeft = 0;
    /** Ring of recent private-region run offsets (reuse pool). */
    static constexpr size_t kRunRing = 16384;
    uint64_t _runRing[kRunRing] = {};
    size_t _runRingSize = 0;
    size_t _runRingIdx = 0;

    // register state
    uint8_t _recent[8] = {};      ///< ring of recent producer registers
    uint32_t _recentIdx = 0;
    uint8_t _lastLoadDst = 0;

    // in-CS guard so critical sections never nest
    bool _inCs = false;
};

} // namespace storemlp

#endif // STOREMLP_TRACE_GENERATOR_HH
