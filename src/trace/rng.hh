/**
 * @file
 * Deterministic PCG32 random number generator. The simulator never
 * touches std::random_device or wall-clock seeds: every run is a pure
 * function of (profile, seed, config).
 */

#ifndef STOREMLP_TRACE_RNG_HH
#define STOREMLP_TRACE_RNG_HH

#include <cstdint>

namespace storemlp
{

/**
 * PCG32 (O'Neill): small, fast, statistically solid, reproducible
 * across platforms.
 */
class Pcg32
{
  public:
    explicit Pcg32(uint64_t seed = 0x853c49e6748fea9bULL,
                   uint64_t stream = 0xda3e39cb94b95bdbULL)
    {
        _state = 0;
        _inc = (stream << 1) | 1;
        next();
        _state += seed;
        next();
    }

    /** Next 32 uniformly distributed bits. */
    uint32_t
    next()
    {
        uint64_t old = _state;
        _state = old * 6364136223846793005ULL + _inc;
        uint32_t xorshifted =
            static_cast<uint32_t>(((old >> 18) ^ old) >> 27);
        uint32_t rot = static_cast<uint32_t>(old >> 59);
        return (xorshifted >> rot) | (xorshifted << ((32 - rot) & 31));
    }

    /** Uniform integer in [0, bound). bound must be > 0. */
    uint32_t
    below(uint32_t bound)
    {
        // Debiased modulo (Lemire-style rejection kept simple).
        uint32_t threshold = (-bound) % bound;
        for (;;) {
            uint32_t r = next();
            if (r >= threshold)
                return r % bound;
        }
    }

    /** Uniform 64-bit value in [0, bound). */
    uint64_t
    below64(uint64_t bound)
    {
        if (bound <= 1)
            return 0;
        uint64_t r = (static_cast<uint64_t>(next()) << 32) | next();
        return r % bound;
    }

    /** Uniform double in [0, 1). */
    double
    uniform()
    {
        return next() * (1.0 / 4294967296.0);
    }

    /** Bernoulli draw. */
    bool chance(double p) { return uniform() < p; }

    /**
     * Geometric draw >= 1 with continuation probability p (mean
     * 1/(1-p)); capped to keep pathological draws bounded.
     */
    uint32_t
    geometric(double p, uint32_t cap = 64)
    {
        uint32_t n = 1;
        while (n < cap && chance(p))
            ++n;
        return n;
    }

  private:
    uint64_t _state;
    uint64_t _inc;
};

} // namespace storemlp

#endif // STOREMLP_TRACE_RNG_HH
