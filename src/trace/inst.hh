/**
 * @file
 * Instruction-trace record definitions.
 *
 * The trace vocabulary is SPARC/PowerPC flavoured because the paper's
 * two memory-consistency case studies are SPARC TSO (processor
 * consistency) and PowerPC WC (weak consistency). A processor-
 * consistency trace uses `AtomicCas` (casa) for lock acquires and
 * `Membar` for explicit fences; the PC->WC rewriter replaces lock
 * idioms with `LoadLocked`/`StoreCond` + `Isync` and `Lwsync`.
 */

#ifndef STOREMLP_TRACE_INST_HH
#define STOREMLP_TRACE_INST_HH

#include <cstdint>

namespace storemlp
{

/** Dynamic instruction classes understood by the epoch model. */
enum class InstClass : uint8_t
{
    Alu,        ///< register-to-register computation
    Load,       ///< memory load
    Store,      ///< memory store
    Branch,     ///< conditional/unconditional control transfer
    AtomicCas,  ///< SPARC casa: atomic load+store, serializing under TSO
    Membar,     ///< SPARC membar: full fence, serializing under TSO
    LoadLocked, ///< PowerPC lwarx: load with reservation
    StoreCond,  ///< PowerPC stwcx.: store conditional
    Isync,      ///< PowerPC isync: pipeline drain, no store-queue drain
    Lwsync,     ///< PowerPC lwsync: store-ordering fence in the queue
    NumClasses
};

/** Per-record flag bits. */
enum InstFlags : uint8_t
{
    kFlagTaken = 1 << 0,       ///< branch outcome was taken
    kFlagLockAcquire = 1 << 1, ///< generator ground truth: lock acquire
    kFlagLockRelease = 1 << 2, ///< generator ground truth: lock release
};

/**
 * One dynamic instruction. Register ids are 1..63; 0 means "no
 * register". `addr`/`size` are meaningful for memory classes only.
 */
struct TraceRecord
{
    uint64_t pc = 0;
    uint64_t addr = 0;
    InstClass cls = InstClass::Alu;
    uint8_t size = 0;
    uint8_t dst = 0;
    uint8_t src1 = 0;
    uint8_t src2 = 0;
    uint8_t flags = 0;

    bool taken() const { return flags & kFlagTaken; }
    bool lockAcquire() const { return flags & kFlagLockAcquire; }
    bool lockRelease() const { return flags & kFlagLockRelease; }
};

/** True if the instruction reads memory. */
inline bool
isLoadClass(InstClass c)
{
    return c == InstClass::Load || c == InstClass::AtomicCas ||
        c == InstClass::LoadLocked;
}

/** True if the instruction writes memory. */
inline bool
isStoreClass(InstClass c)
{
    return c == InstClass::Store || c == InstClass::AtomicCas ||
        c == InstClass::StoreCond;
}

/** True if the instruction accesses memory at all. */
inline bool
isMemClass(InstClass c)
{
    return isLoadClass(c) || isStoreClass(c);
}

/** True for fence/sync-style instructions (no memory address). */
inline bool
isBarrierClass(InstClass c)
{
    return c == InstClass::Membar || c == InstClass::Isync ||
        c == InstClass::Lwsync;
}

/** Printable mnemonic for diagnostics. */
const char *instClassName(InstClass c);

} // namespace storemlp

#endif // STOREMLP_TRACE_INST_HH
