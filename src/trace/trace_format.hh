/**
 * @file
 * On-disk trace format internals shared by the whole-trace reader
 * (trace_io.cc), the streaming chunk reader (trace_file_source.cc)
 * and the v4 chunk codec (trace_codec.cc).
 *
 * The normative wire-format specification for all four containers —
 * byte layouts, encodings, and corruption-rejection rules — lives in
 * docs/TRACE_FORMAT.md. Summary:
 *
 *  v1 ("SMLPTRC1"): u64 count, then fixed 22-byte LE records.
 *  v2 ("SMLPTRC2"): u64 count, then delta-compressed records — a
 *      control byte (class + presence bits), zigzag-varint pc deltas
 *      (sequential pcs are free), varint addresses, register/flag
 *      bytes only when non-zero. Decoding is stateful: each record's
 *      pc is relative to the previous record's.
 *  v3 ("SMLPTRC3"): a metadata envelope — body-format byte (1 or 2),
 *      u32 fingerprint length + fingerprint string, u64 count, then a
 *      v1 or v2 body. The fingerprint identifies the trace bytes
 *      (profile/seed/length/rewrite) so tools can report provenance
 *      from the header alone.
 *  v4 ("SMLPTRC4"): the v3 envelope (body-format byte 3) plus chunk
 *      geometry (u64 chunk size, u64 chunk count), a chunk index
 *      table (per-chunk record count, byte offset/length, pc/address
 *      seeds), then independently decodable compressed chunks:
 *      zigzag-varint pc deltas, XOR-varint addresses, packed 3-byte
 *      register blocks. The index gives random access and parallel
 *      decode without the v2 sequential-walk restriction.
 */

#ifndef STOREMLP_TRACE_TRACE_FORMAT_HH
#define STOREMLP_TRACE_TRACE_FORMAT_HH

#include <cstdint>

namespace storemlp::trace_format
{

inline constexpr char kMagicV1[8] = {'S', 'M', 'L', 'P', 'T', 'R', 'C',
                                     '1'};
inline constexpr char kMagicV2[8] = {'S', 'M', 'L', 'P', 'T', 'R', 'C',
                                     '2'};
inline constexpr char kMagicV3[8] = {'S', 'M', 'L', 'P', 'T', 'R', 'C',
                                     '3'};
inline constexpr char kMagicV4[8] = {'S', 'M', 'L', 'P', 'T', 'R', 'C',
                                     '4'};
inline constexpr uint64_t kMagicBytes = 8;
inline constexpr uint64_t kRecordBytesV1 = 22;
/** Fingerprint strings longer than this are rejected as corrupt. */
inline constexpr uint64_t kMaxMetaBytes = 4096;

// Body-format byte of the v3/v4 envelopes.
inline constexpr uint8_t kBodyFixed = 1;   ///< v1 fixed-width records
inline constexpr uint8_t kBodyDelta = 2;   ///< v2 delta-compressed
inline constexpr uint8_t kBodyChunked = 3; ///< v4 chunk-indexed

// v2/v4 control byte layout: bits 0-3 class, bit 4 pc==prev+4,
// bit 5 register/size block present, bit 6 flags byte present.
// v4 additionally requires the reserved bit 7 to be zero.
inline constexpr uint8_t kCtrlSeqPc = 1 << 4;
inline constexpr uint8_t kCtrlRegs = 1 << 5;
inline constexpr uint8_t kCtrlFlags = 1 << 6;
inline constexpr uint8_t kCtrlReserved = 1 << 7;

// ---- v4 container geometry ----
/** Chunk index entry: records, byteOff, byteLen, pcSeed, addrSeed. */
inline constexpr uint64_t kIndexEntryBytesV4 = 40;
/** Per-chunk section header: pc/addr/regs/flags/aux u32 lengths. */
inline constexpr uint64_t kChunkHeaderBytesV4 = 20;
/**
 * Worst-case encoded bytes per record inside a v4 chunk: control
 * byte + 10-byte pc varint + 10-byte address varint + 3-byte register
 * block + flags byte + aux size byte. Index entries whose byteLen
 * exceeds kChunkHeaderBytesV4 + records * this are rejected as
 * corrupt before any allocation.
 */
inline constexpr uint64_t kMaxRecordBytesV4 = 26;
/**
 * Largest chunk size a v4 file may declare. Caps the worst-case
 * decoded-chunk footprint and keeps every per-chunk section length
 * within its u32 field (2^26 records * kMaxRecordBytesV4 < 2^32).
 */
inline constexpr uint64_t kMaxChunkInstsV4 = uint64_t{1} << 26;

/**
 * v4 packed register block size codes (4 bits, split across the top
 * bits of the block's first two bytes): 0 encodes size 0, codes 1..8
 * encode 1 << (code-1), code 15 defers to a raw size byte in the aux
 * stream. Codes 9..14 are reserved and rejected.
 */
inline constexpr uint8_t kSizeCodeEscape = 15;

inline void
putU64(uint8_t *p, uint64_t v)
{
    for (int i = 0; i < 8; ++i)
        p[i] = static_cast<uint8_t>(v >> (8 * i));
}

inline uint64_t
getU64(const uint8_t *p)
{
    uint64_t v = 0;
    for (int i = 0; i < 8; ++i)
        v |= static_cast<uint64_t>(p[i]) << (8 * i);
    return v;
}

inline void
putU32(uint8_t *p, uint32_t v)
{
    for (int i = 0; i < 4; ++i)
        p[i] = static_cast<uint8_t>(v >> (8 * i));
}

inline uint32_t
getU32(const uint8_t *p)
{
    uint32_t v = 0;
    for (int i = 0; i < 4; ++i)
        v |= static_cast<uint32_t>(p[i]) << (8 * i);
    return v;
}

inline uint64_t
zigzag(int64_t v)
{
    return (static_cast<uint64_t>(v) << 1) ^
        static_cast<uint64_t>(v >> 63);
}

inline int64_t
unzigzag(uint64_t v)
{
    return static_cast<int64_t>(v >> 1) ^ -static_cast<int64_t>(v & 1);
}

} // namespace storemlp::trace_format

#endif // STOREMLP_TRACE_TRACE_FORMAT_HH
