/**
 * @file
 * On-disk trace format internals shared by the whole-trace reader
 * (trace_io.cc) and the streaming chunk reader (trace_file_source.cc).
 *
 * Three containers share one record vocabulary:
 *  v1 ("SMLPTRC1"): u64 count, then fixed 22-byte LE records.
 *  v2 ("SMLPTRC2"): u64 count, then delta-compressed records — a
 *      control byte (class + presence bits), zigzag-varint pc deltas
 *      (sequential pcs are free), varint addresses, register/flag
 *      bytes only when non-zero. Decoding is stateful: each record's
 *      pc is relative to the previous record's.
 *  v3 ("SMLPTRC3"): a metadata envelope — body-format byte (1 or 2),
 *      u32 fingerprint length + fingerprint string, u64 count, then a
 *      v1 or v2 body. The fingerprint identifies the trace bytes
 *      (profile/seed/length/rewrite) so tools can report provenance
 *      from the header alone.
 */

#ifndef STOREMLP_TRACE_TRACE_FORMAT_HH
#define STOREMLP_TRACE_TRACE_FORMAT_HH

#include <cstdint>

namespace storemlp::trace_format
{

inline constexpr char kMagicV1[8] = {'S', 'M', 'L', 'P', 'T', 'R', 'C',
                                     '1'};
inline constexpr char kMagicV2[8] = {'S', 'M', 'L', 'P', 'T', 'R', 'C',
                                     '2'};
inline constexpr char kMagicV3[8] = {'S', 'M', 'L', 'P', 'T', 'R', 'C',
                                     '3'};
inline constexpr uint64_t kMagicBytes = 8;
inline constexpr uint64_t kRecordBytesV1 = 22;
/** Fingerprint strings longer than this are rejected as corrupt. */
inline constexpr uint64_t kMaxMetaBytes = 4096;

// v2 control byte layout: bits 0-3 class, bit 4 pc==prev+4,
// bit 5 register/size block present, bit 6 flags byte present.
inline constexpr uint8_t kCtrlSeqPc = 1 << 4;
inline constexpr uint8_t kCtrlRegs = 1 << 5;
inline constexpr uint8_t kCtrlFlags = 1 << 6;

inline void
putU64(uint8_t *p, uint64_t v)
{
    for (int i = 0; i < 8; ++i)
        p[i] = static_cast<uint8_t>(v >> (8 * i));
}

inline uint64_t
getU64(const uint8_t *p)
{
    uint64_t v = 0;
    for (int i = 0; i < 8; ++i)
        v |= static_cast<uint64_t>(p[i]) << (8 * i);
    return v;
}

inline void
putU32(uint8_t *p, uint32_t v)
{
    for (int i = 0; i < 4; ++i)
        p[i] = static_cast<uint8_t>(v >> (8 * i));
}

inline uint32_t
getU32(const uint8_t *p)
{
    uint32_t v = 0;
    for (int i = 0; i < 4; ++i)
        v |= static_cast<uint32_t>(p[i]) << (8 * i);
    return v;
}

inline uint64_t
zigzag(int64_t v)
{
    return (static_cast<uint64_t>(v) << 1) ^
        static_cast<uint64_t>(v >> 63);
}

inline int64_t
unzigzag(uint64_t v)
{
    return static_cast<int64_t>(v >> 1) ^ -static_cast<int64_t>(v & 1);
}

} // namespace storemlp::trace_format

#endif // STOREMLP_TRACE_TRACE_FORMAT_HH
