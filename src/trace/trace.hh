/**
 * @file
 * Trace container and builder.
 */

#ifndef STOREMLP_TRACE_TRACE_HH
#define STOREMLP_TRACE_TRACE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "trace/inst.hh"

namespace storemlp
{

/**
 * A dynamic instruction trace plus summary statistics. Traces are
 * immutable once built; the simulator only reads them.
 */
class Trace
{
  public:
    Trace() = default;
    explicit Trace(std::vector<TraceRecord> records)
        : _records(std::move(records))
    {
    }

    const std::vector<TraceRecord> &records() const { return _records; }
    size_t size() const { return _records.size(); }
    bool empty() const { return _records.empty(); }
    const TraceRecord &operator[](size_t i) const { return _records[i]; }

    void append(const TraceRecord &r) { _records.push_back(r); }
    void reserve(size_t n) { _records.reserve(n); }

    /** Summary counts used by Table 1 style reporting and tests. */
    struct Mix
    {
        uint64_t total = 0;
        uint64_t loads = 0;
        uint64_t stores = 0;
        uint64_t branches = 0;
        uint64_t atomics = 0;
        uint64_t barriers = 0;
    };
    Mix mix() const;

  private:
    std::vector<TraceRecord> _records;
};

/**
 * Fluent builder for hand-written test traces (used heavily by the
 * paper-example unit tests). Registers default to 0 (= none) and pcs
 * auto-increment by 4 unless overridden.
 */
class TraceBuilder
{
  public:
    explicit TraceBuilder(uint64_t start_pc = 0x1000) : _pc(start_pc) {}

    TraceBuilder &alu(uint8_t dst = 0, uint8_t src1 = 0, uint8_t src2 = 0);
    TraceBuilder &load(uint64_t addr, uint8_t dst = 0, uint8_t base = 0);
    TraceBuilder &store(uint64_t addr, uint8_t data_src = 0,
                        uint8_t base = 0);
    TraceBuilder &branch(bool taken, uint8_t src = 0);
    TraceBuilder &casa(uint64_t addr, uint8_t dst = 0);
    TraceBuilder &membar();
    TraceBuilder &loadLocked(uint64_t addr, uint8_t dst = 0);
    TraceBuilder &storeCond(uint64_t addr, uint8_t src = 0);
    TraceBuilder &isync();
    TraceBuilder &lwsync();

    /** Mark flags on the most recently appended record. */
    TraceBuilder &withFlags(uint8_t flags);
    /** Override the pc of the most recently appended record. */
    TraceBuilder &atPc(uint64_t pc);
    /** Override the access size of the most recent record. */
    TraceBuilder &withSize(uint8_t size);

    Trace build() { return Trace(std::move(_records)); }
    size_t size() const { return _records.size(); }

  private:
    TraceBuilder &emit(TraceRecord r);

    std::vector<TraceRecord> _records;
    uint64_t _pc;
};

} // namespace storemlp

#endif // STOREMLP_TRACE_TRACE_HH
