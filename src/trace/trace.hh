/**
 * @file
 * Trace container and builder.
 */

#ifndef STOREMLP_TRACE_TRACE_HH
#define STOREMLP_TRACE_TRACE_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "trace/inst.hh"

namespace storemlp
{

/**
 * Structure-of-arrays mirror of a record sequence: one contiguous
 * lane per field the simulation hot loop reads. `meta` packs the
 * register/flag bytes as dst | src1<<8 | src2<<16 | flags<<24.
 */
struct TraceLanes
{
    std::vector<uint64_t> pc;
    std::vector<uint64_t> addr;
    std::vector<uint8_t> cls;
    std::vector<uint32_t> meta;
};

/** Derive the SoA lanes of `n` records starting at `data`. */
void deriveLanes(const TraceRecord *data, uint64_t n, TraceLanes &out);

/**
 * A dynamic instruction trace plus summary statistics. Traces are
 * immutable once built; the simulator only reads them.
 */
class Trace
{
  public:
    Trace() = default;
    explicit Trace(std::vector<TraceRecord> records)
        : _records(std::move(records))
    {
    }

    const std::vector<TraceRecord> &records() const { return _records; }
    size_t size() const { return _records.size(); }
    bool empty() const { return _records.empty(); }
    const TraceRecord &operator[](size_t i) const { return _records[i]; }

    void
    append(const TraceRecord &r)
    {
        _records.push_back(r);
        // Building invalidates any derived lanes (single-threaded by
        // the immutable-once-built contract).
        if (_lanes)
            _lanes = nullptr;
    }
    void reserve(size_t n) { _records.reserve(n); }

    /**
     * Whole-trace SoA lanes, derived once on first use and cached.
     * Thread-safe for concurrent readers of a built trace (sweep
     * workers sharing one materialized trace). Copies share the cache.
     */
    std::shared_ptr<const TraceLanes> lanes() const;

    /** Summary counts used by Table 1 style reporting and tests. */
    struct Mix
    {
        uint64_t total = 0;
        uint64_t loads = 0;
        uint64_t stores = 0;
        uint64_t branches = 0;
        uint64_t atomics = 0;
        uint64_t barriers = 0;
    };
    Mix mix() const;

  private:
    std::vector<TraceRecord> _records;
    /** Lazily derived lane cache; accessed via std::atomic_load. */
    mutable std::shared_ptr<const TraceLanes> _lanes;
};

/**
 * Fluent builder for hand-written test traces (used heavily by the
 * paper-example unit tests). Registers default to 0 (= none) and pcs
 * auto-increment by 4 unless overridden.
 */
class TraceBuilder
{
  public:
    explicit TraceBuilder(uint64_t start_pc = 0x1000) : _pc(start_pc) {}

    TraceBuilder &alu(uint8_t dst = 0, uint8_t src1 = 0, uint8_t src2 = 0);
    TraceBuilder &load(uint64_t addr, uint8_t dst = 0, uint8_t base = 0);
    TraceBuilder &store(uint64_t addr, uint8_t data_src = 0,
                        uint8_t base = 0);
    TraceBuilder &branch(bool taken, uint8_t src = 0);
    TraceBuilder &casa(uint64_t addr, uint8_t dst = 0);
    TraceBuilder &membar();
    TraceBuilder &loadLocked(uint64_t addr, uint8_t dst = 0);
    TraceBuilder &storeCond(uint64_t addr, uint8_t src = 0);
    TraceBuilder &isync();
    TraceBuilder &lwsync();

    /** Mark flags on the most recently appended record. */
    TraceBuilder &withFlags(uint8_t flags);
    /** Override the pc of the most recently appended record. */
    TraceBuilder &atPc(uint64_t pc);
    /** Override the access size of the most recent record. */
    TraceBuilder &withSize(uint8_t size);

    Trace build() { return Trace(std::move(_records)); }
    size_t size() const { return _records.size(); }

  private:
    TraceBuilder &emit(TraceRecord r);

    std::vector<TraceRecord> _records;
    uint64_t _pc;
};

} // namespace storemlp

#endif // STOREMLP_TRACE_TRACE_HH
