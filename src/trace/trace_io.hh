/**
 * @file
 * Binary trace serialization. The on-disk format is a fixed little-
 * endian packing (22 bytes per record) with a magic/version header so
 * generated traces can be cached between runs and shared across tools.
 */

#ifndef STOREMLP_TRACE_TRACE_IO_HH
#define STOREMLP_TRACE_TRACE_IO_HH

#include <iosfwd>
#include <string>

#include "trace/trace.hh"
#include "util/error.hh"

namespace storemlp
{

/** Thrown on malformed trace files. */
class TraceFormatError : public SimError
{
  public:
    explicit TraceFormatError(const std::string &what) : SimError(what)
    {
    }
};

/** Serialize a trace to a stream (fixed-width v1 format). */
void writeTrace(std::ostream &os, const Trace &trace);
/** Serialize a trace to a file. Throws on I/O failure. */
void writeTraceFile(const std::string &path, const Trace &trace);

/**
 * Serialize in the delta-compressed v2 format: sequential pcs cost a
 * single control byte, other fields use zigzag/LEB128 varints.
 * Typically 3-4x smaller than v1 on generated traces.
 */
void writeTraceCompressed(std::ostream &os, const Trace &trace);
void writeTraceCompressedFile(const std::string &path,
                              const Trace &trace);

/**
 * Serialize in the v3 container: a metadata envelope (body format +
 * provenance fingerprint) followed by a v1 or v2 record body. Tools
 * read the count and fingerprint from the header without decoding a
 * single record.
 */
void writeTraceV3(std::ostream &os, const Trace &trace,
                  const std::string &fingerprint, bool compressed);
void writeTraceFileV3(const std::string &path, const Trace &trace,
                      const std::string &fingerprint, bool compressed);

/** Deserialize a trace (auto-detects v1/v2/v3 by magic).
 *  Throws TraceFormatError. */
Trace readTrace(std::istream &is);
/** Deserialize a trace from a file (auto-detects format). */
Trace readTraceFile(const std::string &path);

/** Header-level description of an on-disk trace (no record decode). */
struct TraceFileInfo
{
    uint32_t version = 0;    ///< container: 1, 2, or 3
    uint32_t bodyFormat = 0; ///< record encoding: 1 fixed, 2 compressed
    uint64_t records = 0;
    uint64_t fileBytes = 0;
    std::string fingerprint; ///< provenance (v3 only; else empty)
};

/**
 * Read a trace file's header only: O(header) work regardless of trace
 * length. Validates the record count against the file size. Throws
 * TraceFormatError on malformed headers.
 */
TraceFileInfo probeTraceFile(const std::string &path);

} // namespace storemlp

#endif // STOREMLP_TRACE_TRACE_IO_HH
