/**
 * @file
 * Binary trace serialization. Four on-disk containers (fixed-width
 * v1, delta-compressed v2, enveloped v3, chunk-indexed compressed v4;
 * specified in docs/TRACE_FORMAT.md) with magic/version headers so
 * generated traces can be cached between runs and shared across tools.
 */

#ifndef STOREMLP_TRACE_TRACE_IO_HH
#define STOREMLP_TRACE_TRACE_IO_HH

#include <iosfwd>
#include <string>

#include "trace/trace.hh"
#include "util/error.hh"

namespace storemlp
{

/** Thrown on malformed trace files. */
class TraceFormatError : public SimError
{
  public:
    explicit TraceFormatError(const std::string &what) : SimError(what)
    {
    }
};

/** Serialize a trace to a stream (fixed-width v1 format). */
void writeTrace(std::ostream &os, const Trace &trace);
/** Serialize a trace to a file. Throws on I/O failure. */
void writeTraceFile(const std::string &path, const Trace &trace);

/**
 * Serialize in the delta-compressed v2 format: sequential pcs cost a
 * single control byte, other fields use zigzag/LEB128 varints.
 * Typically 3-4x smaller than v1 on generated traces.
 */
void writeTraceCompressed(std::ostream &os, const Trace &trace);
void writeTraceCompressedFile(const std::string &path,
                              const Trace &trace);

/**
 * Serialize in the v3 container: a metadata envelope (body format +
 * provenance fingerprint) followed by a v1 or v2 record body. Tools
 * read the count and fingerprint from the header without decoding a
 * single record.
 */
void writeTraceV3(std::ostream &os, const Trace &trace,
                  const std::string &fingerprint, bool compressed);
void writeTraceFileV3(const std::string &path, const Trace &trace,
                      const std::string &fingerprint, bool compressed);

/**
 * Serialize in the chunk-indexed compressed v4 container: the v3
 * envelope plus chunk geometry, a per-chunk index (record count, byte
 * extent, pc/address seeds) and independently decodable compressed
 * chunks of `chunk_insts` records each. Smaller than v2 (packed
 * register blocks, XOR-delta addresses) and randomly accessible; see
 * docs/TRACE_FORMAT.md. Throws TraceFormatError if `chunk_insts` is 0
 * or exceeds trace_format::kMaxChunkInstsV4.
 */
void writeTraceV4(std::ostream &os, const Trace &trace,
                  const std::string &fingerprint,
                  uint64_t chunk_insts = uint64_t{1} << 16);
void writeTraceFileV4(const std::string &path, const Trace &trace,
                      const std::string &fingerprint,
                      uint64_t chunk_insts = uint64_t{1} << 16);

/** Deserialize a trace (auto-detects v1/v2/v3/v4 by magic).
 *  Throws TraceFormatError. */
Trace readTrace(std::istream &is);
/** Deserialize a trace from a file (auto-detects format). */
Trace readTraceFile(const std::string &path);

/** Header-level description of an on-disk trace (no record decode). */
struct TraceFileInfo
{
    uint32_t version = 0;    ///< container: 1, 2, 3, or 4
    uint32_t bodyFormat = 0; ///< 1 fixed, 2 delta, 3 chunked
    uint64_t records = 0;
    uint64_t fileBytes = 0;
    uint64_t chunks = 0;     ///< v4 only: chunk count from the index
    uint64_t chunkInsts = 0; ///< v4 only: records per chunk
    std::string fingerprint; ///< provenance (v3/v4 only; else empty)
};

/**
 * Read a trace file's header only: O(header) work regardless of trace
 * length. Validates the record count against the file size. Throws
 * TraceFormatError on malformed headers.
 */
TraceFileInfo probeTraceFile(const std::string &path);

} // namespace storemlp

#endif // STOREMLP_TRACE_TRACE_IO_HH
