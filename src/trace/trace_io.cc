/**
 * @file
 * Binary trace serialization. Four on-disk containers (normative spec
 * in docs/TRACE_FORMAT.md, constants in trace_format.hh):
 *  v1 ("SMLPTRC1"): fixed 22-byte little-endian records.
 *  v2 ("SMLPTRC2"): delta-compressed — a control byte per record
 *      (class + presence bits), zigzag-varint pc deltas (sequential
 *      pcs are free), varint addresses, and register/flag bytes only
 *      when non-zero.
 *  v3 ("SMLPTRC3"): metadata envelope (body format + provenance
 *      fingerprint + count) around a v1 or v2 body.
 *  v4 ("SMLPTRC4"): the envelope plus chunk geometry, a chunk index,
 *      and independently decodable compressed chunks (trace_codec.cc).
 * readTrace() auto-detects the container by magic.
 */

#include "trace/trace_io.hh"

#include <algorithm>
#include <array>
#include <cstring>
#include <fstream>
#include <istream>
#include <optional>
#include <ostream>

#include "trace/trace_codec.hh"
#include "trace/trace_format.hh"

namespace storemlp
{

namespace
{

using namespace trace_format;

void
putVarint(std::ostream &os, uint64_t v)
{
    while (v >= 0x80) {
        os.put(static_cast<char>((v & 0x7f) | 0x80));
        v >>= 7;
    }
    os.put(static_cast<char>(v));
}

uint64_t
getVarint(std::istream &is)
{
    uint64_t v = 0;
    for (unsigned shift = 0; shift < 70; shift += 7) {
        int c = is.get();
        if (c == EOF)
            throw TraceFormatError("truncated varint");
        v |= static_cast<uint64_t>(c & 0x7f) << shift;
        if (!(c & 0x80))
            return v;
    }
    throw TraceFormatError("overlong varint");
}

void
writeCountHeader(std::ostream &os, uint64_t count)
{
    uint8_t hdr[8];
    putU64(hdr, count);
    os.write(reinterpret_cast<const char *>(hdr), sizeof(hdr));
}

void
writeV1Body(std::ostream &os, const Trace &trace)
{
    std::array<uint8_t, kRecordBytesV1> buf;
    for (const auto &r : trace.records()) {
        putU64(buf.data(), r.pc);
        putU64(buf.data() + 8, r.addr);
        buf[16] = static_cast<uint8_t>(r.cls);
        buf[17] = r.size;
        buf[18] = r.dst;
        buf[19] = r.src1;
        buf[20] = r.src2;
        buf[21] = r.flags;
        os.write(reinterpret_cast<const char *>(buf.data()), buf.size());
    }
}

void
writeV2Body(std::ostream &os, const Trace &trace)
{
    uint64_t prev_pc = 0;
    for (const auto &r : trace.records()) {
        bool seq = r.pc == prev_pc + 4;
        bool regs = r.dst || r.src1 || r.src2 || r.size;
        uint8_t ctrl = static_cast<uint8_t>(r.cls);
        if (seq)
            ctrl |= kCtrlSeqPc;
        if (regs)
            ctrl |= kCtrlRegs;
        if (r.flags)
            ctrl |= kCtrlFlags;
        os.put(static_cast<char>(ctrl));

        if (!seq) {
            putVarint(os, zigzag(static_cast<int64_t>(r.pc) -
                                 static_cast<int64_t>(prev_pc)));
        }
        prev_pc = r.pc;

        if (isMemClass(r.cls))
            putVarint(os, r.addr);
        if (regs) {
            os.put(static_cast<char>(r.size));
            os.put(static_cast<char>(r.dst));
            os.put(static_cast<char>(r.src1));
            os.put(static_cast<char>(r.src2));
        }
        if (r.flags)
            os.put(static_cast<char>(r.flags));
    }
}

/** Shared v3/v4 envelope prefix: magic, body format, fingerprint. */
void
writeEnvelopePrefix(std::ostream &os, const char *magic,
                    uint8_t body_format, const std::string &fingerprint)
{
    if (fingerprint.size() > kMaxMetaBytes) {
        throw TraceFormatError("trace fingerprint length " +
                               std::to_string(fingerprint.size()) +
                               " exceeds limit " +
                               std::to_string(kMaxMetaBytes));
    }
    os.write(magic, kMagicBytes);
    os.put(static_cast<char>(body_format));
    uint8_t len[4];
    putU32(len, static_cast<uint32_t>(fingerprint.size()));
    os.write(reinterpret_cast<const char *>(len), sizeof(len));
    os.write(fingerprint.data(),
             static_cast<std::streamsize>(fingerprint.size()));
}

} // namespace

void
writeTrace(std::ostream &os, const Trace &trace)
{
    os.write(kMagicV1, kMagicBytes);
    writeCountHeader(os, trace.size());
    writeV1Body(os, trace);
}

void
writeTraceCompressed(std::ostream &os, const Trace &trace)
{
    os.write(kMagicV2, kMagicBytes);
    writeCountHeader(os, trace.size());
    writeV2Body(os, trace);
}

void
writeTraceV3(std::ostream &os, const Trace &trace,
             const std::string &fingerprint, bool compressed)
{
    writeEnvelopePrefix(os, kMagicV3, compressed ? kBodyDelta : kBodyFixed,
                        fingerprint);
    writeCountHeader(os, trace.size());
    if (compressed)
        writeV2Body(os, trace);
    else
        writeV1Body(os, trace);
}

void
writeTraceV4(std::ostream &os, const Trace &trace,
             const std::string &fingerprint, uint64_t chunk_insts)
{
    if (chunk_insts == 0 || chunk_insts > kMaxChunkInstsV4) {
        throw TraceFormatError("v4 chunk size " +
                               std::to_string(chunk_insts) +
                               " outside [1, " +
                               std::to_string(kMaxChunkInstsV4) + "]");
    }
    uint64_t count = trace.size();
    uint64_t chunk_count =
        count ? (count + chunk_insts - 1) / chunk_insts : 0;

    writeEnvelopePrefix(os, kMagicV4, kBodyChunked, fingerprint);
    writeCountHeader(os, count);
    uint8_t geom[16];
    putU64(geom, chunk_insts);
    putU64(geom + 8, chunk_count);
    os.write(reinterpret_cast<const char *>(geom), sizeof(geom));

    // The index precedes the body, so encode all chunks first to
    // learn their byte extents.
    std::vector<uint8_t> index(chunk_count * kIndexEntryBytesV4);
    std::vector<uint8_t> body;
    trace_codec::CodecSeeds seeds;
    const TraceRecord *records = trace.records().data();
    uint64_t off = 0;
    for (uint64_t c = 0; c < chunk_count; ++c) {
        uint64_t first = c * chunk_insts;
        trace_codec::V4IndexEntry e;
        e.records = std::min(chunk_insts, count - first);
        e.byteOff = off;
        e.seeds = seeds;
        e.byteLen =
            trace_codec::encodeV4Chunk(body, records + first,
                                       e.records, seeds);
        off += e.byteLen;
        trace_codec::writeV4IndexEntry(
            index.data() + c * kIndexEntryBytesV4, e);
    }
    os.write(reinterpret_cast<const char *>(index.data()),
             static_cast<std::streamsize>(index.size()));
    os.write(reinterpret_cast<const char *>(body.data()),
             static_cast<std::streamsize>(body.size()));
}

namespace
{

/**
 * Pre-reserve ceiling when the stream size is unknown (non-seekable
 * input): the vector grows incrementally past this, so a corrupt
 * header count can at worst waste ~24 MB, not allocate 2^64 bytes.
 */
constexpr uint64_t kMaxBlindReserve = 1u << 20;

/**
 * Bytes left in the stream after the current position, or nullopt for
 * non-seekable streams. Used to reject header record counts that the
 * stream cannot possibly satisfy before reserving memory for them.
 */
std::optional<uint64_t>
remainingBytes(std::istream &is)
{
    std::istream::pos_type cur = is.tellg();
    if (cur == std::istream::pos_type(-1))
        return std::nullopt;
    is.seekg(0, std::ios::end);
    std::istream::pos_type end = is.tellg();
    is.seekg(cur);
    if (end == std::istream::pos_type(-1) || end < cur || !is)
        return std::nullopt;
    return static_cast<uint64_t>(end - cur);
}

void
throwCountExceedsCapacity(uint64_t count, uint64_t remaining,
                          uint64_t min_record_bytes)
{
    throw TraceFormatError(
        "trace header count " + std::to_string(count) +
        " exceeds stream capacity (" + std::to_string(remaining) +
        " bytes remain, >= " + std::to_string(min_record_bytes) +
        " bytes per record)");
}

/**
 * Validate an untrusted header record count against the bytes that
 * actually remain (each record occupies at least `min_record_bytes`)
 * and return a safe reserve() amount. Throws TraceFormatError on an
 * impossible count instead of letting reserve() OOM the process.
 */
uint64_t
checkedReserve(std::istream &is, uint64_t count,
               uint64_t min_record_bytes)
{
    std::optional<uint64_t> remaining = remainingBytes(is);
    if (remaining) {
        if (count > *remaining / min_record_bytes)
            throwCountExceedsCapacity(count, *remaining,
                                      min_record_bytes);
        return count;
    }
    return std::min(count, kMaxBlindReserve);
}

uint64_t
readCountHeader(std::istream &is)
{
    uint8_t hdr[8];
    is.read(reinterpret_cast<char *>(hdr), sizeof(hdr));
    if (!is)
        throw TraceFormatError("truncated trace header");
    return getU64(hdr);
}

Trace
readV1Body(std::istream &is, uint64_t count)
{
    std::vector<TraceRecord> records;
    records.reserve(checkedReserve(is, count, kRecordBytesV1));
    std::array<uint8_t, kRecordBytesV1> buf;
    for (uint64_t i = 0; i < count; ++i) {
        is.read(reinterpret_cast<char *>(buf.data()), buf.size());
        if (!is)
            throw TraceFormatError("truncated trace body");
        TraceRecord r;
        r.pc = getU64(buf.data());
        r.addr = getU64(buf.data() + 8);
        if (buf[16] >= static_cast<uint8_t>(InstClass::NumClasses))
            throw TraceFormatError("invalid instruction class");
        r.cls = static_cast<InstClass>(buf[16]);
        r.size = buf[17];
        r.dst = buf[18];
        r.src1 = buf[19];
        r.src2 = buf[20];
        r.flags = buf[21];
        records.push_back(r);
    }
    return Trace(std::move(records));
}

Trace
readV2Body(std::istream &is, uint64_t count)
{
    std::vector<TraceRecord> records;
    // v2 records are at least the control byte.
    records.reserve(checkedReserve(is, count, 1));
    uint64_t prev_pc = 0;
    for (uint64_t i = 0; i < count; ++i) {
        int ctrl_c = is.get();
        if (ctrl_c == EOF)
            throw TraceFormatError("truncated trace body");
        uint8_t ctrl = static_cast<uint8_t>(ctrl_c);
        uint8_t cls_bits = ctrl & 0x0f;
        if (cls_bits >= static_cast<uint8_t>(InstClass::NumClasses))
            throw TraceFormatError("invalid instruction class");

        TraceRecord r;
        r.cls = static_cast<InstClass>(cls_bits);
        if (ctrl & kCtrlSeqPc) {
            r.pc = prev_pc + 4;
        } else {
            int64_t delta = unzigzag(getVarint(is));
            r.pc = static_cast<uint64_t>(
                static_cast<int64_t>(prev_pc) + delta);
        }
        prev_pc = r.pc;

        if (isMemClass(r.cls))
            r.addr = getVarint(is);
        if (ctrl & kCtrlRegs) {
            int a = is.get(), b = is.get(), c = is.get(), d = is.get();
            if (d == EOF)
                throw TraceFormatError("truncated register block");
            r.size = static_cast<uint8_t>(a);
            r.dst = static_cast<uint8_t>(b);
            r.src1 = static_cast<uint8_t>(c);
            r.src2 = static_cast<uint8_t>(d);
        }
        if (ctrl & kCtrlFlags) {
            int f = is.get();
            if (f == EOF)
                throw TraceFormatError("truncated flags byte");
            r.flags = static_cast<uint8_t>(f);
        }
        records.push_back(r);
    }
    return Trace(std::move(records));
}

/** v3/v4 envelope after the magic: body format + fingerprint. */
struct V3Header
{
    uint32_t bodyFormat = 0;
    std::string fingerprint;
};

/**
 * Read the envelope prefix shared by v3 and v4, rejecting body-format
 * bytes the container version does not define (v3: fixed or delta;
 * v4: chunked) with a clear TraceFormatError rather than a misparse.
 */
V3Header
readEnvelopeHeader(std::istream &is, uint32_t version)
{
    V3Header h;
    int fmt = is.get();
    if (fmt == EOF)
        throw TraceFormatError("truncated trace header");
    bool known = version == 3
        ? (fmt == kBodyFixed || fmt == kBodyDelta)
        : (fmt == kBodyChunked);
    if (!known) {
        throw TraceFormatError("unknown v" + std::to_string(version) +
                               " body format " + std::to_string(fmt));
    }
    h.bodyFormat = static_cast<uint32_t>(fmt);

    uint8_t len_buf[4];
    is.read(reinterpret_cast<char *>(len_buf), sizeof(len_buf));
    if (!is)
        throw TraceFormatError("truncated trace header");
    uint32_t len = getU32(len_buf);
    if (len > kMaxMetaBytes) {
        throw TraceFormatError("trace metadata length " +
                               std::to_string(len) + " exceeds limit " +
                               std::to_string(kMaxMetaBytes));
    }
    h.fingerprint.resize(len);
    if (len) {
        is.read(h.fingerprint.data(), len);
        if (!is)
            throw TraceFormatError("truncated trace header");
    }
    return h;
}

/** v4 chunk geometry words following the record count. */
struct V4Geometry
{
    uint64_t chunkInsts = 0;
    uint64_t chunkCount = 0;
};

V4Geometry
readV4Geometry(std::istream &is)
{
    uint8_t buf[16];
    is.read(reinterpret_cast<char *>(buf), sizeof(buf));
    if (!is)
        throw TraceFormatError("truncated trace header");
    return {getU64(buf), getU64(buf + 8)};
}

/**
 * Read and validate the v4 chunk index. Every entry is checked by the
 * validator as it is read, and the index size itself is checked
 * against the remaining stream bytes first, so a forged header cannot
 * trigger a large allocation.
 */
std::vector<trace_codec::V4IndexEntry>
readV4Index(std::istream &is, uint64_t count, const V4Geometry &geom)
{
    trace_codec::V4IndexValidator val(count, geom.chunkInsts,
                                      geom.chunkCount);
    std::optional<uint64_t> remaining = remainingBytes(is);
    if (remaining) {
        // Each record occupies at least one body byte and each chunk
        // one index entry.
        if (count > *remaining)
            throwCountExceedsCapacity(count, *remaining, 1);
        if (geom.chunkCount > *remaining / kIndexEntryBytesV4) {
            throw TraceFormatError(
                "v4 chunk count " + std::to_string(geom.chunkCount) +
                " exceeds stream capacity (" +
                std::to_string(*remaining) + " bytes remain)");
        }
    }
    std::vector<trace_codec::V4IndexEntry> index;
    index.reserve(std::min(geom.chunkCount, kMaxBlindReserve));
    uint8_t buf[kIndexEntryBytesV4];
    for (uint64_t i = 0; i < geom.chunkCount; ++i) {
        is.read(reinterpret_cast<char *>(buf), sizeof(buf));
        if (!is)
            throw TraceFormatError("truncated v4 chunk index");
        trace_codec::V4IndexEntry e = trace_codec::readV4IndexEntry(buf);
        val.feed(e, i);
        index.push_back(e);
    }
    if (remaining) {
        val.finish(*remaining -
                   geom.chunkCount * kIndexEntryBytesV4);
    }
    return index;
}

Trace
readV4Body(std::istream &is, uint64_t count)
{
    V4Geometry geom = readV4Geometry(is);
    std::vector<trace_codec::V4IndexEntry> index =
        readV4Index(is, count, geom);

    std::vector<TraceRecord> records;
    records.reserve(checkedReserve(is, count, 1));
    std::vector<uint8_t> buf;
    for (const auto &e : index) {
        // Read incrementally so a forged byteLen on a non-seekable
        // stream hits EOF long before it can force a huge allocation.
        buf.clear();
        uint64_t got = 0;
        while (got < e.byteLen) {
            uint64_t step = std::min(e.byteLen - got, kMaxBlindReserve);
            buf.resize(got + step);
            is.read(reinterpret_cast<char *>(buf.data() + got),
                    static_cast<std::streamsize>(step));
            if (!is)
                throw TraceFormatError("truncated v4 chunk");
            got += step;
        }
        std::vector<TraceRecord> chunk = trace_codec::decodeV4Chunk(
            buf.data(), e.byteLen, e.records, e.seeds);
        records.insert(records.end(),
                       std::make_move_iterator(chunk.begin()),
                       std::make_move_iterator(chunk.end()));
    }
    return Trace(std::move(records));
}

} // namespace

Trace
readTrace(std::istream &is)
{
    char magic[kMagicBytes];
    is.read(magic, sizeof(magic));
    if (!is)
        throw TraceFormatError("bad trace magic");
    if (std::memcmp(magic, kMagicV1, kMagicBytes) == 0)
        return readV1Body(is, readCountHeader(is));
    if (std::memcmp(magic, kMagicV2, kMagicBytes) == 0)
        return readV2Body(is, readCountHeader(is));
    if (std::memcmp(magic, kMagicV3, kMagicBytes) == 0) {
        V3Header h = readEnvelopeHeader(is, 3);
        uint64_t count = readCountHeader(is);
        return h.bodyFormat == kBodyDelta ? readV2Body(is, count)
                                          : readV1Body(is, count);
    }
    if (std::memcmp(magic, kMagicV4, kMagicBytes) == 0) {
        readEnvelopeHeader(is, 4);
        return readV4Body(is, readCountHeader(is));
    }
    throw TraceFormatError("bad trace magic");
}

void
writeTraceFile(const std::string &path, const Trace &trace)
{
    std::ofstream ofs(path, std::ios::binary);
    if (!ofs)
        throw TraceFormatError("cannot open for write: " + path);
    writeTrace(ofs, trace);
    if (!ofs)
        throw TraceFormatError("write failed: " + path);
}

void
writeTraceCompressedFile(const std::string &path, const Trace &trace)
{
    std::ofstream ofs(path, std::ios::binary);
    if (!ofs)
        throw TraceFormatError("cannot open for write: " + path);
    writeTraceCompressed(ofs, trace);
    if (!ofs)
        throw TraceFormatError("write failed: " + path);
}

void
writeTraceFileV3(const std::string &path, const Trace &trace,
                 const std::string &fingerprint, bool compressed)
{
    std::ofstream ofs(path, std::ios::binary);
    if (!ofs)
        throw TraceFormatError("cannot open for write: " + path);
    writeTraceV3(ofs, trace, fingerprint, compressed);
    if (!ofs)
        throw TraceFormatError("write failed: " + path);
}

void
writeTraceFileV4(const std::string &path, const Trace &trace,
                 const std::string &fingerprint, uint64_t chunk_insts)
{
    std::ofstream ofs(path, std::ios::binary);
    if (!ofs)
        throw TraceFormatError("cannot open for write: " + path);
    writeTraceV4(ofs, trace, fingerprint, chunk_insts);
    if (!ofs)
        throw TraceFormatError("write failed: " + path);
}

Trace
readTraceFile(const std::string &path)
{
    std::ifstream ifs(path, std::ios::binary);
    if (!ifs)
        throw TraceFormatError("cannot open for read: " + path);
    return readTrace(ifs);
}

TraceFileInfo
probeTraceFile(const std::string &path)
{
    std::ifstream ifs(path, std::ios::binary);
    if (!ifs)
        throw TraceFormatError("cannot open for read: " + path);

    TraceFileInfo info;
    char magic[kMagicBytes];
    ifs.read(magic, sizeof(magic));
    if (!ifs)
        throw TraceFormatError("bad trace magic");
    if (std::memcmp(magic, kMagicV1, kMagicBytes) == 0) {
        info.version = 1;
        info.bodyFormat = 1;
    } else if (std::memcmp(magic, kMagicV2, kMagicBytes) == 0) {
        info.version = 2;
        info.bodyFormat = 2;
    } else if (std::memcmp(magic, kMagicV3, kMagicBytes) == 0) {
        info.version = 3;
        V3Header h = readEnvelopeHeader(ifs, 3);
        info.bodyFormat = h.bodyFormat;
        info.fingerprint = std::move(h.fingerprint);
    } else if (std::memcmp(magic, kMagicV4, kMagicBytes) == 0) {
        info.version = 4;
        V3Header h = readEnvelopeHeader(ifs, 4);
        info.bodyFormat = h.bodyFormat;
        info.fingerprint = std::move(h.fingerprint);
    } else {
        throw TraceFormatError("bad trace magic");
    }
    info.records = readCountHeader(ifs);

    if (info.version == 4) {
        // O(index) work: validate the full chunk index against the
        // remaining bytes without decoding any chunk.
        V4Geometry geom = readV4Geometry(ifs);
        readV4Index(ifs, info.records, geom);
        info.chunks = geom.chunkCount;
        info.chunkInsts = geom.chunkInsts;
    }

    // Validate the untrusted count against the bytes actually present,
    // exactly like the full reader would before reserving memory.
    uint64_t min_bytes =
        info.bodyFormat == kBodyFixed ? kRecordBytesV1 : 1;
    std::optional<uint64_t> remaining = remainingBytes(ifs);
    if (remaining && info.records > *remaining / min_bytes)
        throwCountExceedsCapacity(info.records, *remaining, min_bytes);

    std::istream::pos_type cur = ifs.tellg();
    ifs.seekg(0, std::ios::end);
    std::istream::pos_type end = ifs.tellg();
    if (cur != std::istream::pos_type(-1) &&
        end != std::istream::pos_type(-1)) {
        info.fileBytes = static_cast<uint64_t>(end);
    }
    return info;
}

} // namespace storemlp
