/**
 * @file
 * Binary trace serialization. Two on-disk formats:
 *  v1 ("SMLPTRC1"): fixed 22-byte little-endian records.
 *  v2 ("SMLPTRC2"): delta-compressed — a control byte per record
 *      (class + presence bits), zigzag-varint pc deltas (sequential
 *      pcs are free), varint addresses, and register/flag bytes only
 *      when non-zero. readTrace() auto-detects the format.
 */

#include "trace/trace_io.hh"

#include <algorithm>
#include <array>
#include <cstring>
#include <fstream>
#include <istream>
#include <optional>
#include <ostream>

namespace storemlp
{

namespace
{

constexpr char kMagicV1[8] = {'S', 'M', 'L', 'P', 'T', 'R', 'C', '1'};
constexpr char kMagicV2[8] = {'S', 'M', 'L', 'P', 'T', 'R', 'C', '2'};
constexpr size_t kRecordBytes = 22;

void
putU64(uint8_t *p, uint64_t v)
{
    for (int i = 0; i < 8; ++i)
        p[i] = static_cast<uint8_t>(v >> (8 * i));
}

uint64_t
getU64(const uint8_t *p)
{
    uint64_t v = 0;
    for (int i = 0; i < 8; ++i)
        v |= static_cast<uint64_t>(p[i]) << (8 * i);
    return v;
}

// ---- v2 helpers ----

void
putVarint(std::ostream &os, uint64_t v)
{
    while (v >= 0x80) {
        os.put(static_cast<char>((v & 0x7f) | 0x80));
        v >>= 7;
    }
    os.put(static_cast<char>(v));
}

uint64_t
getVarint(std::istream &is)
{
    uint64_t v = 0;
    for (unsigned shift = 0; shift < 70; shift += 7) {
        int c = is.get();
        if (c == EOF)
            throw TraceFormatError("truncated varint");
        v |= static_cast<uint64_t>(c & 0x7f) << shift;
        if (!(c & 0x80))
            return v;
    }
    throw TraceFormatError("overlong varint");
}

uint64_t
zigzag(int64_t v)
{
    return (static_cast<uint64_t>(v) << 1) ^
        static_cast<uint64_t>(v >> 63);
}

int64_t
unzigzag(uint64_t v)
{
    return static_cast<int64_t>(v >> 1) ^
        -static_cast<int64_t>(v & 1);
}

// v2 control byte layout: bits 0-3 class, bit 4 pc==prev+4,
// bit 5 register/size block present, bit 6 flags byte present.
constexpr uint8_t kCtrlSeqPc = 1 << 4;
constexpr uint8_t kCtrlRegs = 1 << 5;
constexpr uint8_t kCtrlFlags = 1 << 6;

} // namespace

void
writeTrace(std::ostream &os, const Trace &trace)
{
    os.write(kMagicV1, sizeof(kMagicV1));
    uint8_t hdr[8];
    putU64(hdr, trace.size());
    os.write(reinterpret_cast<const char *>(hdr), sizeof(hdr));

    std::array<uint8_t, kRecordBytes> buf;
    for (const auto &r : trace.records()) {
        putU64(buf.data(), r.pc);
        putU64(buf.data() + 8, r.addr);
        buf[16] = static_cast<uint8_t>(r.cls);
        buf[17] = r.size;
        buf[18] = r.dst;
        buf[19] = r.src1;
        buf[20] = r.src2;
        buf[21] = r.flags;
        os.write(reinterpret_cast<const char *>(buf.data()), buf.size());
    }
}

void
writeTraceCompressed(std::ostream &os, const Trace &trace)
{
    os.write(kMagicV2, sizeof(kMagicV2));
    uint8_t hdr[8];
    putU64(hdr, trace.size());
    os.write(reinterpret_cast<const char *>(hdr), sizeof(hdr));

    uint64_t prev_pc = 0;
    for (const auto &r : trace.records()) {
        bool seq = r.pc == prev_pc + 4;
        bool regs = r.dst || r.src1 || r.src2 || r.size;
        uint8_t ctrl = static_cast<uint8_t>(r.cls);
        if (seq)
            ctrl |= kCtrlSeqPc;
        if (regs)
            ctrl |= kCtrlRegs;
        if (r.flags)
            ctrl |= kCtrlFlags;
        os.put(static_cast<char>(ctrl));

        if (!seq) {
            putVarint(os, zigzag(static_cast<int64_t>(r.pc) -
                                 static_cast<int64_t>(prev_pc)));
        }
        prev_pc = r.pc;

        if (isMemClass(r.cls))
            putVarint(os, r.addr);
        if (regs) {
            os.put(static_cast<char>(r.size));
            os.put(static_cast<char>(r.dst));
            os.put(static_cast<char>(r.src1));
            os.put(static_cast<char>(r.src2));
        }
        if (r.flags)
            os.put(static_cast<char>(r.flags));
    }
}

namespace
{

/**
 * Pre-reserve ceiling when the stream size is unknown (non-seekable
 * input): the vector grows incrementally past this, so a corrupt
 * header count can at worst waste ~24 MB, not allocate 2^64 bytes.
 */
constexpr uint64_t kMaxBlindReserve = 1u << 20;

/**
 * Bytes left in the stream after the current position, or nullopt for
 * non-seekable streams. Used to reject header record counts that the
 * stream cannot possibly satisfy before reserving memory for them.
 */
std::optional<uint64_t>
remainingBytes(std::istream &is)
{
    std::istream::pos_type cur = is.tellg();
    if (cur == std::istream::pos_type(-1))
        return std::nullopt;
    is.seekg(0, std::ios::end);
    std::istream::pos_type end = is.tellg();
    is.seekg(cur);
    if (end == std::istream::pos_type(-1) || end < cur || !is)
        return std::nullopt;
    return static_cast<uint64_t>(end - cur);
}

/**
 * Validate an untrusted header record count against the bytes that
 * actually remain (each record occupies at least `min_record_bytes`)
 * and return a safe reserve() amount. Throws TraceFormatError on an
 * impossible count instead of letting reserve() OOM the process.
 */
uint64_t
checkedReserve(std::istream &is, uint64_t count,
               uint64_t min_record_bytes)
{
    std::optional<uint64_t> remaining = remainingBytes(is);
    if (remaining) {
        if (count > *remaining / min_record_bytes) {
            throw TraceFormatError(
                "trace header count " + std::to_string(count) +
                " exceeds stream capacity (" +
                std::to_string(*remaining) + " bytes remain, >= " +
                std::to_string(min_record_bytes) +
                " bytes per record)");
        }
        return count;
    }
    return std::min(count, kMaxBlindReserve);
}

Trace
readTraceV1(std::istream &is)
{
    uint8_t hdr[8];
    is.read(reinterpret_cast<char *>(hdr), sizeof(hdr));
    if (!is)
        throw TraceFormatError("truncated trace header");
    uint64_t count = getU64(hdr);

    std::vector<TraceRecord> records;
    records.reserve(checkedReserve(is, count, kRecordBytes));
    std::array<uint8_t, kRecordBytes> buf;
    for (uint64_t i = 0; i < count; ++i) {
        is.read(reinterpret_cast<char *>(buf.data()), buf.size());
        if (!is)
            throw TraceFormatError("truncated trace body");
        TraceRecord r;
        r.pc = getU64(buf.data());
        r.addr = getU64(buf.data() + 8);
        if (buf[16] >= static_cast<uint8_t>(InstClass::NumClasses))
            throw TraceFormatError("invalid instruction class");
        r.cls = static_cast<InstClass>(buf[16]);
        r.size = buf[17];
        r.dst = buf[18];
        r.src1 = buf[19];
        r.src2 = buf[20];
        r.flags = buf[21];
        records.push_back(r);
    }
    return Trace(std::move(records));
}

Trace
readTraceV2(std::istream &is)
{
    uint8_t hdr[8];
    is.read(reinterpret_cast<char *>(hdr), sizeof(hdr));
    if (!is)
        throw TraceFormatError("truncated trace header");
    uint64_t count = getU64(hdr);

    std::vector<TraceRecord> records;
    // v2 records are at least the control byte.
    records.reserve(checkedReserve(is, count, 1));
    uint64_t prev_pc = 0;
    for (uint64_t i = 0; i < count; ++i) {
        int ctrl_c = is.get();
        if (ctrl_c == EOF)
            throw TraceFormatError("truncated trace body");
        uint8_t ctrl = static_cast<uint8_t>(ctrl_c);
        uint8_t cls_bits = ctrl & 0x0f;
        if (cls_bits >= static_cast<uint8_t>(InstClass::NumClasses))
            throw TraceFormatError("invalid instruction class");

        TraceRecord r;
        r.cls = static_cast<InstClass>(cls_bits);
        if (ctrl & kCtrlSeqPc) {
            r.pc = prev_pc + 4;
        } else {
            int64_t delta = unzigzag(getVarint(is));
            r.pc = static_cast<uint64_t>(
                static_cast<int64_t>(prev_pc) + delta);
        }
        prev_pc = r.pc;

        if (isMemClass(r.cls))
            r.addr = getVarint(is);
        if (ctrl & kCtrlRegs) {
            int a = is.get(), b = is.get(), c = is.get(), d = is.get();
            if (d == EOF)
                throw TraceFormatError("truncated register block");
            r.size = static_cast<uint8_t>(a);
            r.dst = static_cast<uint8_t>(b);
            r.src1 = static_cast<uint8_t>(c);
            r.src2 = static_cast<uint8_t>(d);
        }
        if (ctrl & kCtrlFlags) {
            int f = is.get();
            if (f == EOF)
                throw TraceFormatError("truncated flags byte");
            r.flags = static_cast<uint8_t>(f);
        }
        records.push_back(r);
    }
    return Trace(std::move(records));
}

} // namespace

Trace
readTrace(std::istream &is)
{
    char magic[8];
    is.read(magic, sizeof(magic));
    if (!is)
        throw TraceFormatError("bad trace magic");
    if (std::memcmp(magic, kMagicV1, sizeof(kMagicV1)) == 0)
        return readTraceV1(is);
    if (std::memcmp(magic, kMagicV2, sizeof(kMagicV2)) == 0)
        return readTraceV2(is);
    throw TraceFormatError("bad trace magic");
}

void
writeTraceFile(const std::string &path, const Trace &trace)
{
    std::ofstream ofs(path, std::ios::binary);
    if (!ofs)
        throw TraceFormatError("cannot open for write: " + path);
    writeTrace(ofs, trace);
    if (!ofs)
        throw TraceFormatError("write failed: " + path);
}

void
writeTraceCompressedFile(const std::string &path, const Trace &trace)
{
    std::ofstream ofs(path, std::ios::binary);
    if (!ofs)
        throw TraceFormatError("cannot open for write: " + path);
    writeTraceCompressed(ofs, trace);
    if (!ofs)
        throw TraceFormatError("write failed: " + path);
}

Trace
readTraceFile(const std::string &path)
{
    std::ifstream ifs(path, std::ios::binary);
    if (!ifs)
        throw TraceFormatError("cannot open for read: " + path);
    return readTrace(ifs);
}

} // namespace storemlp
