/**
 * @file
 * PC -> WC trace rewriter. Implements the paper's methodology: "These
 * instruction sequences [lock acquire/release] were then replaced with
 * the appropriate instruction sequences and barriers" (Section 4.2).
 *
 * Rewrites, per Example 6 of the paper:
 *   casa (acquire)   ->  lwarx ; stwcx ; isync
 *   store (release)  ->  lwsync ; store
 * Everything else is copied through unchanged (standalone membars keep
 * full-fence semantics under both models).
 */

#ifndef STOREMLP_TRACE_REWRITER_HH
#define STOREMLP_TRACE_REWRITER_HH

#include <memory>

#include "trace/lock_detector.hh"
#include "trace/trace.hh"
#include "trace/trace_source.hh"

namespace storemlp
{

/**
 * Append the WC rendition of one record given its lock role: Acquire
 * expands to lwarx;stwcx;isync, Release to lwsync;store, everything
 * else copies through. Returns the number of records appended. Both
 * the batch rewriter and the streaming WcRewriteSource funnel every
 * record through this helper, so their outputs are identical by
 * construction.
 */
uint64_t appendWcExpansion(const TraceRecord &r, LockRole role,
                           std::vector<TraceRecord> &out);

/**
 * Produces the weak-consistency rendition of a processor-consistency
 * trace given a lock analysis.
 */
class TraceRewriter
{
  public:
    /** Rewrite using a precomputed analysis. */
    Trace toWeakConsistency(const Trace &trace,
                            const LockAnalysis &locks) const;

    /** Convenience: detect locks, then rewrite. */
    Trace toWeakConsistency(const Trace &trace) const;
};

/**
 * Streaming PC -> WC rewrite of an inner source: pulls input records
 * through a StreamingLockDetector and expands each finalized
 * (record, role) with appendWcExpansion, carrying only the detector
 * window plus one output chunk across chunk boundaries. Emits exactly
 * the record stream of `TraceRewriter::toWeakConsistency(materialize
 * (inner))`. Sequential; backward fetches restart both the detector
 * and the inner source.
 */
class WcRewriteSource : public TraceSource
{
  public:
    explicit WcRewriteSource(std::unique_ptr<TraceSource> inner,
                             uint64_t window = 512);

    std::shared_ptr<const TraceChunk> fetch(uint64_t chunk_idx) override;
    std::optional<uint64_t> knownSize() const override;
    std::string fingerprint() const override;

  private:
    void restart();
    std::shared_ptr<const TraceChunk> produceNext();

    std::unique_ptr<TraceSource> _inner;
    uint64_t _window;

    std::optional<TraceCursor> _cur;
    uint64_t _inPos = 0;  ///< next input record to push
    StreamingLockDetector _det;
    std::vector<TraceRecord> _outCarry; ///< rewritten, not yet chunked
    uint64_t _emitted = 0;              ///< records handed out in chunks
    uint64_t _nextChunk = 0;
    bool _drained = false; ///< input exhausted and detector flushed
};

} // namespace storemlp

#endif // STOREMLP_TRACE_REWRITER_HH
