/**
 * @file
 * PC -> WC trace rewriter. Implements the paper's methodology: "These
 * instruction sequences [lock acquire/release] were then replaced with
 * the appropriate instruction sequences and barriers" (Section 4.2).
 *
 * Rewrites, per Example 6 of the paper:
 *   casa (acquire)   ->  lwarx ; stwcx ; isync
 *   store (release)  ->  lwsync ; store
 * Everything else is copied through unchanged (standalone membars keep
 * full-fence semantics under both models).
 */

#ifndef STOREMLP_TRACE_REWRITER_HH
#define STOREMLP_TRACE_REWRITER_HH

#include "trace/lock_detector.hh"
#include "trace/trace.hh"

namespace storemlp
{

/**
 * Produces the weak-consistency rendition of a processor-consistency
 * trace given a lock analysis.
 */
class TraceRewriter
{
  public:
    /** Rewrite using a precomputed analysis. */
    Trace toWeakConsistency(const Trace &trace,
                            const LockAnalysis &locks) const;

    /** Convenience: detect locks, then rewrite. */
    Trace toWeakConsistency(const Trace &trace) const;
};

} // namespace storemlp

#endif // STOREMLP_TRACE_REWRITER_HH
