/**
 * @file
 * Calibrated workload profiles. The miss-rate knobs are derived
 * analytically from Table 1 of the paper:
 *   load miss/100  = 100 * loadFrac * loadColdProb
 *   store miss/100 = 100 * storeFrac * storeColdProb / coldStoresPerLine
 *   inst miss/100 ~= 100 * instColdProb * meanExcursionLines
 * and then empirically trimmed against the measured rates of the
 * generator run through the default 2MB L2 (see tests/test_calibration).
 */

#include "trace/workload.hh"

#include <iomanip>
#include <sstream>

namespace storemlp
{

std::string
WorkloadProfile::cacheKey() const
{
    // Hexfloat round-trips doubles exactly; every generator-visible
    // knob must appear here (calibration targets and cpiOnChip do not
    // affect the trace bytes but are cheap to include and harmless).
    std::ostringstream os;
    os << std::hexfloat;
    os << name << '|' << loadFrac << '|' << storeFrac << '|'
       << branchFrac << '|' << loadColdProb << '|' << loadBurstCont
       << '|' << storeColdProb << '|' << storeBurstCont << '|'
       << coldStoresPerLine << '|' << storeSpatialRun << '|'
       << storeRevisitFrac << '|' << flushPhaseProb << '|'
       << flushLenMean << '|' << flushStoreFrac << '|' << flushColdProb
       << '|' << burstPhaseProb << '|' << burstLenMean << '|'
       << burstStoreFrac << '|' << burstColdProb << '|' << instColdProb
       << '|' << instBurstCont << '|' << hotDataBytes << '|'
       << hotL1Frac << '|' << hotL1Bytes << '|' << hotCodeBytes << '|'
       << hotCodeWindowBytes << '|' << hotCodeJumpProb << '|'
       << storeMissRegionBytes << '|' << sharedStoreFrac << '|'
       << sharedStoreRegionBytes << '|' << sharedHotFrac << '|'
       << sharedHotBytes << '|' << sharedLoadFrac << '|' << lockProb
       << '|' << lockCount << '|' << csBodyLen << '|' << membarProb
       << '|' << easyBranchFrac << '|' << branchBias << '|'
       << staticBranches << '|' << branchDependsOnLoadProb << '|'
       << depNearProb;
    return os.str();
}

WorkloadProfile
WorkloadProfile::database()
{
    WorkloadProfile p;
    p.name = "Database";
    p.loadFrac = 0.25;
    p.storeFrac = 0.0915; // flush/burst phases + critical sections add the rest
    p.branchFrac = 0.15;

    // Table 1: stores 10.09, store miss 0.36, load miss 0.57,
    // inst miss 0.09 per 100 instructions.
    p.storeColdProb = 0.094;    // background store misses (x2: revisits)
    p.burstPhaseProb = 0.000044;
    p.burstLenMean = 120;
    p.burstStoreFrac = 0.60;
    p.burstColdProb = 0.50;
    p.coldStoresPerLine = 2;
    p.storeBurstCont = 0.70;    // clustered store misses -> SQ pressure
    // Log/buffer flush phases carry ~60% of the store misses.
    p.flushPhaseProb = 0.000036;
    p.flushLenMean = 600;
    p.flushStoreFrac = 0.055;
    p.flushColdProb = 0.80;
    p.storeSpatialRun = 4;
    p.loadColdProb = 0.0228;
    p.loadBurstCont = 0.60;
    p.instColdProb = 0.00085;
    p.instBurstCont = 0.10;

    p.storeMissRegionBytes = 96ULL << 20;
    p.sharedStoreFrac = 0.10;

    p.lockProb = 0.0035;        // moderate lock density
    p.hotL1Frac = 0.88;
    p.hotCodeWindowBytes = 8 * 1024;
    p.hotCodeJumpProb = 0.00015;
    p.branchDependsOnLoadProb = 0.04;
    p.membarProb = 0.0005;
    p.csBodyLen = 14;

    p.targetStoresPer100 = 10.09;
    p.targetStoreMissPer100 = 0.36;
    p.targetLoadMissPer100 = 0.57;
    p.targetInstMissPer100 = 0.09;
    p.cpiOnChip = 1.11;
    return p;
}

WorkloadProfile
WorkloadProfile::tpcw()
{
    WorkloadProfile p;
    p.name = "TPC-W";
    p.loadFrac = 0.22;
    p.storeFrac = 0.063;
    p.branchFrac = 0.16;

    // Table 1: stores 7.28, store miss 0.12, load miss 0.06,
    // inst miss 0.06 per 100 instructions.
    p.storeColdProb = 0.060;
    p.burstPhaseProb = 0.000012;
    p.burstLenMean = 120;
    p.burstStoreFrac = 0.60;
    p.burstColdProb = 0.50;
    p.coldStoresPerLine = 2;
    p.storeBurstCont = 0.45;    // weakly clustered
    p.flushPhaseProb = 0.0000135;
    p.flushLenMean = 600;
    p.flushStoreFrac = 0.08;
    p.flushColdProb = 0.80;
    p.loadColdProb = 0.0027;
    p.loadBurstCont = 0.40;
    p.instColdProb = 0.00055;
    p.instBurstCont = 0.10;

    p.storeMissRegionBytes = 48ULL << 20;
    p.sharedStoreFrac = 0.12;

    p.lockProb = 0.0055;        // store serialize dominates (Fig 3)
    p.hotL1Frac = 0.88;
    p.hotCodeWindowBytes = 8 * 1024;
    p.hotCodeJumpProb = 0.00015;
    p.branchDependsOnLoadProb = 0.03;
    p.csBodyLen = 12;

    p.targetStoresPer100 = 7.28;
    p.targetStoreMissPer100 = 0.12;
    p.targetLoadMissPer100 = 0.06;
    p.targetInstMissPer100 = 0.06;
    p.cpiOnChip = 1.12;
    return p;
}

WorkloadProfile
WorkloadProfile::specjbb()
{
    WorkloadProfile p;
    p.name = "SPECjbb";
    p.loadFrac = 0.25;
    p.storeFrac = 0.064;
    p.branchFrac = 0.14;

    // Table 1: stores 7.52, store miss 0.07, load miss 0.25,
    // inst miss 0.00 per 100 instructions.
    p.storeColdProb = 0.015;
    p.coldStoresPerLine = 1;
    p.storeBurstCont = 0.30;    // isolated store misses
    p.flushPhaseProb = 0.000012;
    p.flushLenMean = 600;
    p.flushStoreFrac = 0.08;
    p.flushColdProb = 0.50;
    p.loadColdProb = 0.0100;
    p.loadBurstCont = 0.55;
    p.instColdProb = 0.0;
    p.instBurstCont = 0.0;

    p.storeMissRegionBytes = 40ULL << 20;
    p.sharedStoreFrac = 0.08;

    p.lockProb = 0.0050;        // heavy synchronization (Java locks)
    p.hotL1Frac = 0.95;
    p.hotL1Bytes = 24 * 1024;
    p.hotDataBytes = 128 * 1024; // smaller tier-2: warms quickly
    p.hotCodeWindowBytes = 8 * 1024;
    p.hotCodeJumpProb = 0.0001;
    p.branchDependsOnLoadProb = 0.03;
    p.csBodyLen = 10;

    p.targetStoresPer100 = 7.52;
    p.targetStoreMissPer100 = 0.07;
    p.targetLoadMissPer100 = 0.25;
    p.targetInstMissPer100 = 0.00;
    p.cpiOnChip = 0.95;
    return p;
}

WorkloadProfile
WorkloadProfile::specweb()
{
    WorkloadProfile p;
    p.name = "SPECweb";
    p.loadFrac = 0.24;
    p.storeFrac = 0.060;
    p.branchFrac = 0.16;

    // Table 1: stores 7.20, store miss 0.13, load miss 0.14,
    // inst miss 0.01 per 100 instructions.
    p.storeColdProb = 0.0355;
    p.coldStoresPerLine = 1;
    p.storeBurstCont = 0.35;
    // Response-buffer writes: the biggest flush share of the four
    // workloads (drives the paper's 0.22 overlapped fraction).
    p.flushPhaseProb = 0.0000068;
    p.flushLenMean = 600;
    p.flushStoreFrac = 0.07;
    p.flushColdProb = 0.70;
    p.loadColdProb = 0.0058;
    p.loadBurstCont = 0.45;
    p.instColdProb = 0.0001;
    p.instBurstCont = 0.10;

    p.storeMissRegionBytes = 20ULL << 20;
    p.sharedStoreFrac = 0.10;

    p.lockProb = 0.0060;        // store serialize dominates (Fig 3)
    p.hotL1Frac = 0.72;
    p.hotCodeWindowBytes = 2 * 1024;
    p.hotCodeJumpProb = 0.0004;
    p.branchDependsOnLoadProb = 0.03;
    p.csBodyLen = 10;

    p.targetStoresPer100 = 7.20;
    p.targetStoreMissPer100 = 0.13;
    p.targetLoadMissPer100 = 0.14;
    p.targetInstMissPer100 = 0.01;
    p.cpiOnChip = 1.38;
    return p;
}

std::vector<WorkloadProfile>
WorkloadProfile::allCommercial()
{
    return {database(), tpcw(), specjbb(), specweb()};
}

WorkloadProfile
WorkloadProfile::testTiny()
{
    WorkloadProfile p;
    p.name = "TestTiny";
    p.loadFrac = 0.25;
    p.storeFrac = 0.10;
    p.branchFrac = 0.15;
    p.loadColdProb = 0.02;
    p.storeColdProb = 0.03;
    p.instColdProb = 0.0005;
    p.storeMissRegionBytes = 8ULL << 20;
    p.hotDataBytes = 64 * 1024;
    p.hotCodeBytes = 16 * 1024;
    p.lockProb = 0.002;
    p.cpiOnChip = 1.0;
    return p;
}

} // namespace storemlp
