/**
 * @file
 * Lock detector implementation.
 */

#include "trace/lock_detector.hh"

#include <unordered_map>

namespace storemlp
{

LockAnalysis
LockDetector::analyze(const Trace &trace) const
{
    LockAnalysis out;
    out.roles.assign(trace.size(), LockRole::None);

    // addr -> index of the open (unmatched) acquire
    std::unordered_map<uint64_t, uint64_t> open;

    for (uint64_t i = 0; i < trace.size(); ++i) {
        const TraceRecord &r = trace[i];

        if (r.cls == InstClass::AtomicCas) {
            // PC idiom. A new casa to the same address supersedes a
            // stale unmatched one.
            open[r.addr] = i;
            continue;
        }

        if (r.cls == InstClass::LoadLocked) {
            // WC idiom: lwarx must be completed by stwcx to the same
            // address; a trailing isync is part of the acquire.
            if (i + 1 < trace.size() &&
                trace[i + 1].cls == InstClass::StoreCond &&
                trace[i + 1].addr == r.addr) {
                open[r.addr] = i;
            }
            continue;
        }

        if (r.cls == InstClass::Store) {
            auto it = open.find(r.addr);
            if (it == open.end())
                continue;
            uint64_t acq = it->second;
            if (i - acq > _window) {
                // Critical section implausibly long: treat the atomic
                // as a bare CAS, not a lock acquire.
                open.erase(it);
                continue;
            }
            out.pairs.push_back({acq, i, r.addr});
            out.roles[acq] = LockRole::Acquire;
            out.roles[i] = LockRole::Release;

            // Annotate the auxiliary instructions of WC sequences.
            if (trace[acq].cls == InstClass::LoadLocked) {
                out.roles[acq + 1] = LockRole::AcquireAux; // stwcx
                if (acq + 2 < trace.size() &&
                    trace[acq + 2].cls == InstClass::Isync) {
                    out.roles[acq + 2] = LockRole::AcquireAux;
                }
            }
            if (i > 0 && trace[i - 1].cls == InstClass::Lwsync)
                out.roles[i - 1] = LockRole::ReleaseAux;

            open.erase(it);
        }
    }
    return out;
}

} // namespace storemlp
