/**
 * @file
 * Lock detector implementation: a streaming core with batch and
 * whole-source fronts.
 */

#include "trace/lock_detector.hh"

#include "trace/trace_source.hh"

namespace storemlp
{

void
StreamingLockDetector::push(const TraceRecord &r)
{
    _recs.push_back(r);
    _roles.push_back(LockRole::None);
    ++_next;
    // Keep a one-record lag: record j is processed only once j+1 is
    // buffered, because the lwarx idiom inspects the following stwcx.
    while (_processed + 1 < _next)
        processAt(_processed++);
}

void
StreamingLockDetector::finish()
{
    _finished = true;
    while (_processed < _next)
        processAt(_processed++);
}

uint64_t
StreamingLockDetector::finalizedCount() const
{
    if (_finished)
        return _next - _base;
    if (_processed == 0)
        return 0;
    // Last processed index is _processed - 1; a future release store
    // i > j can annotate indices >= i - window >= _processed - window,
    // so everything strictly below that is final.
    uint64_t j = _processed - 1;
    uint64_t final_upto = j >= _window ? j - _window + 1 : 0;
    return final_upto > _base ? final_upto - _base : 0;
}

std::pair<TraceRecord, LockRole>
StreamingLockDetector::pop()
{
    std::pair<TraceRecord, LockRole> out{_recs.front(), _roles.front()};
    _recs.pop_front();
    _roles.pop_front();
    ++_base;
    return out;
}

void
StreamingLockDetector::processAt(uint64_t j)
{
    const TraceRecord &r = recAt(j);

    if (r.cls == InstClass::AtomicCas) {
        // PC idiom. A new casa to the same address supersedes a
        // stale unmatched one.
        _open[r.addr] = j;
        return;
    }

    if (r.cls == InstClass::LoadLocked) {
        // WC idiom: lwarx must be completed by stwcx to the same
        // address; a trailing isync is part of the acquire.
        if (j + 1 < _next && recAt(j + 1).cls == InstClass::StoreCond &&
            recAt(j + 1).addr == r.addr) {
            _open[r.addr] = j;
        }
        return;
    }

    if (r.cls == InstClass::Store) {
        auto it = _open.find(r.addr);
        if (it == _open.end())
            return;
        uint64_t acq = it->second;
        if (j - acq > _window) {
            // Critical section implausibly long: treat the atomic
            // as a bare CAS, not a lock acquire.
            _open.erase(it);
            return;
        }
        _pairs.push_back({acq, j, r.addr});
        roleAt(acq) = LockRole::Acquire;
        roleAt(j) = LockRole::Release;

        // Annotate the auxiliary instructions of WC sequences. For a
        // LoadLocked acquire, acq+1 is the stwcx and the release store
        // sits at j >= acq+2, so both aux slots are always buffered.
        if (recAt(acq).cls == InstClass::LoadLocked) {
            roleAt(acq + 1) = LockRole::AcquireAux; // stwcx
            if (recAt(acq + 2).cls == InstClass::Isync)
                roleAt(acq + 2) = LockRole::AcquireAux;
        }
        if (j > 0 && recAt(j - 1).cls == InstClass::Lwsync)
            roleAt(j - 1) = LockRole::ReleaseAux;

        _open.erase(it);
    }
}

LockAnalysis
LockDetector::analyze(const Trace &trace) const
{
    StreamingLockDetector det(_window);
    LockAnalysis out;
    out.roles.reserve(trace.size());
    for (const TraceRecord &r : trace.records()) {
        det.push(r);
        while (det.finalizedCount())
            out.roles.push_back(det.pop().second);
    }
    det.finish();
    while (det.finalizedCount())
        out.roles.push_back(det.pop().second);
    out.pairs = det.takePairs();
    return out;
}

LockAnalysis
analyzeSource(TraceSource &src, uint64_t window)
{
    StreamingLockDetector det(window);
    LockAnalysis out;
    if (std::optional<uint64_t> n = src.knownSize())
        out.roles.reserve(*n);
    forEachRecord(src, 0, ~uint64_t{0}, [&](const TraceRecord &r) {
        det.push(r);
        while (det.finalizedCount())
            out.roles.push_back(det.pop().second);
    });
    det.finish();
    while (det.finalizedCount())
        out.roles.push_back(det.pop().second);
    out.pairs = det.takePairs();
    return out;
}

} // namespace storemlp
