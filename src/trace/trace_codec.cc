/**
 * @file
 * v4 chunk codec implementation. Encoding is stream-split within a
 * chunk (control bytes, pc-delta varints, address-XOR varints, packed
 * register blocks, flag bytes, aux escapes live in separate sections)
 * so the decoder can validate and decode each section wide instead of
 * interleaving per-record byte parsing; see docs/TRACE_FORMAT.md for
 * the byte-level layout and Lemire & Boytsov, "Decoding billions of
 * integers per second through vectorization", for the technique.
 */

#include "trace/trace_codec.hh"

#include <bit>
#include <cstring>
#include <string>

#include "trace/trace_format.hh"

#if defined(__SSE2__)
#include <emmintrin.h>
#endif
#if defined(__AVX2__)
#include <immintrin.h>
#endif

namespace storemlp::trace_codec
{

namespace
{

using namespace trace_format;

/** Bit i set iff InstClass(i) is a memory class (isMemClass). */
constexpr uint16_t kMemClassMask =
    (1u << static_cast<unsigned>(InstClass::Load)) |
    (1u << static_cast<unsigned>(InstClass::Store)) |
    (1u << static_cast<unsigned>(InstClass::AtomicCas)) |
    (1u << static_cast<unsigned>(InstClass::LoadLocked)) |
    (1u << static_cast<unsigned>(InstClass::StoreCond));

inline bool
memClassBits(uint8_t cls_bits)
{
    return (kMemClassMask >> cls_bits) & 1;
}

[[noreturn]] void
fail(const std::string &msg)
{
    throw TraceFormatError(msg);
}

void
appendVarint(std::vector<uint8_t> &out, uint64_t v)
{
    while (v >= 0x80) {
        out.push_back(static_cast<uint8_t>(v) | 0x80);
        v >>= 7;
    }
    out.push_back(static_cast<uint8_t>(v));
}

// ---- control-byte scan ------------------------------------------------

struct CtrlCounts
{
    uint64_t nonseq = 0; ///< records carrying a pc-delta varint
    uint64_t mem = 0;    ///< records carrying an address varint
    uint64_t regs = 0;   ///< records carrying a register block
    uint64_t flags = 0;  ///< records carrying a flags byte
};

[[noreturn]] void
failCtrl(uint8_t c)
{
    if (c & kCtrlReserved)
        fail("reserved control bit set");
    fail("invalid instruction class");
}

inline void
scanCtrlByte(uint8_t c, CtrlCounts &counts)
{
    uint8_t cls_bits = c & 0x0f;
    if ((c & kCtrlReserved) ||
        cls_bits >= static_cast<uint8_t>(InstClass::NumClasses))
        failCtrl(c);
    counts.nonseq += !(c & kCtrlSeqPc);
    counts.mem += memClassBits(cls_bits);
    counts.regs += (c >> 5) & 1;
    counts.flags += (c >> 6) & 1;
}

/**
 * Validate all `n` control bytes (reserved bit clear, class in range)
 * and tally the section populations, wide where the ISA allows:
 * 32 bytes per step under AVX2, 16 under SSE2, 8 via SWAR elsewhere.
 */
CtrlCounts
scanCtrl(const uint8_t *c, uint64_t n)
{
    CtrlCounts counts;
    uint64_t i = 0;

#if defined(__AVX2__)
    const __m256i lo_mask = _mm256_set1_epi8(0x0f);
    const __m256i nine = _mm256_set1_epi8(9);
    for (; i + 32 <= n; i += 32) {
        __m256i x = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(c + i));
        __m256i lo = _mm256_and_si256(x, lo_mask);
        if (_mm256_movemask_epi8(x) ||
            _mm256_movemask_epi8(_mm256_cmpgt_epi8(lo, nine))) {
            // Locate the bad byte for the precise diagnostic.
            for (uint64_t k = 0; k < 32; ++k)
                scanCtrlByte(c[i + k], counts);
        }
        // movemask reads bit 7 of every byte; shifting left within
        // 16-bit lanes moves each byte's bit 4/5/6 into its bit 7
        // (low-byte bleed lands in lane bits 8..10, never bit 15).
        uint32_t seq = static_cast<uint32_t>(
            _mm256_movemask_epi8(_mm256_slli_epi16(x, 3)));
        uint32_t regs = static_cast<uint32_t>(
            _mm256_movemask_epi8(_mm256_slli_epi16(x, 2)));
        uint32_t flags = static_cast<uint32_t>(
            _mm256_movemask_epi8(_mm256_slli_epi16(x, 1)));
        __m256i mem = _mm256_or_si256(
            _mm256_or_si256(
                _mm256_cmpeq_epi8(lo, _mm256_set1_epi8(1)),
                _mm256_cmpeq_epi8(lo, _mm256_set1_epi8(2))),
            _mm256_or_si256(
                _mm256_cmpeq_epi8(lo, _mm256_set1_epi8(4)),
                _mm256_or_si256(
                    _mm256_cmpeq_epi8(lo, _mm256_set1_epi8(6)),
                    _mm256_cmpeq_epi8(lo, _mm256_set1_epi8(7)))));
        counts.nonseq += 32 - std::popcount(seq);
        counts.regs += std::popcount(regs);
        counts.flags += std::popcount(flags);
        counts.mem += std::popcount(static_cast<uint32_t>(
            _mm256_movemask_epi8(mem)));
    }
#elif defined(__SSE2__)
    const __m128i lo_mask = _mm_set1_epi8(0x0f);
    const __m128i nine = _mm_set1_epi8(9);
    for (; i + 16 <= n; i += 16) {
        __m128i x =
            _mm_loadu_si128(reinterpret_cast<const __m128i *>(c + i));
        __m128i lo = _mm_and_si128(x, lo_mask);
        if (_mm_movemask_epi8(x) ||
            _mm_movemask_epi8(_mm_cmpgt_epi8(lo, nine))) {
            for (uint64_t k = 0; k < 16; ++k)
                scanCtrlByte(c[i + k], counts);
        }
        uint32_t seq = static_cast<uint32_t>(
            _mm_movemask_epi8(_mm_slli_epi16(x, 3)));
        uint32_t regs = static_cast<uint32_t>(
            _mm_movemask_epi8(_mm_slli_epi16(x, 2)));
        uint32_t flags = static_cast<uint32_t>(
            _mm_movemask_epi8(_mm_slli_epi16(x, 1)));
        __m128i mem = _mm_or_si128(
            _mm_or_si128(_mm_cmpeq_epi8(lo, _mm_set1_epi8(1)),
                         _mm_cmpeq_epi8(lo, _mm_set1_epi8(2))),
            _mm_or_si128(
                _mm_cmpeq_epi8(lo, _mm_set1_epi8(4)),
                _mm_or_si128(_mm_cmpeq_epi8(lo, _mm_set1_epi8(6)),
                             _mm_cmpeq_epi8(lo, _mm_set1_epi8(7)))));
        counts.nonseq += 16 - std::popcount(seq & 0xffffu);
        counts.regs += std::popcount(regs & 0xffffu);
        counts.flags += std::popcount(flags & 0xffffu);
        counts.mem += std::popcount(static_cast<uint32_t>(
                                        _mm_movemask_epi8(mem)) &
                                    0xffffu);
    }
#else
    constexpr uint64_t kHi = 0x8080808080808080ULL;
    constexpr uint64_t kLo = 0x0f0f0f0f0f0f0f0fULL;
    for (; i + 8 <= n; i += 8) {
        uint64_t v;
        std::memcpy(&v, c + i, 8);
        uint64_t lo = v & kLo;
        // A nibble >= 10 carries into bit 4 when 6 is added.
        if ((v & kHi) ||
            ((lo + 0x0606060606060606ULL) & 0x1010101010101010ULL)) {
            for (uint64_t k = 0; k < 8; ++k)
                scanCtrlByte(c[i + k], counts);
        }
        counts.nonseq +=
            8 - std::popcount(v & 0x1010101010101010ULL);
        counts.regs += std::popcount(v & 0x2020202020202020ULL);
        counts.flags += std::popcount(v & 0x4040404040404040ULL);
        for (uint64_t k = 0; k < 8; ++k)
            counts.mem += memClassBits(c[i + k] & 0x0f);
    }
#endif

    for (; i < n; ++i)
        scanCtrlByte(c[i], counts);
    return counts;
}

// ---- batch varint decode ----------------------------------------------

/** One bounds-checked varint; same acceptance rules as the v2 reader. */
inline uint64_t
getVarintChecked(const uint8_t *p, uint64_t len, uint64_t &off)
{
    uint64_t v = 0;
    for (unsigned shift = 0; shift < 70; shift += 7) {
        if (off >= len)
            fail("truncated varint");
        uint8_t b = p[off++];
        v |= static_cast<uint64_t>(b & 0x7f) << shift;
        if (!(b & 0x80))
            return v;
    }
    fail("overlong varint");
}

/**
 * Decode exactly `count` varints occupying exactly `len` bytes into
 * `out`. Wide fast path: a single load tests 8 (SWAR) or 16 (SSE2)
 * continuation bits at once, so runs of single-byte varints — the
 * common case for pc deltas and hot-region address XORs — decode
 * without per-value branching.
 */
void
decodeVarintStream(const uint8_t *p, uint64_t len, uint64_t count,
                   uint64_t *out, const char *what)
{
    uint64_t off = 0;
    uint64_t i = 0;
    while (i < count) {
#if defined(__SSE2__)
        if (off + 16 <= len) {
            __m128i x = _mm_loadu_si128(
                reinterpret_cast<const __m128i *>(p + off));
            uint32_t cont =
                static_cast<uint32_t>(_mm_movemask_epi8(x)) & 0xffffu;
            uint64_t singles =
                cont ? std::countr_zero(cont) : uint64_t{16};
            if (singles > count - i)
                singles = count - i;
            for (uint64_t k = 0; k < singles; ++k)
                out[i + k] = p[off + k];
            i += singles;
            off += singles;
            if (singles)
                continue;
        }
#else
        if (off + 8 <= len && i + 8 <= count) {
            uint64_t v;
            std::memcpy(&v, p + off, 8);
            if (!(v & 0x8080808080808080ULL)) {
                for (uint64_t k = 0; k < 8; ++k)
                    out[i + k] = p[off + k];
                i += 8;
                off += 8;
                continue;
            }
        }
#endif
        out[i++] = getVarintChecked(p, len, off);
    }
    if (off != len)
        fail(std::string(what) + " stream length mismatch (" +
             std::to_string(len - off) + " trailing bytes)");
}

// ---- register block packing -------------------------------------------

inline uint8_t
sizeCodeFor(uint8_t size)
{
    if (size == 0)
        return 0;
    if ((size & (size - 1)) == 0) {
        // Power of two: 1 << (code - 1), codes 1..8.
        return static_cast<uint8_t>(std::countr_zero(size) + 1);
    }
    return kSizeCodeEscape;
}

inline void
unpackRegs(const uint8_t *b, TraceRecord &r, const uint8_t *aux,
           uint64_t aux_len, uint64_t &aux_off)
{
    if (b[2] & 0xc0)
        fail("reserved register-block bits set");
    r.dst = b[0] & 0x3f;
    r.src1 = b[1] & 0x3f;
    r.src2 = b[2] & 0x3f;
    uint8_t code = static_cast<uint8_t>((b[0] >> 6) | ((b[1] >> 6) << 2));
    if (code == 0) {
        r.size = 0;
    } else if (code <= 8) {
        r.size = static_cast<uint8_t>(1u << (code - 1));
    } else if (code == kSizeCodeEscape) {
        if (aux_off >= aux_len)
            fail("truncated aux stream");
        r.size = aux[aux_off++];
    } else {
        fail("reserved size code " + std::to_string(code));
    }
}

} // namespace

// ---- index entries ----------------------------------------------------

V4IndexEntry
readV4IndexEntry(const uint8_t *p)
{
    V4IndexEntry e;
    e.records = getU64(p);
    e.byteOff = getU64(p + 8);
    e.byteLen = getU64(p + 16);
    e.seeds.pc = getU64(p + 24);
    e.seeds.addr = getU64(p + 32);
    return e;
}

void
writeV4IndexEntry(uint8_t *p, const V4IndexEntry &e)
{
    putU64(p, e.records);
    putU64(p + 8, e.byteOff);
    putU64(p + 16, e.byteLen);
    putU64(p + 24, e.seeds.pc);
    putU64(p + 32, e.seeds.addr);
}

V4IndexValidator::V4IndexValidator(uint64_t count, uint64_t chunk_insts,
                                   uint64_t chunk_count)
    : _count(count), _chunkInsts(chunk_insts), _chunkCount(chunk_count)
{
    if (count == 0) {
        if (chunk_count != 0)
            fail("v4 chunk count " + std::to_string(chunk_count) +
                 " for an empty trace");
        return;
    }
    if (chunk_insts == 0)
        fail("v4 chunk size is zero");
    if (chunk_insts > kMaxChunkInstsV4)
        fail("v4 chunk size " + std::to_string(chunk_insts) +
             " exceeds limit " + std::to_string(kMaxChunkInstsV4));
    uint64_t expected = (count + chunk_insts - 1) / chunk_insts;
    if (chunk_count != expected)
        fail("v4 chunk count " + std::to_string(chunk_count) +
             " does not match " + std::to_string(count) +
             " records in chunks of " + std::to_string(chunk_insts));
}

void
V4IndexValidator::feed(const V4IndexEntry &e, uint64_t idx)
{
    uint64_t expected_records = idx + 1 == _chunkCount
        ? _count - idx * _chunkInsts
        : _chunkInsts;
    if (e.records != expected_records)
        fail("v4 chunk " + std::to_string(idx) + " record count " +
             std::to_string(e.records) + " (expected " +
             std::to_string(expected_records) + ")");
    if (e.byteOff != _nextOff)
        fail("v4 chunk " + std::to_string(idx) + " offset " +
             std::to_string(e.byteOff) + " is not contiguous (expected " +
             std::to_string(_nextOff) + ")");
    uint64_t min_len = kChunkHeaderBytesV4 + e.records;
    uint64_t max_len =
        kChunkHeaderBytesV4 + e.records * kMaxRecordBytesV4;
    if (e.byteLen < min_len || e.byteLen > max_len)
        fail("v4 chunk " + std::to_string(idx) + " byte length " +
             std::to_string(e.byteLen) + " outside plausible range [" +
             std::to_string(min_len) + ", " + std::to_string(max_len) +
             "]");
    _nextOff += e.byteLen;
    ++_fed;
}

void
V4IndexValidator::finish(uint64_t body_bytes) const
{
    if (_fed != _chunkCount)
        fail("v4 chunk index truncated (" + std::to_string(_fed) +
             " of " + std::to_string(_chunkCount) + " entries)");
    if (_nextOff != body_bytes)
        fail("v4 chunk index does not match stream size (chunks claim " +
             std::to_string(_nextOff) + " of " +
             std::to_string(body_bytes) + " body bytes)");
}

// ---- encode -----------------------------------------------------------

uint64_t
encodeV4Chunk(std::vector<uint8_t> &out, const TraceRecord *records,
              uint64_t n, CodecSeeds &seeds)
{
    size_t base = out.size();
    out.resize(base + kChunkHeaderBytesV4);
    out.reserve(base + kChunkHeaderBytesV4 + 6 * n);

    std::vector<uint8_t> pcs, addrs, regs, flags, aux;
    pcs.reserve(n / 4);
    addrs.reserve(n);
    regs.reserve(3 * n);

    uint64_t prev_pc = seeds.pc;
    uint64_t prev_addr = seeds.addr;
    for (uint64_t i = 0; i < n; ++i) {
        const TraceRecord &r = records[i];
        bool seq = r.pc == prev_pc + 4;
        bool has_regs = r.dst || r.src1 || r.src2 || r.size;
        uint8_t ctrl = static_cast<uint8_t>(r.cls);
        if (seq) {
            ctrl |= kCtrlSeqPc;
        } else {
            appendVarint(pcs, zigzag(static_cast<int64_t>(r.pc) -
                                     static_cast<int64_t>(prev_pc)));
        }
        prev_pc = r.pc;

        if (isMemClass(r.cls)) {
            appendVarint(addrs, r.addr ^ prev_addr);
            prev_addr = r.addr;
        }
        if (has_regs) {
            ctrl |= kCtrlRegs;
            if ((r.dst | r.src1 | r.src2) & ~0x3f)
                fail("register id out of range for v4 encoding "
                     "(ids must be < 64)");
            uint8_t code = sizeCodeFor(r.size);
            if (code == kSizeCodeEscape)
                aux.push_back(r.size);
            regs.push_back(
                static_cast<uint8_t>(r.dst | ((code & 3) << 6)));
            regs.push_back(static_cast<uint8_t>(
                r.src1 | (((code >> 2) & 3) << 6)));
            regs.push_back(r.src2);
        }
        if (r.flags) {
            ctrl |= kCtrlFlags;
            flags.push_back(r.flags);
        }
        out.push_back(ctrl);
    }

    for (const std::vector<uint8_t> *sec :
         {&pcs, &addrs, &regs, &flags, &aux}) {
        if (sec->size() > UINT32_MAX)
            fail("v4 chunk section exceeds 4 GiB; use a smaller "
                 "chunk size");
        out.insert(out.end(), sec->begin(), sec->end());
    }
    putU32(out.data() + base, static_cast<uint32_t>(pcs.size()));
    putU32(out.data() + base + 4, static_cast<uint32_t>(addrs.size()));
    putU32(out.data() + base + 8, static_cast<uint32_t>(regs.size()));
    putU32(out.data() + base + 12,
           static_cast<uint32_t>(flags.size()));
    putU32(out.data() + base + 16, static_cast<uint32_t>(aux.size()));

    seeds.pc = prev_pc;
    seeds.addr = prev_addr;
    return out.size() - base;
}

// ---- decode -----------------------------------------------------------

std::vector<TraceRecord>
decodeV4Chunk(const uint8_t *p, uint64_t len, uint64_t n,
              const CodecSeeds &seeds)
{
    if (len < kChunkHeaderBytesV4 + n)
        fail("truncated v4 chunk");
    uint64_t pc_len = getU32(p);
    uint64_t addr_len = getU32(p + 4);
    uint64_t regs_len = getU32(p + 8);
    uint64_t flags_len = getU32(p + 12);
    uint64_t aux_len = getU32(p + 16);
    if (kChunkHeaderBytesV4 + n + pc_len + addr_len + regs_len +
            flags_len + aux_len !=
        len)
        fail("v4 chunk section lengths do not match chunk size");

    const uint8_t *ctrl = p + kChunkHeaderBytesV4;
    const uint8_t *pc_sec = ctrl + n;
    const uint8_t *addr_sec = pc_sec + pc_len;
    const uint8_t *regs_sec = addr_sec + addr_len;
    const uint8_t *flags_sec = regs_sec + regs_len;
    const uint8_t *aux_sec = flags_sec + flags_len;

    CtrlCounts counts = scanCtrl(ctrl, n);
    if (regs_len != 3 * counts.regs)
        fail("v4 register stream length mismatch (" +
             std::to_string(regs_len) + " bytes for " +
             std::to_string(counts.regs) + " blocks)");
    if (flags_len != counts.flags)
        fail("v4 flags stream length mismatch (" +
             std::to_string(flags_len) + " bytes for " +
             std::to_string(counts.flags) + " records)");

    std::vector<uint64_t> deltas(counts.nonseq);
    decodeVarintStream(pc_sec, pc_len, counts.nonseq, deltas.data(),
                       "v4 pc");
    std::vector<uint64_t> xors(counts.mem);
    decodeVarintStream(addr_sec, addr_len, counts.mem, xors.data(),
                       "v4 address");

    std::vector<TraceRecord> recs(n);
    uint64_t prev_pc = seeds.pc;
    uint64_t prev_addr = seeds.addr;
    uint64_t di = 0;
    uint64_t ai = 0;
    uint64_t aux_off = 0;
    const uint8_t *rp = regs_sec;
    const uint8_t *fp = flags_sec;

    uint64_t i = 0;
    while (i < n) {
        uint8_t c = ctrl[i];
        // Wide fill: 8 identical sequential-pc control bytes decode
        // as one fixed-shape block (the common case — hot loops emit
        // long runs of one instruction pattern).
        if ((c & kCtrlSeqPc) && i + 8 <= n) {
            uint64_t v;
            std::memcpy(&v, ctrl + i, 8);
            if (v == 0x0101010101010101ULL * c) {
                InstClass cls = static_cast<InstClass>(c & 0x0f);
                bool is_mem = memClassBits(c & 0x0f);
                bool has_regs = c & kCtrlRegs;
                bool has_flags = c & kCtrlFlags;
                for (uint64_t k = 0; k < 8; ++k) {
                    TraceRecord &r = recs[i + k];
                    r.cls = cls;
                    prev_pc += 4;
                    r.pc = prev_pc;
                    if (is_mem) {
                        prev_addr ^= xors[ai++];
                        r.addr = prev_addr;
                    }
                    if (has_regs) {
                        unpackRegs(rp, r, aux_sec, aux_len, aux_off);
                        rp += 3;
                    }
                    if (has_flags)
                        r.flags = *fp++;
                }
                i += 8;
                continue;
            }
        }

        TraceRecord &r = recs[i];
        r.cls = static_cast<InstClass>(c & 0x0f);
        if (c & kCtrlSeqPc) {
            prev_pc += 4;
        } else {
            prev_pc = static_cast<uint64_t>(
                static_cast<int64_t>(prev_pc) +
                unzigzag(deltas[di++]));
        }
        r.pc = prev_pc;
        if (memClassBits(c & 0x0f)) {
            prev_addr ^= xors[ai++];
            r.addr = prev_addr;
        }
        if (c & kCtrlRegs) {
            unpackRegs(rp, r, aux_sec, aux_len, aux_off);
            rp += 3;
        }
        if (c & kCtrlFlags)
            r.flags = *fp++;
        ++i;
    }

    if (aux_off != aux_len)
        fail("v4 aux stream length mismatch (" +
             std::to_string(aux_len - aux_off) + " trailing bytes)");
    return recs;
}

} // namespace storemlp::trace_codec
