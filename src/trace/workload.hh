/**
 * @file
 * Workload profiles: the statistical knobs of the synthetic trace
 * generator, plus the four calibrated commercial profiles standing in
 * for the paper's proprietary traces (see DESIGN.md section 2).
 *
 * Calibration targets come straight from the paper: Table 1 (store
 * frequency and L2 store/load/inst miss rates per 100 instructions),
 * Table 3 (on-chip CPI). Lock density is the free parameter chosen to
 * reproduce the Figure 3 window-termination mix.
 */

#ifndef STOREMLP_TRACE_WORKLOAD_HH
#define STOREMLP_TRACE_WORKLOAD_HH

#include <cstdint>
#include <string>
#include <vector>

namespace storemlp
{

/** Base virtual addresses for the synthetic address-space layout. */
struct AddressMap
{
    static constexpr uint64_t kHotCodeBase = 0x0000000010000000ULL;
    static constexpr uint64_t kColdCodeBase = 0x0000000100000000ULL;
    static constexpr uint64_t kHotDataBase = 0x0000000020000000ULL;
    static constexpr uint64_t kLockBase = 0x0000000030000000ULL;
    /** Per-chip private store-miss regions are offset by chip id. */
    static constexpr uint64_t kPrivateStoreBase = 0x0000004000000000ULL;
    static constexpr uint64_t kPrivateStoreStride = 0x0000001000000000ULL;
    /** One global region shared between all chips. */
    static constexpr uint64_t kSharedStoreBase = 0x0000007000000000ULL;
    /** Cold (streaming) load region, per chip. */
    static constexpr uint64_t kColdLoadBase = 0x0000008000000000ULL;
    static constexpr uint64_t kColdLoadStride = 0x0000001000000000ULL;
};

/**
 * All generator parameters for one workload. Probabilities are per
 * dynamic instruction slot unless stated otherwise.
 */
struct WorkloadProfile
{
    std::string name = "custom";

    // ---- instruction mix (remainder is Alu) ----
    double loadFrac = 0.25;   ///< fraction of loads
    double storeFrac = 0.10;  ///< fraction of stores
    double branchFrac = 0.15; ///< fraction of branches

    // ---- off-chip miss shaping ----
    /** Probability a load is part of a cold (off-chip missing) burst. */
    double loadColdProb = 0.02;
    /** Continuation probability of a cold-load burst (mean 1/(1-p)). */
    double loadBurstCont = 0.60;
    /** Probability a store is part of a cold burst. */
    double storeColdProb = 0.03;
    /** Continuation probability of a cold-store burst. */
    double storeBurstCont = 0.60;
    /** Cold stores written per 64B line before moving to the next. */
    uint32_t coldStoresPerLine = 2;
    /** Consecutive lines per spatial run in the store-miss region. */
    uint32_t storeSpatialRun = 4;
    /** Probability a private store-region run revisits a recently
     *  written area (buffer-pool style reuse: the line was brought in,
     *  modified, evicted — and is now written again). */
    double storeRevisitFrac = 0.55;
    // ---- store flush phases ----
    // Commercial workloads write back buffers/logs in bursts during
    // which no locks are taken and few loads miss (e.g. DB log
    // writers, page flushes, response-buffer writes). These phases
    // produce both the fully-overlapped store misses of Table 2 and
    // the store-queue pressure of Figure 2.
    /** Probability of entering a flush phase, per instruction. */
    double flushPhaseProb = 0.0;
    /** Mean flush phase length in instructions. */
    uint32_t flushLenMean = 250;
    /** Fraction of flush-phase slots that are stores. */
    double flushStoreFrac = 0.35;
    /** Fraction of flush-phase stores that are cold (missing). */
    double flushColdProb = 0.8;

    // Dense store bursts (memset/memcpy-like): store-dominated
    // stretches that back up the store queue AND the store buffer,
    // producing the SB-full window terminations of Figure 3 and the
    // store-queue-size sensitivity of Figure 2.
    double burstPhaseProb = 0.0;  ///< per-instruction entry probability
    uint32_t burstLenMean = 120;  ///< mean burst length (instructions)
    double burstStoreFrac = 0.60; ///< store density inside the burst
    double burstColdProb = 0.50;  ///< cold fraction of burst stores

    /** Probability of starting a cold-code excursion per instruction. */
    double instColdProb = 0.0009;
    /** Continuation probability of multi-line code excursions. */
    double instBurstCont = 0.25;

    // ---- working sets ----
    uint64_t hotDataBytes = 256 * 1024;      ///< L2-resident data
    /** Fraction of hot-data accesses hitting the L1-resident tier. */
    double hotL1Frac = 0.80;
    uint64_t hotL1Bytes = 16 * 1024;         ///< L1-resident data tier
    uint64_t hotCodeBytes = 64 * 1024;       ///< L2-resident code
    /** Instruction fetch loops inside a window of this size... */
    uint64_t hotCodeWindowBytes = 4 * 1024;
    /** ...and jumps to a new window with this per-inst probability. */
    double hotCodeJumpProb = 0.00025;
    uint64_t storeMissRegionBytes = 64ULL << 20; ///< recurring private data
    /** Fraction of cold stores directed at the globally shared region. */
    double sharedStoreFrac = 0.12;
    uint64_t sharedStoreRegionBytes = 16ULL << 20;
    /** Fraction of shared-region runs hitting the hot shared subset
     *  (contended queues/counters — what other chips also write). */
    double sharedHotFrac = 0.8;
    uint64_t sharedHotBytes = 128 * 1024;
    /** Fraction of cold loads reading the shared region (consumers
     *  reading queues/buffers other chips wrote). */
    double sharedLoadFrac = 0.06;

    // ---- locks / critical sections ----
    /** Probability of emitting a critical section per slot. */
    double lockProb = 0.002;
    uint32_t lockCount = 64;       ///< distinct hot lock addresses
    uint32_t csBodyLen = 12;       ///< mean body length (instructions)
    double membarProb = 0.0002;    ///< standalone membar rate

    // ---- branches ----
    /** Fraction of static branches with deterministic outcomes. */
    double easyBranchFrac = 0.85;
    /** Majority-direction probability of the remaining hard branches. */
    double branchBias = 0.70;
    uint32_t staticBranches = 2048;
    /** Probability a branch consumes the most recent load's result. */
    double branchDependsOnLoadProb = 0.15;

    // ---- dependences ----
    /** Probability a source register is drawn from recent producers. */
    double depNearProb = 0.5;

    // ---- paper calibration targets (for tests/EXPERIMENTS.md) ----
    double targetStoresPer100 = 0.0;
    double targetStoreMissPer100 = 0.0;
    double targetLoadMissPer100 = 0.0;
    double targetInstMissPer100 = 0.0;
    double cpiOnChip = 1.0; ///< Table 3 on-chip CPI

    /**
     * Stable fingerprint of every generator knob, used to key the
     * trace cache. Two profiles with equal fingerprints generate
     * byte-identical traces for the same seed/length/chip. Must be
     * kept in sync with the field list above (a missed field risks a
     * stale cache hit, not a crash — test_sweep checks distinctness).
     */
    std::string cacheKey() const;

    // ---- factory functions for the paper's four workloads ----
    static WorkloadProfile database();
    static WorkloadProfile tpcw();
    static WorkloadProfile specjbb();
    static WorkloadProfile specweb();
    /** The four commercial workloads in the paper's order. */
    static std::vector<WorkloadProfile> allCommercial();
    /** A tiny fast profile for unit tests. */
    static WorkloadProfile testTiny();
};

} // namespace storemlp

#endif // STOREMLP_TRACE_WORKLOAD_HH
