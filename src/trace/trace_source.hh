/**
 * @file
 * Streaming trace pipeline: the TraceSource abstraction and its chunk
 * cursor. A TraceSource hands out fixed-size immutable chunks of
 * TraceRecords on demand, so consumers (the epoch engine, the lock
 * detector, the Table-1 tallies) hold O(chunk) records resident
 * instead of materializing a whole trace vector:
 *
 *   MaterializedSource  zero-copy chunk views over an in-memory Trace
 *                       (the compatibility path; identical behavior).
 *   GeneratorSource     synthesizes chunks on the fly from a workload
 *                       profile — sweeps over generated traces never
 *                       materialize at all.
 *   StreamingFileSource mmap-backed on-disk traces decoded chunk by
 *                       chunk (trace_file_source.hh).
 *   WcRewriteSource     streaming PC->WC rewrite of an inner source
 *                       (rewriter.hh).
 *   CachedSource        routes chunk construction through a shared
 *                       TraceCache keyed by (fingerprint, chunk index)
 *                       so parallel sweep workers share chunk decodes.
 *
 * Chunking is an execution detail, never a semantic one: any chunk
 * size yields the identical record stream, and the equivalence suite
 * (tests/test_trace_source.cc) holds every source to bit-identical
 * results against the materialized path.
 */

#ifndef STOREMLP_TRACE_TRACE_SOURCE_HH
#define STOREMLP_TRACE_TRACE_SOURCE_HH

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "trace/generator.hh"
#include "trace/trace.hh"
#include "trace/trace_cache.hh"

namespace storemlp
{

/** Default records per chunk (64K records ~= 2 MB resident). */
inline constexpr uint64_t kDefaultChunkInsts = uint64_t{1} << 16;

/**
 * One immutable run of consecutive trace records. Either owns its
 * records (`storage`) or borrows a view into memory kept alive by
 * `backing` (or, for MaterializedSource over a caller-owned Trace, by
 * the caller's guarantee that the Trace outlives the chunk).
 */
class TraceChunk
{
  public:
    /** Owning chunk: records are moved in. */
    TraceChunk(uint64_t first_idx, std::vector<TraceRecord> records)
        : firstIdx(first_idx), _storage(std::move(records))
    {
        data = _storage.data();
        count = _storage.size();
    }

    /**
     * Borrowed view; `backing` (if any) keeps the memory alive. When
     * the caller already holds SoA lanes covering the records (e.g. a
     * whole-trace lane cache), `ext_lanes`/`ext_off` borrow the slice
     * starting at lane index `ext_off` instead of deriving a copy.
     */
    TraceChunk(uint64_t first_idx, const TraceRecord *records,
               uint64_t n, std::shared_ptr<const void> backing = nullptr,
               std::shared_ptr<const TraceLanes> ext_lanes = nullptr,
               uint64_t ext_off = 0)
        : firstIdx(first_idx), data(records), count(n),
          _backing(std::move(backing)), _extLanes(std::move(ext_lanes)),
          _extOff(ext_off)
    {
    }

    TraceChunk(const TraceChunk &) = delete;
    TraceChunk &operator=(const TraceChunk &) = delete;

    uint64_t firstIdx = 0;          ///< trace index of data[0]
    const TraceRecord *data = nullptr;
    uint64_t count = 0;

    /** Approximate resident bytes (used for cache accounting). */
    uint64_t bytes() const { return count * sizeof(TraceRecord); }

    /**
     * Pointers to this chunk's SoA lanes (see TraceLanes), so the
     * engine's record fetch and the scout's lookahead scan are linear
     * lane walks instead of strided struct reads. Index with
     * `idx - firstIdx`.
     */
    struct LaneRefs
    {
        const uint64_t *pc;
        const uint64_t *addr;
        const uint8_t *cls;
        const uint32_t *meta;
    };

    /**
     * Lanes for this chunk: a borrowed slice when the creator supplied
     * one, otherwise derived once on first use (thread-safe: chunks
     * are shared across sweep workers via TraceCache).
     */
    LaneRefs lanes() const;

  private:
    std::vector<TraceRecord> _storage;
    std::shared_ptr<const void> _backing;

    std::shared_ptr<const TraceLanes> _extLanes; ///< borrowed lanes
    uint64_t _extOff = 0; ///< index of data[0] within *_extLanes

    mutable TraceLanes _lanes; ///< derived lanes (no-_extLanes case)
    mutable std::once_flag _lanesOnce;
};

/**
 * A trace presented as a sequence of fixed-size chunks.
 *
 * Contract:
 *  - every chunk except the last holds exactly `chunkInsts()` records;
 *  - `fetch(k)` returns chunk k, or nullptr once k is past the end;
 *  - chunks are immutable and remain valid while their shared_ptr (and
 *    the source, for borrowed views) lives;
 *  - sequential sources (generator, rewrite) may service a backward
 *    fetch by restarting from scratch — correct, but O(n); random-
 *    access sources (materialized, file) fetch any chunk in O(chunk).
 *
 * Implementations are single-threaded; wrap in CachedSource (which
 * serializes inner fetches) to share one source across sweep workers.
 */
class TraceSource
{
  public:
    virtual ~TraceSource() = default;

    uint64_t chunkInsts() const { return _chunkInsts; }

    /** Chunk `chunk_idx` of the stream; nullptr past the end. */
    virtual std::shared_ptr<const TraceChunk> fetch(uint64_t chunk_idx)
        = 0;

    /**
     * Total records, when already known (materialized/file sources, or
     * a sequential source that has reached its end). nullopt means
     * "walk the stream to find out".
     */
    virtual std::optional<uint64_t> knownSize() const = 0;

    /**
     * Identity of the record stream for chunk caching: everything that
     * determines the bytes (profile fingerprint, seed, length,
     * rewrite). Empty means "not cacheable".
     */
    virtual std::string fingerprint() const { return {}; }

  protected:
    explicit TraceSource(uint64_t chunk_insts)
        : _chunkInsts(chunk_insts ? chunk_insts : kDefaultChunkInsts)
    {
    }

    uint64_t _chunkInsts;
};

/**
 * Sliding-window reader over a TraceSource: random access by absolute
 * record index with an inline fast path for the chunk under the
 * cursor. Holds every fetched chunk until `trim()` releases those
 * wholly below the consumer's progress point, so lookahead (scout)
 * can read forward without refetching and resident memory stays
 * O(lookahead distance), not O(trace).
 */
class TraceCursor
{
  public:
    explicit TraceCursor(TraceSource &src)
        : _src(src), _chunk(src.chunkInsts()), _end(src.knownSize())
    {
    }

    /** Record at `idx`, or nullptr once `idx` is past the end. */
    const TraceRecord *
    tryAt(uint64_t idx)
    {
        if (idx - _curFirst < _curCount)
            return _curData + (idx - _curFirst);
        return slowAt(idx);
    }

    /**
     * Structure-of-arrays window covering `idx`. Index the lanes with
     * `idx - first`; the view stays valid until the next cursor call.
     * nullptr once `idx` is past the end.
     */
    struct LaneView
    {
        const uint64_t *pc = nullptr;
        const uint64_t *addr = nullptr;
        const uint8_t *cls = nullptr;
        const uint32_t *meta = nullptr;
        uint64_t first = 0;
        uint64_t count = 0;
    };
    const LaneView *
    view(uint64_t idx)
    {
        if (idx - _view.first < _view.count)
            return &_view;
        return slowView(idx);
    }

    /** Drop held chunks that end at or below `keep_from`. */
    void
    trim(uint64_t keep_from)
    {
        while (!_held.empty()) {
            auto it = _held.begin();
            uint64_t chunk_end =
                it->second->firstIdx + it->second->count;
            if (chunk_end > keep_from || it->second->data == _curData)
                break;
            _held.erase(it);
        }
    }

    /** Stream length, once known (source metadata or end-of-stream). */
    std::optional<uint64_t> endIdx() const { return _end; }

  private:
    const TraceRecord *slowAt(uint64_t idx);
    const LaneView *slowView(uint64_t idx);

    TraceSource &_src;
    uint64_t _chunk;

    // fast path: the chunk most recently touched
    uint64_t _curFirst = 0;
    uint64_t _curCount = 0;
    const TraceRecord *_curData = nullptr;
    const TraceChunk *_curChunk = nullptr;
    LaneView _view; ///< lane window over _curChunk (count 0 = unbuilt)

    std::map<uint64_t, std::shared_ptr<const TraceChunk>> _held;
    std::optional<uint64_t> _end;
};

/**
 * Chunk views over an in-memory Trace: zero-copy, random access, and
 * behaviorally identical to indexing the vector. When constructed
 * from a shared_ptr the chunks keep the trace alive; when constructed
 * from a reference the caller guarantees the Trace outlives them.
 */
class MaterializedSource : public TraceSource
{
  public:
    explicit MaterializedSource(const Trace &trace,
                                uint64_t chunk_insts = kDefaultChunkInsts,
                                std::string fingerprint = {})
        : TraceSource(chunk_insts), _trace(&trace),
          _fingerprint(std::move(fingerprint))
    {
    }

    explicit MaterializedSource(std::shared_ptr<const Trace> trace,
                                uint64_t chunk_insts = kDefaultChunkInsts,
                                std::string fingerprint = {})
        : TraceSource(chunk_insts), _trace(trace.get()),
          _owned(std::move(trace)), _fingerprint(std::move(fingerprint))
    {
    }

    std::shared_ptr<const TraceChunk> fetch(uint64_t chunk_idx) override;
    std::optional<uint64_t> knownSize() const override
    {
        return _trace->size();
    }
    std::string fingerprint() const override { return _fingerprint; }

  private:
    const Trace *_trace;
    std::shared_ptr<const Trace> _owned;
    std::string _fingerprint;
};

/**
 * Synthesizes chunks on the fly from a workload profile. Emits the
 * exact record stream of `SyntheticTraceGenerator::generate(count)` —
 * including the generator's stop-at-slot-boundary overshoot — without
 * ever materializing it: generation proceeds one chunk ahead of the
 * consumer with O(chunk) carried state. Backward fetches restart the
 * generator from the seed (deterministic, O(n)); front a CachedSource
 * when revisiting chunks matters.
 */
class GeneratorSource : public TraceSource
{
  public:
    GeneratorSource(const WorkloadProfile &profile, uint64_t seed,
                    uint64_t count, uint32_t chip_id = 0,
                    uint64_t chunk_insts = kDefaultChunkInsts);

    std::shared_ptr<const TraceChunk> fetch(uint64_t chunk_idx) override;
    std::optional<uint64_t> knownSize() const override;
    std::string fingerprint() const override;

  private:
    void restart();
    /** Produce chunk `_nextChunk`, or nullptr at end of stream. */
    std::shared_ptr<const TraceChunk> produceNext();

    WorkloadProfile _profile;
    uint64_t _seed;
    uint64_t _count;
    uint32_t _chipId;

    std::optional<SyntheticTraceGenerator> _gen;
    std::vector<TraceRecord> _pending; ///< generated, not yet chunked
    uint64_t _generated = 0;           ///< records emitted by _gen
    uint64_t _emitted = 0;             ///< records handed out in chunks
    uint64_t _nextChunk = 0;
    bool _genDone = false;             ///< _gen reached its stop slot
};

/**
 * Routes chunk construction of an inner source through a TraceCache,
 * keyed `keyBase + "#c" + chunkIdx`, so concurrent consumers of the
 * same stream (sweep workers) build/decode each chunk exactly once.
 * Inner fetches are serialized under a mutex; cache lookups are not,
 * so cache hits from N workers proceed concurrently. End-of-stream is
 * cached as an empty chunk so every worker learns the length.
 */
class CachedSource : public TraceSource
{
  public:
    /** `key_base` defaults to the inner source's fingerprint. */
    CachedSource(std::unique_ptr<TraceSource> inner, TraceCache &cache,
                 std::string key_base = {});

    std::shared_ptr<const TraceChunk> fetch(uint64_t chunk_idx) override;
    std::optional<uint64_t> knownSize() const override;
    std::string fingerprint() const override { return _keyBase; }

  private:
    std::unique_ptr<TraceSource> _inner;
    TraceCache &_cache;
    std::string _keyBase;
    mutable std::mutex _mu; ///< serializes inner fetches
};

/**
 * Walk records [begin, end) of a source, invoking `fn(record)` for
 * each; stops early at end-of-stream. Returns the number of records
 * visited.
 */
template <typename Fn>
uint64_t
forEachRecord(TraceSource &src, uint64_t begin, uint64_t end, Fn &&fn)
{
    TraceCursor cur(src);
    uint64_t i = begin;
    for (; i < end; ++i) {
        const TraceRecord *r = cur.tryAt(i);
        if (!r)
            break;
        fn(*r);
        cur.trim(i);
    }
    return i - begin;
}

/** Materialize a whole source into a Trace (tests, small inputs). */
Trace materializeSource(TraceSource &src);

} // namespace storemlp

#endif // STOREMLP_TRACE_TRACE_SOURCE_HH
