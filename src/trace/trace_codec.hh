/**
 * @file
 * v4 chunk codec: encode/decode one independently decodable
 * compressed chunk of TraceRecords, and validate a v4 chunk index.
 * Shared by the whole-trace reader/writer (trace_io.cc) and the
 * streaming chunk reader (trace_file_source.cc); the wire layout is
 * specified in docs/TRACE_FORMAT.md.
 *
 * The decoder is a wide, chunk-at-a-time path: the control bytes are
 * validated 16 at a time (SSE2, or SWAR on a u64 elsewhere; AVX2
 * widens to 32 when the build enables it), the pc-delta and
 * address-XOR varint streams are batch-decoded with a one-load
 * fast path for runs of single-byte varints, and runs of identical
 * control bytes fill records eight at a time. Decoding one chunk
 * never touches bytes outside [chunk, chunk + byteLen).
 */

#ifndef STOREMLP_TRACE_TRACE_CODEC_HH
#define STOREMLP_TRACE_TRACE_CODEC_HH

#include <cstdint>
#include <vector>

#include "trace/inst.hh"
#include "trace/trace_io.hh"

namespace storemlp::trace_codec
{

/**
 * Decode state carried across chunk boundaries. The encoder threads
 * one CodecSeeds through consecutive chunks; the per-chunk values are
 * recorded in the chunk index so any chunk decodes independently.
 * Chunk 0 starts from {0, 0}.
 */
struct CodecSeeds
{
    uint64_t pc = 0;   ///< pc of the record preceding the chunk
    uint64_t addr = 0; ///< address of the preceding memory record
};

/** One parsed v4 chunk index entry (kIndexEntryBytesV4 bytes). */
struct V4IndexEntry
{
    uint64_t records = 0;
    uint64_t byteOff = 0; ///< relative to the start of the body
    uint64_t byteLen = 0;
    CodecSeeds seeds;
};

V4IndexEntry readV4IndexEntry(const uint8_t *p);
void writeV4IndexEntry(uint8_t *p, const V4IndexEntry &e);

/**
 * Incremental validator for an untrusted v4 chunk index. Feed entries
 * in order; every structural rule (per-chunk record counts derived
 * from the envelope's count/chunkInsts, contiguous byte offsets,
 * byteLen bounds) throws TraceFormatError on violation *before* any
 * chunk memory is allocated. `finish` checks that the chunks cover
 * the body exactly when the body size is known.
 */
class V4IndexValidator
{
  public:
    /** Throws TraceFormatError on impossible geometry. */
    V4IndexValidator(uint64_t count, uint64_t chunk_insts,
                     uint64_t chunk_count);

    uint64_t chunkCount() const { return _chunkCount; }

    /** Validate entry `idx` (0-based, in order). */
    void feed(const V4IndexEntry &e, uint64_t idx);

    /** All entries fed; `body_bytes` = bytes after the index. */
    void finish(uint64_t body_bytes) const;

    /** Body bytes the fed entries claim (sum of byteLens). */
    uint64_t claimedBodyBytes() const { return _nextOff; }

  private:
    uint64_t _count;
    uint64_t _chunkInsts;
    uint64_t _chunkCount;
    uint64_t _nextOff = 0; ///< expected byteOff of the next entry
    uint64_t _fed = 0;
};

/**
 * Append one encoded chunk for records[0..n) to `out` and return its
 * encoded byte length. `seeds` carries the cross-chunk decode state:
 * it holds the entering values on call (what the chunk's index entry
 * records) and the exiting values on return.
 */
uint64_t encodeV4Chunk(std::vector<uint8_t> &out,
                       const TraceRecord *records, uint64_t n,
                       CodecSeeds &seeds);

/**
 * Decode one chunk of exactly `n` records from the `len` bytes at
 * `p`, seeded with the chunk's index entry state. Throws
 * TraceFormatError on any malformed byte (reserved control bit,
 * out-of-range class, section-length mismatch, truncated or overlong
 * varint, trailing bytes). Never reads outside [p, p + len).
 */
std::vector<TraceRecord> decodeV4Chunk(const uint8_t *p, uint64_t len,
                                       uint64_t n,
                                       const CodecSeeds &seeds);

} // namespace storemlp::trace_codec

#endif // STOREMLP_TRACE_TRACE_CODEC_HH
