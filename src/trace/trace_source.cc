/**
 * @file
 * TraceSource implementations: cursor slow path, materialized views,
 * on-the-fly generation, and the shared chunk cache front.
 */

#include "trace/trace_source.hh"

#include <algorithm>
#include <sstream>
#include <stdexcept>

namespace storemlp
{

// ---------------------------------------------------------------------
// TraceChunk
// ---------------------------------------------------------------------

TraceChunk::LaneRefs
TraceChunk::lanes() const
{
    if (_extLanes) {
        return {_extLanes->pc.data() + _extOff,
                _extLanes->addr.data() + _extOff,
                _extLanes->cls.data() + _extOff,
                _extLanes->meta.data() + _extOff};
    }
    std::call_once(_lanesOnce,
                   [this] { deriveLanes(data, count, _lanes); });
    return {_lanes.pc.data(), _lanes.addr.data(), _lanes.cls.data(),
            _lanes.meta.data()};
}

// ---------------------------------------------------------------------
// TraceCursor
// ---------------------------------------------------------------------

const TraceRecord *
TraceCursor::slowAt(uint64_t idx)
{
    if (_end && idx >= *_end)
        return nullptr;
    uint64_t k = idx / _chunk;

    std::shared_ptr<const TraceChunk> c;
    auto it = _held.find(k);
    if (it != _held.end()) {
        c = it->second;
    } else {
        c = _src.fetch(k);
        if (!c)
            return nullptr;
        if (c->count < _chunk) // partial chunk: the stream ends here
            _end = c->firstIdx + c->count;
        _held.emplace(k, c);
    }

    if (idx - c->firstIdx >= c->count) {
        _end = c->firstIdx + c->count;
        return nullptr;
    }
    if (c->data != _curData) {
        // The lane view aliases the current chunk; invalidate it so a
        // stale window can never outlive a later trim().
        _view.count = 0;
        _curChunk = c.get();
    }
    _curFirst = c->firstIdx;
    _curCount = c->count;
    _curData = c->data;
    return c->data + (idx - c->firstIdx);
}

const TraceCursor::LaneView *
TraceCursor::slowView(uint64_t idx)
{
    if (!slowAt(idx))
        return nullptr;
    TraceChunk::LaneRefs refs = _curChunk->lanes();
    _view.pc = refs.pc;
    _view.addr = refs.addr;
    _view.cls = refs.cls;
    _view.meta = refs.meta;
    _view.first = _curChunk->firstIdx;
    _view.count = _curChunk->count;
    return &_view;
}

// ---------------------------------------------------------------------
// MaterializedSource
// ---------------------------------------------------------------------

std::shared_ptr<const TraceChunk>
MaterializedSource::fetch(uint64_t chunk_idx)
{
    uint64_t first = chunk_idx * _chunkInsts;
    uint64_t size = _trace->size();
    if (first >= size)
        return nullptr;
    uint64_t n = std::min<uint64_t>(_chunkInsts, size - first);
    // Chunks borrow slices of the whole-trace lane cache, so lane
    // derivation happens once per trace rather than once per run.
    return std::make_shared<const TraceChunk>(
        first, _trace->records().data() + first, n, _owned,
        _trace->lanes(), first);
}

// ---------------------------------------------------------------------
// GeneratorSource
// ---------------------------------------------------------------------

GeneratorSource::GeneratorSource(const WorkloadProfile &profile,
                                 uint64_t seed, uint64_t count,
                                 uint32_t chip_id, uint64_t chunk_insts)
    : TraceSource(chunk_insts), _profile(profile), _seed(seed),
      _count(count), _chipId(chip_id)
{
    restart();
}

void
GeneratorSource::restart()
{
    _gen.emplace(_profile, _seed, _chipId);
    _pending.clear();
    _generated = 0;
    _emitted = 0;
    _nextChunk = 0;
    _genDone = _count == 0;
}

std::shared_ptr<const TraceChunk>
GeneratorSource::produceNext()
{
    // Top up the pending buffer one generator request at a time. Each
    // request asks for exactly min(space, count - generated), so the
    // generator stops at the same slot boundary as a single
    // generate(count) call would — the chunked stream is bit-identical
    // to the materialized one, overshoot included.
    while (!_genDone && _pending.size() < _chunkInsts) {
        uint64_t want = std::min<uint64_t>(
            _chunkInsts - _pending.size(), _count - _generated);
        Trace t;
        _gen->generateInto(t, want);
        _generated += t.size();
        _pending.insert(_pending.end(), t.records().begin(),
                        t.records().end());
        if (_generated >= _count)
            _genDone = true;
    }

    if (_pending.empty())
        return nullptr;
    uint64_t take = std::min<uint64_t>(_chunkInsts, _pending.size());
    std::vector<TraceRecord> recs(_pending.begin(),
                                  _pending.begin() +
                                      static_cast<ptrdiff_t>(take));
    _pending.erase(_pending.begin(),
                   _pending.begin() + static_cast<ptrdiff_t>(take));
    auto chunk =
        std::make_shared<const TraceChunk>(_emitted, std::move(recs));
    _emitted += take;
    ++_nextChunk;
    return chunk;
}

std::shared_ptr<const TraceChunk>
GeneratorSource::fetch(uint64_t chunk_idx)
{
    if (chunk_idx < _nextChunk)
        restart(); // backward fetch: deterministic replay from seed
    std::shared_ptr<const TraceChunk> c;
    while (_nextChunk <= chunk_idx) {
        c = produceNext();
        if (!c)
            return nullptr;
    }
    return c;
}

std::optional<uint64_t>
GeneratorSource::knownSize() const
{
    // The generator stops at the first slot boundary >= count, so the
    // total is only known once the stop slot has been emitted.
    if (_genDone)
        return _generated;
    return std::nullopt;
}

std::string
GeneratorSource::fingerprint() const
{
    std::ostringstream os;
    os << _profile.cacheKey() << "|seed=" << _seed << "|n=" << _count
       << "|wc=0|chip=" << _chipId;
    return os.str();
}

// ---------------------------------------------------------------------
// CachedSource
// ---------------------------------------------------------------------

CachedSource::CachedSource(std::unique_ptr<TraceSource> inner,
                           TraceCache &cache, std::string key_base)
    : TraceSource(inner->chunkInsts()), _inner(std::move(inner)),
      _cache(cache), _keyBase(std::move(key_base))
{
    if (_keyBase.empty())
        _keyBase = _inner->fingerprint();
    if (_keyBase.empty()) {
        throw std::invalid_argument(
            "CachedSource: inner source has no fingerprint and no key "
            "base was given");
    }
}

std::shared_ptr<const TraceChunk>
CachedSource::fetch(uint64_t chunk_idx)
{
    std::string key = _keyBase + "#c" + std::to_string(chunk_idx);
    std::shared_ptr<const TraceChunk> c = _cache.getOrBuildChunk(
        key, [&]() -> std::shared_ptr<const TraceChunk> {
            std::lock_guard<std::mutex> lk(_mu);
            std::shared_ptr<const TraceChunk> inner =
                _inner->fetch(chunk_idx);
            if (inner)
                return inner;
            // Cache end-of-stream as an empty chunk so every worker
            // learns the stream length without touching the inner
            // source again.
            return std::make_shared<const TraceChunk>(
                chunk_idx * _chunkInsts, std::vector<TraceRecord>{});
        });
    return c->count ? c : nullptr;
}

std::optional<uint64_t>
CachedSource::knownSize() const
{
    std::lock_guard<std::mutex> lk(_mu);
    return _inner->knownSize();
}

// ---------------------------------------------------------------------
// helpers
// ---------------------------------------------------------------------

Trace
materializeSource(TraceSource &src)
{
    std::vector<TraceRecord> records;
    if (std::optional<uint64_t> n = src.knownSize())
        records.reserve(*n);
    forEachRecord(src, 0, ~uint64_t{0},
                  [&](const TraceRecord &r) { records.push_back(r); });
    return Trace(std::move(records));
}

} // namespace storemlp
