/**
 * @file
 * Streaming reader for on-disk traces: an mmap-backed TraceSource that
 * decodes fixed-size chunks on demand, so a multi-gigabyte trace runs
 * with O(chunk) resident decoded records. Supports all four
 * containers (v1 fixed, v2 delta-compressed, v3 envelope around
 * either, v4 chunk-indexed compressed); see docs/TRACE_FORMAT.md.
 *
 * v1 bodies are random access (fixed record width). v2 bodies are
 * stateful (pc deltas), so the source memoizes the decode state
 * (byte offset, previous pc) at every chunk boundary it crosses:
 * the first pass over the file is sequential, after which any chunk is
 * reachable in O(chunk). v4 bodies carry their own chunk index (byte
 * extents plus decode seeds, validated in full before the first
 * fetch), so every chunk is random access from the start and decodes
 * through the wide path in trace_codec.cc; the source adopts the
 * file's chunk geometry. Each fetch also advises the kernel to read
 * the following chunk's byte range ahead, and to drop the pages behind
 * the current chunk from this process (they remain in the page cache,
 * so a backward fetch only minor-faults them back). Resident memory is
 * therefore O(chunk) even when the mapped file is many gigabytes.
 */

#ifndef STOREMLP_TRACE_TRACE_FILE_SOURCE_HH
#define STOREMLP_TRACE_TRACE_FILE_SOURCE_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "trace/trace_source.hh"

namespace storemlp
{

class StreamingFileSource : public TraceSource
{
  public:
    /**
     * Map `path` and parse its header (O(header + index) work).
     * Throws TraceFormatError on a bad magic, an impossible record
     * count, or a corrupt v4 chunk index, with the same diagnostics
     * as the whole-trace reader. For v4 files `chunk_insts` is
     * ignored: chunking is non-semantic, so the source serves the
     * file's own chunk geometry (see chunkInsts()).
     */
    explicit StreamingFileSource(const std::string &path,
                                 uint64_t chunk_insts = kDefaultChunkInsts);
    ~StreamingFileSource() override;

    std::shared_ptr<const TraceChunk> fetch(uint64_t chunk_idx) override;
    std::optional<uint64_t> knownSize() const override
    {
        return _count;
    }
    std::string fingerprint() const override { return _fingerprint; }

    uint32_t bodyFormat() const { return _bodyFormat; }

  private:
    /** Decode state at the start of a v2 chunk. */
    struct V2Boundary
    {
        uint64_t byteOff = 0; ///< absolute offset into the mapping
        uint64_t prevPc = 0;
    };

    const uint8_t *bytes() const { return _data; }
    std::vector<TraceRecord> decodeV1(uint64_t first, uint64_t n) const;
    /** Requires _bounds[chunk_idx]; appends _bounds[chunk_idx+1]. */
    std::vector<TraceRecord> decodeV2Chunk(uint64_t chunk_idx);
    /** Decode v4 chunk `chunk_idx` via its (validated) index entry. */
    std::vector<TraceRecord> decodeV4ChunkAt(uint64_t chunk_idx) const;
    /** First mapped byte of `chunk_idx`, if locatable without decode. */
    std::optional<uint64_t> chunkByteBegin(uint64_t chunk_idx) const;
    void readAhead(uint64_t next_chunk_idx) const;
    /** Drop mapped pages strictly before `chunk_idx`'s first byte. */
    void releaseBehind(uint64_t chunk_idx) const;

    std::string _path;
    const uint8_t *_data = nullptr; ///< whole-file mapping (or buffer)
    uint64_t _fileBytes = 0;
    bool _mapped = false;           ///< true: munmap; false: _fallback
    std::vector<uint8_t> _fallback; ///< used when mmap is unavailable
    int _fd = -1;

    uint32_t _bodyFormat = 1;
    uint64_t _bodyOff = 0; ///< offset of the first record byte
    uint64_t _count = 0;
    std::string _fingerprint;

    std::vector<V2Boundary> _bounds; ///< v2 only; grows monotonically
    // v4 only: the chunk index lives in the mapping at _indexOff and
    // is fully validated by the constructor; entries are re-read from
    // the mapped bytes on demand, so the index costs no heap at all.
    uint64_t _indexOff = 0;
    uint64_t _chunkCount = 0;
    mutable uint64_t _dropUpTo = 0; ///< bytes already MADV_DONTNEEDed
};

} // namespace storemlp

#endif // STOREMLP_TRACE_TRACE_FILE_SOURCE_HH
