/**
 * @file
 * Lock detection tool. The paper's methodology (Section 4.2): to
 * simulate weak consistency with processor-consistency traces, "a lock
 * detection tool was developed to identify all the lock acquisition
 * and lock release instruction sequences in the traces". This is that
 * tool: it pairs `casa` acquires with the subsequent release store to
 * the same address, purely from the instruction stream — the
 * generator's ground-truth flags are used only by tests to validate
 * the detector.
 */

#ifndef STOREMLP_TRACE_LOCK_DETECTOR_HH
#define STOREMLP_TRACE_LOCK_DETECTOR_HH

#include <cstdint>
#include <deque>
#include <unordered_map>
#include <utility>
#include <vector>

#include "trace/trace.hh"

namespace storemlp
{

class TraceSource;

/** One detected critical section. */
struct LockPair
{
    uint64_t acquireIdx = 0; ///< trace index of the casa
    uint64_t releaseIdx = 0; ///< trace index of the release store
    uint64_t lockAddr = 0;
};

/** Per-instruction lock role, indexable by trace position. */
enum class LockRole : uint8_t
{
    None = 0,
    Acquire,    ///< casa (PC) or lwarx (WC): the acquiring access
    AcquireAux, ///< stwcx / isync completing a WC acquire sequence
    Release,    ///< the releasing store
    ReleaseAux, ///< lwsync fencing a WC release
};

/** Result of a detector run. */
struct LockAnalysis
{
    std::vector<LockPair> pairs;
    std::vector<LockRole> roles; ///< one per trace record

    bool
    isAcquire(uint64_t idx) const
    {
        return idx < roles.size() && roles[idx] == LockRole::Acquire;
    }
    bool
    isRelease(uint64_t idx) const
    {
        return idx < roles.size() && roles[idx] == LockRole::Release;
    }
};

/**
 * Scans a trace for lock idioms. PC (TSO) form: a `casa` to address A
 * acquires; the first subsequent plain store to A within `window`
 * instructions releases. WC (PowerPC) form: `lwarx A; stwcx A; isync`
 * acquires and `lwsync; store A` releases. Unmatched atomics (e.g.
 * lock-free CAS loops) are left unpaired and keep their serializing
 * semantics.
 */
class LockDetector
{
  public:
    explicit LockDetector(uint64_t window = 512) : _window(window) {}

    LockAnalysis analyze(const Trace &trace) const;

    uint64_t window() const { return _window; }

  private:
    uint64_t _window;
};

/**
 * Incremental lock detection over a record stream. This is the carry
 * state that lets the detector run as a streaming per-chunk transform:
 * push records in trace order, pop (record, role) pairs back out once
 * their role can no longer change. Resident state is O(window), not
 * O(trace).
 *
 * The lag rules mirror exactly what the batch pass reads:
 *  - record j is processed only once record j+1 has been pushed (the
 *    lwarx idiom looks one record ahead), or at finish();
 *  - after processing j, roles at indices <= j - window are final — a
 *    later release store i > j can only annotate indices >= i - window.
 *
 * `LockDetector::analyze` and `analyzeSource` are both thin loops over
 * this class, so batch and streaming results are identical by
 * construction.
 */
class StreamingLockDetector
{
  public:
    explicit StreamingLockDetector(uint64_t window = 512)
        : _window(window)
    {
    }

    /** Append the next record of the stream. */
    void push(const TraceRecord &r);

    /** Declare end of input: every buffered record becomes final. */
    void finish();

    /** Leading records whose roles are final and ready to pop. */
    uint64_t finalizedCount() const;

    /** Pop the oldest finalized record together with its role. */
    std::pair<TraceRecord, LockRole> pop();

    /** Trace index of the next record pop() will return. */
    uint64_t baseIdx() const { return _base; }

    /** All pairs matched so far, in release order. */
    const std::vector<LockPair> &pairs() const { return _pairs; }
    std::vector<LockPair> takePairs() { return std::move(_pairs); }

  private:
    void processAt(uint64_t j);
    const TraceRecord &recAt(uint64_t idx) const
    {
        return _recs[idx - _base];
    }
    LockRole &roleAt(uint64_t idx) { return _roles[idx - _base]; }

    uint64_t _window;
    std::deque<TraceRecord> _recs; ///< indices [_base, _next)
    std::deque<LockRole> _roles;   ///< parallel to _recs
    uint64_t _base = 0;            ///< trace index of _recs.front()
    uint64_t _next = 0;            ///< one past the last pushed index
    uint64_t _processed = 0;       ///< next index to process
    bool _finished = false;
    std::unordered_map<uint64_t, uint64_t> _open; ///< addr -> acquire
    std::vector<LockPair> _pairs;
};

/**
 * Run lock detection over a whole TraceSource. Streams through the
 * source with O(window + chunk) resident trace data; the returned
 * roles vector is still one byte per record.
 */
LockAnalysis analyzeSource(TraceSource &src, uint64_t window = 512);

} // namespace storemlp

#endif // STOREMLP_TRACE_LOCK_DETECTOR_HH
