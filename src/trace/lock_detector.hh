/**
 * @file
 * Lock detection tool. The paper's methodology (Section 4.2): to
 * simulate weak consistency with processor-consistency traces, "a lock
 * detection tool was developed to identify all the lock acquisition
 * and lock release instruction sequences in the traces". This is that
 * tool: it pairs `casa` acquires with the subsequent release store to
 * the same address, purely from the instruction stream — the
 * generator's ground-truth flags are used only by tests to validate
 * the detector.
 */

#ifndef STOREMLP_TRACE_LOCK_DETECTOR_HH
#define STOREMLP_TRACE_LOCK_DETECTOR_HH

#include <cstdint>
#include <vector>

#include "trace/trace.hh"

namespace storemlp
{

/** One detected critical section. */
struct LockPair
{
    uint64_t acquireIdx = 0; ///< trace index of the casa
    uint64_t releaseIdx = 0; ///< trace index of the release store
    uint64_t lockAddr = 0;
};

/** Per-instruction lock role, indexable by trace position. */
enum class LockRole : uint8_t
{
    None = 0,
    Acquire,    ///< casa (PC) or lwarx (WC): the acquiring access
    AcquireAux, ///< stwcx / isync completing a WC acquire sequence
    Release,    ///< the releasing store
    ReleaseAux, ///< lwsync fencing a WC release
};

/** Result of a detector run. */
struct LockAnalysis
{
    std::vector<LockPair> pairs;
    std::vector<LockRole> roles; ///< one per trace record

    bool
    isAcquire(uint64_t idx) const
    {
        return idx < roles.size() && roles[idx] == LockRole::Acquire;
    }
    bool
    isRelease(uint64_t idx) const
    {
        return idx < roles.size() && roles[idx] == LockRole::Release;
    }
};

/**
 * Scans a trace for lock idioms. PC (TSO) form: a `casa` to address A
 * acquires; the first subsequent plain store to A within `window`
 * instructions releases. WC (PowerPC) form: `lwarx A; stwcx A; isync`
 * acquires and `lwsync; store A` releases. Unmatched atomics (e.g.
 * lock-free CAS loops) are left unpaired and keep their serializing
 * semantics.
 */
class LockDetector
{
  public:
    explicit LockDetector(uint64_t window = 512) : _window(window) {}

    LockAnalysis analyze(const Trace &trace) const;

  private:
    uint64_t _window;
};

} // namespace storemlp

#endif // STOREMLP_TRACE_LOCK_DETECTOR_HH
