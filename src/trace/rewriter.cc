/**
 * @file
 * Trace rewriter implementation: shared per-record expansion, the
 * batch pass, and the streaming source.
 */

#include "trace/rewriter.hh"

#include <algorithm>

namespace storemlp
{

uint64_t
appendWcExpansion(const TraceRecord &r, LockRole role,
                  std::vector<TraceRecord> &out)
{
    if (role == LockRole::Acquire) {
        // casa -> lwarx ; stwcx ; isync. The inserted records share
        // the casa's pc (same fetch line, no I-cache perturbation).
        TraceRecord ll = r;
        ll.cls = InstClass::LoadLocked;
        out.push_back(ll);

        TraceRecord sc = r;
        sc.cls = InstClass::StoreCond;
        sc.dst = 0;
        sc.src2 = r.src1;
        out.push_back(sc);

        TraceRecord is;
        is.pc = r.pc;
        is.cls = InstClass::Isync;
        is.flags = r.flags; // keeps the acquire ground-truth flag
        out.push_back(is);
        return 3;
    }
    if (role == LockRole::Release) {
        // store -> lwsync ; store.
        TraceRecord lw;
        lw.pc = r.pc;
        lw.cls = InstClass::Lwsync;
        out.push_back(lw);
        out.push_back(r);
        return 2;
    }
    out.push_back(r);
    return 1;
}

Trace
TraceRewriter::toWeakConsistency(const Trace &trace,
                                 const LockAnalysis &locks) const
{
    std::vector<TraceRecord> out;
    out.reserve(trace.size() + 2 * locks.pairs.size());

    for (uint64_t i = 0; i < trace.size(); ++i) {
        LockRole role = i < locks.roles.size() ? locks.roles[i]
                                               : LockRole::None;
        appendWcExpansion(trace[i], role, out);
    }
    return Trace(std::move(out));
}

Trace
TraceRewriter::toWeakConsistency(const Trace &trace) const
{
    LockDetector detector;
    return toWeakConsistency(trace, detector.analyze(trace));
}

// ---------------------------------------------------------------------
// WcRewriteSource
// ---------------------------------------------------------------------

WcRewriteSource::WcRewriteSource(std::unique_ptr<TraceSource> inner,
                                 uint64_t window)
    : TraceSource(inner->chunkInsts()), _inner(std::move(inner)),
      _window(window)
{
    restart();
}

void
WcRewriteSource::restart()
{
    _cur.emplace(*_inner);
    _inPos = 0;
    _det = StreamingLockDetector(_window);
    _outCarry.clear();
    _emitted = 0;
    _nextChunk = 0;
    _drained = false;
}

std::shared_ptr<const TraceChunk>
WcRewriteSource::produceNext()
{
    while (!_drained && _outCarry.size() < _chunkInsts) {
        const TraceRecord *r = _cur->tryAt(_inPos);
        if (r) {
            // The detector copies records into its window, so the
            // cursor only ever needs the chunk under _inPos.
            _det.push(*r);
            ++_inPos;
            _cur->trim(_inPos);
        } else {
            _det.finish();
            _drained = true;
        }
        while (_det.finalizedCount()) {
            auto [rec, role] = _det.pop();
            appendWcExpansion(rec, role, _outCarry);
        }
    }

    if (_outCarry.empty())
        return nullptr;
    uint64_t take = std::min<uint64_t>(_chunkInsts, _outCarry.size());
    std::vector<TraceRecord> recs(_outCarry.begin(),
                                  _outCarry.begin() +
                                      static_cast<ptrdiff_t>(take));
    _outCarry.erase(_outCarry.begin(),
                    _outCarry.begin() + static_cast<ptrdiff_t>(take));
    auto chunk =
        std::make_shared<const TraceChunk>(_emitted, std::move(recs));
    _emitted += take;
    ++_nextChunk;
    return chunk;
}

std::shared_ptr<const TraceChunk>
WcRewriteSource::fetch(uint64_t chunk_idx)
{
    if (chunk_idx < _nextChunk)
        restart(); // backward fetch: deterministic replay
    std::shared_ptr<const TraceChunk> c;
    while (_nextChunk <= chunk_idx) {
        c = produceNext();
        if (!c)
            return nullptr;
    }
    return c;
}

std::optional<uint64_t>
WcRewriteSource::knownSize() const
{
    // The rewrite inserts records, so the output length is only known
    // once the whole input has been pushed through the detector.
    if (_drained)
        return _emitted + _outCarry.size();
    return std::nullopt;
}

std::string
WcRewriteSource::fingerprint() const
{
    std::string fp = _inner->fingerprint();
    if (fp.empty())
        return {};
    // Flip the inner stream's wc marker (GeneratorSource emits
    // "|wc=0"); append one if the inner key has none.
    size_t pos = fp.find("|wc=0");
    if (pos != std::string::npos)
        fp.replace(pos, 5, "|wc=1");
    else
        fp += "|wc=1";
    return fp;
}

} // namespace storemlp
