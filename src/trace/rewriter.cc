/**
 * @file
 * Trace rewriter implementation.
 */

#include "trace/rewriter.hh"

namespace storemlp
{

Trace
TraceRewriter::toWeakConsistency(const Trace &trace,
                                 const LockAnalysis &locks) const
{
    std::vector<TraceRecord> out;
    out.reserve(trace.size() + 2 * locks.pairs.size());

    for (uint64_t i = 0; i < trace.size(); ++i) {
        const TraceRecord &r = trace[i];
        if (locks.isAcquire(i)) {
            // casa -> lwarx ; stwcx ; isync. The inserted records share
            // the casa's pc (same fetch line, no I-cache perturbation).
            TraceRecord ll = r;
            ll.cls = InstClass::LoadLocked;
            out.push_back(ll);

            TraceRecord sc = r;
            sc.cls = InstClass::StoreCond;
            sc.dst = 0;
            sc.src2 = r.src1;
            out.push_back(sc);

            TraceRecord is;
            is.pc = r.pc;
            is.cls = InstClass::Isync;
            is.flags = r.flags; // keeps the acquire ground-truth flag
            out.push_back(is);
            continue;
        }
        if (locks.isRelease(i)) {
            // store -> lwsync ; store.
            TraceRecord lw;
            lw.pc = r.pc;
            lw.cls = InstClass::Lwsync;
            out.push_back(lw);
            out.push_back(r);
            continue;
        }
        out.push_back(r);
    }
    return Trace(std::move(out));
}

Trace
TraceRewriter::toWeakConsistency(const Trace &trace) const
{
    LockDetector detector;
    return toWeakConsistency(trace, detector.analyze(trace));
}

} // namespace storemlp
