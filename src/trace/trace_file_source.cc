/**
 * @file
 * Streaming file source implementation.
 */

#include "trace/trace_file_source.hh"

#include <algorithm>
#include <cstring>
#include <fstream>

#include "trace/trace_codec.hh"
#include "trace/trace_format.hh"
#include "trace/trace_io.hh"

#if defined(__unix__) || defined(__APPLE__)
#define STOREMLP_HAVE_MMAP 1
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#else
#define STOREMLP_HAVE_MMAP 0
#endif

namespace storemlp
{

namespace
{

using namespace trace_format;

uint64_t
getVarintBuf(const uint8_t *base, uint64_t size, uint64_t &off)
{
    uint64_t v = 0;
    for (unsigned shift = 0; shift < 70; shift += 7) {
        if (off >= size)
            throw TraceFormatError("truncated varint");
        uint8_t c = base[off++];
        v |= static_cast<uint64_t>(c & 0x7f) << shift;
        if (!(c & 0x80))
            return v;
    }
    throw TraceFormatError("overlong varint");
}

/** v4 index entry `idx`, read straight from the mapped index bytes. */
trace_codec::V4IndexEntry
v4Entry(const uint8_t *data, uint64_t index_off, uint64_t idx)
{
    return trace_codec::readV4IndexEntry(data + index_off +
                                         idx * kIndexEntryBytesV4);
}

} // namespace

StreamingFileSource::StreamingFileSource(const std::string &path,
                                         uint64_t chunk_insts)
    : TraceSource(chunk_insts), _path(path)
{
#if STOREMLP_HAVE_MMAP
    _fd = ::open(path.c_str(), O_RDONLY);
    if (_fd < 0)
        throw TraceFormatError("cannot open for read: " + path);
    struct stat st;
    if (::fstat(_fd, &st) != 0 || st.st_size < 0) {
        ::close(_fd);
        _fd = -1;
        throw TraceFormatError("cannot stat: " + path);
    }
    _fileBytes = static_cast<uint64_t>(st.st_size);
    if (_fileBytes > 0) {
        void *map = ::mmap(nullptr, _fileBytes, PROT_READ, MAP_PRIVATE,
                           _fd, 0);
        if (map == MAP_FAILED) {
            ::close(_fd);
            _fd = -1;
            throw TraceFormatError("cannot mmap: " + path);
        }
        _data = static_cast<const uint8_t *>(map);
        _mapped = true;
    }
#else
    std::ifstream ifs(path, std::ios::binary);
    if (!ifs)
        throw TraceFormatError("cannot open for read: " + path);
    ifs.seekg(0, std::ios::end);
    _fileBytes = static_cast<uint64_t>(ifs.tellg());
    ifs.seekg(0);
    _fallback.resize(_fileBytes);
    if (_fileBytes)
        ifs.read(reinterpret_cast<char *>(_fallback.data()),
                 static_cast<std::streamsize>(_fileBytes));
    if (!ifs)
        throw TraceFormatError("read failed: " + path);
    _data = _fallback.data();
#endif

    // ---- parse the header from the mapping ----
    uint64_t off = 0;
    if (_fileBytes < kMagicBytes)
        throw TraceFormatError("bad trace magic");
    if (std::memcmp(_data, kMagicV1, kMagicBytes) == 0) {
        _bodyFormat = 1;
        off = kMagicBytes;
    } else if (std::memcmp(_data, kMagicV2, kMagicBytes) == 0) {
        _bodyFormat = 2;
        off = kMagicBytes;
    } else if (std::memcmp(_data, kMagicV3, kMagicBytes) == 0 ||
               std::memcmp(_data, kMagicV4, kMagicBytes) == 0) {
        bool v4 = std::memcmp(_data, kMagicV4, kMagicBytes) == 0;
        off = kMagicBytes;
        if (off + 5 > _fileBytes)
            throw TraceFormatError("truncated trace header");
        uint8_t fmt = _data[off++];
        bool known = v4 ? fmt == kBodyChunked
                        : (fmt == kBodyFixed || fmt == kBodyDelta);
        if (!known) {
            throw TraceFormatError("unknown v" + std::string(v4 ? "4" : "3") +
                                   " body format " + std::to_string(fmt));
        }
        _bodyFormat = fmt;
        uint32_t len = getU32(_data + off);
        off += 4;
        if (len > kMaxMetaBytes) {
            throw TraceFormatError(
                "trace metadata length " + std::to_string(len) +
                " exceeds limit " + std::to_string(kMaxMetaBytes));
        }
        if (off + len > _fileBytes)
            throw TraceFormatError("truncated trace header");
        _fingerprint.assign(reinterpret_cast<const char *>(_data + off),
                            len);
        off += len;
    } else {
        throw TraceFormatError("bad trace magic");
    }

    if (off + 8 > _fileBytes)
        throw TraceFormatError("truncated trace header");
    _count = getU64(_data + off);
    _bodyOff = off + 8;

    if (_bodyFormat == kBodyChunked) {
        // Chunk geometry, then the whole index validated in place —
        // O(index) work, no heap: entries are re-read from the
        // mapping at fetch time.
        if (_bodyOff + 16 > _fileBytes)
            throw TraceFormatError("truncated trace header");
        uint64_t chunk_insts = getU64(_data + _bodyOff);
        _chunkCount = getU64(_data + _bodyOff + 8);
        _indexOff = _bodyOff + 16;
        trace_codec::V4IndexValidator val(_count, chunk_insts,
                                          _chunkCount);
        if (_chunkCount > (_fileBytes - _indexOff) / kIndexEntryBytesV4) {
            throw TraceFormatError(
                "v4 chunk count " + std::to_string(_chunkCount) +
                " exceeds stream capacity (" +
                std::to_string(_fileBytes - _indexOff) +
                " bytes remain)");
        }
        for (uint64_t i = 0; i < _chunkCount; ++i)
            val.feed(v4Entry(_data, _indexOff, i), i);
        _bodyOff = _indexOff + _chunkCount * kIndexEntryBytesV4;
        val.finish(_fileBytes - _bodyOff);
        // Chunking is non-semantic; serve the file's own geometry so
        // every fetch is one index lookup plus one chunk decode.
        if (_chunkCount > 0)
            _chunkInsts = chunk_insts;
    }

    uint64_t remaining = _fileBytes - _bodyOff;
    uint64_t min_bytes =
        _bodyFormat == kBodyFixed ? kRecordBytesV1 : 1;
    if (_count > remaining / min_bytes) {
        throw TraceFormatError(
            "trace header count " + std::to_string(_count) +
            " exceeds stream capacity (" + std::to_string(remaining) +
            " bytes remain, >= " + std::to_string(min_bytes) +
            " bytes per record)");
    }

    if (_fingerprint.empty()) {
        _fingerprint =
            "file:" + _path + "|n=" + std::to_string(_count);
    }
    if (_bodyFormat == 2)
        _bounds.push_back({_bodyOff, 0});
}

StreamingFileSource::~StreamingFileSource()
{
#if STOREMLP_HAVE_MMAP
    if (_mapped)
        ::munmap(const_cast<uint8_t *>(_data), _fileBytes);
    if (_fd >= 0)
        ::close(_fd);
#endif
}

std::optional<uint64_t>
StreamingFileSource::chunkByteBegin(uint64_t chunk_idx) const
{
    if (_bodyFormat == kBodyFixed)
        return _bodyOff + chunk_idx * _chunkInsts * kRecordBytesV1;
    if (_bodyFormat == kBodyChunked) {
        if (chunk_idx >= _chunkCount)
            return std::nullopt;
        return _bodyOff + v4Entry(_data, _indexOff, chunk_idx).byteOff;
    }
    if (chunk_idx >= _bounds.size())
        return std::nullopt;
    return _bounds[chunk_idx].byteOff;
}

void
StreamingFileSource::readAhead(uint64_t next_chunk_idx) const
{
#if STOREMLP_HAVE_MMAP
    if (!_mapped || next_chunk_idx * _chunkInsts >= _count)
        return;
    std::optional<uint64_t> begin_opt = chunkByteBegin(next_chunk_idx);
    if (!begin_opt)
        return;
    uint64_t begin = *begin_opt;
    uint64_t len;
    if (_bodyFormat == kBodyChunked) {
        // The index knows the exact compressed extent.
        len = v4Entry(_data, _indexOff, next_chunk_idx).byteLen;
    } else {
        // Exact for v1; v2 records average well under the v1 width,
        // and the advice is a hint, so a generous bound is fine.
        len = _chunkInsts * kRecordBytesV1;
    }
    if (begin >= _fileBytes)
        return;
    len = std::min(len, _fileBytes - begin);
    long page = ::sysconf(_SC_PAGESIZE);
    uint64_t mask = page > 0 ? static_cast<uint64_t>(page) - 1 : 4095;
    uint64_t aligned = begin & ~mask;
    ::madvise(const_cast<uint8_t *>(_data + aligned),
              len + (begin - aligned), MADV_WILLNEED);
#else
    (void)next_chunk_idx;
#endif
}

void
StreamingFileSource::releaseBehind(uint64_t chunk_idx) const
{
#if STOREMLP_HAVE_MMAP
    if (!_mapped)
        return;
    std::optional<uint64_t> begin_opt = chunkByteBegin(chunk_idx);
    if (!begin_opt)
        return;
    uint64_t begin = *begin_opt;
    long page = ::sysconf(_SC_PAGESIZE);
    uint64_t mask = page > 0 ? static_cast<uint64_t>(page) - 1 : 4095;
    // Align down so the current chunk's first page stays resident.
    uint64_t end = std::min(begin, _fileBytes) & ~mask;
    if (end <= _dropUpTo) {
        // Backward seek (e.g. a second sequential pass): resume the
        // drop cursor here so the new pass frees behind itself too.
        if (end < _dropUpTo)
            _dropUpTo = end;
        return;
    }
    ::madvise(const_cast<uint8_t *>(_data + _dropUpTo), end - _dropUpTo,
              MADV_DONTNEED);
    _dropUpTo = end;
#else
    (void)chunk_idx;
#endif
}

std::vector<TraceRecord>
StreamingFileSource::decodeV1(uint64_t first, uint64_t n) const
{
    std::vector<TraceRecord> records;
    records.reserve(n);
    const uint8_t *p = _data + _bodyOff + first * kRecordBytesV1;
    for (uint64_t i = 0; i < n; ++i, p += kRecordBytesV1) {
        TraceRecord r;
        r.pc = getU64(p);
        r.addr = getU64(p + 8);
        if (p[16] >= static_cast<uint8_t>(InstClass::NumClasses))
            throw TraceFormatError("invalid instruction class");
        r.cls = static_cast<InstClass>(p[16]);
        r.size = p[17];
        r.dst = p[18];
        r.src1 = p[19];
        r.src2 = p[20];
        r.flags = p[21];
        records.push_back(r);
    }
    return records;
}

std::vector<TraceRecord>
StreamingFileSource::decodeV2Chunk(uint64_t chunk_idx)
{
    V2Boundary b = _bounds[chunk_idx];
    uint64_t first = chunk_idx * _chunkInsts;
    uint64_t n = std::min<uint64_t>(_chunkInsts, _count - first);

    std::vector<TraceRecord> records;
    records.reserve(n);
    uint64_t off = b.byteOff;
    uint64_t prev_pc = b.prevPc;
    for (uint64_t i = 0; i < n; ++i) {
        if (off >= _fileBytes)
            throw TraceFormatError("truncated trace body");
        uint8_t ctrl = _data[off++];
        uint8_t cls_bits = ctrl & 0x0f;
        if (cls_bits >= static_cast<uint8_t>(InstClass::NumClasses))
            throw TraceFormatError("invalid instruction class");

        TraceRecord r;
        r.cls = static_cast<InstClass>(cls_bits);
        if (ctrl & kCtrlSeqPc) {
            r.pc = prev_pc + 4;
        } else {
            int64_t delta =
                unzigzag(getVarintBuf(_data, _fileBytes, off));
            r.pc = static_cast<uint64_t>(
                static_cast<int64_t>(prev_pc) + delta);
        }
        prev_pc = r.pc;

        if (isMemClass(r.cls))
            r.addr = getVarintBuf(_data, _fileBytes, off);
        if (ctrl & kCtrlRegs) {
            if (off + 4 > _fileBytes)
                throw TraceFormatError("truncated register block");
            r.size = _data[off];
            r.dst = _data[off + 1];
            r.src1 = _data[off + 2];
            r.src2 = _data[off + 3];
            off += 4;
        }
        if (ctrl & kCtrlFlags) {
            if (off >= _fileBytes)
                throw TraceFormatError("truncated flags byte");
            r.flags = _data[off++];
        }
        records.push_back(r);
    }

    if (chunk_idx + 1 == _bounds.size() && first + n < _count)
        _bounds.push_back({off, prev_pc});
    return records;
}

std::vector<TraceRecord>
StreamingFileSource::decodeV4ChunkAt(uint64_t chunk_idx) const
{
    trace_codec::V4IndexEntry e = v4Entry(_data, _indexOff, chunk_idx);
    // The constructor validated the whole index; re-check this entry's
    // extent against the mapping so a file mutated underneath the map
    // cannot push the decoder out of bounds.
    uint64_t body_bytes = _fileBytes - _bodyOff;
    if (e.records > _chunkInsts || e.byteLen > body_bytes ||
        e.byteOff > body_bytes - e.byteLen)
        throw TraceFormatError("v4 chunk index changed under the map");
    return trace_codec::decodeV4Chunk(_data + _bodyOff + e.byteOff,
                                      e.byteLen, e.records, e.seeds);
}

std::shared_ptr<const TraceChunk>
StreamingFileSource::fetch(uint64_t chunk_idx)
{
    uint64_t first = chunk_idx * _chunkInsts;
    if (first >= _count)
        return nullptr;
    uint64_t n = std::min<uint64_t>(_chunkInsts, _count - first);

    std::vector<TraceRecord> records;
    if (_bodyFormat == kBodyFixed) {
        records = decodeV1(first, n);
    } else if (_bodyFormat == kBodyChunked) {
        records = decodeV4ChunkAt(chunk_idx);
    } else {
        // Walk forward from the last memoized boundary if this chunk
        // hasn't been reached yet; each crossing memoizes its state,
        // so the walk happens at most once per chunk per source.
        while (_bounds.size() <= chunk_idx)
            decodeV2Chunk(_bounds.size() - 1);
        records = decodeV2Chunk(chunk_idx);
    }
    readAhead(chunk_idx + 1);
    releaseBehind(chunk_idx);
    return std::make_shared<const TraceChunk>(first, std::move(records));
}

} // namespace storemlp
