/**
 * @file
 * Transactional-memory execution of critical sections. The paper
 * (Section 3.3.4) notes that "a related technique, transactional
 * memory [14], achieves similar benefits as SLE but requires software
 * as well as hardware support". Where the paper's SLE evaluation
 * assumes every elision succeeds, this model adds the part SLE
 * glosses over: data conflicts abort the transaction and the critical
 * section re-executes with the lock held (serializing, as in the
 * original code), paying a rollback penalty.
 *
 * Conflicts are modeled statistically: each detected critical section
 * aborts with a configurable probability, decided by a deterministic
 * hash of (acquire index, seed) so runs remain reproducible.
 */

#ifndef STOREMLP_CONSISTENCY_TRANSACTIONAL_HH
#define STOREMLP_CONSISTENCY_TRANSACTIONAL_HH

#include <cstdint>
#include <unordered_map>

#include "trace/lock_detector.hh"

namespace storemlp
{

/** Transactional-memory configuration. */
struct TmConfig
{
    bool enabled = false;
    /** Probability a critical section conflicts and aborts. */
    double abortProb = 0.02;
    /** Extra on-chip cycles charged per abort (rollback + retry). */
    double abortPenaltyCycles = 50.0;
    /** Determinism seed for abort decisions. */
    uint64_t seed = 0x5eedULL;
};

/**
 * Per-critical-section transactional decisions derived from the lock
 * analysis. Committing sections behave exactly like SLE (acquire
 * becomes a plain load, release and fences become NOPs); aborting
 * sections fall back to the locked path.
 */
class TransactionalMemory
{
  public:
    /** Elision action for an instruction (mirrors Sle::Action). */
    enum class Action : uint8_t
    {
        Normal,        ///< execute as-is (outside CS, or aborted CS)
        AcquireAsLoad, ///< transactional acquire: plain load
        Nop,           ///< elided release / auxiliary instruction
    };

    TransactionalMemory(const LockAnalysis *analysis,
                        const TmConfig &config);

    /** Classify the instruction at trace index `idx`. */
    Action classify(uint64_t idx) const;

    /** True if `idx` belongs to a lock idiom elided by a committing
     *  transaction (no stats side effects). */
    bool peekElided(uint64_t idx) const;

    /** True if `idx` is the acquire of an ABORTED section (the
     *  engine charges the rollback penalty there). */
    bool abortsAt(uint64_t idx) const;

    /** Rollback penalty in on-chip cycles for an aborted section. */
    double abortPenalty() const { return _config.abortPenaltyCycles; }

    bool enabled() const { return _enabled; }
    uint64_t sections() const { return _sections; }
    uint64_t abortedSections() const { return _abortedSections; }

  private:
    bool sectionCommits(uint64_t acquire_idx) const;

    TmConfig _config;
    bool _enabled;
    /** idx of any lock-idiom instruction -> acquire idx + role. */
    struct Entry
    {
        uint64_t acquireIdx;
        LockRole role;
    };
    std::unordered_map<uint64_t, Entry> _byIdx;
    uint64_t _sections = 0;
    uint64_t _abortedSections = 0;
};

} // namespace storemlp

#endif // STOREMLP_CONSISTENCY_TRANSACTIONAL_HH
