/**
 * @file
 * Architectural litmus-test interpreter.
 *
 * Executes a two-thread LitmusProgram under a ModelDescriptor's
 * *architectural* ordering rules and collects the set of reachable
 * load observations. This is deliberately not the timing engine: the
 * epoch model simulates one instruction stream against a memory
 * hierarchy, while litmus semantics are about which cross-thread
 * orders a model admits. The interpreter derives a per-thread partial
 * order from the descriptor (same-address pairs are always ordered;
 * the fence table orders across fences; independent pairs follow the
 * load/store ordering axes plus the store-commit order) and
 * enumerates every linear extension and interleaving.
 */

#ifndef STOREMLP_CONSISTENCY_LITMUS_HH
#define STOREMLP_CONSISTENCY_LITMUS_HH

#include <cstdint>
#include <set>
#include <vector>

#include "consistency/memory_model.hh"
#include "trace/generator.hh"

namespace storemlp
{

/** One observed execution: every load's value, thread 0's loads in
 *  program order followed by thread 1's. */
using LitmusOutcome = std::vector<uint8_t>;

/** All load observations reachable under the model. */
std::set<LitmusOutcome> litmusOutcomes(const LitmusProgram &prog,
                                       const ModelDescriptor &model);

/** True iff the model admits the program's relaxed outcome. */
bool litmusAllowsRelaxed(const LitmusProgram &prog,
                         const ModelDescriptor &model);

} // namespace storemlp

#endif // STOREMLP_CONSISTENCY_LITMUS_HH
