/**
 * @file
 * Litmus interpreter implementation: derive per-thread ordering
 * constraints from a ModelDescriptor, enumerate linear extensions and
 * interleavings, execute against a shared memory, collect outcomes.
 */

#include "consistency/litmus.hh"

#include <algorithm>
#include <cstddef>
#include <map>
#include <utility>

namespace storemlp
{

namespace
{

/** One memory operation of a litmus thread. */
struct Op
{
    bool isStore = false;
    uint64_t addr = 0;
    size_t loadSlot = 0;  ///< outcome index (loads only)
    size_t recordIdx = 0; ///< position in the thread's record list
};

struct ThreadOps
{
    std::vector<Op> ops;
    /** (record index, effect) of every serializing record. */
    std::vector<std::pair<size_t, SerializeEffect>> fences;
};

ThreadOps
extract(const Trace &t, const ModelDescriptor &m, size_t &load_slot)
{
    ThreadOps out;
    for (size_t i = 0; i < t.size(); ++i) {
        const TraceRecord &r = t[i];
        if (isMemClass(r.cls)) {
            Op op;
            op.isStore = isStoreClass(r.cls);
            op.addr = r.addr;
            op.recordIdx = i;
            if (!op.isStore)
                op.loadSlot = load_slot++;
            out.ops.push_back(op);
        } else if (m.effectOf(r.cls).any()) {
            out.fences.emplace_back(i, m.effectOf(r.cls));
        }
    }
    return out;
}

/** Must `a` stay before `b` (program order a < b) under the model? */
bool
pairOrdered(const ModelDescriptor &m, const ThreadOps &t, const Op &a,
            const Op &b)
{
    if (a.addr == b.addr)
        return true; // same-address program order always holds
    for (const auto &[idx, eff] : t.fences) {
        if (idx < a.recordIdx || idx > b.recordIdx)
            continue;
        // A draining fence orders everything across it; a pure store
        // fence orders only store->store.
        if (eff.pipelineDrain || eff.storeDrain)
            return true;
        if (eff.storeFence && a.isStore && b.isStore)
            return true;
    }
    if (a.isStore && b.isStore)
        return m.inOrderCommit();
    if (!a.isStore && !b.isStore)
        return m.loadLoadOrdered;
    if (!a.isStore) // load -> store
        return m.loadStoreOrdered;
    return m.storeLoadOrdered; // store -> load
}

/** Every permutation of the thread's ops respecting the model's
 *  per-thread partial order. */
std::vector<std::vector<Op>>
linearExtensions(const ModelDescriptor &m, const ThreadOps &t)
{
    std::vector<size_t> idx(t.ops.size());
    for (size_t i = 0; i < idx.size(); ++i)
        idx[i] = i;

    std::vector<std::vector<Op>> out;
    do {
        bool ok = true;
        for (size_t i = 0; ok && i < idx.size(); ++i) {
            for (size_t j = i + 1; ok && j < idx.size(); ++j) {
                // idx[i] executes before idx[j]; illegal if program
                // order requires the opposite.
                if (idx[j] < idx[i] &&
                    pairOrdered(m, t, t.ops[idx[j]], t.ops[idx[i]]))
                    ok = false;
            }
        }
        if (ok) {
            std::vector<Op> seq;
            for (size_t i : idx)
                seq.push_back(t.ops[i]);
            out.push_back(std::move(seq));
        }
    } while (std::next_permutation(idx.begin(), idx.end()));
    return out;
}

void
interleave(const std::vector<Op> &s0, const std::vector<Op> &s1,
           size_t i0, size_t i1, std::map<uint64_t, uint8_t> mem,
           LitmusOutcome obs, std::set<LitmusOutcome> &out)
{
    if (i0 == s0.size() && i1 == s1.size()) {
        out.insert(std::move(obs));
        return;
    }
    auto step = [&](const Op &op, size_t n0, size_t n1) {
        std::map<uint64_t, uint8_t> m2 = mem;
        LitmusOutcome o2 = obs;
        if (op.isStore)
            m2[op.addr] = 1;
        else
            o2[op.loadSlot] = m2.count(op.addr) ? m2[op.addr] : 0;
        interleave(s0, s1, n0, n1, std::move(m2), std::move(o2), out);
    };
    if (i0 < s0.size())
        step(s0[i0], i0 + 1, i1);
    if (i1 < s1.size())
        step(s1[i1], i0, i1 + 1);
}

} // namespace

std::set<LitmusOutcome>
litmusOutcomes(const LitmusProgram &prog, const ModelDescriptor &model)
{
    size_t load_slot = 0;
    ThreadOps t0 = extract(prog.thread0, model, load_slot);
    ThreadOps t1 = extract(prog.thread1, model, load_slot);

    std::set<LitmusOutcome> out;
    for (const auto &s0 : linearExtensions(model, t0)) {
        for (const auto &s1 : linearExtensions(model, t1)) {
            interleave(s0, s1, 0, 0, {},
                       LitmusOutcome(load_slot, 0), out);
        }
    }
    return out;
}

bool
litmusAllowsRelaxed(const LitmusProgram &prog,
                    const ModelDescriptor &model)
{
    return litmusOutcomes(prog, model).count(prog.relaxedOutcome) != 0;
}

} // namespace storemlp
