/**
 * @file
 * Transactional memory implementation.
 */

#include "consistency/transactional.hh"

namespace storemlp
{

namespace
{

/** splitmix64: cheap deterministic hash for abort decisions. */
uint64_t
mix(uint64_t x)
{
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
}

} // namespace

TransactionalMemory::TransactionalMemory(const LockAnalysis *analysis,
                                         const TmConfig &config)
    : _config(config), _enabled(config.enabled && analysis)
{
    if (!_enabled)
        return;

    for (const LockPair &p : analysis->pairs) {
        ++_sections;
        if (!sectionCommits(p.acquireIdx))
            ++_abortedSections;

        // Index every instruction of the idiom by its acquire. The
        // roles vector covers auxiliary records (stwcx/isync/lwsync).
        _byIdx[p.acquireIdx] = {p.acquireIdx, LockRole::Acquire};
        _byIdx[p.releaseIdx] = {p.acquireIdx, LockRole::Release};
        for (uint64_t i = p.acquireIdx + 1;
             i < analysis->roles.size() && i <= p.acquireIdx + 2; ++i) {
            if (analysis->roles[i] == LockRole::AcquireAux)
                _byIdx[i] = {p.acquireIdx, LockRole::AcquireAux};
        }
        if (p.releaseIdx > 0 &&
            analysis->roles[p.releaseIdx - 1] == LockRole::ReleaseAux) {
            _byIdx[p.releaseIdx - 1] = {p.acquireIdx,
                                        LockRole::ReleaseAux};
        }
    }
}

bool
TransactionalMemory::sectionCommits(uint64_t acquire_idx) const
{
    uint64_t h = mix(acquire_idx ^ _config.seed);
    double u = static_cast<double>(h >> 11) *
        (1.0 / 9007199254740992.0); // uniform in [0,1)
    return u >= _config.abortProb;
}

TransactionalMemory::Action
TransactionalMemory::classify(uint64_t idx) const
{
    if (!_enabled)
        return Action::Normal;
    auto it = _byIdx.find(idx);
    if (it == _byIdx.end())
        return Action::Normal;
    if (!sectionCommits(it->second.acquireIdx))
        return Action::Normal; // aborted: locked path
    switch (it->second.role) {
      case LockRole::Acquire:
        return Action::AcquireAsLoad;
      default:
        return Action::Nop;
    }
}

bool
TransactionalMemory::peekElided(uint64_t idx) const
{
    return classify(idx) != Action::Normal;
}

bool
TransactionalMemory::abortsAt(uint64_t idx) const
{
    if (!_enabled)
        return false;
    auto it = _byIdx.find(idx);
    if (it == _byIdx.end() || it->second.role != LockRole::Acquire)
        return false;
    return !sectionCommits(it->second.acquireIdx);
}

} // namespace storemlp
