/**
 * @file
 * SLE anchor translation unit (logic is header-inline).
 */

#include "consistency/sle.hh"

namespace storemlp
{

// Sle is fully inline; this file anchors the module in the build.

} // namespace storemlp
