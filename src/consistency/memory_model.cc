/**
 * @file
 * Memory model descriptor implementation: preset table, spec-string
 * parsing and canonical serialization.
 */

#include "consistency/memory_model.hh"

#include <algorithm>
#include <cctype>

#include "util/error.hh"

namespace storemlp
{

namespace
{

std::string
lower(std::string s)
{
    std::transform(s.begin(), s.end(), s.begin(), [](unsigned char c) {
        return static_cast<char>(std::tolower(c));
    });
    return s;
}

/** The four configurable serializing classes, in canonical order. */
constexpr InstClass kFenceClasses[] = {
    InstClass::AtomicCas,
    InstClass::Membar,
    InstClass::Isync,
    InstClass::Lwsync,
};

const char *
fenceClassKey(InstClass cls)
{
    switch (cls) {
      case InstClass::AtomicCas: return "casa";
      case InstClass::Membar: return "membar";
      case InstClass::Isync: return "isync";
      case InstClass::Lwsync: return "lwsync";
      default: return nullptr;
    }
}

std::string
effectSpec(const SerializeEffect &e)
{
    if (!e.any())
        return "none";
    std::string out;
    auto add = [&out](const char *tok) {
        if (!out.empty())
            out += '+';
        out += tok;
    };
    if (e.pipelineDrain)
        add("pipe");
    if (e.storeDrain)
        add("store");
    if (e.storeFence)
        add("fence");
    return out;
}

SerializeEffect
parseEffect(const std::string &v, const std::string &key)
{
    SerializeEffect e;
    if (v == "none")
        return e;
    size_t pos = 0;
    while (pos <= v.size()) {
        size_t plus = v.find('+', pos);
        std::string tok = v.substr(
            pos, plus == std::string::npos ? std::string::npos
                                          : plus - pos);
        if (tok == "pipe")
            e.pipelineDrain = true;
        else if (tok == "store")
            e.storeDrain = true;
        else if (tok == "fence")
            e.storeFence = true;
        else
            throw ConfigError("bad model fence effect for '" + key +
                              "': '" + tok +
                              "' (none or +-joined pipe|store|fence)");
        if (plus == std::string::npos)
            break;
        pos = plus + 1;
    }
    return e;
}

bool
parseOrdered(const std::string &v, const std::string &key)
{
    if (v == "ordered")
        return true;
    if (v == "relaxed")
        return false;
    throw ConfigError("bad model value for '" + key + "': '" + v +
                      "' (ordered|relaxed)");
}

} // namespace

std::array<SerializeEffect, static_cast<size_t>(InstClass::NumClasses)>
ModelDescriptor::defaultFenceTable()
{
    std::array<SerializeEffect,
               static_cast<size_t>(InstClass::NumClasses)>
        t{};
    // casa: atomic load+store. Under TSO it forces all earlier stores
    // to be performed before it executes (paper 3.3.4) and holds up
    // retirement. A bare CAS appearing in a Power-dialect trace is
    // conservatively given the same semantics (PowerPC implements it
    // as a lwarx/stwcx+sync loop).
    t[static_cast<size_t>(InstClass::AtomicCas)] = {true, true, false};
    // membar: full fence under every model.
    t[static_cast<size_t>(InstClass::Membar)] = {true, true, false};
    // isync: completes the acquire; drains the pipeline but "does not
    // enforce waiting for the store queue and store buffer to drain"
    // (paper 3.3.4).
    t[static_cast<size_t>(InstClass::Isync)] = {true, false, false};
    // lwsync: store-ordering fence in the queue; no pipeline stall.
    t[static_cast<size_t>(InstClass::Lwsync)] = {false, false, true};
    return t;
}

ModelDescriptor
ModelDescriptor::pc()
{
    return ModelDescriptor{};
}

ModelDescriptor
ModelDescriptor::wc()
{
    ModelDescriptor m;
    m.name = "WC";
    m.storeCommit = StoreCommitOrder::FencedOnly;
    m.coalesce = CoalesceScope::ToYoungestFence;
    m.dialect = TraceDialect::Power;
    m.loadLoadOrdered = false;
    m.loadStoreOrdered = false;
    return m;
}

ModelDescriptor
ModelDescriptor::rmo()
{
    // WC's relaxed ordering rules applied to the native SPARC-dialect
    // trace (no lock-idiom rewrite): isolates the commit/coalescing
    // axes from the dialect axis.
    ModelDescriptor m;
    m.name = "RMO";
    m.storeCommit = StoreCommitOrder::FencedOnly;
    m.coalesce = CoalesceScope::ToYoungestFence;
    m.dialect = TraceDialect::Sparc;
    m.loadLoadOrdered = false;
    m.loadStoreOrdered = false;
    return m;
}

ModelDescriptor
ModelDescriptor::wmm()
{
    // I2E-style point (Zhang et al.): stores commit out of order
    // between fences, but instructions execute in order — no load
    // buffering, so load->store stays ordered — and coalescing keeps
    // the conservative tail-only rule.
    ModelDescriptor m;
    m.name = "WMM";
    m.storeCommit = StoreCommitOrder::FencedOnly;
    m.coalesce = CoalesceScope::Tail;
    m.dialect = TraceDialect::Power;
    m.loadLoadOrdered = false;
    m.loadStoreOrdered = true;
    return m;
}

ModelDescriptor
ModelDescriptor::sc()
{
    ModelDescriptor m;
    m.name = "SC";
    m.storeCommit = StoreCommitOrder::InOrder;
    m.coalesce = CoalesceScope::None;
    m.dialect = TraceDialect::Sparc;
    m.loadLoadOrdered = true;
    m.loadStoreOrdered = true;
    m.storeLoadOrdered = true;
    return m;
}

const std::vector<ModelDescriptor> &
ModelDescriptor::presets()
{
    static const std::vector<ModelDescriptor> all = {pc(), wc(), rmo(),
                                                     wmm(), sc()};
    return all;
}

const ModelDescriptor *
ModelDescriptor::findPreset(const std::string &name)
{
    std::string n = lower(name);
    if (n == "tso") // historical alias accepted by config files
        n = "pc";
    for (const ModelDescriptor &m : presets()) {
        if (lower(m.name) == n)
            return &m;
    }
    return nullptr;
}

bool
ModelDescriptor::sameRules(const ModelDescriptor &o) const
{
    return storeCommit == o.storeCommit && coalesce == o.coalesce &&
           dialect == o.dialect && loadLoadOrdered == o.loadLoadOrdered &&
           loadStoreOrdered == o.loadStoreOrdered &&
           storeLoadOrdered == o.storeLoadOrdered && fences == o.fences;
}

ModelDescriptor
ModelDescriptor::parse(const std::string &text)
{
    if (text.empty())
        throw ConfigError("empty memory model spec");

    ModelDescriptor m;
    bool first = true;
    bool customized = false;
    size_t pos = 0;
    while (pos <= text.size()) {
        size_t comma = text.find(',', pos);
        std::string tok = text.substr(
            pos, comma == std::string::npos ? std::string::npos
                                            : comma - pos);
        size_t eq = tok.find('=');
        if (eq == std::string::npos) {
            // Bare token: only valid as the leading preset base.
            if (!first || tok.empty()) {
                throw ConfigError("bad memory model spec '" + text +
                                  "': expected key=val at '" + tok +
                                  "'");
            }
            const ModelDescriptor *p = findPreset(tok);
            if (!p) {
                throw ConfigError(
                    "unknown memory model preset '" + tok +
                    "' (pc|wc|rmo|wmm|sc or key=val list)");
            }
            m = *p;
        } else {
            std::string key = tok.substr(0, eq);
            std::string val = lower(tok.substr(eq + 1));
            customized = true;
            if (key == "commit") {
                if (val == "inorder")
                    m.storeCommit = StoreCommitOrder::InOrder;
                else if (val == "fenced")
                    m.storeCommit = StoreCommitOrder::FencedOnly;
                else
                    throw ConfigError("bad model value for 'commit': '" +
                                      val + "' (inorder|fenced)");
            } else if (key == "coalesce") {
                if (val == "none")
                    m.coalesce = CoalesceScope::None;
                else if (val == "tail")
                    m.coalesce = CoalesceScope::Tail;
                else if (val == "fence")
                    m.coalesce = CoalesceScope::ToYoungestFence;
                else
                    throw ConfigError("bad model value for 'coalesce': '" +
                                      val + "' (none|tail|fence)");
            } else if (key == "dialect") {
                if (val == "sparc")
                    m.dialect = TraceDialect::Sparc;
                else if (val == "power")
                    m.dialect = TraceDialect::Power;
                else
                    throw ConfigError("bad model value for 'dialect': '" +
                                      val + "' (sparc|power)");
            } else if (key == "ll") {
                m.loadLoadOrdered = parseOrdered(val, key);
            } else if (key == "ls") {
                m.loadStoreOrdered = parseOrdered(val, key);
            } else if (key == "sl") {
                m.storeLoadOrdered = parseOrdered(val, key);
            } else if (key == "casa" || key == "membar" ||
                       key == "isync" || key == "lwsync") {
                for (InstClass cls : kFenceClasses) {
                    if (key == fenceClassKey(cls))
                        m.fences[static_cast<size_t>(cls)] =
                            parseEffect(val, key);
                }
            } else {
                throw ConfigError("unknown memory model key '" + key +
                                  "'");
            }
        }
        first = false;
        if (comma == std::string::npos)
            break;
        pos = comma + 1;
    }

    // Canonical display name: a preset when the rules match one,
    // otherwise "custom".
    if (customized) {
        m.name = "custom";
        for (const ModelDescriptor &p : presets()) {
            if (m.sameRules(p)) {
                m.name = p.name;
                break;
            }
        }
    }
    return m;
}

std::string
ModelDescriptor::spec() const
{
    for (const ModelDescriptor &p : presets()) {
        if (sameRules(p))
            return lower(p.name);
    }
    std::string out;
    out += "commit=";
    out += storeCommit == StoreCommitOrder::InOrder ? "inorder"
                                                    : "fenced";
    out += ",coalesce=";
    out += coalesce == CoalesceScope::None ? "none"
        : coalesce == CoalesceScope::Tail ? "tail"
                                          : "fence";
    out += ",dialect=";
    out += dialect == TraceDialect::Sparc ? "sparc" : "power";
    out += ",ll=";
    out += loadLoadOrdered ? "ordered" : "relaxed";
    out += ",ls=";
    out += loadStoreOrdered ? "ordered" : "relaxed";
    out += ",sl=";
    out += storeLoadOrdered ? "ordered" : "relaxed";
    for (InstClass cls : kFenceClasses) {
        out += ',';
        out += fenceClassKey(cls);
        out += '=';
        out += effectSpec(fences[static_cast<size_t>(cls)]);
    }
    return out;
}

} // namespace storemlp
