/**
 * @file
 * Memory model policy implementation.
 */

#include "consistency/memory_model.hh"

namespace storemlp
{

const char *
memoryModelName(MemoryModel m)
{
    switch (m) {
      case MemoryModel::ProcessorConsistency: return "PC";
      case MemoryModel::WeakConsistency: return "WC";
      default: return "?";
    }
}

SerializeEffect
serializeEffect(InstClass cls, MemoryModel model)
{
    SerializeEffect e;
    switch (cls) {
      case InstClass::AtomicCas:
        // casa: atomic load+store. Under TSO it forces all earlier
        // stores to be performed before it executes (paper 3.3.4) and
        // holds up retirement. A bare CAS appearing in a WC trace is
        // conservatively given the same semantics (PowerPC implements
        // it as a lwarx/stwcx+sync loop).
        e.pipelineDrain = true;
        e.storeDrain = true;
        break;
      case InstClass::Membar:
        // Full fence under both models.
        e.pipelineDrain = true;
        e.storeDrain = true;
        break;
      case InstClass::Isync:
        // WC: completes the acquire; drains the pipeline but "does not
        // enforce waiting for the store queue and store buffer to
        // drain" (paper 3.3.4).
        e.pipelineDrain = true;
        break;
      case InstClass::Lwsync:
        // WC: store-ordering fence in the queue; no pipeline stall.
        e.storeFence = true;
        break;
      default:
        break;
    }
    (void)model; // semantics above are already model-appropriate
    return e;
}

} // namespace storemlp
