/**
 * @file
 * Speculative Lock Elision (Rajwar & Goodman, MICRO'01) applied to
 * store performance, as proposed in Section 3.3.4 of the paper: the
 * lock acquire is converted into a regular (non-serializing) load and
 * the lock release into a NOP. Following the paper's evaluation, all
 * elisions are assumed successful; the data-conflict abort path is
 * modeled only as statistics hooks.
 */

#ifndef STOREMLP_CONSISTENCY_SLE_HH
#define STOREMLP_CONSISTENCY_SLE_HH

#include <cstdint>

#include "trace/lock_detector.hh"

namespace storemlp
{

/**
 * Per-instruction elision decisions driven by a LockAnalysis of the
 * trace being simulated (PC or WC form).
 */
class Sle
{
  public:
    /** What the pipeline should do with an instruction under SLE. */
    enum class Action : uint8_t
    {
        Normal,        ///< execute as-is
        AcquireAsLoad, ///< serializing acquire becomes a plain load
        Nop,           ///< elided (release store, acquire aux, fences)
    };

    /**
     * @param analysis lock pairs of the trace; must outlive this
     * @param enabled  disabled SLE classifies everything Normal
     */
    Sle(const LockAnalysis *analysis, bool enabled)
        : _analysis(analysis), _enabled(enabled && analysis)
    {
    }

    /** Classify the instruction at trace index `idx`. */
    Action
    classify(uint64_t idx)
    {
        if (!_enabled || idx >= _analysis->roles.size())
            return Action::Normal;
        switch (_analysis->roles[idx]) {
          case LockRole::Acquire:
            ++_elidedAcquires;
            return Action::AcquireAsLoad;
          case LockRole::AcquireAux:
          case LockRole::ReleaseAux:
            return Action::Nop;
          case LockRole::Release:
            ++_elidedReleases;
            return Action::Nop;
          default:
            return Action::Normal;
        }
    }

    /**
     * Whether the instruction at `idx` is elided or transformed by
     * SLE (no stats side effects; usable for pre-dispatch checks).
     */
    bool
    peekElided(uint64_t idx) const
    {
        if (!_enabled || idx >= _analysis->roles.size())
            return false;
        return _analysis->roles[idx] != LockRole::None;
    }

    bool enabled() const { return _enabled; }
    uint64_t elidedAcquires() const { return _elidedAcquires; }
    uint64_t elidedReleases() const { return _elidedReleases; }
    void resetStats() { _elidedAcquires = _elidedReleases = 0; }

  private:
    const LockAnalysis *_analysis;
    bool _enabled;
    uint64_t _elidedAcquires = 0;
    uint64_t _elidedReleases = 0;
};

} // namespace storemlp

#endif // STOREMLP_CONSISTENCY_SLE_HH
