/**
 * @file
 * Memory consistency model policy. Encodes the store-visible
 * differences between processor consistency (SPARC TSO) and weak
 * consistency (PowerPC WC) that Section 3.3.4 of the paper analyzes:
 *
 *  - PC commits stores in order; a missing store at the head of the
 *    store queue blocks all younger stores. WC commits out of order;
 *    only lwsync fences constrain commit order.
 *  - Under PC, casa/membar drain the pipeline AND the store
 *    buffer/queue before executing. Under WC, isync drains only the
 *    pipeline; lwsync is purely a store-queue ordering fence.
 *  - Coalescing: PC merges only consecutive stores (tail entry); WC
 *    merges with any entry on this side of the youngest fence.
 */

#ifndef STOREMLP_CONSISTENCY_MEMORY_MODEL_HH
#define STOREMLP_CONSISTENCY_MEMORY_MODEL_HH

#include <cstdint>

#include "trace/inst.hh"

namespace storemlp
{

/** The two model classes studied by the paper. */
enum class MemoryModel : uint8_t
{
    ProcessorConsistency, ///< SPARC TSO
    WeakConsistency,      ///< PowerPC WC
};

/** Printable name. */
const char *memoryModelName(MemoryModel m);

/** What an instruction serializes before it may execute. */
struct SerializeEffect
{
    /** Pipeline (ROB) must drain: no younger instruction executes
     *  until all older instructions complete. */
    bool pipelineDrain = false;
    /** Store buffer and store queue must drain (commit) first. */
    bool storeDrain = false;
    /** Inserts an ordering fence into the store queue. */
    bool storeFence = false;

    bool any() const { return pipelineDrain || storeDrain || storeFence; }
};

/**
 * Classify the serializing behaviour of an instruction under a model.
 */
SerializeEffect serializeEffect(InstClass cls, MemoryModel model);

/** True if the model commits stores strictly in program order. */
inline bool
inOrderCommit(MemoryModel m)
{
    return m == MemoryModel::ProcessorConsistency;
}

/** True if retiring stores may coalesce with any eligible entry. */
inline bool
coalesceAnyEntry(MemoryModel m)
{
    return m == MemoryModel::WeakConsistency;
}

} // namespace storemlp

#endif // STOREMLP_CONSISTENCY_MEMORY_MODEL_HH
