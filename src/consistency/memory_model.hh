/**
 * @file
 * Declarative memory consistency model descriptors.
 *
 * The paper (Section 3.3.4) studies exactly two models — SPARC
 * processor consistency (PC/TSO) and PowerPC weak consistency (WC) —
 * and this module originally hard-coded that pair as a two-value
 * enum. Following the I2E-style operational framework of Zhang et
 * al., the store-visible differences decompose into independent axes
 * that a value type can capture:
 *
 *  - Store-commit order: PC commits stores strictly in program order
 *    (a missing store queue head blocks all younger stores); WC
 *    commits out of order within the oldest fence epoch.
 *  - Coalescing scope: PC merges only consecutive stores (tail
 *    entry); WC merges with any entry on this side of the youngest
 *    fence; coalescing can also be disabled outright.
 *  - Fence semantics: a per-instruction-class SerializeEffect table.
 *    casa/membar drain the pipeline AND the store buffer/queue;
 *    isync drains only the pipeline; lwsync is purely a store-queue
 *    ordering fence.
 *  - Trace dialect: Power-dialect models run the PC->WC lock-idiom
 *    rewrite of Section 4.2 (casa -> lwarx;stwcx;isync, release
 *    store -> lwsync;store) before simulation.
 *  - Architectural load-ordering axes (load->load, load->store,
 *    store->load). These define the litmus-test outcome matrix
 *    (SB/MP/LB) but deliberately do NOT constrain the timing engine:
 *    real implementations of strong models speculate loads and
 *    squash on violation, so the epoch model's timing is identical —
 *    exactly why the PC preset stays bit-identical to the historical
 *    enum path.
 *
 * Named presets cover the paper's two models plus intermediate
 * points (RMO-like, WMM-like) and sequential consistency, so the
 * model axis is sweepable like any other config knob.
 */

#ifndef STOREMLP_CONSISTENCY_MEMORY_MODEL_HH
#define STOREMLP_CONSISTENCY_MEMORY_MODEL_HH

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "trace/inst.hh"

namespace storemlp
{

/** What an instruction serializes before it may execute. */
struct SerializeEffect
{
    /** Pipeline (ROB) must drain: no younger instruction executes
     *  until all older instructions complete. */
    bool pipelineDrain = false;
    /** Store buffer and store queue must drain (commit) first. */
    bool storeDrain = false;
    /** Inserts an ordering fence into the store queue. */
    bool storeFence = false;

    bool any() const { return pipelineDrain || storeDrain || storeFence; }

    friend bool
    operator==(const SerializeEffect &a, const SerializeEffect &b)
    {
        return a.pipelineDrain == b.pipelineDrain &&
               a.storeDrain == b.storeDrain &&
               a.storeFence == b.storeFence;
    }
    friend bool
    operator!=(const SerializeEffect &a, const SerializeEffect &b)
    {
        return !(a == b);
    }
};

/** How retired stores leave the store queue for the L2. */
enum class StoreCommitOrder : uint8_t
{
    InOrder,    ///< strictly program order; a missing head blocks
    FencedOnly, ///< any order within the oldest fence epoch
};

/** Which store-queue entries a retiring store may coalesce with. */
enum class CoalesceScope : uint8_t
{
    None,            ///< coalescing disabled
    Tail,            ///< consecutive stores only (tail entry)
    ToYoungestFence, ///< any entry on this side of the youngest fence
};

/** Instruction-set dialect the model's traces are expressed in. */
enum class TraceDialect : uint8_t
{
    Sparc, ///< casa/membar lock idioms, used as-is
    Power, ///< PC traces are rewritten to lwarx/stwcx/lwsync/isync
};

/**
 * A complete declarative memory model: every consistency-dependent
 * policy the simulator, the trace pipeline, and the litmus harness
 * consult. Value-semantic and comparable; the default-constructed
 * descriptor is the PC/TSO preset.
 */
struct ModelDescriptor
{
    /** Preset name ("PC", "WC", ...) or "custom". */
    std::string name = "PC";

    StoreCommitOrder storeCommit = StoreCommitOrder::InOrder;
    CoalesceScope coalesce = CoalesceScope::Tail;
    TraceDialect dialect = TraceDialect::Sparc;

    // Architectural ordering of independent (different-address)
    // access pairs; consumed by the litmus harness only (see file
    // comment). storeLoad is false for every shipped preset — the
    // store buffer the paper studies IS a store->load reordering —
    // but an SC descriptor can forbid it.
    bool loadLoadOrdered = true;
    bool loadStoreOrdered = true;
    bool storeLoadOrdered = false;

    /** Per-class serializing behaviour (indexed by InstClass). */
    std::array<SerializeEffect,
               static_cast<size_t>(InstClass::NumClasses)>
        fences = defaultFenceTable();

    /** The paper's fence semantics (casa/membar drain pipeline and
     *  stores; isync drains the pipeline; lwsync is a store fence). */
    static std::array<SerializeEffect,
                      static_cast<size_t>(InstClass::NumClasses)>
    defaultFenceTable();

    const SerializeEffect &
    effectOf(InstClass cls) const
    {
        return fences[static_cast<size_t>(cls)];
    }

    bool
    inOrderCommit() const
    {
        return storeCommit == StoreCommitOrder::InOrder;
    }

    /** True if traces must pass through the PC->WC rewriter. */
    bool
    wcTraceRewrite() const
    {
        return dialect == TraceDialect::Power;
    }

    // ---- named presets ----
    static ModelDescriptor pc();  ///< SPARC PC/TSO (paper baseline)
    static ModelDescriptor wc();  ///< PowerPC weak consistency
    static ModelDescriptor rmo(); ///< RMO-like: WC ordering rules on
                                  ///< SPARC-dialect traces
    static ModelDescriptor wmm(); ///< WMM-like: I2E point — fenced
                                  ///< commit, tail coalescing, ld->st
                                  ///< ordered (no load buffering)
    static ModelDescriptor sc();  ///< sequential consistency
    static const std::vector<ModelDescriptor> &presets();

    /** Preset lookup by case-insensitive name; null if unknown. */
    static const ModelDescriptor *findPreset(const std::string &name);

    /**
     * Parse a model spec: a preset name ("pc", "wc", "rmo", "wmm",
     * "sc"), a key=val list ("commit=fenced,coalesce=fence,..."), or
     * a preset base with overrides ("wc,coalesce=tail"). Unknown
     * presets, keys, or values throw ConfigError.
     */
    static ModelDescriptor parse(const std::string &text);

    /**
     * Canonical spec string: the lowercase preset name when the rules
     * match a preset, else the full key=val list. parse(spec()) is an
     * exact round trip.
     */
    std::string spec() const;

    /** Rule equality, ignoring the display name. */
    bool sameRules(const ModelDescriptor &o) const;

    friend bool
    operator==(const ModelDescriptor &a, const ModelDescriptor &b)
    {
        return a.name == b.name && a.sameRules(b);
    }
    friend bool
    operator!=(const ModelDescriptor &a, const ModelDescriptor &b)
    {
        return !(a == b);
    }
};

} // namespace storemlp

#endif // STOREMLP_CONSISTENCY_MEMORY_MODEL_HH
