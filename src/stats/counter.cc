/**
 * @file
 * Out-of-line home for Counter (currently header-only logic).
 */

#include "stats/counter.hh"

namespace storemlp
{

// Counter and RunningMean are fully inline; this translation unit anchors
// the module in the build so future non-inline additions have a home.

} // namespace storemlp
