/**
 * @file
 * StatsRegistry: the structured results surface of the simulator.
 * Every producer (SimResult, CacheHierarchy, SnoopBus, Smac, the
 * sweep engine) registers named entries under hierarchical dotted
 * names — `core.epochs`, `smac.acceleratedStores`,
 * `coherence.invalidations` — instead of being formatted by hand in
 * each tool. A registry is a flat, insertion-ordered list of typed
 * entries; the JSON/CSV emitters in stats_json.* serialize it with
 * stable key order, and the parsers rebuild it losslessly.
 */

#ifndef STOREMLP_STATS_REGISTRY_HH
#define STOREMLP_STATS_REGISTRY_HH

#include <cstdint>
#include <stdexcept>
#include <string>
#include <unordered_map>
#include <vector>

#include "stats/histogram.hh"

namespace storemlp
{

/** Error raised on missing entries or kind mismatches. */
class StatsError : public std::runtime_error
{
  public:
    using std::runtime_error::runtime_error;
};

/** What an entry holds. */
enum class StatKind : uint8_t
{
    Counter,   ///< unsigned event count
    Scalar,    ///< derived floating-point metric
    Text,      ///< descriptive string (workload name, config name)
    Histogram, ///< BoundedHistogram (buckets + overflow + sum)
    Joint,     ///< JointHistogram (2-D cells)
};

const char *statKindName(StatKind k);

/** One named statistic. */
struct StatEntry
{
    std::string name;
    StatKind kind = StatKind::Counter;

    uint64_t u64 = 0;     ///< Counter
    double scalar = 0.0;  ///< Scalar
    std::string text;     ///< Text
    BoundedHistogram hist{0}; ///< Histogram
    JointHistogram joint{0, 0}; ///< Joint

    bool operator==(const StatEntry &) const = default;
};

/**
 * Insertion-ordered set of named stats. Setting an existing name
 * overwrites it in place (the original position is kept), so emitted
 * key order is deterministic for a given registration sequence.
 */
class StatsRegistry
{
  public:
    // ---- registration ----
    void counter(const std::string &name, uint64_t v);
    void scalar(const std::string &name, double v);
    void text(const std::string &name, std::string v);
    void histogram(const std::string &name, BoundedHistogram h);
    void joint(const std::string &name, JointHistogram j);

    // ---- lookup ----
    bool has(const std::string &name) const;
    /** Kind of an entry; throws StatsError if absent. */
    StatKind kindOf(const std::string &name) const;

    /**
     * Typed getters. Counter/Scalar interconvert when the value is
     * representable (a JSON number with no fractional part parses
     * back as a Counter even if it was registered as a Scalar); all
     * other mismatches throw StatsError naming the entry.
     */
    uint64_t getCounter(const std::string &name) const;
    double getScalar(const std::string &name) const;
    const std::string &getText(const std::string &name) const;
    const BoundedHistogram &getHistogram(const std::string &name) const;
    const JointHistogram &getJoint(const std::string &name) const;

    // ---- iteration / bulk ----
    const std::vector<StatEntry> &entries() const { return _entries; }
    size_t size() const { return _entries.size(); }
    bool empty() const { return _entries.empty(); }
    void clear();

    /** Append every entry of `other` (overwriting same-named ones). */
    void mergeFrom(const StatsRegistry &other);

    /**
     * Same, with every incoming name prefixed (`prefix + name`).
     * Namespaces one producer's stats inside a larger document — the
     * multi-core runner registers each core's SimResult under
     * `cpu<i>.` and each chip's machine stats under `chip<m>.`.
     */
    void mergeFrom(const StatsRegistry &other, const std::string &prefix);

    bool operator==(const StatsRegistry &other) const
    {
        return _entries == other._entries;
    }

  private:
    StatEntry &upsert(const std::string &name, StatKind kind);
    const StatEntry &lookup(const std::string &name) const;

    std::vector<StatEntry> _entries;
    std::unordered_map<std::string, size_t> _index;
};

} // namespace storemlp

#endif // STOREMLP_STATS_REGISTRY_HH
