/**
 * @file
 * TextTable implementation.
 */

#include "stats/table.hh"

#include <algorithm>
#include <cassert>
#include <iomanip>
#include <ostream>
#include <sstream>

namespace storemlp
{

std::string
formatFixed(double v, int precision)
{
    std::ostringstream oss;
    oss << std::fixed << std::setprecision(precision) << v;
    return oss.str();
}

void
TextTable::header(std::vector<std::string> cols)
{
    _header = std::move(cols);
}

void
TextTable::beginRow()
{
    _rows.emplace_back();
}

void
TextTable::cell(const std::string &s)
{
    assert(!_rows.empty());
    _rows.back().push_back(s);
}

void
TextTable::cell(double v, int precision)
{
    cell(formatFixed(v, precision));
}

void
TextTable::cell(uint64_t v)
{
    cell(std::to_string(v));
}

const std::string &
TextTable::at(size_t row, size_t col) const
{
    assert(row < _rows.size() && col < _rows[row].size());
    return _rows[row][col];
}

const std::string &
TextTable::headerAt(size_t col) const
{
    assert(col < _header.size());
    return _header[col];
}

size_t
TextTable::rowWidth(size_t row) const
{
    assert(row < _rows.size());
    return _rows[row].size();
}

void
TextTable::print(std::ostream &os) const
{
    // Compute column widths over header and all rows.
    std::vector<size_t> widths(_header.size(), 0);
    for (size_t c = 0; c < _header.size(); ++c)
        widths[c] = _header[c].size();
    for (const auto &row : _rows) {
        for (size_t c = 0; c < row.size() && c < widths.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());
    }

    os << "== " << _title << " ==\n";
    auto emit_row = [&](const std::vector<std::string> &row) {
        for (size_t c = 0; c < widths.size(); ++c) {
            const std::string &s = c < row.size() ? row[c] : std::string();
            os << std::left << std::setw(static_cast<int>(widths[c]) + 2)
               << s;
        }
        os << "\n";
    };
    emit_row(_header);
    std::string rule;
    for (size_t c = 0; c < widths.size(); ++c)
        rule += std::string(widths[c] + 2, '-');
    os << rule << "\n";
    for (const auto &row : _rows)
        emit_row(row);
    os << "\n";
}

void
TextTable::printCsv(std::ostream &os) const
{
    auto emit = [&](const std::vector<std::string> &row) {
        for (size_t c = 0; c < row.size(); ++c) {
            if (c)
                os << ",";
            os << row[c];
        }
        os << "\n";
    };
    emit(_header);
    for (const auto &row : _rows)
        emit(row);
}

} // namespace storemlp
