/**
 * @file
 * Plain-text table formatting for the benchmark harness. Each bench
 * binary prints paper-style rows through this formatter so that output
 * is uniform and machine-greppable.
 */

#ifndef STOREMLP_STATS_TABLE_HH
#define STOREMLP_STATS_TABLE_HH

#include <cstddef>
#include <iosfwd>
#include <string>
#include <vector>

namespace storemlp
{

/**
 * A simple column-aligned text table with a title, a header row and
 * string/numeric cells. Used by every bench target.
 */
class TextTable
{
  public:
    explicit TextTable(std::string title) : _title(std::move(title)) {}

    /** Set the header row; defines the column count. */
    void header(std::vector<std::string> cols);

    /** Begin a new row. */
    void beginRow();
    /** Append a string cell to the current row. */
    void cell(const std::string &s);
    /** Append a numeric cell formatted to `precision` decimals. */
    void cell(double v, int precision = 2);
    /** Append an integer cell. */
    void cell(uint64_t v);

    /** Render to the stream with column alignment. */
    void print(std::ostream &os) const;

    /** Render as comma-separated values (no title). */
    void printCsv(std::ostream &os) const;

    size_t rows() const { return _rows.size(); }
    size_t columns() const { return _header.size(); }
    const std::string &title() const { return _title; }

    /** Access a cell for programmatic checks (tests, JSON export). */
    const std::string &at(size_t row, size_t col) const;
    /** Header label of column c. */
    const std::string &headerAt(size_t col) const;
    /** Number of cells actually present in row r. */
    size_t rowWidth(size_t row) const;

  private:
    std::string _title;
    std::vector<std::string> _header;
    std::vector<std::vector<std::string>> _rows;
};

/** Format a double with fixed precision into a string. */
std::string formatFixed(double v, int precision);

} // namespace storemlp

#endif // STOREMLP_STATS_TABLE_HH
