/**
 * @file
 * Bounded 1-D and joint 2-D histograms used for MLP distributions
 * (paper Figure 4) and window-termination breakdowns (Figure 3).
 */

#ifndef STOREMLP_STATS_HISTOGRAM_HH
#define STOREMLP_STATS_HISTOGRAM_HH

#include <cstdint>
#include <vector>

namespace storemlp
{

/**
 * A histogram over the integers [0, maxBucket]; samples above maxBucket
 * are clamped into the final (">=") bucket, matching the paper's
 * ">=5" / ">=10" presentation. Clamped samples are additionally
 * tallied in an explicit overflow count so the fold is visible
 * (`overflow()`), not silent.
 */
class BoundedHistogram
{
  public:
    explicit BoundedHistogram(unsigned max_bucket = 10);

    void sample(uint64_t v, uint64_t weight = 1);
    void reset();

    /** Count in bucket b (b == maxBucket() is the clamp bucket). */
    uint64_t bucket(unsigned b) const;
    unsigned maxBucket() const { return _maxBucket; }
    uint64_t total() const { return _total; }
    /** Sum of (unclamped) sampled values; used for means. */
    double sum() const { return _sum; }
    double mean() const;
    /** Fraction of samples in bucket b. */
    double fraction(unsigned b) const;
    /** Samples strictly above maxBucket, folded into the top bin. */
    uint64_t overflow() const { return _overflow; }

    /** Exact bucket-wise accumulation (multi-segment merging). The
     *  geometries must match. */
    void merge(const BoundedHistogram &other);

    /** Rebuild from serialized parts (stats_json round-trip). */
    static BoundedHistogram fromParts(unsigned max_bucket,
                                      std::vector<uint64_t> buckets,
                                      uint64_t total, double sum,
                                      uint64_t overflow);

    bool operator==(const BoundedHistogram &) const = default;

  private:
    unsigned _maxBucket;
    std::vector<uint64_t> _buckets;
    uint64_t _total = 0;
    double _sum = 0.0;
    uint64_t _overflow = 0;
};

/**
 * A joint histogram over pairs (x, y) with independent clamps; used for
 * the store MLP x (load+inst MLP) distribution of Figure 4.
 */
class JointHistogram
{
  public:
    JointHistogram(unsigned max_x = 10, unsigned max_y = 5);

    void sample(uint64_t x, uint64_t y, uint64_t weight = 1);
    void reset();

    uint64_t cell(unsigned x, unsigned y) const;
    /** Total over all cells. */
    uint64_t total() const { return _total; }
    /** Marginal count for x (summed over y). */
    uint64_t marginalX(unsigned x) const;
    unsigned maxX() const { return _maxX; }
    unsigned maxY() const { return _maxY; }
    double fraction(unsigned x, unsigned y) const;

    /** Exact cell-wise accumulation; the geometries must match. */
    void merge(const JointHistogram &other);

    /** Rebuild from serialized parts (stats_json round-trip). */
    static JointHistogram fromParts(unsigned max_x, unsigned max_y,
                                    std::vector<uint64_t> cells,
                                    uint64_t total);

    bool operator==(const JointHistogram &) const = default;

  private:
    unsigned _maxX;
    unsigned _maxY;
    std::vector<uint64_t> _cells; // (maxX+1) x (maxY+1), row-major in x
    uint64_t _total = 0;
};

} // namespace storemlp

#endif // STOREMLP_STATS_HISTOGRAM_HH
