/**
 * @file
 * StatsRegistry implementation.
 */

#include "stats/registry.hh"

#include <cmath>

namespace storemlp
{

const char *
statKindName(StatKind k)
{
    switch (k) {
      case StatKind::Counter: return "counter";
      case StatKind::Scalar: return "scalar";
      case StatKind::Text: return "text";
      case StatKind::Histogram: return "histogram";
      case StatKind::Joint: return "joint";
      default: return "?";
    }
}

StatEntry &
StatsRegistry::upsert(const std::string &name, StatKind kind)
{
    auto it = _index.find(name);
    if (it == _index.end()) {
        _index.emplace(name, _entries.size());
        _entries.emplace_back();
        _entries.back().name = name;
        _entries.back().kind = kind;
        return _entries.back();
    }
    StatEntry &e = _entries[it->second];
    e = StatEntry{};
    e.name = name;
    e.kind = kind;
    return e;
}

const StatEntry &
StatsRegistry::lookup(const std::string &name) const
{
    auto it = _index.find(name);
    if (it == _index.end())
        throw StatsError("no stat named '" + name + "'");
    return _entries[it->second];
}

void
StatsRegistry::counter(const std::string &name, uint64_t v)
{
    upsert(name, StatKind::Counter).u64 = v;
}

void
StatsRegistry::scalar(const std::string &name, double v)
{
    upsert(name, StatKind::Scalar).scalar = v;
}

void
StatsRegistry::text(const std::string &name, std::string v)
{
    upsert(name, StatKind::Text).text = std::move(v);
}

void
StatsRegistry::histogram(const std::string &name, BoundedHistogram h)
{
    upsert(name, StatKind::Histogram).hist = std::move(h);
}

void
StatsRegistry::joint(const std::string &name, JointHistogram j)
{
    upsert(name, StatKind::Joint).joint = std::move(j);
}

bool
StatsRegistry::has(const std::string &name) const
{
    return _index.count(name) != 0;
}

StatKind
StatsRegistry::kindOf(const std::string &name) const
{
    return lookup(name).kind;
}

uint64_t
StatsRegistry::getCounter(const std::string &name) const
{
    const StatEntry &e = lookup(name);
    if (e.kind == StatKind::Counter)
        return e.u64;
    if (e.kind == StatKind::Scalar && e.scalar >= 0.0 &&
        std::nearbyint(e.scalar) == e.scalar)
        return static_cast<uint64_t>(e.scalar);
    throw StatsError("stat '" + name + "' is a " +
                     statKindName(e.kind) + ", not a counter");
}

double
StatsRegistry::getScalar(const std::string &name) const
{
    const StatEntry &e = lookup(name);
    if (e.kind == StatKind::Scalar)
        return e.scalar;
    if (e.kind == StatKind::Counter)
        return static_cast<double>(e.u64);
    throw StatsError("stat '" + name + "' is a " +
                     statKindName(e.kind) + ", not a scalar");
}

const std::string &
StatsRegistry::getText(const std::string &name) const
{
    const StatEntry &e = lookup(name);
    if (e.kind != StatKind::Text)
        throw StatsError("stat '" + name + "' is a " +
                         statKindName(e.kind) + ", not text");
    return e.text;
}

const BoundedHistogram &
StatsRegistry::getHistogram(const std::string &name) const
{
    const StatEntry &e = lookup(name);
    if (e.kind != StatKind::Histogram)
        throw StatsError("stat '" + name + "' is a " +
                         statKindName(e.kind) + ", not a histogram");
    return e.hist;
}

const JointHistogram &
StatsRegistry::getJoint(const std::string &name) const
{
    const StatEntry &e = lookup(name);
    if (e.kind != StatKind::Joint)
        throw StatsError("stat '" + name + "' is a " +
                         statKindName(e.kind) + ", not a joint histogram");
    return e.joint;
}

void
StatsRegistry::clear()
{
    _entries.clear();
    _index.clear();
}

void
StatsRegistry::mergeFrom(const StatsRegistry &other)
{
    mergeFrom(other, std::string());
}

void
StatsRegistry::mergeFrom(const StatsRegistry &other,
                         const std::string &prefix)
{
    for (const StatEntry &e : other._entries) {
        std::string name = prefix + e.name;
        switch (e.kind) {
          case StatKind::Counter: counter(name, e.u64); break;
          case StatKind::Scalar: scalar(name, e.scalar); break;
          case StatKind::Text: text(name, e.text); break;
          case StatKind::Histogram: histogram(name, e.hist); break;
          case StatKind::Joint: joint(name, e.joint); break;
        }
    }
}

} // namespace storemlp
