/**
 * @file
 * Histogram implementations.
 */

#include "stats/histogram.hh"

#include <algorithm>
#include <cassert>

namespace storemlp
{

BoundedHistogram::BoundedHistogram(unsigned max_bucket)
    : _maxBucket(max_bucket), _buckets(max_bucket + 1, 0)
{
}

void
BoundedHistogram::sample(uint64_t v, uint64_t weight)
{
    unsigned b;
    if (v > _maxBucket) {
        b = _maxBucket;
        _overflow += weight;
    } else {
        b = static_cast<unsigned>(v);
    }
    _buckets[b] += weight;
    _total += weight;
    _sum += static_cast<double>(v) * static_cast<double>(weight);
}

void
BoundedHistogram::reset()
{
    std::fill(_buckets.begin(), _buckets.end(), 0);
    _total = 0;
    _sum = 0.0;
    _overflow = 0;
}

void
BoundedHistogram::merge(const BoundedHistogram &other)
{
    assert(_maxBucket == other._maxBucket);
    for (unsigned b = 0; b <= _maxBucket; ++b)
        _buckets[b] += other._buckets[b];
    _total += other._total;
    _sum += other._sum;
    _overflow += other._overflow;
}

BoundedHistogram
BoundedHistogram::fromParts(unsigned max_bucket,
                            std::vector<uint64_t> buckets,
                            uint64_t total, double sum,
                            uint64_t overflow)
{
    assert(buckets.size() == size_t(max_bucket) + 1);
    BoundedHistogram h(max_bucket);
    h._buckets = std::move(buckets);
    h._total = total;
    h._sum = sum;
    h._overflow = overflow;
    return h;
}

uint64_t
BoundedHistogram::bucket(unsigned b) const
{
    assert(b <= _maxBucket);
    return _buckets[b];
}

double
BoundedHistogram::mean() const
{
    return _total ? _sum / static_cast<double>(_total) : 0.0;
}

double
BoundedHistogram::fraction(unsigned b) const
{
    if (_total == 0)
        return 0.0;
    return static_cast<double>(bucket(b)) / static_cast<double>(_total);
}

JointHistogram::JointHistogram(unsigned max_x, unsigned max_y)
    : _maxX(max_x), _maxY(max_y), _cells((max_x + 1) * (max_y + 1), 0)
{
}

void
JointHistogram::sample(uint64_t x, uint64_t y, uint64_t weight)
{
    unsigned bx = x > _maxX ? _maxX : static_cast<unsigned>(x);
    unsigned by = y > _maxY ? _maxY : static_cast<unsigned>(y);
    _cells[bx * (_maxY + 1) + by] += weight;
    _total += weight;
}

void
JointHistogram::reset()
{
    std::fill(_cells.begin(), _cells.end(), 0);
    _total = 0;
}

uint64_t
JointHistogram::cell(unsigned x, unsigned y) const
{
    assert(x <= _maxX && y <= _maxY);
    return _cells[x * (_maxY + 1) + y];
}

uint64_t
JointHistogram::marginalX(unsigned x) const
{
    assert(x <= _maxX);
    uint64_t s = 0;
    for (unsigned y = 0; y <= _maxY; ++y)
        s += cell(x, y);
    return s;
}

double
JointHistogram::fraction(unsigned x, unsigned y) const
{
    if (_total == 0)
        return 0.0;
    return static_cast<double>(cell(x, y)) / static_cast<double>(_total);
}

void
JointHistogram::merge(const JointHistogram &other)
{
    assert(_maxX == other._maxX && _maxY == other._maxY);
    for (size_t i = 0; i < _cells.size(); ++i)
        _cells[i] += other._cells[i];
    _total += other._total;
}

JointHistogram
JointHistogram::fromParts(unsigned max_x, unsigned max_y,
                          std::vector<uint64_t> cells, uint64_t total)
{
    assert(cells.size() == size_t(max_x + 1) * (max_y + 1));
    JointHistogram j(max_x, max_y);
    j._cells = std::move(cells);
    j._total = total;
    return j;
}

} // namespace storemlp
