/**
 * @file
 * Versioned JSON run artifacts. One document shape is shared by every
 * tool and bench binary:
 *
 *   {
 *     "schemaVersion": 1,
 *     "meta":  { "tool": "storemlp_sim", "workload": "database", ... },
 *     "stats": {
 *       "core.instructions": 1000000,
 *       "core.mlpHist": { "maxBucket": 10, "buckets": [...],
 *                         "overflow": 0, "total": 42, "sum": 97.0 },
 *       "core.storeVsOtherMlp": { "maxX": 10, "maxY": 5,
 *                                 "cells": [[...], ...], "total": 42 },
 *       ...
 *     }
 *   }
 *
 * Key order is stable (registry insertion order; meta before stats),
 * numbers round-trip exactly (integers as decimal digits, doubles via
 * shortest-exact formatting), and `statsFromJson` rejects any
 * schemaVersion it does not understand. TextTable documents (the
 * bench binaries' output) use the same envelope with a "table" member
 * instead of "stats". See docs/EXPERIMENTS_GUIDE.md, "Run artifacts
 * & schema".
 */

#ifndef STOREMLP_STATS_STATS_JSON_HH
#define STOREMLP_STATS_STATS_JSON_HH

#include <cstdint>
#include <iosfwd>
#include <stdexcept>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "stats/registry.hh"

namespace storemlp
{

class TextTable;

/**
 * Version of the run-artifact schema emitted by this build. Version 2
 * adds two optional envelope blocks alongside `meta` so a result
 * streamed from a remote sweep daemon is self-describing:
 *
 *   "source": { "host": ..., "tool": ..., "request": <fingerprint> }
 *   "run":    { "name": ..., "workload": ..., "config": ...,
 *               "model": ..., axis values and per-run provenance }
 *
 * Readers accept versions 1..2 and reject anything else.
 */
constexpr int kStatsSchemaVersion = 2;
/** Oldest schema version this build still reads. */
constexpr int kStatsSchemaVersionMin = 1;

/** Raised on malformed JSON or schema-version mismatch. */
class StatsJsonError : public std::runtime_error
{
  public:
    using std::runtime_error::runtime_error;
};

/** Ordered (key, value) metadata attached to a document. */
using StatsMeta = std::vector<std::pair<std::string, std::string>>;

/**
 * Full schemaVersion-2 envelope: free-form `meta` (as in v1) plus the
 * optional `source` (who produced this document) and `run` (which
 * experimental point it is) identity blocks. Blocks left empty are
 * omitted from the document.
 */
struct StatsEnvelope
{
    // Constructors (rather than aggregate init) keep a braced meta
    // list like {{"tool", "x"}} unambiguously a StatsMeta at the
    // writeStatsJson overloads.
    StatsEnvelope() = default;
    StatsEnvelope(StatsMeta m, StatsMeta s, StatsMeta r)
        : meta(std::move(m)), source(std::move(s)), run(std::move(r))
    {
    }

    StatsMeta meta;
    StatsMeta source;
    StatsMeta run;
};

// ---------------------------------------------------------------------
// Generic JSON tree (parser side)
// ---------------------------------------------------------------------

/**
 * A parsed JSON value. Numbers keep their raw token so 64-bit
 * integers survive without a round-trip through double.
 */
class JsonValue
{
  public:
    enum class Type : uint8_t
    {
        Null,
        Bool,
        Number,
        String,
        Array,
        Object,
    };

    /** Parse a complete document; throws StatsJsonError. */
    static JsonValue parse(std::string_view text);

    Type type() const { return _type; }
    bool isNumber() const { return _type == Type::Number; }
    /** Number token with no '.', 'e' or leading '-'. */
    bool isUnsignedIntegral() const;

    bool boolean() const;
    uint64_t asU64() const;
    double asDouble() const;
    const std::string &asString() const;
    /** Raw token of a number (diagnostics). */
    const std::string &numberToken() const;

    // ---- object access ----
    const std::vector<std::pair<std::string, JsonValue>> &members() const;
    /** nullptr when absent (objects only). */
    const JsonValue *find(const std::string &key) const;
    /** Throws StatsJsonError naming the key when absent. */
    const JsonValue &at(const std::string &key) const;

    // ---- array access ----
    const std::vector<JsonValue> &items() const;
    size_t size() const { return items().size(); }
    const JsonValue &operator[](size_t i) const { return items().at(i); }

  private:
    friend class JsonParser;

    Type _type = Type::Null;
    bool _bool = false;
    std::string _scalar; ///< raw number token, or string contents
    std::vector<JsonValue> _items;
    std::vector<std::pair<std::string, JsonValue>> _members;
};

// ---------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------

/** Escape a string for embedding in a JSON document (no quotes). */
std::string jsonEscape(std::string_view s);

/**
 * Format a double so that strtod() recovers the exact same bits:
 * shortest of %.15g/%.16g/%.17g that round-trips.
 */
std::string jsonDouble(double v);

/**
 * Minimal streaming JSON writer with caller-controlled (therefore
 * stable) key order. `pretty` indents with two spaces; compact mode
 * emits a single line (used for JSON-lines artifacts).
 */
class JsonWriter
{
  public:
    explicit JsonWriter(std::ostream &os, bool pretty = false);

    JsonWriter &beginObject();
    JsonWriter &endObject();
    JsonWriter &beginArray();
    JsonWriter &endArray();
    JsonWriter &key(std::string_view k);
    JsonWriter &value(uint64_t v);
    JsonWriter &value(int v);
    JsonWriter &value(double v);
    JsonWriter &value(std::string_view v);
    JsonWriter &value(bool v);

  private:
    void separate();
    void indent();
    void raw(std::string_view s);

    std::ostream &_os;
    bool _pretty;
    struct Level
    {
        bool array = false;
        bool first = true;
    };
    std::vector<Level> _stack;
    bool _pendingKey = false;
};

// ---------------------------------------------------------------------
// Registry documents
// ---------------------------------------------------------------------

/** Emit a full stats document (schemaVersion + meta + stats). */
void writeStatsJson(std::ostream &os, const StatsRegistry &reg,
                    const StatsMeta &meta = {}, bool pretty = true);
std::string statsToJson(const StatsRegistry &reg,
                        const StatsMeta &meta = {}, bool pretty = true);

/** Emit a document with the full v2 envelope (source + run blocks). */
void writeStatsJson(std::ostream &os, const StatsRegistry &reg,
                    const StatsEnvelope &env, bool pretty = true);
std::string statsToJson(const StatsRegistry &reg,
                        const StatsEnvelope &env, bool pretty = true);

/**
 * Parse a stats document back into a registry. Throws StatsJsonError
 * on malformed input or when schemaVersion lies outside
 * [kStatsSchemaVersionMin, kStatsSchemaVersion]. When `meta` is
 * non-null the document's meta entries are appended to it.
 */
StatsRegistry statsFromJson(std::string_view text,
                            StatsMeta *meta = nullptr);

/**
 * Envelope-aware parse: fills `env` with the document's meta, source
 * and run blocks (empty when absent) and reports the document's
 * schema version through `version` when non-null.
 */
StatsRegistry statsFromJson(std::string_view text, StatsEnvelope *env,
                            int *version);

/**
 * CSV rendition of a registry: a header line of entry names and one
 * line of values. Histogram entries expand into one column per
 * bucket plus `.overflow`, `.total` and `.sum`; joint histograms
 * expand row-major into `.x<X>y<Y>` cells plus `.total`; text
 * entries are quoted if they contain a comma. Meta pairs prefix the
 * row as ordinary columns.
 */
void writeStatsCsv(std::ostream &os, const StatsRegistry &reg,
                   const StatsMeta &meta = {});
std::string statsToCsv(const StatsRegistry &reg,
                       const StatsMeta &meta = {});

// ---------------------------------------------------------------------
// Table documents (bench binaries)
// ---------------------------------------------------------------------

/** Emit a TextTable as a versioned JSON document (cells as strings). */
void writeTableJson(std::ostream &os, const TextTable &table,
                    const StatsMeta &meta = {}, bool pretty = false);

} // namespace storemlp

#endif // STOREMLP_STATS_STATS_JSON_HH
