/**
 * @file
 * JSON emitter/parser for StatsRegistry documents.
 */

#include "stats/stats_json.hh"

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <ostream>
#include <sstream>

#include "stats/table.hh"

namespace storemlp
{

// ---------------------------------------------------------------------
// Writer primitives
// ---------------------------------------------------------------------

std::string
jsonEscape(std::string_view s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\r': out += "\\r"; break;
          case '\t': out += "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof buf, "\\u%04x",
                              static_cast<unsigned>(c));
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

std::string
jsonDouble(double v)
{
    char buf[40];
    for (int prec = 15; prec <= 17; ++prec) {
        std::snprintf(buf, sizeof buf, "%.*g", prec, v);
        if (std::strtod(buf, nullptr) == v)
            break;
    }
    // JSON requires a leading digit series; %g never emits a bare
    // ".5", but it can emit "inf"/"nan" which JSON lacks — the
    // simulator never produces them, guard anyway.
    std::string s = buf;
    if (s.find_first_not_of("0123456789+-.eE") != std::string::npos)
        return "0";
    return s;
}

JsonWriter::JsonWriter(std::ostream &os, bool pretty)
    : _os(os), _pretty(pretty)
{
}

void
JsonWriter::raw(std::string_view s)
{
    _os << s;
}

void
JsonWriter::indent()
{
    if (!_pretty)
        return;
    _os << "\n";
    for (size_t i = 0; i < _stack.size(); ++i)
        _os << "  ";
}

void
JsonWriter::separate()
{
    if (_pendingKey) {
        _pendingKey = false;
        return;
    }
    if (_stack.empty())
        return;
    if (!_stack.back().first)
        raw(",");
    _stack.back().first = false;
    indent();
}

JsonWriter &
JsonWriter::beginObject()
{
    separate();
    raw("{");
    _stack.push_back({false, true});
    return *this;
}

JsonWriter &
JsonWriter::endObject()
{
    bool empty = _stack.back().first;
    _stack.pop_back();
    if (!empty)
        indent();
    raw("}");
    return *this;
}

JsonWriter &
JsonWriter::beginArray()
{
    separate();
    raw("[");
    _stack.push_back({true, true});
    return *this;
}

JsonWriter &
JsonWriter::endArray()
{
    bool empty = _stack.back().first;
    _stack.pop_back();
    if (!empty && _pretty)
        indent();
    raw("]");
    return *this;
}

JsonWriter &
JsonWriter::key(std::string_view k)
{
    if (!_stack.back().first)
        raw(",");
    _stack.back().first = false;
    indent();
    raw("\"");
    raw(jsonEscape(k));
    raw(_pretty ? "\": " : "\":");
    _pendingKey = true;
    return *this;
}

JsonWriter &
JsonWriter::value(uint64_t v)
{
    separate();
    _os << v;
    return *this;
}

JsonWriter &
JsonWriter::value(int v)
{
    separate();
    _os << v;
    return *this;
}

JsonWriter &
JsonWriter::value(double v)
{
    separate();
    _os << jsonDouble(v);
    return *this;
}

JsonWriter &
JsonWriter::value(std::string_view v)
{
    separate();
    _os << "\"" << jsonEscape(v) << "\"";
    return *this;
}

JsonWriter &
JsonWriter::value(bool v)
{
    separate();
    _os << (v ? "true" : "false");
    return *this;
}

// ---------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------

class JsonParser
{
  public:
    explicit JsonParser(std::string_view text) : _s(text) {}

    JsonValue
    document()
    {
        JsonValue v = parseValue();
        skipWs();
        if (_pos != _s.size())
            fail("trailing characters after document");
        return v;
    }

  private:
    [[noreturn]] void
    fail(const std::string &msg) const
    {
        throw StatsJsonError("JSON parse error at offset " +
                             std::to_string(_pos) + ": " + msg);
    }

    void
    skipWs()
    {
        while (_pos < _s.size() &&
               (_s[_pos] == ' ' || _s[_pos] == '\t' ||
                _s[_pos] == '\n' || _s[_pos] == '\r'))
            ++_pos;
    }

    char
    peek()
    {
        skipWs();
        if (_pos >= _s.size())
            fail("unexpected end of input");
        return _s[_pos];
    }

    void
    expect(char c)
    {
        if (peek() != c)
            fail(std::string("expected '") + c + "', got '" +
                 _s[_pos] + "'");
        ++_pos;
    }

    bool
    consumeIf(char c)
    {
        if (_pos < _s.size() && peek() == c) {
            ++_pos;
            return true;
        }
        return false;
    }

    std::string
    parseString()
    {
        expect('"');
        std::string out;
        while (true) {
            if (_pos >= _s.size())
                fail("unterminated string");
            char c = _s[_pos++];
            if (c == '"')
                break;
            if (c == '\\') {
                if (_pos >= _s.size())
                    fail("bad escape");
                char e = _s[_pos++];
                switch (e) {
                  case '"': out += '"'; break;
                  case '\\': out += '\\'; break;
                  case '/': out += '/'; break;
                  case 'n': out += '\n'; break;
                  case 'r': out += '\r'; break;
                  case 't': out += '\t'; break;
                  case 'b': out += '\b'; break;
                  case 'f': out += '\f'; break;
                  case 'u': {
                    if (_pos + 4 > _s.size())
                        fail("bad \\u escape");
                    unsigned code = 0;
                    for (int i = 0; i < 4; ++i) {
                        char h = _s[_pos++];
                        code <<= 4;
                        if (h >= '0' && h <= '9')
                            code |= unsigned(h - '0');
                        else if (h >= 'a' && h <= 'f')
                            code |= unsigned(h - 'a' + 10);
                        else if (h >= 'A' && h <= 'F')
                            code |= unsigned(h - 'A' + 10);
                        else
                            fail("bad \\u escape");
                    }
                    // The emitter only escapes control characters;
                    // decode BMP code points as UTF-8.
                    if (code < 0x80) {
                        out += static_cast<char>(code);
                    } else if (code < 0x800) {
                        out += static_cast<char>(0xC0 | (code >> 6));
                        out += static_cast<char>(0x80 | (code & 0x3F));
                    } else {
                        out += static_cast<char>(0xE0 | (code >> 12));
                        out += static_cast<char>(0x80 |
                                                 ((code >> 6) & 0x3F));
                        out += static_cast<char>(0x80 | (code & 0x3F));
                    }
                    break;
                  }
                  default: fail("bad escape");
                }
            } else {
                out += c;
            }
        }
        return out;
    }

    JsonValue
    parseValue()
    {
        char c = peek();
        JsonValue v;
        if (c == '{') {
            ++_pos;
            v._type = JsonValue::Type::Object;
            if (!consumeIf('}')) {
                do {
                    std::string key = parseString();
                    expect(':');
                    v._members.emplace_back(std::move(key),
                                            parseValue());
                } while (consumeIf(','));
                expect('}');
            }
        } else if (c == '[') {
            ++_pos;
            v._type = JsonValue::Type::Array;
            if (!consumeIf(']')) {
                do {
                    v._items.push_back(parseValue());
                } while (consumeIf(','));
                expect(']');
            }
        } else if (c == '"') {
            v._type = JsonValue::Type::String;
            v._scalar = parseString();
        } else if (c == 't' || c == 'f') {
            const char *word = c == 't' ? "true" : "false";
            size_t len = c == 't' ? 4 : 5;
            if (_s.substr(_pos, len) != word)
                fail("bad literal");
            _pos += len;
            v._type = JsonValue::Type::Bool;
            v._bool = c == 't';
        } else if (c == 'n') {
            if (_s.substr(_pos, 4) != "null")
                fail("bad literal");
            _pos += 4;
            v._type = JsonValue::Type::Null;
        } else if (c == '-' || std::isdigit(static_cast<unsigned char>(c))) {
            size_t start = _pos;
            if (_s[_pos] == '-')
                ++_pos;
            auto digits = [&] {
                size_t n = 0;
                while (_pos < _s.size() &&
                       std::isdigit(static_cast<unsigned char>(_s[_pos]))) {
                    ++_pos;
                    ++n;
                }
                return n;
            };
            if (!digits())
                fail("bad number");
            if (_pos < _s.size() && _s[_pos] == '.') {
                ++_pos;
                if (!digits())
                    fail("bad number");
            }
            if (_pos < _s.size() && (_s[_pos] == 'e' || _s[_pos] == 'E')) {
                ++_pos;
                if (_pos < _s.size() &&
                    (_s[_pos] == '+' || _s[_pos] == '-'))
                    ++_pos;
                if (!digits())
                    fail("bad number");
            }
            v._type = JsonValue::Type::Number;
            v._scalar = std::string(_s.substr(start, _pos - start));
        } else {
            fail(std::string("unexpected character '") + c + "'");
        }
        return v;
    }

    std::string_view _s;
    size_t _pos = 0;
};

JsonValue
JsonValue::parse(std::string_view text)
{
    return JsonParser(text).document();
}

bool
JsonValue::isUnsignedIntegral() const
{
    if (_type != Type::Number)
        return false;
    return _scalar.find_first_of(".eE-") == std::string::npos;
}

bool
JsonValue::boolean() const
{
    if (_type != Type::Bool)
        throw StatsJsonError("JSON value is not a boolean");
    return _bool;
}

uint64_t
JsonValue::asU64() const
{
    if (!isUnsignedIntegral())
        throw StatsJsonError("JSON value is not an unsigned integer: " +
                             _scalar);
    return std::strtoull(_scalar.c_str(), nullptr, 10);
}

double
JsonValue::asDouble() const
{
    if (_type != Type::Number)
        throw StatsJsonError("JSON value is not a number");
    return std::strtod(_scalar.c_str(), nullptr);
}

const std::string &
JsonValue::asString() const
{
    if (_type != Type::String)
        throw StatsJsonError("JSON value is not a string");
    return _scalar;
}

const std::string &
JsonValue::numberToken() const
{
    if (_type != Type::Number)
        throw StatsJsonError("JSON value is not a number");
    return _scalar;
}

const std::vector<std::pair<std::string, JsonValue>> &
JsonValue::members() const
{
    if (_type != Type::Object)
        throw StatsJsonError("JSON value is not an object");
    return _members;
}

const JsonValue *
JsonValue::find(const std::string &key) const
{
    for (const auto &[k, v] : members()) {
        if (k == key)
            return &v;
    }
    return nullptr;
}

const JsonValue &
JsonValue::at(const std::string &key) const
{
    const JsonValue *v = find(key);
    if (!v)
        throw StatsJsonError("missing JSON key '" + key + "'");
    return *v;
}

const std::vector<JsonValue> &
JsonValue::items() const
{
    if (_type != Type::Array)
        throw StatsJsonError("JSON value is not an array");
    return _items;
}

// ---------------------------------------------------------------------
// Registry -> JSON
// ---------------------------------------------------------------------

namespace
{

void
writeHistogram(JsonWriter &w, const BoundedHistogram &h)
{
    w.beginObject();
    w.key("maxBucket").value(uint64_t(h.maxBucket()));
    w.key("buckets").beginArray();
    for (unsigned b = 0; b <= h.maxBucket(); ++b)
        w.value(h.bucket(b));
    w.endArray();
    w.key("overflow").value(h.overflow());
    w.key("total").value(h.total());
    w.key("sum").value(h.sum());
    w.endObject();
}

void
writeJoint(JsonWriter &w, const JointHistogram &j)
{
    w.beginObject();
    w.key("maxX").value(uint64_t(j.maxX()));
    w.key("maxY").value(uint64_t(j.maxY()));
    w.key("cells").beginArray();
    for (unsigned x = 0; x <= j.maxX(); ++x) {
        w.beginArray();
        for (unsigned y = 0; y <= j.maxY(); ++y)
            w.value(j.cell(x, y));
        w.endArray();
    }
    w.endArray();
    w.key("total").value(j.total());
    w.endObject();
}

BoundedHistogram
parseHistogram(const JsonValue &v)
{
    unsigned max_bucket = static_cast<unsigned>(
        v.at("maxBucket").asU64());
    const JsonValue &buckets = v.at("buckets");
    if (buckets.size() != size_t(max_bucket) + 1)
        throw StatsJsonError("histogram bucket count mismatch");
    std::vector<uint64_t> counts;
    counts.reserve(buckets.size());
    for (size_t i = 0; i < buckets.size(); ++i)
        counts.push_back(buckets[i].asU64());
    return BoundedHistogram::fromParts(
        max_bucket, std::move(counts), v.at("total").asU64(),
        v.at("sum").asDouble(), v.at("overflow").asU64());
}

JointHistogram
parseJoint(const JsonValue &v)
{
    unsigned max_x = static_cast<unsigned>(v.at("maxX").asU64());
    unsigned max_y = static_cast<unsigned>(v.at("maxY").asU64());
    const JsonValue &rows = v.at("cells");
    if (rows.size() != size_t(max_x) + 1)
        throw StatsJsonError("joint histogram row count mismatch");
    std::vector<uint64_t> cells;
    cells.reserve(size_t(max_x + 1) * (max_y + 1));
    for (size_t x = 0; x < rows.size(); ++x) {
        const JsonValue &row = rows[x];
        if (row.size() != size_t(max_y) + 1)
            throw StatsJsonError("joint histogram column count mismatch");
        for (size_t y = 0; y < row.size(); ++y)
            cells.push_back(row[y].asU64());
    }
    return JointHistogram::fromParts(max_x, max_y, std::move(cells),
                                     v.at("total").asU64());
}

void
writeMetaBlock(JsonWriter &w, const char *key, const StatsMeta &block)
{
    if (block.empty())
        return;
    w.key(key).beginObject();
    for (const auto &[k, v] : block)
        w.key(k).value(v);
    w.endObject();
}

void
writeEnvelopeHead(JsonWriter &w, const StatsEnvelope &env)
{
    w.beginObject();
    w.key("schemaVersion").value(kStatsSchemaVersion);
    writeMetaBlock(w, "meta", env.meta);
    writeMetaBlock(w, "source", env.source);
    writeMetaBlock(w, "run", env.run);
}

int
checkSchemaVersion(const JsonValue &doc)
{
    const JsonValue &ver = doc.at("schemaVersion");
    if (!ver.isUnsignedIntegral() ||
        ver.asU64() < uint64_t(kStatsSchemaVersionMin) ||
        ver.asU64() > uint64_t(kStatsSchemaVersion))
        throw StatsJsonError(
            "unsupported schemaVersion " +
            (ver.isNumber() ? ver.numberToken()
                            : std::string("<non-numeric>")) +
            " (this build reads versions " +
            std::to_string(kStatsSchemaVersionMin) + ".." +
            std::to_string(kStatsSchemaVersion) + ")");
    return static_cast<int>(ver.asU64());
}

void
readMetaBlock(const JsonValue &doc, const std::string &key,
              StatsMeta &out)
{
    if (const JsonValue *m = doc.find(key)) {
        for (const auto &[k, v] : m->members())
            out.emplace_back(k, v.asString());
    }
}

} // namespace

void
writeStatsJson(std::ostream &os, const StatsRegistry &reg,
               const StatsMeta &meta, bool pretty)
{
    writeStatsJson(os, reg, StatsEnvelope{meta, {}, {}}, pretty);
}

void
writeStatsJson(std::ostream &os, const StatsRegistry &reg,
               const StatsEnvelope &env, bool pretty)
{
    JsonWriter w(os, pretty);
    writeEnvelopeHead(w, env);
    w.key("stats").beginObject();
    for (const StatEntry &e : reg.entries()) {
        w.key(e.name);
        switch (e.kind) {
          case StatKind::Counter: w.value(e.u64); break;
          case StatKind::Scalar: w.value(e.scalar); break;
          case StatKind::Text: w.value(e.text); break;
          case StatKind::Histogram: writeHistogram(w, e.hist); break;
          case StatKind::Joint: writeJoint(w, e.joint); break;
        }
    }
    w.endObject();
    w.endObject();
    os << "\n";
}

std::string
statsToJson(const StatsRegistry &reg, const StatsMeta &meta, bool pretty)
{
    std::ostringstream oss;
    writeStatsJson(oss, reg, meta, pretty);
    return oss.str();
}

std::string
statsToJson(const StatsRegistry &reg, const StatsEnvelope &env,
            bool pretty)
{
    std::ostringstream oss;
    writeStatsJson(oss, reg, env, pretty);
    return oss.str();
}

StatsRegistry
statsFromJson(std::string_view text, StatsMeta *meta)
{
    StatsEnvelope env;
    StatsRegistry reg = statsFromJson(text, &env, nullptr);
    if (meta) {
        meta->insert(meta->end(), env.meta.begin(), env.meta.end());
    }
    return reg;
}

StatsRegistry
statsFromJson(std::string_view text, StatsEnvelope *env, int *version)
{
    JsonValue doc = JsonValue::parse(text);
    int ver = checkSchemaVersion(doc);
    if (version)
        *version = ver;

    if (env) {
        readMetaBlock(doc, "meta", env->meta);
        readMetaBlock(doc, "source", env->source);
        readMetaBlock(doc, "run", env->run);
    }

    StatsRegistry reg;
    const JsonValue &stats = doc.at("stats");
    for (const auto &[name, v] : stats.members()) {
        switch (v.type()) {
          case JsonValue::Type::String:
            reg.text(name, v.asString());
            break;
          case JsonValue::Type::Number:
            if (v.isUnsignedIntegral())
                reg.counter(name, v.asU64());
            else
                reg.scalar(name, v.asDouble());
            break;
          case JsonValue::Type::Object:
            if (v.find("maxBucket"))
                reg.histogram(name, parseHistogram(v));
            else if (v.find("maxX"))
                reg.joint(name, parseJoint(v));
            else
                throw StatsJsonError("stat '" + name +
                                     "' is an unrecognized object");
            break;
          default:
            throw StatsJsonError("stat '" + name +
                                 "' has an unsupported JSON type");
        }
    }
    return reg;
}

// ---------------------------------------------------------------------
// Registry -> CSV
// ---------------------------------------------------------------------

namespace
{

std::string
csvQuote(const std::string &s)
{
    if (s.find_first_of(",\"\n") == std::string::npos)
        return s;
    std::string out = "\"";
    for (char c : s) {
        if (c == '"')
            out += '"';
        out += c;
    }
    out += '"';
    return out;
}

} // namespace

void
writeStatsCsv(std::ostream &os, const StatsRegistry &reg,
              const StatsMeta &meta)
{
    std::vector<std::string> head;
    std::vector<std::string> row;
    auto col = [&](const std::string &h, std::string v) {
        head.push_back(csvQuote(h));
        row.push_back(std::move(v));
    };

    for (const auto &[k, v] : meta)
        col(k, csvQuote(v));

    for (const StatEntry &e : reg.entries()) {
        switch (e.kind) {
          case StatKind::Counter:
            col(e.name, std::to_string(e.u64));
            break;
          case StatKind::Scalar:
            col(e.name, jsonDouble(e.scalar));
            break;
          case StatKind::Text:
            col(e.name, csvQuote(e.text));
            break;
          case StatKind::Histogram:
            for (unsigned b = 0; b <= e.hist.maxBucket(); ++b)
                col(e.name + ".b" + std::to_string(b),
                    std::to_string(e.hist.bucket(b)));
            col(e.name + ".overflow",
                std::to_string(e.hist.overflow()));
            col(e.name + ".total", std::to_string(e.hist.total()));
            col(e.name + ".sum", jsonDouble(e.hist.sum()));
            break;
          case StatKind::Joint:
            for (unsigned x = 0; x <= e.joint.maxX(); ++x)
                for (unsigned y = 0; y <= e.joint.maxY(); ++y)
                    col(e.name + ".x" + std::to_string(x) + "y" +
                            std::to_string(y),
                        std::to_string(e.joint.cell(x, y)));
            col(e.name + ".total", std::to_string(e.joint.total()));
            break;
        }
    }

    auto emit = [&](const std::vector<std::string> &cells) {
        for (size_t i = 0; i < cells.size(); ++i) {
            if (i)
                os << ",";
            os << cells[i];
        }
        os << "\n";
    };
    emit(head);
    emit(row);
}

std::string
statsToCsv(const StatsRegistry &reg, const StatsMeta &meta)
{
    std::ostringstream oss;
    writeStatsCsv(oss, reg, meta);
    return oss.str();
}

// ---------------------------------------------------------------------
// TextTable -> JSON
// ---------------------------------------------------------------------

void
writeTableJson(std::ostream &os, const TextTable &table,
               const StatsMeta &meta, bool pretty)
{
    JsonWriter w(os, pretty);
    writeEnvelopeHead(w, StatsEnvelope{meta, {}, {}});
    w.key("table").beginObject();
    w.key("title").value(table.title());
    w.key("columns").beginArray();
    for (size_t c = 0; c < table.columns(); ++c)
        w.value(table.headerAt(c));
    w.endArray();
    w.key("rows").beginArray();
    for (size_t r = 0; r < table.rows(); ++r) {
        w.beginArray();
        for (size_t c = 0; c < table.rowWidth(r); ++c)
            w.value(table.at(r, c));
        w.endArray();
    }
    w.endArray();
    w.endObject();
    w.endObject();
    os << "\n";
}

} // namespace storemlp
