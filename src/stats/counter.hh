/**
 * @file
 * Simple named counters used throughout the simulator.
 */

#ifndef STOREMLP_STATS_COUNTER_HH
#define STOREMLP_STATS_COUNTER_HH

#include <cstdint>
#include <string>
#include <vector>

namespace storemlp
{

/**
 * A monotonically increasing event counter with a name, suitable for
 * aggregation into stat dumps.
 */
class Counter
{
  public:
    Counter() = default;
    explicit Counter(std::string name) : _name(std::move(name)) {}

    void operator++() { ++_value; }
    void operator++(int) { ++_value; }
    void add(uint64_t n) { _value += n; }
    void reset() { _value = 0; }

    uint64_t value() const { return _value; }
    const std::string &name() const { return _name; }

    /** Rate of this counter per `per` units of the given denominator. */
    double
    rate(uint64_t denominator, double per = 1000.0) const
    {
        if (denominator == 0)
            return 0.0;
        return static_cast<double>(_value) * per
            / static_cast<double>(denominator);
    }

  private:
    std::string _name;
    uint64_t _value = 0;
};

/**
 * A running mean over observed samples (e.g. MLP averaged over epochs).
 */
class RunningMean
{
  public:
    void
    sample(double v)
    {
        _sum += v;
        ++_count;
    }

    double mean() const { return _count ? _sum / _count : 0.0; }
    uint64_t count() const { return _count; }
    double sum() const { return _sum; }
    void reset() { _sum = 0.0; _count = 0; }

  private:
    double _sum = 0.0;
    uint64_t _count = 0;
};

} // namespace storemlp

#endif // STOREMLP_STATS_COUNTER_HH
