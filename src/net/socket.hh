/**
 * @file
 * Minimal POSIX TCP helpers for the sweep service. Loopback-oriented:
 * the daemon binds 127.0.0.1 by default (port 0 picks an ephemeral
 * port, reported back via `port()`), and the client dials by
 * host:port. No TLS, no name-service fanciness — the protocol layer
 * (frame.hh) assumes a connected stream and nothing more.
 */

#ifndef STOREMLP_NET_SOCKET_HH
#define STOREMLP_NET_SOCKET_HH

#include <atomic>
#include <cstdint>
#include <string>

#include "net/frame.hh"

namespace storemlp::net
{

/**
 * Listening TCP socket. `listen()` binds and starts listening;
 * `accept()` blocks (polling so a stop flag is honored within
 * ~100 ms) and returns a connected fd, or -1 once `stop` is set or
 * the socket is closed.
 */
class TcpListener
{
  public:
    TcpListener() = default;
    ~TcpListener() { close(); }

    TcpListener(const TcpListener &) = delete;
    TcpListener &operator=(const TcpListener &) = delete;

    /** Bind `host`:`port` (port 0 = ephemeral) and listen. */
    void listen(const std::string &host, uint16_t port, int backlog = 16);

    /** Port actually bound (resolves ephemeral port 0). */
    uint16_t port() const { return _port; }

    /**
     * Accept one connection. Returns the connected fd, or -1 when
     * `stop` became true or the listener was closed.
     */
    int accept(const std::atomic<bool> &stop);

    void close();

  private:
    int _fd = -1;
    uint16_t _port = 0;
};

/** Connect to host:port; throws NetError on failure. Returns the fd. */
int tcpConnect(const std::string &host, uint16_t port);

} // namespace storemlp::net

#endif // STOREMLP_NET_SOCKET_HH
