/**
 * @file
 * Sweep daemon implementation.
 */

#include "net/sweep_server.hh"

#include <algorithm>
#include <mutex>
#include <sstream>
#include <vector>

#include "core/sweep.hh"
#include "core/sweep_request.hh"
#include "stats/stats_json.hh"

namespace storemlp::net
{

namespace
{

std::string
summaryJson(size_t runs, size_t ok, size_t failed)
{
    std::ostringstream oss;
    JsonWriter w(oss, /*pretty=*/false);
    w.beginObject();
    w.key("schemaVersion").value(kStatsSchemaVersion);
    w.key("meta").beginObject();
    // string_view-typed: a bare literal would resolve to value(bool).
    w.key("tool").value(std::string_view("storemlp_sweepd"));
    w.key("kind").value(std::string_view("sweep-summary"));
    w.endObject();
    w.key("summary").beginObject();
    w.key("runs").value(static_cast<uint64_t>(runs));
    w.key("ok").value(static_cast<uint64_t>(ok));
    w.key("failed").value(static_cast<uint64_t>(failed));
    w.endObject();
    w.endObject();
    return oss.str();
}

} // namespace

SweepServer::SweepServer(SweepServerOptions opts) : _opts(std::move(opts))
{
}

SweepServer::~SweepServer()
{
    stop();
}

void
SweepServer::start()
{
    _listener.listen(_opts.host, _opts.port);
    _port = _listener.port();
    _acceptThread = std::thread([this] { acceptLoop(); });
}

void
SweepServer::waitUntilFinished()
{
    if (_acceptThread.joinable())
        _acceptThread.join();
}

void
SweepServer::stop()
{
    _stop.store(true);
    _listener.close();
    {
        // Kick handlers blocked in recv() on idle connections —
        // shutdown only; each handler closes its own fd on exit.
        std::lock_guard<std::mutex> lk(_connMu);
        for (FrameConn *conn : _activeConns)
            conn->shutdown();
    }
    waitUntilFinished();
}

void
SweepServer::registerConn(FrameConn *conn)
{
    std::lock_guard<std::mutex> lk(_connMu);
    _activeConns.push_back(conn);
}

void
SweepServer::unregisterConn(FrameConn *conn)
{
    std::lock_guard<std::mutex> lk(_connMu);
    _activeConns.erase(
        std::find(_activeConns.begin(), _activeConns.end(), conn));
}

void
SweepServer::acceptLoop()
{
    std::vector<std::thread> handlers;
    while (!_stop.load()) {
        if (_opts.maxConnections &&
            _connections.load() >= _opts.maxConnections) {
            break;
        }
        int fd = _listener.accept(_stop);
        if (fd < 0)
            break;
        _connections.fetch_add(1);
        handlers.emplace_back([this, fd] { serveConnection(fd); });
    }
    for (std::thread &t : handlers)
        t.join();
    _finished.store(true);
}

void
SweepServer::serveConnection(int fd)
{
    FrameConn conn(fd);
    registerConn(&conn);
    struct Unregister
    {
        SweepServer *server;
        FrameConn *conn;
        ~Unregister() { server->unregisterConn(conn); }
    } unregister{this, &conn};
    try {
        // Handshake: the client leads with Hello; anything else (or a
        // version we do not speak) draws an Error frame and a close.
        Frame frame;
        if (!conn.recv(frame))
            return;
        if (frame.type != MsgType::Hello) {
            conn.send(MsgType::Error, "expected Hello frame");
            return;
        }
        uint32_t version = getU32(frame.payload, 0);
        if (version != kProtocolVersion) {
            conn.send(MsgType::Error,
                      "protocol version mismatch: client speaks v" +
                          std::to_string(version) + ", server speaks v" +
                          std::to_string(kProtocolVersion));
            return;
        }
        std::string ack;
        putU32(ack, kProtocolVersion);
        putU32(ack, static_cast<uint32_t>(kStatsSchemaVersion));
        conn.send(MsgType::HelloAck, ack);

        while (conn.recv(frame)) {
            if (frame.type != MsgType::Submit) {
                conn.send(MsgType::Error,
                          "unexpected frame type " +
                              std::to_string(static_cast<unsigned>(
                                  frame.type)) +
                              " (want Submit)");
                continue;
            }

            SweepRequest request;
            try {
                request = sweepRequestFromText(frame.payload);
                // Expansion errors (unknown workload/model, bad
                // filter) surface here, before any run starts.
                (void)expandSweepRuns(request);
            } catch (const SimError &e) {
                conn.send(MsgType::Error,
                          std::string("bad sweep request: ") + e.what());
                continue;
            }

            ArtifactSource src;
            src.tool = "storemlp_sweepd";
            src.host = localHostName();
            src.requestFingerprint = sweepRequestFingerprint(request);

            const unsigned drop_after =
                (_opts.dropAfterResults &&
                 _dropArmed.exchange(false))
                    ? _opts.dropAfterResults
                    : 0;

            SweepOptions sw;
            sw.jobs = _opts.jobs;
            sw.progress = false;
            SweepEngine engine(sw, &TraceCache::global());

            std::mutex write_mu;
            bool dead = false;
            size_t sent = 0, n_ok = 0, n_failed = 0;
            auto observer = [&](const RunOutcome &outcome, size_t,
                                size_t) {
                std::lock_guard<std::mutex> lk(write_mu);
                if (outcome.ok)
                    ++n_ok;
                else
                    ++n_failed;
                if (dead)
                    return;
                try {
                    conn.send(MsgType::RunResult,
                              runOutcomeJson(outcome, src, request.seed,
                                             request.warmupInsts,
                                             request.measureInsts));
                    ++sent;
                } catch (const NetError &) {
                    // The client is gone; finish the batch quietly —
                    // the engine must not fail runs over a dead pipe.
                    dead = true;
                }
                if (drop_after && sent >= drop_after) {
                    // Fault injection: crash this connection
                    // mid-stream. The client recovers by retrying the
                    // missing shards.
                    conn.close();
                    dead = true;
                }
            };

            std::vector<RunOutcome> outcomes =
                engine.execute(request, observer);
            (void)outcomes;

            std::lock_guard<std::mutex> lk(write_mu);
            if (dead)
                return;
            conn.send(MsgType::JobDone,
                      summaryJson(n_ok + n_failed, n_ok, n_failed));
        }
    } catch (const SimError &) {
        // Truncated frame, oversized prefix, mid-frame disconnect:
        // this connection is unusable, but the server keeps serving.
    }
}

} // namespace storemlp::net
