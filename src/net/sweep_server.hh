/**
 * @file
 * The sweep daemon core: accepts connections, speaks the framed
 * protocol (Hello/HelloAck handshake, Submit -> streamed RunResult
 * frames -> JobDone), and executes each submitted `SweepRequest` on a
 * `SweepEngine` worker pool. Every connection gets a fresh engine but
 * all of them share `TraceCache::global()`, so concurrent clients
 * sweeping the same workloads decode each trace once.
 *
 * Fault stance mirrors the engine's: a malformed request or an
 * unknown frame draws an Error frame and the connection lives on; a
 * client that vanishes mid-stream kills only its own connection
 * (results for in-flight runs are discarded, the engine finishes the
 * batch, the server keeps serving). Delivery is therefore
 * at-least-once from the client's point of view — the client rebuilds
 * missing shards by resubmitting with a `runFilter`.
 */

#ifndef STOREMLP_NET_SWEEP_SERVER_HH
#define STOREMLP_NET_SWEEP_SERVER_HH

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "net/socket.hh"

namespace storemlp::net
{

/** Daemon knobs. */
struct SweepServerOptions
{
    std::string host = "127.0.0.1";
    /** Port to bind; 0 picks an ephemeral port (see port()). */
    uint16_t port = 0;
    /** Worker threads per submitted batch; 0 = SweepEngine default. */
    unsigned jobs = 0;
    /** Stop accepting after this many connections; 0 = unlimited. */
    unsigned maxConnections = 0;
    /**
     * Fault-injection hook for the retry tests: the first connection
     * that submits a batch is torn down after this many RunResult
     * frames, as if the server crashed mid-stream. 0 disables.
     */
    unsigned dropAfterResults = 0;
};

/** Accept loop + per-connection protocol handlers. */
class SweepServer
{
  public:
    explicit SweepServer(SweepServerOptions opts = {});
    ~SweepServer();

    SweepServer(const SweepServer &) = delete;
    SweepServer &operator=(const SweepServer &) = delete;

    /** Bind and start the accept thread. Throws NetError on bind. */
    void start();

    /** Port actually bound; valid after start(). */
    uint16_t port() const { return _port; }

    /** Accept loop has exited (maxConnections reached or stopped). */
    bool finished() const { return _finished.load(); }

    /**
     * Block until the accept loop exits — with `maxConnections` set
     * this is "serve N connections to completion, then return".
     */
    void waitUntilFinished();

    /** Stop accepting, drain handlers, join. Idempotent. */
    void stop();

    uint64_t connectionsServed() const { return _connections.load(); }

  private:
    void acceptLoop();
    void serveConnection(int fd);
    void registerConn(FrameConn *conn);
    void unregisterConn(FrameConn *conn);

    SweepServerOptions _opts;
    /** Live connections, so stop() can kick handlers off recv(). */
    std::mutex _connMu;
    std::vector<FrameConn *> _activeConns;
    TcpListener _listener;
    uint16_t _port = 0;
    std::thread _acceptThread;
    std::atomic<bool> _stop{false};
    std::atomic<bool> _finished{false};
    std::atomic<uint64_t> _connections{0};
    /** One-shot arm for dropAfterResults (first submit only). */
    std::atomic<bool> _dropArmed{true};
};

} // namespace storemlp::net

#endif // STOREMLP_NET_SWEEP_SERVER_HH
