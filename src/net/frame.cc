/**
 * @file
 * Frame stream implementation (POSIX sockets).
 */

#include "net/frame.hh"

#include <cerrno>
#include <cstring>

#ifndef _WIN32
#include <sys/socket.h>
#include <unistd.h>
#endif

namespace storemlp::net
{

void
putU32(std::string &out, uint32_t v)
{
    out.push_back(static_cast<char>(v & 0xff));
    out.push_back(static_cast<char>((v >> 8) & 0xff));
    out.push_back(static_cast<char>((v >> 16) & 0xff));
    out.push_back(static_cast<char>((v >> 24) & 0xff));
}

uint32_t
getU32(const std::string &payload, size_t off)
{
    if (off + 4 > payload.size())
        throw NetError("frame payload too short for u32 field");
    auto b = [&](size_t i) {
        return static_cast<uint32_t>(
            static_cast<unsigned char>(payload[off + i]));
    };
    return b(0) | (b(1) << 8) | (b(2) << 16) | (b(3) << 24);
}

FrameConn::~FrameConn()
{
    if (_owned)
        close();
}

void
FrameConn::close()
{
#ifndef _WIN32
    if (_fd >= 0) {
        ::shutdown(_fd, SHUT_RDWR);
        ::close(_fd);
        _fd = -1;
    }
#endif
}

void
FrameConn::shutdown()
{
#ifndef _WIN32
    if (_fd >= 0)
        ::shutdown(_fd, SHUT_RDWR);
#endif
}

void
FrameConn::writeAll(const void *data, size_t len)
{
#ifndef _WIN32
    const char *p = static_cast<const char *>(data);
    while (len > 0) {
        // MSG_NOSIGNAL: a dead peer must surface as EPIPE (-> NetError
        // and a client retry), never as a process-killing SIGPIPE.
        ssize_t n = ::send(_fd, p, len, MSG_NOSIGNAL);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            throw NetError(std::string("socket write failed: ") +
                           std::strerror(errno));
        }
        p += n;
        len -= static_cast<size_t>(n);
    }
#else
    (void)data;
    (void)len;
    throw NetError("sweep networking is not supported on this platform");
#endif
}

bool
FrameConn::readAll(void *data, size_t len, bool eof_ok)
{
#ifndef _WIN32
    char *p = static_cast<char *>(data);
    size_t got = 0;
    while (got < len) {
        ssize_t n = ::recv(_fd, p + got, len - got, 0);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            throw NetError(std::string("socket read failed: ") +
                           std::strerror(errno));
        }
        if (n == 0) {
            if (got == 0 && eof_ok)
                return false;
            throw NetError("truncated frame: connection closed after " +
                           std::to_string(got) + " of " +
                           std::to_string(len) + " bytes");
        }
        got += static_cast<size_t>(n);
    }
    return true;
#else
    (void)data;
    (void)len;
    (void)eof_ok;
    throw NetError("sweep networking is not supported on this platform");
#endif
}

void
FrameConn::send(MsgType type, const std::string &payload)
{
    if (payload.size() + 1 > kMaxFrameBytes)
        throw NetError("frame payload exceeds kMaxFrameBytes");
    std::string head;
    head.reserve(5);
    putU32(head, static_cast<uint32_t>(payload.size() + 1));
    head.push_back(static_cast<char>(type));
    writeAll(head.data(), head.size());
    if (!payload.empty())
        writeAll(payload.data(), payload.size());
}

bool
FrameConn::recv(Frame &frame)
{
    unsigned char head[4];
    if (!readAll(head, sizeof head, /*eof_ok=*/true))
        return false;
    uint32_t length = static_cast<uint32_t>(head[0]) |
                      (static_cast<uint32_t>(head[1]) << 8) |
                      (static_cast<uint32_t>(head[2]) << 16) |
                      (static_cast<uint32_t>(head[3]) << 24);
    if (length == 0)
        throw NetError("zero-length frame (missing type byte)");
    if (length > kMaxFrameBytes)
        throw NetError("oversized frame: length prefix " +
                       std::to_string(length) + " exceeds cap " +
                       std::to_string(kMaxFrameBytes));
    unsigned char type = 0;
    readAll(&type, 1, /*eof_ok=*/false);
    frame.type = static_cast<MsgType>(type);
    frame.payload.resize(length - 1);
    if (length > 1)
        readAll(frame.payload.data(), length - 1, /*eof_ok=*/false);
    return true;
}

} // namespace storemlp::net
