/**
 * @file
 * Sweep service client implementation.
 */

#include "net/sweep_client.hh"

#include <memory>
#include <unordered_map>

#include "net/socket.hh"
#include "stats/stats_json.hh"

namespace storemlp::net
{

namespace
{

/** Connect + Hello/HelloAck; throws NetError on refusal. */
std::unique_ptr<FrameConn>
dialServer(const SweepClientOptions &opts)
{
    auto conn = std::make_unique<FrameConn>(
        tcpConnect(opts.host, opts.port));
    std::string hello;
    putU32(hello, kProtocolVersion);
    conn->send(MsgType::Hello, hello);
    Frame frame;
    if (!conn->recv(frame))
        throw NetError("server closed connection during handshake");
    if (frame.type == MsgType::Error)
        throw NetError("server refused handshake: " + frame.payload);
    if (frame.type != MsgType::HelloAck)
        throw NetError("handshake: expected HelloAck, got frame type " +
                       std::to_string(
                           static_cast<unsigned>(frame.type)));
    uint32_t version = getU32(frame.payload, 0);
    if (version != kProtocolVersion) {
        throw NetError("protocol version mismatch: server speaks v" +
                       std::to_string(version));
    }
    return conn;
}

/** Pull run identity out of a streamed result document. */
RemoteRunResult
parseRunResult(const std::string &payload)
{
    RemoteRunResult r;
    r.json = payload;
    JsonValue doc = JsonValue::parse(payload);
    const JsonValue &run = doc.at("run");
    r.name = run.at("name").asString();
    r.ok = run.at("ok").asString() == "1";
    if (!r.ok) {
        if (const JsonValue *meta = doc.find("meta")) {
            if (const JsonValue *err = meta->find("error"))
                r.errorMessage = err->asString();
        }
    }
    return r;
}

} // namespace

RemoteSweepReport
runSweepRemote(const SweepRequest &request,
               const SweepClientOptions &opts,
               const RemoteRunCallback &onResult)
{
    // Expand locally first: this validates the request before any
    // bytes hit the wire and pins down the exact shard-name set the
    // server must deliver.
    std::vector<PlannedRun> planned = expandSweepRuns(request);

    RemoteSweepReport report;
    report.results.resize(planned.size());
    std::unordered_map<std::string, size_t> slot;
    for (size_t i = 0; i < planned.size(); ++i) {
        report.results[i].name = planned[i].name;
        slot.emplace(planned[i].name, i);
    }

    std::vector<bool> have(planned.size(), false);
    size_t have_count = 0;

    auto missingNames = [&] {
        std::vector<std::string> names;
        for (size_t i = 0; i < planned.size(); ++i)
            if (!have[i])
                names.push_back(planned[i].name);
        return names;
    };

    std::string last_error = "no result stream";
    for (unsigned attempt = 0; attempt <= opts.maxReconnects;
         ++attempt) {
        if (have_count == planned.size())
            break;
        if (attempt > 0)
            ++report.reconnects;
        try {
            std::unique_ptr<FrameConn> conn = dialServer(opts);

            SweepRequest shard = request;
            if (attempt > 0) {
                // Resubmit only the shards we never received. The
                // fingerprint ignores runFilter, so the server stamps
                // these results as belonging to the original job.
                shard.runFilter = missingNames();
            }
            conn->send(MsgType::Submit, sweepRequestToText(shard));

            Frame frame;
            bool done = false;
            while (!done && conn->recv(frame)) {
                switch (frame.type) {
                  case MsgType::RunResult: {
                    RemoteRunResult r = parseRunResult(frame.payload);
                    auto it = slot.find(r.name);
                    if (it == slot.end()) {
                        throw NetError(
                            "server sent result for unknown run '" +
                            r.name + "'");
                    }
                    // At-least-once delivery: a resubmitted shard can
                    // race a result already in flight — first one in
                    // wins, duplicates are dropped.
                    if (have[it->second])
                        break;
                    have[it->second] = true;
                    ++have_count;
                    report.results[it->second] = std::move(r);
                    if (onResult) {
                        onResult(report.results[it->second],
                                 have_count, planned.size());
                    }
                    break;
                  }
                  case MsgType::JobDone:
                    report.summaryJson = frame.payload;
                    done = true;
                    break;
                  case MsgType::Error:
                    throw NetError("server error: " + frame.payload);
                  default:
                    throw NetError(
                        "unexpected frame type " +
                        std::to_string(
                            static_cast<unsigned>(frame.type)));
                }
            }
            if (have_count == planned.size())
                break;
            last_error = done
                ? "server reported the batch done with shards missing"
                : "connection closed mid-stream";
        } catch (const NetError &e) {
            last_error = e.what();
            // Fall through to the next attempt (if any remain).
        }
    }

    if (have_count != planned.size()) {
        throw NetError("lost " +
                       std::to_string(planned.size() - have_count) +
                       " of " + std::to_string(planned.size()) +
                       " shards after " +
                       std::to_string(report.reconnects) +
                       " reconnect(s): " + last_error);
    }
    return report;
}

} // namespace storemlp::net
