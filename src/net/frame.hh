/**
 * @file
 * Wire framing for the sweep protocol: a length-prefixed, versioned
 * binary stream. Every message is one frame:
 *
 *   u32 LE  length   — bytes that follow (type byte + payload)
 *   u8      type     — MsgType
 *   u8[]    payload  — length-1 bytes, meaning depends on type
 *
 * Frames are self-delimiting, so a reader never needs to understand a
 * payload to skip it, and a single `u32` bound (`kMaxFrameBytes`)
 * rejects corrupt or hostile length prefixes before any allocation.
 * See docs/SWEEP_PROTOCOL.md for the normative message-type spec.
 */

#ifndef STOREMLP_NET_FRAME_HH
#define STOREMLP_NET_FRAME_HH

#include <cstdint>
#include <string>

#include "util/error.hh"

namespace storemlp::net
{

/** Protocol failures: refused handshakes, truncated or oversized
 *  frames, unexpected disconnects. Derives from SimError so the tool
 *  exit contract (1 = SimError) covers network failures. */
class NetError : public SimError
{
  public:
    explicit NetError(const std::string &what) : SimError(what) {}
};

/** Version negotiated in HELLO/HELLO_ACK. */
constexpr uint32_t kProtocolVersion = 1;

/** Upper bound on `length`; larger prefixes are rejected unread. */
constexpr uint32_t kMaxFrameBytes = 64u * 1024 * 1024;

/** Message types. Unknown types draw an Error frame, not a crash. */
enum class MsgType : uint8_t
{
    Hello = 1,    ///< client->server: u32 LE protocol version
    HelloAck = 2, ///< server->client: u32 LE version, u32 LE schema
    Submit = 3,   ///< client->server: serialized SweepRequest text
    RunResult = 4, ///< server->client: one schemaVersion-2 JSON doc
    JobDone = 5,  ///< server->client: sweep-summary JSON doc
    Error = 6,    ///< either way: diagnostic string; sender gives up
};

/** One received frame. */
struct Frame
{
    MsgType type = MsgType::Error;
    std::string payload;
};

/** Append a u32 in little-endian order. */
void putU32(std::string &out, uint32_t v);
/** Read a u32 LE at `off`; throws NetError past the end. */
uint32_t getU32(const std::string &payload, size_t off);

/**
 * Blocking frame stream over a connected socket fd. Does not own the
 * fd unless `owned` — the server/client wrappers manage lifetime.
 * Reads and writes retry on EINTR and always transfer whole frames;
 * a peer that disappears mid-frame raises NetError("truncated ...").
 */
class FrameConn
{
  public:
    explicit FrameConn(int fd, bool owned = true)
        : _fd(fd), _owned(owned)
    {
    }
    ~FrameConn();

    FrameConn(const FrameConn &) = delete;
    FrameConn &operator=(const FrameConn &) = delete;

    int fd() const { return _fd; }

    /** Send one frame; throws NetError when the peer is gone. */
    void send(MsgType type, const std::string &payload);

    /**
     * Receive one frame. Returns false on a clean EOF at a frame
     * boundary (the peer closed politely); throws NetError on a
     * truncated frame, an oversized or zero length prefix, or a
     * socket error.
     */
    bool recv(Frame &frame);

    /** Half-close for writing, then fully close. Idempotent. */
    void close();

    /**
     * Shut down both directions WITHOUT closing the fd: a reader
     * blocked in recv() wakes with EOF, while the descriptor stays
     * valid until its owner closes it. This is the thread-safe way to
     * kick a connection from outside its handler thread.
     */
    void shutdown();

  private:
    void writeAll(const void *data, size_t len);
    /** Read exactly len bytes; returns false on EOF before byte 0
     *  when `eof_ok`, throws on EOF mid-read. */
    bool readAll(void *data, size_t len, bool eof_ok);

    int _fd;
    bool _owned;
};

} // namespace storemlp::net

#endif // STOREMLP_NET_FRAME_HH
