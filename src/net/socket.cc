/**
 * @file
 * POSIX TCP helpers implementation.
 */

#include "net/socket.hh"

#include <cerrno>
#include <cstring>

#ifndef _WIN32
#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>
#endif

namespace storemlp::net
{

#ifndef _WIN32

namespace
{

sockaddr_in
makeAddr(const std::string &host, uint16_t port)
{
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1)
        throw NetError("cannot parse IPv4 address '" + host + "'");
    return addr;
}

} // namespace

void
TcpListener::listen(const std::string &host, uint16_t port, int backlog)
{
    close();
    int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0)
        throw NetError(std::string("socket() failed: ") +
                       std::strerror(errno));
    int one = 1;
    ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
    sockaddr_in addr = makeAddr(host, port);
    if (::bind(fd, reinterpret_cast<sockaddr *>(&addr), sizeof addr) < 0) {
        int err = errno;
        ::close(fd);
        throw NetError("bind " + host + ":" + std::to_string(port) +
                       " failed: " + std::strerror(err));
    }
    if (::listen(fd, backlog) < 0) {
        int err = errno;
        ::close(fd);
        throw NetError(std::string("listen() failed: ") +
                       std::strerror(err));
    }
    sockaddr_in bound{};
    socklen_t len = sizeof bound;
    if (::getsockname(fd, reinterpret_cast<sockaddr *>(&bound), &len) < 0) {
        int err = errno;
        ::close(fd);
        throw NetError(std::string("getsockname() failed: ") +
                       std::strerror(err));
    }
    _fd = fd;
    _port = ntohs(bound.sin_port);
}

int
TcpListener::accept(const std::atomic<bool> &stop)
{
    while (!stop.load(std::memory_order_relaxed)) {
        if (_fd < 0)
            return -1;
        pollfd pfd{_fd, POLLIN, 0};
        int rc = ::poll(&pfd, 1, 100);
        if (rc < 0) {
            if (errno == EINTR)
                continue;
            return -1;
        }
        if (rc == 0)
            continue;
        int conn = ::accept(_fd, nullptr, nullptr);
        if (conn < 0) {
            if (errno == EINTR || errno == ECONNABORTED)
                continue;
            return -1;
        }
        int one = 1;
        ::setsockopt(conn, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
        return conn;
    }
    return -1;
}

void
TcpListener::close()
{
    if (_fd >= 0) {
        ::close(_fd);
        _fd = -1;
    }
}

int
tcpConnect(const std::string &host, uint16_t port)
{
    int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0)
        throw NetError(std::string("socket() failed: ") +
                       std::strerror(errno));
    sockaddr_in addr = makeAddr(host, port);
    while (::connect(fd, reinterpret_cast<sockaddr *>(&addr),
                     sizeof addr) < 0) {
        if (errno == EINTR)
            continue;
        int err = errno;
        ::close(fd);
        throw NetError("connect " + host + ":" + std::to_string(port) +
                       " failed: " + std::strerror(err));
    }
    int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
    return fd;
}

#else // _WIN32

void
TcpListener::listen(const std::string &, uint16_t, int)
{
    throw NetError("sweep networking is not supported on this platform");
}

int
TcpListener::accept(const std::atomic<bool> &)
{
    return -1;
}

void
TcpListener::close()
{
}

int
tcpConnect(const std::string &, uint16_t)
{
    throw NetError("sweep networking is not supported on this platform");
}

#endif

} // namespace storemlp::net
