/**
 * @file
 * Sweep service client: submits a `SweepRequest` to a daemon and
 * collects the streamed per-run result documents. The client expands
 * the request locally with the very same `expandSweepRuns` the server
 * uses, so it knows the exact run-name set to expect; if the
 * connection dies before every name has arrived, it reconnects and
 * resubmits the request filtered to the missing names. Combined with
 * the server's at-least-once delivery this recovers every shard of a
 * batch across server-side connection drops, up to `maxReconnects`
 * attempts.
 */

#ifndef STOREMLP_NET_SWEEP_CLIENT_HH
#define STOREMLP_NET_SWEEP_CLIENT_HH

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "core/sweep_request.hh"
#include "net/frame.hh"

namespace storemlp::net
{

/** Client knobs. */
struct SweepClientOptions
{
    std::string host = "127.0.0.1";
    uint16_t port = 0;
    /** Extra connection attempts after a mid-stream disconnect. */
    unsigned maxReconnects = 3;
};

/** One run's result as received from the daemon. */
struct RemoteRunResult
{
    std::string name; ///< run name (matches the local expansion)
    bool ok = true;
    std::string errorMessage; ///< from the document meta when !ok
    std::string json;         ///< full schemaVersion-2 document
};

/** Outcome of one remote batch. */
struct RemoteSweepReport
{
    /** Per-run results in local expansion order (all names present). */
    std::vector<RemoteRunResult> results;
    /** Reconnect+resubmit cycles consumed recovering lost shards. */
    unsigned reconnects = 0;
    /** Last JobDone summary document (empty if never received). */
    std::string summaryJson;

    size_t failedRuns() const
    {
        size_t n = 0;
        for (const RemoteRunResult &r : results)
            if (!r.ok)
                ++n;
        return n;
    }
};

/** Streaming callback: fires as each new result arrives. */
using RemoteRunCallback = std::function<void(
    const RemoteRunResult &, size_t completed, size_t total)>;

/**
 * Submit `request` to the daemon and block until every expanded run
 * has a result (per-run failures are results too — inspect `ok`).
 * Throws NetError when the server is unreachable, refuses the
 * protocol version, or shards are still missing after the reconnect
 * budget; throws ConfigError when the request does not expand.
 */
RemoteSweepReport runSweepRemote(const SweepRequest &request,
                                 const SweepClientOptions &opts,
                                 const RemoteRunCallback &onResult = {});

} // namespace storemlp::net

#endif // STOREMLP_NET_SWEEP_CLIENT_HH
