/**
 * @file
 * Broadcast snoop bus connecting the chips of the multiprocessor.
 */

#ifndef STOREMLP_COHERENCE_BUS_HH
#define STOREMLP_COHERENCE_BUS_HH

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace storemlp
{

class ChipNode;
class StatsRegistry;

/** One bus transaction. */
struct BusRequest
{
    enum class Kind : uint8_t
    {
        Rd,   ///< read (load / instruction miss)
        RdX,  ///< read-for-ownership (store miss)
        Upgr, ///< upgrade S->M (store hit on shared line)
    };

    Kind kind = Kind::Rd;
    uint64_t line = 0;
    uint32_t srcChip = 0;
};

/** Snoop outcome aggregated over all remote chips. */
struct BusResponse
{
    /** Some remote chip held the line (any valid state). */
    bool remoteHad = false;
    /** Some remote chip held the line modified (dirty transfer). */
    bool remoteModified = false;
};

/**
 * Broadcast MESI snoop bus. Every request is presented to every
 * attached chip except the requester.
 */
class SnoopBus
{
  public:
    /** Attach a chip; the bus does not own it. */
    void attach(ChipNode *chip);

    /** Broadcast a request and gather the snoop response. */
    BusResponse request(const BusRequest &req);

    size_t chipCount() const { return _chips.size(); }

    // ---- statistics ----
    uint64_t reads() const { return _reads; }
    uint64_t readExclusives() const { return _readExclusives; }
    uint64_t upgrades() const { return _upgrades; }
    uint64_t remoteHits() const { return _remoteHits; }
    /** Requests answered by a dirty (Modified/Owned) remote line. */
    uint64_t dirtyTransfers() const { return _dirtyTransfers; }
    void
    resetStats()
    {
        _reads = _readExclusives = _upgrades = _remoteHits = 0;
        _dirtyTransfers = 0;
    }

    /**
     * Register transaction counters under `prefix`, including the
     * derived `<prefix>invalidations` (RdX + Upgr — the transactions
     * that invalidate remote copies).
     */
    void exportStats(StatsRegistry &reg,
                     const std::string &prefix = "coherence.") const;

  private:
    std::vector<ChipNode *> _chips;
    uint64_t _reads = 0;
    uint64_t _readExclusives = 0;
    uint64_t _upgrades = 0;
    uint64_t _remoteHits = 0;
    uint64_t _dirtyTransfers = 0;
};

} // namespace storemlp

#endif // STOREMLP_COHERENCE_BUS_HH
