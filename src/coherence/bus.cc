/**
 * @file
 * Snoop bus implementation.
 */

#include "coherence/bus.hh"

#include "coherence/chip.hh"
#include "stats/registry.hh"

namespace storemlp
{

void
SnoopBus::attach(ChipNode *chip)
{
    _chips.push_back(chip);
}

BusResponse
SnoopBus::request(const BusRequest &req)
{
    switch (req.kind) {
      case BusRequest::Kind::Rd: ++_reads; break;
      case BusRequest::Kind::RdX: ++_readExclusives; break;
      case BusRequest::Kind::Upgr: ++_upgrades; break;
    }

    BusResponse resp;
    for (ChipNode *chip : _chips) {
        if (chip->chipId() == req.srcChip)
            continue;
        // Peek at the remote L2 before the snoop mutates it.
        uint64_t line = req.line;
        auto state = chip->hierarchy().l2().probeState(line);
        bool owns_in_smac = chip->smac() && chip->smac()->ownsLine(line);
        if (state || owns_in_smac) {
            resp.remoteHad = true;
            // A dirty remote line supplies the data (cache-to-cache
            // transfer). Under MESI that means Modified; under MOESI
            // chip.cc keeps evicted-read dirty lines in Owned state
            // and they stay the data supplier, so Owned is equally a
            // dirty transfer.
            if (state) {
                MesiState st = static_cast<MesiState>(*state);
                if (st == MesiState::Modified ||
                    st == MesiState::Owned) {
                    resp.remoteModified = true;
                }
            }
        }
        chip->snoop(req);
    }
    if (resp.remoteHad)
        ++_remoteHits;
    if (resp.remoteModified)
        ++_dirtyTransfers;
    return resp;
}

void
SnoopBus::exportStats(StatsRegistry &reg,
                      const std::string &prefix) const
{
    reg.counter(prefix + "reads", _reads);
    reg.counter(prefix + "readExclusives", _readExclusives);
    reg.counter(prefix + "upgrades", _upgrades);
    reg.counter(prefix + "remoteHits", _remoteHits);
    reg.counter(prefix + "invalidations", _readExclusives + _upgrades);
}

} // namespace storemlp
