/**
 * @file
 * Peer traffic agent implementation.
 */

#include "coherence/traffic.hh"

namespace storemlp
{

PeerTrafficAgent::PeerTrafficAgent(const WorkloadProfile &profile,
                                   uint64_t seed, ChipNode &node,
                                   int gen_id)
    : _gen(profile, seed,
           gen_id >= 0 ? static_cast<uint32_t>(gen_id)
                       : node.chipId()),
      _node(node)
{
}

void
PeerTrafficAgent::refill()
{
    _buffer = _gen.generate(kChunk);
    _cursor = 0;
}

void
PeerTrafficAgent::step(uint64_t instructions)
{
    for (uint64_t i = 0; i < instructions; ++i) {
        if (_cursor >= _buffer.size())
            refill();
        const TraceRecord &r = _buffer[_cursor++];
        ++_retired;

        _node.instFetch(r.pc);
        if (isLoadClass(r.cls))
            _node.load(r.addr);
        if (isStoreClass(r.cls))
            _node.store(r.addr);
    }
}

} // namespace storemlp
