/**
 * @file
 * SMAC implementation.
 */

#include "coherence/smac.hh"

#include <cassert>

#include "stats/registry.hh"

namespace storemlp
{

namespace
{
bool
isPow2(uint64_t v)
{
    return v && ((v & (v - 1)) == 0);
}
} // namespace

Smac::Smac(const SmacConfig &config) : _config(config)
{
    assert(config.entries % config.assoc == 0);
    _numSets = config.entries / config.assoc;
    assert(isPow2(_numSets));
    assert(isPow2(config.subBlocks));
    _entries.resize(config.entries);
    for (auto &e : _entries)
        e.sub.assign(config.subBlocks,
                     static_cast<uint8_t>(SubState::Invalid));
}

uint64_t
Smac::superAddr(uint64_t line_addr) const
{
    return line_addr / _config.superBlockBytes();
}

uint32_t
Smac::subIndex(uint64_t line_addr) const
{
    return static_cast<uint32_t>(
        (line_addr / _config.lineBytes) & (_config.subBlocks - 1));
}

uint64_t
Smac::setIndex(uint64_t super) const
{
    return super & (_numSets - 1);
}

Smac::Entry *
Smac::findEntry(uint64_t super)
{
    uint64_t set = setIndex(super);
    Entry *base = &_entries[set * _config.assoc];
    for (uint32_t w = 0; w < _config.assoc; ++w) {
        if (base[w].valid && base[w].tag == super)
            return &base[w];
    }
    return nullptr;
}

const Smac::Entry *
Smac::findEntry(uint64_t super) const
{
    return const_cast<Smac *>(this)->findEntry(super);
}

void
Smac::installEvicted(uint64_t line_addr)
{
    ++_installs;
    uint64_t super = superAddr(line_addr);
    Entry *e = findEntry(super);
    if (!e) {
        // Allocate: invalid way first, else LRU victim.
        uint64_t set = setIndex(super);
        Entry *base = &_entries[set * _config.assoc];
        Entry *victim = &base[0];
        for (uint32_t w = 0; w < _config.assoc; ++w) {
            if (!base[w].valid) {
                victim = &base[w];
                break;
            }
            if (base[w].lru < victim->lru)
                victim = &base[w];
        }
        if (victim->valid)
            ++_tagEvictions;
        victim->valid = true;
        victim->tag = super;
        victim->sub.assign(_config.subBlocks,
                           static_cast<uint8_t>(SubState::Invalid));
        e = victim;
    }
    e->lru = ++_lruClock;
    e->sub[subIndex(line_addr)] = static_cast<uint8_t>(SubState::Exclusive);
}

Smac::ProbeResult
Smac::probeStoreMiss(uint64_t line_addr)
{
    ProbeResult res;
    Entry *e = findEntry(superAddr(line_addr));
    if (!e) {
        ++_probeMisses;
        return res;
    }
    e->lru = ++_lruClock;
    uint8_t &s = e->sub[subIndex(line_addr)];
    if (s == static_cast<uint8_t>(SubState::Exclusive)) {
        res.hit = true;
        ++_probeHits;
        // Ownership moves back into the L2 proper.
        s = static_cast<uint8_t>(SubState::Invalid);
    } else {
        ++_probeMisses;
        if (s == static_cast<uint8_t>(SubState::CoherenceInvalidated)) {
            res.hitInvalidated = true;
            ++_probeHitInvalidated;
            // The store re-fetches ownership; the stale marker clears.
            s = static_cast<uint8_t>(SubState::Invalid);
        }
    }
    return res;
}

bool
Smac::snoopInvalidate(uint64_t line_addr)
{
    Entry *e = findEntry(superAddr(line_addr));
    if (!e)
        return false;
    uint8_t &s = e->sub[subIndex(line_addr)];
    if (s == static_cast<uint8_t>(SubState::Exclusive)) {
        s = static_cast<uint8_t>(SubState::CoherenceInvalidated);
        ++_coherenceInvalidates;
        return true;
    }
    return false;
}

bool
Smac::ownsLine(uint64_t line_addr) const
{
    const Entry *e = findEntry(superAddr(line_addr));
    return e && e->sub[subIndex(line_addr)] ==
        static_cast<uint8_t>(SubState::Exclusive);
}

void
Smac::clear()
{
    for (auto &e : _entries) {
        e.valid = false;
        e.lru = 0;
        e.sub.assign(_config.subBlocks,
                     static_cast<uint8_t>(SubState::Invalid));
    }
    _lruClock = 0;
}

void
Smac::resetStats()
{
    _installs = _probeHits = _probeMisses = 0;
    _probeHitInvalidated = _coherenceInvalidates = _tagEvictions = 0;
}

void
Smac::exportStats(StatsRegistry &reg, const std::string &prefix) const
{
    reg.counter(prefix + "installs", _installs);
    reg.counter(prefix + "probeHits", _probeHits);
    reg.counter(prefix + "probeMisses", _probeMisses);
    reg.counter(prefix + "probeHitInvalidated", _probeHitInvalidated);
    reg.counter(prefix + "coherenceInvalidates", _coherenceInvalidates);
    reg.counter(prefix + "tagEvictions", _tagEvictions);
}

} // namespace storemlp
