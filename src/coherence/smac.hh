/**
 * @file
 * Store Miss ACcelerator (SMAC) — the paper's proposed mechanism
 * (Section 3.3.3). A heavily sub-blocked set-associative structure in
 * the L2 subsystem that retains *exclusive ownership* (not data) of
 * lines evicted from the L2 in modified state. A store that misses the
 * L2 but hits an Exclusive sub-block in the SMAC proceeds without the
 * cross-chip invalidation penalty, exactly as in a single-chip system.
 *
 * Default geometry follows the paper: each entry has a tag covering a
 * 2 KB super-block (32 sub-blocks x 64 B lines) with per-sub-block
 * state; an 8K-entry SMAC covers 16 MB of address space in 64 KB of
 * SRAM.
 */

#ifndef STOREMLP_COHERENCE_SMAC_HH
#define STOREMLP_COHERENCE_SMAC_HH

#include <cstdint>
#include <string>
#include <vector>

namespace storemlp
{

class StatsRegistry;

/** SMAC geometry. */
struct SmacConfig
{
    uint32_t entries = 8 * 1024; ///< number of super-block tags
    uint32_t assoc = 8;
    uint32_t subBlocks = 32;     ///< lines per super-block
    uint32_t lineBytes = 64;

    uint64_t superBlockBytes() const
    {
        return uint64_t(subBlocks) * lineBytes;
    }
    /** Address space covered when fully populated. */
    uint64_t coverageBytes() const
    {
        return uint64_t(entries) * superBlockBytes();
    }
};

/**
 * The SMAC. Per-sub-block state distinguishes "never owned" from
 * "ownership lost to a coherence event", which is what Figure 6's
 * right-hand graph reports.
 */
class Smac
{
  public:
    /** Sub-block states. */
    enum class SubState : uint8_t
    {
        Invalid = 0,         ///< no ownership information
        Exclusive,           ///< ownership retained: store misses fly
        CoherenceInvalidated ///< had ownership, lost it to a remote snoop
    };

    explicit Smac(const SmacConfig &config = {});

    /**
     * An L2 line was evicted in Modified state: write the data back to
     * memory but retain the downgraded Exclusive state here.
     */
    void installEvicted(uint64_t line_addr);

    /** Outcome of probing the SMAC for a missing store. */
    struct ProbeResult
    {
        bool hit = false; ///< ownership present: skip invalidation
        /** Tag matched but the sub-block was coherence-invalidated. */
        bool hitInvalidated = false;
    };

    /**
     * A store missed the L2: consult the SMAC. On a hit the line's
     * ownership transfers back to the L2 (sub-block goes Invalid).
     */
    ProbeResult probeStoreMiss(uint64_t line_addr);

    /**
     * Remote snoop (request-to-own or shared) for a line. If the
     * sub-block is Exclusive it is invalidated (and remembered as
     * coherence-invalidated). @return true if ownership was lost.
     */
    bool snoopInvalidate(uint64_t line_addr);

    /** Non-destructive ownership check. */
    bool ownsLine(uint64_t line_addr) const;

    void clear();

    const SmacConfig &config() const { return _config; }

    // ---- statistics ----
    uint64_t installs() const { return _installs; }
    uint64_t probeHits() const { return _probeHits; }
    uint64_t probeMisses() const { return _probeMisses; }
    uint64_t probeHitInvalidated() const { return _probeHitInvalidated; }
    uint64_t coherenceInvalidates() const { return _coherenceInvalidates; }
    uint64_t tagEvictions() const { return _tagEvictions; }
    void resetStats();

    /** Register all SMAC counters under `prefix`. */
    void exportStats(StatsRegistry &reg,
                     const std::string &prefix = "smac.") const;

  private:
    struct Entry
    {
        uint64_t tag = 0;
        uint64_t lru = 0;
        bool valid = false;
        std::vector<uint8_t> sub; ///< SubState per sub-block
    };

    uint64_t superAddr(uint64_t line_addr) const;
    uint32_t subIndex(uint64_t line_addr) const;
    uint64_t setIndex(uint64_t super) const;
    Entry *findEntry(uint64_t super);
    const Entry *findEntry(uint64_t super) const;

    SmacConfig _config;
    uint64_t _numSets;
    std::vector<Entry> _entries;
    uint64_t _lruClock = 0;

    uint64_t _installs = 0;
    uint64_t _probeHits = 0;
    uint64_t _probeMisses = 0;
    uint64_t _probeHitInvalidated = 0;
    uint64_t _coherenceInvalidates = 0;
    uint64_t _tagEvictions = 0;
};

} // namespace storemlp

#endif // STOREMLP_COHERENCE_SMAC_HH
