/**
 * @file
 * MESI line states. Stored in the SetAssocCache per-line user state
 * byte by the chip coherence wrapper. Invalid must be 0 because a
 * freshly filled line's state byte defaults to 0.
 */

#ifndef STOREMLP_COHERENCE_MESI_HH
#define STOREMLP_COHERENCE_MESI_HH

#include <cstdint>

namespace storemlp
{

/** Coherence protocol variants. The paper assumes MESI and notes the
 *  scheme "can be easily extended to the MOESI protocol". */
enum class CoherenceProtocol : uint8_t
{
    Mesi,
    Moesi,
};

/** MESI/MOESI line states (paper Section 3.3.3). */
enum class MesiState : uint8_t
{
    Invalid = 0,
    Shared,
    Exclusive,
    Modified,
    Owned, ///< MOESI only: dirty but shared; this chip supplies data
};

/** Printable name for diagnostics. */
inline const char *
mesiName(MesiState s)
{
    switch (s) {
      case MesiState::Invalid: return "I";
      case MesiState::Shared: return "S";
      case MesiState::Exclusive: return "E";
      case MesiState::Modified: return "M";
      case MesiState::Owned: return "O";
      default: return "?";
    }
}

} // namespace storemlp

#endif // STOREMLP_COHERENCE_MESI_HH
