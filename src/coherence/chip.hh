/**
 * @file
 * Per-chip coherent memory system: cache hierarchy + MESI state +
 * optional SMAC, attached to the snoop bus. This is the memory
 * interface the epoch engine and the peer traffic agents drive.
 */

#ifndef STOREMLP_COHERENCE_CHIP_HH
#define STOREMLP_COHERENCE_CHIP_HH

#include <cstdint>
#include <memory>
#include <optional>

#include "cache/hierarchy.hh"
#include "cache/tlb.hh"
#include "coherence/bus.hh"
#include "coherence/mesi.hh"
#include "coherence/smac.hh"

namespace storemlp
{

/**
 * One chip of the multiprocessor. When no bus is attached the chip
 * behaves as a single-chip system (stores never pay an invalidation
 * penalty, which is also what the paper assumes in that case).
 */
class ChipNode
{
  public:
    ChipNode(const HierarchyConfig &hier_config, uint32_t chip_id,
             std::optional<SmacConfig> smac_config = std::nullopt,
             CoherenceProtocol protocol = CoherenceProtocol::Mesi);

    /** Attach to a bus (also registers this chip with the bus). */
    void connect(SnoopBus *bus);

    /** Outcome of a data store. */
    struct StoreOutcome
    {
        MissLevel level = MissLevel::L1Hit;
        bool smacHit = false;            ///< ownership found in the SMAC
        bool smacHitInvalidated = false; ///< tag hit on invalidated entry
        bool remoteInvalidation = false; ///< paid a cross-chip penalty
    };
    /** Inline on-chip path; L2 misses take the SMAC/bus slow tail. */
    StoreOutcome
    store(uint64_t addr)
    {
        StoreOutcome out;
        _tlb.access(addr);
        uint64_t line = _hier.lineAddr(addr);

        // Check the pre-access state so S->M upgrades are visible.
        auto pre_state = _hier.l2().probeState(line);

        out.level = _hier.store(addr);

        if (out.level != MissLevel::OffChip) {
            // L2 hit. Upgrade if other chips may hold copies (Shared,
            // or Owned under MOESI).
            MesiState st = pre_state
                ? static_cast<MesiState>(*pre_state)
                : MesiState::Modified;
            if ((st == MesiState::Shared || st == MesiState::Owned) &&
                _bus) {
                BusRequest req{BusRequest::Kind::Upgr, line, _chipId};
                _bus->request(req);
            }
            setLineState(line, MesiState::Modified);
            return out;
        }
        storeMissSlow(out, line);
        return out;
    }

    /** Outcome of a data load. */
    struct LoadOutcome
    {
        MissLevel level = MissLevel::L1Hit;
        bool remoteTransfer = false;
    };
    /** Inline on-chip path; off-chip misses go through the bus. */
    LoadOutcome
    load(uint64_t addr)
    {
        LoadOutcome out;
        _tlb.access(addr);
        out.level = _hier.load(addr);
        if (out.level == MissLevel::OffChip)
            loadFill(out, _hier.lineAddr(addr));
        return out;
    }

    /** Instruction fetch. Inline on-chip path; misses go to the bus. */
    MissLevel
    instFetch(uint64_t pc)
    {
        MissLevel lvl = _hier.instFetch(pc);
        if (lvl == MissLevel::OffChip)
            instFetchFill(_hier.lineAddr(pc));
        return lvl;
    }

    /**
     * Hardware prefetch of a line (store prefetching / scout).
     * Performs the full coherence action of the eventual demand access
     * so the later demand access hits locally.
     * @return true if the line was already present in the L2
     */
    bool prefetchLine(uint64_t addr, bool for_write);

    /** Remote-initiated snoop, called by the bus. */
    void snoop(const BusRequest &req);

    Tlb &tlb() { return _tlb; }
    const Tlb &tlb() const { return _tlb; }
    CacheHierarchy &hierarchy() { return _hier; }
    const CacheHierarchy &hierarchy() const { return _hier; }
    Smac *smac() { return _smac ? _smac.get() : nullptr; }
    const Smac *smac() const { return _smac ? _smac.get() : nullptr; }
    uint32_t chipId() const { return _chipId; }
    CoherenceProtocol protocol() const { return _protocol; }

    /** Missing stores that skipped the invalidation penalty via SMAC. */
    uint64_t smacAcceleratedStores() const { return _smacAccelerated; }
    void resetStats();

  private:
    void
    setLineState(uint64_t line, MesiState s)
    {
        _hier.l2().setState(line, static_cast<uint8_t>(s));
    }
    /** Coherence action for an instruction-fetch L2 miss. */
    void instFetchFill(uint64_t line);
    /** Coherence action for a load L2 miss. */
    void loadFill(LoadOutcome &out, uint64_t line);
    /** SMAC probe + bus ownership request for a store L2 miss. */
    void storeMissSlow(StoreOutcome &out, uint64_t line);

    CacheHierarchy _hier;
    Tlb _tlb; ///< shared 2K-entry TLB (Section 4.3); stats only
    uint32_t _chipId;
    CoherenceProtocol _protocol;
    std::unique_ptr<Smac> _smac;
    SnoopBus *_bus = nullptr;

    uint64_t _smacAccelerated = 0;
};

} // namespace storemlp

#endif // STOREMLP_COHERENCE_CHIP_HH
