/**
 * @file
 * Peer traffic agent: drives a remote chip of the multiprocessor with
 * a synthetic instruction stream (same workload class, different seed,
 * partially overlapping shared store region) so that cross-chip
 * coherence traffic — in particular the remote request-to-own snoops
 * that invalidate SMAC entries in Figure 6 — is generated organically
 * rather than injected as an abstract rate.
 */

#ifndef STOREMLP_COHERENCE_TRAFFIC_HH
#define STOREMLP_COHERENCE_TRAFFIC_HH

#include <cstdint>

#include "coherence/chip.hh"
#include "trace/generator.hh"

namespace storemlp
{

/**
 * Runs a reduced (cache-only, no epoch engine) simulation of one peer
 * chip. The owning experiment steps all peers in lockstep with the
 * measured chip, one instruction at a time.
 */
class PeerTrafficAgent
{
  public:
    /**
     * @param gen_id region-placement id for the generator; defaults
     *        to the chip id. A sibling core on the same chip passes a
     *        distinct id so its private data lives elsewhere.
     */
    PeerTrafficAgent(const WorkloadProfile &profile, uint64_t seed,
                     ChipNode &node, int gen_id = -1);

    /** Advance the peer by `instructions` dynamic instructions. */
    void step(uint64_t instructions);

    uint64_t instructionsRetired() const { return _retired; }
    ChipNode &node() { return _node; }

  private:
    void refill();

    SyntheticTraceGenerator _gen;
    ChipNode &_node;
    Trace _buffer;
    size_t _cursor = 0;
    uint64_t _retired = 0;

    static constexpr uint64_t kChunk = 16 * 1024;
};

} // namespace storemlp

#endif // STOREMLP_COHERENCE_TRAFFIC_HH
