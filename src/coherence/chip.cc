/**
 * @file
 * Per-chip coherent memory system implementation.
 */

#include "coherence/chip.hh"

namespace storemlp
{

ChipNode::ChipNode(const HierarchyConfig &hier_config, uint32_t chip_id,
                   std::optional<SmacConfig> smac_config,
                   CoherenceProtocol protocol)
    : _hier(hier_config), _chipId(chip_id), _protocol(protocol)
{
    if (smac_config)
        _smac = std::make_unique<Smac>(*smac_config);
    // Dirty L2 evictions write back to memory; the SMAC retains the
    // downgraded exclusive ownership (paper Section 3.3.3). Under
    // MOESI, an evicted Owned line is dirty but SHARED by other
    // chips: its ownership must not be retained as exclusive.
    _hier.setEvictionListener(
        [this](uint64_t line, bool dirty, uint8_t state) {
            if (dirty && _smac &&
                static_cast<MesiState>(state) != MesiState::Owned) {
                _smac->installEvicted(line);
            }
        });
}

void
ChipNode::connect(SnoopBus *bus)
{
    _bus = bus;
    bus->attach(this);
}

void
ChipNode::storeMissSlow(StoreOutcome &out, uint64_t line)
{
    // Off-chip store miss: the SMAC may already hold ownership.
    if (_smac) {
        Smac::ProbeResult pr = _smac->probeStoreMiss(line);
        out.smacHit = pr.hit;
        out.smacHitInvalidated = pr.hitInvalidated;
        if (pr.hit) {
            // Ownership already on-chip: no cross-chip transaction.
            ++_smacAccelerated;
            setLineState(line, MesiState::Modified);
            return;
        }
    }

    if (_bus) {
        BusRequest req{BusRequest::Kind::RdX, line, _chipId};
        BusResponse resp = _bus->request(req);
        out.remoteInvalidation = resp.remoteHad;
    }
    setLineState(line, MesiState::Modified);
}

void
ChipNode::loadFill(LoadOutcome &out, uint64_t line)
{
    if (_bus) {
        BusRequest req{BusRequest::Kind::Rd, line, _chipId};
        BusResponse resp = _bus->request(req);
        out.remoteTransfer = resp.remoteHad;
        setLineState(line,
                     resp.remoteHad ? MesiState::Shared
                                    : MesiState::Exclusive);
    } else {
        setLineState(line, MesiState::Exclusive);
    }
}

void
ChipNode::instFetchFill(uint64_t line)
{
    if (_bus) {
        BusRequest req{BusRequest::Kind::Rd, line, _chipId};
        BusResponse resp = _bus->request(req);
        setLineState(line,
                     resp.remoteHad ? MesiState::Shared
                                    : MesiState::Exclusive);
    } else {
        setLineState(line, MesiState::Exclusive);
    }
}

bool
ChipNode::prefetchLine(uint64_t addr, bool for_write)
{
    uint64_t line = _hier.lineAddr(addr);
    bool was_present = _hier.l2Probe(line);
    auto pre_state = _hier.l2().probeState(line);
    _hier.prefetchLine(line, for_write);

    if (for_write) {
        bool need_ownership = !was_present ||
            (pre_state &&
             static_cast<MesiState>(*pre_state) == MesiState::Shared);
        if (need_ownership) {
            bool smac_owned = false;
            if (!was_present && _smac)
                smac_owned = _smac->probeStoreMiss(line).hit;
            if (!smac_owned && _bus) {
                BusRequest req{BusRequest::Kind::RdX, line, _chipId};
                _bus->request(req);
            }
        }
        setLineState(line, MesiState::Modified);
    } else if (!was_present) {
        if (_bus) {
            BusRequest req{BusRequest::Kind::Rd, line, _chipId};
            BusResponse resp = _bus->request(req);
            setLineState(line,
                         resp.remoteHad ? MesiState::Shared
                                        : MesiState::Exclusive);
        } else {
            setLineState(line, MesiState::Exclusive);
        }
    }
    return was_present;
}

void
ChipNode::snoop(const BusRequest &req)
{
    uint64_t line = req.line;
    // Any remote snoop that hits the SMAC invalidates the entry
    // (paper: "On a snoop (either a request-to-own or shared) from
    // another chip that hits in the SMAC, the line is invalidated").
    if (_smac)
        _smac->snoopInvalidate(line);

    auto state = _hier.l2().probeState(line);
    if (!state)
        return;
    MesiState st = static_cast<MesiState>(*state);

    switch (req.kind) {
      case BusRequest::Kind::Rd:
        if (st == MesiState::Modified &&
            _protocol == CoherenceProtocol::Moesi) {
            // MOESI: keep the dirty line in Owned state and supply
            // data to the requester; no memory writeback.
            _hier.l2().setState(line,
                                static_cast<uint8_t>(MesiState::Owned));
        } else if (st != MesiState::Owned) {
            // MESI: Modified data is written back; downgrade to
            // Shared. (Owned lines stay Owned on further reads.)
            _hier.l2().setState(line, static_cast<uint8_t>(
                MesiState::Shared));
        }
        break;
      case BusRequest::Kind::RdX:
      case BusRequest::Kind::Upgr:
        // Ownership transfers to the requester; our SMAC must not
        // retain it, so skip the dirty-eviction listener.
        _hier.invalidateForCoherence(line);
        break;
    }
}

void
ChipNode::resetStats()
{
    _hier.resetStats();
    _tlb.resetStats();
    if (_smac)
        _smac->resetStats();
    _smacAccelerated = 0;
}

} // namespace storemlp
