/**
 * @file
 * Flat hash set of cache-line addresses for the epoch engine's
 * in-flight line tracking. Replaces std::unordered_set on the hot
 * path: open addressing (no per-insert allocation), epoch-tagged
 * slots (clear() is O(1)), and a multiplicative hash. Membership
 * answers are exactly those of a set — results are bit-identical.
 */

#ifndef STOREMLP_CORE_LINE_SET_HH
#define STOREMLP_CORE_LINE_SET_HH

#include <cstdint>
#include <vector>

namespace storemlp
{

/** Insert/contains/clear set of uint64 keys; no per-key erase. */
class LineSet
{
  public:
    LineSet() : _slots(kInitialSlots) {}

    bool empty() const { return _size == 0; }
    uint64_t size() const { return _size; }

    /** Drop all keys (O(1): stale slots expire by epoch). */
    void
    clear()
    {
        ++_epoch;
        _size = 0;
    }

    bool
    contains(uint64_t key) const
    {
        uint64_t mask = _slots.size() - 1;
        for (uint64_t i = hashOf(key) & mask;; i = (i + 1) & mask) {
            const Slot &s = _slots[i];
            if (s.epoch != _epoch)
                return false;
            if (s.key == key)
                return true;
        }
    }

    /** Set-style count (0 or 1), mirroring std::unordered_set. */
    uint64_t count(uint64_t key) const { return contains(key) ? 1 : 0; }

    void
    insert(uint64_t key)
    {
        uint64_t mask = _slots.size() - 1;
        for (uint64_t i = hashOf(key) & mask;; i = (i + 1) & mask) {
            Slot &s = _slots[i];
            if (s.epoch != _epoch) {
                s.key = key;
                s.epoch = _epoch;
                ++_size;
                if (_size * 2 > _slots.size())
                    grow();
                return;
            }
            if (s.key == key)
                return;
        }
    }

  private:
    struct Slot
    {
        uint64_t key = 0;
        uint64_t epoch = 0; ///< occupied iff equal to the set's epoch
    };

    static constexpr uint64_t kInitialSlots = 64; // power of two

    static uint64_t
    hashOf(uint64_t key)
    {
        // Fibonacci multiplicative hash; keys are line addresses whose
        // low bits are zero, so multiply-and-shift spreads them well.
        return (key * 0x9e3779b97f4a7c15ULL) >> 32;
    }

    void
    grow()
    {
        std::vector<Slot> old = std::move(_slots);
        _slots.assign(old.size() * 2, Slot{});
        uint64_t mask = _slots.size() - 1;
        ++_epoch;
        for (const Slot &s : old) {
            if (s.epoch != _epoch - 1)
                continue;
            for (uint64_t i = hashOf(s.key) & mask;; i = (i + 1) & mask) {
                if (_slots[i].epoch != _epoch) {
                    _slots[i].key = s.key;
                    _slots[i].epoch = _epoch;
                    break;
                }
            }
        }
    }

    std::vector<Slot> _slots;
    uint64_t _size = 0;
    uint64_t _epoch = 1; ///< starts above the zero-initialized slots

    friend class LineSetTestPeer;
};

} // namespace storemlp

#endif // STOREMLP_CORE_LINE_SET_HH
