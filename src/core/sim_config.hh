/**
 * @file
 * Simulator configuration: the paper's default processor (Section
 * 4.3) plus every store-handling and consistency-model knob evaluated
 * in Section 5.
 */

#ifndef STOREMLP_CORE_SIM_CONFIG_HH
#define STOREMLP_CORE_SIM_CONFIG_HH

#include <cstdint>
#include <string>

#include "consistency/memory_model.hh"
#include "consistency/transactional.hh"

namespace storemlp
{

/** Store prefetching schemes (Section 3.3.2). */
enum class StorePrefetch : uint8_t
{
    None,      ///< Sp0
    AtRetire,  ///< Sp1: prefetch-for-write when the store retires
    AtExecute, ///< Sp2: prefetch-for-write at address generation
};

/** Hardware Scout modes (Section 3.3.5 / Figure 8). */
enum class ScoutMode : uint8_t
{
    Off,        ///< No HWS
    Hws0,       ///< enter on missing load; prefetch loads+insts only
    Hws1,       ///< enter on missing load; also prefetch stores
    Hws2,       ///< also enter on store-queue-full stalls (proposed)
};

/** Full simulator configuration. */
struct SimConfig
{
    std::string name = "default";

    // ---- hardware structure sizes (paper Section 4.3) ----
    /** Accepted for completeness; the epoch model abstracts the
     *  frontend, so the fetch buffer never binds (the paper's MLPsim
     *  models it, but none of the studied effects involve it). */
    uint32_t fetchBufferSize = 32;
    uint32_t issueWindowSize = 32;
    uint32_t robSize = 64;
    uint32_t storeBufferSize = 16;
    uint32_t storeQueueSize = 32;
    uint32_t loadBufferSize = 64;

    // ---- store handling ----
    StorePrefetch storePrefetch = StorePrefetch::AtRetire;
    /** Coalescing granularity in bytes; 0 disables coalescing. */
    uint32_t coalesceBytes = 8;
    /** Unbounded store queue ("Perfect" series sanity checks). */
    bool infiniteStoreQueue = false;
    /** Stores never stall the processor (the figures' bottom
     *  segments: "if stores never stalled"). */
    bool perfectStores = false;

    // ---- memory consistency ----
    /** Declarative model descriptor (defaults to the PC/TSO preset;
     *  see configs and `--model` for the other presets). */
    ModelDescriptor memoryModel;

    // ---- optimizations ----
    bool sle = false;                    ///< Speculative Lock Elision
    /** Transactional memory (SLE with modeled aborts, Section 3.3.4);
     *  mutually exclusive with sle. */
    TmConfig tm;
    bool prefetchPastSerializing = false;
    ScoutMode scout = ScoutMode::Off;

    // ---- timing ----
    uint32_t missLatency = 500; ///< off-chip miss penalty, cycles
    double cpiOnChip = 1.0;     ///< on-chip CPI (profile Table 3 value)
    /** Pipeline refill penalty for resolvable mispredictions. */
    double mispredictPenalty = 12.0;

    /** The paper's default configuration (PC1). */
    static SimConfig defaults();
    /** PC2: default + prefetch past serializing instructions. */
    static SimConfig pc2();
    /** PC3: PC2 + SLE. */
    static SimConfig pc3();
    /** WC1: weak consistency baseline. */
    static SimConfig wc1();
    /** WC2: WC1 + prefetch past serializing instructions. */
    static SimConfig wc2();
    /** WC3: WC2 + SLE. */
    static SimConfig wc3();
    /** RMO1: RMO-like intermediate model baseline. */
    static SimConfig rmo1();
    /** WMM1: WMM-like intermediate model baseline. */
    static SimConfig wmm1();

    /** Returns a copy with a different store prefetch mode. */
    SimConfig withPrefetch(StorePrefetch sp) const;
    /** Returns a copy with a different scout mode. */
    SimConfig withScout(ScoutMode sm) const;
};

/** Printable names for enums. */
const char *storePrefetchName(StorePrefetch sp);
const char *scoutModeName(ScoutMode sm);

} // namespace storemlp

#endif // STOREMLP_CORE_SIM_CONFIG_HH
