/**
 * @file
 * Plain-text (key = value) serialization for SimConfig and
 * WorkloadProfile, so experiments can be captured in version-
 * controlled files and replayed exactly:
 *
 *   # oltp-aggressive.cfg
 *   storePrefetch = sp2
 *   memoryModel = wc
 *   sle = true
 *   storeQueueSize = 64
 *
 * Unknown keys are errors (catching typos beats silently ignoring a
 * misspelled knob). Lines starting with '#' and blank lines are
 * skipped.
 */

#ifndef STOREMLP_CORE_CONFIG_IO_HH
#define STOREMLP_CORE_CONFIG_IO_HH

#include <iosfwd>
#include <string>

#include "core/sim_config.hh"
#include "trace/workload.hh"
#include "util/error.hh"

namespace storemlp
{

/**
 * Thrown on malformed or unknown configuration input. Historical name
 * for the shared ConfigError (util/error.hh), kept so existing catch
 * sites keep working.
 */
using ConfigParseError = ConfigError;

/** Parse a SimConfig from key=value text. Starts from defaults. */
SimConfig loadSimConfig(std::istream &is);
SimConfig loadSimConfigFile(const std::string &path);

/** Serialize every SimConfig knob as key=value text. */
void saveSimConfig(std::ostream &os, const SimConfig &config);

/** Parse a WorkloadProfile from key=value text.
 *  A `base = database|tpcw|specjbb|specweb|tiny` line (first) selects
 *  the starting profile; later keys override individual knobs. */
WorkloadProfile loadWorkloadProfile(std::istream &is);
WorkloadProfile loadWorkloadProfileFile(const std::string &path);

/** Serialize every WorkloadProfile knob as key=value text. */
void saveWorkloadProfile(std::ostream &os, const WorkloadProfile &p);

} // namespace storemlp

#endif // STOREMLP_CORE_CONFIG_IO_HH
