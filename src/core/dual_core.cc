/**
 * @file
 * Dual-core runner implementation.
 */

#include "core/dual_core.hh"

#include <algorithm>

#include "coherence/chip.hh"
#include "core/mlp_sim.hh"
#include "trace/generator.hh"
#include "trace/lock_detector.hh"
#include "trace/rewriter.hh"

namespace storemlp
{

double
DualRunOutput::combinedEpochsPer1000() const
{
    uint64_t insts = core0.instructions + core1.instructions;
    if (!insts)
        return 0.0;
    return 1000.0 * static_cast<double>(core0.epochs + core1.epochs) /
        static_cast<double>(insts);
}

DualRunOutput
DualCoreRunner::run(const DualRunSpec &spec)
{
    // Distinct generator ids place each core's private data apart
    // while both share the globally shared store region.
    SyntheticTraceGenerator gen0(spec.profile, spec.seed, 0);
    SyntheticTraceGenerator gen1(spec.profile, spec.seed + 1, 101);
    uint64_t total = spec.warmupInsts + spec.measureInsts;
    Trace t0 = gen0.generate(total);
    Trace t1 = gen1.generate(total);

    if (spec.config.memoryModel.wcTraceRewrite()) {
        TraceRewriter rw;
        t0 = rw.toWeakConsistency(t0);
        t1 = rw.toWeakConsistency(t1);
    }

    LockDetector detector;
    LockAnalysis locks0 = detector.analyze(t0);
    LockAnalysis locks1 = detector.analyze(t1);

    ChipNode chip(HierarchyConfig{}, 0);
    if (spec.prefillL2) {
        SetAssocCache &l2 = chip.hierarchy().l2();
        uint64_t lines = l2.config().sizeBytes / l2.config().lineBytes;
        for (uint64_t i = 0; i < lines; ++i)
            l2.access(0xF00000000000ULL + i * l2.config().lineBytes,
                      false);
    }

    SimConfig cfg = spec.config;
    cfg.cpiOnChip = spec.profile.cpiOnChip;

    MlpSimulator sim0(cfg, chip, &locks0);
    MlpSimulator sim1(cfg, chip, &locks1);

    // Interleave the cores at a fixed quantum. The epoch engines keep
    // private pipeline state; only the chip's memory system is shared,
    // so quantum-granular interleaving approximates concurrent
    // execution (cache/coherence interactions happen in order).
    uint64_t q = std::max<uint64_t>(1, spec.quantum);
    uint64_t end0 = t0.size();
    uint64_t end1 = t1.size();
    uint64_t pos = 0;
    uint64_t max_end = std::max(end0, end1);
    while (pos < max_end) {
        uint64_t next = pos + q;
        bool collect = pos >= spec.warmupInsts;
        if (pos < end0) {
            sim0.process(t0, pos, std::min(next, end0), collect);
        }
        if (pos < end1) {
            sim1.process(t1, pos, std::min(next, end1), collect);
        }
        pos = next;
    }

    DualRunOutput out;
    out.core0 = sim0.takeResult();
    out.core1 = sim1.takeResult();
    return out;
}

} // namespace storemlp
