/**
 * @file
 * Dual-core runner implementation.
 */

#include "core/dual_core.hh"

#include <algorithm>
#include <memory>
#include <optional>

#include "coherence/chip.hh"
#include "core/mlp_sim.hh"
#include "trace/lock_detector.hh"
#include "trace/rewriter.hh"
#include "trace/trace_source.hh"

namespace storemlp
{

double
DualRunOutput::combinedEpochsPer1000() const
{
    uint64_t insts = core0.instructions + core1.instructions;
    if (!insts)
        return 0.0;
    return 1000.0 * static_cast<double>(core0.epochs + core1.epochs) /
        static_cast<double>(insts);
}

namespace
{

/**
 * A core's record stream: synthesized chunk by chunk, rewritten to
 * weak consistency in-stream when the model asks for it. Distinct
 * generator ids place each core's private data apart while both share
 * the globally shared store region.
 */
std::unique_ptr<TraceSource>
coreSource(const DualRunSpec &spec, uint64_t seed, uint32_t gen_id,
           uint64_t total)
{
    std::unique_ptr<TraceSource> src = std::make_unique<GeneratorSource>(
        spec.profile, seed, total, gen_id);
    if (spec.config.memoryModel.wcTraceRewrite())
        src = std::make_unique<WcRewriteSource>(std::move(src));
    return src;
}

} // namespace

DualRunOutput
DualCoreRunner::run(const DualRunSpec &spec)
{
    uint64_t total = spec.warmupInsts + spec.measureInsts;
    std::unique_ptr<TraceSource> src0 =
        coreSource(spec, spec.seed, 0, total);
    std::unique_ptr<TraceSource> src1 =
        coreSource(spec, spec.seed + 1, 101, total);

    // Lock analysis feeds SLE/TM only; the simulator never reads it
    // otherwise (Runner::run semantics), so skip the extra streaming
    // pass — and its one-byte-per-record roles vector — unless those
    // optimizations are on.
    std::optional<LockAnalysis> locks0, locks1;
    if (spec.config.sle || spec.config.tm.enabled) {
        locks0 = analyzeSource(*src0);
        locks1 = analyzeSource(*src1);
    }

    ChipNode chip(HierarchyConfig{}, 0);
    if (spec.prefillL2) {
        SetAssocCache &l2 = chip.hierarchy().l2();
        uint64_t lines = l2.config().sizeBytes / l2.config().lineBytes;
        for (uint64_t i = 0; i < lines; ++i)
            l2.access(0xF00000000000ULL + i * l2.config().lineBytes,
                      false);
    }

    SimConfig cfg = spec.config;
    cfg.cpiOnChip = spec.profile.cpiOnChip;

    MlpSimulator sim0(cfg, chip, locks0 ? &*locks0 : nullptr);
    MlpSimulator sim1(cfg, chip, locks1 ? &*locks1 : nullptr);

    TraceCursor cur0(*src0);
    TraceCursor cur1(*src1);

    // Interleave the cores at a fixed quantum. The epoch engines keep
    // private pipeline state; only the chip's memory system is shared,
    // so quantum-granular interleaving approximates concurrent
    // execution (cache/coherence interactions happen in order). A
    // quantum straddling the warmup boundary is split at the exact
    // boundary so collection starts at record warmupInsts, not at the
    // next quantum edge.
    uint64_t q = std::max<uint64_t>(1, spec.quantum);
    uint64_t warm = spec.warmupInsts;
    auto turn = [&](MlpSimulator &sim, TraceCursor &cur, bool &done,
                    uint64_t begin, uint64_t end) {
        if (done)
            return;
        if (begin < warm && end > warm) {
            sim.process(cur, begin, warm, false);
            if (sim.position() < warm) {
                done = true;
                return;
            }
            sim.process(cur, warm, end, true);
        } else {
            sim.process(cur, begin, end, begin >= warm);
        }
        done = sim.position() < end; // stopped early: end of stream
    };

    bool done0 = false;
    bool done1 = false;
    uint64_t pos = 0;
    while (!done0 || !done1) {
        uint64_t next = pos + q;
        turn(sim0, cur0, done0, pos, next);
        turn(sim1, cur1, done1, pos, next);
        pos = next;
    }

    DualRunOutput out;
    out.core0 = sim0.takeResult();
    out.core1 = sim1.takeResult();
    return out;
}

} // namespace storemlp
