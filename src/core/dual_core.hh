/**
 * @file
 * Dual-core experiments: the paper's per-chip configuration is "two
 * single-threaded cores sharing an L2 cache" (Section 4.3). Where the
 * standard Runner models the second core as a cache-traffic agent,
 * this runner simulates BOTH cores with full epoch engines over the
 * shared memory system, interleaved at a fixed instruction quantum,
 * and reports each core's epoch statistics. Each core streams its own
 * TraceSource (O(chunk) resident trace memory); a quantum straddling
 * the warmup boundary is split exactly there, so measurement always
 * starts at record warmupInsts regardless of quantum divisibility.
 *
 * MultiCoreRunner (multi_core.hh) generalizes this to N cores over M
 * bus-connected chips; with cores=2, chips=1 it reproduces this
 * runner's per-core results bit for bit (pinned by test_multi_core).
 */

#ifndef STOREMLP_CORE_DUAL_CORE_HH
#define STOREMLP_CORE_DUAL_CORE_HH

#include <cstdint>

#include "core/sim_config.hh"
#include "core/sim_result.hh"
#include "trace/workload.hh"

namespace storemlp
{

/** Specification of a dual-core experiment. */
struct DualRunSpec
{
    WorkloadProfile profile;
    SimConfig config;

    uint64_t seed = 42;
    uint64_t warmupInsts = 400 * 1000;
    uint64_t measureInsts = 800 * 1000;
    /** Instructions each core advances per interleaving turn. */
    uint64_t quantum = 256;
    /** Pre-fill the shared L2 (see RunSpec::prefillL2). */
    bool prefillL2 = true;
};

/** Per-core results of a dual-core experiment. */
struct DualRunOutput
{
    SimResult core0;
    SimResult core1;

    /** Aggregate epochs per 1000 instructions across both cores. */
    double combinedEpochsPer1000() const;
};

/** Runs both cores of one chip with full epoch engines. */
class DualCoreRunner
{
  public:
    static DualRunOutput run(const DualRunSpec &spec);
};

} // namespace storemlp

#endif // STOREMLP_CORE_DUAL_CORE_HH
