/**
 * @file
 * On-chip CPI model implementation.
 */

#include "core/cpi_model.hh"

namespace storemlp
{

CpiModel::CpiModel(const CpiModelParams &params) : _params(params)
{
}

CpiModel::Breakdown
CpiModel::evaluate(const Trace &trace, uint64_t warmup) const
{
    // Private L1s in front of a perfect L2: every L1 miss is an L2 hit
    // by construction of the metric.
    CacheHierarchy hier;
    BranchPredictor bp;

    uint64_t insts = 0;
    uint64_t loads = 0;
    uint64_t l1d_misses = 0;
    uint64_t l1i_misses = 0;
    uint64_t mispredicts = 0;

    for (uint64_t i = 0; i < trace.size(); ++i) {
        const TraceRecord &r = trace[i];
        bool measured = i >= warmup;
        if (measured)
            ++insts;

        // Instruction side.
        uint64_t line = hier.lineAddr(r.pc);
        if (!hier.l1i().access(line, false, true).hit) {
            if (measured)
                ++l1i_misses;
        }

        if (isLoadClass(r.cls)) {
            if (measured)
                ++loads;
            if (!hier.l1d().access(r.addr, false, true).hit) {
                if (measured)
                    ++l1d_misses;
            }
        }
        if (isStoreClass(r.cls)) {
            // Write-through no-write-allocate L1D: stores do not stall
            // the pipeline on-chip (they drain through the queue).
            hier.l1d().access(r.addr, true, false);
        }
        if (r.cls == InstClass::Branch) {
            if (!bp.predictAndUpdate(r.pc, r.taken())) {
                if (measured)
                    ++mispredicts;
            }
        }
    }

    Breakdown b;
    if (insts == 0)
        return b;
    double n = static_cast<double>(insts);
    b.base = _params.baseCpi;
    b.loadUse = _params.loadUseExposure * (_params.l1Latency - 1.0) *
        static_cast<double>(loads) / n;
    b.l1dMiss = _params.l1dMissExposure * _params.l2HitLatency *
        static_cast<double>(l1d_misses) / n;
    b.l1iMiss = _params.l1iMissExposure * _params.l2HitLatency *
        static_cast<double>(l1i_misses) / n;
    b.branch = _params.mispredictPenalty *
        static_cast<double>(mispredicts) / n;
    return b;
}

} // namespace storemlp
