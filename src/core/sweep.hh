/**
 * @file
 * Parallel sweep engine. A paper figure or table is a batch of
 * independent `RunSpec`s — the epoch model shares no mutable state
 * between runs, so the batch is embarrassingly parallel. The engine
 * executes specs on a fixed pool of worker threads (a shared work
 * queue of spec indices), routes trace construction through a shared
 * `TraceCache` so configurations over the same workload generate the
 * trace once, and writes results into submission-order slots so
 * tables are deterministic regardless of scheduling.
 *
 * Results are bit-identical across `jobs` values: each run owns its
 * machine state and RNG (seeded from the spec), the only shared input
 * is an immutable trace, and result slots are index-addressed.
 *
 * Faults are contained per run: an exception thrown by trace
 * construction or by the runner marks that run's `SweepResult` as
 * failed (`ok == false`, diagnostic in `errorMessage`) and the sweep
 * continues — one corrupt configuration or transient failure never
 * discards the other N-1 results or terminates the process.
 */

#ifndef STOREMLP_CORE_SWEEP_HH
#define STOREMLP_CORE_SWEEP_HH

#include <atomic>
#include <cstdint>
#include <functional>
#include <iosfwd>
#include <string>
#include <vector>

#include "core/runner.hh"
#include "core/sweep_request.hh"
#include "trace/trace_cache.hh"
#include "util/error.hh"

namespace storemlp
{

/** Knobs controlling a sweep. */
struct SweepOptions
{
    /** Worker threads; 0 = STOREMLP_JOBS, else hardware_concurrency. */
    unsigned jobs = 0;
    /** Share input traces across runs via the trace cache. */
    bool useTraceCache = true;
    /**
     * Execute runs against a streaming source (Runner::makeSource)
     * instead of a materialized whole trace: resident trace memory is
     * O(chunk) per worker, and with the trace cache enabled workers
     * share decoded *chunks* rather than whole traces. Results are
     * bit-identical to the materialized path. `runOverride` always
     * takes the materialized path (it is Trace-shaped).
     */
    bool streaming = false;
    /** Chunk size (instructions) for streaming runs; 0 = default. */
    uint64_t chunkInsts = 0;
    /**
     * Attempts per run (>= 1). Values above 1 retry a throwing run —
     * bounded containment for transient failures (a cache build that
     * lost a race with eviction, an I/O hiccup). Deterministic faults
     * simply fail `maxAttempts` times and are reported once.
     */
    unsigned maxAttempts = 1;
    /**
     * Emit a live progress line (runs completed / total, cache hits)
     * to stderr. Defaults from the environment: on when stderr is a
     * terminal, forced by STOREMLP_PROGRESS=1, silenced by =0.
     */
    bool progress = progressFromEnv();
    /**
     * Test/fault-injection hook: when set, executes a run instead of
     * `Runner::run(spec, trace)`. Lets tests throw from the Nth run
     * (or return synthetic outputs) without touching the production
     * path; null for normal operation.
     */
    std::function<RunOutput(const RunSpec &, const Trace *)>
        runOverride;

    static bool progressFromEnv();
};

/** One completed run: its output plus per-run observability. */
struct SweepResult
{
    RunOutput output;
    double wallMs = 0.0;        ///< wall-clock time of this run
    bool traceCacheHit = false; ///< input trace came from the cache
    /** Run completed; when false `output` is default-initialized. */
    bool ok = true;
    /** Attempts consumed (1 unless maxAttempts retried the run). */
    unsigned attempts = 1;
    /** Diagnostic from the last failed attempt when !ok. */
    std::string errorMessage;
};

/** Outcome of one `parallelForEach` task. */
struct TaskStatus
{
    bool ok = true;
    std::string errorMessage; ///< diagnostic when !ok
};

/**
 * One completed planned run: identity (so a result streamed over a
 * wire is self-describing) plus the output and per-run observability
 * that `SweepResult` carried. This is the result half of the
 * transport-agnostic job API (`SweepRequest` -> `RunOutcome`).
 */
struct RunOutcome
{
    std::string name;       ///< unique run name, e.g. "database_pc1@WC"
    std::string workload;   ///< workload axis value
    std::string configName; ///< config axis value
    std::string model;      ///< model axis value; "" when not crossed

    RunOutput output;
    double wallMs = 0.0;        ///< wall-clock time of this run
    bool traceCacheHit = false; ///< input trace came from the cache
    /** Run completed; when false `output` is default-initialized. */
    bool ok = true;
    /** Attempts consumed (1 unless maxAttempts retried the run). */
    unsigned attempts = 1;
    /** Diagnostic from the last failed attempt when !ok. */
    std::string errorMessage;
};

/**
 * Completion callback invoked as each run finishes (any worker may
 * have executed it; invocations are serialized by the engine).
 * `completed` counts finished runs including this one; `total` is the
 * batch size. This is the streaming surface the networked sweep
 * daemon sends results through — and the local tools use the very
 * same hook, so the paths cannot diverge.
 */
using RunObserver =
    std::function<void(const RunOutcome &, size_t completed,
                       size_t total)>;

/**
 * Run independent tasks on a transient worker pool (`jobs` 0 resolves
 * like SweepEngine::defaultJobs). Tasks must not share mutable state.
 * Exceptions are captured per task — every task still executes — and
 * reported in the returned statuses (statuses[i] <-> tasks[i]).
 */
std::vector<TaskStatus>
parallelForEach(const std::vector<std::function<void()>> &tasks,
                unsigned jobs = 0);

/** Executes batches of RunSpecs on a worker pool. */
class SweepEngine
{
  public:
    explicit SweepEngine(SweepOptions opts = {},
                         TraceCache *cache = &TraceCache::global());

    /**
     * Primary entry point: execute planned runs; outcomes come back
     * in submission order (outcome[i] corresponds to runs[i], with
     * the run's identity echoed into the outcome). A throwing run is
     * contained: its slot reports `ok == false` with a diagnostic,
     * every other slot is delivered normally. Does not throw for
     * per-run failures. `observer`, when set, fires once per run as
     * it completes (serialized, any completion order) — the streaming
     * result surface.
     */
    std::vector<RunOutcome>
    execute(const std::vector<PlannedRun> &runs,
            const RunObserver &observer = {});

    /**
     * Execute a serializable request: expands the axis cross-product
     * (throws ConfigError on a malformed request, before any run
     * starts) and applies the request's execution options (retries,
     * streaming, chunk size) for this batch. The daemon, the local
     * sweep tool and in-process callers all submit through here.
     */
    std::vector<RunOutcome> execute(const SweepRequest &request,
                                    const RunObserver &observer = {});

    /**
     * DEPRECATED (removal next PR): pre-RunOutcome surface. Wraps
     * execute() over name-less planned runs and strips run identity
     * from the outcomes. New callers use execute().
     */
    std::vector<SweepResult> run(const std::vector<RunSpec> &specs);

    /**
     * DEPRECATED (removal next PR): outputs only, submission order,
     * throwing on the first failed run. New callers use execute()
     * and inspect per-run `ok`.
     */
    std::vector<RunOutput> runOutputs(const std::vector<RunSpec> &specs);

    /**
     * DEPRECATED (removal next PR): generic task fan-out. Forwards to
     * the free `parallelForEach` with this engine's job count — the
     * engine itself now only executes sweep-shaped work.
     */
    std::vector<TaskStatus>
    runTasks(const std::vector<std::function<void()>> &tasks);

    /** Valid only when constructed with a non-null cache. */
    TraceCache &traceCache() { return *_cache; }
    bool hasTraceCache() const { return _cache != nullptr; }
    const SweepOptions &options() const { return _opts; }

    /** Runs that completed / failed across this engine's lifetime. */
    uint64_t runsSucceeded() const { return _runsOk.load(); }
    uint64_t runsFailed() const { return _runsFailed.load(); }
    /** Retry attempts beyond the first, across all runs. */
    uint64_t runRetries() const { return _runRetries.load(); }

    /**
     * Register engine-side observability (`sweep.traceCache.*`,
     * `sweep.runs.*`) into `reg` — the cache sharing that makes batch
     * artifacts cheap, and the fault ledger, are themselves part of
     * the run artifact. Safe without a cache: the traceCache counters
     * are emitted as zeros.
     */
    void exportStats(StatsRegistry &reg) const;

    /** Resolved worker count: STOREMLP_JOBS else hardware_concurrency. */
    static unsigned defaultJobs();

  private:
    unsigned resolveJobs(size_t work_items) const;
    /** One attempt of a run under `opts`; throws on failure. */
    RunOutput runOnce(const RunSpec &spec, const SweepOptions &opts,
                      bool *hit);
    /** execute() body against explicit options (request overrides). */
    std::vector<RunOutcome>
    executeWith(const SweepOptions &opts,
                const std::vector<PlannedRun> &runs,
                const RunObserver &observer);

    SweepOptions _opts;
    TraceCache *_cache;
    std::atomic<uint64_t> _runsOk{0};
    std::atomic<uint64_t> _runsFailed{0};
    std::atomic<uint64_t> _runRetries{0};
    /** Effective maxAttempts of the most recent request execute(). */
    std::atomic<unsigned> _lastMaxAttempts{0};
};

} // namespace storemlp

#endif // STOREMLP_CORE_SWEEP_HH
