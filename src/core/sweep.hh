/**
 * @file
 * Parallel sweep engine. A paper figure or table is a batch of
 * independent `RunSpec`s — the epoch model shares no mutable state
 * between runs, so the batch is embarrassingly parallel. The engine
 * executes specs on a fixed pool of worker threads (a shared work
 * queue of spec indices), routes trace construction through a shared
 * `TraceCache` so configurations over the same workload generate the
 * trace once, and writes results into submission-order slots so
 * tables are deterministic regardless of scheduling.
 *
 * Results are bit-identical across `jobs` values: each run owns its
 * machine state and RNG (seeded from the spec), the only shared input
 * is an immutable trace, and result slots are index-addressed.
 */

#ifndef STOREMLP_CORE_SWEEP_HH
#define STOREMLP_CORE_SWEEP_HH

#include <functional>
#include <iosfwd>
#include <vector>

#include "core/runner.hh"
#include "trace/trace_cache.hh"

namespace storemlp
{

/** Knobs controlling a sweep. */
struct SweepOptions
{
    /** Worker threads; 0 = STOREMLP_JOBS, else hardware_concurrency. */
    unsigned jobs = 0;
    /** Share input traces across runs via the trace cache. */
    bool useTraceCache = true;
    /**
     * Emit a live progress line (runs completed / total, cache hits)
     * to stderr. Defaults from the environment: on when stderr is a
     * terminal, forced by STOREMLP_PROGRESS=1, silenced by =0.
     */
    bool progress = progressFromEnv();

    static bool progressFromEnv();
};

/** One completed run: its output plus per-run observability. */
struct SweepResult
{
    RunOutput output;
    double wallMs = 0.0;        ///< wall-clock time of this run
    bool traceCacheHit = false; ///< input trace came from the cache
};

/** Executes batches of RunSpecs on a worker pool. */
class SweepEngine
{
  public:
    explicit SweepEngine(SweepOptions opts = {},
                         TraceCache *cache = &TraceCache::global());

    /**
     * Run every spec; results come back in submission order
     * (result[i] corresponds to specs[i]).
     */
    std::vector<SweepResult> run(const std::vector<RunSpec> &specs);

    /** Convenience: outputs only, submission order. */
    std::vector<RunOutput> runOutputs(const std::vector<RunSpec> &specs);

    /**
     * Run arbitrary independent tasks on the same pool (used by the
     * cache-only and CPI-model benches, which are not RunSpec
     * shaped). Tasks must not share mutable state.
     */
    void runTasks(const std::vector<std::function<void()>> &tasks);

    TraceCache &traceCache() { return *_cache; }
    const SweepOptions &options() const { return _opts; }

    /**
     * Register engine-side observability (`sweep.traceCache.*`) into
     * `reg` — the cache sharing that makes batch artifacts cheap is
     * itself part of the run artifact.
     */
    void exportStats(StatsRegistry &reg) const;

    /** Resolved worker count: STOREMLP_JOBS else hardware_concurrency. */
    static unsigned defaultJobs();

  private:
    unsigned resolveJobs(size_t work_items) const;

    SweepOptions _opts;
    TraceCache *_cache;
};

} // namespace storemlp

#endif // STOREMLP_CORE_SWEEP_HH
