/**
 * @file
 * Named configurations used throughout the evaluation.
 */

#include "core/sim_config.hh"

namespace storemlp
{

SimConfig
SimConfig::defaults()
{
    return SimConfig{};
}

SimConfig
SimConfig::pc2()
{
    SimConfig c;
    c.name = "PC2";
    c.prefetchPastSerializing = true;
    return c;
}

SimConfig
SimConfig::pc3()
{
    SimConfig c = pc2();
    c.name = "PC3";
    c.sle = true;
    return c;
}

SimConfig
SimConfig::wc1()
{
    SimConfig c;
    c.name = "WC1";
    c.memoryModel = ModelDescriptor::wc();
    return c;
}

SimConfig
SimConfig::wc2()
{
    SimConfig c = wc1();
    c.name = "WC2";
    c.prefetchPastSerializing = true;
    return c;
}

SimConfig
SimConfig::wc3()
{
    SimConfig c = wc2();
    c.name = "WC3";
    c.sle = true;
    return c;
}

SimConfig
SimConfig::rmo1()
{
    SimConfig c;
    c.name = "RMO1";
    c.memoryModel = ModelDescriptor::rmo();
    return c;
}

SimConfig
SimConfig::wmm1()
{
    SimConfig c;
    c.name = "WMM1";
    c.memoryModel = ModelDescriptor::wmm();
    return c;
}

SimConfig
SimConfig::withPrefetch(StorePrefetch sp) const
{
    SimConfig c = *this;
    c.storePrefetch = sp;
    return c;
}

SimConfig
SimConfig::withScout(ScoutMode sm) const
{
    SimConfig c = *this;
    c.scout = sm;
    return c;
}

const char *
storePrefetchName(StorePrefetch sp)
{
    switch (sp) {
      case StorePrefetch::None: return "Sp0";
      case StorePrefetch::AtRetire: return "Sp1";
      case StorePrefetch::AtExecute: return "Sp2";
      default: return "?";
    }
}

const char *
scoutModeName(ScoutMode sm)
{
    switch (sm) {
      case ScoutMode::Off: return "NoHWS";
      case ScoutMode::Hws0: return "HWS0";
      case ScoutMode::Hws1: return "HWS1";
      case ScoutMode::Hws2: return "HWS2";
      default: return "?";
    }
}

} // namespace storemlp
