/**
 * @file
 * Lookahead engines of MLPsim: Hardware Scout (Section 3.3.5) and
 * prefetching past serializing instructions (Section 3.3.4). Both run
 * at a window termination, while the epoch's trigger miss is being
 * serviced, and convert off-chip accesses they encounter into
 * prefetches that join the current epoch.
 */

#include "core/mlp_sim.hh"

#include <algorithm>

namespace storemlp
{

bool
MlpSimulator::scoutEligible(TermCond cond) const
{
    // Scout needs a functioning frontend (it cannot run past a missing
    // instruction fetch) and a resolvable path (a mispredicted branch
    // dependent on a missing load sends it down the wrong path).
    if (cond == TermCond::InstructionMiss ||
        cond == TermCond::MispredBranch) {
        return false;
    }
    // HWS0/HWS1: enter scout mode when a missing load heads the ROB.
    if (_gen.loads >= 1)
        return true;
    // HWS2 additionally enters on store-side stalls: store queue/
    // buffer backpressure and serializing waits on missing stores.
    if (_cfg.scout == ScoutMode::Hws2) {
        switch (cond) {
          case TermCond::StoreBufferFull:
          case TermCond::SqStoreBufferFull:
          case TermCond::SqWindowFull:
          case TermCond::StoreSerialize:
            return true;
          default:
            break;
        }
    }
    return false;
}

void
MlpSimulator::runScout(TraceCursor &cur)
{
    if (_collect)
        ++_res.scoutEntries;
    // Scout runs until the trigger miss returns: the remaining stall
    // converted into an instruction budget at on-chip CPI.
    double remaining = _gen.resolveCycle - _cycle;
    if (remaining <= 0)
        return;
    uint64_t budget =
        static_cast<uint64_t>(remaining / std::max(0.1, _cfg.cpiOnChip));
    bool stores = _cfg.scout == ScoutMode::Hws1 ||
        _cfg.scout == ScoutMode::Hws2;
    lookahead(cur, _i, budget, stores, false);
}

void
MlpSimulator::runSerializeLookahead(TraceCursor &cur)
{
    // "The number of loads and stores that can be prefetched is
    // limited by the size of the reorder buffer since the casa and
    // isync instructions usually hold up instruction retirement."
    lookahead(cur, _i + 1, _cfg.robSize, true, false);
}

void
MlpSimulator::lookahead(TraceCursor &cur, uint64_t start,
                        uint64_t budget, bool prefetch_stores,
                        bool train_predictor)
{
    (void)train_predictor; // scout never trains (replay must see the
                           // same predictor state)
    RegPoison scratch = _poison;

    for (uint64_t j = start; budget > 0; ++j, --budget) {
        const TraceCursor::LaneView *v = cur.view(j);
        if (!v)
            break; // end of stream bounds the lookahead

        // Linear lane reads, as in stepOne.
        uint64_t off = j - v->first;
        uint64_t pc = v->pc[off];
        uint64_t addr = v->addr[off];
        uint32_t meta = v->meta[off];
        uint8_t dst = meta & 0xff;
        uint8_t src1 = (meta >> 8) & 0xff;
        uint8_t src2 = (meta >> 16) & 0xff;
        bool taken = (meta >> 24) & kFlagTaken;

        // Frontend: a missing instruction fetch is prefetched (the
        // access installs the line) but stops the scout.
        MissLevel flvl = _chip.instFetch(pc);
        if (flvl == MissLevel::OffChip) {
            if (_collect) {
                ++_res.missInsts;
                ++_res.scoutPrefetches;
            }
            onMiss(MissKind::Inst);
            _inflightLines.insert(lineOf(pc));
            break;
        }

        InstClass cls = static_cast<InstClass>(v->cls[off]);
        if (elidedAt(j)) {
            // Acquires act as loads; everything else elides to a NOP.
            if (cls == InstClass::AtomicCas ||
                cls == InstClass::LoadLocked) {
                cls = InstClass::Load;
            } else {
                continue;
            }
        }

        bool wrong_path = false;
        switch (cls) {
          case InstClass::Alu:
            if (scratch.anyPoisoned(src1, src2))
                scratch.set(dst);
            else
                scratch.clear(dst);
            break;

          case InstClass::Branch: {
            bool correct = _bp.predictPeek(pc, taken);
            if (!correct && scratch.anyPoisoned(src1, src2)) {
                // Unresolvable misprediction: the scout would follow
                // the wrong path from here; stop.
                wrong_path = true;
            }
            break;
          }

          case InstClass::Load:
          case InstClass::LoadLocked:
          case InstClass::AtomicCas: {
            if (scratch.test(src1)) {
                // Address depends on unavailable data: skip; the
                // consumer chain is poisoned.
                scratch.set(dst);
                break;
            }
            ChipNode::LoadOutcome out = _chip.load(addr);
            uint64_t line = lineOf(addr);
            if (out.level == MissLevel::OffChip) {
                if (_collect) {
                    ++_res.missLoads;
                    ++_res.scoutPrefetches;
                }
                onMiss(MissKind::Load);
                _inflightLines.insert(line);
                scratch.set(dst); // value arrives after the stall
            } else if (_inflightLines.count(line)) {
                scratch.set(dst);
            } else {
                scratch.clear(dst);
            }
            if (cls == InstClass::AtomicCas && prefetch_stores) {
                // The store half of the atomic also wants ownership.
                if (!_inflightLines.count(line))
                    _chip.prefetchLine(line, true);
            }
            break;
          }

          case InstClass::Store:
          case InstClass::StoreCond: {
            if (!prefetch_stores)
                break; // stores do not update state in scout mode
            if (scratch.test(src1))
                break; // address unavailable
            uint64_t line = lineOf(addr);
            if (_inflightLines.count(line))
                break;
            bool present = _chip.prefetchLine(line, true);
            if (_collect)
                ++_res.storePrefetchesIssued;
            if (!present) {
                if (_collect) {
                    ++_res.missStores;
                    ++_res.scoutPrefetches;
                }
                onMiss(MissKind::Store);
                _inflightLines.insert(line);
            }
            break;
          }

          case InstClass::Membar:
          case InstClass::Isync:
          case InstClass::Lwsync:
            // Scout is purely speculative: serializing constraints are
            // not obeyed (Section 3.3.5).
            break;

          default:
            break;
        }
        if (wrong_path)
            break;
    }
}

} // namespace storemlp
