/**
 * @file
 * Multi-core contention runner: N full epoch engines spread across M
 * chips of the real SnoopBus. Where the standard Runner models remote
 * traffic with statistical peer agents and DualCoreRunner fixes the
 * machine at two cores on one chip, this runner *simulates* every
 * core: each has its own streaming TraceCursor (no whole-trace
 * materialization), its own pipeline state, and shares only the
 * chip-level memory system — so cross-core invalidations, contended
 * locks, and shared SMAC capacity emerge from the simulated accesses
 * instead of being modeled.
 *
 * Execution is deterministic quantum-interleaved: every core advances
 * `quantum` instructions per turn, in core-id order, over one shared
 * memory system. The quantum sets how finely cache/coherence
 * interactions interleave; it does not model cycle-accurate timing
 * (see docs/MODEL.md, "Multi-core contention").
 */

#ifndef STOREMLP_CORE_MULTI_CORE_HH
#define STOREMLP_CORE_MULTI_CORE_HH

#include <cstdint>
#include <optional>
#include <vector>

#include "cache/hierarchy.hh"
#include "coherence/mesi.hh"
#include "coherence/smac.hh"
#include "core/sim_config.hh"
#include "core/sim_result.hh"
#include "stats/registry.hh"
#include "trace/workload.hh"

namespace storemlp
{

/** Specification of an N-core contention experiment. */
struct MultiRunSpec
{
    WorkloadProfile profile;
    SimConfig config;

    uint64_t seed = 42;
    uint64_t warmupInsts = 400 * 1000;
    uint64_t measureInsts = 800 * 1000;
    /** Instructions each core advances per interleaving turn. */
    uint64_t quantum = 256;

    /** Simulated cores (each a full epoch engine). */
    uint32_t cores = 2;
    /** Chips the cores are spread across (round-robin: core i lives
     *  on chip i % chips). chips > 1 attaches the snoop bus. */
    uint32_t chips = 1;

    /** SMAC configuration, instantiated on every chip (shared by the
     *  chip's cores — real shared-capacity contention). */
    std::optional<SmacConfig> smac;
    /** Cross-chip coherence protocol. */
    CoherenceProtocol protocol = CoherenceProtocol::Mesi;
    /** Pre-fill every chip's L2 (see RunSpec::prefillL2). */
    bool prefillL2 = true;
    /** Cache-geometry override applied to every chip. */
    std::optional<HierarchyConfig> hierarchy;

    // ---- contention knobs (generator overrides) ----
    /** Fraction of cold stores directed at the globally shared region
     *  (overrides profile.sharedStoreFrac): the cross-core
     *  invalidation axis. */
    std::optional<double> sharedStoreFrac;
    /** Critical-section emission probability per slot (overrides
     *  profile.lockProb): the lock-density axis. */
    std::optional<double> lockProb;

    /** Streaming chunk size (instructions); 0 = default. */
    uint64_t chunkInsts = 0;
};

/** Results of an N-core contention experiment. */
struct MultiRunOutput
{
    /** Per-core results, indexed by core id. */
    std::vector<SimResult> cores;
    /** All per-core results merged (totals across the machine). */
    SimResult combined;

    /**
     * Machine-side ledger: the bus (`coherence.*`, chips > 1 only)
     * and every chip's hierarchy/SMAC stats under `chip<m>.`.
     */
    StatsRegistry machine;

    uint32_t chips = 0;
    /** Bus transactions that invalidate remote copies (RdX + Upgr). */
    uint64_t busInvalidations = 0;
    /** Bus requests answered by a dirty remote line (MOESI Owned or
     *  MESI/MOESI Modified cache-to-cache transfers). */
    uint64_t busDirtyTransfers = 0;

    /** Aggregate epochs per 1000 instructions across all cores. */
    double combinedEpochsPer1000() const;
    /** Mean per-core off-chip CPI at the given miss penalty. */
    double meanOffChipCpi(uint32_t miss_latency) const;
    /** Bus invalidations per 1000 measured instructions (all cores). */
    double busInvalidationsPer1000() const;

    /**
     * Register the full run into `reg`: the combined SimResult under
     * the standard names (so existing schema consumers keep working),
     * `multicore.*` topology/bus aggregates, each core's SimResult
     * under `cpu<i>.`, and the machine ledger.
     */
    void exportStats(StatsRegistry &reg) const;
};

/** Runs N cores across M chips with full epoch engines. */
class MultiCoreRunner
{
  public:
    /** Throws ConfigError on a degenerate topology (0 cores, 0 chips,
     *  or more chips than cores). */
    static MultiRunOutput run(const MultiRunSpec &spec);
};

} // namespace storemlp

#endif // STOREMLP_CORE_MULTI_CORE_HH
