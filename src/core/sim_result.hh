/**
 * @file
 * Simulation results: every metric the paper reports — EPI (epochs
 * per instruction), MLP, store MLP, the joint store/(load+inst) MLP
 * distribution (Figure 4), the window-termination breakdown (Figure
 * 3), the fully-overlapped-store fraction (Table 2), plus bandwidth
 * and optimization-specific counters.
 */

#ifndef STOREMLP_CORE_SIM_RESULT_HH
#define STOREMLP_CORE_SIM_RESULT_HH

#include <array>
#include <cstdint>
#include <iosfwd>

#include "core/epoch.hh"
#include "stats/histogram.hh"

namespace storemlp
{

class StatsRegistry;

/** All statistics from one measured simulation interval. */
struct SimResult
{
    // ---- core counts ----
    uint64_t instructions = 0;
    uint64_t epochs = 0;

    // ---- off-chip misses in the measured interval, by kind ----
    uint64_t missLoads = 0;
    uint64_t missStores = 0;
    uint64_t missInsts = 0;

    /** Misses resolved inside counted epochs (overlap accounting). */
    uint64_t epochMisses = 0;
    /** Per-kind breakdown of epochMisses. */
    uint64_t epochMissLoads = 0;
    uint64_t epochMissStores = 0;
    uint64_t epochMissInsts = 0;

    /** Missing stores whose latency was fully hidden by computation
     *  (no epoch formed while they were in flight) — Table 2. */
    uint64_t overlappedStores = 0;
    /** Missing stores accelerated by the SMAC (never stalled). */
    uint64_t smacAcceleratedStores = 0;

    // ---- distributions ----
    /** MLP over counted epochs (all miss kinds). */
    BoundedHistogram mlpHist{10};
    /** Store MLP over epochs with >= 1 missing store. */
    BoundedHistogram storeMlpHist{10};
    /** Joint (store MLP, load+inst MLP) distribution — Figure 4. */
    JointHistogram storeVsOtherMlp{10, 5};
    /** Window-termination condition counts — Figure 3. */
    std::array<uint64_t, kNumTermConds> termCounts{};
    /** Termination counts restricted to epochs with store MLP >= 1
     *  (Figure 3 plots fractions of these). */
    std::array<uint64_t, kNumTermConds> termCountsStoreEpochs{};

    // ---- bandwidth / optimization counters ----
    uint64_t l2StoreAccesses = 0;     ///< commits reaching the L2
    uint64_t storePrefetchesIssued = 0;
    uint64_t coalescedStores = 0;
    uint64_t sqInserts = 0;
    uint64_t scoutEntries = 0;        ///< times scout mode was entered
    uint64_t scoutPrefetches = 0;     ///< prefetches issued in scout
    uint64_t elidedLocks = 0;         ///< SLE: elided acquires
    uint64_t tmAborts = 0;            ///< TM: aborted transactions
    uint64_t serializeStalls = 0;     ///< serializing-instruction waits
    uint64_t branchMispredicts = 0;
    uint64_t branches = 0;

    /** On-chip cycles accumulated (CPIon-chip x instructions etc.). */
    double onChipCycles = 0.0;

    // ---- derived metrics ----
    /** Epochs per instruction. */
    double epi() const;
    /** Epochs per 1000 instructions (the figures' y-axis). */
    double epochsPer1000() const;
    /** MLP: off-chip accesses per epoch (epoch-model definition). */
    double mlp() const;
    /** Store MLP: mean missing stores over epochs with >= 1. */
    double storeMlp() const;
    /** Off-chip CPI for a given miss penalty (Section 3.4). */
    double offChipCpi(uint32_t miss_latency) const;
    /** Fraction of missing stores fully overlapped with computation. */
    double overlappedStoreFraction() const;
    /** Fraction of counted epochs terminated by condition c. */
    double termFraction(TermCond c) const;
    /** Fraction of ALL epochs that both contain a missing store and
     *  terminated by condition c (Figure 3's segment heights). */
    double termFractionStoreEpochs(TermCond c) const;
    /** Fraction of epochs with at least one missing store. */
    double storeEpochFraction() const;

    /** Misses per 100 instructions, by kind (Table 1 reporting). */
    double missLoadsPer100() const;
    double missStoresPer100() const;
    double missInstsPer100() const;

    /** Merge counters from another interval (multi-segment runs). */
    void merge(const SimResult &other);

    /** Human-readable one-config dump (examples/debugging). */
    void print(std::ostream &os) const;

    /**
     * Register every field under its dotted stat name (`core.epochs`,
     * `store.overlapped`, `smac.acceleratedStores`, ...). The mapping
     * is table-driven and shared with `fromStats`, so
     * fromStats(reg after exportStats) reproduces this result exactly
     * — the stats_json round-trip guarantee.
     */
    void exportStats(StatsRegistry &reg) const;

    /** Rebuild a result from registered stats; throws StatsError on
     *  missing entries. */
    static SimResult fromStats(const StatsRegistry &reg);

    bool operator==(const SimResult &) const = default;
};

} // namespace storemlp

#endif // STOREMLP_CORE_SIM_RESULT_HH
