/**
 * @file
 * Epoch-log JSONL formatting.
 */

#include "core/epoch_log.hh"

#include <ostream>

#include "core/mlp_sim.hh"
#include "stats/stats_json.hh"

namespace storemlp
{

void
EpochLogWriter::write(const EpochRecord &rec)
{
    _os << "{\"epoch\":" << _count << ",\"idx\":" << rec.triggerIdx
        << ",\"cause\":\"" << jsonEscape(termCondName(rec.cause))
        << "\",\"missLoads\":" << rec.loads
        << ",\"missStores\":" << rec.stores
        << ",\"missInsts\":" << rec.insts
        << ",\"sbOccupancy\":" << rec.sbOccupancy
        << ",\"startCycle\":" << jsonDouble(rec.startCycle)
        << ",\"stallCycles\":"
        << jsonDouble(rec.resolveCycle - rec.startCycle) << "}\n";
    ++_count;
}

} // namespace storemlp
