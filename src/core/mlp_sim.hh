/**
 * @file
 * MLPsim: the epoch MLP model simulator (paper Section 4.1). Reads an
 * instruction trace and a microarchitecture configuration, partitions
 * execution into epochs by tracking register/memory dependences and
 * the window-termination conditions of Section 3, and reports MLP and
 * epoch statistics.
 *
 * Time model: on-chip execution advances an abstract cycle clock by
 * CPIon-chip per instruction; an off-chip miss opens a *provisional*
 * epoch ("generation") that resolves `missLatency` cycles after its
 * first miss issued. If a window-termination condition fires first,
 * the epoch is counted (the processor stalled); if the clock reaches
 * the resolve point quietly, the epoch is discarded and its store
 * misses are recorded as fully overlapped with computation (Table 2).
 */

#ifndef STOREMLP_CORE_MLP_SIM_HH
#define STOREMLP_CORE_MLP_SIM_HH

#include <cstdint>
#include <functional>
#include <vector>

#include "core/line_set.hh"

#include "coherence/chip.hh"
#include "consistency/sle.hh"
#include "consistency/transactional.hh"
#include "core/sim_config.hh"
#include "core/sim_result.hh"
#include "trace/lock_detector.hh"
#include "trace/trace.hh"
#include "trace/trace_source.hh"
#include "uarch/branch_predictor.hh"
#include "uarch/regdep.hh"
#include "uarch/store_buffer.hh"
#include "uarch/store_queue.hh"

namespace storemlp
{

/**
 * The epoch-model simulator for one core. Owns pipeline bookkeeping;
 * borrows the chip-level memory system.
 */
/** One counted epoch, as reported to the epoch listener. */
struct EpochRecord
{
    uint64_t triggerIdx = 0;   ///< trace index where the stall hit
    double startCycle = 0.0;   ///< cycle at which the generation opened
    double resolveCycle = 0.0; ///< cycle at which its misses resolved
    TermCond cause = TermCond::None;
    uint32_t loads = 0;
    uint32_t stores = 0;
    uint32_t insts = 0;
    /** Store-buffer entries held when the epoch terminated. */
    uint32_t sbOccupancy = 0;
};

class MlpSimulator
{
  public:
    /**
     * @param config microarchitecture + optimization configuration
     * @param chip   coherent memory system of this core's chip
     * @param locks  lock analysis of the trace (required for SLE)
     */
    MlpSimulator(const SimConfig &config, ChipNode &chip,
                 const LockAnalysis *locks = nullptr);

    /**
     * Process records [begin, end) of the stream behind `cur`. May be
     * called repeatedly (e.g. an uncollected warmup pass followed by a
     * measured pass); pipeline and cache state persist across calls.
     * Stops early at end-of-stream, so `end` may be ~0 for "the rest".
     * @param collect record statistics into the result
     */
    void process(TraceCursor &cur, uint64_t begin, uint64_t end,
                 bool collect);

    /**
     * Compatibility shim over the cursor path; behaviorally identical
     * to pre-TraceSource releases. Slated for deletion — prefer the
     * TraceCursor overload.
     */
    void process(const Trace &trace, uint64_t begin, uint64_t end,
                 bool collect);

    /** Convenience: warmup then measure the rest of the stream. */
    SimResult run(TraceSource &src, uint64_t warmup_insts = 0);

    /** Compatibility shim; prefer the TraceSource overload. */
    SimResult run(const Trace &trace, uint64_t warmup_insts = 0);

    /**
     * Next trace index the simulator will dispatch: where the last
     * process() call stopped (its `end`, or the stream end).
     */
    uint64_t position() const { return _i; }

    /** Drain in-flight state and return accumulated statistics. */
    SimResult takeResult();

    /**
     * Hook invoked approximately every `peerQuantum` instructions with
     * the instruction delta, used to step peer-chip traffic agents in
     * lockstep with this core.
     */
    void setPeerHook(std::function<void(uint64_t)> hook);

    /**
     * Observer invoked for every *counted* epoch (after any scout
     * lookahead, before resolution) — a per-epoch event stream for
     * debugging and timeline visualization. Quietly-overlapped
     * generations are not reported.
     */
    using EpochListener = std::function<void(const EpochRecord &)>;
    void setEpochListener(EpochListener listener);

    const SimConfig &config() const { return _cfg; }

  private:
    // ---- pipeline bookkeeping ----
    /** Execution state of a ROB entry. */
    enum class RobState : uint8_t
    {
        Done,     ///< executed; eligible for in-order retirement
        WaitMiss, ///< load waiting on an off-chip miss
        Deferred, ///< sources poisoned; executes at epoch end
    };

    struct RobEntry
    {
        uint64_t idx = 0;      ///< trace index
        uint64_t addr = 0;     ///< effective address (memory ops)
        InstClass cls = InstClass::Alu;
        RobState state = RobState::Done;
        uint8_t dst = 0;
        uint8_t src1 = 0;
        uint8_t src2 = 0;
        bool isStore = false;  ///< owns a store buffer entry
        bool release = false;
        bool mispredCounted = false;
    };

    /**
     * Fixed-capacity ring buffer for the ROB. Dispatch never pushes
     * past robSize (the window check fires first), so capacity is
     * known up front; versus std::deque this keeps the whole window
     * in one contiguous allocation and makes push/pop/front a couple
     * of masked index operations.
     */
    class RobRing
    {
      public:
        /** Size for `capacity` entries (rounded up to a power of 2). */
        void
        reset(uint32_t capacity)
        {
            uint32_t cap = 1;
            while (cap < capacity + 1)
                cap <<= 1;
            _buf.resize(cap);
            _mask = cap - 1;
            _head = _tail = 0;
        }
        bool empty() const { return _head == _tail; }
        uint32_t size() const { return _tail - _head; }
        RobEntry &front() { return _buf[_head & _mask]; }
        const RobEntry &front() const { return _buf[_head & _mask]; }
        void push_back(const RobEntry &e) { _buf[_tail++ & _mask] = e; }
        void pop_front() { ++_head; }
        /** Visit entries oldest-first; `fn` may mutate them. */
        template <typename Fn>
        void
        forEach(Fn &&fn)
        {
            for (uint32_t i = _head; i != _tail; ++i)
                fn(_buf[i & _mask]);
        }

      private:
        std::vector<RobEntry> _buf;
        uint32_t _mask = 0;
        uint32_t _head = 0; ///< free-running; wrap via _mask
        uint32_t _tail = 0;
    };

    /** Provisional epoch in flight. */
    struct Generation
    {
        bool open = false;
        double startCycle = 0.0;
        double resolveCycle = 0.0;
        uint64_t loads = 0;
        uint64_t stores = 0;
        uint64_t insts = 0;
        uint64_t total() const { return loads + stores + insts; }
    };

    /**
     * Per-InstClass dispatch plan, precomputed from the config in the
     * constructor so the hot loop reads one table entry instead of
     * re-deriving serialization/store behavior per record.
     */
    struct ClassPlan
    {
        SerializeEffect eff;
        bool serializing = false; ///< eff.pipelineDrain || storeDrain
        bool isStore = false;
    };

    // ---- main loop steps ----
    /** One fetch/dispatch step; false once _i is past the stream. */
    bool stepOne(TraceCursor &cur);
    /** Execute (or defer) the record at _rob entry e; replay-safe. */
    void executeEntry(RobEntry &e, bool replay);
    /** Dispatch one record, handed in as lane values (see stepOne). */
    void dispatch(TraceCursor &cur, uint64_t pc, uint64_t addr,
                  InstClass cls, uint32_t meta);
    bool handleSerializing(TraceCursor &cur, SerializeEffect eff);

    // ---- retirement / commit ----
    void drainPipeline();
    void commitStores();
    /** Classify an SQ entry via the memory system; issue its miss. */
    void classifyEntry(SqEntry &e);
    void retireStoreIntoSq(RobEntry &rob_entry);

    // ---- epoch machinery ----
    void onMiss(MissKind kind);
    void terminate(TraceCursor &cur, TermCond cond);
    void resolveGeneration();
    void checkQuietResolve();
    /** Blocked-dispatch termination cause classification. */
    TermCond classifyWindowBlock() const;

    // ---- lookahead engines (scout.cc) ----
    /** Hardware Scout: run ahead during the stall, prefetching. */
    void runScout(TraceCursor &cur);
    /** Prefetch past a serializing instruction (ROB-bounded). */
    void runSerializeLookahead(TraceCursor &cur);
    /** Shared lookahead core. */
    void lookahead(TraceCursor &cur, uint64_t start, uint64_t budget,
                   bool prefetch_stores, bool train_predictor);
    bool scoutEligible(TermCond cond) const;

    // ---- helpers ----
    /** Combined SLE / transactional-memory elision at a trace index. */
    bool elidedAt(uint64_t idx);
    /** Combined elision action (TM actions map onto SLE's). */
    Sle::Action elideAction(uint64_t idx);
    bool poisoned(uint8_t src1, uint8_t src2) const;
    /**
     * Branch-free in the common single-core case: a dead bool test
     * when no peer hook is installed. peerTick keeps the exact
     * kPeerQuantum cadence dual-core determinism depends on.
     */
    void notePeerProgress()
    {
        if (_peerActive)
            peerTick();
    }
    void peerTick();
    uint64_t lineOf(uint64_t addr) const { return _chip.hierarchy().lineAddr(addr); }

    SimConfig _cfg;
    ChipNode &_chip;
    Sle _sle;
    TransactionalMemory _tm;
    ClassPlan _plan[static_cast<size_t>(InstClass::NumClasses)];
    bool _elisionActive = false; ///< SLE or TM installed

    // pipeline state
    RobRing _rob;
    StoreBuffer _sb;
    StoreQueue _sq;
    BranchPredictor _bp;
    RegPoison _poison;
    uint32_t _deferredCount = 0; ///< issue-window occupancy
    uint32_t _waitLoadCount = 0; ///< load-buffer occupancy
    uint32_t _fenceSeq = 0;      ///< lwsync fence epoch

    // epoch state
    Generation _gen;
    LineSet _inflightLines;

    // loop state
    uint64_t _i = 0;
    bool _skipFetch = false;
    double _cycle = 0.0;
    bool _collect = false;
    SimResult _res;

    // observers
    EpochListener _epochListener;

    // peer stepping
    std::function<void(uint64_t)> _peerHook;
    bool _peerActive = false; ///< _peerHook is installed
    uint64_t _peerPending = 0;
    static constexpr uint64_t kPeerQuantum = 64;

    // forward progress guard
    uint64_t _lastProgressIdx = ~0ULL;
    uint32_t _stallRetries = 0;
};

} // namespace storemlp

#endif // STOREMLP_CORE_MLP_SIM_HH
