/**
 * @file
 * Transport-agnostic sweep job API. A `SweepRequest` is the complete,
 * serializable description of a batch experiment — named SimConfigs,
 * axis cross-products (workloads x configs x memory models), run
 * lengths, and execution options — and a `RunOutcome` (sweep.hh) is
 * the per-run result envelope that comes back. The request expands
 * deterministically into `PlannedRun`s; the in-process engine
 * (`SweepEngine::execute`), the `storemlp_sweep` tool, and the
 * networked `storemlp_sweepd`/`storemlp_sweepc` pair all consume the
 * same expansion, so a run submitted over the wire is provably the
 * same computation as one submitted locally.
 *
 * Serialization is plain text built on `config_io`: top-level
 * key=value lines plus one `[config NAME]` ... `[endconfig]` block per
 * configuration whose body is exactly `saveSimConfig` output.
 * `saveSweepRequest(loadSweepRequest(text))` is a fixpoint, and
 * `sweepRequestFingerprint` hashes that canonical text so artifacts
 * can name the exact request that produced them.
 */

#ifndef STOREMLP_CORE_SWEEP_REQUEST_HH
#define STOREMLP_CORE_SWEEP_REQUEST_HH

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "core/runner.hh"
#include "core/sim_config.hh"
#include "stats/stats_json.hh"
#include "trace/workload.hh"

namespace storemlp
{

struct RunOutcome;
struct SweepOptions;

/** One named configuration inside a request. */
struct SweepConfigEntry
{
    std::string name; ///< run-name component (e.g. config file stem)
    SimConfig config;
};

/**
 * A complete, serializable batch-experiment description. Expansion
 * order is fixed: workloads outermost, then configs, then models —
 * exactly the order `storemlp_sweep` has always used, so run names
 * and result ordering are stable across process and wire boundaries.
 */
struct SweepRequest
{
    std::vector<SweepConfigEntry> configs;
    /** Workload names (database|tpcw|specjbb|specweb|tiny). */
    std::vector<std::string> workloads;
    /**
     * Optional memory-model axis: every config is crossed with every
     * entry (preset names or key=val descriptors). Empty keeps each
     * config's own model and adds no run-name suffix.
     */
    std::vector<std::string> models;

    uint64_t warmupInsts = 600 * 1000;
    uint64_t measureInsts = 1000 * 1000;
    uint64_t seed = 42;

    /** Extra attempts per failing run (at-least-once shard retry). */
    unsigned retries = 0;
    /** Execute against streaming sources (O(chunk) trace memory). */
    bool streaming = false;
    /** Streaming chunk size in instructions; 0 = default. */
    uint64_t chunkInsts = 0;

    /**
     * When non-empty, only the expanded runs with these names execute
     * (unknown names are a ConfigError). This is the shard-retry
     * surface: a client that lost results mid-stream resubmits the
     * same request filtered to the missing run names.
     */
    std::vector<std::string> runFilter;
};

/** One expanded run: identity plus the spec the engine executes. */
struct PlannedRun
{
    std::string name;       ///< unique, e.g. "database_pc1@WC"
    std::string workload;   ///< workload axis value
    std::string configName; ///< config axis value
    std::string model;      ///< model axis value; "" when not crossed
    RunSpec spec;
};

/**
 * Resolve a workload name used in requests. Accepts the four
 * commercial profiles plus "tiny" (the test profile). Throws
 * ConfigError on anything else.
 */
WorkloadProfile workloadProfileForName(const std::string &name);

/**
 * Expand a request into its planned runs: the full
 * workloads x configs x models cross-product, filtered by
 * `runFilter` when present. Throws ConfigError on empty config or
 * workload lists, unknown workloads/models, duplicate expanded run
 * names, or filter names that match no run.
 */
std::vector<PlannedRun> expandSweepRuns(const SweepRequest &req);

/** Copy the request's execution options into engine options. */
void applyRequestOptions(SweepOptions &opts, const SweepRequest &req);

// ---------------------------------------------------------------------
// Serialization
// ---------------------------------------------------------------------

/** Canonical text form (stable key order, exact round trip). */
void saveSweepRequest(std::ostream &os, const SweepRequest &req);
std::string sweepRequestToText(const SweepRequest &req);

/** Parse the text form. Throws ConfigError on unknown keys/garbage. */
SweepRequest loadSweepRequest(std::istream &is);
SweepRequest sweepRequestFromText(const std::string &text);

/**
 * FNV-1a 64 hash of the canonical text, as 16 hex digits. Identifies
 * the request in artifact `source` blocks; ignores `runFilter` so a
 * shard-retry resubmission fingerprints like the original job.
 */
std::string sweepRequestFingerprint(const SweepRequest &req);

// ---------------------------------------------------------------------
// Result artifacts (schemaVersion 2 envelope)
// ---------------------------------------------------------------------

/** Provenance stamped into a streamed result's `source` block. */
struct ArtifactSource
{
    std::string tool; ///< emitting tool (storemlp_sweep / _sweepd)
    std::string host; ///< hostname of the producing machine
    std::string requestFingerprint;
};

/** Best-effort local hostname ("unknown" when unavailable). */
std::string localHostName();

/**
 * Build the schemaVersion-2 envelope for one run: `source` from
 * `src`, `run` identity (name/workload/config/model, seed and run
 * lengths, ok/attempts/wallMs provenance), `meta` carrying the tool
 * and kind ("run") plus the error message for failed runs. The
 * `stats` body (RunOutput::exportStats) stays free of provenance so
 * local and remote artifacts of the same run are bit-identical there.
 */
StatsEnvelope runOutcomeEnvelope(const RunOutcome &outcome,
                                 const ArtifactSource &src,
                                 uint64_t seed, uint64_t warmup,
                                 uint64_t measure);

/** Compact (single-line) JSON document for one run outcome. */
std::string runOutcomeJson(const RunOutcome &outcome,
                           const ArtifactSource &src, uint64_t seed,
                           uint64_t warmup, uint64_t measure);

} // namespace storemlp

#endif // STOREMLP_CORE_SWEEP_REQUEST_HH
