/**
 * @file
 * Multi-core contention runner implementation.
 */

#include "core/multi_core.hh"

#include <algorithm>
#include <memory>
#include <string>

#include "coherence/bus.hh"
#include "coherence/chip.hh"
#include "core/mlp_sim.hh"
#include "trace/lock_detector.hh"
#include "trace/rewriter.hh"
#include "trace/trace_source.hh"
#include "util/error.hh"

namespace storemlp
{

double
MultiRunOutput::combinedEpochsPer1000() const
{
    if (!combined.instructions)
        return 0.0;
    return 1000.0 * static_cast<double>(combined.epochs) /
        static_cast<double>(combined.instructions);
}

double
MultiRunOutput::meanOffChipCpi(uint32_t miss_latency) const
{
    if (cores.empty())
        return 0.0;
    double sum = 0.0;
    for (const SimResult &r : cores)
        sum += r.offChipCpi(miss_latency);
    return sum / static_cast<double>(cores.size());
}

double
MultiRunOutput::busInvalidationsPer1000() const
{
    if (!combined.instructions)
        return 0.0;
    return 1000.0 * static_cast<double>(busInvalidations) /
        static_cast<double>(combined.instructions);
}

void
MultiRunOutput::exportStats(StatsRegistry &reg) const
{
    combined.exportStats(reg);
    reg.counter("multicore.cores", cores.size());
    reg.counter("multicore.chips", chips);
    reg.counter("multicore.busInvalidations", busInvalidations);
    reg.counter("multicore.busDirtyTransfers", busDirtyTransfers);
    reg.scalar("derived.busInvalidationsPer1000",
               busInvalidationsPer1000());
    reg.scalar("derived.combinedEpochsPer1000", combinedEpochsPer1000());
    for (size_t i = 0; i < cores.size(); ++i) {
        StatsRegistry per;
        cores[i].exportStats(per);
        reg.mergeFrom(per, "cpu" + std::to_string(i) + ".");
    }
    reg.mergeFrom(machine);
}

namespace
{

// Runner::run's L2 prefill layout: clean placeholder lines from a
// reserved per-chip region, so real traffic immediately contends for
// capacity.
constexpr uint64_t kPrefillBase = 0xF00000000000ULL;
constexpr uint64_t kPrefillStride = 0x001000000000ULL;

/**
 * Core i's record stream. Generator ids 0, 101, 102, ... place each
 * core's private store/load regions at disjoint addresses (matching
 * DualCoreRunner's 0/101 for the first two cores) while every core
 * shares the one global shared-store region — the source of
 * cross-core invalidation traffic.
 */
std::unique_ptr<TraceSource>
coreSource(const MultiRunSpec &spec, const WorkloadProfile &prof,
           uint32_t core, uint64_t total)
{
    uint32_t gen_id = core == 0 ? 0 : 100 + core;
    std::unique_ptr<TraceSource> src = std::make_unique<GeneratorSource>(
        prof, spec.seed + core, total, gen_id, spec.chunkInsts);
    if (spec.config.memoryModel.wcTraceRewrite())
        src = std::make_unique<WcRewriteSource>(std::move(src));
    return src;
}

} // namespace

MultiRunOutput
MultiCoreRunner::run(const MultiRunSpec &spec)
{
    if (spec.cores == 0)
        throw ConfigError("MultiCoreRunner: cores must be >= 1");
    if (spec.chips == 0)
        throw ConfigError("MultiCoreRunner: chips must be >= 1");
    if (spec.chips > spec.cores) {
        throw ConfigError(
            "MultiCoreRunner: chips (" + std::to_string(spec.chips) +
            ") exceeds cores (" + std::to_string(spec.cores) + ")");
    }

    uint32_t n = spec.cores;
    uint32_t m = spec.chips;
    uint64_t total = spec.warmupInsts + spec.measureInsts;

    // Contention knobs override the profile the generators see; the
    // knobs shape the traces, never the machine.
    WorkloadProfile prof = spec.profile;
    if (spec.sharedStoreFrac)
        prof.sharedStoreFrac = *spec.sharedStoreFrac;
    if (spec.lockProb)
        prof.lockProb = *spec.lockProb;

    // ---- per-core streams ----
    std::vector<std::unique_ptr<TraceSource>> sources;
    sources.reserve(n);
    for (uint32_t c = 0; c < n; ++c)
        sources.push_back(coreSource(spec, prof, c, total));

    // Lock analysis feeds SLE/TM only; skip the extra streaming pass
    // unless those optimizations are on (Runner::run semantics).
    std::vector<LockAnalysis> locks;
    if (spec.config.sle || spec.config.tm.enabled) {
        locks.reserve(n);
        for (uint32_t c = 0; c < n; ++c)
            locks.push_back(analyzeSource(*sources[c]));
    }

    // ---- the machine: M chips, bus-connected when M > 1 ----
    HierarchyConfig hier_cfg = spec.hierarchy.value_or(HierarchyConfig{});
    SnoopBus bus;
    std::vector<std::unique_ptr<ChipNode>> chips;
    chips.reserve(m);
    for (uint32_t c = 0; c < m; ++c) {
        chips.push_back(std::make_unique<ChipNode>(
            hier_cfg, c, spec.smac, spec.protocol));
        if (m > 1)
            chips.back()->connect(&bus);
    }

    if (spec.prefillL2) {
        for (uint32_t c = 0; c < m; ++c) {
            SetAssocCache &l2 = chips[c]->hierarchy().l2();
            uint64_t lines =
                l2.config().sizeBytes / l2.config().lineBytes;
            uint64_t base = kPrefillBase + c * kPrefillStride;
            for (uint64_t i = 0; i < lines; ++i)
                l2.access(base + i * l2.config().lineBytes, false);
        }
    }

    SimConfig cfg = spec.config;
    cfg.cpiOnChip = prof.cpiOnChip;

    std::vector<std::unique_ptr<MlpSimulator>> sims;
    std::vector<std::unique_ptr<TraceCursor>> cursors;
    sims.reserve(n);
    cursors.reserve(n);
    for (uint32_t c = 0; c < n; ++c) {
        sims.push_back(std::make_unique<MlpSimulator>(
            cfg, *chips[c % m], locks.empty() ? nullptr : &locks[c]));
        cursors.push_back(std::make_unique<TraceCursor>(*sources[c]));
    }

    // ---- deterministic quantum-interleaved execution ----
    // Every core advances `quantum` records per turn, in core-id
    // order. A turn straddling the warmup boundary is split at the
    // exact boundary so collection starts at record warmupInsts. A
    // core whose stream ends (generator slot-boundary overshoot makes
    // per-core stream lengths differ slightly) simply drops out.
    uint64_t q = std::max<uint64_t>(1, spec.quantum);
    uint64_t warm = spec.warmupInsts;
    auto turn = [&](MlpSimulator &sim, TraceCursor &cur, bool &done,
                    uint64_t begin, uint64_t end) {
        if (done)
            return;
        if (begin < warm && end > warm) {
            sim.process(cur, begin, warm, false);
            if (sim.position() < warm) {
                done = true;
                return;
            }
            sim.process(cur, warm, end, true);
        } else {
            sim.process(cur, begin, end, begin >= warm);
        }
        done = sim.position() < end; // stopped early: end of stream
    };

    std::vector<char> done(n, 0);
    uint32_t running = n;
    uint64_t pos = 0;
    while (running) {
        uint64_t next = pos + q;
        for (uint32_t c = 0; c < n; ++c) {
            bool d = done[c];
            turn(*sims[c], *cursors[c], d, pos, next);
            if (d && !done[c]) {
                done[c] = 1;
                --running;
            }
        }
        pos = next;
    }

    // ---- results ----
    MultiRunOutput out;
    out.chips = m;
    out.cores.reserve(n);
    for (uint32_t c = 0; c < n; ++c) {
        out.cores.push_back(sims[c]->takeResult());
        out.combined.merge(out.cores.back());
    }
    if (m > 1) {
        out.busInvalidations = bus.readExclusives() + bus.upgrades();
        out.busDirtyTransfers = bus.dirtyTransfers();
        bus.exportStats(out.machine);
        out.machine.counter("coherence.dirtyTransfers",
                            bus.dirtyTransfers());
    }
    for (uint32_t c = 0; c < m; ++c) {
        StatsRegistry per;
        chips[c]->hierarchy().exportStats(per);
        if (const Smac *smac = chips[c]->smac())
            smac->exportStats(per);
        per.counter("chip.smacAcceleratedStores",
                    chips[c]->smacAcceleratedStores());
        out.machine.mergeFrom(per, "chip" + std::to_string(c) + ".");
    }
    return out;
}

} // namespace storemlp
