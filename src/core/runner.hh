/**
 * @file
 * Experiment runner: the convenience layer that assembles a full
 * experiment — synthetic trace, optional PC->WC rewrite, lock
 * analysis, chips/bus/SMAC, peer traffic — warms it up and measures,
 * mirroring the paper's methodology (Section 4.2): warm the caches on
 * a prefix of the trace, then collect statistics on the remainder.
 */

#ifndef STOREMLP_CORE_RUNNER_HH
#define STOREMLP_CORE_RUNNER_HH

#include <cstdint>
#include <iosfwd>
#include <memory>
#include <optional>

#include <string>

#include "cache/hierarchy.hh"
#include "coherence/mesi.hh"
#include "coherence/smac.hh"
#include "core/sim_config.hh"
#include "core/sim_result.hh"
#include "stats/registry.hh"
#include "trace/trace.hh"
#include "trace/trace_source.hh"
#include "trace/workload.hh"

namespace storemlp
{

/** Everything needed to reproduce one experimental data point. */
struct RunSpec
{
    WorkloadProfile profile;
    SimConfig config;

    uint64_t seed = 42;
    uint64_t warmupInsts = 200 * 1000;
    uint64_t measureInsts = 1000 * 1000;

    /** Number of chips in the multiprocessor (paper default: 2). */
    uint32_t numChips = 1;
    /** SMAC configuration, instantiated on every chip. */
    std::optional<SmacConfig> smac;
    /** Cross-chip coherence protocol (paper assumes MESI). */
    CoherenceProtocol protocol = CoherenceProtocol::Mesi;
    /** Drive remote chips with peer workload traffic. */
    bool peerTraffic = false;
    /**
     * Model the paper's second core per chip: a sibling thread of the
     * same workload sharing the L2, stepped in lockstep with the
     * measured core. Provides the L2 capacity pressure that cycles
     * modified lines into the SMAC. Enabled for the SMAC experiments.
     */
    bool siblingCore = false;
    /**
     * Pre-fill every chip's L2 with placeholder lines before warmup
     * so the cache starts at steady-state occupancy (real systems run
     * with a full L2; without this, short simulations never reach the
     * capacity evictions that populate the SMAC). The paper used 1B
     * warmup instructions for the same reason (Section 4.2).
     */
    bool prefillL2 = true;
    /**
     * Cache-geometry override. Unset means the paper's default
     * hierarchy (32K L1I/L1D, 2MB 4-way L2); when set it applies to
     * every chip, including the L2 prefill sizing.
     */
    std::optional<HierarchyConfig> hierarchy;

    /**
     * Per-epoch event trace sink (`--epoch-log`). When set, one JSON
     * line per counted epoch of the measured interval is written (see
     * EpochLogWriter). Null keeps the epoch listener unset, so the
     * only disabled-path cost is a branch per counted epoch. The
     * stream is borrowed, not owned; parallel sweeps must give each
     * spec its own stream.
     */
    std::ostream *epochLog = nullptr;
};

/** Results of one experiment. */
struct RunOutput
{
    SimResult sim;

    // ---- Table 1 style rates over the measured interval ----
    double storesPer100 = 0.0;   ///< dynamic store frequency
    double storeMissPer100 = 0.0;
    double loadMissPer100 = 0.0;
    double instMissPer100 = 0.0;

    // ---- bandwidth ----
    uint64_t l2Accesses = 0;
    /** Data TLB misses per 100 instructions (2K-entry shared TLB). */
    double tlbMissPer100 = 0.0;

    // ---- SMAC (Figure 6) ----
    uint64_t smacCoherenceInvalidates = 0;
    uint64_t smacProbeHits = 0;
    uint64_t smacProbeHitInvalidated = 0;

    uint64_t peerInstructions = 0;
    /** Chip-level (both cores) off-chip store misses. */
    uint64_t chipStoreMisses = 0;

    /**
     * Machine-side stats registered during the run: the measured
     * chip's hierarchy (`cache.*`), the snoop bus when chips > 1
     * (`coherence.*`) and the SMAC when configured (`smac.*`).
     */
    StatsRegistry machine;

    /** SMAC invalidates per 1000 measured instructions. */
    double smacInvalidatesPer1000() const;
    /** % of the chip's missing stores finding a coherence-
     *  invalidated entry (Figure 6 right panel). */
    double smacHitInvalidPct() const;

    /**
     * Register the full run into `reg`: SimResult stats, run-level
     * rates (`run.*`), chip/SMAC coherence outcomes, and everything
     * in `machine`.
     */
    void exportStats(StatsRegistry &reg) const;
};

/** Orchestrates experiments. */
class Runner
{
  public:
    /**
     * Run one full epoch-model experiment against a record stream.
     * `source` must already reflect the spec's memory model (i.e. be
     * the stream `buildTrace`/`makeSource` would produce). This is the
     * primary entry point: resident trace memory is O(chunk) for
     * streaming sources, and a MaterializedSource reproduces the
     * historical whole-trace behavior bit for bit.
     */
    static RunOutput run(const RunSpec &spec, TraceSource &source);

    /**
     * Build the input trace for a spec: generate
     * warmupInsts + measureInsts instructions and apply the PC->WC
     * rewrite when the spec's config uses weak consistency.
     */
    static Trace buildTrace(const RunSpec &spec);

    /**
     * Streaming equivalent of buildTrace: compose the spec's stream
     * (generator, then PC->WC rewrite when the spec uses weak
     * consistency) without materializing it. `chunk_insts` 0 means
     * the default chunk size. With `chunk_cache`, the composed source
     * is fronted by a CachedSource keyed off traceCacheKey(spec) so
     * concurrent sweep workers share chunk production.
     */
    static std::unique_ptr<TraceSource>
    makeSource(const RunSpec &spec, uint64_t chunk_insts = 0,
               TraceCache *chunk_cache = nullptr);

    /**
     * Cache key identifying `buildTrace(spec)`'s output: everything
     * that determines the trace bytes (profile fingerprint, seed,
     * length, memory-model rewrite) and nothing else, so specs that
     * differ only in machine configuration share one cached trace.
     */
    static std::string traceCacheKey(const RunSpec &spec);

    /**
     * Cache-only measurement of the paper's Table 1 statistics: no
     * epoch engine, no prefetching — the raw miss rates of the
     * workload against the default hierarchy.
     */
    struct MissRates
    {
        double storesPer100 = 0.0;
        double storeMissPer100 = 0.0;
        double loadMissPer100 = 0.0;
        double instMissPer100 = 0.0;
    };
    static MissRates measureMissRates(const WorkloadProfile &profile,
                                      uint64_t seed,
                                      uint64_t warmup_insts,
                                      uint64_t measure_insts);

    /** Same measurement over a prebuilt (shared) trace. */
    static MissRates measureMissRates(const Trace &trace,
                                      uint64_t warmup_insts);
};

} // namespace storemlp

#endif // STOREMLP_CORE_RUNNER_HH
