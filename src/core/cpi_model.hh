/**
 * @file
 * On-chip CPI model (paper Section 3.4, Table 3). CPIon-chip is what
 * a cycle simulator measures with a perfect furthest on-chip cache:
 * issue-limited base CPI plus exposed L1-miss/L2-hit latency plus
 * branch misprediction penalties. Overall CPI is then
 *   CPIoverall = CPIon-chip * (1 - Overlap) + EPI * MissPenalty.
 */

#ifndef STOREMLP_CORE_CPI_MODEL_HH
#define STOREMLP_CORE_CPI_MODEL_HH

#include <cstdint>

#include "cache/hierarchy.hh"
#include "trace/trace.hh"
#include "uarch/branch_predictor.hh"

namespace storemlp
{

/** Coefficients of the on-chip CPI model. */
struct CpiModelParams
{
    /** Issue-limited CPI of the core on an all-hit stream. */
    double baseCpi = 0.70;
    /** L1 data cache hit latency in cycles (paper: 4). */
    double l1Latency = 4.0;
    /** L2 hit latency in cycles (paper: 15). */
    double l2HitLatency = 15.0;
    /**
     * Fraction of an L1-miss/L2-hit's latency exposed to the pipeline
     * (out-of-order execution hides the rest).
     */
    double l1dMissExposure = 0.40;
    /** Exposure for instruction-side L1 misses (frontend stalls). */
    double l1iMissExposure = 0.85;
    /** Pipeline refill cycles per branch misprediction. */
    double mispredictPenalty = 12.0;
    /** Exposed fraction of L1 load-hit latency (load-to-use). */
    double loadUseExposure = 0.10;
};

/**
 * Evaluates CPIon-chip for a trace by running it through a hierarchy
 * whose L2 never misses (perfect furthest on-chip cache).
 */
class CpiModel
{
  public:
    explicit CpiModel(const CpiModelParams &params = {});

    /** Additive breakdown of on-chip CPI. */
    struct Breakdown
    {
        double base = 0.0;
        double loadUse = 0.0;
        double l1dMiss = 0.0;
        double l1iMiss = 0.0;
        double branch = 0.0;

        double
        total() const
        {
            return base + loadUse + l1dMiss + l1iMiss + branch;
        }
    };

    /**
     * Measure over trace records [warmup, end) after warming the L1s
     * and predictor on [0, warmup).
     */
    Breakdown evaluate(const Trace &trace, uint64_t warmup = 0) const;

    const CpiModelParams &params() const { return _params; }

  private:
    CpiModelParams _params;
};

} // namespace storemlp

#endif // STOREMLP_CORE_CPI_MODEL_HH
