/**
 * @file
 * Epoch model vocabulary: window-termination conditions (the eight
 * categories of the paper's Figure 3) and off-chip miss kinds.
 */

#ifndef STOREMLP_CORE_EPOCH_HH
#define STOREMLP_CORE_EPOCH_HH

#include <cstdint>

namespace storemlp
{

/** Kinds of off-chip accesses tracked by the epoch model. */
enum class MissKind : uint8_t
{
    Load,
    Store,
    Inst,
};

/**
 * Window-termination conditions, matching the legend of Figure 3.
 * `None` marks provisional epochs that resolved quietly (the misses
 * were fully overlapped with computation and no epoch is counted).
 */
enum class TermCond : uint8_t
{
    /** Store buffer full, not preceded by store queue full. */
    StoreBufferFull = 0,
    /** Store buffer full preceded by store queue full. */
    SqStoreBufferFull,
    /** ROB or issue window full preceded by store queue full. */
    SqWindowFull,
    /** Serializing instruction preceded by missing stores but not by
     *  missing loads. */
    StoreSerialize,
    /** Serializing instruction preceded by at least one missing load. */
    OtherSerialize,
    /** Mispredicted branch dependent on a missing load. */
    MispredBranch,
    /** Missing instruction (off-chip instruction fetch). */
    InstructionMiss,
    /** ROB or issue window full, not preceded by store queue full. */
    WindowFull,
    NumConditions,
    None,
};

/** Printable name for a termination condition. */
const char *termCondName(TermCond c);

/** Printable name for a miss kind. */
const char *missKindName(MissKind k);

constexpr unsigned kNumTermConds =
    static_cast<unsigned>(TermCond::NumConditions);

} // namespace storemlp

#endif // STOREMLP_CORE_EPOCH_HH
