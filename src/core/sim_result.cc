/**
 * @file
 * SimResult derived metrics and reporting.
 */

#include "core/sim_result.hh"

#include <ostream>
#include <string>

#include "stats/registry.hh"
#include "stats/table.hh"

namespace storemlp
{

const char *
termCondName(TermCond c)
{
    switch (c) {
      case TermCond::StoreBufferFull: return "StoreBufferFull";
      case TermCond::SqStoreBufferFull: return "SQ+StoreBufferFull";
      case TermCond::SqWindowFull: return "SQ+WindowFull";
      case TermCond::StoreSerialize: return "StoreSerialize";
      case TermCond::OtherSerialize: return "OtherSerialize";
      case TermCond::MispredBranch: return "MispredBranch";
      case TermCond::InstructionMiss: return "InstructionMiss";
      case TermCond::WindowFull: return "WindowFull";
      case TermCond::None: return "None";
      default: return "?";
    }
}

const char *
missKindName(MissKind k)
{
    switch (k) {
      case MissKind::Load: return "load";
      case MissKind::Store: return "store";
      case MissKind::Inst: return "inst";
      default: return "?";
    }
}

double
SimResult::epi() const
{
    return instructions
        ? static_cast<double>(epochs) / static_cast<double>(instructions)
        : 0.0;
}

double
SimResult::epochsPer1000() const
{
    return epi() * 1000.0;
}

double
SimResult::mlp() const
{
    return epochs
        ? static_cast<double>(epochMisses) / static_cast<double>(epochs)
        : 0.0;
}

double
SimResult::storeMlp() const
{
    return storeMlpHist.mean();
}

double
SimResult::offChipCpi(uint32_t miss_latency) const
{
    return epi() * static_cast<double>(miss_latency);
}

double
SimResult::overlappedStoreFraction() const
{
    return missStores
        ? static_cast<double>(overlappedStores) /
              static_cast<double>(missStores)
        : 0.0;
}

double
SimResult::termFraction(TermCond c) const
{
    if (!epochs || c >= TermCond::NumConditions)
        return 0.0;
    return static_cast<double>(termCounts[static_cast<unsigned>(c)]) /
        static_cast<double>(epochs);
}

double
SimResult::termFractionStoreEpochs(TermCond c) const
{
    if (!epochs || c >= TermCond::NumConditions)
        return 0.0;
    return static_cast<double>(
               termCountsStoreEpochs[static_cast<unsigned>(c)]) /
        static_cast<double>(epochs);
}

double
SimResult::storeEpochFraction() const
{
    return epochs
        ? static_cast<double>(storeMlpHist.total()) /
              static_cast<double>(epochs)
        : 0.0;
}

double
SimResult::missLoadsPer100() const
{
    return instructions
        ? 100.0 * static_cast<double>(missLoads) /
              static_cast<double>(instructions)
        : 0.0;
}

double
SimResult::missStoresPer100() const
{
    return instructions
        ? 100.0 * static_cast<double>(missStores) /
              static_cast<double>(instructions)
        : 0.0;
}

double
SimResult::missInstsPer100() const
{
    return instructions
        ? 100.0 * static_cast<double>(missInsts) /
              static_cast<double>(instructions)
        : 0.0;
}

void
SimResult::merge(const SimResult &other)
{
    instructions += other.instructions;
    epochs += other.epochs;
    missLoads += other.missLoads;
    missStores += other.missStores;
    missInsts += other.missInsts;
    epochMisses += other.epochMisses;
    epochMissLoads += other.epochMissLoads;
    epochMissStores += other.epochMissStores;
    epochMissInsts += other.epochMissInsts;
    overlappedStores += other.overlappedStores;
    smacAcceleratedStores += other.smacAcceleratedStores;
    for (unsigned i = 0; i < kNumTermConds; ++i) {
        termCounts[i] += other.termCounts[i];
        termCountsStoreEpochs[i] += other.termCountsStoreEpochs[i];
    }
    l2StoreAccesses += other.l2StoreAccesses;
    storePrefetchesIssued += other.storePrefetchesIssued;
    coalescedStores += other.coalescedStores;
    sqInserts += other.sqInserts;
    scoutEntries += other.scoutEntries;
    scoutPrefetches += other.scoutPrefetches;
    elidedLocks += other.elidedLocks;
    tmAborts += other.tmAborts;
    serializeStalls += other.serializeStalls;
    branchMispredicts += other.branchMispredicts;
    branches += other.branches;
    onChipCycles += other.onChipCycles;

    mlpHist.merge(other.mlpHist);
    storeMlpHist.merge(other.storeMlpHist);
    storeVsOtherMlp.merge(other.storeVsOtherMlp);
}

// ---------------------------------------------------------------------
// Structured stats registration
// ---------------------------------------------------------------------

namespace
{

/** Dotted stat name for each plain uint64 field. Export and import
 *  both walk this table, which is what makes the JSON round-trip
 *  lossless by construction. */
struct U64Field
{
    const char *name;
    uint64_t SimResult::*member;
};

constexpr U64Field kU64Fields[] = {
    {"core.instructions", &SimResult::instructions},
    {"core.epochs", &SimResult::epochs},
    {"core.missLoads", &SimResult::missLoads},
    {"core.missStores", &SimResult::missStores},
    {"core.missInsts", &SimResult::missInsts},
    {"core.epochMisses", &SimResult::epochMisses},
    {"core.epochMissLoads", &SimResult::epochMissLoads},
    {"core.epochMissStores", &SimResult::epochMissStores},
    {"core.epochMissInsts", &SimResult::epochMissInsts},
    {"store.overlapped", &SimResult::overlappedStores},
    {"store.l2Accesses", &SimResult::l2StoreAccesses},
    {"store.prefetchesIssued", &SimResult::storePrefetchesIssued},
    {"store.coalesced", &SimResult::coalescedStores},
    {"store.sqInserts", &SimResult::sqInserts},
    {"smac.acceleratedStores", &SimResult::smacAcceleratedStores},
    {"scout.entries", &SimResult::scoutEntries},
    {"scout.prefetches", &SimResult::scoutPrefetches},
    {"consistency.elidedLocks", &SimResult::elidedLocks},
    {"consistency.tmAborts", &SimResult::tmAborts},
    {"consistency.serializeStalls", &SimResult::serializeStalls},
    {"uarch.branches", &SimResult::branches},
    {"uarch.branchMispredicts", &SimResult::branchMispredicts},
};

std::string
termStatName(const char *group, unsigned cond)
{
    return std::string(group) +
        termCondName(static_cast<TermCond>(cond));
}

} // namespace

void
SimResult::exportStats(StatsRegistry &reg) const
{
    for (const U64Field &f : kU64Fields)
        reg.counter(f.name, this->*f.member);
    reg.scalar("core.onChipCycles", onChipCycles);
    for (unsigned c = 0; c < kNumTermConds; ++c) {
        reg.counter(termStatName("core.term.", c), termCounts[c]);
        reg.counter(termStatName("core.termStore.", c),
                    termCountsStoreEpochs[c]);
    }
    reg.histogram("core.mlpHist", mlpHist);
    reg.histogram("core.storeMlpHist", storeMlpHist);
    reg.joint("core.storeVsOtherMlp", storeVsOtherMlp);

    // Derived headline metrics, for consumers that do not want to
    // recompute ratios (ignored by fromStats).
    reg.scalar("derived.epochsPer1000", epochsPer1000());
    reg.scalar("derived.mlp", mlp());
    reg.scalar("derived.storeMlp", storeMlp());
    reg.scalar("derived.overlappedStoreFraction",
               overlappedStoreFraction());
    reg.scalar("derived.missLoadsPer100", missLoadsPer100());
    reg.scalar("derived.missStoresPer100", missStoresPer100());
    reg.scalar("derived.missInstsPer100", missInstsPer100());
}

SimResult
SimResult::fromStats(const StatsRegistry &reg)
{
    SimResult r;
    for (const U64Field &f : kU64Fields)
        r.*f.member = reg.getCounter(f.name);
    r.onChipCycles = reg.getScalar("core.onChipCycles");
    for (unsigned c = 0; c < kNumTermConds; ++c) {
        r.termCounts[c] = reg.getCounter(termStatName("core.term.", c));
        r.termCountsStoreEpochs[c] =
            reg.getCounter(termStatName("core.termStore.", c));
    }
    r.mlpHist = reg.getHistogram("core.mlpHist");
    r.storeMlpHist = reg.getHistogram("core.storeMlpHist");
    r.storeVsOtherMlp = reg.getJoint("core.storeVsOtherMlp");
    return r;
}

void
SimResult::print(std::ostream &os) const
{
    os << "instructions        " << instructions << "\n"
       << "epochs              " << epochs << "\n"
       << "epochs/1000 inst    " << formatFixed(epochsPer1000(), 3) << "\n"
       << "MLP                 " << formatFixed(mlp(), 3) << "\n"
       << "store MLP           " << formatFixed(storeMlp(), 3) << "\n"
       << "miss loads /100     " << formatFixed(missLoadsPer100(), 3)
       << "\n"
       << "miss stores/100     " << formatFixed(missStoresPer100(), 3)
       << "\n"
       << "miss insts /100     " << formatFixed(missInstsPer100(), 3)
       << "\n"
       << "overlapped stores   " << formatFixed(overlappedStoreFraction(),
                                                3)
       << "\n"
       << "epoch misses        " << epochMisses << " (" << epochMissLoads
       << " ld / " << epochMissStores << " st / " << epochMissInsts
       << " if)\n";
    os << "terminations:\n";
    for (unsigned i = 0; i < kNumTermConds; ++i) {
        if (!termCounts[i])
            continue;
        os << "  " << termCondName(static_cast<TermCond>(i)) << "  "
           << termCounts[i] << " ("
           << formatFixed(termFraction(static_cast<TermCond>(i)) * 100.0,
                          1)
           << "%)\n";
    }
}

} // namespace storemlp
