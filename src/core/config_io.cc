/**
 * @file
 * Config/profile text serialization implementation.
 */

#include "core/config_io.hh"

#include <fstream>
#include <functional>
#include <istream>
#include <map>
#include <optional>
#include <ostream>
#include <sstream>

#include "util/parse.hh"

namespace storemlp
{

namespace
{

/** Trim leading/trailing whitespace. */
std::string
trim(const std::string &s)
{
    size_t b = s.find_first_not_of(" \t\r");
    if (b == std::string::npos)
        return "";
    size_t e = s.find_last_not_of(" \t\r");
    return s.substr(b, e - b + 1);
}

bool
parseBool(const std::string &v, const std::string &key)
{
    if (v == "true" || v == "1" || v == "on" || v == "yes")
        return true;
    if (v == "false" || v == "0" || v == "off" || v == "no")
        return false;
    throw ConfigParseError("bad boolean for '" + key + "': " + v);
}

uint64_t
parseU64(const std::string &v, const std::string &key)
{
    // parseU64Strict rejects signs, whitespace and trailing junk —
    // std::stoull would accept "-5" by wrapping it to 2^64-5.
    std::optional<uint64_t> r = parseU64Strict(v);
    if (!r)
        throw ConfigParseError("bad integer for '" + key + "': " + v);
    return *r;
}

double
parseDouble(const std::string &v, const std::string &key)
{
    try {
        size_t pos = 0;
        double r = std::stod(v, &pos);
        if (pos != v.size())
            throw std::invalid_argument(v);
        return r;
    } catch (const std::exception &) {
        throw ConfigParseError("bad number for '" + key + "': " + v);
    }
}

/** Iterate key=value lines, invoking the setter per pair. */
void
parseLines(std::istream &is,
           const std::function<void(const std::string &,
                                    const std::string &)> &set)
{
    std::string line;
    unsigned lineno = 0;
    while (std::getline(is, line)) {
        ++lineno;
        std::string t = trim(line);
        if (t.empty() || t[0] == '#')
            continue;
        size_t eq = t.find('=');
        if (eq == std::string::npos) {
            throw ConfigParseError("line " + std::to_string(lineno) +
                                   ": expected key = value");
        }
        std::string key = trim(t.substr(0, eq));
        std::string value = trim(t.substr(eq + 1));
        if (key.empty())
            throw ConfigParseError("line " + std::to_string(lineno) +
                                   ": empty key");
        set(key, value);
    }
}

} // namespace

SimConfig
loadSimConfig(std::istream &is)
{
    SimConfig c;
    parseLines(is, [&](const std::string &key, const std::string &v) {
        if (key == "name") {
            c.name = v;
        } else if (key == "fetchBufferSize") {
            c.fetchBufferSize = static_cast<uint32_t>(parseU64(v, key));
        } else if (key == "issueWindowSize") {
            c.issueWindowSize = static_cast<uint32_t>(parseU64(v, key));
        } else if (key == "robSize") {
            c.robSize = static_cast<uint32_t>(parseU64(v, key));
        } else if (key == "storeBufferSize") {
            c.storeBufferSize = static_cast<uint32_t>(parseU64(v, key));
        } else if (key == "storeQueueSize") {
            c.storeQueueSize = static_cast<uint32_t>(parseU64(v, key));
        } else if (key == "loadBufferSize") {
            c.loadBufferSize = static_cast<uint32_t>(parseU64(v, key));
        } else if (key == "storePrefetch") {
            if (v == "sp0" || v == "none")
                c.storePrefetch = StorePrefetch::None;
            else if (v == "sp1" || v == "retire")
                c.storePrefetch = StorePrefetch::AtRetire;
            else if (v == "sp2" || v == "execute")
                c.storePrefetch = StorePrefetch::AtExecute;
            else
                throw ConfigParseError("bad storePrefetch: " + v);
        } else if (key == "coalesceBytes") {
            c.coalesceBytes = static_cast<uint32_t>(parseU64(v, key));
        } else if (key == "infiniteStoreQueue") {
            c.infiniteStoreQueue = parseBool(v, key);
        } else if (key == "perfectStores") {
            c.perfectStores = parseBool(v, key);
        } else if (key == "model") {
            // Preset name or full key=val descriptor; parse throws
            // ConfigError (= ConfigParseError) on anything malformed.
            c.memoryModel = ModelDescriptor::parse(v);
        } else if (key == "memoryModel") {
            // Legacy two-model key, kept as an alias of the presets.
            const ModelDescriptor *p = nullptr;
            if (v == "pc" || v == "tso" || v == "wc")
                p = ModelDescriptor::findPreset(v);
            if (!p)
                throw ConfigParseError("bad memoryModel: " + v);
            c.memoryModel = *p;
        } else if (key == "sle") {
            c.sle = parseBool(v, key);
        } else if (key == "tmEnabled") {
            c.tm.enabled = parseBool(v, key);
        } else if (key == "tmAbortProb") {
            c.tm.abortProb = parseDouble(v, key);
        } else if (key == "tmAbortPenaltyCycles") {
            c.tm.abortPenaltyCycles = parseDouble(v, key);
        } else if (key == "prefetchPastSerializing") {
            c.prefetchPastSerializing = parseBool(v, key);
        } else if (key == "scout") {
            if (v == "off")
                c.scout = ScoutMode::Off;
            else if (v == "hws0")
                c.scout = ScoutMode::Hws0;
            else if (v == "hws1")
                c.scout = ScoutMode::Hws1;
            else if (v == "hws2")
                c.scout = ScoutMode::Hws2;
            else
                throw ConfigParseError("bad scout: " + v);
        } else if (key == "missLatency") {
            c.missLatency = static_cast<uint32_t>(parseU64(v, key));
        } else if (key == "cpiOnChip") {
            c.cpiOnChip = parseDouble(v, key);
        } else if (key == "mispredictPenalty") {
            c.mispredictPenalty = parseDouble(v, key);
        } else {
            throw ConfigParseError("unknown SimConfig key: " + key);
        }
    });
    return c;
}

SimConfig
loadSimConfigFile(const std::string &path)
{
    std::ifstream ifs(path);
    if (!ifs)
        throw ConfigParseError("cannot open: " + path);
    return loadSimConfig(ifs);
}

void
saveSimConfig(std::ostream &os, const SimConfig &c)
{
    const char *sp = c.storePrefetch == StorePrefetch::None ? "sp0"
        : c.storePrefetch == StorePrefetch::AtRetire ? "sp1" : "sp2";
    const char *scout = c.scout == ScoutMode::Off ? "off"
        : c.scout == ScoutMode::Hws0 ? "hws0"
        : c.scout == ScoutMode::Hws1 ? "hws1" : "hws2";
    os << "name = " << c.name << "\n"
       << "fetchBufferSize = " << c.fetchBufferSize << "\n"
       << "issueWindowSize = " << c.issueWindowSize << "\n"
       << "robSize = " << c.robSize << "\n"
       << "storeBufferSize = " << c.storeBufferSize << "\n"
       << "storeQueueSize = " << c.storeQueueSize << "\n"
       << "loadBufferSize = " << c.loadBufferSize << "\n"
       << "storePrefetch = " << sp << "\n"
       << "coalesceBytes = " << c.coalesceBytes << "\n"
       << "infiniteStoreQueue = "
       << (c.infiniteStoreQueue ? "true" : "false") << "\n"
       << "perfectStores = " << (c.perfectStores ? "true" : "false")
       << "\n"
       << "model = " << c.memoryModel.spec() << "\n"
       << "sle = " << (c.sle ? "true" : "false") << "\n"
       << "tmEnabled = " << (c.tm.enabled ? "true" : "false") << "\n"
       << "tmAbortProb = " << c.tm.abortProb << "\n"
       << "tmAbortPenaltyCycles = " << c.tm.abortPenaltyCycles << "\n"
       << "prefetchPastSerializing = "
       << (c.prefetchPastSerializing ? "true" : "false") << "\n"
       << "scout = " << scout << "\n"
       << "missLatency = " << c.missLatency << "\n"
       << "cpiOnChip = " << c.cpiOnChip << "\n"
       << "mispredictPenalty = " << c.mispredictPenalty << "\n";
}

WorkloadProfile
loadWorkloadProfile(std::istream &is)
{
    WorkloadProfile p;
    bool first = true;
    parseLines(is, [&](const std::string &key, const std::string &v) {
        if (key == "base") {
            if (!first) {
                throw ConfigParseError(
                    "'base' must be the first profile key");
            }
            if (v == "database")
                p = WorkloadProfile::database();
            else if (v == "tpcw")
                p = WorkloadProfile::tpcw();
            else if (v == "specjbb")
                p = WorkloadProfile::specjbb();
            else if (v == "specweb")
                p = WorkloadProfile::specweb();
            else if (v == "tiny")
                p = WorkloadProfile::testTiny();
            else
                throw ConfigParseError("bad base profile: " + v);
            first = false;
            return;
        }
        first = false;
        if (key == "name")
            p.name = v;
        else if (key == "loadFrac")
            p.loadFrac = parseDouble(v, key);
        else if (key == "storeFrac")
            p.storeFrac = parseDouble(v, key);
        else if (key == "branchFrac")
            p.branchFrac = parseDouble(v, key);
        else if (key == "loadColdProb")
            p.loadColdProb = parseDouble(v, key);
        else if (key == "loadBurstCont")
            p.loadBurstCont = parseDouble(v, key);
        else if (key == "storeColdProb")
            p.storeColdProb = parseDouble(v, key);
        else if (key == "storeBurstCont")
            p.storeBurstCont = parseDouble(v, key);
        else if (key == "coldStoresPerLine")
            p.coldStoresPerLine =
                static_cast<uint32_t>(parseU64(v, key));
        else if (key == "storeSpatialRun")
            p.storeSpatialRun = static_cast<uint32_t>(parseU64(v, key));
        else if (key == "storeRevisitFrac")
            p.storeRevisitFrac = parseDouble(v, key);
        else if (key == "flushPhaseProb")
            p.flushPhaseProb = parseDouble(v, key);
        else if (key == "flushLenMean")
            p.flushLenMean = static_cast<uint32_t>(parseU64(v, key));
        else if (key == "flushStoreFrac")
            p.flushStoreFrac = parseDouble(v, key);
        else if (key == "flushColdProb")
            p.flushColdProb = parseDouble(v, key);
        else if (key == "burstPhaseProb")
            p.burstPhaseProb = parseDouble(v, key);
        else if (key == "burstLenMean")
            p.burstLenMean = static_cast<uint32_t>(parseU64(v, key));
        else if (key == "burstStoreFrac")
            p.burstStoreFrac = parseDouble(v, key);
        else if (key == "burstColdProb")
            p.burstColdProb = parseDouble(v, key);
        else if (key == "instColdProb")
            p.instColdProb = parseDouble(v, key);
        else if (key == "instBurstCont")
            p.instBurstCont = parseDouble(v, key);
        else if (key == "hotDataBytes")
            p.hotDataBytes = parseU64(v, key);
        else if (key == "hotL1Frac")
            p.hotL1Frac = parseDouble(v, key);
        else if (key == "hotL1Bytes")
            p.hotL1Bytes = parseU64(v, key);
        else if (key == "hotCodeBytes")
            p.hotCodeBytes = parseU64(v, key);
        else if (key == "hotCodeWindowBytes")
            p.hotCodeWindowBytes = parseU64(v, key);
        else if (key == "hotCodeJumpProb")
            p.hotCodeJumpProb = parseDouble(v, key);
        else if (key == "storeMissRegionBytes")
            p.storeMissRegionBytes = parseU64(v, key);
        else if (key == "sharedStoreFrac")
            p.sharedStoreFrac = parseDouble(v, key);
        else if (key == "sharedStoreRegionBytes")
            p.sharedStoreRegionBytes = parseU64(v, key);
        else if (key == "sharedHotFrac")
            p.sharedHotFrac = parseDouble(v, key);
        else if (key == "sharedHotBytes")
            p.sharedHotBytes = parseU64(v, key);
        else if (key == "lockProb")
            p.lockProb = parseDouble(v, key);
        else if (key == "lockCount")
            p.lockCount = static_cast<uint32_t>(parseU64(v, key));
        else if (key == "csBodyLen")
            p.csBodyLen = static_cast<uint32_t>(parseU64(v, key));
        else if (key == "membarProb")
            p.membarProb = parseDouble(v, key);
        else if (key == "easyBranchFrac")
            p.easyBranchFrac = parseDouble(v, key);
        else if (key == "branchBias")
            p.branchBias = parseDouble(v, key);
        else if (key == "staticBranches")
            p.staticBranches = static_cast<uint32_t>(parseU64(v, key));
        else if (key == "branchDependsOnLoadProb")
            p.branchDependsOnLoadProb = parseDouble(v, key);
        else if (key == "depNearProb")
            p.depNearProb = parseDouble(v, key);
        else if (key == "cpiOnChip")
            p.cpiOnChip = parseDouble(v, key);
        else
            throw ConfigParseError("unknown profile key: " + key);
    });
    return p;
}

WorkloadProfile
loadWorkloadProfileFile(const std::string &path)
{
    std::ifstream ifs(path);
    if (!ifs)
        throw ConfigParseError("cannot open: " + path);
    return loadWorkloadProfile(ifs);
}

void
saveWorkloadProfile(std::ostream &os, const WorkloadProfile &p)
{
    os << "name = " << p.name << "\n"
       << "loadFrac = " << p.loadFrac << "\n"
       << "storeFrac = " << p.storeFrac << "\n"
       << "branchFrac = " << p.branchFrac << "\n"
       << "loadColdProb = " << p.loadColdProb << "\n"
       << "loadBurstCont = " << p.loadBurstCont << "\n"
       << "storeColdProb = " << p.storeColdProb << "\n"
       << "storeBurstCont = " << p.storeBurstCont << "\n"
       << "coldStoresPerLine = " << p.coldStoresPerLine << "\n"
       << "storeSpatialRun = " << p.storeSpatialRun << "\n"
       << "storeRevisitFrac = " << p.storeRevisitFrac << "\n"
       << "flushPhaseProb = " << p.flushPhaseProb << "\n"
       << "flushLenMean = " << p.flushLenMean << "\n"
       << "flushStoreFrac = " << p.flushStoreFrac << "\n"
       << "flushColdProb = " << p.flushColdProb << "\n"
       << "burstPhaseProb = " << p.burstPhaseProb << "\n"
       << "burstLenMean = " << p.burstLenMean << "\n"
       << "burstStoreFrac = " << p.burstStoreFrac << "\n"
       << "burstColdProb = " << p.burstColdProb << "\n"
       << "instColdProb = " << p.instColdProb << "\n"
       << "instBurstCont = " << p.instBurstCont << "\n"
       << "hotDataBytes = " << p.hotDataBytes << "\n"
       << "hotL1Frac = " << p.hotL1Frac << "\n"
       << "hotL1Bytes = " << p.hotL1Bytes << "\n"
       << "hotCodeBytes = " << p.hotCodeBytes << "\n"
       << "hotCodeWindowBytes = " << p.hotCodeWindowBytes << "\n"
       << "hotCodeJumpProb = " << p.hotCodeJumpProb << "\n"
       << "storeMissRegionBytes = " << p.storeMissRegionBytes << "\n"
       << "sharedStoreFrac = " << p.sharedStoreFrac << "\n"
       << "sharedStoreRegionBytes = " << p.sharedStoreRegionBytes
       << "\n"
       << "sharedHotFrac = " << p.sharedHotFrac << "\n"
       << "sharedHotBytes = " << p.sharedHotBytes << "\n"
       << "lockProb = " << p.lockProb << "\n"
       << "lockCount = " << p.lockCount << "\n"
       << "csBodyLen = " << p.csBodyLen << "\n"
       << "membarProb = " << p.membarProb << "\n"
       << "easyBranchFrac = " << p.easyBranchFrac << "\n"
       << "branchBias = " << p.branchBias << "\n"
       << "staticBranches = " << p.staticBranches << "\n"
       << "branchDependsOnLoadProb = " << p.branchDependsOnLoadProb
       << "\n"
       << "depNearProb = " << p.depNearProb << "\n"
       << "cpiOnChip = " << p.cpiOnChip << "\n";
}

} // namespace storemlp
