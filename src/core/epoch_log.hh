/**
 * @file
 * Per-epoch event trace (`--epoch-log`): one JSON-lines record per
 * *counted* epoch of the measured interval, carrying the per-epoch
 * miss counts by kind, the window-termination condition, and the
 * store-buffer occupancy at the stall. Operational memory-model
 * frameworks validate against exactly this kind of per-event
 * execution trace; here it also feeds timeline visualization.
 *
 * The writer is cheap enough to stay compiled in: when no sink is
 * configured the simulator's epoch-listener branch is never taken,
 * so the disabled cost is one predictable branch per counted epoch.
 */

#ifndef STOREMLP_CORE_EPOCH_LOG_HH
#define STOREMLP_CORE_EPOCH_LOG_HH

#include <cstdint>
#include <iosfwd>

namespace storemlp
{

struct EpochRecord;

/**
 * Streams EpochRecords as JSON lines:
 *
 *   {"epoch":0,"idx":612345,"cause":"StoreBufferFull","missLoads":1,
 *    "missStores":3,"missInsts":0,"sbOccupancy":16,
 *    "startCycle":123.5,"stallCycles":400}
 *
 * `epoch` is a running index within this writer's lifetime; `idx` is
 * the trace index that triggered the stall; `stallCycles` is
 * resolveCycle - startCycle. Lines share the run artifact's schema
 * version via the enclosing document's metadata (each line is
 * self-describing and versionless by design — see
 * docs/EXPERIMENTS_GUIDE.md).
 */
class EpochLogWriter
{
  public:
    explicit EpochLogWriter(std::ostream &os) : _os(os) {}

    void write(const EpochRecord &rec);

    uint64_t written() const { return _count; }

  private:
    std::ostream &_os;
    uint64_t _count = 0;
};

} // namespace storemlp

#endif // STOREMLP_CORE_EPOCH_LOG_HH
