/**
 * @file
 * Experiment runner implementation.
 */

#include "core/runner.hh"

#include <memory>
#include <sstream>
#include <vector>

#include "coherence/bus.hh"
#include "coherence/chip.hh"
#include "coherence/traffic.hh"
#include "core/epoch_log.hh"
#include "core/mlp_sim.hh"
#include "trace/generator.hh"
#include "trace/lock_detector.hh"
#include "trace/rewriter.hh"

namespace storemlp
{

double
RunOutput::smacInvalidatesPer1000() const
{
    return sim.instructions
        ? 1000.0 * static_cast<double>(smacCoherenceInvalidates) /
              static_cast<double>(sim.instructions)
        : 0.0;
}

double
RunOutput::smacHitInvalidPct() const
{
    uint64_t denom = chipStoreMisses ? chipStoreMisses : sim.missStores;
    return denom
        ? 100.0 * static_cast<double>(smacProbeHitInvalidated) /
              static_cast<double>(denom)
        : 0.0;
}

Trace
Runner::buildTrace(const RunSpec &spec)
{
    SyntheticTraceGenerator gen(spec.profile, spec.seed, 0);
    Trace trace = gen.generate(spec.warmupInsts + spec.measureInsts);

    // The paper simulates weak consistency by rewriting the PC trace's
    // lock idioms (Section 4.2); any Power-dialect model gets the
    // same rewrite.
    if (spec.config.memoryModel.wcTraceRewrite()) {
        TraceRewriter rewriter;
        trace = rewriter.toWeakConsistency(trace);
    }
    return trace;
}

std::string
Runner::traceCacheKey(const RunSpec &spec)
{
    std::ostringstream os;
    os << spec.profile.cacheKey() << "|seed=" << spec.seed
       << "|n=" << (spec.warmupInsts + spec.measureInsts) << "|wc="
       << spec.config.memoryModel.wcTraceRewrite() << "|chip=0";
    return os.str();
}

std::unique_ptr<TraceSource>
Runner::makeSource(const RunSpec &spec, uint64_t chunk_insts,
                   TraceCache *chunk_cache)
{
    std::unique_ptr<TraceSource> src = std::make_unique<GeneratorSource>(
        spec.profile, spec.seed,
        spec.warmupInsts + spec.measureInsts, 0, chunk_insts);
    if (spec.config.memoryModel.wcTraceRewrite())
        src = std::make_unique<WcRewriteSource>(std::move(src));
    if (chunk_cache) {
        std::string key = traceCacheKey(spec) +
            "|chunk=" + std::to_string(src->chunkInsts());
        src = std::make_unique<CachedSource>(std::move(src),
                                             *chunk_cache,
                                             std::move(key));
    }
    return src;
}

RunOutput
Runner::run(const RunSpec &spec, TraceSource &source)
{
    // Lock analysis feeds SLE/TM only; the simulator never reads it
    // otherwise, so skip the extra pass (and its one-byte-per-record
    // roles vector) unless those optimizations are on.
    std::optional<LockAnalysis> locks;
    if (spec.config.sle || spec.config.tm.enabled)
        locks = analyzeSource(source);

    // ---- build the machine ----
    HierarchyConfig hier_cfg = spec.hierarchy.value_or(HierarchyConfig{});
    SnoopBus bus;
    std::vector<std::unique_ptr<ChipNode>> chips;
    for (uint32_t c = 0; c < spec.numChips; ++c) {
        chips.push_back(std::make_unique<ChipNode>(
            hier_cfg, c, spec.smac, spec.protocol));
        if (spec.numChips > 1)
            chips.back()->connect(&bus);
    }
    ChipNode &local = *chips.front();

    std::vector<std::unique_ptr<PeerTrafficAgent>> peers;
    if (spec.peerTraffic) {
        for (uint32_t c = 1; c < spec.numChips; ++c) {
            peers.push_back(std::make_unique<PeerTrafficAgent>(
                spec.profile, spec.seed + 1000 + c, *chips[c]));
        }
    }
    if (spec.siblingCore) {
        // The second core of the measured chip (paper Section 4.3:
        // "two single-threaded cores sharing an L2 cache").
        peers.push_back(std::make_unique<PeerTrafficAgent>(
            spec.profile, spec.seed + 77, local,
            static_cast<int>(spec.numChips) + 1));
    }

    if (spec.prefillL2) {
        // Fill each L2 with clean placeholder lines from a reserved
        // region so real traffic immediately contends for capacity.
        constexpr uint64_t kPrefillBase = 0xF00000000000ULL;
        constexpr uint64_t kPrefillStride = 0x001000000000ULL;
        for (uint32_t c = 0; c < spec.numChips; ++c) {
            SetAssocCache &l2 = chips[c]->hierarchy().l2();
            uint64_t lines =
                l2.config().sizeBytes / l2.config().lineBytes;
            uint64_t base = kPrefillBase + c * kPrefillStride;
            for (uint64_t i = 0; i < lines; ++i)
                l2.access(base + i * l2.config().lineBytes, false);
        }
    }

    SimConfig cfg = spec.config;
    cfg.cpiOnChip = spec.profile.cpiOnChip;

    MlpSimulator sim(cfg, local, locks ? &*locks : nullptr);
    std::optional<EpochLogWriter> epoch_log;
    if (spec.epochLog) {
        epoch_log.emplace(*spec.epochLog);
        sim.setEpochListener([&epoch_log](const EpochRecord &rec) {
            epoch_log->write(rec);
        });
    }
    if (!peers.empty()) {
        sim.setPeerHook([&peers](uint64_t delta) {
            for (auto &p : peers)
                p->step(delta);
        });
    }

    // ---- warm, reset, measure ----
    TraceCursor cur(source);
    sim.process(cur, 0, spec.warmupInsts, false);
    uint64_t warmup_end = sim.position(); // min(warmup, stream length)
    local.resetStats();
    bus.resetStats();

    sim.process(cur, warmup_end, ~uint64_t{0}, true);
    uint64_t end_idx = sim.position();
    RunOutput out;
    out.sim = sim.takeResult();

    // ---- Table 1 style rates over the measured records ----
    uint64_t stores = 0;
    uint64_t measured =
        forEachRecord(source, warmup_end, end_idx,
                      [&](const TraceRecord &r) {
                          if (isStoreClass(r.cls))
                              ++stores;
                      });
    if (measured) {
        double n = static_cast<double>(measured);
        out.storesPer100 = 100.0 * static_cast<double>(stores) / n;
        out.storeMissPer100 = 100.0 *
            static_cast<double>(local.hierarchy().storeL2Misses()) / n;
        out.loadMissPer100 = 100.0 *
            static_cast<double>(local.hierarchy().loadL2Misses()) / n;
        out.instMissPer100 = 100.0 *
            static_cast<double>(local.hierarchy().instL2Misses()) / n;
    }
    out.l2Accesses = local.hierarchy().l2Accesses();
    if (measured) {
        out.tlbMissPer100 = 100.0 *
            static_cast<double>(local.tlb().misses()) /
            static_cast<double>(measured);
    }

    out.chipStoreMisses = local.hierarchy().storeL2Misses();
    if (const Smac *smac = local.smac()) {
        out.smacCoherenceInvalidates = smac->coherenceInvalidates();
        out.smacProbeHits = smac->probeHits();
        out.smacProbeHitInvalidated = smac->probeHitInvalidated();
    }
    for (auto &p : peers)
        out.peerInstructions += p->instructionsRetired();

    local.hierarchy().exportStats(out.machine);
    if (spec.numChips > 1)
        bus.exportStats(out.machine);
    if (const Smac *smac = local.smac())
        smac->exportStats(out.machine);
    return out;
}

void
RunOutput::exportStats(StatsRegistry &reg) const
{
    sim.exportStats(reg);

    reg.scalar("run.storesPer100", storesPer100);
    reg.scalar("run.storeMissPer100", storeMissPer100);
    reg.scalar("run.loadMissPer100", loadMissPer100);
    reg.scalar("run.instMissPer100", instMissPer100);
    reg.scalar("run.tlbMissPer100", tlbMissPer100);
    reg.counter("run.l2Accesses", l2Accesses);
    reg.counter("run.peerInstructions", peerInstructions);
    reg.counter("chip.storeMisses", chipStoreMisses);
    reg.counter("chip.smacCoherenceInvalidates", smacCoherenceInvalidates);
    reg.counter("chip.smacProbeHits", smacProbeHits);
    reg.counter("chip.smacProbeHitInvalidated", smacProbeHitInvalidated);
    reg.scalar("derived.smacInvalidatesPer1000", smacInvalidatesPer1000());
    reg.scalar("derived.smacHitInvalidPct", smacHitInvalidPct());

    reg.mergeFrom(machine);
}

Runner::MissRates
Runner::measureMissRates(const WorkloadProfile &profile, uint64_t seed,
                         uint64_t warmup_insts, uint64_t measure_insts)
{
    SyntheticTraceGenerator gen(profile, seed, 0);
    return measureMissRates(gen.generate(warmup_insts + measure_insts),
                            warmup_insts);
}

Runner::MissRates
Runner::measureMissRates(const Trace &trace, uint64_t warmup_insts)
{
    CacheHierarchy hier;
    uint64_t stores = 0;

    auto access = [&](const TraceRecord &r) {
        hier.instFetch(r.pc);
        if (isLoadClass(r.cls))
            hier.load(r.addr);
        if (isStoreClass(r.cls))
            hier.store(r.addr);
    };

    uint64_t warmup_end = std::min<uint64_t>(warmup_insts, trace.size());
    for (uint64_t i = 0; i < warmup_end; ++i)
        access(trace[i]);
    hier.resetStats();

    for (uint64_t i = warmup_end; i < trace.size(); ++i) {
        access(trace[i]);
        if (isStoreClass(trace[i].cls))
            ++stores;
    }

    MissRates rates;
    uint64_t measured = trace.size() - warmup_end;
    if (!measured)
        return rates;
    double n = static_cast<double>(measured);
    rates.storesPer100 = 100.0 * static_cast<double>(stores) / n;
    rates.storeMissPer100 =
        100.0 * static_cast<double>(hier.storeL2Misses()) / n;
    rates.loadMissPer100 =
        100.0 * static_cast<double>(hier.loadL2Misses()) / n;
    rates.instMissPer100 =
        100.0 * static_cast<double>(hier.instL2Misses()) / n;
    return rates;
}

} // namespace storemlp
