/**
 * @file
 * MLPsim epoch engine implementation. See mlp_sim.hh for the time
 * model and scout.cc for the lookahead engines.
 */

#include "core/mlp_sim.hh"

#include <algorithm>
#include <cassert>
#include <stdexcept>

namespace storemlp
{

namespace
{
constexpr size_t kInfiniteSq = 1u << 20;
} // namespace

MlpSimulator::MlpSimulator(const SimConfig &config, ChipNode &chip,
                           const LockAnalysis *locks)
    : _cfg(config), _chip(chip), _sle(locks, config.sle),
      _tm(locks, config.tm), _sb(config.storeBufferSize),
      _sq(config.infiniteStoreQueue ? kInfiniteSq : config.storeQueueSize,
          config.coalesceBytes, config.memoryModel.coalesce)
{
    if ((_cfg.sle || _cfg.tm.enabled) && !locks) {
        throw std::invalid_argument(
            "MlpSimulator: SLE/TM require a LockAnalysis of the trace");
    }
    if (_cfg.sle && _cfg.tm.enabled) {
        throw std::invalid_argument(
            "MlpSimulator: SLE and transactional memory are mutually "
            "exclusive");
    }
    for (size_t c = 0; c < static_cast<size_t>(InstClass::NumClasses);
         ++c) {
        ClassPlan &p = _plan[c];
        p.eff = _cfg.memoryModel.effectOf(static_cast<InstClass>(c));
        p.serializing = p.eff.pipelineDrain || p.eff.storeDrain;
        p.isStore = isStoreClass(static_cast<InstClass>(c));
    }
    _elisionActive = _cfg.sle || _tm.enabled();
    _rob.reset(_cfg.robSize);
}

bool
MlpSimulator::elidedAt(uint64_t idx)
{
    if (_cfg.sle && _sle.peekElided(idx))
        return true;
    return _tm.enabled() && _tm.peekElided(idx);
}

Sle::Action
MlpSimulator::elideAction(uint64_t idx)
{
    if (_cfg.sle)
        return _sle.classify(idx);
    if (_tm.enabled()) {
        switch (_tm.classify(idx)) {
          case TransactionalMemory::Action::AcquireAsLoad:
            return Sle::Action::AcquireAsLoad;
          case TransactionalMemory::Action::Nop:
            return Sle::Action::Nop;
          default:
            break;
        }
    }
    return Sle::Action::Normal;
}

void
MlpSimulator::setPeerHook(std::function<void(uint64_t)> hook)
{
    _peerHook = std::move(hook);
    _peerActive = static_cast<bool>(_peerHook);
}

void
MlpSimulator::setEpochListener(EpochListener listener)
{
    _epochListener = std::move(listener);
}

void
MlpSimulator::peerTick()
{
    if (++_peerPending >= kPeerQuantum) {
        _peerHook(_peerPending);
        _peerPending = 0;
    }
}

bool
MlpSimulator::poisoned(uint8_t src1, uint8_t src2) const
{
    return _poison.anyPoisoned(src1, src2);
}

// ---------------------------------------------------------------------
// Epoch machinery
// ---------------------------------------------------------------------

void
MlpSimulator::onMiss(MissKind kind)
{
    if (!_gen.open) {
        _gen = Generation{};
        _gen.open = true;
        _gen.startCycle = _cycle;
        _gen.resolveCycle = _cycle + _cfg.missLatency;
    }
    switch (kind) {
      case MissKind::Load: ++_gen.loads; break;
      case MissKind::Store: ++_gen.stores; break;
      case MissKind::Inst: ++_gen.insts; break;
    }
}

void
MlpSimulator::resolveGeneration()
{
    _gen.open = false;
    _inflightLines.clear();
    _poison.clearAll();

    // Store queue: in-flight misses have arrived.
    for (auto &e : _sq.entries()) {
        if (e.classified && e.missing)
            e.missing = false;
    }

    // ROB: waiting loads complete; deferred work replays in order.
    _rob.forEach([this](RobEntry &e) {
        if (e.state == RobState::WaitMiss) {
            e.state = RobState::Done;
            if (_waitLoadCount)
                --_waitLoadCount;
        }
    });
    _rob.forEach([this](RobEntry &e) {
        if (e.state == RobState::Deferred) {
            assert(_deferredCount);
            --_deferredCount;
            executeEntry(e, true);
        }
    });

    drainPipeline();
}

void
MlpSimulator::checkQuietResolve()
{
    if (_gen.open && _cycle >= _gen.resolveCycle) {
        // The processor never stalled while these misses were in
        // flight: no epoch. Store misses were fully overlapped with
        // computation (Table 2).
        if (_collect)
            _res.overlappedStores += _gen.stores;
        resolveGeneration();
    }
}

void
MlpSimulator::terminate(TraceCursor &cur, TermCond cond)
{
    if (!_gen.open)
        return;

    if (_cfg.scout != ScoutMode::Off && scoutEligible(cond)) {
        runScout(cur);
    } else if (_cfg.prefetchPastSerializing &&
               (cond == TermCond::StoreSerialize ||
                cond == TermCond::OtherSerialize)) {
        runSerializeLookahead(cur);
    }

    if (_collect) {
        ++_res.epochs;
        ++_res.termCounts[static_cast<unsigned>(cond)];
        if (_gen.stores)
            ++_res.termCountsStoreEpochs[static_cast<unsigned>(cond)];
        uint64_t total = _gen.total();
        _res.epochMisses += total;
        _res.epochMissLoads += _gen.loads;
        _res.epochMissStores += _gen.stores;
        _res.epochMissInsts += _gen.insts;
        _res.mlpHist.sample(total);
        if (_gen.stores)
            _res.storeMlpHist.sample(_gen.stores);
        _res.storeVsOtherMlp.sample(_gen.stores, _gen.loads + _gen.insts);

        if (_epochListener) {
            EpochRecord rec;
            rec.triggerIdx = _i;
            rec.startCycle = _gen.startCycle;
            rec.resolveCycle = _gen.resolveCycle;
            rec.cause = cond;
            rec.loads = static_cast<uint32_t>(_gen.loads);
            rec.stores = static_cast<uint32_t>(_gen.stores);
            rec.insts = static_cast<uint32_t>(_gen.insts);
            rec.sbOccupancy = static_cast<uint32_t>(_sb.size());
            _epochListener(rec);
        }
    }

    _cycle = std::max(_cycle, _gen.resolveCycle);
    resolveGeneration();
}

TermCond
MlpSimulator::classifyWindowBlock() const
{
    if (!_rob.empty()) {
        const RobEntry &h = _rob.front();
        if (h.state == RobState::Done && h.isStore && _sq.full())
            return TermCond::SqWindowFull;
    }
    return TermCond::WindowFull;
}

// ---------------------------------------------------------------------
// Store commit path
// ---------------------------------------------------------------------

void
MlpSimulator::classifyEntry(SqEntry &e)
{
    e.classified = true;

    if (_cfg.perfectStores) {
        // Perform the access so cache contents stay comparable, but
        // never let the store stall anything.
        _chip.store(e.granule);
        if (_collect)
            ++_res.l2StoreAccesses;
        e.missing = false;
        return;
    }

    if (_inflightLines.count(e.line)) {
        // Backed by an outstanding prefetch/miss of this generation;
        // commits when the generation resolves. Not a new miss.
        e.missing = true;
        return;
    }

    ChipNode::StoreOutcome out = _chip.store(e.granule);
    if (_collect)
        ++_res.l2StoreAccesses;

    if (out.level != MissLevel::OffChip) {
        e.missing = false;
        return;
    }

    if (_collect)
        ++_res.missStores;

    if (out.smacHit) {
        // Ownership was retained on-chip: the store leaves the queue
        // without waiting (single-chip semantics, Section 3.3.3).
        e.missing = false;
        if (_collect) {
            ++_res.smacAcceleratedStores;
            ++_res.overlappedStores;
        }
        return;
    }

    e.missing = true;
    onMiss(MissKind::Store);
    _inflightLines.insert(e.line);
}

void
MlpSimulator::commitStores()
{
    if (_cfg.memoryModel.inOrderCommit()) {
        // PC: strictly head-first. A missing head blocks the queue.
        while (!_sq.empty()) {
            SqEntry &h = _sq.head();
            if (!h.classified)
                classifyEntry(h);
            if (h.missing) {
                if (_gen.open)
                    break; // waiting for the epoch to resolve
                h.missing = false; // resolved earlier
            }
            _sq.popHead();
        }
        return;
    }

    // WC: hits commit from any position within the oldest fence epoch;
    // the oldest entry may issue a demand miss; younger misses wait
    // for store prefetching to overlap them.
    bool progress = true;
    while (progress && !_sq.empty()) {
        progress = false;
        uint32_t fence = _sq.head().fenceSeq;
        auto &entries = _sq.entries();
        for (size_t pos = 0; pos < entries.size();) {
            SqEntry &e = entries[pos];
            if (e.fenceSeq != fence)
                break;
            if (!e.classified) {
                bool probe_hit = _chip.hierarchy().l2Probe(e.line) ||
                    _inflightLines.count(e.line);
                if (probe_hit || pos == 0)
                    classifyEntry(e);
            }
            if (e.classified && e.missing && !_gen.open)
                e.missing = false; // resolved earlier
            if (e.classified && !e.missing) {
                _sq.erase(pos);
                progress = true;
                continue; // same pos now holds the next entry
            }
            ++pos;
        }
    }
}

void
MlpSimulator::retireStoreIntoSq(RobEntry &rob_entry)
{
    assert(!_sb.empty());
    SbEntry sb = _sb.head();
    assert(sb.instIdx == rob_entry.idx);
    _sb.popHead();

    uint64_t line = sb.line;
    bool coalesced = _sq.insert(sb.addr, line, sb.instIdx, _fenceSeq,
                                sb.release);
    if (_collect) {
        ++_res.sqInserts;
        if (coalesced)
            ++_res.coalescedStores;
    }

    // Prefetch-at-retire: issue a prefetch-for-write for stores that
    // land behind the head (the head issues its own demand access) and
    // were not coalesced away (Section 3.3.2).
    if (!coalesced && !_cfg.perfectStores &&
        _cfg.storePrefetch == StorePrefetch::AtRetire && _sq.size() > 1 &&
        !_inflightLines.count(line)) {
        bool present = _chip.prefetchLine(line, true);
        if (_collect)
            ++_res.storePrefetchesIssued;
        if (!present) {
            if (_collect)
                ++_res.missStores;
            onMiss(MissKind::Store);
            _inflightLines.insert(line);
            // Mark the new entry so the head classification treats it
            // as in flight rather than re-accessing.
            _sq.entries().back().prefetched = true;
        }
    }
}

// ---------------------------------------------------------------------
// Retirement
// ---------------------------------------------------------------------

void
MlpSimulator::drainPipeline()
{
    bool progress = true;
    while (progress) {
        progress = false;
        commitStores();
        while (!_rob.empty()) {
            RobEntry &e = _rob.front();
            if (e.state != RobState::Done)
                break; // retirement blocked by a miss / deferral
            if (e.isStore) {
                if (_sq.full())
                    break; // retirement stalls on a full store queue
                retireStoreIntoSq(e);
            }
            _rob.pop_front();
            progress = true;
        }
    }
}

// ---------------------------------------------------------------------
// Execution
// ---------------------------------------------------------------------

void
MlpSimulator::executeEntry(RobEntry &e, bool replay)
{
    switch (e.cls) {
      case InstClass::Alu:
      case InstClass::Membar:
      case InstClass::Isync:
      case InstClass::Lwsync:
        if (poisoned(e.src1, e.src2)) {
            e.state = RobState::Deferred;
            ++_deferredCount;
            _poison.set(e.dst);
        } else {
            e.state = RobState::Done;
            _poison.clear(e.dst);
        }
        break;

      case InstClass::Branch:
        if (poisoned(e.src1, e.src2)) {
            e.state = RobState::Deferred;
            ++_deferredCount;
        } else {
            if (replay && e.mispredCounted)
                _cycle += _cfg.mispredictPenalty;
            e.state = RobState::Done;
        }
        break;

      case InstClass::Load:
      case InstClass::LoadLocked:
      case InstClass::AtomicCas: {
        if (poisoned(e.src1, 0)) {
            // Address not computable yet.
            e.state = RobState::Deferred;
            ++_deferredCount;
            _poison.set(e.dst);
            break;
        }
        ChipNode::LoadOutcome out = _chip.load(e.addr);
        uint64_t line = lineOf(e.addr);
        if (out.level == MissLevel::OffChip) {
            if (_collect)
                ++_res.missLoads;
            onMiss(MissKind::Load);
            _inflightLines.insert(line);
            e.state = RobState::WaitMiss;
            ++_waitLoadCount;
            _poison.set(e.dst);
        } else if (!_inflightLines.empty() && _inflightLines.count(line)) {
            // Hit-under-miss: the line is still in flight.
            e.state = RobState::WaitMiss;
            ++_waitLoadCount;
            _poison.set(e.dst);
        } else {
            e.state = RobState::Done;
            _poison.clear(e.dst);
        }
        // casa also carries a store half (handled via the SB entry
        // pushed at dispatch); its data is the loaded value.
        break;
      }

      case InstClass::Store:
      case InstClass::StoreCond: {
        bool addr_ready = !_poison.test(e.src1);
        bool data_ready = !_poison.test(e.src2);
        if (!addr_ready || !data_ready) {
            e.state = RobState::Deferred;
            ++_deferredCount;
        } else {
            e.state = RobState::Done;
        }
        // Track address availability in the store buffer and fire the
        // prefetch-at-execute hook as soon as the address is known.
        // Reverse scan: instIdx values are unique and the dispatch-time
        // call always matches the newest entry, making it O(1).
        auto &sb_entries = _sb.entries();
        for (auto it = sb_entries.rbegin(); it != sb_entries.rend(); ++it) {
            auto &sb = *it;
            if (sb.instIdx != e.idx)
                continue;
            if (addr_ready && !sb.addrReady) {
                sb.addrReady = true;
                if (!_cfg.perfectStores && !sb.prefetched &&
                    _cfg.storePrefetch == StorePrefetch::AtExecute &&
                    !_inflightLines.count(sb.line)) {
                    bool present = _chip.prefetchLine(sb.line, true);
                    if (_collect)
                        ++_res.storePrefetchesIssued;
                    if (!present) {
                        if (_collect)
                            ++_res.missStores;
                        onMiss(MissKind::Store);
                        _inflightLines.insert(sb.line);
                    }
                    sb.prefetched = true;
                }
            }
            break;
        }
        break;
      }

      default:
        e.state = RobState::Done;
        break;
    }
}

// ---------------------------------------------------------------------
// Serializing instructions
// ---------------------------------------------------------------------

bool
MlpSimulator::handleSerializing(TraceCursor &cur, SerializeEffect eff)
{
    auto ready = [&]() {
        if (eff.pipelineDrain && !_rob.empty())
            return false;
        if (eff.storeDrain && (!_sb.empty() || !_sq.empty()))
            return false;
        return true;
    };

    if (ready())
        return true;
    drainPipeline();
    if (ready())
        return true;

    if (_gen.open) {
        if (_collect)
            ++_res.serializeStalls;
        TermCond cond = _gen.loads > 0 ? TermCond::OtherSerialize
                                       : TermCond::StoreSerialize;
        terminate(cur, cond);
        return false; // retry this instruction
    }

    // No miss outstanding: only completed work is in the way (e.g. hit
    // stores draining). drainPipeline()+commitStores() above either
    // cleared it or classified a missing store (opening a generation);
    // in the latter case the next retry terminates. Retry either way.
    return false;
}

// ---------------------------------------------------------------------
// Dispatch / main loop
// ---------------------------------------------------------------------

void
MlpSimulator::dispatch(TraceCursor &cur, uint64_t pc, uint64_t addr,
                       InstClass cls, uint32_t meta)
{
    _cycle += _cfg.cpiOnChip;
    if (_collect) {
        ++_res.instructions;
        _res.onChipCycles += _cfg.cpiOnChip;
    }

    uint8_t dst = meta & 0xff;
    uint8_t src1 = (meta >> 8) & 0xff;
    uint8_t src2 = (meta >> 16) & 0xff;
    uint8_t flags = meta >> 24;

    if (_elisionActive) {
        Sle::Action act = elideAction(_i);
        if (_tm.enabled() && _tm.abortsAt(_i)) {
            // Aborted transaction: roll back and retry with the lock
            // held (the instruction then executes on the locked path).
            _cycle += _tm.abortPenalty();
            if (_collect)
                ++_res.tmAborts;
        }
        if (act == Sle::Action::Nop) {
            // Elided release store / acquire auxiliary / fence: retires
            // as a NOP with no memory or serialization effect.
            if (_collect && _sle.enabled())
                _res.elidedLocks = _sle.elidedAcquires();
            return;
        }
        if (act == Sle::Action::AcquireAsLoad) {
            cls = InstClass::Load; // casa/lwarx becomes a regular load
            if (_collect)
                _res.elidedLocks = _sle.elidedAcquires();
        }
    }

    if (cls == InstClass::Lwsync) {
        ++_fenceSeq;
        return;
    }

    RobEntry e;
    e.idx = _i;
    e.addr = addr;
    e.cls = cls;
    e.dst = dst;
    e.src1 = src1;
    e.src2 = src2;
    e.isStore = isStoreClass(cls);
    e.release = (flags & kFlagLockRelease) != 0;

    if (cls == InstClass::Branch) {
        if (_collect)
            ++_res.branches;
        bool correct = _bp.predictAndUpdate(pc, (flags & kFlagTaken) != 0);
        if (!correct && _collect)
            ++_res.branchMispredicts;
        if (poisoned(src1, src2)) {
            e.state = RobState::Deferred;
            ++_deferredCount;
            e.mispredCounted = !correct;
            _rob.push_back(e);
            if (!correct) {
                // Unresolvable misprediction: the window ends here.
                terminate(cur, TermCond::MispredBranch);
            }
            return;
        }
        if (!correct)
            _cycle += _cfg.mispredictPenalty;
        e.state = RobState::Done;
        // A resolved branch at the ROB head would retire immediately
        // in drainPipeline with no side effects; skip the round trip.
        if (!_rob.empty())
            _rob.push_back(e);
        return;
    }

    if (e.isStore) {
        bool addr_ready = !_poison.test(src1);
        SbEntry &sb = _sb.push(addr, lineOf(addr), _i, addr_ready,
                               e.release);
        if (addr_ready && !_cfg.perfectStores &&
            _cfg.storePrefetch == StorePrefetch::AtExecute &&
            cls != InstClass::AtomicCas &&
            !_inflightLines.count(sb.line)) {
            bool present = _chip.prefetchLine(sb.line, true);
            if (_collect)
                ++_res.storePrefetchesIssued;
            if (!present) {
                if (_collect)
                    ++_res.missStores;
                onMiss(MissKind::Store);
                _inflightLines.insert(sb.line);
            }
            sb.prefetched = true;
        }
    }

    executeEntry(e, false);
    // Same immediate-retire shortcut: a Done non-store entering an
    // empty ROB is popped by the very next drainPipeline with no
    // observable effect (commitStores is idempotent at fixpoint).
    if (e.state == RobState::Done && !e.isStore && _rob.empty())
        return;
    _rob.push_back(e);
}

bool
MlpSimulator::stepOne(TraceCursor &cur)
{
    const TraceCursor::LaneView *v = cur.view(_i);
    if (!v)
        return false; // end of stream

    if (_gen.open)
        checkQuietResolve();

    // Linear lane reads: pc/addr/cls/meta for this record. Copied to
    // locals up front — terminate() may run the scout, which slides
    // the cursor's lane window forward.
    uint64_t off = _i - v->first;
    uint64_t pc = v->pc[off];
    uint64_t addr = v->addr[off];
    uint32_t meta = v->meta[off];
    InstClass cls = static_cast<InstClass>(v->cls[off]);
    const ClassPlan &plan = _plan[v->cls[off]];

    // ---- fetch ----
    if (!_skipFetch) {
        MissLevel lvl = _chip.instFetch(pc);
        if (lvl == MissLevel::OffChip) {
            if (_collect)
                ++_res.missInsts;
            onMiss(MissKind::Inst);
            _inflightLines.insert(lineOf(pc));
            _skipFetch = true; // resume here after the stall
            terminate(cur, TermCond::InstructionMiss);
            return true;
        }
    }

    // ---- quiet-machine fast path ----
    // With no generation open, an empty ROB/SQ (which implies an empty
    // SB and zero deferred/waiting counts), no poison, and elision off,
    // an Alu, Branch, or hitting Load reduces to: pay the on-chip CPI,
    // touch the predictor/cache, retire immediately. The general path
    // below provably does nothing else in this state — the window
    // cannot be blocked, the entry would retire from an empty ROB on
    // the spot, and the tail drain is skipped — so the shortcut is
    // bit-identical while skipping entry construction and executeEntry.
    if (!_gen.open && !_elisionActive && _rob.empty() && _sq.empty() &&
        _poison.empty() &&
        (cls == InstClass::Alu || cls == InstClass::Branch ||
         cls == InstClass::Load)) {
        _cycle += _cfg.cpiOnChip;
        if (_collect) {
            ++_res.instructions;
            _res.onChipCycles += _cfg.cpiOnChip;
        }
        if (cls == InstClass::Branch) {
            if (_collect)
                ++_res.branches;
            bool correct =
                _bp.predictAndUpdate(pc, (meta >> 24) & kFlagTaken);
            if (!correct) {
                if (_collect)
                    ++_res.branchMispredicts;
                _cycle += _cfg.mispredictPenalty;
            }
        } else if (cls == InstClass::Load) {
            ChipNode::LoadOutcome out = _chip.load(addr);
            if (out.level == MissLevel::OffChip) {
                // Miss: same effects as executeEntry's load-miss arm,
                // and the entry does enter the (empty) ROB.
                if (_collect)
                    ++_res.missLoads;
                onMiss(MissKind::Load);
                _inflightLines.insert(lineOf(addr));
                RobEntry e;
                e.idx = _i;
                e.addr = addr;
                e.cls = cls;
                e.dst = meta & 0xff;
                e.src1 = (meta >> 8) & 0xff;
                e.src2 = (meta >> 16) & 0xff;
                e.release = ((meta >> 24) & kFlagLockRelease) != 0;
                e.state = RobState::WaitMiss;
                ++_waitLoadCount;
                _poison.set(e.dst);
                _rob.push_back(e);
            }
        }
        ++_i;
        _skipFetch = false;
        notePeerProgress();
        return true;
    }

    // ---- serializing instructions: pre-execution barrier ----
    // SLE removes the serializing semantics of elided lock sequences.
    if (plan.serializing && !elidedAt(_i)) {
        if (!handleSerializing(cur, plan.eff))
            return true; // retry after the stall / drain progress
    }

    // ---- dispatch resource checks ----
    // Elided stores never enter the store buffer.
    bool needs_sb = plan.isStore && !(_elisionActive && elidedAt(_i));
    auto window_blocked = [&] {
        return _rob.size() >= _cfg.robSize ||
            _deferredCount >= _cfg.issueWindowSize ||
            _waitLoadCount >= _cfg.loadBufferSize;
    };
    if (window_blocked() || (needs_sb && _sb.full())) {
        drainPipeline();
        if (window_blocked()) {
            if (!_gen.open) {
                throw std::logic_error(
                    "MlpSimulator: window blocked without an open "
                    "generation");
            }
            terminate(cur, classifyWindowBlock());
            return true;
        }
        if (needs_sb && _sb.full()) {
            if (!_gen.open) {
                throw std::logic_error(
                    "MlpSimulator: store buffer blocked without an "
                    "open generation");
            }
            terminate(cur, _sq.full() ? TermCond::SqStoreBufferFull
                                      : TermCond::StoreBufferFull);
            return true;
        }
    }

    // ---- dispatch ----
    dispatch(cur, pc, addr, cls, meta);
    ++_i;
    _skipFetch = false;
    notePeerProgress();
    // drainPipeline is a provable no-op unless the ROB head is
    // retirable or the store-queue head can commit; skip it then. (An
    // empty ROB implies an empty store buffer: every SB entry is owned
    // by a ROB store.) Under WC, commitStores can classify mid-queue
    // entries via L2 probes, so run it whenever the queue is nonempty.
    bool rob_can = !_rob.empty() &&
        _rob.front().state == RobState::Done &&
        (!_rob.front().isStore || !_sq.full());
    bool sq_can = false;
    if (!_sq.empty()) {
        if (_cfg.memoryModel.inOrderCommit()) {
            const SqEntry &h = _sq.head();
            sq_can = !(h.classified && h.missing && _gen.open);
        } else {
            sq_can = true;
        }
    }
    if (rob_can || sq_can)
        drainPipeline();
    return true;
}

void
MlpSimulator::process(TraceCursor &cur, uint64_t begin, uint64_t end,
                      bool collect)
{
    // Measurement boundary: resolve any warmup-era generation so its
    // misses are not attributed to a measured epoch. The flag flips
    // first so misses triggered by the flush's own pipeline drain are
    // counted as measured work (their epochs will be).
    bool was_collect = _collect;
    _collect = collect;
    if (collect && !was_collect && _gen.open)
        resolveGeneration();
    _i = begin;

    // Bookkeeping — chunk release and the forward-progress guard —
    // runs at batch boundaries instead of every step. The batch is
    // bounded in *iterations*, not dispatched instructions, because
    // stall paths legitimately retry the same index; and since `_i`
    // and `_cycle` are both monotone, equal snapshots across a whole
    // batch prove the batch made no progress at all, so the
    // no-forward-progress diagnostic keeps its ~100k-iteration fuse.
    constexpr uint64_t kBookkeepQuantum = 1024;
    uint64_t stuck = 0;
    uint64_t last_i = ~0ULL;
    double last_cycle = -1.0;

    while (_i < end) {
        bool eos = false;
        for (uint64_t n = 0; n < kBookkeepQuantum && _i < end; ++n) {
            if (!stepOne(cur)) {
                eos = true;
                break;
            }
        }
        // Chunks wholly behind the dispatch point are never read
        // again (lookahead only runs forward): release them.
        cur.trim(_i);
        if (eos)
            break;
        if (_i == last_i && _cycle == last_cycle) {
            stuck += kBookkeepQuantum;
            if (stuck > 100000) {
                throw std::logic_error(
                    "MlpSimulator: no forward progress at index " +
                    std::to_string(_i));
            }
        } else {
            stuck = 0;
            last_i = _i;
            last_cycle = _cycle;
        }
    }
}

void
MlpSimulator::process(const Trace &trace, uint64_t begin, uint64_t end,
                      bool collect)
{
    MaterializedSource src(trace);
    TraceCursor cur(src);
    process(cur, begin, std::min<uint64_t>(end, trace.size()), collect);
}

SimResult
MlpSimulator::run(TraceSource &src, uint64_t warmup_insts)
{
    TraceCursor cur(src);
    uint64_t start = 0;
    if (warmup_insts) {
        process(cur, 0, warmup_insts, false);
        start = _i; // == min(warmup, stream length)
    }
    process(cur, start, ~uint64_t{0}, true);
    return takeResult();
}

SimResult
MlpSimulator::run(const Trace &trace, uint64_t warmup_insts)
{
    MaterializedSource src(trace);
    return run(src, warmup_insts);
}

SimResult
MlpSimulator::takeResult()
{
    // A generation still in flight at the end of the trace never
    // stalled the processor: treat it as quietly resolved.
    if (_gen.open) {
        if (_collect)
            _res.overlappedStores += _gen.stores;
        resolveGeneration();
    }
    return _res;
}

} // namespace storemlp
