/**
 * @file
 * Sweep job API implementation: request (de)serialization, axis
 * expansion, and the schemaVersion-2 per-run artifact envelope.
 */

#include "core/sweep_request.hh"

#include <algorithm>
#include <cstdio>
#include <optional>
#include <ostream>
#include <sstream>
#include <unordered_set>

#include "core/config_io.hh"
#include "core/sweep.hh"
#include "util/parse.hh"

#ifndef _WIN32
#include <unistd.h>
#endif

namespace storemlp
{

namespace
{

std::string
trimmed(const std::string &s)
{
    size_t b = s.find_first_not_of(" \t\r");
    if (b == std::string::npos)
        return "";
    size_t e = s.find_last_not_of(" \t\r");
    return s.substr(b, e - b + 1);
}

std::vector<std::string>
splitList(const std::string &list, char sep)
{
    std::vector<std::string> out;
    size_t pos = 0;
    while (pos <= list.size()) {
        size_t end = list.find(sep, pos);
        std::string tok = trimmed(list.substr(
            pos,
            end == std::string::npos ? std::string::npos : end - pos));
        if (!tok.empty())
            out.push_back(tok);
        if (end == std::string::npos)
            break;
        pos = end + 1;
    }
    return out;
}

std::string
joinList(const std::vector<std::string> &items, char sep)
{
    std::string out;
    for (size_t i = 0; i < items.size(); ++i) {
        if (i)
            out += sep;
        out += items[i];
    }
    return out;
}

uint64_t
parseU64Field(const std::string &key, const std::string &value)
{
    std::optional<uint64_t> v = parseU64Strict(value);
    if (!v) {
        throw ConfigError("sweep request: bad integer for '" + key +
                          "': " + value);
    }
    return *v;
}

void
validateConfigName(const std::string &name)
{
    if (name.empty())
        throw ConfigError("sweep request: empty config name");
    if (name.find_first_of(" \t\r\n[]") != std::string::npos) {
        throw ConfigError("sweep request: config name '" + name +
                          "' contains whitespace or brackets");
    }
}

} // namespace

WorkloadProfile
workloadProfileForName(const std::string &name)
{
    if (name == "database")
        return WorkloadProfile::database();
    if (name == "tpcw")
        return WorkloadProfile::tpcw();
    if (name == "specjbb")
        return WorkloadProfile::specjbb();
    if (name == "specweb")
        return WorkloadProfile::specweb();
    if (name == "tiny")
        return WorkloadProfile::testTiny();
    throw ConfigError("unknown workload '" + name +
                      "' (database|tpcw|specjbb|specweb|tiny)");
}

std::vector<PlannedRun>
expandSweepRuns(const SweepRequest &req)
{
    if (req.configs.empty())
        throw ConfigError("sweep request has no configs");
    if (req.workloads.empty())
        throw ConfigError("sweep request has no workloads");

    // Parse the model axis once; positional names for custom specs so
    // run names never contain a descriptor's commas.
    std::vector<std::pair<std::string, ModelDescriptor>> models;
    for (size_t mi = 0; mi < req.models.size(); ++mi) {
        ModelDescriptor d = ModelDescriptor::parse(req.models[mi]);
        std::string mname = d.name == "custom"
            ? "custom" + std::to_string(mi)
            : d.name;
        models.emplace_back(std::move(mname), std::move(d));
    }

    std::vector<PlannedRun> runs;
    std::unordered_set<std::string> seen;
    for (const std::string &wl : req.workloads) {
        WorkloadProfile profile = workloadProfileForName(wl);
        for (const SweepConfigEntry &entry : req.configs) {
            validateConfigName(entry.name);
            size_t points = models.empty() ? 1 : models.size();
            for (size_t mi = 0; mi < points; ++mi) {
                PlannedRun run;
                run.workload = wl;
                run.configName = entry.name;
                run.name = wl + "_" + entry.name;
                run.spec.profile = profile;
                run.spec.config = entry.config;
                run.spec.config.name = entry.name;
                if (!models.empty()) {
                    run.model = models[mi].first;
                    run.name += "@" + run.model;
                    run.spec.config.memoryModel = models[mi].second;
                }
                run.spec.warmupInsts = req.warmupInsts;
                run.spec.measureInsts = req.measureInsts;
                run.spec.seed = req.seed;
                if (!seen.insert(run.name).second) {
                    throw ConfigError(
                        "sweep request expands to duplicate run '" +
                        run.name + "'");
                }
                runs.push_back(std::move(run));
            }
        }
    }

    if (!req.runFilter.empty()) {
        std::unordered_set<std::string> wanted(req.runFilter.begin(),
                                               req.runFilter.end());
        std::vector<PlannedRun> filtered;
        for (PlannedRun &run : runs) {
            if (wanted.erase(run.name))
                filtered.push_back(std::move(run));
        }
        if (!wanted.empty()) {
            throw ConfigError("sweep request run filter names unknown "
                              "run '" + *wanted.begin() + "'");
        }
        runs = std::move(filtered);
    }
    return runs;
}

void
applyRequestOptions(SweepOptions &opts, const SweepRequest &req)
{
    opts.maxAttempts = 1 + req.retries;
    opts.streaming = req.streaming;
    opts.chunkInsts = req.chunkInsts;
}

// ---------------------------------------------------------------------
// Serialization
// ---------------------------------------------------------------------

void
saveSweepRequest(std::ostream &os, const SweepRequest &req)
{
    os << "# storemlp sweep request\n";
    os << "workloads = " << joinList(req.workloads, ',') << "\n";
    if (!req.models.empty())
        os << "models = " << joinList(req.models, ';') << "\n";
    os << "warmup = " << req.warmupInsts << "\n";
    os << "measure = " << req.measureInsts << "\n";
    os << "seed = " << req.seed << "\n";
    os << "retries = " << req.retries << "\n";
    os << "streaming = " << (req.streaming ? "true" : "false") << "\n";
    os << "chunkInsts = " << req.chunkInsts << "\n";
    if (!req.runFilter.empty())
        os << "runs = " << joinList(req.runFilter, ';') << "\n";
    for (const SweepConfigEntry &entry : req.configs) {
        validateConfigName(entry.name);
        os << "[config " << entry.name << "]\n";
        saveSimConfig(os, entry.config);
        os << "[endconfig]\n";
    }
}

std::string
sweepRequestToText(const SweepRequest &req)
{
    std::ostringstream oss;
    saveSweepRequest(oss, req);
    return oss.str();
}

SweepRequest
loadSweepRequest(std::istream &is)
{
    SweepRequest req;
    std::string line;
    unsigned lineno = 0;
    while (std::getline(is, line)) {
        ++lineno;
        std::string t = trimmed(line);
        if (t.empty() || t[0] == '#')
            continue;

        if (t.rfind("[config ", 0) == 0) {
            if (t.back() != ']') {
                throw ConfigError("sweep request line " +
                                  std::to_string(lineno) +
                                  ": malformed config header '" + t +
                                  "'");
            }
            SweepConfigEntry entry;
            entry.name = trimmed(t.substr(8, t.size() - 9));
            validateConfigName(entry.name);
            std::ostringstream body;
            bool closed = false;
            while (std::getline(is, line)) {
                ++lineno;
                if (trimmed(line) == "[endconfig]") {
                    closed = true;
                    break;
                }
                body << line << "\n";
            }
            if (!closed) {
                throw ConfigError("sweep request: config '" +
                                  entry.name +
                                  "' not closed by [endconfig]");
            }
            std::istringstream body_is(body.str());
            entry.config = loadSimConfig(body_is);
            req.configs.push_back(std::move(entry));
            continue;
        }

        size_t eq = t.find('=');
        if (eq == std::string::npos) {
            throw ConfigError("sweep request line " +
                              std::to_string(lineno) +
                              ": expected key = value, got '" + t +
                              "'");
        }
        std::string key = trimmed(t.substr(0, eq));
        std::string value = trimmed(t.substr(eq + 1));
        if (key == "workloads") {
            req.workloads = splitList(value, ',');
        } else if (key == "models") {
            req.models = splitList(value, ';');
        } else if (key == "warmup") {
            req.warmupInsts = parseU64Field(key, value);
        } else if (key == "measure") {
            req.measureInsts = parseU64Field(key, value);
        } else if (key == "seed") {
            req.seed = parseU64Field(key, value);
        } else if (key == "retries") {
            req.retries =
                static_cast<unsigned>(parseU64Field(key, value));
        } else if (key == "streaming") {
            if (value == "true" || value == "1")
                req.streaming = true;
            else if (value == "false" || value == "0")
                req.streaming = false;
            else
                throw ConfigError(
                    "sweep request: bad boolean for 'streaming': " +
                    value);
        } else if (key == "chunkInsts") {
            req.chunkInsts = parseU64Field(key, value);
        } else if (key == "runs") {
            req.runFilter = splitList(value, ';');
        } else {
            throw ConfigError("sweep request line " +
                              std::to_string(lineno) +
                              ": unknown key '" + key + "'");
        }
    }
    return req;
}

SweepRequest
sweepRequestFromText(const std::string &text)
{
    std::istringstream is(text);
    return loadSweepRequest(is);
}

std::string
sweepRequestFingerprint(const SweepRequest &req)
{
    SweepRequest canonical = req;
    canonical.runFilter.clear();
    std::string text = sweepRequestToText(canonical);
    uint64_t h = 1469598103934665603ull; // FNV-1a 64
    for (unsigned char c : text) {
        h ^= c;
        h *= 1099511628211ull;
    }
    char buf[17];
    std::snprintf(buf, sizeof buf, "%016llx",
                  static_cast<unsigned long long>(h));
    return buf;
}

// ---------------------------------------------------------------------
// Result artifacts
// ---------------------------------------------------------------------

std::string
localHostName()
{
#ifndef _WIN32
    char buf[256] = {0};
    if (gethostname(buf, sizeof buf - 1) == 0 && buf[0])
        return buf;
#endif
    return "unknown";
}

StatsEnvelope
runOutcomeEnvelope(const RunOutcome &outcome, const ArtifactSource &src,
                   uint64_t seed, uint64_t warmup, uint64_t measure)
{
    StatsEnvelope env;
    env.meta = {{"tool", src.tool}, {"kind", "run"}};
    if (!outcome.ok)
        env.meta.push_back({"error", outcome.errorMessage});

    env.source = {{"host", src.host},
                  {"tool", src.tool},
                  {"request", src.requestFingerprint}};

    env.run = {{"name", outcome.name},
               {"workload", outcome.workload},
               {"config", outcome.configName}};
    if (!outcome.model.empty())
        env.run.push_back({"model", outcome.model});
    env.run.push_back({"seed", std::to_string(seed)});
    env.run.push_back({"warmup", std::to_string(warmup)});
    env.run.push_back({"measure", std::to_string(measure)});
    env.run.push_back({"ok", outcome.ok ? "1" : "0"});
    env.run.push_back({"attempts", std::to_string(outcome.attempts)});
    env.run.push_back({"wallMs", jsonDouble(outcome.wallMs)});
    env.run.push_back(
        {"traceCacheHit", outcome.traceCacheHit ? "1" : "0"});
    return env;
}

std::string
runOutcomeJson(const RunOutcome &outcome, const ArtifactSource &src,
               uint64_t seed, uint64_t warmup, uint64_t measure)
{
    StatsEnvelope env =
        runOutcomeEnvelope(outcome, src, seed, warmup, measure);
    StatsRegistry reg;
    if (outcome.ok)
        outcome.output.exportStats(reg);
    std::ostringstream oss;
    writeStatsJson(oss, reg, env, /*pretty=*/false);
    return oss.str();
}

} // namespace storemlp
