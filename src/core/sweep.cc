/**
 * @file
 * Sweep engine implementation.
 */

#include "core/sweep.hh"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <thread>

#ifdef _WIN32
#include <io.h>
#define STOREMLP_ISATTY(fd) _isatty(fd)
#else
#include <unistd.h>
#define STOREMLP_ISATTY(fd) isatty(fd)
#endif

namespace storemlp
{

namespace
{

using Clock = std::chrono::steady_clock;

double
msSince(Clock::time_point t0)
{
    return std::chrono::duration<double, std::milli>(Clock::now() - t0)
        .count();
}

} // namespace

bool
SweepOptions::progressFromEnv()
{
    if (const char *env = std::getenv("STOREMLP_PROGRESS"))
        return env[0] && env[0] != '0';
    return STOREMLP_ISATTY(2) != 0;
}

unsigned
SweepEngine::defaultJobs()
{
    if (const char *env = std::getenv("STOREMLP_JOBS")) {
        unsigned long v = std::strtoul(env, nullptr, 10);
        if (v >= 1)
            return static_cast<unsigned>(v);
    }
    unsigned hw = std::thread::hardware_concurrency();
    return hw ? hw : 1;
}

SweepEngine::SweepEngine(SweepOptions opts, TraceCache *cache)
    : _opts(opts), _cache(cache)
{
}

unsigned
SweepEngine::resolveJobs(size_t work_items) const
{
    unsigned jobs = _opts.jobs ? _opts.jobs : defaultJobs();
    if (work_items < jobs)
        jobs = static_cast<unsigned>(work_items);
    return jobs ? jobs : 1;
}

std::vector<SweepResult>
SweepEngine::run(const std::vector<RunSpec> &specs)
{
    std::vector<SweepResult> results(specs.size());
    if (specs.empty())
        return results;

    unsigned jobs = resolveJobs(specs.size());
    std::atomic<size_t> next{0};
    std::atomic<size_t> done{0};
    std::atomic<uint64_t> hits{0};
    std::mutex progress_mu;
    Clock::time_point t0 = Clock::now();

    auto worker = [&]() {
        size_t i;
        while ((i = next.fetch_add(1)) < specs.size()) {
            const RunSpec &spec = specs[i];
            Clock::time_point rt0 = Clock::now();
            bool hit = false;
            if (_opts.useTraceCache) {
                std::shared_ptr<const Trace> trace = _cache->getOrBuild(
                    Runner::traceCacheKey(spec),
                    [&spec] { return Runner::buildTrace(spec); }, &hit);
                results[i].output = Runner::run(spec, trace.get());
            } else {
                results[i].output = Runner::run(spec);
            }
            results[i].wallMs = msSince(rt0);
            results[i].traceCacheHit = hit;
            if (hit)
                hits.fetch_add(1);
            size_t d = done.fetch_add(1) + 1;
            if (_opts.progress) {
                std::lock_guard<std::mutex> lk(progress_mu);
                std::fprintf(stderr,
                             "\r[sweep] %zu/%zu runs, %llu trace-cache "
                             "hits, %.1fs elapsed ",
                             d, specs.size(),
                             static_cast<unsigned long long>(
                                 hits.load()),
                             msSince(t0) / 1000.0);
                std::fflush(stderr);
            }
        }
    };

    if (jobs == 1) {
        worker();
    } else {
        std::vector<std::thread> pool;
        pool.reserve(jobs);
        for (unsigned t = 0; t < jobs; ++t)
            pool.emplace_back(worker);
        for (auto &t : pool)
            t.join();
    }

    if (_opts.progress) {
        std::fprintf(stderr,
                     "\r[sweep] %zu runs done in %.1fs (%u jobs, %llu "
                     "trace-cache hits)        \n",
                     specs.size(), msSince(t0) / 1000.0, jobs,
                     static_cast<unsigned long long>(hits.load()));
        std::fflush(stderr);
    }
    return results;
}

std::vector<RunOutput>
SweepEngine::runOutputs(const std::vector<RunSpec> &specs)
{
    std::vector<SweepResult> res = run(specs);
    std::vector<RunOutput> outs;
    outs.reserve(res.size());
    for (auto &r : res)
        outs.push_back(std::move(r.output));
    return outs;
}

void
SweepEngine::exportStats(StatsRegistry &reg) const
{
    TraceCacheStats cs = _cache->stats();
    reg.counter("sweep.traceCache.hits", cs.hits);
    reg.counter("sweep.traceCache.misses", cs.misses);
    reg.counter("sweep.traceCache.evictions", cs.evictions);
    reg.counter("sweep.traceCache.bytes", cs.bytes);
    reg.counter("sweep.jobs", _opts.jobs ? _opts.jobs : defaultJobs());
}

void
SweepEngine::runTasks(const std::vector<std::function<void()>> &tasks)
{
    if (tasks.empty())
        return;
    unsigned jobs = resolveJobs(tasks.size());
    std::atomic<size_t> next{0};
    auto worker = [&]() {
        size_t i;
        while ((i = next.fetch_add(1)) < tasks.size())
            tasks[i]();
    };
    if (jobs == 1) {
        worker();
    } else {
        std::vector<std::thread> pool;
        pool.reserve(jobs);
        for (unsigned t = 0; t < jobs; ++t)
            pool.emplace_back(worker);
        for (auto &t : pool)
            t.join();
    }
}

} // namespace storemlp
