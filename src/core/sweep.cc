/**
 * @file
 * Sweep engine implementation.
 */

#include "core/sweep.hh"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <thread>

#include "util/parse.hh"

#ifdef _WIN32
#include <io.h>
#define STOREMLP_ISATTY(fd) _isatty(fd)
#else
#include <unistd.h>
#define STOREMLP_ISATTY(fd) isatty(fd)
#endif

namespace storemlp
{

namespace
{

using Clock = std::chrono::steady_clock;

double
msSince(Clock::time_point t0)
{
    return std::chrono::duration<double, std::milli>(Clock::now() - t0)
        .count();
}

} // namespace

bool
SweepOptions::progressFromEnv()
{
    if (const char *env = std::getenv("STOREMLP_PROGRESS"))
        return env[0] && env[0] != '0';
    return STOREMLP_ISATTY(2) != 0;
}

unsigned
SweepEngine::defaultJobs()
{
    // Strict: a malformed or zero STOREMLP_JOBS raises ConfigError
    // instead of silently running serial (or with garbage-as-0).
    uint64_t v = envU64Strict("STOREMLP_JOBS", 0, 1, 4096);
    if (v >= 1)
        return static_cast<unsigned>(v);
    unsigned hw = std::thread::hardware_concurrency();
    return hw ? hw : 1;
}

SweepEngine::SweepEngine(SweepOptions opts, TraceCache *cache)
    : _opts(opts), _cache(cache)
{
}

unsigned
SweepEngine::resolveJobs(size_t work_items) const
{
    unsigned jobs = _opts.jobs ? _opts.jobs : defaultJobs();
    if (work_items < jobs)
        jobs = static_cast<unsigned>(work_items);
    return jobs ? jobs : 1;
}

RunOutput
SweepEngine::runOnce(const RunSpec &spec, const SweepOptions &opts,
                     bool *hit)
{
    *hit = false;
    if (opts.streaming && !opts.runOverride) {
        // O(chunk) resident memory per worker. Chunk-level sharing
        // happens inside the CachedSource, so the per-run `hit` flag
        // stays false; hits are visible in the cache stats instead.
        std::unique_ptr<TraceSource> src = Runner::makeSource(
            spec, opts.chunkInsts,
            opts.useTraceCache ? _cache : nullptr);
        return Runner::run(spec, *src);
    }
    if (opts.useTraceCache && _cache) {
        std::shared_ptr<const Trace> trace = _cache->getOrBuild(
            Runner::traceCacheKey(spec),
            [&spec] { return Runner::buildTrace(spec); }, hit);
        if (opts.runOverride)
            return opts.runOverride(spec, trace.get());
        MaterializedSource src(std::move(trace));
        return Runner::run(spec, src);
    }
    if (opts.runOverride)
        return opts.runOverride(spec, nullptr);
    Trace trace = Runner::buildTrace(spec);
    MaterializedSource src(trace);
    return Runner::run(spec, src);
}

std::vector<RunOutcome>
SweepEngine::executeWith(const SweepOptions &opts,
                         const std::vector<PlannedRun> &runs,
                         const RunObserver &observer)
{
    std::vector<RunOutcome> results(runs.size());
    if (runs.empty())
        return results;

    unsigned jobs = resolveJobs(runs.size());
    unsigned max_attempts = std::max(1u, opts.maxAttempts);
    std::atomic<size_t> next{0};
    std::atomic<size_t> done{0};
    std::atomic<uint64_t> hits{0};
    std::atomic<uint64_t> failed{0};
    std::mutex sink_mu; // serializes observer calls + progress line
    Clock::time_point t0 = Clock::now();

    auto worker = [&]() {
        size_t i;
        while ((i = next.fetch_add(1)) < runs.size()) {
            const PlannedRun &run = runs[i];
            RunOutcome &res = results[i];
            res.name = run.name;
            res.workload = run.workload;
            res.configName = run.configName;
            res.model = run.model;
            Clock::time_point rt0 = Clock::now();

            // Fault containment: an exception from trace construction
            // or the runner fails this slot (optionally after bounded
            // retries) instead of escaping the worker thread — where
            // it would hit std::terminate and discard every result.
            std::string err;
            res.ok = false;
            for (unsigned attempt = 1; attempt <= max_attempts;
                 ++attempt) {
                res.attempts = attempt;
                if (attempt > 1)
                    _runRetries.fetch_add(1);
                bool hit = false;
                try {
                    res.output = runOnce(run.spec, opts, &hit);
                    res.ok = true;
                } catch (const std::exception &e) {
                    err = e.what();
                } catch (...) {
                    err = "unknown exception";
                }
                res.traceCacheHit = hit;
                if (res.ok)
                    break;
            }
            res.wallMs = msSince(rt0);
            if (res.ok) {
                res.errorMessage.clear();
                _runsOk.fetch_add(1);
            } else {
                res.output = RunOutput{};
                res.errorMessage =
                    RunError(i, run.spec.config.name, err).what();
                _runsFailed.fetch_add(1);
                failed.fetch_add(1);
            }
            if (res.traceCacheHit)
                hits.fetch_add(1);
            size_t d = done.fetch_add(1) + 1;
            if (observer || opts.progress) {
                std::lock_guard<std::mutex> lk(sink_mu);
                // The observer must never fault the run it reports:
                // a throwing result sink (e.g. a dead network
                // connection) is the sink's problem, and the batch
                // still completes with every slot filled.
                if (observer) {
                    try {
                        observer(res, d, runs.size());
                    } catch (...) {
                    }
                }
                if (opts.progress) {
                    std::fprintf(
                        stderr,
                        "\r[sweep] %zu/%zu runs, %llu trace-cache "
                        "hits, %llu failed, %.1fs elapsed ",
                        d, runs.size(),
                        static_cast<unsigned long long>(hits.load()),
                        static_cast<unsigned long long>(failed.load()),
                        msSince(t0) / 1000.0);
                    std::fflush(stderr);
                }
            }
        }
    };

    if (jobs == 1) {
        worker();
    } else {
        std::vector<std::thread> pool;
        pool.reserve(jobs);
        for (unsigned t = 0; t < jobs; ++t)
            pool.emplace_back(worker);
        for (auto &t : pool)
            t.join();
    }

    if (opts.progress) {
        std::fprintf(stderr,
                     "\r[sweep] %zu runs done in %.1fs (%u jobs, %llu "
                     "trace-cache hits, %llu failed)        \n",
                     runs.size(), msSince(t0) / 1000.0, jobs,
                     static_cast<unsigned long long>(hits.load()),
                     static_cast<unsigned long long>(failed.load()));
        std::fflush(stderr);
    }
    return results;
}

std::vector<RunOutcome>
SweepEngine::execute(const std::vector<PlannedRun> &runs,
                     const RunObserver &observer)
{
    return executeWith(_opts, runs, observer);
}

std::vector<RunOutcome>
SweepEngine::execute(const SweepRequest &request,
                     const RunObserver &observer)
{
    // Expansion failures (bad workload/model/filter) surface before
    // any run starts: a malformed request is the submitter's error,
    // not a batch of failed runs.
    std::vector<PlannedRun> runs = expandSweepRuns(request);
    SweepOptions opts = _opts;
    applyRequestOptions(opts, request);
    _lastMaxAttempts.store(std::max(1u, opts.maxAttempts));
    return executeWith(opts, runs, observer);
}

std::vector<SweepResult>
SweepEngine::run(const std::vector<RunSpec> &specs)
{
    std::vector<PlannedRun> runs(specs.size());
    for (size_t i = 0; i < specs.size(); ++i) {
        runs[i].name = specs[i].config.name;
        runs[i].configName = specs[i].config.name;
        runs[i].spec = specs[i];
    }
    std::vector<RunOutcome> outcomes = execute(runs);
    std::vector<SweepResult> results(outcomes.size());
    for (size_t i = 0; i < outcomes.size(); ++i) {
        results[i].output = std::move(outcomes[i].output);
        results[i].wallMs = outcomes[i].wallMs;
        results[i].traceCacheHit = outcomes[i].traceCacheHit;
        results[i].ok = outcomes[i].ok;
        results[i].attempts = outcomes[i].attempts;
        results[i].errorMessage = std::move(outcomes[i].errorMessage);
    }
    return results;
}

std::vector<RunOutput>
SweepEngine::runOutputs(const std::vector<RunSpec> &specs)
{
    std::vector<SweepResult> res = run(specs);
    std::vector<RunOutput> outs;
    outs.reserve(res.size());
    for (size_t i = 0; i < res.size(); ++i) {
        // errorMessage already carries the run index + config name.
        if (!res[i].ok)
            throw SimError(res[i].errorMessage);
        outs.push_back(std::move(res[i].output));
    }
    return outs;
}

void
SweepEngine::exportStats(StatsRegistry &reg) const
{
    // An engine built without a cache (useTraceCache=false) still
    // exports the full counter set, zeroed, so artifact schemas do
    // not change shape with the configuration.
    TraceCacheStats cs = _cache ? _cache->stats() : TraceCacheStats{};
    reg.counter("sweep.traceCache.hits", cs.hits);
    reg.counter("sweep.traceCache.misses", cs.misses);
    reg.counter("sweep.traceCache.evictions", cs.evictions);
    reg.counter("sweep.traceCache.bytes", cs.bytes);
    reg.counter("sweep.jobs", _opts.jobs ? _opts.jobs : defaultJobs());
    // How the batch was produced: attempts budget per run (request
    // retries override the engine default and are recorded by
    // execute()), so artifacts carry their own retry policy.
    unsigned attempts = _lastMaxAttempts.load();
    reg.counter("sweep.maxAttempts",
                attempts ? attempts : std::max(1u, _opts.maxAttempts));
    reg.counter("sweep.runs.ok", _runsOk.load());
    reg.counter("sweep.runs.failed", _runsFailed.load());
    reg.counter("sweep.runs.retries", _runRetries.load());
}

std::vector<TaskStatus>
parallelForEach(const std::vector<std::function<void()>> &tasks,
                unsigned jobs)
{
    std::vector<TaskStatus> statuses(tasks.size());
    if (tasks.empty())
        return statuses;
    if (!jobs)
        jobs = SweepEngine::defaultJobs();
    if (tasks.size() < jobs)
        jobs = static_cast<unsigned>(tasks.size());
    std::atomic<size_t> next{0};
    auto worker = [&]() {
        size_t i;
        while ((i = next.fetch_add(1)) < tasks.size()) {
            // Same containment as execute(): a throwing task fails
            // its own status slot; the remaining tasks still execute.
            try {
                tasks[i]();
            } catch (const std::exception &e) {
                statuses[i].ok = false;
                statuses[i].errorMessage =
                    RunError(i, "", e.what()).what();
            } catch (...) {
                statuses[i].ok = false;
                statuses[i].errorMessage =
                    RunError(i, "", "unknown exception").what();
            }
        }
    };
    if (jobs == 1) {
        worker();
    } else {
        std::vector<std::thread> pool;
        pool.reserve(jobs);
        for (unsigned t = 0; t < jobs; ++t)
            pool.emplace_back(worker);
        for (auto &t : pool)
            t.join();
    }
    return statuses;
}

std::vector<TaskStatus>
SweepEngine::runTasks(const std::vector<std::function<void()>> &tasks)
{
    return parallelForEach(tasks, _opts.jobs);
}

} // namespace storemlp
