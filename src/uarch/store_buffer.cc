/**
 * @file
 * Store buffer implementation.
 */

#include "uarch/store_buffer.hh"

#include <cassert>

namespace storemlp
{

StoreBuffer::StoreBuffer(size_t capacity) : _capacity(capacity)
{
    assert(capacity > 0);
}

SbEntry &
StoreBuffer::push(uint64_t addr, uint64_t line, uint64_t inst_idx,
                  bool addr_ready, bool release)
{
    assert(!full());
    SbEntry e;
    e.addr = addr;
    e.line = line;
    e.instIdx = inst_idx;
    e.addrReady = addr_ready;
    e.release = release;
    _entries.push_back(e);
    return _entries.back();
}

} // namespace storemlp
