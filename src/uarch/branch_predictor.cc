/**
 * @file
 * Branch predictor implementation.
 */

#include "uarch/branch_predictor.hh"

#include <cassert>

namespace storemlp
{

BranchPredictor::BranchPredictor(const BranchPredictorConfig &config)
    : _config(config)
{
    assert(config.gshareEntries &&
           (config.gshareEntries & (config.gshareEntries - 1)) == 0);
    _counters.assign(config.gshareEntries, 1); // weakly not-taken
    _indexMask = config.gshareEntries - 1;
    _historyMask = (1u << config.historyBits) - 1;
    uint32_t index_bits = 0;
    for (uint32_t v = config.gshareEntries; v > 1; v >>= 1)
        ++index_bits;
    assert(config.historyBits <= index_bits);
    _historyShift = index_bits - config.historyBits;

    assert(config.btbEntries % config.btbAssoc == 0);
    _btbSets = config.btbEntries / config.btbAssoc;
    assert(_btbSets && (_btbSets & (_btbSets - 1)) == 0);
    _btb.resize(config.btbEntries);

    _ras.assign(config.rasEntries, 0);
}

bool
BranchPredictor::btbLookupInsert(uint64_t pc)
{
    uint64_t idx = (pc >> 2) & (_btbSets - 1);
    BtbEntry *base = &_btb[idx * _config.btbAssoc];
    uint64_t tag = (pc >> 2) / _btbSets;
    for (uint32_t w = 0; w < _config.btbAssoc; ++w) {
        if (base[w].valid && base[w].tag == tag) {
            base[w].lru = ++_btbClock;
            return true;
        }
    }
    BtbEntry *victim = &base[0];
    for (uint32_t w = 0; w < _config.btbAssoc; ++w) {
        if (!base[w].valid) {
            victim = &base[w];
            break;
        }
        if (base[w].lru < victim->lru)
            victim = &base[w];
    }
    victim->valid = true;
    victim->tag = tag;
    victim->lru = ++_btbClock;
    return false;
}

uint32_t
BranchPredictor::index(uint64_t pc) const
{
    return (static_cast<uint32_t>(pc >> 2) ^ (_history << _historyShift))
        & _indexMask;
}

bool
BranchPredictor::predictAndUpdate(uint64_t pc, bool taken)
{
    ++_lookups;
    uint8_t &ctr = _counters[index(pc)];
    bool predicted_taken = ctr >= 2;

    bool correct = predicted_taken == taken;
    // Taken branches additionally need the target from the BTB.
    if (taken && !btbLookupInsert(pc))
        correct = false;

    // Train.
    if (taken) {
        if (ctr < 3)
            ++ctr;
    } else {
        if (ctr > 0)
            --ctr;
    }
    _history = ((_history << 1) | (taken ? 1u : 0u)) & _historyMask;

    if (!correct)
        ++_mispredicts;
    return correct;
}

bool
BranchPredictor::predictPeek(uint64_t pc, bool taken) const
{
    bool predicted_taken = _counters[index(pc)] >= 2;
    bool correct = predicted_taken == taken;
    if (taken) {
        // Read-only BTB presence check.
        uint64_t set = (pc >> 2) & (_btbSets - 1);
        uint64_t tag = (pc >> 2) / _btbSets;
        const BtbEntry *base = &_btb[set * _config.btbAssoc];
        bool hit = false;
        for (uint32_t w = 0; w < _config.btbAssoc; ++w) {
            if (base[w].valid && base[w].tag == tag) {
                hit = true;
                break;
            }
        }
        if (!hit)
            correct = false;
    }
    return correct;
}

void
BranchPredictor::pushReturn(uint64_t return_pc)
{
    _ras[_rasTop % _config.rasEntries] = return_pc;
    ++_rasTop;
}

bool
BranchPredictor::popReturn(uint64_t actual_target)
{
    ++_lookups;
    if (_rasTop == 0) {
        ++_mispredicts;
        return false;
    }
    --_rasTop;
    bool correct = _ras[_rasTop % _config.rasEntries] == actual_target;
    if (!correct)
        ++_mispredicts;
    return correct;
}

double
BranchPredictor::mispredictRate() const
{
    return _lookups
        ? static_cast<double>(_mispredicts) / static_cast<double>(_lookups)
        : 0.0;
}

void
BranchPredictor::reset()
{
    _counters.assign(_config.gshareEntries, 1);
    _history = 0;
    for (auto &e : _btb)
        e = BtbEntry();
    _btbClock = 0;
    _rasTop = 0;
    resetStats();
}

} // namespace storemlp
