/**
 * @file
 * Register poison helpers.
 */

#include "uarch/regdep.hh"

#include <bit>

namespace storemlp
{

unsigned
poisonedCount(const RegPoison &p)
{
    return static_cast<unsigned>(std::popcount(p.raw()));
}

} // namespace storemlp
