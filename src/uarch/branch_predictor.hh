/**
 * @file
 * Branch prediction: 64K-entry gshare direction predictor, 16K-entry
 * BTB and a 16-entry return address stack, matching the paper's
 * default configuration (Section 4.3).
 */

#ifndef STOREMLP_UARCH_BRANCH_PREDICTOR_HH
#define STOREMLP_UARCH_BRANCH_PREDICTOR_HH

#include <cstdint>
#include <vector>

namespace storemlp
{

/** Predictor geometry. */
struct BranchPredictorConfig
{
    uint32_t gshareEntries = 64 * 1024;
    /**
     * Global history bits folded into the index. History occupies the
     * high index bits so the low bits keep per-pc counter locality
     * (limits destructive aliasing between unrelated branches).
     */
    uint32_t historyBits = 2;
    uint32_t btbEntries = 16 * 1024;
    uint32_t btbAssoc = 4;
    uint32_t rasEntries = 16;
};

/**
 * gshare + BTB + RAS. The trace carries outcomes, so prediction is
 * evaluated on the fly: predictAndUpdate() returns whether the branch
 * would have been predicted correctly and trains the tables.
 */
class BranchPredictor
{
  public:
    explicit BranchPredictor(const BranchPredictorConfig &config = {});

    /**
     * Predict the branch at `pc` with actual outcome `taken`, then
     * train. @return true if direction AND target (taken branches
     * need a BTB hit) were predicted correctly.
     */
    bool predictAndUpdate(uint64_t pc, bool taken);

    /**
     * Predict without training or stats (hardware-scout lookahead must
     * not perturb the state the post-stall replay will observe).
     */
    bool predictPeek(uint64_t pc, bool taken) const;

    /** RAS operations for call/return flavoured traces. */
    void pushReturn(uint64_t return_pc);
    /** Pop and check a return target; trains nothing else. */
    bool popReturn(uint64_t actual_target);

    uint64_t lookups() const { return _lookups; }
    uint64_t mispredicts() const { return _mispredicts; }
    double mispredictRate() const;
    void resetStats() { _lookups = _mispredicts = 0; }
    void reset();

  private:
    bool btbLookupInsert(uint64_t pc);

    uint32_t index(uint64_t pc) const;

    BranchPredictorConfig _config;
    std::vector<uint8_t> _counters; ///< 2-bit saturating counters
    uint32_t _history = 0;
    uint32_t _historyMask;  ///< (1 << historyBits) - 1
    uint32_t _indexMask;    ///< gshareEntries - 1
    uint32_t _historyShift; ///< left shift placing history in high bits

    struct BtbEntry
    {
        uint64_t tag = 0;
        uint64_t lru = 0;
        bool valid = false;
    };
    std::vector<BtbEntry> _btb;
    uint32_t _btbSets;
    uint64_t _btbClock = 0;

    std::vector<uint64_t> _ras;
    uint32_t _rasTop = 0;

    uint64_t _lookups = 0;
    uint64_t _mispredicts = 0;
};

} // namespace storemlp

#endif // STOREMLP_UARCH_BRANCH_PREDICTOR_HH
