/**
 * @file
 * Store queue implementation.
 */

#include "uarch/store_queue.hh"

#include <cassert>

namespace storemlp
{

StoreQueue::StoreQueue(size_t capacity, uint32_t coalesce_bytes,
                       CoalesceScope scope)
    : _capacity(capacity), _coalesceBytes(coalesce_bytes),
      _scope(scope)
{
    assert(capacity > 0);
    assert(coalesce_bytes == 0 ||
           (coalesce_bytes & (coalesce_bytes - 1)) == 0);
}

uint64_t
StoreQueue::granuleOf(uint64_t addr) const
{
    if (_coalesceBytes == 0)
        return addr;
    return addr & ~static_cast<uint64_t>(_coalesceBytes - 1);
}

bool
StoreQueue::insert(uint64_t addr, uint64_t line, uint64_t inst_idx,
                   uint32_t fence_seq, bool release)
{
    ++_inserts;
    uint64_t granule = granuleOf(addr);

    if (_coalesceBytes != 0 && _scope != CoalesceScope::None &&
        !_entries.empty()) {
        if (_scope == CoalesceScope::ToYoungestFence) {
            // WC: any entry on this side of the youngest fence. A
            // committed-looking (classified missing) head still merges
            // — the merged data simply joins the pending line write.
            for (auto it = _entries.rbegin(); it != _entries.rend();
                 ++it) {
                if (it->fenceSeq != fence_seq)
                    break; // older fence epoch: ineligible
                if (it->granule == granule) {
                    ++_coalesced;
                    ++it->mergedStores;
                    return true;
                }
            }
        } else {
            // PC: consecutive stores only -> tail entry.
            SqEntry &tail = _entries.back();
            if (tail.granule == granule && tail.fenceSeq == fence_seq) {
                ++_coalesced;
                ++tail.mergedStores;
                return true;
            }
        }
    }

    assert(!full());
    SqEntry e;
    e.granule = granule;
    e.line = line;
    e.instIdx = inst_idx;
    e.fenceSeq = fence_seq;
    e.release = release;
    _entries.push_back(e);
    return false;
}

} // namespace storemlp
