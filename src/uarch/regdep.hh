/**
 * @file
 * Register poison tracking: which architectural registers currently
 * hold values produced (directly or transitively) by unresolved
 * off-chip misses. Poisoned sources make consumers unexecutable
 * within the current epoch; in scout mode they make addresses
 * unprefetchable.
 */

#ifndef STOREMLP_UARCH_REGDEP_HH
#define STOREMLP_UARCH_REGDEP_HH

#include <cstdint>

namespace storemlp
{

/**
 * Bitset of poisoned registers. Register 0 means "no register" and is
 * never poisoned.
 */
class RegPoison
{
  public:
    void
    set(uint8_t reg)
    {
        if (reg)
            _bits |= (1ULL << (reg & 63));
    }

    void
    clear(uint8_t reg)
    {
        if (reg)
            _bits &= ~(1ULL << (reg & 63));
    }

    bool
    test(uint8_t reg) const
    {
        if (!reg)
            return false;
        return (_bits >> (reg & 63)) & 1ULL;
    }

    /** True if any source of an instruction is poisoned. */
    bool
    anyPoisoned(uint8_t src1, uint8_t src2) const
    {
        return test(src1) || test(src2);
    }

    void clearAll() { _bits = 0; }
    bool empty() const { return _bits == 0; }
    uint64_t raw() const { return _bits; }

  private:
    uint64_t _bits = 0;
};

/** Count of poisoned registers (diagnostics). */
unsigned poisonedCount(const RegPoison &p);

} // namespace storemlp

#endif // STOREMLP_UARCH_REGDEP_HH
