/**
 * @file
 * Store buffer model: holds stores from rename/dispatch until
 * retirement, at which point they move into the store queue. The
 * epoch engine consults it for the prefetch-at-execute optimization
 * (addresses of buffered stores are prefetchable once generated).
 */

#ifndef STOREMLP_UARCH_STORE_BUFFER_HH
#define STOREMLP_UARCH_STORE_BUFFER_HH

#include <cstddef>
#include <cstdint>
#include <deque>

namespace storemlp
{

/** One store buffer entry. */
struct SbEntry
{
    uint64_t addr = 0;
    uint64_t line = 0;
    uint64_t instIdx = 0;
    bool addrReady = false; ///< address generation has completed
    bool release = false;   ///< lock-release store
    bool prefetched = false;
};

/**
 * Bounded FIFO of dispatched, unretired stores.
 */
class StoreBuffer
{
  public:
    explicit StoreBuffer(size_t capacity);

    bool full() const { return _entries.size() >= _capacity; }
    bool empty() const { return _entries.empty(); }
    size_t size() const { return _entries.size(); }
    size_t capacity() const { return _capacity; }

    /** Allocate an entry at dispatch. Caller must check !full(). */
    SbEntry &push(uint64_t addr, uint64_t line, uint64_t inst_idx,
                  bool addr_ready, bool release = false);

    SbEntry &head() { return _entries.front(); }
    void popHead() { _entries.pop_front(); }

    std::deque<SbEntry> &entries() { return _entries; }
    const std::deque<SbEntry> &entries() const { return _entries; }
    void clear() { _entries.clear(); }

  private:
    std::deque<SbEntry> _entries;
    size_t _capacity;
};

} // namespace storemlp

#endif // STOREMLP_UARCH_STORE_BUFFER_HH
