/**
 * @file
 * Store queue model: holds retired stores until they commit into the
 * L2 and become globally visible. Implements store coalescing with the
 * consistency-model-specific eligibility rules of Section 3.3.1:
 * under processor consistency only *consecutive* stores may coalesce
 * (tail entry only); under weak consistency a retiring store may
 * coalesce with any entry on the same side of the youngest lwsync
 * fence.
 */

#ifndef STOREMLP_UARCH_STORE_QUEUE_HH
#define STOREMLP_UARCH_STORE_QUEUE_HH

#include <cstddef>
#include <cstdint>
#include <deque>

#include "consistency/memory_model.hh"

namespace storemlp
{

/** One store queue entry (a coalesced granule). */
struct SqEntry
{
    uint64_t granule = 0;   ///< address aligned to coalesce granularity
    uint64_t line = 0;      ///< cache line address
    uint64_t instIdx = 0;   ///< trace index of the first merged store
    uint32_t fenceSeq = 0;  ///< lwsync fence epoch (weak consistency)
    bool missing = false;   ///< classified when commit is attempted
    bool classified = false;///< L2 lookup already performed
    bool prefetched = false;///< prefetch-for-write issued
    bool release = false;   ///< lock-release store
    uint32_t mergedStores = 1; ///< dynamic stores merged into this entry
};

/**
 * Bounded store queue with coalescing. The epoch engine drives commit
 * (popping the head); this class owns capacity/merge bookkeeping.
 */
class StoreQueue
{
  public:
    /**
     * @param capacity maximum entries (paper default 32)
     * @param coalesce_bytes coalescing granularity; 0 disables
     * @param scope model coalescing rule: ToYoungestFence (WC:
     *        search all entries this side of the youngest fence),
     *        Tail (PC: consecutive stores only), or None
     */
    StoreQueue(size_t capacity, uint32_t coalesce_bytes,
               CoalesceScope scope);

    bool full() const { return _entries.size() >= _capacity; }
    bool empty() const { return _entries.empty(); }
    size_t size() const { return _entries.size(); }
    size_t capacity() const { return _capacity; }

    /**
     * Insert a retiring store, coalescing if eligible.
     * @return true if the store was merged into an existing entry
     *         (no capacity consumed)
     */
    bool insert(uint64_t addr, uint64_t line, uint64_t inst_idx,
                uint32_t fence_seq, bool release = false);

    SqEntry &head() { return _entries.front(); }
    const SqEntry &head() const { return _entries.front(); }
    void popHead() { _entries.pop_front(); }
    /** Remove an arbitrary entry (WC out-of-order commit). */
    void erase(size_t pos) { _entries.erase(_entries.begin() + pos); }

    std::deque<SqEntry> &entries() { return _entries; }
    const std::deque<SqEntry> &entries() const { return _entries; }

    void clear() { _entries.clear(); }

    uint64_t inserts() const { return _inserts; }
    uint64_t coalesced() const { return _coalesced; }
    void resetStats() { _inserts = _coalesced = 0; }

  private:
    uint64_t granuleOf(uint64_t addr) const;

    std::deque<SqEntry> _entries;
    size_t _capacity;
    uint32_t _coalesceBytes;
    CoalesceScope _scope;

    uint64_t _inserts = 0;
    uint64_t _coalesced = 0;
};

} // namespace storemlp

#endif // STOREMLP_UARCH_STORE_QUEUE_HH
