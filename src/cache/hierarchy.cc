/**
 * @file
 * Cache hierarchy implementation.
 */

#include "cache/hierarchy.hh"

#include "stats/registry.hh"

namespace storemlp
{

CacheHierarchy::CacheHierarchy(const HierarchyConfig &config)
    : _config(config), _l1i(config.l1i), _l1d(config.l1d), _l2(config.l2)
{
}

MissLevel
CacheHierarchy::instFetchSlow(uint64_t line)
{
    _lastFetchLine = line;
    if (_l1i.access(line, false, true).hit)
        return MissLevel::L1Hit;
    MissLevel lvl = accessL2(line, false);
    if (lvl == MissLevel::OffChip)
        ++_instL2Misses;
    return lvl;
}

bool
CacheHierarchy::prefetchLine(uint64_t addr, bool for_write)
{
    ++_prefetchesIssued;
    ++_l2Accesses;
    if (_l2.probe(addr)) {
        if (for_write)
            _l2.access(addr, true, true); // mark dirty / refresh LRU
        return true;
    }
    AccessResult r = _l2.access(addr, for_write, true);
    if (r.victimValid && _onEvict)
        _onEvict(r.victimLineAddr, r.victimDirty, r.victimState);
    return false;
}

void
CacheHierarchy::invalidateLine(uint64_t addr)
{
    uint64_t line = lineAddr(addr);
    _l1i.invalidate(line);
    _l1d.invalidate(line);
    auto inv = _l2.invalidate(line);
    if (inv.wasPresent && inv.wasDirty && _onEvict)
        _onEvict(line, true, inv.state);
    if (line == _lastFetchLine)
        _lastFetchLine = ~0ULL;
}

void
CacheHierarchy::invalidateForCoherence(uint64_t addr)
{
    uint64_t line = lineAddr(addr);
    _l1i.invalidate(line);
    _l1d.invalidate(line);
    _l2.invalidate(line);
    if (line == _lastFetchLine)
        _lastFetchLine = ~0ULL;
}

void
CacheHierarchy::resetStats()
{
    _instAccesses = _instL2Misses = 0;
    _loadAccesses = _loadL2Misses = 0;
    _storeAccesses = _storeL2Misses = 0;
    _l2Accesses = 0;
    _prefetchesIssued = 0;
    _l1i.resetStats();
    _l1d.resetStats();
    _l2.resetStats();
}

void
CacheHierarchy::exportStats(StatsRegistry &reg,
                            const std::string &prefix) const
{
    reg.counter(prefix + "instAccesses", _instAccesses);
    reg.counter(prefix + "instL2Misses", _instL2Misses);
    reg.counter(prefix + "loadAccesses", _loadAccesses);
    reg.counter(prefix + "loadL2Misses", _loadL2Misses);
    reg.counter(prefix + "storeAccesses", _storeAccesses);
    reg.counter(prefix + "storeL2Misses", _storeL2Misses);
    reg.counter(prefix + "l2Accesses", _l2Accesses);
    reg.counter(prefix + "prefetchesIssued", _prefetchesIssued);
}

} // namespace storemlp
