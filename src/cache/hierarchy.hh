/**
 * @file
 * Two-level cache hierarchy: split L1 I/D (write-through,
 * no-write-allocate L1D) in front of a shared unified L2, matching the
 * paper's default configuration (Section 4.3). The off-chip boundary
 * is an L2 miss.
 */

#ifndef STOREMLP_CACHE_HIERARCHY_HH
#define STOREMLP_CACHE_HIERARCHY_HH

#include <cstdint>
#include <functional>
#include <string>

#include "cache/set_assoc_cache.hh"

namespace storemlp
{

class StatsRegistry;

/** Where an access was satisfied. */
enum class MissLevel : uint8_t
{
    L1Hit,
    L2Hit,
    OffChip,
};

/** Hierarchy geometry. */
struct HierarchyConfig
{
    CacheConfig l1i = CacheConfig::l1Default();
    CacheConfig l1d = CacheConfig::l1Default();
    CacheConfig l2 = CacheConfig::l2Default();
};

/**
 * The on-chip memory system of one core/chip. All classification of
 * "off-chip miss" in the epoch model goes through here.
 */
class CacheHierarchy
{
  public:
    /** Invoked when L2 evicts a line; args: line addr, was dirty,
     *  coherence state byte of the victim. */
    using EvictionListener = std::function<void(uint64_t, bool, uint8_t)>;

    explicit CacheHierarchy(const HierarchyConfig &config = {});

    /**
     * Instruction fetch for the line containing `pc`. Inline fast
     * path: sequential fetches within one line cost a compare.
     */
    MissLevel
    instFetch(uint64_t pc)
    {
        uint64_t line = lineAddr(pc);
        ++_instAccesses;
        if (line == _lastFetchLine)
            return MissLevel::L1Hit;
        return instFetchSlow(line);
    }
    /** Data load. Inline: the L1D-hit fast path is a memo compare. */
    MissLevel
    load(uint64_t addr)
    {
        ++_loadAccesses;
        if (_l1d.access(addr, false, true).hit)
            return MissLevel::L1Hit;
        MissLevel lvl = accessL2(addr, false);
        if (lvl == MissLevel::OffChip)
            ++_loadL2Misses;
        return lvl;
    }
    /**
     * Data store: write-through, no-write-allocate L1D; allocates in
     * L2. Returns OffChip when the line missed the L2.
     */
    MissLevel
    store(uint64_t addr)
    {
        ++_storeAccesses;
        // Write-through no-write-allocate L1D: update on hit, never
        // fill. Stores always reach the (write-allocate) L2.
        _l1d.access(addr, true, false);
        MissLevel lvl = accessL2(addr, true);
        if (lvl == MissLevel::OffChip)
            ++_storeL2Misses;
        return lvl;
    }
    /**
     * Install a line into the L2 (hardware prefetch / scout prefetch).
     * @param for_write fills the line dirty (prefetch-for-write)
     * @return true if the line was already present
     */
    bool prefetchLine(uint64_t addr, bool for_write);

    /** Non-destructive L2 presence check. */
    bool l2Probe(uint64_t addr) const { return _l2.probe(addr); }
    /** Invalidate a line everywhere on chip (coherence snoops). */
    void invalidateLine(uint64_t addr);
    /**
     * Invalidate for a remote request-to-own: ownership transfers to
     * the requester, so the eviction listener (which would retain
     * ownership in the SMAC) is deliberately not notified.
     */
    void invalidateForCoherence(uint64_t addr);

    SetAssocCache &l1i() { return _l1i; }
    SetAssocCache &l1d() { return _l1d; }
    SetAssocCache &l2() { return _l2; }
    const SetAssocCache &l2() const { return _l2; }

    void setEvictionListener(EvictionListener cb) { _onEvict = std::move(cb); }

    const HierarchyConfig &config() const { return _config; }
    uint32_t lineBytes() const { return _config.l2.lineBytes; }
    uint64_t lineAddr(uint64_t addr) const { return _config.l2.lineAddr(addr); }

    // ---- statistics (reset between warmup and measurement) ----
    uint64_t instAccesses() const { return _instAccesses; }
    uint64_t instL2Misses() const { return _instL2Misses; }
    uint64_t loadAccesses() const { return _loadAccesses; }
    uint64_t loadL2Misses() const { return _loadL2Misses; }
    uint64_t storeAccesses() const { return _storeAccesses; }
    uint64_t storeL2Misses() const { return _storeL2Misses; }
    uint64_t l2Accesses() const { return _l2Accesses; }
    uint64_t prefetchesIssued() const { return _prefetchesIssued; }
    void resetStats();

    /** Register all access/miss counters under `prefix`. */
    void exportStats(StatsRegistry &reg,
                     const std::string &prefix = "cache.") const;

  private:
    MissLevel
    accessL2(uint64_t addr, bool is_write)
    {
        ++_l2Accesses;
        AccessResult r = _l2.access(addr, is_write, true);
        if (r.victimValid && _onEvict)
            _onEvict(r.victimLineAddr, r.victimDirty, r.victimState);
        return r.hit ? MissLevel::L2Hit : MissLevel::OffChip;
    }
    /** Line-crossing instruction fetch: L1I then L2. */
    MissLevel instFetchSlow(uint64_t line);

    HierarchyConfig _config;
    SetAssocCache _l1i;
    SetAssocCache _l1d;
    SetAssocCache _l2;
    EvictionListener _onEvict;

    uint64_t _lastFetchLine = ~0ULL; ///< fast path for sequential fetch

    uint64_t _instAccesses = 0;
    uint64_t _instL2Misses = 0;
    uint64_t _loadAccesses = 0;
    uint64_t _loadL2Misses = 0;
    uint64_t _storeAccesses = 0;
    uint64_t _storeL2Misses = 0;
    uint64_t _l2Accesses = 0;
    uint64_t _prefetchesIssued = 0;
};

} // namespace storemlp

#endif // STOREMLP_CACHE_HIERARCHY_HH
