/**
 * @file
 * TLB model. The paper's default configuration includes a shared
 * 2K-entry TLB; TLB misses are not a window-termination condition in
 * the epoch model (the paper does not treat them as one) so the model
 * is purely statistical, but it is part of the default configuration
 * and its miss rate is reported by the runner for completeness.
 */

#ifndef STOREMLP_CACHE_TLB_HH
#define STOREMLP_CACHE_TLB_HH

#include <cstdint>
#include <utility>
#include <vector>

namespace storemlp
{

/** TLB geometry. */
struct TlbConfig
{
    uint32_t entries = 2048;
    uint32_t assoc = 8;
    uint32_t pageBytes = 8192;
};

/**
 * Set-associative TLB with LRU replacement. A two-entry memo keeps
 * the most recently hit entries so runs of same-page references — and
 * the common pattern of code touching one page while data touches
 * another — skip the way scan; the memo path applies the same counter
 * and LRU updates as the scan.
 */
class Tlb
{
  public:
    explicit Tlb(const TlbConfig &config = {});

    /** Translate; returns true on TLB hit. */
    bool
    access(uint64_t vaddr)
    {
        uint64_t vpn = _pageShift ? (vaddr >> _pageShift)
                                  : (vaddr / _config.pageBytes);
        if (_memo && vpn == _memoVpn) {
            ++_accesses;
            _memo->lru = ++_lruClock;
            return true;
        }
        if (_memo2 && vpn == _memoVpn2) {
            ++_accesses;
            _memo2->lru = ++_lruClock;
            // MRU-order the memo pair.
            std::swap(_memo, _memo2);
            std::swap(_memoVpn, _memoVpn2);
            return true;
        }
        return accessSearch(vpn);
    }

    uint64_t accesses() const { return _accesses; }
    uint64_t misses() const { return _misses; }
    void resetStats() { _accesses = _misses = 0; }
    void clear();

    const TlbConfig &config() const { return _config; }

  private:
    struct Entry
    {
        uint64_t vpn = 0;
        uint64_t lru = 0;
        bool valid = false;
    };

    /** Way scan + refill for a memo miss; takes the precomputed VPN. */
    bool accessSearch(uint64_t vpn);
    /** Make `entry` the MRU memo, demoting the previous one. */
    void promoteMemo(Entry *entry, uint64_t vpn);

    TlbConfig _config;
    uint32_t _numSets;
    uint32_t _pageShift = 0; ///< log2(pageBytes), 0 = use division
    std::vector<Entry> _entries;
    uint64_t _lruClock = 0;
    Entry *_memo = nullptr; ///< most recently hit entry
    uint64_t _memoVpn = 0;
    Entry *_memo2 = nullptr; ///< second most recently hit entry
    uint64_t _memoVpn2 = 0;
    uint64_t _accesses = 0;
    uint64_t _misses = 0;
};

} // namespace storemlp

#endif // STOREMLP_CACHE_TLB_HH
