/**
 * @file
 * TLB model. The paper's default configuration includes a shared
 * 2K-entry TLB; TLB misses are not a window-termination condition in
 * the epoch model (the paper does not treat them as one) so the model
 * is purely statistical, but it is part of the default configuration
 * and its miss rate is reported by the runner for completeness.
 */

#ifndef STOREMLP_CACHE_TLB_HH
#define STOREMLP_CACHE_TLB_HH

#include <cstdint>
#include <vector>

namespace storemlp
{

/** TLB geometry. */
struct TlbConfig
{
    uint32_t entries = 2048;
    uint32_t assoc = 8;
    uint32_t pageBytes = 8192;
};

/**
 * Set-associative TLB with LRU replacement.
 */
class Tlb
{
  public:
    explicit Tlb(const TlbConfig &config = {});

    /** Translate; returns true on TLB hit. */
    bool access(uint64_t vaddr);

    uint64_t accesses() const { return _accesses; }
    uint64_t misses() const { return _misses; }
    void resetStats() { _accesses = _misses = 0; }
    void clear();

    const TlbConfig &config() const { return _config; }

  private:
    struct Entry
    {
        uint64_t vpn = 0;
        uint64_t lru = 0;
        bool valid = false;
    };

    TlbConfig _config;
    uint32_t _numSets;
    std::vector<Entry> _entries;
    uint64_t _lruClock = 0;
    uint64_t _accesses = 0;
    uint64_t _misses = 0;
};

} // namespace storemlp

#endif // STOREMLP_CACHE_TLB_HH
