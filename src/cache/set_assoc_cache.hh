/**
 * @file
 * Generic set-associative LRU cache model with victim reporting and a
 * per-line user state byte (used by the coherence layer for MESI).
 */

#ifndef STOREMLP_CACHE_SET_ASSOC_CACHE_HH
#define STOREMLP_CACHE_SET_ASSOC_CACHE_HH

#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "cache/cache_config.hh"
#include "stats/counter.hh"

namespace storemlp
{

/** Result of a cache access. */
struct AccessResult
{
    bool hit = false;
    /** A valid line was evicted to make room. */
    bool victimValid = false;
    uint64_t victimLineAddr = 0;
    bool victimDirty = false;
    uint8_t victimState = 0;
};

/**
 * Set-associative cache with true-LRU replacement. Tracks only tags
 * (this is a timing/placement model, not a data model). Lines carry a
 * dirty bit and an opaque user `state` byte for coherence layering.
 *
 * Hot-path notes: geometry is power-of-two (asserted), so set/tag
 * extraction is shift/mask, and a one-entry memo remembers the line
 * of the most recent hit so consecutive same-line accesses skip the
 * way search entirely. The memo path performs the identical side
 * effects (counters, LRU refresh, dirty bit) as the searched path, so
 * results are bit-for-bit unchanged.
 */
class SetAssocCache
{
  public:
    explicit SetAssocCache(const CacheConfig &config);

    /**
     * Access the line containing `addr`.
     * @param is_write marks the line dirty on hit/fill
     * @param allocate install the line on miss (false = no-write-allocate)
     * @return hit/miss plus any victim displaced by the fill
     */
    AccessResult
    access(uint64_t addr, bool is_write, bool allocate = true)
    {
        uint64_t line_no = addr >> _lineShift;
        if (_memoLine && line_no == _memoLineNo) {
            ++_accesses;
            AccessResult res;
            res.hit = true;
            if (_config.replacement != ReplacementPolicy::Fifo)
                _memoLine->lru = ++_lruClock;
            if (is_write)
                _memoLine->dirty = true;
            return res;
        }
        return accessSearch(addr, is_write, allocate);
    }

    /** Non-destructive presence check (does not update LRU). */
    bool probe(uint64_t addr) const { return findLine(addr) != nullptr; }
    /** Probe and return the line's user state, if present. */
    std::optional<uint8_t>
    probeState(uint64_t addr) const
    {
        if (const Line *line = findLine(addr))
            return line->state;
        return std::nullopt;
    }
    /** Set the user state byte of a present line; false if absent. */
    bool
    setState(uint64_t addr, uint8_t state)
    {
        if (Line *line = findLine(addr)) {
            line->state = state;
            return true;
        }
        return false;
    }
    /** Invalidate a line; returns true (plus dirtiness) if present. */
    struct InvalidateResult { bool wasPresent = false; bool wasDirty = false; uint8_t state = 0; };
    InvalidateResult invalidate(uint64_t addr);
    /** Drop all lines. */
    void clear();

    const CacheConfig &config() const { return _config; }
    uint64_t accesses() const { return _accesses; }
    uint64_t misses() const { return _misses; }
    uint64_t evictionsDirty() const { return _evictionsDirty; }
    void resetStats() { _accesses = _misses = _evictionsDirty = 0; }

    /** Number of valid lines currently resident (O(capacity)). */
    uint64_t residentLines() const;

  private:
    struct Line
    {
        uint64_t tag = 0;
        uint64_t lru = 0;
        bool valid = false;
        bool dirty = false;
        uint8_t state = 0;
    };

    // Geometry is asserted power-of-two in the constructor, so both
    // of these are shifts, not divisions.
    uint64_t setIndex(uint64_t addr) const
    {
        return (addr >> _lineShift) & (_numSets - 1);
    }
    uint64_t tagOf(uint64_t addr) const
    {
        return addr >> (_lineShift + _setShift);
    }
    /** Locate a present line; updates the memo on a search hit. */
    Line *
    findLine(uint64_t addr)
    {
        uint64_t line_no = addr >> _lineShift;
        if (_memoLine && line_no == _memoLineNo)
            return _memoLine;
        return findLineSearch(line_no);
    }
    const Line *
    findLine(uint64_t addr) const
    {
        return const_cast<SetAssocCache *>(this)->findLine(addr);
    }
    Line *findLineSearch(uint64_t line_no);

    /** Way-search + fill path of access(); memo miss only. */
    AccessResult accessSearch(uint64_t addr, bool is_write, bool allocate);

    Line *chooseVictim(uint64_t set);

    CacheConfig _config;
    uint64_t _numSets;
    uint32_t _lineShift = 0; ///< log2(lineBytes)
    uint32_t _setShift = 0;  ///< log2(numSets)
    std::vector<Line> _lines; // numSets x assoc
    uint64_t _lruClock = 0;
    uint64_t _rngState = 0x9e3779b97f4a7c15ULL; ///< Random policy

    // One-entry memo: the line of the most recent hit/fill. Invariant:
    // when non-null, _memoLine is valid and its line number (tag+set)
    // equals _memoLineNo. Cleared on invalidate/clear of that line.
    Line *_memoLine = nullptr;
    uint64_t _memoLineNo = 0;

    uint64_t _accesses = 0;
    uint64_t _misses = 0;
    uint64_t _evictionsDirty = 0;
};

} // namespace storemlp

#endif // STOREMLP_CACHE_SET_ASSOC_CACHE_HH
