/**
 * @file
 * Cache geometry configuration.
 */

#ifndef STOREMLP_CACHE_CACHE_CONFIG_HH
#define STOREMLP_CACHE_CACHE_CONFIG_HH

#include <cstdint>

namespace storemlp
{

/** Replacement policies for SetAssocCache. */
enum class ReplacementPolicy : uint8_t
{
    Lru,    ///< true LRU (paper default)
    Fifo,   ///< evict by fill order
    Random, ///< pseudo-random (deterministic, seeded by geometry)
};

/** Geometry of one set-associative cache. */
struct CacheConfig
{
    uint64_t sizeBytes = 2 * 1024 * 1024;
    uint32_t assoc = 4;
    uint32_t lineBytes = 64;
    ReplacementPolicy replacement = ReplacementPolicy::Lru;

    uint64_t numSets() const { return sizeBytes / (assoc * lineBytes); }
    uint64_t lineAddr(uint64_t addr) const { return addr & ~(uint64_t(lineBytes) - 1); }

    /** Paper defaults (Section 4.3). */
    static CacheConfig l1Default() { return {32 * 1024, 4, 64}; }
    static CacheConfig l2Default() { return {2 * 1024 * 1024, 4, 64}; }
};

} // namespace storemlp

#endif // STOREMLP_CACHE_CACHE_CONFIG_HH
