/**
 * @file
 * TLB implementation.
 */

#include "cache/tlb.hh"

#include <cassert>
#include <cstddef>

namespace storemlp
{

Tlb::Tlb(const TlbConfig &config) : _config(config)
{
    assert(config.entries % config.assoc == 0);
    _numSets = config.entries / config.assoc;
    assert(_numSets && (_numSets & (_numSets - 1)) == 0);
    _entries.resize(config.entries);
}

bool
Tlb::access(uint64_t vaddr)
{
    ++_accesses;
    uint64_t vpn = vaddr / _config.pageBytes;
    uint32_t set = static_cast<uint32_t>(vpn & (_numSets - 1));
    Entry *base = &_entries[static_cast<size_t>(set) * _config.assoc];

    for (uint32_t w = 0; w < _config.assoc; ++w) {
        if (base[w].valid && base[w].vpn == vpn) {
            base[w].lru = ++_lruClock;
            return true;
        }
    }

    ++_misses;
    Entry *victim = &base[0];
    for (uint32_t w = 0; w < _config.assoc; ++w) {
        if (!base[w].valid) {
            victim = &base[w];
            break;
        }
        if (base[w].lru < victim->lru)
            victim = &base[w];
    }
    victim->valid = true;
    victim->vpn = vpn;
    victim->lru = ++_lruClock;
    return false;
}

void
Tlb::clear()
{
    for (auto &e : _entries)
        e = Entry();
    _lruClock = 0;
}

} // namespace storemlp
