/**
 * @file
 * TLB implementation.
 */

#include "cache/tlb.hh"

#include <cassert>
#include <cstddef>

namespace storemlp
{

Tlb::Tlb(const TlbConfig &config) : _config(config)
{
    assert(config.entries % config.assoc == 0);
    _numSets = config.entries / config.assoc;
    assert(_numSets && (_numSets & (_numSets - 1)) == 0);
    if (config.pageBytes && (config.pageBytes & (config.pageBytes - 1)) == 0) {
        uint32_t v = config.pageBytes;
        while (v > 1) {
            v >>= 1;
            ++_pageShift;
        }
    }
    _entries.resize(config.entries);
}

bool
Tlb::accessSearch(uint64_t vpn)
{
    ++_accesses;
    uint32_t set = static_cast<uint32_t>(vpn & (_numSets - 1));
    Entry *base = &_entries[static_cast<size_t>(set) * _config.assoc];

    for (uint32_t w = 0; w < _config.assoc; ++w) {
        if (base[w].valid && base[w].vpn == vpn) {
            base[w].lru = ++_lruClock;
            promoteMemo(&base[w], vpn);
            return true;
        }
    }

    ++_misses;
    Entry *victim = &base[0];
    for (uint32_t w = 0; w < _config.assoc; ++w) {
        if (!base[w].valid) {
            victim = &base[w];
            break;
        }
        if (base[w].lru < victim->lru)
            victim = &base[w];
    }
    victim->valid = true;
    victim->vpn = vpn;
    victim->lru = ++_lruClock;
    promoteMemo(victim, vpn);
    return false;
}

void
Tlb::promoteMemo(Entry *entry, uint64_t vpn)
{
    // The refilled/hit entry becomes MRU; the previous MRU is demoted.
    // If `entry` was the demoted slot it now maps a different VPN, so
    // the demoted memo must not survive pointing at it.
    if (_memo != entry) {
        _memo2 = _memo;
        _memoVpn2 = _memoVpn;
    }
    if (_memo2 == entry)
        _memo2 = nullptr;
    _memo = entry;
    _memoVpn = vpn;
}

void
Tlb::clear()
{
    for (auto &e : _entries)
        e = Entry();
    _lruClock = 0;
    _memo = nullptr;
    _memo2 = nullptr;
}

} // namespace storemlp
