/**
 * @file
 * Set-associative cache implementation.
 */

#include "cache/set_assoc_cache.hh"

#include <cassert>

namespace storemlp
{

namespace
{
bool
isPow2(uint64_t v)
{
    return v && ((v & (v - 1)) == 0);
}
} // namespace

SetAssocCache::SetAssocCache(const CacheConfig &config)
    : _config(config), _numSets(config.numSets())
{
    assert(_numSets >= 1);
    assert(isPow2(config.lineBytes));
    assert(isPow2(_numSets));
    _lines.resize(_numSets * _config.assoc);
}

uint64_t
SetAssocCache::setIndex(uint64_t addr) const
{
    return (addr / _config.lineBytes) & (_numSets - 1);
}

uint64_t
SetAssocCache::tagOf(uint64_t addr) const
{
    return (addr / _config.lineBytes) / _numSets;
}

SetAssocCache::Line *
SetAssocCache::findLine(uint64_t addr)
{
    uint64_t set = setIndex(addr);
    uint64_t tag = tagOf(addr);
    Line *base = &_lines[set * _config.assoc];
    for (uint32_t w = 0; w < _config.assoc; ++w) {
        if (base[w].valid && base[w].tag == tag)
            return &base[w];
    }
    return nullptr;
}

const SetAssocCache::Line *
SetAssocCache::findLine(uint64_t addr) const
{
    return const_cast<SetAssocCache *>(this)->findLine(addr);
}

AccessResult
SetAssocCache::access(uint64_t addr, bool is_write, bool allocate)
{
    ++_accesses;
    AccessResult res;
    if (Line *line = findLine(addr)) {
        res.hit = true;
        if (_config.replacement != ReplacementPolicy::Fifo)
            line->lru = ++_lruClock; // FIFO: age is fill order only
        if (is_write)
            line->dirty = true;
        return res;
    }

    ++_misses;
    if (!allocate)
        return res;

    uint64_t set = setIndex(addr);
    Line *victim = chooseVictim(set);

    if (victim->valid) {
        res.victimValid = true;
        res.victimLineAddr = (victim->tag * _numSets + set)
            * _config.lineBytes;
        res.victimDirty = victim->dirty;
        res.victimState = victim->state;
        if (victim->dirty)
            ++_evictionsDirty;
    }

    victim->valid = true;
    victim->tag = tagOf(addr);
    victim->lru = ++_lruClock;
    victim->dirty = is_write;
    victim->state = 0;
    return res;
}

SetAssocCache::Line *
SetAssocCache::chooseVictim(uint64_t set)
{
    // An invalid way always wins.
    Line *base = &_lines[set * _config.assoc];
    for (uint32_t w = 0; w < _config.assoc; ++w) {
        if (!base[w].valid)
            return &base[w];
    }
    switch (_config.replacement) {
      case ReplacementPolicy::Random: {
        // xorshift64*: deterministic per cache instance.
        _rngState ^= _rngState >> 12;
        _rngState ^= _rngState << 25;
        _rngState ^= _rngState >> 27;
        uint64_t r = _rngState * 2685821657736338717ULL;
        return &base[r % _config.assoc];
      }
      case ReplacementPolicy::Fifo:
      case ReplacementPolicy::Lru:
      default: {
        // FIFO reuses the lru stamp but never refreshes it on hits
        // (see access()); LRU is the refreshed variant.
        Line *victim = &base[0];
        for (uint32_t w = 0; w < _config.assoc; ++w) {
            if (base[w].lru < victim->lru)
                victim = &base[w];
        }
        return victim;
      }
    }
}

bool
SetAssocCache::probe(uint64_t addr) const
{
    return findLine(addr) != nullptr;
}

std::optional<uint8_t>
SetAssocCache::probeState(uint64_t addr) const
{
    if (const Line *line = findLine(addr))
        return line->state;
    return std::nullopt;
}

bool
SetAssocCache::setState(uint64_t addr, uint8_t state)
{
    if (Line *line = findLine(addr)) {
        line->state = state;
        return true;
    }
    return false;
}

SetAssocCache::InvalidateResult
SetAssocCache::invalidate(uint64_t addr)
{
    InvalidateResult r;
    if (Line *line = findLine(addr)) {
        r.wasPresent = true;
        r.wasDirty = line->dirty;
        r.state = line->state;
        line->valid = false;
        line->dirty = false;
        line->state = 0;
    }
    return r;
}

void
SetAssocCache::clear()
{
    for (auto &line : _lines)
        line = Line();
    _lruClock = 0;
}

uint64_t
SetAssocCache::residentLines() const
{
    uint64_t n = 0;
    for (const auto &line : _lines)
        n += line.valid ? 1 : 0;
    return n;
}

} // namespace storemlp
