/**
 * @file
 * Set-associative cache implementation.
 */

#include "cache/set_assoc_cache.hh"

#include <cassert>

namespace storemlp
{

namespace
{
bool
isPow2(uint64_t v)
{
    return v && ((v & (v - 1)) == 0);
}

uint32_t
log2Floor(uint64_t v)
{
    uint32_t s = 0;
    while (v > 1) {
        v >>= 1;
        ++s;
    }
    return s;
}
} // namespace

SetAssocCache::SetAssocCache(const CacheConfig &config)
    : _config(config), _numSets(config.numSets())
{
    assert(_numSets >= 1);
    assert(isPow2(config.lineBytes));
    assert(isPow2(_numSets));
    _lineShift = log2Floor(_config.lineBytes);
    _setShift = log2Floor(_numSets);
    _lines.resize(_numSets * _config.assoc);
}

SetAssocCache::Line *
SetAssocCache::findLineSearch(uint64_t line_no)
{
    uint64_t set = line_no & (_numSets - 1);
    uint64_t tag = line_no >> _setShift;
    Line *base = &_lines[set * _config.assoc];
    for (uint32_t w = 0; w < _config.assoc; ++w) {
        if (base[w].valid && base[w].tag == tag) {
            _memoLine = &base[w];
            _memoLineNo = line_no;
            return &base[w];
        }
    }
    return nullptr;
}

AccessResult
SetAssocCache::accessSearch(uint64_t addr, bool is_write, bool allocate)
{
    ++_accesses;
    AccessResult res;
    if (Line *line = findLine(addr)) {
        res.hit = true;
        if (_config.replacement != ReplacementPolicy::Fifo)
            line->lru = ++_lruClock; // FIFO: age is fill order only
        if (is_write)
            line->dirty = true;
        return res;
    }

    ++_misses;
    if (!allocate)
        return res;

    uint64_t set = setIndex(addr);
    Line *victim = chooseVictim(set);

    if (victim->valid) {
        res.victimValid = true;
        res.victimLineAddr = (victim->tag * _numSets + set)
            * _config.lineBytes;
        res.victimDirty = victim->dirty;
        res.victimState = victim->state;
        if (victim->dirty)
            ++_evictionsDirty;
    }

    victim->valid = true;
    victim->tag = tagOf(addr);
    victim->lru = ++_lruClock;
    victim->dirty = is_write;
    victim->state = 0;
    // The fill may have displaced the memoized line; repoint the memo
    // at the freshly installed one either way.
    _memoLine = victim;
    _memoLineNo = addr >> _lineShift;
    return res;
}

SetAssocCache::Line *
SetAssocCache::chooseVictim(uint64_t set)
{
    // An invalid way always wins.
    Line *base = &_lines[set * _config.assoc];
    for (uint32_t w = 0; w < _config.assoc; ++w) {
        if (!base[w].valid)
            return &base[w];
    }
    switch (_config.replacement) {
      case ReplacementPolicy::Random: {
        // xorshift64*: deterministic per cache instance.
        _rngState ^= _rngState >> 12;
        _rngState ^= _rngState << 25;
        _rngState ^= _rngState >> 27;
        uint64_t r = _rngState * 2685821657736338717ULL;
        return &base[r % _config.assoc];
      }
      case ReplacementPolicy::Fifo:
      case ReplacementPolicy::Lru:
      default: {
        // FIFO reuses the lru stamp but never refreshes it on hits
        // (see access()); LRU is the refreshed variant.
        Line *victim = &base[0];
        for (uint32_t w = 0; w < _config.assoc; ++w) {
            if (base[w].lru < victim->lru)
                victim = &base[w];
        }
        return victim;
      }
    }
}

SetAssocCache::InvalidateResult
SetAssocCache::invalidate(uint64_t addr)
{
    InvalidateResult r;
    if (Line *line = findLine(addr)) {
        r.wasPresent = true;
        r.wasDirty = line->dirty;
        r.state = line->state;
        line->valid = false;
        line->dirty = false;
        line->state = 0;
        if (line == _memoLine)
            _memoLine = nullptr;
    }
    return r;
}

void
SetAssocCache::clear()
{
    for (auto &line : _lines)
        line = Line();
    _lruClock = 0;
    _memoLine = nullptr;
}

uint64_t
SetAssocCache::residentLines() const
{
    uint64_t n = 0;
    for (const auto &line : _lines)
        n += line.valid ? 1 : 0;
    return n;
}

} // namespace storemlp
