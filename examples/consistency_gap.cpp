/**
 * @file
 * Domain example: quantifying the store-performance gap between
 * processor consistency (SPARC TSO) and weak consistency (PowerPC)
 * for a lock-heavy workload, and how far SLE + prefetching past
 * serializing instructions close it — the paper's Section 5.3 story,
 * told through the public API including the lock detector and the
 * PC->WC trace rewriter.
 */

#include <iostream>

#include "core/mlp_sim.hh"
#include "core/runner.hh"
#include "trace/trace_source.hh"
#include "stats/table.hh"
#include "trace/generator.hh"
#include "trace/rewriter.hh"

using namespace storemlp;

namespace
{
RunOutput
runOnce(const RunSpec &spec)
{
    Trace trace = Runner::buildTrace(spec);
    MaterializedSource src(trace);
    return Runner::run(spec, src);
}
} // namespace

int
main(int argc, char **argv)
{
    uint64_t insts = argc > 1 ? std::strtoull(argv[1], nullptr, 10)
                              : 800000;
    WorkloadProfile profile = WorkloadProfile::specjbb(); // lock-heavy

    // Show the methodology pieces explicitly: generate the TSO trace,
    // detect its lock idioms, and rewrite it for weak consistency.
    SyntheticTraceGenerator gen(profile, 42);
    Trace pc_trace = gen.generate(insts + insts / 2);
    LockAnalysis locks = LockDetector().analyze(pc_trace);
    Trace wc_trace = TraceRewriter().toWeakConsistency(pc_trace, locks);

    std::cout << "workload: " << profile.name << "\n"
              << "detected critical sections: " << locks.pairs.size()
              << "\n"
              << "PC trace: " << pc_trace.size()
              << " records, WC rendition: " << wc_trace.size()
              << " records\n\n";

    TextTable table("Bridging the consistency gap (" + profile.name +
                    ", epochs per 1000 instructions)");
    table.header({"configuration", "PC", "WC", "gap"});

    struct Step
    {
        const char *name;
        bool pps;
        bool sle;
    };
    for (Step step : {Step{"baseline", false, false},
                      Step{"+ prefetch past serializing", true, false},
                      Step{"+ SLE", true, true}}) {
        auto run_model = [&](const ModelDescriptor &mm) {
            RunSpec spec;
            spec.profile = profile;
            spec.config = SimConfig::defaults();
            spec.config.memoryModel = mm;
            spec.config.prefetchPastSerializing = step.pps;
            spec.config.sle = step.sle;
            spec.warmupInsts = insts / 2;
            spec.measureInsts = insts;
            return runOnce(spec).sim.epochsPer1000();
        };
        double pc = run_model(ModelDescriptor::pc());
        double wc = run_model(ModelDescriptor::wc());
        table.beginRow();
        table.cell(std::string(step.name));
        table.cell(pc, 3);
        table.cell(wc, 3);
        table.cell(formatFixed(100.0 * (pc - wc) / pc, 1) + "%");
    }
    table.print(std::cout);

    std::cout << "The gap (PC slower than WC) stems from serializing\n"
                 "lock acquires draining the store queue under TSO;\n"
                 "SLE turns those acquires into plain loads.\n";
    return 0;
}
