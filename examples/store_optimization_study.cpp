/**
 * @file
 * Domain example: an architect evaluating which store-handling
 * optimization to adopt for an OLTP-class design. Sweeps every
 * optimization the paper studies on the Database workload and ranks
 * them by off-chip CPI reduction and L2 bandwidth cost.
 */

#include <algorithm>
#include <iostream>
#include <string>
#include <vector>

#include "core/runner.hh"
#include "trace/trace_source.hh"
#include "stats/table.hh"

using namespace storemlp;

namespace
{
RunOutput
runOnce(const RunSpec &spec)
{
    Trace trace = Runner::buildTrace(spec);
    MaterializedSource src(trace);
    return Runner::run(spec, src);
}
} // namespace

namespace
{

struct Variant
{
    std::string name;
    SimConfig config;
    std::optional<SmacConfig> smac;
};

} // namespace

int
main(int argc, char **argv)
{
    uint64_t insts = argc > 1 ? std::strtoull(argv[1], nullptr, 10)
                              : 800000;
    WorkloadProfile profile = WorkloadProfile::database();

    std::vector<Variant> variants;
    {
        SimConfig c = SimConfig::defaults();
        c.storePrefetch = StorePrefetch::None;
        variants.push_back({"baseline (Sp0)", c, std::nullopt});

        variants.push_back({"prefetch at retire (Sp1)",
                            c.withPrefetch(StorePrefetch::AtRetire),
                            std::nullopt});
        variants.push_back({"prefetch at execute (Sp2)",
                            c.withPrefetch(StorePrefetch::AtExecute),
                            std::nullopt});

        SimConfig big_sq = c;
        big_sq.storeQueueSize = 256;
        variants.push_back({"store queue x8 (Sq256)", big_sq,
                            std::nullopt});

        SimConfig sle = c;
        sle.sle = true;
        sle.prefetchPastSerializing = true;
        variants.push_back({"SLE + prefetch past serializing", sle,
                            std::nullopt});

        variants.push_back({"hardware scout (HWS2)",
                            c.withScout(ScoutMode::Hws2),
                            std::nullopt});

        SimConfig kitchen = SimConfig::defaults(); // Sp1 default
        kitchen.sle = true;
        kitchen.prefetchPastSerializing = true;
        kitchen.scout = ScoutMode::Hws2;
        variants.push_back({"Sp1 + SLE + HWS2", kitchen, std::nullopt});

        SimConfig perfect = c;
        perfect.perfectStores = true;
        variants.push_back({"perfect stores (bound)", perfect,
                            std::nullopt});
    }

    struct Row
    {
        std::string name;
        double epi1000;
        double offChipCpi;
        double l2PerInst;
    };
    std::vector<Row> rows;

    std::cout << "Evaluating " << variants.size()
              << " store-handling variants on the " << profile.name
              << " workload (" << insts << " measured instructions)\n\n";

    for (const auto &v : variants) {
        RunSpec spec;
        spec.profile = profile;
        spec.config = v.config;
        spec.smac = v.smac;
        spec.warmupInsts = insts / 2;
        spec.measureInsts = insts;
        RunOutput out = runOnce(spec);
        rows.push_back({v.name, out.sim.epochsPer1000(),
                        out.sim.offChipCpi(500),
                        static_cast<double>(out.l2Accesses) /
                            static_cast<double>(out.sim.instructions)});
    }

    double base = rows.front().offChipCpi;
    std::sort(rows.begin() + 1, rows.end() - 1,
              [](const Row &a, const Row &b) {
                  return a.offChipCpi < b.offChipCpi;
              });

    TextTable table("Store optimization ranking — Database, "
                    "500-cycle memory");
    table.header({"variant", "epochs/1000", "off-chip CPI",
                  "vs baseline", "L2 accesses/inst"});
    for (const auto &r : rows) {
        table.beginRow();
        table.cell(r.name);
        table.cell(r.epi1000, 3);
        table.cell(r.offChipCpi, 3);
        table.cell(formatFixed(100.0 * (base - r.offChipCpi) / base, 1) +
                   "%");
        table.cell(r.l2PerInst, 3);
    }
    table.print(std::cout);

    std::cout << "For the Store Miss Accelerator trade-off (EPI vs\n"
                 "core-to-L2 bandwidth) see examples/smac_sizing,\n"
                 "which runs the multi-chip configuration it needs.\n";
    return 0;
}
