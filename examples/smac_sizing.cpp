/**
 * @file
 * Domain example: sizing the Store Miss Accelerator for a two-chip
 * system. Sweeps SMAC capacity for a chosen workload, reporting EPI,
 * the fraction of missing stores accelerated, SRAM cost (8 bytes per
 * entry, Section 3.3.3) and the core-to-L2 bandwidth comparison
 * against store prefetching — the design trade the paper proposes the
 * SMAC for.
 */

#include <iostream>

#include "core/runner.hh"
#include "trace/trace_source.hh"
#include "stats/table.hh"

using namespace storemlp;

namespace
{
RunOutput
runOnce(const RunSpec &spec)
{
    Trace trace = Runner::buildTrace(spec);
    MaterializedSource src(trace);
    return Runner::run(spec, src);
}
} // namespace

int
main(int argc, char **argv)
{
    uint64_t insts = argc > 1 ? std::strtoull(argv[1], nullptr, 10)
                              : 1200000;
    WorkloadProfile profile = WorkloadProfile::database();

    auto base_spec = [&]() {
        RunSpec spec;
        spec.profile = profile;
        spec.config = SimConfig::defaults();
        spec.config.storePrefetch = StorePrefetch::None;
        spec.numChips = 2;
        spec.peerTraffic = true;
        spec.siblingCore = true;
        spec.warmupInsts = 2 * insts;
        spec.measureInsts = insts;
        return spec;
    };

    TextTable table("SMAC sizing — " + profile.name +
                    " (two chips, two cores/chip, no store prefetch)");
    table.header({"SMAC", "SRAM", "epochs/1000", "accelerated stores",
                  "L2 accesses/inst"});

    auto emit = [&](const std::string &name, uint64_t sram_bytes,
                    const RunOutput &out) {
        table.beginRow();
        table.cell(name);
        table.cell(sram_bytes ? std::to_string(sram_bytes / 1024) + "KB"
                              : std::string("-"));
        table.cell(out.sim.epochsPer1000(), 3);
        uint64_t denom = out.sim.missStores;
        table.cell(formatFixed(denom ? 100.0 *
                       static_cast<double>(
                           out.sim.smacAcceleratedStores) /
                       static_cast<double>(denom) : 0.0, 1) + "%");
        table.cell(static_cast<double>(out.l2Accesses) /
                       static_cast<double>(out.sim.instructions),
                   3);
    };

    emit("none", 0, runOnce(base_spec()));

    for (uint32_t entries_k : {8u, 16u, 32u, 64u, 128u}) {
        RunSpec spec = base_spec();
        SmacConfig smac;
        smac.entries = entries_k * 1024;
        spec.smac = smac;
        emit(std::to_string(entries_k) + "K entries",
             uint64_t(entries_k) * 1024 * 8, runOnce(spec));
    }

    // The bandwidth foil: prefetch-at-execute without a SMAC.
    RunSpec sp2 = base_spec();
    sp2.config.storePrefetch = StorePrefetch::AtExecute;
    emit("(Sp2 prefetch, no SMAC)", 0, runOnce(sp2));

    table.print(std::cout);

    std::cout << "The SMAC approaches prefetching's EPI while issuing\n"
                 "fewer core-to-L2 requests: ownership is retained in\n"
                 "the L2 subsystem instead of being re-fetched.\n";
    return 0;
}
