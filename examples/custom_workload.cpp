/**
 * @file
 * API tour: build a custom workload profile, generate a trace,
 * persist it to disk, reload it, and run it through the epoch engine
 * directly (without the Runner convenience layer) — the integration
 * path for users bringing their own trace sources.
 */

#include <cstdio>
#include <iostream>

#include "coherence/chip.hh"
#include "core/mlp_sim.hh"
#include "trace/generator.hh"
#include "trace/lock_detector.hh"
#include "trace/trace_io.hh"

using namespace storemlp;

int
main()
{
    // 1. A custom workload: a lock-free streaming writer with heavy
    //    store misses and few loads (e.g. a log-structured storage
    //    engine's append path).
    WorkloadProfile profile;
    profile.name = "log-writer";
    profile.loadFrac = 0.15;
    profile.storeFrac = 0.20;
    profile.branchFrac = 0.10;
    profile.storeColdProb = 0.10;
    profile.coldStoresPerLine = 4;
    profile.storeSpatialRun = 8; // sequential appends
    profile.storeRevisitFrac = 0.0;
    profile.loadColdProb = 0.002;
    profile.lockProb = 0.0;      // lock-free
    profile.cpiOnChip = 0.9;

    // 2. Generate and persist the trace.
    SyntheticTraceGenerator gen(profile, 7);
    Trace trace = gen.generate(400000);
    std::string path = "/tmp/storemlp_custom_trace.bin";
    writeTraceFile(path, trace);
    Trace loaded = readTraceFile(path);
    std::cout << "trace round trip: " << loaded.size()
              << " records\n";

    // 3. Assemble the machine by hand: one chip, no bus.
    ChipNode chip(HierarchyConfig{}, 0);
    LockAnalysis locks = LockDetector().analyze(loaded);
    std::cout << "critical sections detected: " << locks.pairs.size()
              << " (lock-free by construction)\n\n";

    // 4. Compare store handling options on the append path.
    for (StorePrefetch sp : {StorePrefetch::None,
                             StorePrefetch::AtRetire,
                             StorePrefetch::AtExecute}) {
        // Fresh chip per config so cache state does not leak.
        ChipNode fresh(HierarchyConfig{}, 0);
        SimConfig cfg;
        cfg.storePrefetch = sp;
        cfg.cpiOnChip = profile.cpiOnChip;
        MlpSimulator sim(cfg, fresh, &locks);
        SimResult res = sim.run(loaded, 100000);
        std::cout << storePrefetchName(sp) << ": "
                  << res.epochsPer1000() << " epochs/1000, store MLP "
                  << res.storeMlp() << ", overlapped stores "
                  << res.overlappedStoreFraction() << "\n";
    }

    std::cout << "\nAn append-mostly path with sequential store misses "
                 "overlaps well once prefetching is on: exactly the "
                 "behaviour the epoch model predicts.\n";
    std::remove(path.c_str());
    return 0;
}
