/**
 * @file
 * Domain example: the paper's actual chip has TWO cores sharing the
 * L2 (Section 4.3). This study runs both cores with full epoch
 * engines and shows (a) how L2 sharing inflates each core's EPI over
 * running alone and (b) that store prefetching helps both cores.
 */

#include <iostream>

#include "core/dual_core.hh"
#include "core/runner.hh"
#include "trace/trace_source.hh"
#include "stats/table.hh"

using namespace storemlp;

int
main(int argc, char **argv)
{
    uint64_t insts = argc > 1 ? std::strtoull(argv[1], nullptr, 10)
                              : 600000;
    WorkloadProfile profile = WorkloadProfile::database();

    TextTable table("Dual-core study — " + profile.name +
                    " (epochs per 1000 instructions)");
    table.header({"configuration", "core0", "core1", "combined"});

    for (StorePrefetch sp : {StorePrefetch::None,
                             StorePrefetch::AtRetire,
                             StorePrefetch::AtExecute}) {
        DualRunSpec spec;
        spec.profile = profile;
        spec.config = SimConfig::defaults();
        spec.config.storePrefetch = sp;
        spec.warmupInsts = insts / 2;
        spec.measureInsts = insts;
        DualRunOutput out = DualCoreRunner::run(spec);

        table.beginRow();
        table.cell(std::string("dual-core ") + storePrefetchName(sp));
        table.cell(out.core0.epochsPer1000(), 3);
        table.cell(out.core1.epochsPer1000(), 3);
        table.cell(out.combinedEpochsPer1000(), 3);
    }

    // Solo reference: the same core 0 with the L2 to itself.
    RunSpec solo;
    solo.profile = profile;
    solo.config = SimConfig::defaults();
    solo.warmupInsts = insts / 2;
    solo.measureInsts = insts;
    Trace solo_trace = Runner::buildTrace(solo);
    MaterializedSource solo_src(solo_trace);
    double alone = Runner::run(solo, solo_src).sim.epochsPer1000();
    table.beginRow();
    table.cell(std::string("core0 alone (Sp1 reference)"));
    table.cell(alone, 3);
    table.cell(std::string("-"));
    table.cell(alone, 3);

    table.print(std::cout);

    std::cout << "Sharing the 2MB L2 raises each core's off-chip miss\n"
                 "rates over running alone; the store-prefetching "
                 "ranking\nis unchanged — the paper's single-core "
                 "conclusions carry\nover to the real two-core chip.\n";
    return 0;
}
