/**
 * @file
 * Quickstart: simulate the paper's default processor on one workload
 * and print every headline metric. Start here.
 *
 * Usage: quickstart [workload] [instructions]
 *   workload: database | tpcw | specjbb | specweb (default database)
 */

#include <cstdint>
#include <cstdlib>
#include <iostream>
#include <string>

#include "core/runner.hh"
#include "trace/trace_source.hh"

using namespace storemlp;

namespace
{

WorkloadProfile
profileByName(const std::string &name)
{
    if (name == "database")
        return WorkloadProfile::database();
    if (name == "tpcw")
        return WorkloadProfile::tpcw();
    if (name == "specjbb")
        return WorkloadProfile::specjbb();
    if (name == "specweb")
        return WorkloadProfile::specweb();
    std::cerr << "unknown workload '" << name
              << "' (expected database|tpcw|specjbb|specweb)\n";
    std::exit(1);
}

} // namespace

int
main(int argc, char **argv)
{
    std::string name = argc > 1 ? argv[1] : "database";
    uint64_t insts = argc > 2 ? std::strtoull(argv[2], nullptr, 10)
                              : 1000000;

    RunSpec spec;
    spec.profile = profileByName(name);
    spec.config = SimConfig::defaults();
    spec.warmupInsts = insts / 5;
    spec.measureInsts = insts;

    std::cout << "workload: " << spec.profile.name << "\n"
              << "config:   paper default (PC, Sp1, SB16/SQ32, 8B "
                 "coalescing)\n\n";

    Trace trace = Runner::buildTrace(spec);
    MaterializedSource src(trace);
    RunOutput out = Runner::run(spec, src);
    out.sim.print(std::cout);

    std::cout << "\nmiss rates per 100 instructions (cf. Table 1):\n"
              << "  stores      " << out.storesPer100 << "\n"
              << "  store miss  " << out.storeMissPer100 << "\n"
              << "  load miss   " << out.loadMissPer100 << "\n"
              << "  inst miss   " << out.instMissPer100 << "\n"
              << "\noff-chip CPI at 500-cycle latency: "
              << out.sim.offChipCpi(500) << "\n";
    return 0;
}
