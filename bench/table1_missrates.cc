/**
 * @file
 * Table 1: store frequency and L2 store/load/instruction miss rates
 * per 100 instructions for a 2MB 4-way set-associative (64B line) L2,
 * measured cache-only (no prefetching, no epoch engine), side by side
 * with the paper's published values.
 */

#include <iostream>

#include "bench_common.hh"

using namespace storemlp;
using namespace storemlp::bench;

int
main(int argc, char **argv)
{
    benchInit(argc, argv, "table1_missrates");
    BenchScale scale = BenchScale::fromEnv();

    TextTable table("Table 1 — store and miss rate statistics "
                    "(per 100 instructions; paper value in braces)");
    table.header({"metric", "Database", "TPC-W", "SPECjbb", "SPECweb"});

    // Cache-only measurement: parallel across workloads on the sweep
    // pool, input traces shared with any epoch-model runs of the same
    // (profile, seed, length) via the process-wide trace cache.
    auto profiles = workloads();
    std::vector<Runner::MissRates> rates(profiles.size());
    std::vector<std::function<void()>> tasks;
    for (size_t i = 0; i < profiles.size(); ++i) {
        tasks.push_back([&, i] {
            RunSpec key;
            key.profile = profiles[i];
            key.seed = 42;
            key.warmupInsts = scale.warmup;
            key.measureInsts = scale.measure;
            auto trace = sweepEngine().traceCache().getOrBuild(
                Runner::traceCacheKey(key),
                [&] { return Runner::buildTrace(key); });
            rates[i] = Runner::measureMissRates(*trace, scale.warmup);
        });
    }
    sweepTasks(tasks);

    auto row = [&](const std::string &name, auto measured, auto target) {
        table.beginRow();
        table.cell(name);
        for (size_t i = 0; i < rates.size(); ++i) {
            table.cell(formatFixed(measured(rates[i]), 2) + " {" +
                       formatFixed(target(profiles[i]), 2) + "}");
        }
    };

    row("Store frequency",
        [](const Runner::MissRates &r) { return r.storesPer100; },
        [](const WorkloadProfile &p) { return p.targetStoresPer100; });
    row("L2 store miss rate",
        [](const Runner::MissRates &r) { return r.storeMissPer100; },
        [](const WorkloadProfile &p) { return p.targetStoreMissPer100; });
    row("L2 load miss rate",
        [](const Runner::MissRates &r) { return r.loadMissPer100; },
        [](const WorkloadProfile &p) { return p.targetLoadMissPer100; });
    row("L2 inst miss rate",
        [](const Runner::MissRates &r) { return r.instMissPer100; },
        [](const WorkloadProfile &p) { return p.targetInstMissPer100; });

    printTable(table);
    return 0;
}
