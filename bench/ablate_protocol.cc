/**
 * @file
 * Ablation: MESI vs MOESI cross-chip coherence (Section 3.3.3 notes
 * the SMAC extends to MOESI). MOESI keeps remotely-read dirty lines
 * in Owned state, avoiding memory writebacks, but those Owned lines
 * cannot seed the SMAC with exclusive ownership when evicted — a real
 * interaction this bench quantifies alongside EPI and bus traffic.
 */

#include <iostream>

#include "bench_common.hh"

using namespace storemlp;
using namespace storemlp::bench;

int
main(int argc, char **argv)
{
    benchInit(argc, argv, "ablate_protocol");
    BenchScale scale = BenchScale::fromEnv();

    std::vector<RunSpec> specs;
    for (const auto &profile : workloads()) {
        for (CoherenceProtocol proto : {CoherenceProtocol::Mesi,
                                        CoherenceProtocol::Moesi}) {
            RunSpec spec;
            spec.profile = profile;
            spec.config = SimConfig::defaults();
            spec.config.storePrefetch = StorePrefetch::None;
            spec.numChips = 2;
            spec.peerTraffic = true;
            spec.siblingCore = true;
            spec.protocol = proto;
            SmacConfig smac;
            smac.entries = 64 * 1024;
            spec.smac = smac;
            spec.warmupInsts = scale.smacWarmup;
            spec.measureInsts = scale.smacMeasure;
            specs.push_back(spec);
        }
    }
    std::vector<RunOutput> outs = sweepAll(specs);

    size_t idx = 0;
    for (const auto &profile : workloads()) {
        TextTable table("Protocol ablation — " + profile.name +
                        " (2 chips + sibling, SMAC 64K)");
        table.header({"protocol", "epochs/1000", "SMAC-accel stores",
                      "SMAC coh-invalidates/1000"});

        for (CoherenceProtocol proto : {CoherenceProtocol::Mesi,
                                        CoherenceProtocol::Moesi}) {
            const RunOutput &out = outs[idx++];
            table.beginRow();
            table.cell(std::string(
                proto == CoherenceProtocol::Mesi ? "MESI" : "MOESI"));
            table.cell(out.sim.epochsPer1000(), 3);
            table.cell(out.sim.smacAcceleratedStores);
            table.cell(out.smacInvalidatesPer1000(), 3);
        }
        printTable(table);
    }
    return 0;
}
