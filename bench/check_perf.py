#!/usr/bin/env python3
"""Compare a google-benchmark JSON run against a committed baseline.

Usage:
    check_perf.py --baseline bench/results/BENCH_sim_throughput.json \
                  --current build/perf_smoke.json [--filter REGEX]

Benchmarks are matched by name and compared on items_per_second
(median aggregate when repetitions were used, raw value otherwise).
A benchmark regresses when

    current < baseline * (1 - tolerance)

Environment:
    STOREMLP_PERF_TOLERANCE   allowed fractional slowdown before a
                              benchmark counts as regressed
                              (default 0.05, i.e. fail on >5%).
    STOREMLP_PERF_WARN_ONLY   when set to a non-empty value other than
                              "0", regressions are reported but the
                              exit code stays 0. Use this on shared
                              runners whose absolute throughput is not
                              comparable to the recording host.

Exit codes: 0 ok (or warn-only), 1 regression, 2 usage/parse error.
"""

import argparse
import json
import os
import re
import sys


def load_rates(path):
    """Map benchmark name -> items_per_second for one JSON file."""
    try:
        with open(path) as f:
            data = json.load(f)
    except (OSError, ValueError) as e:
        print(f"check_perf: cannot read {path}: {e}", file=sys.stderr)
        sys.exit(2)

    raw = {}
    medians = {}
    for b in data.get("benchmarks", []):
        rate = b.get("items_per_second")
        if rate is None:
            continue
        name = b["name"]
        if b.get("run_type") == "aggregate":
            if b.get("aggregate_name") == "median":
                medians[name.rsplit("_", 1)[0]] = rate
        else:
            raw[name] = rate
    # Medians are more robust than single runs; prefer them when the
    # file was recorded with --benchmark_repetitions.
    raw.update(medians)
    return raw


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--baseline", required=True,
                    help="committed baseline JSON")
    ap.add_argument("--current", required=True,
                    help="freshly recorded JSON")
    ap.add_argument("--filter", default="",
                    help="only compare benchmarks matching this regex")
    args = ap.parse_args()

    try:
        tolerance = float(os.environ.get("STOREMLP_PERF_TOLERANCE", "0.05"))
    except ValueError:
        print("check_perf: STOREMLP_PERF_TOLERANCE is not a number",
              file=sys.stderr)
        sys.exit(2)
    warn_only = os.environ.get("STOREMLP_PERF_WARN_ONLY", "0") not in ("", "0")

    base = load_rates(args.baseline)
    cur = load_rates(args.current)
    pat = re.compile(args.filter) if args.filter else None

    common = sorted(n for n in base if n in cur
                    and (pat is None or pat.search(n)))
    if not common:
        print("check_perf: no common benchmarks between baseline and "
              "current run", file=sys.stderr)
        sys.exit(2)

    regressed = []
    width = max(len(n) for n in common)
    for name in common:
        ratio = cur[name] / base[name]
        mark = "ok"
        if ratio < 1.0 - tolerance:
            mark = "REGRESSED"
            regressed.append(name)
        print(f"{name:<{width}}  baseline {base[name]:>14.4g}/s  "
              f"current {cur[name]:>14.4g}/s  ratio {ratio:5.3f}  {mark}")

    if regressed:
        pct = tolerance * 100
        print(f"\n{len(regressed)} benchmark(s) regressed more than "
              f"{pct:g}%: {', '.join(regressed)}")
        if warn_only:
            print("STOREMLP_PERF_WARN_ONLY set; not failing the build.")
            return 0
        return 1
    print(f"\nall {len(common)} benchmark(s) within {tolerance * 100:g}% "
          "of baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main())
