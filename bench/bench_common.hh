/**
 * @file
 * Shared helpers for the table/figure reproduction binaries. Every
 * bench prints paper-style rows via TextTable, executes its runs
 * through the shared SweepEngine (parallel across STOREMLP_JOBS
 * workers, input traces deduplicated by the process-wide TraceCache),
 * and honours environment variables so CI can scale run length:
 *   STOREMLP_WARMUP   warmup instructions  (default 600000)
 *   STOREMLP_MEASURE  measured instructions (default 1000000)
 *   STOREMLP_JOBS     sweep worker threads (default: hardware)
 * See docs/EXPERIMENTS_GUIDE.md for the full knob reference.
 */

#ifndef STOREMLP_BENCH_BENCH_COMMON_HH
#define STOREMLP_BENCH_BENCH_COMMON_HH

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <vector>

#include "cli_util.hh"
#include "core/runner.hh"
#include "core/sweep.hh"
#include "stats/table.hh"
#include "trace/workload.hh"

namespace storemlp::bench
{

/**
 * Parse the shared bench flags (--format, --out, --jobs, --warmup,
 * --measure, --stream, --chunk-insts, --help); call first in every
 * bench main. `tool` names the binary in JSON artifact metadata.
 * Flags override the corresponding STOREMLP_* environment knobs.
 * Without this call the bench behaves as before (text to stdout).
 */
void benchInit(int argc, char **argv, const char *tool);

/** Selected --format (Text unless benchInit saw otherwise). */
tools::OutFormat benchFormat();

/** Report destination: the --out file, else stdout. */
std::ostream &out();

/**
 * Stream for text-mode prose between tables; discards everything in
 * json/csv modes so structured output stays parseable.
 */
std::ostream &prose();

/** Run-length knobs, overridable via environment. */
struct BenchScale
{
    uint64_t warmup = 600 * 1000;
    uint64_t measure = 1000 * 1000;
    /** SMAC experiments need longer horizons (the store-miss working
     *  set must cycle through the L2 before the SMAC sees reuse);
     *  override with STOREMLP_SMAC_WARMUP / STOREMLP_SMAC_MEASURE. */
    uint64_t smacWarmup = 4000 * 1000;
    uint64_t smacMeasure = 1500 * 1000;

    static BenchScale fromEnv();
};

/** The paper's four workloads. */
std::vector<WorkloadProfile> workloads();

/** Apply scale to a spec. */
void applyScale(RunSpec &spec, const BenchScale &scale);

/**
 * Print a result table in the selected format: text (plus CSV rows
 * with STOREMLP_CSV=1), one compact versioned JSON document
 * (--format=json), or titled CSV (--format=csv).
 */
void printTable(const TextTable &table);

/**
 * Run a whole batch of specs through the shared sweep engine and
 * return outputs in submission order. Benches build their spec list
 * with the same nested loops they later print with, so a simple
 * index counter recovers each result.
 */
std::vector<RunOutput> sweepAll(const std::vector<RunSpec> &specs);

/** Run independent non-RunSpec tasks on the sweep worker pool. */
void sweepTasks(const std::vector<std::function<void()>> &tasks);

/** The process-wide engine (shared trace cache, env-driven jobs). */
SweepEngine &sweepEngine();

} // namespace storemlp::bench

#endif // STOREMLP_BENCH_BENCH_COMMON_HH
