/**
 * @file
 * Shared helpers for the table/figure reproduction binaries. Every
 * bench prints paper-style rows via TextTable and honours two
 * environment variables so CI can scale run length:
 *   STOREMLP_WARMUP   warmup instructions  (default 300000)
 *   STOREMLP_MEASURE  measured instructions (default 1000000)
 */

#ifndef STOREMLP_BENCH_BENCH_COMMON_HH
#define STOREMLP_BENCH_BENCH_COMMON_HH

#include <cstdint>
#include <vector>

#include "core/runner.hh"
#include "stats/table.hh"
#include "trace/workload.hh"

namespace storemlp::bench
{

/** Run-length knobs, overridable via environment. */
struct BenchScale
{
    uint64_t warmup = 600 * 1000;
    uint64_t measure = 1000 * 1000;
    /** SMAC experiments need longer horizons (the store-miss working
     *  set must cycle through the L2 before the SMAC sees reuse);
     *  override with STOREMLP_SMAC_WARMUP / STOREMLP_SMAC_MEASURE. */
    uint64_t smacWarmup = 4000 * 1000;
    uint64_t smacMeasure = 1500 * 1000;

    static BenchScale fromEnv();
};

/** The paper's four workloads. */
std::vector<WorkloadProfile> workloads();

/** Apply scale to a spec. */
void applyScale(RunSpec &spec, const BenchScale &scale);

/** Print a result table; with STOREMLP_CSV=1 also emit CSV rows. */
void printTable(const TextTable &table);

} // namespace storemlp::bench

#endif // STOREMLP_BENCH_BENCH_COMMON_HH
