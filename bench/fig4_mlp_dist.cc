/**
 * @file
 * Figure 4: MLP distributions for the default configuration. For each
 * workload, the fraction of total epochs with store MLP = 1..>=10,
 * segmented by the amount of combined load+instruction MLP (0..>=5)
 * in the same epoch. The bottom segment of the left-most bar (store
 * MLP 1, other MLP 0) is the paper's "most expensive" missing store.
 */

#include <iostream>

#include "bench_common.hh"

using namespace storemlp;
using namespace storemlp::bench;

int
main(int argc, char **argv)
{
    benchInit(argc, argv, "fig4_mlp_dist");
    BenchScale scale = BenchScale::fromEnv();

    std::vector<RunSpec> specs;
    for (const auto &profile : workloads()) {
        RunSpec spec;
        spec.profile = profile;
        spec.config = SimConfig::defaults();
        applyScale(spec, scale);
        specs.push_back(spec);
    }
    std::vector<RunOutput> outs = sweepAll(specs);

    size_t idx = 0;
    for (const auto &profile : workloads()) {
        SimResult res = outs[idx++].sim;

        TextTable table("Figure 4 — " + profile.name +
                        " (fraction of epochs; rows = store MLP, "
                        "cols = load+inst MLP)");
        table.header({"storeMLP", "li0", "li1", "li2", "li3", "li4",
                      "li>=5", "row total"});
        const auto &j = res.storeVsOtherMlp;
        for (unsigned x = 1; x <= j.maxX(); ++x) {
            table.beginRow();
            table.cell(x == j.maxX() ? std::string(">=") +
                                           std::to_string(x)
                                     : std::to_string(x));
            double row_total = 0.0;
            for (unsigned y = 0; y <= j.maxY(); ++y) {
                double f = res.epochs
                    ? static_cast<double>(j.cell(x, y)) /
                          static_cast<double>(res.epochs)
                    : 0.0;
                row_total += f;
                table.cell(f, 4);
            }
            table.cell(row_total, 4);
        }
        if (benchFormat() != tools::OutFormat::Text) {
            // Epochs whose store MLP exceeded the top bucket used to
            // be clipped silently; the structured artifact reports
            // them explicitly (the ">=10" row above still includes
            // them, matching the paper's presentation).
            table.beginRow();
            table.cell("overflow(>10)");
            table.cell(res.epochs
                           ? static_cast<double>(
                                 res.storeMlpHist.overflow()) /
                                 static_cast<double>(res.epochs)
                           : 0.0,
                       4);
        }
        printTable(table);

        prose() << "  store MLP (mean over store epochs): "
                << formatFixed(res.storeMlp(), 3)
                << "   overall MLP: " << formatFixed(res.mlp(), 3)
                << "\n\n";
    }
    return 0;
}
