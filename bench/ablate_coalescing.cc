/**
 * @file
 * Ablation described in Section 5.1 prose: store-coalescing
 * granularity (off / 8 B / 64 B) across store queue sizes 16/32/64.
 * The paper reports coalescing is moderately effective for Database
 * and TPC-W at small queues (64 B coalescing makes SQ32 behave like
 * SQ64 without coalescing) and irrelevant for SPECjbb/SPECweb.
 */

#include <iostream>

#include "bench_common.hh"

using namespace storemlp;
using namespace storemlp::bench;

int
main(int argc, char **argv)
{
    benchInit(argc, argv, "ablate_coalescing");
    BenchScale scale = BenchScale::fromEnv();
    const uint32_t grans[] = {0, 8, 64};
    const uint32_t sqs[] = {16, 32, 64};

    std::vector<RunSpec> specs;
    for (const auto &profile : workloads()) {
        for (uint32_t g : grans) {
            for (uint32_t sq : sqs) {
                RunSpec spec;
                spec.profile = profile;
                spec.config = SimConfig::defaults();
                spec.config.coalesceBytes = g;
                spec.config.storeQueueSize = sq;
                applyScale(spec, scale);
                specs.push_back(spec);
            }
        }
    }
    std::vector<RunOutput> outs = sweepAll(specs);

    size_t idx = 0;
    for (const auto &profile : workloads()) {
        TextTable table("Coalescing ablation — " + profile.name +
                        " (epochs per 1000 instructions)");
        table.header({"granularity", "Sq16", "Sq32", "Sq64",
                      "merged/1000"});

        for (uint32_t g : grans) {
            table.beginRow();
            table.cell(g == 0 ? std::string("off")
                              : std::to_string(g) + "B");
            uint64_t merged = 0, insts = 0;
            for (size_t q = 0; q < std::size(sqs); ++q) {
                const SimResult &res = outs[idx++].sim;
                table.cell(res.epochsPer1000(), 3);
                merged = res.coalescedStores;
                insts = res.instructions;
            }
            table.cell(insts ? 1000.0 * static_cast<double>(merged) /
                               static_cast<double>(insts)
                             : 0.0,
                       2);
        }
        printTable(table);
    }
    return 0;
}
