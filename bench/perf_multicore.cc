/**
 * @file
 * Multi-core contention scaling: CPI and snoop-bus invalidation
 * traffic versus core count on the database profile, with every core
 * fully simulated on the real bus (no statistical peer agents).

 * The machine is fixed at two chips on the snooping interconnect —
 * the paper's Section 4.3 chip topology — and the core count doubles
 * from 2 (one core per chip) to 16 (eight sharing each L2), so every
 * step raises both shared-L2 capacity pressure and cross-chip
 * invalidation traffic and the CPI and bus-invalidation series climb
 * monotonically.
 */

#include <algorithm>
#include <functional>
#include <vector>

#include "bench_common.hh"
#include "core/multi_core.hh"

using namespace storemlp;
using namespace storemlp::bench;

int
main(int argc, char **argv)
{
    benchInit(argc, argv, "perf_multicore");
    BenchScale scale = BenchScale::fromEnv();
    const uint32_t core_counts[] = {2, 4, 8, 16};

    std::vector<MultiRunOutput> outs(std::size(core_counts));
    std::vector<std::function<void()>> tasks;
    for (size_t i = 0; i < std::size(core_counts); ++i) {
        tasks.push_back([&outs, &core_counts, &scale, i] {
            MultiRunSpec spec;
            spec.profile = WorkloadProfile::database();
            spec.config = SimConfig::defaults();
            spec.warmupInsts = scale.warmup;
            spec.measureInsts = scale.measure;
            spec.cores = core_counts[i];
            spec.chips = 2;
            outs[i] = MultiCoreRunner::run(spec);
        });
    }
    sweepTasks(tasks);

    TextTable table(
        "Multi-core contention — database: CPI and bus traffic vs "
        "core count (2 chips)");
    table.header({"cores", "chips", "epochs/1000", "off-chip CPI",
                  "bus invalidations", "inval/1000", "dirty xfers"});
    uint32_t latency = SimConfig::defaults().missLatency;
    for (size_t i = 0; i < std::size(core_counts); ++i) {
        const MultiRunOutput &out = outs[i];
        table.beginRow();
        table.cell(static_cast<double>(core_counts[i]), 0);
        table.cell(static_cast<double>(out.chips), 0);
        table.cell(out.combinedEpochsPer1000(), 3);
        table.cell(out.meanOffChipCpi(latency), 4);
        table.cell(static_cast<double>(out.busInvalidations), 0);
        table.cell(out.busInvalidationsPer1000(), 3);
        table.cell(static_cast<double>(out.busDirtyTransfers), 0);
    }
    printTable(table);
    return 0;
}
