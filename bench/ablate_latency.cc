/**
 * @file
 * Ablation: sensitivity of the epoch model to the off-chip miss
 * penalty. EPI is nearly latency-independent by design (the paper's
 * argument for reporting EPI instead of CPI), but the fraction of
 * missing stores fully overlapped with computation shrinks as the
 * latency grows (longer residency windows get interrupted more).
 */

#include <iostream>

#include "bench_common.hh"

using namespace storemlp;
using namespace storemlp::bench;

int
main(int argc, char **argv)
{
    benchInit(argc, argv, "ablate_latency");
    BenchScale scale = BenchScale::fromEnv();
    const uint32_t latencies[] = {100, 250, 500, 750, 1000};

    std::vector<RunSpec> specs;
    for (const auto &profile : workloads()) {
        for (uint32_t lat : latencies) {
            RunSpec spec;
            spec.profile = profile;
            spec.config = SimConfig::defaults();
            spec.config.missLatency = lat;
            applyScale(spec, scale);
            specs.push_back(spec);
        }
    }
    std::vector<RunOutput> outs = sweepAll(specs);

    size_t idx = 0;
    for (const auto &profile : workloads()) {
        TextTable table("Latency ablation — " + profile.name);
        table.header({"latency", "epochs/1000", "off-chip CPI",
                      "overlapped stores", "MLP"});
        for (uint32_t lat : latencies) {
            const SimResult &res = outs[idx++].sim;
            table.beginRow();
            table.cell(static_cast<uint64_t>(lat));
            table.cell(res.epochsPer1000(), 3);
            table.cell(res.offChipCpi(lat), 3);
            table.cell(res.overlappedStoreFraction(), 3);
            table.cell(res.mlp(), 3);
        }
        printTable(table);
    }
    return 0;
}
