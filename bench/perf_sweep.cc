/**
 * @file
 * Sweep-engine performance harness (google-benchmark): wall-clock of
 * a fig7-style configuration batch at 1/2/4 worker threads, and the
 * trace-cache effect in isolation (same batch, cache on vs off, one
 * worker). The batch is 12 runs over 2 distinct traces (PC + WC
 * rewrite), so the cache eliminates 10 of 12 generations.
 */

#include <ostream>
#include <streambuf>

#include <benchmark/benchmark.h>

#include "core/runner.hh"
#include "core/sweep.hh"
#include "trace/trace_source.hh"

using namespace storemlp;

namespace
{

/** Discards everything: isolates epoch-log record cost from disk. */
class NullBuf : public std::streambuf
{
  protected:
    int overflow(int c) override { return c; }
    std::streamsize
    xsputn(const char *, std::streamsize n) override
    {
        return n;
    }
};

std::vector<RunSpec>
fig7StyleBatch(uint64_t warmup, uint64_t measure)
{
    const SimConfig configs[] = {SimConfig::defaults(),
                                 SimConfig::pc2(),
                                 SimConfig::pc3(),
                                 SimConfig::wc1(),
                                 SimConfig::wc2(),
                                 SimConfig::wc3()};
    std::vector<RunSpec> specs;
    for (const SimConfig &cfg : configs) {
        for (StorePrefetch sp :
             {StorePrefetch::AtRetire, StorePrefetch::AtExecute}) {
            RunSpec spec;
            spec.profile = WorkloadProfile::database();
            spec.config = cfg.withPrefetch(sp);
            spec.warmupInsts = warmup;
            spec.measureInsts = measure;
            specs.push_back(spec);
        }
    }
    return specs;
}

void
BM_SweepJobs(benchmark::State &state)
{
    std::vector<RunSpec> specs = fig7StyleBatch(100000, 200000);
    for (auto _ : state) {
        // Fresh engine + cache per iteration: measures a cold sweep
        // (generation + simulation), the shape of a bench binary run.
        TraceCache cache;
        SweepOptions opts;
        opts.jobs = static_cast<unsigned>(state.range(0));
        opts.progress = false;
        SweepEngine engine(opts, &cache);
        auto results = engine.run(specs);
        benchmark::DoNotOptimize(results.size());
    }
    state.SetItemsProcessed(state.iterations() *
                            static_cast<int64_t>(specs.size()));
}
BENCHMARK(BM_SweepJobs)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Unit(benchmark::kMillisecond)
    ->MeasureProcessCPUTime()
    ->UseRealTime();

void
BM_SweepTraceCache(benchmark::State &state)
{
    std::vector<RunSpec> specs = fig7StyleBatch(100000, 200000);
    bool use_cache = state.range(0) != 0;
    for (auto _ : state) {
        TraceCache cache;
        SweepOptions opts;
        opts.jobs = 1;
        opts.useTraceCache = use_cache;
        opts.progress = false;
        SweepEngine engine(opts, &cache);
        auto results = engine.run(specs);
        benchmark::DoNotOptimize(results.size());
    }
    state.SetItemsProcessed(state.iterations() *
                            static_cast<int64_t>(specs.size()));
}
BENCHMARK(BM_SweepTraceCache)
    ->Arg(0)
    ->Arg(1)
    ->Unit(benchmark::kMillisecond);

void
BM_EpochLog(benchmark::State &state)
{
    // Arg(0): epoch log disabled (the null-sink branch per counted
    // epoch). Arg(1): enabled, writing JSON lines into a discarding
    // stream — serialization cost without disk noise.
    RunSpec spec;
    spec.profile = WorkloadProfile::database();
    spec.config = SimConfig::defaults();
    spec.warmupInsts = 100000;
    spec.measureInsts = 200000;
    NullBuf buf;
    std::ostream null_os(&buf);
    bool enabled = state.range(0) != 0;
    if (enabled)
        spec.epochLog = &null_os;
    Trace trace = Runner::buildTrace(spec);
    for (auto _ : state) {
        MaterializedSource src(trace);
        RunOutput out = Runner::run(spec, src);
        benchmark::DoNotOptimize(out.sim.epochs);
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_EpochLog)
    ->Arg(0)
    ->Arg(1)
    ->Unit(benchmark::kMillisecond);

} // namespace

BENCHMARK_MAIN();
