/**
 * @file
 * Figure 7: effectiveness of memory-consistency-model optimizations.
 * For each workload and store-prefetch scheme: epochs per 1000
 * instructions ("with stores" and the perfect-stores floor) for
 *   PC1 default | PC2 +prefetch-past-serializing | PC3 +SLE
 *   WC1 rewritten-trace baseline | WC2 | WC3
 */

#include <iostream>

#include "bench_common.hh"

using namespace storemlp;
using namespace storemlp::bench;

int
main(int argc, char **argv)
{
    benchInit(argc, argv, "fig7_consistency");
    BenchScale scale = BenchScale::fromEnv();
    const StorePrefetch sps[] = {StorePrefetch::None,
                                 StorePrefetch::AtRetire,
                                 StorePrefetch::AtExecute};
    const SimConfig configs[] = {SimConfig::defaults(),
                                 SimConfig::pc2(),
                                 SimConfig::pc3(),
                                 SimConfig::wc1(),
                                 SimConfig::wc2(),
                                 SimConfig::wc3()};
    const char *names[] = {"PC1", "PC2", "PC3", "WC1", "WC2", "WC3"};

    // 4 workloads x 3 prefetch modes x 6 configs x {total, floor} =
    // 144 runs sharing 8 distinct traces (PC + WC rewrite per
    // workload), all submitted as one sweep.
    std::vector<RunSpec> specs;
    for (const auto &profile : workloads()) {
        for (StorePrefetch sp : sps) {
            for (size_t c = 0; c < 6; ++c) {
                RunSpec spec;
                spec.profile = profile;
                spec.config = configs[c].withPrefetch(sp);
                applyScale(spec, scale);
                specs.push_back(spec);

                RunSpec pspec = spec;
                pspec.config.perfectStores = true;
                specs.push_back(pspec);
            }
        }
    }
    std::vector<RunOutput> outs = sweepAll(specs);

    size_t idx = 0;
    for (const auto &profile : workloads()) {
        TextTable table("Figure 7 — " + profile.name +
                        " (epochs per 1000 instructions: total / "
                        "perfect-store floor)");
        table.header({"prefetch", "PC1", "PC2", "PC3", "WC1", "WC2",
                      "WC3"});

        for (StorePrefetch sp : sps) {
            (void)sp;
            table.beginRow();
            table.cell(std::string(storePrefetchName(sp)));
            for (size_t c = 0; c < 6; ++c) {
                double total = outs[idx++].sim.epochsPer1000();
                double floor = outs[idx++].sim.epochsPer1000();
                table.cell(formatFixed(total, 3) + "/" +
                           formatFixed(floor, 3));
            }
        }
        printTable(table);
        (void)names;
    }
    return 0;
}
