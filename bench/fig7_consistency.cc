/**
 * @file
 * Figure 7: effectiveness of memory-consistency-model optimizations.
 * For each workload and store-prefetch scheme: epochs per 1000
 * instructions ("with stores" and the perfect-stores floor) for
 *   PC1 default | PC2 +prefetch-past-serializing | PC3 +SLE
 *   WC1 rewritten-trace baseline | WC2 | WC3
 */

#include <iostream>

#include "bench_common.hh"

using namespace storemlp;
using namespace storemlp::bench;

int
main()
{
    BenchScale scale = BenchScale::fromEnv();
    const StorePrefetch sps[] = {StorePrefetch::None,
                                 StorePrefetch::AtRetire,
                                 StorePrefetch::AtExecute};
    const SimConfig configs[] = {SimConfig::defaults(),
                                 SimConfig::pc2(),
                                 SimConfig::pc3(),
                                 SimConfig::wc1(),
                                 SimConfig::wc2(),
                                 SimConfig::wc3()};
    const char *names[] = {"PC1", "PC2", "PC3", "WC1", "WC2", "WC3"};

    for (const auto &profile : workloads()) {
        TextTable table("Figure 7 — " + profile.name +
                        " (epochs per 1000 instructions: total / "
                        "perfect-store floor)");
        table.header({"prefetch", "PC1", "PC2", "PC3", "WC1", "WC2",
                      "WC3"});

        for (StorePrefetch sp : sps) {
            table.beginRow();
            table.cell(std::string(storePrefetchName(sp)));
            for (size_t c = 0; c < 6; ++c) {
                RunSpec spec;
                spec.profile = profile;
                spec.config = configs[c].withPrefetch(sp);
                applyScale(spec, scale);
                double total = Runner::run(spec).sim.epochsPer1000();

                RunSpec pspec = spec;
                pspec.config.perfectStores = true;
                double floor =
                    Runner::run(pspec).sim.epochsPer1000();

                table.cell(formatFixed(total, 3) + "/" +
                           formatFixed(floor, 3));
            }
        }
        printTable(table);
        (void)names;
    }
    return 0;
}
