/**
 * @file
 * Figure 5: performance effects of the Store Miss Accelerator. For
 * each workload and store-prefetch scheme {Sp0, Sp1, Sp2}: epochs per
 * 1000 instructions without a SMAC, with SMAC sizes 8K..128K entries,
 * and with perfect stores. Two-chip system with peer traffic; SMAC
 * runs use a longer warmup (the paper used 1B instructions because
 * the SMAC covers a larger address space).
 */

#include <iostream>

#include "bench_common.hh"

using namespace storemlp;
using namespace storemlp::bench;

int
main(int argc, char **argv)
{
    benchInit(argc, argv, "fig5_smac");
    BenchScale scale = BenchScale::fromEnv();
    const StorePrefetch sps[] = {StorePrefetch::None,
                                 StorePrefetch::AtRetire,
                                 StorePrefetch::AtExecute};
    const uint32_t smac_entries_k[] = {8, 16, 32, 64, 128};

    // Pass 1: collect specs for every workload/prefetch/SMAC point.
    std::vector<RunSpec> specs;
    for (const auto &profile : workloads()) {
        for (StorePrefetch sp : sps) {
            auto make = [&](std::optional<SmacConfig> smac,
                            bool perfect) {
                RunSpec spec;
                spec.profile = profile;
                spec.config = SimConfig::defaults();
                spec.config.storePrefetch = sp;
                spec.config.perfectStores = perfect;
                spec.numChips = 2;
                spec.peerTraffic = true;
                spec.siblingCore = true; // 2 cores/chip (Section 4.3)
                spec.smac = smac;
                // The SMAC covers a larger address space than the L2:
                // warm much longer (paper Section 4.2 used 1B).
                spec.warmupInsts = scale.smacWarmup;
                spec.measureInsts = scale.smacMeasure;
                return spec;
            };
            specs.push_back(make(std::nullopt, false));
            for (uint32_t k : smac_entries_k) {
                SmacConfig smac;
                smac.entries = k * 1024;
                specs.push_back(make(smac, false));
            }
            specs.push_back(make(std::nullopt, true));
        }
    }
    std::vector<RunOutput> outs = sweepAll(specs);

    size_t idx = 0;
    for (const auto &profile : workloads()) {
        TextTable table("Figure 5 — " + profile.name +
                        " SMAC (epochs per 1000 instructions)");
        table.header({"prefetch", "NoSMAC", "8K", "16K", "32K", "64K",
                      "128K", "perfect"});

        for (StorePrefetch sp : sps) {
            table.beginRow();
            table.cell(std::string(storePrefetchName(sp)));
            for (size_t c = 0; c < 2 + std::size(smac_entries_k); ++c)
                table.cell(outs[idx++].sim.epochsPer1000(), 3);
        }
        printTable(table);
    }
    return 0;
}
