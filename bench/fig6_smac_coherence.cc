/**
 * @file
 * Figure 6: impact of coherence events on SMAC effectiveness.
 *  Left: SMAC coherence invalidates per 1000 instructions as SMAC
 *        entries (8K..128K) and node count (2, 4) vary.
 *  Right: % of missing stores that find a matching SMAC entry that
 *        was invalidated by a coherence event from another node.
 */

#include <iostream>

#include "bench_common.hh"

using namespace storemlp;
using namespace storemlp::bench;

int
main(int argc, char **argv)
{
    benchInit(argc, argv, "fig6_smac_coherence");
    BenchScale scale = BenchScale::fromEnv();
    const uint32_t smac_entries_k[] = {8, 16, 32, 64, 128};
    const uint32_t nodes[] = {2, 4};

    std::vector<RunSpec> specs;
    for (const auto &profile : workloads()) {
        for (uint32_t n : nodes) {
            for (uint32_t k : smac_entries_k) {
                RunSpec spec;
                spec.profile = profile;
                spec.config = SimConfig::defaults();
                spec.numChips = n;
                spec.peerTraffic = true;
                spec.siblingCore = true; // 2 cores/chip (Section 4.3)
                SmacConfig smac;
                smac.entries = k * 1024;
                spec.smac = smac;
                spec.warmupInsts = scale.smacWarmup;
                spec.measureInsts = scale.smacMeasure;
                specs.push_back(spec);
            }
        }
    }
    std::vector<RunOutput> outs = sweepAll(specs);

    size_t idx = 0;
    for (const auto &profile : workloads()) {
        TextTable inv(
            "Figure 6 (left) — " + profile.name +
            ": SMAC coherence invalidates per 1000 instructions");
        inv.header({"nodes", "8K", "16K", "32K", "64K", "128K"});
        TextTable pct(
            "Figure 6 (right) — " + profile.name +
            ": % missing stores hitting invalidated SMAC lines");
        pct.header({"nodes", "8K", "16K", "32K", "64K", "128K"});

        for (uint32_t n : nodes) {
            inv.beginRow();
            inv.cell(std::to_string(n) + "-node");
            pct.beginRow();
            pct.cell(std::to_string(n) + "-node");

            for (size_t k = 0; k < std::size(smac_entries_k); ++k) {
                const RunOutput &out = outs[idx++];
                inv.cell(out.smacInvalidatesPer1000(), 3);
                pct.cell(out.smacHitInvalidPct(), 2);
            }
        }
        printTable(inv);
        printTable(pct);
    }
    return 0;
}
