/**
 * @file
 * Table 2: fraction of missing stores fully overlapped with
 * computation, default processor configuration, 500-cycle memory
 * latency. Paper values: 0.09 / 0.12 / 0.06 / 0.22.
 */

#include <iostream>

#include "bench_common.hh"

using namespace storemlp;
using namespace storemlp::bench;

int
main(int argc, char **argv)
{
    benchInit(argc, argv, "table2_overlap");
    BenchScale scale = BenchScale::fromEnv();

    TextTable table("Table 2 — fraction of missing stores fully "
                    "overlapped with computation");
    table.header({"", "Database", "TPC-W", "SPECjbb", "SPECweb"});

    const double paper[] = {0.09, 0.12, 0.06, 0.22};

    std::vector<RunSpec> specs;
    for (const auto &profile : workloads()) {
        RunSpec spec;
        spec.profile = profile;
        spec.config = SimConfig::defaults();
        applyScale(spec, scale);
        specs.push_back(spec);
    }
    std::vector<RunOutput> outs = sweepAll(specs);

    table.beginRow();
    table.cell(std::string("measured"));
    for (const RunOutput &out : outs)
        table.cell(out.sim.overlappedStoreFraction(), 3);
    table.beginRow();
    table.cell(std::string("paper"));
    for (double p : paper)
        table.cell(p, 2);

    printTable(table);
    return 0;
}
