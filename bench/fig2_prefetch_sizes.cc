/**
 * @file
 * Figure 2: effectiveness of store prefetching, store buffer size and
 * store queue size, under processor consistency with 8-byte store
 * coalescing. For each workload: epochs per 1000 instructions across
 * Sp {Sp0, Sp1, Sp2} x store buffer {8, 16, 32} x store queue
 * {16, 32, 64, 256}, plus the "perfect stores" floor (stores never
 * stall the processor) that forms the figures' bottom segments.
 */

#include <iostream>

#include "bench_common.hh"

using namespace storemlp;
using namespace storemlp::bench;

int
main(int argc, char **argv)
{
    benchInit(argc, argv, "fig2_prefetch_sizes");
    BenchScale scale = BenchScale::fromEnv();
    const StorePrefetch sps[] = {StorePrefetch::None,
                                 StorePrefetch::AtRetire,
                                 StorePrefetch::AtExecute};
    const uint32_t sbs[] = {8, 16, 32};
    const uint32_t sqs[] = {16, 32, 64, 256};

    // Pass 1: collect every run for every workload; pass 2 consumes
    // the results in the same nested-loop order.
    std::vector<RunSpec> specs;
    for (const auto &profile : workloads()) {
        // The perfect-stores floor is prefetch/size independent;
        // compute it once per workload.
        RunSpec pspec;
        pspec.profile = profile;
        pspec.config = SimConfig::defaults();
        pspec.config.perfectStores = true;
        applyScale(pspec, scale);
        specs.push_back(pspec);

        for (StorePrefetch sp : sps) {
            for (uint32_t sb : sbs) {
                for (uint32_t sq : sqs) {
                    RunSpec spec;
                    spec.profile = profile;
                    spec.config = SimConfig::defaults();
                    spec.config.storePrefetch = sp;
                    spec.config.storeBufferSize = sb;
                    spec.config.storeQueueSize = sq;
                    applyScale(spec, scale);
                    specs.push_back(spec);
                }
            }
        }
    }
    std::vector<RunOutput> outs = sweepAll(specs);

    size_t idx = 0;
    for (const auto &profile : workloads()) {
        TextTable table("Figure 2 — " + profile.name +
                        " (epochs per 1000 instructions)");
        table.header({"prefetch", "sbuf", "Sq16", "Sq32", "Sq64",
                      "Sq256", "perfect"});

        double perfect = outs[idx++].sim.epochsPer1000();
        for (StorePrefetch sp : sps) {
            for (uint32_t sb : sbs) {
                table.beginRow();
                table.cell(std::string(storePrefetchName(sp)));
                table.cell(static_cast<uint64_t>(sb));
                for (size_t q = 0; q < std::size(sqs); ++q)
                    table.cell(outs[idx++].sim.epochsPer1000(), 3);
                table.cell(perfect, 3);
            }
        }
        printTable(table);
    }
    return 0;
}
