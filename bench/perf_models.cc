/**
 * @file
 * Memory-model axis sweep: CPI vs model descriptor preset for every
 * workload, run as one sweep batch. With --format=json each table is
 * a versioned (schemaVersion) document, so the model axis can be
 * tracked across commits like any other run artifact.
 */

#include <iostream>

#include "bench_common.hh"

using namespace storemlp;
using namespace storemlp::bench;

int
main(int argc, char **argv)
{
    benchInit(argc, argv, "perf_models");
    BenchScale scale = BenchScale::fromEnv();
    const std::vector<ModelDescriptor> &models =
        ModelDescriptor::presets();

    // 4 workloads x 5 presets, one sweep submission. The trace cache
    // keys on the dialect rewrite, so all Sparc-dialect runs of a
    // workload share one trace and all Power-dialect runs another.
    std::vector<RunSpec> specs;
    for (const auto &profile : workloads()) {
        for (const ModelDescriptor &m : models) {
            RunSpec spec;
            spec.profile = profile;
            spec.config = SimConfig::defaults();
            spec.config.name = m.name;
            spec.config.memoryModel = m;
            applyScale(spec, scale);
            specs.push_back(spec);
        }
    }
    std::vector<RunOutput> outs = sweepAll(specs);

    size_t idx = 0;
    for (const auto &profile : workloads()) {
        TextTable table("Model sweep — " + profile.name +
                        " (paper default machine per descriptor "
                        "preset)");
        table.header({"model", "epochs/1000", "MLP", "store MLP",
                      "off-chip CPI"});
        for (const ModelDescriptor &m : models) {
            const RunOutput &out = outs[idx++];
            table.beginRow();
            table.cell(m.name);
            table.cell(out.sim.epochsPer1000(), 3);
            table.cell(out.sim.mlp(), 3);
            table.cell(out.sim.storeMlp(), 3);
            table.cell(out.sim.offChipCpi(500), 3);
        }
        printTable(table);
    }
    return 0;
}
