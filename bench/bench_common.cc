/**
 * @file
 * Bench helper implementation.
 */

#include "bench_common.hh"

#include <cstdlib>
#include <optional>
#include <fstream>
#include <iostream>
#include <streambuf>

#include "stats/stats_json.hh"
#include "util/parse.hh"

namespace storemlp::bench
{

namespace
{

struct BenchIo
{
    std::string tool = "bench";
    tools::OutFormat fmt = tools::OutFormat::Text;
    std::ofstream file;
    bool toFile = false;
    // Flag overrides; empty/zero defers to the environment knobs.
    std::optional<uint64_t> warmupOverride;
    std::optional<uint64_t> measureOverride;
    unsigned jobs = 0;
    bool streaming = false;
    uint64_t chunkInsts = 0;
};

BenchIo &
io()
{
    static BenchIo b;
    return b;
}

class NullBuf : public std::streambuf
{
  protected:
    int overflow(int c) override { return c; }
};

std::ostream &
nullStream()
{
    static NullBuf buf;
    static std::ostream os(&buf);
    return os;
}

} // namespace

void
benchInit(int argc, char **argv, const char *tool)
{
    io().tool = tool;
    tools::Cli cli(argc, argv, {
        tools::kFormatFlag, tools::kOutFlag,
        tools::kJobsFlag, tools::kWarmupFlag, tools::kMeasureFlag,
        {"stream", "",
         "run against streaming trace sources (O(chunk) trace\n"
         "memory per worker)"},
        tools::kChunkInstsFlag,
    });
    io().fmt = tools::outFormat(cli);
    if (cli.has("out")) {
        std::string path = cli.str("out", "");
        io().file.open(path);
        if (!io().file)
            cli.fail("cannot open --out file '" + path + "'");
        io().toFile = true;
    }
    // Flags beat the STOREMLP_* environment knobs: an explicit
    // command line should never be silently rescaled by ambient env.
    if (cli.has("warmup"))
        io().warmupOverride = cli.num("warmup", 0);
    if (cli.has("measure"))
        io().measureOverride = cli.num("measure", 0);
    if (cli.has("jobs"))
        io().jobs = static_cast<unsigned>(cli.num("jobs", 0));
    io().streaming = cli.flag("stream") || cli.has("chunk-insts");
    io().chunkInsts = cli.num("chunk-insts", 0);
}

tools::OutFormat
benchFormat()
{
    return io().fmt;
}

std::ostream &
out()
{
    return io().toFile ? io().file : std::cout;
}

std::ostream &
prose()
{
    return io().fmt == tools::OutFormat::Text ? out() : nullStream();
}

BenchScale
BenchScale::fromEnv()
{
    // Strict parses: a typo'd scale knob must abort, not silently
    // run a full-length (or zero-length) experiment.
    BenchScale s;
    s.warmup = envU64Strict("STOREMLP_WARMUP", s.warmup, 1);
    s.measure = envU64Strict("STOREMLP_MEASURE", s.measure, 1);
    s.smacWarmup = envU64Strict("STOREMLP_SMAC_WARMUP", s.smacWarmup, 1);
    s.smacMeasure =
        envU64Strict("STOREMLP_SMAC_MEASURE", s.smacMeasure, 1);
    if (io().warmupOverride)
        s.warmup = *io().warmupOverride;
    if (io().measureOverride)
        s.measure = *io().measureOverride;
    return s;
}

std::vector<WorkloadProfile>
workloads()
{
    return WorkloadProfile::allCommercial();
}

void
applyScale(RunSpec &spec, const BenchScale &scale)
{
    spec.warmupInsts = scale.warmup;
    spec.measureInsts = scale.measure;
}

SweepEngine &
sweepEngine()
{
    // Lazily built on first use, after benchInit has parsed the
    // command line, so flag overrides land in the engine options.
    static SweepEngine engine([] {
        SweepOptions opts;
        opts.jobs = io().jobs;
        opts.streaming = io().streaming;
        opts.chunkInsts = io().chunkInsts;
        return opts;
    }());
    return engine;
}

std::vector<RunOutput>
sweepAll(const std::vector<RunSpec> &specs)
{
    std::vector<PlannedRun> planned(specs.size());
    for (size_t i = 0; i < specs.size(); ++i) {
        planned[i].name = "bench" + std::to_string(i);
        planned[i].spec = specs[i];
    }
    std::vector<RunOutcome> outcomes = sweepEngine().execute(planned);
    std::vector<RunOutput> outs;
    outs.reserve(outcomes.size());
    for (RunOutcome &o : outcomes) {
        // A failed cell is fatal for a bench binary — its table
        // would be missing entries.
        if (!o.ok)
            throw SimError(o.errorMessage);
        outs.push_back(std::move(o.output));
    }
    return outs;
}

void
sweepTasks(const std::vector<std::function<void()>> &tasks)
{
    // All tasks run to completion; the first failure is then fatal.
    std::vector<TaskStatus> statuses =
        parallelForEach(tasks, io().jobs);
    for (const TaskStatus &s : statuses) {
        if (!s.ok)
            throw SimError(s.errorMessage);
    }
}

void
printTable(const TextTable &table)
{
    std::ostream &os = out();
    switch (io().fmt) {
      case tools::OutFormat::Json:
        writeTableJson(os, table, {{"tool", io().tool}},
                       /*pretty=*/false);
        return;
      case tools::OutFormat::Csv:
        os << "csv:" << table.title() << "\n";
        table.printCsv(os);
        os << "\n";
        return;
      case tools::OutFormat::Text:
        break;
    }
    table.print(os);
    if (const char *csv = std::getenv("STOREMLP_CSV")) {
        if (csv[0] && csv[0] != '0') {
            os << "csv:" << table.title() << "\n";
            table.printCsv(os);
            os << "\n";
        }
    }
}

} // namespace storemlp::bench
