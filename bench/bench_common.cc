/**
 * @file
 * Bench helper implementation.
 */

#include "bench_common.hh"

#include <cstdlib>
#include <iostream>

namespace storemlp::bench
{

BenchScale
BenchScale::fromEnv()
{
    BenchScale s;
    if (const char *w = std::getenv("STOREMLP_WARMUP"))
        s.warmup = std::strtoull(w, nullptr, 10);
    if (const char *m = std::getenv("STOREMLP_MEASURE"))
        s.measure = std::strtoull(m, nullptr, 10);
    if (const char *w = std::getenv("STOREMLP_SMAC_WARMUP"))
        s.smacWarmup = std::strtoull(w, nullptr, 10);
    if (const char *m = std::getenv("STOREMLP_SMAC_MEASURE"))
        s.smacMeasure = std::strtoull(m, nullptr, 10);
    return s;
}

std::vector<WorkloadProfile>
workloads()
{
    return WorkloadProfile::allCommercial();
}

void
applyScale(RunSpec &spec, const BenchScale &scale)
{
    spec.warmupInsts = scale.warmup;
    spec.measureInsts = scale.measure;
}

SweepEngine &
sweepEngine()
{
    static SweepEngine engine;
    return engine;
}

std::vector<RunOutput>
sweepAll(const std::vector<RunSpec> &specs)
{
    return sweepEngine().runOutputs(specs);
}

void
sweepTasks(const std::vector<std::function<void()>> &tasks)
{
    sweepEngine().runTasks(tasks);
}

void
printTable(const TextTable &table)
{
    table.print(std::cout);
    if (const char *csv = std::getenv("STOREMLP_CSV")) {
        if (csv[0] && csv[0] != '0') {
            std::cout << "csv:" << table.title() << "\n";
            table.printCsv(std::cout);
            std::cout << "\n";
        }
    }
}

} // namespace storemlp::bench
