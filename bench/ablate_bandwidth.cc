/**
 * @file
 * Ablation: the core-to-L2 bandwidth argument for the Store Miss
 * Accelerator (Section 3.3.3). Store prefetching "consumes
 * substantial L2 cache bandwidth ... a precious resource in future
 * aggressive chip multi-processors"; the SMAC achieves similar gains
 * while conserving it. This bench reports L2 accesses per instruction
 * and store prefetches per 1000 instructions alongside EPI.
 */

#include <iostream>

#include "bench_common.hh"

using namespace storemlp;
using namespace storemlp::bench;

int
main(int argc, char **argv)
{
    benchInit(argc, argv, "ablate_bandwidth");
    BenchScale scale = BenchScale::fromEnv();

    // The four configurations reported per workload.
    const struct
    {
        const char *name;
        StorePrefetch sp;
        bool smac;
    } points[] = {
        {"Sp0 (baseline)", StorePrefetch::None, false},
        {"Sp1 (prefetch at retire)", StorePrefetch::AtRetire, false},
        {"Sp2 (prefetch at execute)", StorePrefetch::AtExecute, false},
        {"Sp0 + SMAC 64K", StorePrefetch::None, true},
    };

    std::vector<RunSpec> specs;
    for (const auto &profile : workloads()) {
        for (const auto &pt : points) {
            RunSpec spec;
            spec.profile = profile;
            spec.config = SimConfig::defaults();
            spec.config.storePrefetch = pt.sp;
            spec.numChips = 2;
            spec.peerTraffic = true;
            spec.siblingCore = true;
            if (pt.smac) {
                SmacConfig cfg;
                cfg.entries = 64 * 1024;
                spec.smac = cfg;
            }
            spec.warmupInsts = scale.smacWarmup;
            spec.measureInsts = scale.smacMeasure;
            specs.push_back(spec);
        }
    }
    std::vector<RunOutput> outs = sweepAll(specs);

    size_t idx = 0;
    for (const auto &profile : workloads()) {
        TextTable table("Bandwidth ablation — " + profile.name);
        table.header({"configuration", "epochs/1000",
                      "L2 accesses/inst", "prefetches/1000"});

        auto emit = [&](const std::string &name) {
            const RunOutput &out = outs[idx++];
            table.beginRow();
            table.cell(name);
            table.cell(out.sim.epochsPer1000(), 3);
            table.cell(static_cast<double>(out.l2Accesses) /
                           static_cast<double>(out.sim.instructions),
                       3);
            table.cell(1000.0 *
                           static_cast<double>(
                               out.sim.storePrefetchesIssued) /
                           static_cast<double>(out.sim.instructions),
                       2);
        };

        for (const auto &pt : points)
            emit(pt.name);

        printTable(table);
    }
    return 0;
}
