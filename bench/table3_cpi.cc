/**
 * @file
 * Table 3: CPIon-chip for the default processor configuration (L1
 * latency 4 cycles, L2 latency 15 cycles, perfect furthest on-chip
 * cache). Paper values: 1.11 / 1.12 / 0.95 / 1.38.
 */

#include <iostream>

#include "bench_common.hh"
#include "core/cpi_model.hh"

using namespace storemlp;
using namespace storemlp::bench;

int
main(int argc, char **argv)
{
    benchInit(argc, argv, "table3_cpi");
    BenchScale scale = BenchScale::fromEnv();

    TextTable table("Table 3 — CPIon-chip (perfect L2)");
    table.header({"component", "Database", "TPC-W", "SPECjbb",
                  "SPECweb"});

    // One CPI-model evaluation per workload, parallel on the sweep
    // pool with trace generation deduplicated by the shared cache.
    auto profiles = workloads();
    std::vector<CpiModel::Breakdown> bds(profiles.size());
    std::vector<std::function<void()>> tasks;
    for (size_t i = 0; i < profiles.size(); ++i) {
        tasks.push_back([&, i] {
            RunSpec key;
            key.profile = profiles[i];
            key.seed = 42;
            key.warmupInsts = scale.warmup;
            key.measureInsts = scale.measure;
            auto trace = sweepEngine().traceCache().getOrBuild(
                Runner::traceCacheKey(key),
                [&] { return Runner::buildTrace(key); });
            bds[i] = CpiModel().evaluate(*trace, scale.warmup);
        });
    }
    sweepTasks(tasks);

    auto row = [&](const std::string &name, auto get) {
        table.beginRow();
        table.cell(name);
        for (const auto &bd : bds)
            table.cell(get(bd), 3);
    };
    row("base (issue)", [](const auto &b) { return b.base; });
    row("load-to-use", [](const auto &b) { return b.loadUse; });
    row("L1D miss (L2 hit)", [](const auto &b) { return b.l1dMiss; });
    row("L1I miss (L2 hit)", [](const auto &b) { return b.l1iMiss; });
    row("branch mispredict", [](const auto &b) { return b.branch; });
    row("TOTAL", [](const auto &b) { return b.total(); });

    table.beginRow();
    table.cell(std::string("paper"));
    for (const auto &profile : workloads())
        table.cell(profile.cpiOnChip, 2);

    printTable(table);
    return 0;
}
