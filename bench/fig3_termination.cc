/**
 * @file
 * Figure 3: window-termination conditions for epochs containing at
 * least one missing store, as fractions of all epochs:
 *   (A) default configuration,
 *   (B) PC3 = SLE + prefetch past serializing instructions.
 */

#include <iostream>

#include "bench_common.hh"

using namespace storemlp;
using namespace storemlp::bench;

namespace
{

void
printPanel(const char *title, const SimConfig &cfg,
           const BenchScale &scale)
{
    TextTable table(title);
    table.header({"condition", "Database", "TPC-W", "SPECjbb",
                  "SPECweb"});

    std::vector<SimResult> results;
    for (const auto &profile : workloads()) {
        RunSpec spec;
        spec.profile = profile;
        spec.config = cfg;
        applyScale(spec, scale);
        results.push_back(Runner::run(spec).sim);
    }

    for (unsigned c = 0; c < kNumTermConds; ++c) {
        table.beginRow();
        table.cell(std::string(
            termCondName(static_cast<TermCond>(c))));
        for (const auto &res : results)
            table.cell(res.termFractionStoreEpochs(
                           static_cast<TermCond>(c)),
                       3);
    }
    table.beginRow();
    table.cell(std::string("TOTAL (store-epoch fraction)"));
    for (const auto &res : results)
        table.cell(res.storeEpochFraction(), 3);

    printTable(table);
}

} // namespace

int
main()
{
    BenchScale scale = BenchScale::fromEnv();

    printPanel("Figure 3A — termination conditions, default config "
               "(fraction of epochs with store MLP >= 1)",
               SimConfig::defaults(), scale);
    printPanel("Figure 3B — termination conditions under PC3 "
               "(SLE + prefetch past serializing)",
               SimConfig::pc3(), scale);
    return 0;
}
