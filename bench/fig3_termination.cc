/**
 * @file
 * Figure 3: window-termination conditions for epochs containing at
 * least one missing store, as fractions of all epochs:
 *   (A) default configuration,
 *   (B) PC3 = SLE + prefetch past serializing instructions.
 */

#include <iostream>

#include "bench_common.hh"

using namespace storemlp;
using namespace storemlp::bench;

namespace
{

void
printPanel(const char *title, const std::vector<SimResult> &results)
{
    TextTable table(title);
    table.header({"condition", "Database", "TPC-W", "SPECjbb",
                  "SPECweb"});

    for (unsigned c = 0; c < kNumTermConds; ++c) {
        table.beginRow();
        table.cell(std::string(
            termCondName(static_cast<TermCond>(c))));
        for (const auto &res : results)
            table.cell(res.termFractionStoreEpochs(
                           static_cast<TermCond>(c)),
                       3);
    }
    table.beginRow();
    table.cell(std::string("TOTAL (store-epoch fraction)"));
    for (const auto &res : results)
        table.cell(res.storeEpochFraction(), 3);

    printTable(table);
}

} // namespace

int
main(int argc, char **argv)
{
    benchInit(argc, argv, "fig3_termination");
    BenchScale scale = BenchScale::fromEnv();

    // Both panels sweep together (8 runs, 4 shared traces).
    std::vector<RunSpec> specs;
    for (const SimConfig &cfg :
         {SimConfig::defaults(), SimConfig::pc3()}) {
        for (const auto &profile : workloads()) {
            RunSpec spec;
            spec.profile = profile;
            spec.config = cfg;
            applyScale(spec, scale);
            specs.push_back(spec);
        }
    }
    std::vector<RunOutput> outs = sweepAll(specs);

    std::vector<SimResult> panel_a, panel_b;
    for (size_t i = 0; i < 4; ++i)
        panel_a.push_back(outs[i].sim);
    for (size_t i = 4; i < 8; ++i)
        panel_b.push_back(outs[i].sim);

    printPanel("Figure 3A — termination conditions, default config "
               "(fraction of epochs with store MLP >= 1)",
               panel_a);
    printPanel("Figure 3B — termination conditions under PC3 "
               "(SLE + prefetch past serializing)",
               panel_b);
    return 0;
}
