/**
 * @file
 * Simulator performance harness (google-benchmark): trace generation
 * throughput, cache-only replay throughput, full epoch-engine
 * throughput on each commercial workload, and on-disk trace decode
 * throughput for each container (raw v1 vs delta v3 vs chunked v4).
 *
 * The decode benchmarks default to a generated database-profile trace
 * written to a temp file in every container; pass `--trace PATH` to
 * measure decode of an existing trace file instead (the flag is
 * consumed here, before google-benchmark parses the rest).
 */

#include <benchmark/benchmark.h>

#include <cstdio>
#include <string>
#include <vector>

#include "coherence/chip.hh"
#include "core/mlp_sim.hh"
#include "core/runner.hh"
#include "trace/generator.hh"
#include "trace/trace_file_source.hh"
#include "trace/trace_io.hh"
#include "trace/trace_source.hh"

using namespace storemlp;

namespace
{

void
BM_TraceGeneration(benchmark::State &state)
{
    WorkloadProfile profile = WorkloadProfile::database();
    uint64_t n = static_cast<uint64_t>(state.range(0));
    uint64_t seed = 1;
    for (auto _ : state) {
        SyntheticTraceGenerator gen(profile, seed++);
        Trace t = gen.generate(n);
        benchmark::DoNotOptimize(t.size());
    }
    state.SetItemsProcessed(state.iterations() *
                            static_cast<int64_t>(n));
}
BENCHMARK(BM_TraceGeneration)->Arg(100000);

void
BM_CacheReplay(benchmark::State &state)
{
    WorkloadProfile profile = WorkloadProfile::database();
    SyntheticTraceGenerator gen(profile, 1);
    Trace trace = gen.generate(100000);
    for (auto _ : state) {
        CacheHierarchy hier;
        for (const auto &r : trace.records()) {
            hier.instFetch(r.pc);
            if (isLoadClass(r.cls))
                hier.load(r.addr);
            if (isStoreClass(r.cls))
                hier.store(r.addr);
        }
        benchmark::DoNotOptimize(hier.l2Accesses());
    }
    state.SetItemsProcessed(state.iterations() *
                            static_cast<int64_t>(trace.size()));
}
BENCHMARK(BM_CacheReplay);

void
epochEngineBench(benchmark::State &state, WorkloadProfile profile)
{
    SyntheticTraceGenerator gen(profile, 1);
    Trace trace = gen.generate(100000);
    LockAnalysis locks = LockDetector().analyze(trace);
    SimConfig cfg = SimConfig::defaults();
    cfg.cpiOnChip = profile.cpiOnChip;
    for (auto _ : state) {
        ChipNode chip(HierarchyConfig{}, 0);
        MlpSimulator sim(cfg, chip, &locks);
        SimResult res = sim.run(trace);
        benchmark::DoNotOptimize(res.epochs);
    }
    state.SetItemsProcessed(state.iterations() *
                            static_cast<int64_t>(trace.size()));
}

void
BM_EpochEngine_Database(benchmark::State &state)
{
    epochEngineBench(state, WorkloadProfile::database());
}
BENCHMARK(BM_EpochEngine_Database);

void
BM_EpochEngine_SpecJbb(benchmark::State &state)
{
    epochEngineBench(state, WorkloadProfile::specjbb());
}
BENCHMARK(BM_EpochEngine_SpecJbb);

void
BM_EpochEngineScout_Database(benchmark::State &state)
{
    WorkloadProfile profile = WorkloadProfile::database();
    SyntheticTraceGenerator gen(profile, 1);
    Trace trace = gen.generate(100000);
    LockAnalysis locks = LockDetector().analyze(trace);
    SimConfig cfg = SimConfig::defaults().withScout(ScoutMode::Hws2);
    cfg.cpiOnChip = profile.cpiOnChip;
    for (auto _ : state) {
        ChipNode chip(HierarchyConfig{}, 0);
        MlpSimulator sim(cfg, chip, &locks);
        SimResult res = sim.run(trace);
        benchmark::DoNotOptimize(res.epochs);
    }
    state.SetItemsProcessed(state.iterations() *
                            static_cast<int64_t>(trace.size()));
}
BENCHMARK(BM_EpochEngineScout_Database);

/**
 * Full streaming decode of an on-disk trace: construct the source
 * (header + index parse) and walk every record, exactly what a
 * `storemlp_sim --trace` run pays before simulation. Items are
 * records, bytes are file bytes, so the two rates read directly as
 * records/s and on-disk MB/s.
 */
void
traceDecodeBench(benchmark::State &state, const std::string &path)
{
    uint64_t file_bytes = probeTraceFile(path).fileBytes;
    uint64_t records = 0;
    for (auto _ : state) {
        StreamingFileSource src(path);
        records = forEachRecord(
            src, 0, ~uint64_t{0}, [](const TraceRecord &r) {
                benchmark::DoNotOptimize(r.addr);
            });
    }
    state.SetItemsProcessed(state.iterations() *
                            static_cast<int64_t>(records));
    state.SetBytesProcessed(state.iterations() *
                            static_cast<int64_t>(file_bytes));
}

} // namespace

int
main(int argc, char **argv)
{
    // Consume --trace before google-benchmark sees it (it rejects
    // unknown flags).
    std::vector<char *> args;
    std::string trace_path;
    for (int i = 0; i < argc; ++i) {
        std::string a = argv[i];
        if (a.rfind("--trace=", 0) == 0) {
            trace_path = a.substr(8);
            continue;
        }
        if (a == "--trace" && i + 1 < argc) {
            trace_path = argv[++i];
            continue;
        }
        args.push_back(argv[i]);
    }
    int bench_argc = static_cast<int>(args.size());

    std::vector<std::string> temp_files;
    if (trace_path.empty()) {
        // Same records in every container, so the three decode rates
        // are directly comparable.
        SyntheticTraceGenerator gen(WorkloadProfile::database(), 1);
        Trace trace = gen.generate(200000);
        std::string base = "/tmp/storemlp_perf_decode_";
        std::string v1 = base + "v1.trc";
        std::string v3 = base + "v3.trc";
        std::string v4 = base + "v4.trc";
        writeTraceFile(v1, trace);
        writeTraceFileV3(v3, trace, "bench", /*compressed=*/true);
        writeTraceFileV4(v4, trace, "bench");
        temp_files = {v1, v3, v4};
        benchmark::RegisterBenchmark(
            "BM_TraceDecode_V1Raw",
            [v1](benchmark::State &s) { traceDecodeBench(s, v1); });
        benchmark::RegisterBenchmark(
            "BM_TraceDecode_V3Delta",
            [v3](benchmark::State &s) { traceDecodeBench(s, v3); });
        benchmark::RegisterBenchmark(
            "BM_TraceDecode_V4Chunked",
            [v4](benchmark::State &s) { traceDecodeBench(s, v4); });
    } else {
        benchmark::RegisterBenchmark(
            "BM_TraceDecode_File",
            [trace_path](benchmark::State &s) {
                traceDecodeBench(s, trace_path);
            });
    }

    benchmark::Initialize(&bench_argc, args.data());
    if (benchmark::ReportUnrecognizedArguments(bench_argc, args.data()))
        return 1;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    for (const std::string &f : temp_files)
        std::remove(f.c_str());
    return 0;
}
