/**
 * @file
 * Simulator performance harness (google-benchmark): trace generation
 * throughput, cache-only replay throughput, and full epoch-engine
 * throughput on each commercial workload.
 */

#include <benchmark/benchmark.h>

#include "coherence/chip.hh"
#include "core/mlp_sim.hh"
#include "core/runner.hh"
#include "trace/generator.hh"

using namespace storemlp;

namespace
{

void
BM_TraceGeneration(benchmark::State &state)
{
    WorkloadProfile profile = WorkloadProfile::database();
    uint64_t n = static_cast<uint64_t>(state.range(0));
    uint64_t seed = 1;
    for (auto _ : state) {
        SyntheticTraceGenerator gen(profile, seed++);
        Trace t = gen.generate(n);
        benchmark::DoNotOptimize(t.size());
    }
    state.SetItemsProcessed(state.iterations() *
                            static_cast<int64_t>(n));
}
BENCHMARK(BM_TraceGeneration)->Arg(100000);

void
BM_CacheReplay(benchmark::State &state)
{
    WorkloadProfile profile = WorkloadProfile::database();
    SyntheticTraceGenerator gen(profile, 1);
    Trace trace = gen.generate(100000);
    for (auto _ : state) {
        CacheHierarchy hier;
        for (const auto &r : trace.records()) {
            hier.instFetch(r.pc);
            if (isLoadClass(r.cls))
                hier.load(r.addr);
            if (isStoreClass(r.cls))
                hier.store(r.addr);
        }
        benchmark::DoNotOptimize(hier.l2Accesses());
    }
    state.SetItemsProcessed(state.iterations() *
                            static_cast<int64_t>(trace.size()));
}
BENCHMARK(BM_CacheReplay);

void
epochEngineBench(benchmark::State &state, WorkloadProfile profile)
{
    SyntheticTraceGenerator gen(profile, 1);
    Trace trace = gen.generate(100000);
    LockAnalysis locks = LockDetector().analyze(trace);
    SimConfig cfg = SimConfig::defaults();
    cfg.cpiOnChip = profile.cpiOnChip;
    for (auto _ : state) {
        ChipNode chip(HierarchyConfig{}, 0);
        MlpSimulator sim(cfg, chip, &locks);
        SimResult res = sim.run(trace);
        benchmark::DoNotOptimize(res.epochs);
    }
    state.SetItemsProcessed(state.iterations() *
                            static_cast<int64_t>(trace.size()));
}

void
BM_EpochEngine_Database(benchmark::State &state)
{
    epochEngineBench(state, WorkloadProfile::database());
}
BENCHMARK(BM_EpochEngine_Database);

void
BM_EpochEngine_SpecJbb(benchmark::State &state)
{
    epochEngineBench(state, WorkloadProfile::specjbb());
}
BENCHMARK(BM_EpochEngine_SpecJbb);

void
BM_EpochEngineScout_Database(benchmark::State &state)
{
    WorkloadProfile profile = WorkloadProfile::database();
    SyntheticTraceGenerator gen(profile, 1);
    Trace trace = gen.generate(100000);
    LockAnalysis locks = LockDetector().analyze(trace);
    SimConfig cfg = SimConfig::defaults().withScout(ScoutMode::Hws2);
    cfg.cpiOnChip = profile.cpiOnChip;
    for (auto _ : state) {
        ChipNode chip(HierarchyConfig{}, 0);
        MlpSimulator sim(cfg, chip, &locks);
        SimResult res = sim.run(trace);
        benchmark::DoNotOptimize(res.epochs);
    }
    state.SetItemsProcessed(state.iterations() *
                            static_cast<int64_t>(trace.size()));
}
BENCHMARK(BM_EpochEngineScout_Database);

} // namespace

BENCHMARK_MAIN();
