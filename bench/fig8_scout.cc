/**
 * @file
 * Figure 8: effectiveness of Hardware Scout and its optimizations.
 * For each workload and memory model {PC, WC}: epochs per 1000
 * instructions ("with stores" / perfect-store floor) for
 *   NoHWS | HWS0 (enter on missing load, prefetch loads+insts) |
 *   HWS1 (+ prefetch stores) | HWS2 (+ enter on store-queue stalls).
 */

#include <iostream>

#include "bench_common.hh"

using namespace storemlp;
using namespace storemlp::bench;

int
main(int argc, char **argv)
{
    benchInit(argc, argv, "fig8_scout");
    BenchScale scale = BenchScale::fromEnv();
    const ScoutMode modes[] = {ScoutMode::Off, ScoutMode::Hws0,
                               ScoutMode::Hws1, ScoutMode::Hws2};

    std::vector<RunSpec> specs;
    for (const auto &profile : workloads()) {
        for (bool wc : {false, true}) {
            for (ScoutMode sm : modes) {
                SimConfig cfg =
                    wc ? SimConfig::wc1() : SimConfig::defaults();
                cfg.scout = sm;

                RunSpec spec;
                spec.profile = profile;
                spec.config = cfg;
                applyScale(spec, scale);
                specs.push_back(spec);

                RunSpec pspec = spec;
                pspec.config.perfectStores = true;
                specs.push_back(pspec);
            }
        }
    }
    std::vector<RunOutput> outs = sweepAll(specs);

    size_t idx = 0;
    for (const auto &profile : workloads()) {
        TextTable table("Figure 8 — " + profile.name +
                        " (epochs per 1000 instructions: total / "
                        "perfect-store floor)");
        table.header({"model", "NoHWS", "HWS0", "HWS1", "HWS2"});

        for (const char *mm : {"PC", "WC"}) {
            table.beginRow();
            table.cell(std::string(mm));
            for (size_t m = 0; m < std::size(modes); ++m) {
                double total = outs[idx++].sim.epochsPer1000();
                double floor = outs[idx++].sim.epochsPer1000();
                table.cell(formatFixed(total, 3) + "/" +
                           formatFixed(floor, 3));
            }
        }
        printTable(table);
    }
    return 0;
}
