/**
 * @file
 * Tests for the chunk-indexed compressed v4 trace container: round
 * trips across chunk geometries, corruption rejection for every new
 * TraceFormatError branch (index and chunk level), a whole-file
 * byte-flip fuzz pass, streaming/random access through
 * StreamingFileSource, chunk caching, and bit-identical SimResults
 * against raw v1/v3 traces on every shipped config.
 */

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/config_io.hh"
#include "core/runner.hh"
#include "trace/generator.hh"
#include "trace/trace_cache.hh"
#include "trace/trace_codec.hh"
#include "trace/trace_file_source.hh"
#include "trace/trace_format.hh"
#include "trace/trace_io.hh"
#include "trace/trace_source.hh"
#include "sim_test_util.hh"

namespace storemlp
{
namespace
{

void
expectTracesEqual(const Trace &a, const Trace &b)
{
    ASSERT_EQ(a.size(), b.size());
    for (size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].pc, b[i].pc) << i;
        EXPECT_EQ(a[i].addr, b[i].addr) << i;
        EXPECT_EQ(a[i].cls, b[i].cls) << i;
        EXPECT_EQ(a[i].size, b[i].size) << i;
        EXPECT_EQ(a[i].dst, b[i].dst) << i;
        EXPECT_EQ(a[i].src1, b[i].src1) << i;
        EXPECT_EQ(a[i].src2, b[i].src2) << i;
        EXPECT_EQ(a[i].flags, b[i].flags) << i;
    }
}

Trace
makeTrace(uint64_t n, uint64_t seed = 7)
{
    SyntheticTraceGenerator gen(WorkloadProfile::database(), seed, 0);
    return gen.generate(n);
}

std::string
encodeV4(const Trace &t, uint64_t chunk_insts,
         const std::string &fp = "")
{
    std::ostringstream os;
    writeTraceV4(os, t, fp, chunk_insts);
    return os.str();
}

Trace
decode(const std::string &bytes)
{
    std::istringstream is(bytes);
    return readTrace(is);
}

/** Expect readTrace to throw a TraceFormatError mentioning `needle`. */
void
expectV4Error(const std::string &bytes, const std::string &needle)
{
    try {
        decode(bytes);
        FAIL() << "expected TraceFormatError containing '" << needle
               << "'";
    } catch (const TraceFormatError &e) {
        EXPECT_NE(std::string(e.what()).find(needle), std::string::npos)
            << "actual message: " << e.what();
    }
}

// ---- round trips ------------------------------------------------------

TEST(TraceV4, HandwrittenRoundTrip)
{
    Trace t = TraceBuilder(0x4000)
        .load(0x123456789a, 5, 6)
        .store(0xfedcba98, 7).withSize(3)   // escape size (non-pow2)
        .casa(0x42).withFlags(kFlagLockAcquire)
        .branch(true, 9)
        .membar()
        .alu(63, 63, 63).withSize(128)      // extreme ids, top size code
        .load(0x10).atPc(0x8000000000ULL)   // large pc jump
        .storeCond(0x42, 8).withSize(0)
        .build();

    for (uint64_t ci : {uint64_t{1}, uint64_t{3}, uint64_t{100}})
        expectTracesEqual(t, decode(encodeV4(t, ci)));
}

TEST(TraceV4, GeneratedTraceRoundTrip)
{
    Trace t = makeTrace(50000);
    expectTracesEqual(t, decode(encodeV4(t, 1 << 16)));
}

TEST(TraceV4, ChunkSizeOneAndNonDivisors)
{
    Trace t = makeTrace(10001, 13);
    for (uint64_t ci : {uint64_t{1}, uint64_t{3}, uint64_t{4097},
                        uint64_t{10001}, uint64_t{20000}})
        expectTracesEqual(t, decode(encodeV4(t, ci)));
}

TEST(TraceV4, EmptyTrace)
{
    std::string s = encodeV4(Trace(), 1 << 16);
    EXPECT_TRUE(decode(s).empty());
    TraceFileInfo info = [&] {
        std::string path = ::testing::TempDir() + "v4_empty.trc";
        std::ofstream os(path, std::ios::binary);
        os << s;
        os.close();
        TraceFileInfo i = probeTraceFile(path);
        std::remove(path.c_str());
        return i;
    }();
    EXPECT_EQ(info.records, 0u);
    EXPECT_EQ(info.chunks, 0u);
}

TEST(TraceV4, SingleRecordTraceSingleRecordChunks)
{
    Trace t = TraceBuilder().load(0xdeadbeef, 1).build();
    expectTracesEqual(t, decode(encodeV4(t, 1)));
}

TEST(TraceV4, SmallerThanV2AndQuarterOfV1)
{
    Trace t = makeTrace(50000);
    std::ostringstream v1, v2;
    writeTrace(v1, t);
    writeTraceCompressed(v2, t);
    std::string v4 = encodeV4(t, 1 << 16);
    EXPECT_LT(v4.size(), v2.str().size())
        << "v4 should beat the v2 delta encoding";
    EXPECT_LE(v4.size() * 4, v1.str().size())
        << "v4 must be <= 0.25x of v1 on the database profile";
}

TEST(TraceV4, FileRoundTripAutoDetected)
{
    Trace t = makeTrace(5000, 3);
    std::string path = ::testing::TempDir() + "v4_roundtrip.trc";
    writeTraceFileV4(path, t, "v4-file-fp", 509);
    expectTracesEqual(t, readTraceFile(path));
    std::remove(path.c_str());
}

TEST(TraceV4, PreservesFingerprint)
{
    Trace t = makeTrace(100);
    std::string path = ::testing::TempDir() + "v4_fp.trc";
    writeTraceFileV4(path, t, "the-fingerprint");
    EXPECT_EQ(probeTraceFile(path).fingerprint, "the-fingerprint");
    std::remove(path.c_str());
}

// ---- encode-side validation -------------------------------------------

TEST(TraceV4, RegisterIdOutOfRangeRejectedAtEncode)
{
    Trace t = TraceBuilder().alu(64, 0, 0).build();
    std::ostringstream os;
    EXPECT_THROW(writeTraceV4(os, t, ""), TraceFormatError);
}

TEST(TraceV4, BadChunkSizeRejectedAtEncode)
{
    Trace t = TraceBuilder().alu().build();
    std::ostringstream os;
    EXPECT_THROW(writeTraceV4(os, t, "", 0), TraceFormatError);
    EXPECT_THROW(
        writeTraceV4(os, t, "", trace_format::kMaxChunkInstsV4 + 1),
        TraceFormatError);
}

// ---- corruption rejection ---------------------------------------------

/**
 * Fixed two-record trace with a known v4 byte layout (empty
 * fingerprint, one chunk):
 *   envelope: magic 8, format 1, fpLen 4, count 8  -> geometry at 21
 *   geometry: chunkInsts 8, chunkCount 8           -> index at 37
 *   index:    one 40-byte entry                    -> body at 77
 *   chunk:    20-byte section header, 2 ctrl bytes (0x20 alu+regs,
 *             0x15 membar+seq), 3-byte pc varint (zigzag(0x4000) =
 *             0x8000 -> 80 80 02), 3-byte regs block (01 02 03)
 */
struct V4Layout
{
    static constexpr size_t kFormat = 8;
    static constexpr size_t kCount = 13;
    static constexpr size_t kChunkInsts = 21;
    static constexpr size_t kChunkCount = 29;
    static constexpr size_t kIndex = 37;
    static constexpr size_t kBody = kIndex + 40;
    static constexpr size_t kCtrl0 = kBody + 20;
    static constexpr size_t kPcStream = kCtrl0 + 2;
    static constexpr size_t kRegsBlock = kPcStream + 3;

    static std::string
    bytes()
    {
        Trace t = TraceBuilder(0x4000).alu(1, 2, 3).membar().build();
        std::string s = encodeV4(t, 1 << 16);
        EXPECT_EQ(s.size(), kRegsBlock + 3);
        return s;
    }
};

TEST(TraceV4Corrupt, UnknownBodyFormat)
{
    std::string s = V4Layout::bytes();
    s[V4Layout::kFormat] = 9;
    expectV4Error(s, "unknown v4 body format 9");
}

TEST(TraceV4Corrupt, UnknownBodyFormatInV3Container)
{
    Trace t = TraceBuilder().alu().build();
    std::ostringstream os;
    writeTraceV3(os, t, "", /*compressed=*/false);
    std::string s = os.str();
    s[V4Layout::kFormat] = 3; // v4's chunked format inside a v3 magic
    expectV4Error(s, "unknown v3 body format 3");
}

TEST(TraceV4Corrupt, TruncatedHeaderAndIndex)
{
    std::string s = V4Layout::bytes();
    expectV4Error(s.substr(0, 20), "truncated trace header");
    // On a seekable stream a short index is caught up front by the
    // capacity check, before any entry is read.
    expectV4Error(s.substr(0, V4Layout::kIndex + 7),
                  "exceeds stream capacity");
}

/** Read-only streambuf with no seek support (tellg() fails). */
struct NonSeekableBuf : std::streambuf
{
    explicit NonSeekableBuf(std::string s) : _s(std::move(s))
    {
        setg(_s.data(), _s.data(), _s.data() + _s.size());
    }
    std::string _s;
};

TEST(TraceV4Corrupt, TruncatedIndexOnNonSeekableStream)
{
    // Pipes and sockets cannot be sized up front, so the capacity
    // check is skipped and the short read itself must be diagnosed.
    NonSeekableBuf buf(V4Layout::bytes().substr(0, V4Layout::kIndex + 7));
    std::istream is(&buf);
    EXPECT_THROW(
        {
            try {
                readTrace(is);
            } catch (const TraceFormatError &e) {
                EXPECT_NE(std::string(e.what())
                              .find("truncated v4 chunk index"),
                          std::string::npos)
                    << e.what();
                throw;
            }
        },
        TraceFormatError);
}

TEST(TraceV4Corrupt, TruncatedChunkOnNonSeekableStream)
{
    // Without a stream size the index finish() check cannot run; the
    // missing body bytes must surface as a truncated chunk instead.
    std::string s = V4Layout::bytes();
    NonSeekableBuf buf(s.substr(0, s.size() - 2));
    std::istream is(&buf);
    EXPECT_THROW(
        {
            try {
                readTrace(is);
            } catch (const TraceFormatError &e) {
                EXPECT_NE(
                    std::string(e.what()).find("truncated v4 chunk"),
                    std::string::npos)
                    << e.what();
                throw;
            }
        },
        TraceFormatError);
}

TEST(TraceV4Corrupt, TruncatedMidChunk)
{
    std::string s = V4Layout::bytes();
    expectV4Error(s.substr(0, s.size() - 2),
                  "does not match stream size");
}

TEST(TraceV4Corrupt, WrongChunkCount)
{
    std::string s = V4Layout::bytes();
    ++s[V4Layout::kChunkCount];
    expectV4Error(s, "v4 chunk count");
}

TEST(TraceV4Corrupt, ChunkSizeZero)
{
    std::string s = V4Layout::bytes();
    s[V4Layout::kChunkInsts] = 0;
    s[V4Layout::kChunkInsts + 2] = 0; // 1<<16 -> 0
    expectV4Error(s, "v4 chunk size is zero");
}

TEST(TraceV4Corrupt, ChunkSizeAboveLimit)
{
    std::string s = V4Layout::bytes();
    s[V4Layout::kChunkInsts + 4] = 0x01; // 1<<16 -> (1<<32)+(1<<16)
    expectV4Error(s, "exceeds limit");
}

TEST(TraceV4Corrupt, HugeIndexRejectedBeforeAllocation)
{
    // Consistent-but-impossible geometry: 2^32 records in 2^16 chunks
    // of 2^16. The count must be rejected against the actual stream
    // bytes before a single index entry or record is allocated.
    std::string s = V4Layout::bytes();
    using trace_format::putU64;
    auto *p = reinterpret_cast<uint8_t *>(s.data());
    putU64(p + V4Layout::kCount, uint64_t{1} << 32);
    putU64(p + V4Layout::kChunkInsts, uint64_t{1} << 16);
    putU64(p + V4Layout::kChunkCount, uint64_t{1} << 16);
    expectV4Error(s, "exceeds stream capacity");
}

TEST(TraceV4Corrupt, IndexRecordCountMismatch)
{
    std::string s = V4Layout::bytes();
    ++s[V4Layout::kIndex]; // entry 0 records: 2 -> 3
    expectV4Error(s, "record count");
}

TEST(TraceV4Corrupt, IndexOffsetNotContiguous)
{
    std::string s = V4Layout::bytes();
    ++s[V4Layout::kIndex + 8]; // entry 0 byteOff: 0 -> 1
    expectV4Error(s, "not contiguous");
}

TEST(TraceV4Corrupt, IndexByteLenImplausible)
{
    std::string s = V4Layout::bytes();
    s[V4Layout::kIndex + 16 + 3] = 0x7f; // byteLen |= 0x7f << 24
    expectV4Error(s, "outside plausible range");
}

TEST(TraceV4Corrupt, IndexClaimsWrongBodyTotal)
{
    std::string s = V4Layout::bytes();
    --s[V4Layout::kIndex + 16]; // byteLen 28 -> 27, still plausible
    expectV4Error(s, "does not match stream size");
}

TEST(TraceV4Corrupt, ReservedControlBit)
{
    std::string s = V4Layout::bytes();
    s[V4Layout::kCtrl0] |= char(0x80);
    expectV4Error(s, "reserved control bit");
}

TEST(TraceV4Corrupt, InvalidInstructionClass)
{
    std::string s = V4Layout::bytes();
    s[V4Layout::kCtrl0 + 1] = 0x1f; // seq bit kept, class 15
    expectV4Error(s, "invalid instruction class");
}

TEST(TraceV4Corrupt, SectionLengthMismatch)
{
    std::string s = V4Layout::bytes();
    ++s[V4Layout::kBody]; // pcLen 3 -> 4
    expectV4Error(s, "section lengths do not match");
}

TEST(TraceV4Corrupt, TruncatedVarintInsideChunk)
{
    std::string s = V4Layout::bytes();
    s[V4Layout::kPcStream + 2] |= char(0x80); // never-ending varint
    expectV4Error(s, "truncated varint");
}

TEST(TraceV4Corrupt, TrailingPcStreamBytes)
{
    std::string s = V4Layout::bytes();
    s[V4Layout::kPcStream] &= char(0x7f); // 3-byte varint -> 1-byte
    expectV4Error(s, "v4 pc stream length mismatch");
}

TEST(TraceV4Corrupt, RegisterStreamLengthMismatch)
{
    std::string s = V4Layout::bytes();
    s[V4Layout::kCtrl0 + 1] |= char(trace_format::kCtrlRegs);
    expectV4Error(s, "v4 register stream length mismatch");
}

TEST(TraceV4Corrupt, FlagsStreamLengthMismatch)
{
    std::string s = V4Layout::bytes();
    s[V4Layout::kCtrl0 + 1] |= char(trace_format::kCtrlFlags);
    expectV4Error(s, "v4 flags stream length mismatch");
}

TEST(TraceV4Corrupt, ReservedRegisterBlockBits)
{
    std::string s = V4Layout::bytes();
    s[V4Layout::kRegsBlock + 2] |= char(0xc0); // src2 byte top bits
    expectV4Error(s, "reserved register-block bits");
}

TEST(TraceV4Corrupt, ReservedSizeCode)
{
    std::string s = V4Layout::bytes();
    s[V4Layout::kRegsBlock + 1] |= char(0xc0); // code 0 -> 12
    expectV4Error(s, "reserved size code");
}

TEST(TraceV4Corrupt, TruncatedAuxStream)
{
    std::string s = V4Layout::bytes();
    // Size code 0 -> 15 (escape) with an empty aux section.
    s[V4Layout::kRegsBlock] |= char(0xc0);
    s[V4Layout::kRegsBlock + 1] |= char(0xc0);
    expectV4Error(s, "truncated aux stream");
}

TEST(TraceV4Corrupt, FlipEveryByteNeverEscapesTraceFormatError)
{
    // Fuzz pass over the whole file: any single-byte corruption must
    // either still decode (e.g. a flipped seed or address bit) or
    // throw TraceFormatError — never crash, hang, or throw anything
    // else. Runs over header, index, and body alike.
    Trace t = makeTrace(500, 99);
    std::string clean = encodeV4(t, 64);
    for (size_t pos = 0; pos < clean.size(); ++pos) {
        for (uint8_t val : {uint8_t{0x00}, uint8_t{0xff},
                            uint8_t(clean[pos] ^ 0x41)}) {
            std::string s = clean;
            s[pos] = static_cast<char>(val);
            try {
                decode(s);
            } catch (const TraceFormatError &) {
                // expected for structural corruption
            }
        }
    }
}

// ---- streaming --------------------------------------------------------

TEST(TraceV4Streaming, StreamsIdenticallyAcrossFileChunkSizes)
{
    Trace ref = makeTrace(6000, 17);
    for (uint64_t ci : {uint64_t{1}, uint64_t{7}, uint64_t{509},
                        uint64_t{4096}}) {
        std::string path = ::testing::TempDir() + "v4_stream.trc";
        writeTraceFileV4(path, ref, "v4-stream", ci);
        StreamingFileSource src(path);
        EXPECT_EQ(src.bodyFormat(), 3u);
        uint64_t i = 0;
        uint64_t visited = forEachRecord(
            src, 0, ~uint64_t{0}, [&](const TraceRecord &r) {
                ASSERT_LT(i, ref.size());
                EXPECT_EQ(r.pc, ref[i].pc) << i;
                EXPECT_EQ(r.addr, ref[i].addr) << i;
                EXPECT_EQ(r.flags, ref[i].flags) << i;
                ++i;
            });
        EXPECT_EQ(visited, ref.size()) << "chunk " << ci;
        std::remove(path.c_str());
    }
}

TEST(TraceV4Streaming, AdoptsFileChunkGeometry)
{
    Trace ref = makeTrace(10000, 5);
    std::string path = ::testing::TempDir() + "v4_geom.trc";
    writeTraceFileV4(path, ref, "v4-geom", 1024);
    StreamingFileSource src(path, 777); // requested size is ignored
    EXPECT_EQ(src.chunkInsts(), 1024u);
    EXPECT_EQ(src.knownSize(), std::optional<uint64_t>(10000));
    std::remove(path.c_str());
}

TEST(TraceV4Streaming, RandomAccessWithoutSequentialWalk)
{
    Trace ref = makeTrace(10000, 5);
    std::string path = ::testing::TempDir() + "v4_rand.trc";
    writeTraceFileV4(path, ref, "v4-rand", 1024);
    StreamingFileSource src(path);
    // Last chunk first: no prior sequential pass required.
    auto last = src.fetch(9);
    ASSERT_TRUE(last);
    EXPECT_EQ(last->firstIdx, 9u * 1024);
    EXPECT_EQ(last->count, 10000u - 9 * 1024);
    EXPECT_EQ(last->data[0].pc, ref[9 * 1024].pc);
    auto mid = src.fetch(4);
    ASSERT_TRUE(mid);
    EXPECT_EQ(mid->data[17].addr, ref[4 * 1024 + 17].addr);
    EXPECT_FALSE(src.fetch(10));
    std::remove(path.c_str());
}

TEST(TraceV4Streaming, CachedSourceSharesDecodedChunks)
{
    Trace ref = makeTrace(5000, 29);
    std::string path = ::testing::TempDir() + "v4_cache.trc";
    writeTraceFileV4(path, ref, "v4-cache-test", 512);
    TraceCache cache(64ull << 20);
    auto make = [&] {
        return std::make_unique<CachedSource>(
            std::make_unique<StreamingFileSource>(path), cache);
    };
    auto a = make();
    Trace first = materializeSource(*a);
    expectTracesEqual(first, ref);
    uint64_t misses_after_first = cache.stats().misses;
    EXPECT_GT(misses_after_first, 0u);

    auto b = make();
    expectTracesEqual(materializeSource(*b), ref);
    EXPECT_EQ(cache.stats().misses, misses_after_first)
        << "second pass must be served from the chunk cache";
    EXPECT_GT(cache.stats().hits, 0u);
    std::remove(path.c_str());
}

// ---- simulation equivalence -------------------------------------------

TEST(TraceV4Runner, BitIdenticalToRawOnShippedConfigs)
{
    // The acceptance bar: for every shipped config, SimResult must be
    // bit-identical between the in-memory trace, a raw v1 file, a v3
    // delta file, and a v4 compressed file — both streamed through
    // StreamingFileSource and fully materialized via readTraceFile.
    const char *files[] = {"pc1.cfg", "pc2.cfg", "pc3.cfg",
                           "wc1.cfg", "wc2.cfg", "wc3.cfg",
                           "hws2.cfg"};
    int compared = 0;
    for (const char *f : files) {
        std::string path;
        for (const std::string &prefix :
             {std::string("configs/"), std::string("../configs/"),
              std::string("../../configs/")}) {  // NOLINT
            std::ifstream probe(prefix + f);
            if (probe) {
                path = prefix + f;
                break;
            }
        }
        if (path.empty())
            continue;

        RunSpec spec;
        spec.profile = WorkloadProfile::specjbb();
        spec.config = loadSimConfigFile(path);
        spec.warmupInsts = 20000;
        spec.measureInsts = 40000;

        Trace trace = Runner::buildTrace(spec);
        RunOutput mat = test::runMaterialized(spec, trace);

        std::string base = ::testing::TempDir() + "v4_equiv_";
        std::string v1_path = base + "v1.trc";
        std::string v3_path = base + "v3.trc";
        std::string v4_path = base + "v4.trc";
        writeTraceFile(v1_path, trace);
        writeTraceFileV3(v3_path, trace, "equiv", /*compressed=*/true);
        writeTraceFileV4(v4_path, trace, "equiv", 4096);

        for (const std::string &p : {v1_path, v3_path, v4_path}) {
            StreamingFileSource src(p);
            RunOutput streamed = Runner::run(spec, src);
            EXPECT_EQ(streamed.sim, mat.sim) << f << " " << p;
            EXPECT_EQ(streamed.storesPer100, mat.storesPer100) << f;
            EXPECT_EQ(streamed.l2Accesses, mat.l2Accesses) << f;

            Trace loaded = readTraceFile(p);
            RunOutput materialized = test::runMaterialized(spec, loaded);
            EXPECT_EQ(materialized.sim, mat.sim) << f << " " << p;
        }
        std::remove(v1_path.c_str());
        std::remove(v3_path.c_str());
        std::remove(v4_path.c_str());
        ++compared;
    }
    if (compared == 0)
        GTEST_SKIP() << "configs/ not reachable from test cwd";
}

} // namespace
} // namespace storemlp
