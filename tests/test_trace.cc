/**
 * @file
 * Unit tests for the trace representation, builder and binary I/O.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "trace/trace.hh"
#include "trace/trace_io.hh"

namespace storemlp
{
namespace
{

TEST(InstClass, LoadStorePredicates)
{
    EXPECT_TRUE(isLoadClass(InstClass::Load));
    EXPECT_TRUE(isLoadClass(InstClass::AtomicCas));
    EXPECT_TRUE(isLoadClass(InstClass::LoadLocked));
    EXPECT_FALSE(isLoadClass(InstClass::Store));

    EXPECT_TRUE(isStoreClass(InstClass::Store));
    EXPECT_TRUE(isStoreClass(InstClass::AtomicCas));
    EXPECT_TRUE(isStoreClass(InstClass::StoreCond));
    EXPECT_FALSE(isStoreClass(InstClass::Load));

    EXPECT_TRUE(isMemClass(InstClass::Load));
    EXPECT_TRUE(isMemClass(InstClass::StoreCond));
    EXPECT_FALSE(isMemClass(InstClass::Alu));
    EXPECT_FALSE(isMemClass(InstClass::Branch));

    EXPECT_TRUE(isBarrierClass(InstClass::Membar));
    EXPECT_TRUE(isBarrierClass(InstClass::Isync));
    EXPECT_TRUE(isBarrierClass(InstClass::Lwsync));
    EXPECT_FALSE(isBarrierClass(InstClass::AtomicCas));
}

TEST(InstClass, Names)
{
    EXPECT_STREQ(instClassName(InstClass::AtomicCas), "casa");
    EXPECT_STREQ(instClassName(InstClass::LoadLocked), "lwarx");
    EXPECT_STREQ(instClassName(InstClass::Lwsync), "lwsync");
}

TEST(TraceBuilder, PcAutoIncrements)
{
    Trace t = TraceBuilder(0x1000).alu().alu().alu().build();
    ASSERT_EQ(t.size(), 3u);
    EXPECT_EQ(t[0].pc, 0x1000u);
    EXPECT_EQ(t[1].pc, 0x1004u);
    EXPECT_EQ(t[2].pc, 0x1008u);
}

TEST(TraceBuilder, LoadStoreFields)
{
    Trace t = TraceBuilder()
        .load(0xdead00, 5, 6)
        .store(0xbeef00, 7, 8)
        .build();
    EXPECT_EQ(t[0].cls, InstClass::Load);
    EXPECT_EQ(t[0].addr, 0xdead00u);
    EXPECT_EQ(t[0].dst, 5);
    EXPECT_EQ(t[0].src1, 6);
    EXPECT_EQ(t[1].cls, InstClass::Store);
    EXPECT_EQ(t[1].src2, 7);
    EXPECT_EQ(t[1].src1, 8);
    EXPECT_EQ(t[1].dst, 0);
}

TEST(TraceBuilder, BranchTakenFlag)
{
    Trace t = TraceBuilder().branch(true, 3).branch(false, 4).build();
    EXPECT_TRUE(t[0].taken());
    EXPECT_FALSE(t[1].taken());
}

TEST(TraceBuilder, FlagsAndOverrides)
{
    Trace t = TraceBuilder()
        .casa(0x100, 9).withFlags(kFlagLockAcquire)
        .store(0x100).withFlags(kFlagLockRelease)
        .load(0x200).atPc(0x9000).withSize(4)
        .build();
    EXPECT_TRUE(t[0].lockAcquire());
    EXPECT_TRUE(t[1].lockRelease());
    EXPECT_EQ(t[2].pc, 0x9000u);
    EXPECT_EQ(t[2].size, 4);
}

TEST(TraceBuilder, WcIdiomClasses)
{
    Trace t = TraceBuilder()
        .loadLocked(0x40, 2)
        .storeCond(0x40, 2)
        .isync()
        .lwsync()
        .membar()
        .build();
    EXPECT_EQ(t[0].cls, InstClass::LoadLocked);
    EXPECT_EQ(t[1].cls, InstClass::StoreCond);
    EXPECT_EQ(t[2].cls, InstClass::Isync);
    EXPECT_EQ(t[3].cls, InstClass::Lwsync);
    EXPECT_EQ(t[4].cls, InstClass::Membar);
}

TEST(TraceMix, CountsKinds)
{
    Trace t = TraceBuilder()
        .alu()
        .load(0x10)
        .store(0x20)
        .branch(true)
        .casa(0x30)
        .membar()
        .build();
    Trace::Mix m = t.mix();
    EXPECT_EQ(m.total, 6u);
    EXPECT_EQ(m.loads, 2u);   // load + casa
    EXPECT_EQ(m.stores, 2u);  // store + casa
    EXPECT_EQ(m.branches, 1u);
    EXPECT_EQ(m.atomics, 1u);
    EXPECT_EQ(m.barriers, 1u);
}

TEST(TraceIo, RoundTrip)
{
    Trace t = TraceBuilder(0x4000)
        .load(0x123456789a, 5, 6)
        .store(0xfedcba98, 7)
        .casa(0x42).withFlags(kFlagLockAcquire)
        .branch(true, 9)
        .build();

    std::stringstream ss;
    writeTrace(ss, t);
    Trace u = readTrace(ss);

    ASSERT_EQ(u.size(), t.size());
    for (size_t i = 0; i < t.size(); ++i) {
        EXPECT_EQ(u[i].pc, t[i].pc);
        EXPECT_EQ(u[i].addr, t[i].addr);
        EXPECT_EQ(u[i].cls, t[i].cls);
        EXPECT_EQ(u[i].size, t[i].size);
        EXPECT_EQ(u[i].dst, t[i].dst);
        EXPECT_EQ(u[i].src1, t[i].src1);
        EXPECT_EQ(u[i].src2, t[i].src2);
        EXPECT_EQ(u[i].flags, t[i].flags);
    }
}

TEST(TraceIo, EmptyTraceRoundTrip)
{
    std::stringstream ss;
    writeTrace(ss, Trace());
    Trace u = readTrace(ss);
    EXPECT_TRUE(u.empty());
}

TEST(TraceIo, RejectsBadMagic)
{
    std::stringstream ss;
    ss << "NOTATRACE-------------------";
    EXPECT_THROW(readTrace(ss), TraceFormatError);
}

TEST(TraceIo, RejectsTruncatedBody)
{
    Trace t = TraceBuilder().alu().alu().build();
    std::stringstream ss;
    writeTrace(ss, t);
    std::string full = ss.str();
    std::stringstream cut(full.substr(0, full.size() - 5));
    EXPECT_THROW(readTrace(cut), TraceFormatError);
}

TEST(TraceIo, RejectsInvalidClass)
{
    Trace t = TraceBuilder().alu().build();
    std::stringstream ss;
    writeTrace(ss, t);
    std::string s = ss.str();
    s[16 + 16] = 0x7f; // class byte of record 0 (after 16-byte header)
    std::stringstream bad(s);
    EXPECT_THROW(readTrace(bad), TraceFormatError);
}

TEST(TraceIo, FileRoundTrip)
{
    Trace t = TraceBuilder().load(0x10, 1).store(0x20, 2).build();
    std::string path = testing::TempDir() + "/storemlp_trace_test.bin";
    writeTraceFile(path, t);
    Trace u = readTraceFile(path);
    ASSERT_EQ(u.size(), 2u);
    EXPECT_EQ(u[1].addr, 0x20u);
}

TEST(TraceIo, MissingFileThrows)
{
    EXPECT_THROW(readTraceFile("/nonexistent/path/trace.bin"),
                 TraceFormatError);
}

} // namespace
} // namespace storemlp
