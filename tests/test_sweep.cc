/**
 * @file
 * Tests for the parallel sweep engine and the shared trace cache:
 * bit-identical results across worker counts, trace-cache hit
 * behaviour for repeated (profile, seed, length, rewrite) keys, and
 * submission-order result collection. Run lengths honour
 * STOREMLP_WARMUP / STOREMLP_MEASURE so CI can scale further down
 * (small defaults keep the suite fast without them).
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <sstream>

#include "core/sweep.hh"
#include "trace/generator.hh"
#include "sim_test_util.hh"

namespace storemlp
{
namespace
{

uint64_t
envScaled(const char *name, uint64_t def)
{
    if (const char *env = std::getenv(name)) {
        uint64_t v = std::strtoull(env, nullptr, 10);
        if (v > 0)
            return std::min(v, def);
    }
    return def;
}

uint64_t
warmupInsts()
{
    return envScaled("STOREMLP_WARMUP", 30000);
}

uint64_t
measureInsts()
{
    return envScaled("STOREMLP_MEASURE", 50000);
}

/** A mixed PC/WC spec list exercising distinct configs per slot. */
std::vector<RunSpec>
mixedSpecs()
{
    const SimConfig configs[] = {SimConfig::defaults(),
                                 SimConfig::pc2(),
                                 SimConfig::pc3(),
                                 SimConfig::wc1(),
                                 SimConfig::wc2(),
                                 SimConfig::wc3()};
    std::vector<RunSpec> specs;
    for (const SimConfig &cfg : configs) {
        RunSpec spec;
        spec.profile = WorkloadProfile::testTiny();
        spec.config = cfg;
        spec.warmupInsts = warmupInsts();
        spec.measureInsts = measureInsts();
        specs.push_back(spec);
    }
    // A second prefetch mode over the same traces (cache sharing).
    for (const SimConfig &cfg : {configs[0], configs[3]}) {
        RunSpec spec;
        spec.profile = WorkloadProfile::testTiny();
        spec.config = cfg.withPrefetch(StorePrefetch::AtExecute);
        spec.warmupInsts = warmupInsts();
        spec.measureInsts = measureInsts();
        specs.push_back(spec);
    }
    return specs;
}

SweepEngine
makeEngine(TraceCache &cache, unsigned jobs, bool use_cache = true)
{
    SweepOptions opts;
    opts.jobs = jobs;
    opts.useTraceCache = use_cache;
    opts.progress = false;
    return SweepEngine(opts, &cache);
}

/** Wrap bare specs as planned runs and execute them. */
std::vector<RunOutcome>
executeSpecs(SweepEngine &&engine, const std::vector<RunSpec> &specs)
{
    std::vector<PlannedRun> planned(specs.size());
    for (size_t i = 0; i < specs.size(); ++i) {
        planned[i].name = "spec" + std::to_string(i);
        planned[i].spec = specs[i];
    }
    return engine.execute(planned);
}

/** Every counter and distribution that run output carries. */
void
expectIdentical(const RunOutput &a, const RunOutput &b)
{
    const SimResult &x = a.sim;
    const SimResult &y = b.sim;
    EXPECT_EQ(x.instructions, y.instructions);
    EXPECT_EQ(x.epochs, y.epochs);
    EXPECT_EQ(x.missLoads, y.missLoads);
    EXPECT_EQ(x.missStores, y.missStores);
    EXPECT_EQ(x.missInsts, y.missInsts);
    EXPECT_EQ(x.epochMisses, y.epochMisses);
    EXPECT_EQ(x.epochMissLoads, y.epochMissLoads);
    EXPECT_EQ(x.epochMissStores, y.epochMissStores);
    EXPECT_EQ(x.epochMissInsts, y.epochMissInsts);
    EXPECT_EQ(x.overlappedStores, y.overlappedStores);
    EXPECT_EQ(x.smacAcceleratedStores, y.smacAcceleratedStores);
    EXPECT_EQ(x.termCounts, y.termCounts);
    EXPECT_EQ(x.termCountsStoreEpochs, y.termCountsStoreEpochs);
    EXPECT_EQ(x.l2StoreAccesses, y.l2StoreAccesses);
    EXPECT_EQ(x.storePrefetchesIssued, y.storePrefetchesIssued);
    EXPECT_EQ(x.coalescedStores, y.coalescedStores);
    EXPECT_EQ(x.sqInserts, y.sqInserts);
    EXPECT_EQ(x.scoutEntries, y.scoutEntries);
    EXPECT_EQ(x.scoutPrefetches, y.scoutPrefetches);
    EXPECT_EQ(x.elidedLocks, y.elidedLocks);
    EXPECT_EQ(x.tmAborts, y.tmAborts);
    EXPECT_EQ(x.serializeStalls, y.serializeStalls);
    EXPECT_EQ(x.branchMispredicts, y.branchMispredicts);
    EXPECT_EQ(x.branches, y.branches);
    EXPECT_EQ(x.onChipCycles, y.onChipCycles); // exact double equality

    // Full printed report catches any metric missed above.
    std::ostringstream xa, yb;
    x.print(xa);
    y.print(yb);
    EXPECT_EQ(xa.str(), yb.str());

    EXPECT_EQ(a.storesPer100, b.storesPer100);
    EXPECT_EQ(a.storeMissPer100, b.storeMissPer100);
    EXPECT_EQ(a.loadMissPer100, b.loadMissPer100);
    EXPECT_EQ(a.instMissPer100, b.instMissPer100);
    EXPECT_EQ(a.l2Accesses, b.l2Accesses);
    EXPECT_EQ(a.tlbMissPer100, b.tlbMissPer100);
    EXPECT_EQ(a.chipStoreMisses, b.chipStoreMisses);
}

TEST(SweepEngine, Jobs1AndJobs4AreBitIdentical)
{
    std::vector<RunSpec> specs = mixedSpecs();

    TraceCache cache1, cache4;
    std::vector<RunOutcome> serial =
        executeSpecs(makeEngine(cache1, 1), specs);
    std::vector<RunOutcome> parallel =
        executeSpecs(makeEngine(cache4, 4), specs);

    ASSERT_EQ(serial.size(), specs.size());
    ASSERT_EQ(parallel.size(), specs.size());
    for (size_t i = 0; i < specs.size(); ++i) {
        SCOPED_TRACE("spec " + std::to_string(i));
        expectIdentical(serial[i].output, parallel[i].output);
    }
}

TEST(SweepEngine, StreamingMatchesMaterializedAtAnyJobCount)
{
    // The streaming path (chunked sources, shared chunk cache) must
    // reproduce the materialized sweep bit for bit, serial and
    // parallel alike — including an adversarial chunk size that never
    // divides the run length.
    std::vector<RunSpec> specs = mixedSpecs();

    TraceCache mat_cache;
    std::vector<RunOutcome> materialized =
        executeSpecs(makeEngine(mat_cache, 2), specs);

    for (unsigned jobs : {1u, 4u}) {
        for (uint64_t chunk : {uint64_t{0}, uint64_t{1021}}) {
            TraceCache cache;
            SweepOptions opts;
            opts.jobs = jobs;
            opts.progress = false;
            opts.streaming = true;
            opts.chunkInsts = chunk;
            std::vector<RunOutcome> streamed =
                executeSpecs(SweepEngine(opts, &cache), specs);
            ASSERT_EQ(streamed.size(), specs.size());
            for (size_t i = 0; i < specs.size(); ++i) {
                SCOPED_TRACE("jobs " + std::to_string(jobs) +
                             " chunk " + std::to_string(chunk) +
                             " spec " + std::to_string(i));
                ASSERT_TRUE(streamed[i].ok)
                    << streamed[i].errorMessage;
                expectIdentical(materialized[i].output,
                                streamed[i].output);
            }
            // Workers shared chunk production through the cache.
            EXPECT_GT(cache.stats().hits + cache.stats().misses, 0u);
        }
    }
}

TEST(SweepEngine, CachedAndUncachedTracesAgree)
{
    std::vector<RunSpec> specs = mixedSpecs();
    TraceCache cache, unused;
    std::vector<RunOutcome> cached =
        executeSpecs(makeEngine(cache, 2), specs);
    std::vector<RunOutcome> uncached =
        executeSpecs(makeEngine(unused, 2, false), specs);
    for (size_t i = 0; i < specs.size(); ++i) {
        SCOPED_TRACE("spec " + std::to_string(i));
        expectIdentical(cached[i].output, uncached[i].output);
    }
}

TEST(SweepEngine, TraceCacheHitsForRepeatedKeys)
{
    // 8 specs over testTiny: 6 PC-or-WC base configs + 2 prefetch
    // variants -> exactly 2 distinct traces (PC and WC rewrite).
    std::vector<RunSpec> specs = mixedSpecs();
    TraceCache cache;
    std::vector<RunOutcome> results =
        executeSpecs(makeEngine(cache, 4), specs);

    TraceCacheStats stats = cache.stats();
    EXPECT_EQ(stats.misses, 2u);
    EXPECT_EQ(stats.hits, specs.size() - 2);
    uint64_t flagged_hits = 0;
    for (const RunOutcome &r : results)
        flagged_hits += r.traceCacheHit ? 1 : 0;
    EXPECT_EQ(flagged_hits, stats.hits);

    // A different seed is a different key.
    RunSpec reseeded = specs[0];
    reseeded.seed = 1234;
    executeSpecs(makeEngine(cache, 1), {reseeded});
    EXPECT_EQ(cache.stats().misses, 3u);
}

TEST(SweepEngine, ResultsComeBackInSubmissionOrder)
{
    // Distinguishable specs: each measures a different instruction
    // count, so result slot i must report spec i's interval length.
    std::vector<RunSpec> specs;
    std::vector<uint64_t> expected;
    for (uint64_t k = 0; k < 8; ++k) {
        RunSpec spec;
        spec.profile = WorkloadProfile::testTiny();
        spec.config = SimConfig::defaults();
        spec.warmupInsts = 5000;
        spec.measureInsts = 10000 + k * 2000;
        specs.push_back(spec);
    }

    TraceCache cache;
    std::vector<RunOutcome> results =
        executeSpecs(makeEngine(cache, 4), specs);
    ASSERT_EQ(results.size(), specs.size());
    for (size_t i = 0; i < specs.size(); ++i) {
        // generateInto may overshoot the goal by a few records, so
        // compare against a serial reference run of the same spec.
        RunOutput ref = test::runMaterialized(specs[i]);
        SCOPED_TRACE("spec " + std::to_string(i));
        EXPECT_EQ(results[i].output.sim.instructions,
                  ref.sim.instructions);
        expectIdentical(results[i].output, ref);
    }
}

// Pins the deprecated runTasks shim (removal next PR): it must keep
// forwarding to parallelForEach until the last caller is gone.
TEST(SweepEngine, RunTasksExecutesEveryTask)
{
    std::vector<int> done(17, 0);
    std::vector<std::function<void()>> tasks;
    for (size_t i = 0; i < done.size(); ++i)
        tasks.push_back([&done, i] { done[i] = 1; });
    TraceCache cache;
    makeEngine(cache, 4).runTasks(tasks);
    for (size_t i = 0; i < done.size(); ++i)
        EXPECT_EQ(done[i], 1) << "task " << i;
}

TEST(SweepEngine, PerRunTimingIsPopulated)
{
    std::vector<RunSpec> specs = mixedSpecs();
    specs.resize(2);
    TraceCache cache;
    std::vector<RunOutcome> results =
        executeSpecs(makeEngine(cache, 1), specs);
    for (const RunOutcome &r : results)
        EXPECT_GT(r.wallMs, 0.0);
}

TEST(TraceCache, ProfileFingerprintsAreDistinct)
{
    std::vector<WorkloadProfile> profiles =
        WorkloadProfile::allCommercial();
    profiles.push_back(WorkloadProfile::testTiny());
    for (size_t i = 0; i < profiles.size(); ++i)
        for (size_t j = i + 1; j < profiles.size(); ++j)
            EXPECT_NE(profiles[i].cacheKey(), profiles[j].cacheKey());

    // Any knob change must change the key (spot-check a few).
    WorkloadProfile base = WorkloadProfile::testTiny();
    WorkloadProfile mod = base;
    mod.loadColdProb += 1e-9;
    EXPECT_NE(base.cacheKey(), mod.cacheKey());
    mod = base;
    mod.lockCount += 1;
    EXPECT_NE(base.cacheKey(), mod.cacheKey());
    mod = base;
    mod.sharedLoadFrac += 0.01;
    EXPECT_NE(base.cacheKey(), mod.cacheKey());
}

TEST(TraceCache, EvictsLruWhenOverBudget)
{
    // Budget fits roughly one trace of 4000 records.
    TraceCache cache(4000 * sizeof(TraceRecord));
    auto build = [](uint64_t seed) {
        return [seed] {
            SyntheticTraceGenerator gen(WorkloadProfile::testTiny(),
                                        seed, 0);
            return gen.generate(4000);
        };
    };
    cache.getOrBuild("a", build(1));
    auto kept = cache.getOrBuild("b", build(2));
    TraceCacheStats stats = cache.stats();
    EXPECT_GE(stats.evictions, 1u);

    // "b" (most recent) survives; "a" rebuilds on next access.
    bool hit = true;
    cache.getOrBuild("b", build(2), &hit);
    EXPECT_TRUE(hit);
    cache.getOrBuild("a", build(1), &hit);
    EXPECT_FALSE(hit);
    EXPECT_GT(kept->size(), 0u);
}

TEST(Runner, TraceOverloadMatchesSelfBuiltTrace)
{
    RunSpec spec;
    spec.profile = WorkloadProfile::testTiny();
    spec.config = SimConfig::wc1(); // exercises the rewrite path
    spec.warmupInsts = warmupInsts();
    spec.measureInsts = measureInsts();

    RunOutput a = test::runMaterialized(spec);
    Trace trace = Runner::buildTrace(spec);
    RunOutput b = test::runMaterialized(spec, trace);
    expectIdentical(a, b);
}

TEST(Runner, TraceCacheKeySeparatesRewriteAndLength)
{
    RunSpec pc;
    pc.profile = WorkloadProfile::testTiny();
    pc.config = SimConfig::defaults();
    RunSpec wc = pc;
    wc.config = SimConfig::wc1();
    EXPECT_NE(Runner::traceCacheKey(pc), Runner::traceCacheKey(wc));

    RunSpec longer = pc;
    longer.measureInsts += 1;
    EXPECT_NE(Runner::traceCacheKey(pc),
              Runner::traceCacheKey(longer));

    // Machine-only differences share a trace.
    RunSpec resized = pc;
    resized.config.storeQueueSize = 256;
    resized.numChips = 2;
    resized.smac = SmacConfig{};
    EXPECT_EQ(Runner::traceCacheKey(pc),
              Runner::traceCacheKey(resized));
}

} // namespace
} // namespace storemlp
