/**
 * @file
 * Tests for the delta-compressed v2 trace format.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "trace/generator.hh"
#include "trace/trace_io.hh"

namespace storemlp
{
namespace
{

void
expectTracesEqual(const Trace &a, const Trace &b)
{
    ASSERT_EQ(a.size(), b.size());
    for (size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].pc, b[i].pc) << i;
        EXPECT_EQ(a[i].addr, b[i].addr) << i;
        EXPECT_EQ(a[i].cls, b[i].cls) << i;
        EXPECT_EQ(a[i].size, b[i].size) << i;
        EXPECT_EQ(a[i].dst, b[i].dst) << i;
        EXPECT_EQ(a[i].src1, b[i].src1) << i;
        EXPECT_EQ(a[i].src2, b[i].src2) << i;
        EXPECT_EQ(a[i].flags, b[i].flags) << i;
    }
}

TEST(TraceV2, HandwrittenRoundTrip)
{
    Trace t = TraceBuilder(0x4000)
        .load(0x123456789a, 5, 6)
        .store(0xfedcba98, 7)
        .casa(0x42).withFlags(kFlagLockAcquire)
        .branch(true, 9)
        .membar()
        .alu()
        .load(0x10).atPc(0x8000000000ULL) // large backward/forward pc
        .build();

    std::stringstream ss;
    writeTraceCompressed(ss, t);
    Trace u = readTrace(ss);
    expectTracesEqual(t, u);
}

TEST(TraceV2, GeneratedTraceRoundTrip)
{
    Trace t = SyntheticTraceGenerator(WorkloadProfile::database(), 7)
        .generate(50000);
    std::stringstream ss;
    writeTraceCompressed(ss, t);
    Trace u = readTrace(ss);
    expectTracesEqual(t, u);
}

TEST(TraceV2, SubstantiallySmallerThanV1)
{
    Trace t = SyntheticTraceGenerator(WorkloadProfile::tpcw(), 7)
        .generate(50000);
    std::stringstream v1, v2;
    writeTrace(v1, t);
    writeTraceCompressed(v2, t);
    EXPECT_LT(v2.str().size() * 2, v1.str().size())
        << "v2 should be at least 2x smaller";
}

TEST(TraceV2, EmptyTrace)
{
    std::stringstream ss;
    writeTraceCompressed(ss, Trace());
    EXPECT_TRUE(readTrace(ss).empty());
}

TEST(TraceV2, AutoDetectsBothFormats)
{
    Trace t = TraceBuilder().alu(1, 2, 3).load(0x40, 4).build();
    std::stringstream v1, v2;
    writeTrace(v1, t);
    writeTraceCompressed(v2, t);
    expectTracesEqual(readTrace(v1), readTrace(v2));
}

TEST(TraceV2, TruncatedBodyThrows)
{
    Trace t = TraceBuilder().load(0x123456, 5).load(0x9999999, 6)
        .build();
    std::stringstream ss;
    writeTraceCompressed(ss, t);
    std::string s = ss.str();
    std::stringstream cut(s.substr(0, s.size() - 2));
    EXPECT_THROW(readTrace(cut), TraceFormatError);
}

TEST(TraceV2, InvalidClassThrows)
{
    std::stringstream ss;
    writeTraceCompressed(ss, TraceBuilder().alu().build());
    std::string s = ss.str();
    s[16] = 0x0f; // class bits = 15 (invalid)
    std::stringstream bad(s);
    EXPECT_THROW(readTrace(bad), TraceFormatError);
}

TEST(TraceV2, FileRoundTripAutoDetected)
{
    Trace t = SyntheticTraceGenerator(WorkloadProfile::testTiny(), 3)
        .generate(5000);
    std::string path = testing::TempDir() + "/storemlp_v2_test.bin";
    writeTraceCompressedFile(path, t);
    Trace u = readTraceFile(path);
    expectTracesEqual(t, u);
}

TEST(TraceV2, ZeroRegisterRecordsStayCompact)
{
    // Barrier records carry no registers: 1 control byte each after
    // the first (sequential pcs).
    TraceBuilder b;
    for (int i = 0; i < 1000; ++i)
        b.membar();
    std::stringstream ss;
    writeTraceCompressed(ss, b.build());
    // 16-byte header + first record (ctrl+pc varint) + 999 x 1 byte.
    EXPECT_LT(ss.str().size(), 1030u);
}

} // namespace
} // namespace storemlp
