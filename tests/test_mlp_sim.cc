/**
 * @file
 * Unit tests for the epoch engine itself: quiet overlap (Table 2
 * mechanism), window terminations, SLE, prefetch-past-serializing,
 * Hardware Scout modes, perfect stores, coalescing pressure relief,
 * weak-consistency commit.
 */

#include <gtest/gtest.h>

#include "sim_test_util.hh"
#include "trace/rewriter.hh"

namespace storemlp
{
namespace
{

using namespace storemlp::test;

unsigned
term(const SimResult &res, TermCond c)
{
    return static_cast<unsigned>(res.termCounts[static_cast<unsigned>(c)]);
}

// ---- quiet overlap: the Table 2 mechanism ----

TEST(EpochEngine, StoreMissFullyOverlappedByComputation)
{
    // A lone missing store followed by 600 cycles of independent ALU
    // work: the store's 500-cycle latency is fully hidden; no epoch.
    TraceBuilder b;
    b.store(missAddr(0), 2);
    fillers(b, 600);

    SimRig rig;
    SimResult res = rig.run(b.build(), SimConfig::defaults());
    EXPECT_EQ(res.epochs, 0u);
    EXPECT_EQ(res.missStores, 1u);
    EXPECT_EQ(res.overlappedStores, 1u);
    EXPECT_DOUBLE_EQ(res.overlappedStoreFraction(), 1.0);
}

TEST(EpochEngine, StoreMissNotOverlappedWhenSerializeArrives)
{
    // Same store, but a membar lands inside its latency window.
    TraceBuilder b;
    b.store(missAddr(0), 2);
    fillers(b, 100);
    b.membar();
    fillers(b, 600);

    SimRig rig;
    SimResult res = rig.run(b.build(), SimConfig::defaults());
    EXPECT_EQ(res.epochs, 1u);
    EXPECT_EQ(res.overlappedStores, 0u);
    EXPECT_EQ(term(res, TermCond::StoreSerialize), 1u);
}

TEST(EpochEngine, LoadMissAlmostNeverOverlapped)
{
    // ROB(64) << latency(500): a missing load with plenty of work
    // still stalls the window (the paper's observation that loads are
    // only marginally overlappable).
    TraceBuilder b;
    b.load(missAddr(0), 2);
    fillers(b, 600);

    SimRig rig;
    SimResult res = rig.run(b.build(), SimConfig::defaults());
    EXPECT_EQ(res.epochs, 1u);
    EXPECT_EQ(term(res, TermCond::WindowFull), 1u);
}

TEST(EpochEngine, TrailingOpenGenerationIsQuiet)
{
    TraceBuilder b;
    fillers(b, 10);
    b.store(missAddr(0), 2); // still in flight at end of trace
    SimRig rig;
    SimResult res = rig.run(b.build(), SimConfig::defaults());
    EXPECT_EQ(res.epochs, 0u);
    EXPECT_EQ(res.overlappedStores, 1u);
}

// ---- terminations ----

TEST(EpochEngine, InstructionMissTerminatesAndResumes)
{
    TraceBuilder b;
    fillers(b, 4);
    b.alu().atPc(missPc(0));
    fillers(b, 4);

    SimRig rig;
    SimResult res = rig.run(b.build(), SimConfig::defaults());
    EXPECT_EQ(res.epochs, 1u);
    EXPECT_EQ(res.missInsts, 1u);
    EXPECT_EQ(term(res, TermCond::InstructionMiss), 1u);
    EXPECT_EQ(res.instructions, 9u);
}

TEST(EpochEngine, MispredictedBranchDependentOnMissTerminates)
{
    TraceBuilder b;
    b.load(missAddr(0), 5);
    // Taken branch consuming the load's destination: cold BTB
    // guarantees a misprediction; the poisoned source makes it
    // unresolvable.
    b.branch(true, 5);
    fillers(b, 100);

    SimRig rig;
    SimResult res = rig.run(b.build(), SimConfig::defaults());
    EXPECT_GE(term(res, TermCond::MispredBranch), 1u);
}

TEST(EpochEngine, CorrectlyPredictedDependentBranchDoesNotTerminate)
{
    // Train the predictor within the trace, then the dependent branch
    // is predicted correctly: no mispredict termination.
    TraceBuilder b;
    for (int i = 0; i < 80; ++i)
        b.branch(true, 1).atPc(0x2000);
    b.load(missAddr(0), 5);
    b.branch(true, 5).atPc(0x2000);
    fillers(b, 100);

    SimRig rig;
    SimResult res = rig.run(b.build(), SimConfig::defaults());
    EXPECT_EQ(term(res, TermCond::MispredBranch), 0u);
    EXPECT_EQ(term(res, TermCond::WindowFull), 1u);
}

TEST(EpochEngine, IssueWindowFullOnDeferredChain)
{
    // A missing load followed by a long dependent chain: the issue
    // window (32) fills with deferred instructions before the ROB
    // (64) does.
    TraceBuilder b;
    b.load(missAddr(0), 5);
    for (int i = 0; i < 50; ++i)
        b.alu(5, 5); // all dependent on the load
    fillers(b, 50);

    SimConfig cfg = SimConfig::defaults();
    SimRig rig;
    SimResult res = rig.run(b.build(), cfg);
    EXPECT_EQ(res.epochs, 1u);
    EXPECT_EQ(term(res, TermCond::WindowFull), 1u);
}

TEST(EpochEngine, PointerChaseCreatesSerialEpochs)
{
    // loadA -> loadB(dep) -> loadC(dep): three serial epochs.
    TraceBuilder b;
    b.load(missAddr(0), 5);
    b.load(missAddr(1), 6, 5);
    b.load(missAddr(2), 7, 6);
    fillers(b, 100);

    SimRig rig;
    SimResult res = rig.run(b.build(), SimConfig::defaults());
    EXPECT_EQ(res.epochs, 3u);
    EXPECT_EQ(res.missLoads, 3u);
    EXPECT_DOUBLE_EQ(res.mlp(), 1.0);
}

TEST(EpochEngine, IndependentLoadsOverlapInOneEpoch)
{
    TraceBuilder b;
    b.load(missAddr(0), 5);
    b.load(missAddr(1), 6);
    b.load(missAddr(2), 7);
    fillers(b, 100);

    SimRig rig;
    SimResult res = rig.run(b.build(), SimConfig::defaults());
    EXPECT_EQ(res.epochs, 1u);
    EXPECT_DOUBLE_EQ(res.mlp(), 3.0);
}

TEST(EpochEngine, HitUnderMissPoisonsConsumer)
{
    // Two loads to the SAME missing line: one off-chip miss, but the
    // second load's value is also unavailable, so a dependent chain
    // defers on it.
    TraceBuilder b;
    b.load(missAddr(0), 5);
    b.load(missAddr(0) + 8, 6);
    for (int i = 0; i < 50; ++i)
        b.alu(6, 6);
    fillers(b, 60);

    SimRig rig;
    SimResult res = rig.run(b.build(), SimConfig::defaults());
    EXPECT_EQ(res.missLoads, 1u); // MSHR merge: one miss
    EXPECT_EQ(res.epochs, 1u);
}

// ---- SLE ----

TEST(EpochEngine, SleElidesLockSerialization)
{
    auto build = [] {
        TraceBuilder b;
        uint64_t lock = warmAddr(0);
        b.store(missAddr(0), 2);
        b.casa(lock, 3).withFlags(kFlagLockAcquire);
        b.alu();
        b.store(lock, 4).withFlags(kFlagLockRelease);
        fillers(b, 600);
        return b.build();
    };

    SimConfig base = SimConfig::defaults();
    SimRig rig1;
    SimResult no_sle = rig1.run(build(), base);
    // Without SLE the casa forces a store-serialize epoch.
    EXPECT_EQ(no_sle.epochs, 1u);

    SimConfig with_sle = base;
    with_sle.sle = true;
    SimRig rig2;
    SimResult sle = rig2.run(build(), with_sle);
    // With SLE the acquire is a plain load: the store miss is fully
    // overlapped and no epoch forms.
    EXPECT_EQ(sle.epochs, 0u);
    EXPECT_EQ(sle.overlappedStores, 1u);
    EXPECT_GE(sle.elidedLocks, 1u);
}

TEST(EpochEngine, SleDoesNotElideBareAtomics)
{
    TraceBuilder b;
    b.store(missAddr(0), 2);
    b.casa(warmAddr(0), 3); // no matching release: not a lock
    fillers(b, 600);

    SimConfig cfg = SimConfig::defaults();
    cfg.sle = true;
    SimRig rig;
    SimResult res = rig.run(b.build(), cfg);
    EXPECT_EQ(res.epochs, 1u); // still serializes
}

// ---- prefetch past serializing instructions ----

TEST(EpochEngine, PrefetchPastSerializingMergesEpochs)
{
    auto build = [] {
        TraceBuilder b;
        b.store(missAddr(0), 2);
        b.membar();
        b.load(missAddr(1), 3);
        fillers(b, 100);
        return b.build();
    };

    SimRig rig1;
    SimResult base = rig1.run(build(), SimConfig::defaults());
    EXPECT_EQ(base.epochs, 2u);

    SimConfig pps = SimConfig::defaults();
    pps.prefetchPastSerializing = true;
    SimRig rig2;
    SimResult merged = rig2.run(build(), pps);
    // The load beyond the membar is prefetched into the first epoch.
    EXPECT_EQ(merged.epochs, 1u);
    EXPECT_EQ(merged.epochMisses, 2u);
}

TEST(EpochEngine, PrefetchPastSerializingBoundedByRob)
{
    // The missing load sits beyond the ROB-sized lookahead window:
    // it cannot be prefetched.
    TraceBuilder b;
    b.store(missAddr(0), 2);
    b.membar();
    fillers(b, 100); // > robSize(64) instructions
    b.load(missAddr(1), 3);
    fillers(b, 100);

    SimConfig pps = SimConfig::defaults();
    pps.prefetchPastSerializing = true;
    SimRig rig;
    SimResult res = rig.run(b.build(), pps);
    EXPECT_EQ(res.epochs, 2u);
}

// ---- Hardware Scout ----

Trace
scoutLoadTrace()
{
    // loadA misses; loadB is far beyond the ROB window.
    TraceBuilder b;
    b.load(missAddr(0), 5);
    fillers(b, 100);
    b.load(missAddr(1), 6);
    fillers(b, 100);
    return b.build();
}

TEST(EpochEngine, ScoutMergesDistantLoadMiss)
{
    SimRig rig1;
    SimResult base = rig1.run(scoutLoadTrace(), SimConfig::defaults());
    EXPECT_EQ(base.epochs, 2u);

    SimConfig hws0 = SimConfig::defaults().withScout(ScoutMode::Hws0);
    SimRig rig2;
    SimResult scout = rig2.run(scoutLoadTrace(), hws0);
    EXPECT_EQ(scout.epochs, 1u);
    EXPECT_EQ(scout.epochMisses, 2u);
    EXPECT_GE(scout.scoutEntries, 1u);
    EXPECT_GE(scout.scoutPrefetches, 1u);
}

TEST(EpochEngine, ScoutSkipsMissDependentLoads)
{
    // The second load's address depends on the first: the scout
    // cannot prefetch it (poisoned address register).
    TraceBuilder b;
    b.load(missAddr(0), 5);
    fillers(b, 100);
    b.load(missAddr(1), 6, 5); // address from the missing load
    fillers(b, 100);

    SimConfig hws0 = SimConfig::defaults().withScout(ScoutMode::Hws0);
    SimRig rig;
    SimResult res = rig.run(b.build(), hws0);
    EXPECT_EQ(res.epochs, 2u);
}

Trace
scoutStoreTrace()
{
    // loadA misses; a missing store beyond the window; a membar to
    // expose the store's latency if it was not prefetched.
    TraceBuilder b;
    b.load(missAddr(0), 5);
    fillers(b, 100);
    b.store(missAddr(1), 6);
    b.membar();
    fillers(b, 100);
    return b.build();
}

TEST(EpochEngine, Hws1PrefetchesStoresButHws0DoesNot)
{
    SimConfig hws0 = SimConfig::defaults().withScout(ScoutMode::Hws0);
    SimRig rig0;
    SimResult res0 = rig0.run(scoutStoreTrace(), hws0);

    SimConfig hws1 = SimConfig::defaults().withScout(ScoutMode::Hws1);
    SimRig rig1;
    SimResult res1 = rig1.run(scoutStoreTrace(), hws1);

    EXPECT_EQ(res0.epochs, 2u); // store miss pays its own epoch
    EXPECT_EQ(res1.epochs, 1u); // store prefetched during scout
}

TEST(EpochEngine, Hws2EntersScoutOnStoreStall)
{
    // A store-serialize stall with NO missing load: only HWS2 scouts,
    // merging the distant load miss into the store's epoch.
    auto build = [] {
        TraceBuilder b;
        b.store(missAddr(0), 2);
        b.membar();
        fillers(b, 100); // beyond ROB: PC2-style lookahead can't reach
        b.load(missAddr(1), 3);
        fillers(b, 100);
        return b.build();
    };

    SimConfig hws1 = SimConfig::defaults().withScout(ScoutMode::Hws1);
    SimRig rig1;
    SimResult res1 = rig1.run(build(), hws1);
    EXPECT_EQ(res1.epochs, 2u);

    SimConfig hws2 = SimConfig::defaults().withScout(ScoutMode::Hws2);
    SimRig rig2;
    SimResult res2 = rig2.run(build(), hws2);
    EXPECT_EQ(res2.epochs, 1u);
    EXPECT_GE(res2.scoutEntries, 1u);
}

TEST(EpochEngine, ScoutStopsAtInstructionMiss)
{
    // Scout cannot run past a missing instruction fetch, but it
    // prefetches the missing line itself.
    TraceBuilder b;
    b.load(missAddr(0), 5);
    fillers(b, 10);
    b.alu().atPc(missPc(0));
    b.alu().atPc(0x3000); // back to warm code
    fillers(b, 10);
    b.load(missAddr(1), 6); // behind the inst miss: not scouted...
    fillers(b, 100);

    SimConfig hws0 = SimConfig::defaults().withScout(ScoutMode::Hws0);
    SimRig rig;
    SimResult res = rig.run(b.build(), hws0);
    // Epoch 1: loadA + the prefetched instruction line. Epoch 2: loadB.
    EXPECT_EQ(res.epochs, 2u);
    EXPECT_EQ(res.missInsts, 1u);
    EXPECT_EQ(res.epochMisses, 3u);
}

// ---- perfect stores / infinite queue ----

TEST(EpochEngine, PerfectStoresNeverStall)
{
    TraceBuilder b;
    for (int i = 0; i < 8; ++i)
        b.store(missAddr(i), 2);
    b.membar();
    fillers(b, 100);

    SimConfig cfg = SimConfig::defaults();
    cfg.perfectStores = true;
    SimRig rig;
    SimResult res = rig.run(b.build(), cfg);
    EXPECT_EQ(res.epochs, 0u);
}

TEST(EpochEngine, InfiniteStoreQueueRemovesBackpressure)
{
    // Many missing stores then a missing load: with an infinite queue
    // the load joins the first store's epoch instead of stalling on
    // queue backpressure.
    TraceBuilder b;
    for (int i = 0; i < 40; ++i)
        b.store(missAddr(i), 2);
    b.load(missAddr(60), 3);
    fillers(b, 100);

    SimConfig cfg = SimConfig::defaults();
    cfg.storePrefetch = StorePrefetch::AtExecute;
    cfg.infiniteStoreQueue = true;
    SimRig rig;
    SimResult res = rig.run(b.build(), cfg);
    EXPECT_EQ(res.epochs, 1u);
    EXPECT_EQ(term(res, TermCond::SqStoreBufferFull), 0u);
    EXPECT_EQ(term(res, TermCond::StoreBufferFull), 0u);
}

// ---- coalescing ----

TEST(EpochEngine, CoalescingRelievesQueuePressure)
{
    // 60 stores into the same 8-byte granule: with coalescing they
    // occupy one SQ entry; without, they overflow SQ+SB and stall.
    auto build = [] {
        TraceBuilder b;
        b.store(missAddr(0), 2);
        for (int i = 0; i < 60; ++i)
            b.store(warmAddr(0), 3);
        fillers(b, 600);
        return b.build();
    };

    SimConfig with_coal = SimConfig::defaults();
    SimRig rig1;
    SimResult coal = rig1.run(build(), with_coal);
    EXPECT_EQ(coal.epochs, 0u); // miss fully overlapped
    EXPECT_GT(coal.coalescedStores, 50u);

    SimConfig no_coal = SimConfig::defaults();
    no_coal.coalesceBytes = 0;
    SimRig rig2;
    SimResult flat = rig2.run(build(), no_coal);
    EXPECT_GE(flat.epochs, 1u); // queue filled behind the miss
}

// ---- weak consistency commit ----

TEST(EpochEngine, WcHitsBypassMissingHead)
{
    // Missing store at the head; many hit stores behind it. Under PC
    // they clog the queue; under WC they drain past it.
    auto build = [] {
        TraceBuilder b;
        b.store(missAddr(0), 2);
        for (int i = 0; i < 60; ++i)
            b.store(warmAddr(i), 3);
        fillers(b, 600);
        return b.build();
    };

    SimConfig pc = SimConfig::defaults();
    pc.storePrefetch = StorePrefetch::None;
    pc.coalesceBytes = 0;
    SimRig rig1;
    SimResult res_pc = rig1.run(build(), pc);
    EXPECT_GE(res_pc.epochs, 1u);

    SimConfig wc = pc;
    wc.memoryModel = ModelDescriptor::wc();
    SimRig rig2;
    SimResult res_wc = rig2.run(build(), wc);
    EXPECT_EQ(res_wc.epochs, 0u);
}

TEST(EpochEngine, WcLwsyncFencesCommitOrder)
{
    // missing store; lwsync; 60 hit stores. The fence keeps the hit
    // stores queued behind the miss, so the queue fills and stalls.
    TraceBuilder b;
    b.store(missAddr(0), 2);
    b.lwsync();
    for (int i = 0; i < 60; ++i)
        b.store(warmAddr(i), 3);
    fillers(b, 600);

    SimConfig wc = SimConfig::defaults();
    wc.memoryModel = ModelDescriptor::wc();
    wc.storePrefetch = StorePrefetch::None;
    wc.coalesceBytes = 0;
    SimRig rig;
    SimResult res = rig.run(b.build(), wc);
    EXPECT_GE(res.epochs, 1u);
}

TEST(EpochEngine, WcYoungerMissesWaitWithoutPrefetch)
{
    // Two missing stores under WC without prefetching: the younger
    // one issues only after the older resolves (two epochs, exposed
    // by membars).
    TraceBuilder b;
    b.store(missAddr(0), 2);
    b.store(missAddr(1), 3);
    b.membar();
    fillers(b, 100);

    SimConfig wc = SimConfig::defaults();
    wc.memoryModel = ModelDescriptor::wc();
    wc.storePrefetch = StorePrefetch::None;
    SimRig rig;
    SimResult res = rig.run(b.build(), wc);
    EXPECT_EQ(res.epochs, 2u);

    // With prefetch-at-retire they overlap into one epoch.
    SimConfig wc1 = wc;
    wc1.storePrefetch = StorePrefetch::AtRetire;
    SimRig rig2;
    TraceBuilder b2;
    b2.store(missAddr(0), 2);
    b2.store(missAddr(1), 3);
    b2.membar();
    fillers(b2, 100);
    SimResult res1 = rig2.run(b2.build(), wc1);
    EXPECT_EQ(res1.epochs, 1u);
}

// ---- misc engine invariants ----

TEST(EpochEngine, SleRequiresLockAnalysis)
{
    SimConfig cfg = SimConfig::defaults();
    cfg.sle = true;
    ChipNode chip(HierarchyConfig{}, 0);
    EXPECT_THROW(MlpSimulator(cfg, chip, nullptr),
                 std::invalid_argument);
}

TEST(EpochEngine, TerminationCountsSumToEpochs)
{
    TraceBuilder b;
    b.load(missAddr(0), 5);
    fillers(b, 100);
    b.store(missAddr(1), 6);
    b.membar();
    b.alu().atPc(missPc(0));
    fillers(b, 100);

    SimRig rig;
    SimResult res = rig.run(b.build(), SimConfig::defaults());
    uint64_t sum = 0;
    for (unsigned i = 0; i < kNumTermConds; ++i)
        sum += res.termCounts[i];
    EXPECT_EQ(sum, res.epochs);
    EXPECT_EQ(res.mlpHist.total(), res.epochs);
    EXPECT_EQ(res.storeVsOtherMlp.total(), res.epochs);
}

TEST(EpochEngine, BandwidthCountersTrackPrefetches)
{
    TraceBuilder b;
    for (int i = 0; i < 6; ++i)
        b.store(missAddr(i), 2);
    b.membar();
    fillers(b, 50);

    SimConfig sp2 = SimConfig::defaults();
    sp2.storePrefetch = StorePrefetch::AtExecute;
    SimRig rig;
    SimResult res = rig.run(b.build(), sp2);
    EXPECT_GE(res.storePrefetchesIssued, 6u);

    SimConfig sp0 = SimConfig::defaults();
    sp0.storePrefetch = StorePrefetch::None;
    SimRig rig2;
    TraceBuilder b2;
    for (int i = 0; i < 6; ++i)
        b2.store(missAddr(i), 2);
    b2.membar();
    fillers(b2, 50);
    SimResult res0 = rig2.run(b2.build(), sp0);
    EXPECT_EQ(res0.storePrefetchesIssued, 0u);
}

TEST(EpochEngine, EpochListenerStreamsCountedEpochs)
{
    TraceBuilder b;
    b.load(missAddr(0), 5);
    fillers(b, 100);
    b.store(missAddr(1), 6);
    b.membar();
    fillers(b, 100);
    Trace t = b.build();

    SimRig rig;
    rig.locks = LockDetector().analyze(t);
    rig.warmFor(t);
    MlpSimulator sim(SimConfig::defaults(), rig.chip, &rig.locks);

    std::vector<EpochRecord> seen;
    sim.setEpochListener([&](const EpochRecord &r) {
        seen.push_back(r);
    });
    SimResult res = sim.run(t);

    ASSERT_EQ(seen.size(), res.epochs);
    ASSERT_EQ(seen.size(), 2u);
    EXPECT_EQ(seen[0].cause, TermCond::WindowFull);
    EXPECT_EQ(seen[0].loads, 1u);
    EXPECT_EQ(seen[1].cause, TermCond::StoreSerialize);
    EXPECT_EQ(seen[1].stores, 1u);
    EXPECT_GT(seen[1].startCycle, seen[0].resolveCycle - 1e-9);
    for (const auto &r : seen)
        EXPECT_DOUBLE_EQ(r.resolveCycle - r.startCycle, 500.0);
}

TEST(EpochEngine, EpochListenerSkipsQuietGenerations)
{
    TraceBuilder b;
    b.store(missAddr(0), 2);
    fillers(b, 700); // fully overlapped
    Trace t = b.build();

    SimRig rig;
    rig.locks = LockDetector().analyze(t);
    rig.warmFor(t);
    MlpSimulator sim(SimConfig::defaults(), rig.chip, &rig.locks);
    uint64_t events = 0;
    sim.setEpochListener([&](const EpochRecord &) { ++events; });
    SimResult res = sim.run(t);
    EXPECT_EQ(res.epochs, 0u);
    EXPECT_EQ(events, 0u);
}

} // namespace
} // namespace storemlp
