/**
 * @file
 * Tests for the cache replacement-policy variants (LRU / FIFO /
 * random). LRU is the paper default; the others are substrate
 * features for sensitivity studies.
 */

#include <gtest/gtest.h>

#include "cache/set_assoc_cache.hh"
#include "trace/rng.hh"

namespace storemlp
{
namespace
{

CacheConfig
withPolicy(ReplacementPolicy p)
{
    CacheConfig c{1024, 2, 64}; // 8 sets x 2 ways
    c.replacement = p;
    return c;
}

TEST(Replacement, FifoIgnoresTouches)
{
    SetAssocCache c(withPolicy(ReplacementPolicy::Fifo));
    uint64_t stride = 8 * 64; // set stride
    c.access(0, false);
    c.access(stride, false);
    // Re-touching line 0 must NOT save it under FIFO.
    c.access(0, false);
    c.access(2 * stride, false); // evicts the OLDEST fill: line 0
    EXPECT_FALSE(c.probe(0));
    EXPECT_TRUE(c.probe(stride));
}

TEST(Replacement, LruHonoursTouches)
{
    SetAssocCache c(withPolicy(ReplacementPolicy::Lru));
    uint64_t stride = 8 * 64;
    c.access(0, false);
    c.access(stride, false);
    c.access(0, false);
    c.access(2 * stride, false); // evicts LRU: line `stride`
    EXPECT_TRUE(c.probe(0));
    EXPECT_FALSE(c.probe(stride));
}

TEST(Replacement, RandomIsDeterministicPerInstance)
{
    auto run = [] {
        SetAssocCache c(withPolicy(ReplacementPolicy::Random));
        Pcg32 rng(7);
        uint64_t misses = 0;
        for (int i = 0; i < 20000; ++i) {
            if (!c.access(rng.below64(8 * 1024), false).hit)
                ++misses;
        }
        return misses;
    };
    EXPECT_EQ(run(), run());
}

TEST(Replacement, RandomSpreadsEvictions)
{
    SetAssocCache c(withPolicy(ReplacementPolicy::Random));
    uint64_t stride = 8 * 64;
    // Fill one set, then stream new lines through it; both original
    // lines should eventually be evicted (random picks both ways).
    c.access(0, false);
    c.access(stride, false);
    for (int i = 2; i < 40; ++i)
        c.access(i * stride, false);
    EXPECT_FALSE(c.probe(0));
    EXPECT_FALSE(c.probe(stride));
}

TEST(Replacement, AllPoliciesRespectCapacity)
{
    for (ReplacementPolicy p : {ReplacementPolicy::Lru,
                                ReplacementPolicy::Fifo,
                                ReplacementPolicy::Random}) {
        SetAssocCache c(withPolicy(p));
        Pcg32 rng(3);
        for (int i = 0; i < 5000; ++i)
            c.access(rng.below64(64 * 1024), rng.chance(0.5), true);
        EXPECT_LE(c.residentLines(), 16u);
    }
}

TEST(Replacement, InvalidWayAlwaysFillsFirst)
{
    for (ReplacementPolicy p : {ReplacementPolicy::Lru,
                                ReplacementPolicy::Fifo,
                                ReplacementPolicy::Random}) {
        SetAssocCache c(withPolicy(p));
        uint64_t stride = 8 * 64;
        c.access(0, false);
        // One way still invalid: no victim on the second fill.
        AccessResult r = c.access(stride, false);
        EXPECT_FALSE(r.victimValid);
    }
}

TEST(Replacement, PolicyHitRatesOrderOnLoopingPattern)
{
    // A cyclic working set slightly larger than the cache: LRU
    // pathologically misses everything, random retains some lines.
    auto miss_rate = [](ReplacementPolicy p) {
        CacheConfig cfg{1024, 4, 64}; // 16 lines
        cfg.replacement = p;
        SetAssocCache c(cfg);
        uint64_t misses = 0, accesses = 0;
        for (int round = 0; round < 200; ++round) {
            for (uint64_t line = 0; line < 20; ++line) {
                ++accesses;
                // All lines map across sets cyclically.
                if (!c.access(line * 64, false).hit)
                    ++misses;
            }
        }
        return static_cast<double>(misses) /
            static_cast<double>(accesses);
    };
    double lru = miss_rate(ReplacementPolicy::Lru);
    double rnd = miss_rate(ReplacementPolicy::Random);
    EXPECT_GT(lru, 0.9); // classic LRU thrash on cyclic overflow
    EXPECT_LT(rnd, lru);
}

} // namespace
} // namespace storemlp
