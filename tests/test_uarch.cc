/**
 * @file
 * Unit tests for the microarchitecture structures: store queue
 * (coalescing rules), store buffer, register poison, branch predictor.
 */

#include <gtest/gtest.h>

#include "uarch/branch_predictor.hh"
#include "uarch/regdep.hh"
#include "uarch/store_buffer.hh"
#include "uarch/store_queue.hh"

namespace storemlp
{
namespace
{

// ---- store queue ----

TEST(StoreQueue, BasicInsertAndCapacity)
{
    StoreQueue sq(2, 8, CoalesceScope::Tail);
    EXPECT_TRUE(sq.empty());
    EXPECT_FALSE(sq.insert(0x100, 0x100, 1, 0));
    EXPECT_FALSE(sq.insert(0x200, 0x200, 2, 0));
    EXPECT_TRUE(sq.full());
    EXPECT_EQ(sq.size(), 2u);
}

TEST(StoreQueue, PcCoalescesConsecutiveSameGranule)
{
    StoreQueue sq(4, 8, CoalesceScope::Tail);
    sq.insert(0x100, 0x100, 1, 0);
    // Same 8-byte granule, consecutive: coalesces.
    EXPECT_TRUE(sq.insert(0x104, 0x100, 2, 0));
    EXPECT_EQ(sq.size(), 1u);
    EXPECT_EQ(sq.coalesced(), 1u);
    EXPECT_EQ(sq.head().mergedStores, 2u);
}

TEST(StoreQueue, PcDoesNotCoalesceNonConsecutive)
{
    StoreQueue sq(4, 8, CoalesceScope::Tail);
    sq.insert(0x100, 0x100, 1, 0);
    sq.insert(0x200, 0x200, 2, 0); // intervening store
    EXPECT_FALSE(sq.insert(0x100, 0x100, 3, 0));
    EXPECT_EQ(sq.size(), 3u);
}

TEST(StoreQueue, WcCoalescesAnyEntry)
{
    StoreQueue sq(4, 8, CoalesceScope::ToYoungestFence);
    sq.insert(0x100, 0x100, 1, 0);
    sq.insert(0x200, 0x200, 2, 0);
    // WC rule: merges with the non-tail entry.
    EXPECT_TRUE(sq.insert(0x104, 0x100, 3, 0));
    EXPECT_EQ(sq.size(), 2u);
}

TEST(StoreQueue, WcDoesNotCoalesceAcrossFence)
{
    StoreQueue sq(4, 8, CoalesceScope::ToYoungestFence);
    sq.insert(0x100, 0x100, 1, 0);
    // Fence epoch advanced (lwsync): same granule must not merge.
    EXPECT_FALSE(sq.insert(0x100, 0x100, 2, 1));
    EXPECT_EQ(sq.size(), 2u);
}

TEST(StoreQueue, PcDoesNotCoalesceAcrossFence)
{
    StoreQueue sq(4, 8, CoalesceScope::Tail);
    sq.insert(0x100, 0x100, 1, 0);
    EXPECT_FALSE(sq.insert(0x100, 0x100, 2, 1));
}

TEST(StoreQueue, GranularityBoundaries)
{
    StoreQueue sq(4, 8, CoalesceScope::Tail);
    sq.insert(0x100, 0x100, 1, 0);
    // 0x108 is the next 8-byte granule: no coalescing.
    EXPECT_FALSE(sq.insert(0x108, 0x100, 2, 0));
}

TEST(StoreQueue, CoalescingDisabled)
{
    StoreQueue sq(4, 0, CoalesceScope::Tail);
    sq.insert(0x100, 0x100, 1, 0);
    EXPECT_FALSE(sq.insert(0x100, 0x100, 2, 0));
    EXPECT_EQ(sq.size(), 2u);
}

TEST(StoreQueue, WideGranularityCoalescesAcrossLine)
{
    // 64-byte coalescing (the paper's Section 5.1 ablation).
    StoreQueue sq(4, 64, CoalesceScope::Tail);
    sq.insert(0x100, 0x100, 1, 0);
    EXPECT_TRUE(sq.insert(0x138, 0x100, 2, 0));
}

TEST(StoreQueue, HeadPopAndErase)
{
    StoreQueue sq(4, 8, CoalesceScope::ToYoungestFence);
    sq.insert(0x100, 0x100, 1, 0);
    sq.insert(0x200, 0x200, 2, 0);
    sq.insert(0x300, 0x300, 3, 0);
    sq.erase(1);
    EXPECT_EQ(sq.size(), 2u);
    EXPECT_EQ(sq.head().granule, 0x100u);
    sq.popHead();
    EXPECT_EQ(sq.head().granule, 0x300u);
}

TEST(StoreQueue, ReleaseFlagPreserved)
{
    StoreQueue sq(4, 8, CoalesceScope::Tail);
    sq.insert(0x100, 0x100, 1, 0, true);
    EXPECT_TRUE(sq.head().release);
}

TEST(StoreQueue, StatsCountInsertsAndMerges)
{
    StoreQueue sq(8, 8, CoalesceScope::Tail);
    sq.insert(0x100, 0x100, 1, 0);
    sq.insert(0x100, 0x100, 2, 0);
    sq.insert(0x200, 0x200, 3, 0);
    EXPECT_EQ(sq.inserts(), 3u);
    EXPECT_EQ(sq.coalesced(), 1u);
    sq.resetStats();
    EXPECT_EQ(sq.inserts(), 0u);
}

// ---- store buffer ----

TEST(StoreBuffer, FifoOrder)
{
    StoreBuffer sb(4);
    sb.push(0x100, 0x100, 1, true);
    sb.push(0x200, 0x200, 2, true);
    EXPECT_EQ(sb.head().instIdx, 1u);
    sb.popHead();
    EXPECT_EQ(sb.head().instIdx, 2u);
}

TEST(StoreBuffer, CapacityTracking)
{
    StoreBuffer sb(2);
    EXPECT_FALSE(sb.full());
    sb.push(0x100, 0x100, 1, true);
    sb.push(0x200, 0x200, 2, false);
    EXPECT_TRUE(sb.full());
    EXPECT_EQ(sb.size(), 2u);
    sb.popHead();
    EXPECT_FALSE(sb.full());
}

TEST(StoreBuffer, AddrReadyFlag)
{
    StoreBuffer sb(2);
    SbEntry &e = sb.push(0x100, 0x100, 1, false);
    EXPECT_FALSE(e.addrReady);
    e.addrReady = true;
    EXPECT_TRUE(sb.head().addrReady);
}

// ---- register poison ----

TEST(RegPoison, SetTestClear)
{
    RegPoison p;
    EXPECT_TRUE(p.empty());
    p.set(5);
    EXPECT_TRUE(p.test(5));
    EXPECT_FALSE(p.test(6));
    p.clear(5);
    EXPECT_FALSE(p.test(5));
}

TEST(RegPoison, RegisterZeroNeverPoisoned)
{
    RegPoison p;
    p.set(0);
    EXPECT_FALSE(p.test(0));
    EXPECT_TRUE(p.empty());
}

TEST(RegPoison, AnyPoisoned)
{
    RegPoison p;
    p.set(3);
    EXPECT_TRUE(p.anyPoisoned(3, 0));
    EXPECT_TRUE(p.anyPoisoned(0, 3));
    EXPECT_FALSE(p.anyPoisoned(1, 2));
}

TEST(RegPoison, ClearAllAndCount)
{
    RegPoison p;
    p.set(1);
    p.set(2);
    p.set(63);
    EXPECT_EQ(poisonedCount(p), 3u);
    p.clearAll();
    EXPECT_TRUE(p.empty());
    EXPECT_EQ(poisonedCount(p), 0u);
}

// ---- branch predictor ----

TEST(BranchPredictor, LearnsAlwaysTaken)
{
    BranchPredictor bp;
    uint64_t pc = 0x1000;
    // 64 iterations: enough for the 16-bit gshare history to
    // saturate and the saturated-history index to train.
    for (int i = 0; i < 64; ++i)
        bp.predictAndUpdate(pc, true);
    bp.resetStats();
    for (int i = 0; i < 100; ++i)
        bp.predictAndUpdate(pc, true);
    EXPECT_EQ(bp.mispredicts(), 0u);
}

TEST(BranchPredictor, LearnsAlwaysNotTaken)
{
    BranchPredictor bp;
    uint64_t pc = 0x2000;
    for (int i = 0; i < 64; ++i)
        bp.predictAndUpdate(pc, false);
    bp.resetStats();
    for (int i = 0; i < 100; ++i)
        bp.predictAndUpdate(pc, false);
    EXPECT_EQ(bp.mispredicts(), 0u);
}

TEST(BranchPredictor, FirstTakenBranchMissesBtb)
{
    BranchPredictor bp;
    // Even a correctly-predicted-direction taken branch mispredicts
    // on a cold BTB (no target).
    EXPECT_FALSE(bp.predictAndUpdate(0x3000, true));
}

TEST(BranchPredictor, AlternatingPatternLearnable)
{
    BranchPredictor bp;
    uint64_t pc = 0x4000;
    for (int i = 0; i < 256; ++i)
        bp.predictAndUpdate(pc, i % 2 == 0);
    bp.resetStats();
    for (int i = 0; i < 256; ++i)
        bp.predictAndUpdate(pc, i % 2 == 0);
    // gshare with history should capture a strict alternation well.
    EXPECT_LT(bp.mispredictRate(), 0.10);
}

TEST(BranchPredictor, PeekDoesNotTrain)
{
    BranchPredictor bp;
    uint64_t pc = 0x5000;
    for (int i = 0; i < 64; ++i)
        bp.predictAndUpdate(pc, true);
    // Peeking a burst of not-taken outcomes must not un-train.
    for (int i = 0; i < 64; ++i)
        bp.predictPeek(pc, false);
    bp.resetStats();
    EXPECT_TRUE(bp.predictAndUpdate(pc, true));
}

TEST(BranchPredictor, PeekMatchesPredictionOutcome)
{
    BranchPredictor bp;
    uint64_t pc = 0x6000;
    for (int i = 0; i < 64; ++i)
        bp.predictAndUpdate(pc, true);
    EXPECT_TRUE(bp.predictPeek(pc, true));
    EXPECT_FALSE(bp.predictPeek(pc, false));
}

TEST(BranchPredictor, RasRoundTrip)
{
    BranchPredictor bp;
    bp.pushReturn(0x1111);
    bp.pushReturn(0x2222);
    EXPECT_TRUE(bp.popReturn(0x2222));
    EXPECT_TRUE(bp.popReturn(0x1111));
}

TEST(BranchPredictor, RasUnderflowMispredicts)
{
    BranchPredictor bp;
    EXPECT_FALSE(bp.popReturn(0x1234));
}

TEST(BranchPredictor, RasOverflowWraps)
{
    BranchPredictorConfig cfg;
    cfg.rasEntries = 4;
    BranchPredictor bp(cfg);
    for (uint64_t i = 0; i < 6; ++i)
        bp.pushReturn(i);
    // The two oldest entries were overwritten.
    EXPECT_TRUE(bp.popReturn(5));
    EXPECT_TRUE(bp.popReturn(4));
    EXPECT_TRUE(bp.popReturn(3));
    EXPECT_TRUE(bp.popReturn(2));
    EXPECT_FALSE(bp.popReturn(1)); // wrapped slot now holds 5's slot
}

TEST(BranchPredictor, ResetClearsState)
{
    BranchPredictor bp;
    for (int i = 0; i < 16; ++i)
        bp.predictAndUpdate(0x7000, true);
    bp.reset();
    EXPECT_EQ(bp.lookups(), 0u);
    // Cold again: taken branch misses BTB.
    EXPECT_FALSE(bp.predictAndUpdate(0x7000, true));
}

TEST(BranchPredictor, MispredictRateComputation)
{
    BranchPredictor bp;
    bp.predictAndUpdate(0x8000, true); // cold: mispredict
    EXPECT_GT(bp.mispredictRate(), 0.0);
    EXPECT_LE(bp.mispredictRate(), 1.0);
}

} // namespace
} // namespace storemlp
