/**
 * @file
 * Statistical property tests of the synthetic workloads, swept over
 * all four commercial profiles: the structural features the epoch
 * study depends on (flush phases, dense bursts, store-region reuse,
 * shared-hot contention, branch-site stability) must actually be
 * present in the generated streams.
 */

#include <gtest/gtest.h>

#include <unordered_map>
#include <unordered_set>

#include "trace/generator.hh"

namespace storemlp
{
namespace
{

constexpr uint64_t kN = 400000;

std::string
profileName(const testing::TestParamInfo<int> &info)
{
    static const char *names[] = {"Database", "TPCW", "SPECjbb",
                                  "SPECweb"};
    return names[info.param];
}

class WorkloadStatsTest : public testing::TestWithParam<int>
{
  protected:
    WorkloadProfile profile() const
    {
        return WorkloadProfile::allCommercial()[GetParam()];
    }
    Trace
    trace(uint64_t seed = 42) const
    {
        return SyntheticTraceGenerator(profile(), seed).generate(kN);
    }
};

TEST_P(WorkloadStatsTest, InstructionMixWithinTolerance)
{
    WorkloadProfile p = profile();
    Trace::Mix m = trace().mix();
    double n = static_cast<double>(m.total);
    EXPECT_NEAR(100.0 * m.stores / n, p.targetStoresPer100,
                0.08 * p.targetStoresPer100 + 0.3);
    EXPECT_NEAR(m.loads / n, p.loadFrac, 0.03);
    EXPECT_NEAR(m.branches / n, p.branchFrac, 0.02);
}

TEST_P(WorkloadStatsTest, LockDensityMatchesProfile)
{
    WorkloadProfile p = profile();
    Trace t = trace();
    uint64_t acquires = 0;
    for (size_t i = 0; i < t.size(); ++i)
        acquires += t[i].lockAcquire() ? 1 : 0;
    double expected = p.lockProb * static_cast<double>(t.size());
    EXPECT_NEAR(static_cast<double>(acquires), expected,
                0.25 * expected + 10.0);
}

TEST_P(WorkloadStatsTest, StoreRegionReuseObservable)
{
    WorkloadProfile p = profile();
    if (p.storeRevisitFrac <= 0.0)
        GTEST_SKIP() << "profile has no reuse";
    Trace t = SyntheticTraceGenerator(p, 42).generate(3 * kN);
    std::unordered_map<uint64_t, int> line_visits;
    uint64_t priv_base = AddressMap::kPrivateStoreBase;
    for (size_t i = 0; i < t.size(); ++i) {
        const TraceRecord &r = t[i];
        if (!isStoreClass(r.cls))
            continue;
        if (r.addr >= priv_base &&
            r.addr < priv_base + p.storeMissRegionBytes) {
            ++line_visits[r.addr & ~63ull];
        }
    }
    uint64_t revisited = 0;
    for (const auto &[line, n] : line_visits)
        revisited += n > 1 ? 1 : 0;
    // The reuse pool must produce a visible revisited fraction.
    EXPECT_GT(revisited, line_visits.size() / 20);
}

TEST_P(WorkloadStatsTest, SharedHotSubsetContended)
{
    WorkloadProfile p = profile();
    Trace t = trace();
    uint64_t shared = 0, hot_shared = 0;
    for (size_t i = 0; i < t.size(); ++i) {
        const TraceRecord &r = t[i];
        if (!isStoreClass(r.cls))
            continue;
        if (r.addr >= AddressMap::kSharedStoreBase &&
            r.addr < AddressMap::kSharedStoreBase +
                         p.sharedStoreRegionBytes) {
            ++shared;
            if (r.addr <
                AddressMap::kSharedStoreBase + p.sharedHotBytes)
                ++hot_shared;
        }
    }
    ASSERT_GT(shared, 20u);
    // The hot subset concentrates well above its size share.
    EXPECT_GT(static_cast<double>(hot_shared) /
                  static_cast<double>(shared),
              0.3);
}

TEST_P(WorkloadStatsTest, BranchSitesAreStable)
{
    Trace t = trace();
    std::unordered_set<uint64_t> branch_pcs;
    uint64_t branches = 0;
    for (size_t i = 0; i < t.size(); ++i) {
        if (t[i].cls == InstClass::Branch) {
            ++branches;
            branch_pcs.insert(t[i].pc);
            // Branch sites snap to the last word of a 32B group.
            EXPECT_EQ(t[i].pc & 31, 28u);
        }
    }
    ASSERT_GT(branches, 1000u);
    // Each site hosts many dynamic branches (predictor trainability).
    EXPECT_LT(branch_pcs.size() * 5, branches);
}

TEST_P(WorkloadStatsTest, BranchOutcomesMostlyDeterministicPerSite)
{
    WorkloadProfile p = profile();
    Trace t = trace();
    std::unordered_map<uint64_t, std::pair<uint64_t, uint64_t>> site;
    for (size_t i = 0; i < t.size(); ++i) {
        if (t[i].cls != InstClass::Branch)
            continue;
        auto &[taken, total] = site[t[i].pc];
        taken += t[i].taken() ? 1 : 0;
        ++total;
    }
    uint64_t deterministic = 0, considered = 0;
    for (const auto &[pc, tt] : site) {
        if (tt.second < 20)
            continue;
        ++considered;
        double frac = static_cast<double>(tt.first) /
            static_cast<double>(tt.second);
        if (frac < 0.02 || frac > 0.98)
            ++deterministic;
    }
    ASSERT_GT(considered, 50u);
    EXPECT_GT(static_cast<double>(deterministic) /
                  static_cast<double>(considered),
              p.easyBranchFrac - 0.15);
}

TEST_P(WorkloadStatsTest, DifferentSeedsSameStatistics)
{
    Trace::Mix a = trace(1).mix();
    Trace::Mix b = trace(2).mix();
    double na = static_cast<double>(a.total);
    double nb = static_cast<double>(b.total);
    EXPECT_NEAR(a.stores / na, b.stores / nb, 0.01);
    EXPECT_NEAR(a.loads / na, b.loads / nb, 0.01);
}

TEST_P(WorkloadStatsTest, FlushPhasesEmitStoreRuns)
{
    WorkloadProfile p = profile();
    if (p.flushPhaseProb <= 0.0)
        GTEST_SKIP() << "profile has no flush phases";
    // Inside flush phases there are no lock acquires for hundreds of
    // instructions while cold stores keep arriving. Detect at least
    // one such stretch.
    Trace t = SyntheticTraceGenerator(p, 42).generate(3 * kN);
    uint64_t since_lock = 0;
    uint64_t cold_stores_in_stretch = 0;
    bool found = false;
    for (size_t i = 0; i < t.size() && !found; ++i) {
        const TraceRecord &r = t[i];
        if (r.lockAcquire()) {
            since_lock = 0;
            cold_stores_in_stretch = 0;
            continue;
        }
        ++since_lock;
        if (isStoreClass(r.cls) &&
            r.addr >= AddressMap::kPrivateStoreBase)
            ++cold_stores_in_stretch;
        if (since_lock > 400 && cold_stores_in_stretch > 8)
            found = true;
    }
    EXPECT_TRUE(found) << "no lock-free store-flush stretch found";
}

INSTANTIATE_TEST_SUITE_P(AllProfiles, WorkloadStatsTest,
                         testing::Range(0, 4), profileName);

} // namespace
} // namespace storemlp
