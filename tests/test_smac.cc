/**
 * @file
 * Unit tests for the Store Miss Accelerator (SMAC).
 */

#include <gtest/gtest.h>

#include "coherence/smac.hh"

namespace storemlp
{
namespace
{

SmacConfig
tinySmac()
{
    SmacConfig c;
    c.entries = 16;
    c.assoc = 4;
    c.subBlocks = 32;
    c.lineBytes = 64;
    return c;
}

TEST(Smac, PaperGeometry)
{
    SmacConfig c; // defaults: 8K entries, 32x64B sub-blocks
    EXPECT_EQ(c.superBlockBytes(), 2048u);
    EXPECT_EQ(c.coverageBytes(), 16u * 1024 * 1024); // paper: 16 MB
}

TEST(Smac, ProbeMissOnEmpty)
{
    Smac s(tinySmac());
    auto r = s.probeStoreMiss(0x1000);
    EXPECT_FALSE(r.hit);
    EXPECT_FALSE(r.hitInvalidated);
    EXPECT_EQ(s.probeMisses(), 1u);
}

TEST(Smac, InstallThenHit)
{
    Smac s(tinySmac());
    s.installEvicted(0x1000);
    EXPECT_TRUE(s.ownsLine(0x1000));
    auto r = s.probeStoreMiss(0x1000);
    EXPECT_TRUE(r.hit);
    EXPECT_EQ(s.probeHits(), 1u);
}

TEST(Smac, HitConsumesOwnership)
{
    Smac s(tinySmac());
    s.installEvicted(0x1000);
    s.probeStoreMiss(0x1000);
    // Ownership moved back into the L2: second probe misses.
    EXPECT_FALSE(s.ownsLine(0x1000));
    EXPECT_FALSE(s.probeStoreMiss(0x1000).hit);
}

TEST(Smac, SubBlocksIndependent)
{
    Smac s(tinySmac());
    s.installEvicted(0x1000);         // sub-block 0x1000/64 = 64 -> 0
    EXPECT_FALSE(s.probeStoreMiss(0x1040).hit); // neighbouring line
    EXPECT_TRUE(s.probeStoreMiss(0x1000).hit);
}

TEST(Smac, SuperBlockSharing)
{
    Smac s(tinySmac());
    // Two lines in the same 2KB super-block use one tag.
    s.installEvicted(0x2000);
    s.installEvicted(0x2040);
    EXPECT_TRUE(s.ownsLine(0x2000));
    EXPECT_TRUE(s.ownsLine(0x2040));
    EXPECT_FALSE(s.ownsLine(0x2080));
}

TEST(Smac, SnoopInvalidatesAndRemembers)
{
    Smac s(tinySmac());
    s.installEvicted(0x3000);
    EXPECT_TRUE(s.snoopInvalidate(0x3000));
    EXPECT_EQ(s.coherenceInvalidates(), 1u);
    EXPECT_FALSE(s.ownsLine(0x3000));
    // The probe sees the coherence-invalidated marker (Figure 6).
    auto r = s.probeStoreMiss(0x3000);
    EXPECT_FALSE(r.hit);
    EXPECT_TRUE(r.hitInvalidated);
    EXPECT_EQ(s.probeHitInvalidated(), 1u);
}

TEST(Smac, InvalidatedMarkerClearsAfterProbe)
{
    Smac s(tinySmac());
    s.installEvicted(0x3000);
    s.snoopInvalidate(0x3000);
    s.probeStoreMiss(0x3000);
    // The store re-fetched ownership; the marker is consumed.
    auto r = s.probeStoreMiss(0x3000);
    EXPECT_FALSE(r.hitInvalidated);
}

TEST(Smac, SnoopOnAbsentLine)
{
    Smac s(tinySmac());
    EXPECT_FALSE(s.snoopInvalidate(0x4000));
    EXPECT_EQ(s.coherenceInvalidates(), 0u);
}

TEST(Smac, SnoopOnNonExclusiveSubBlock)
{
    Smac s(tinySmac());
    s.installEvicted(0x5000);
    EXPECT_FALSE(s.snoopInvalidate(0x5040)); // different sub-block
    EXPECT_TRUE(s.ownsLine(0x5000));
}

TEST(Smac, ReinstallAfterInvalidation)
{
    Smac s(tinySmac());
    s.installEvicted(0x6000);
    s.snoopInvalidate(0x6000);
    s.installEvicted(0x6000);
    EXPECT_TRUE(s.probeStoreMiss(0x6000).hit);
}

TEST(Smac, TagEvictionDropsOldSuperBlock)
{
    SmacConfig cfg = tinySmac(); // 16 entries, 4-way -> 4 sets
    Smac s(cfg);
    uint64_t super = cfg.superBlockBytes();
    uint64_t sets = cfg.entries / cfg.assoc;
    // Fill one set with assoc+1 super-blocks.
    for (uint64_t i = 0; i <= cfg.assoc; ++i)
        s.installEvicted(i * sets * super);
    EXPECT_EQ(s.tagEvictions(), 1u);
    // The oldest (LRU) super-block is gone.
    EXPECT_FALSE(s.ownsLine(0));
}

TEST(Smac, LruKeepsRecentlyTouched)
{
    SmacConfig cfg = tinySmac();
    Smac s(cfg);
    uint64_t super = cfg.superBlockBytes();
    uint64_t sets = cfg.entries / cfg.assoc;
    uint64_t stride = sets * super;
    for (uint64_t i = 0; i < cfg.assoc; ++i)
        s.installEvicted(i * stride);
    // Touch entry 0 so entry 1 becomes LRU.
    s.installEvicted(0);
    s.installEvicted(cfg.assoc * stride); // evicts entry 1
    EXPECT_TRUE(s.ownsLine(0));
    EXPECT_FALSE(s.ownsLine(stride));
}

TEST(Smac, ClearAndResetStats)
{
    Smac s(tinySmac());
    s.installEvicted(0x7000);
    s.probeStoreMiss(0x7000);
    s.clear();
    s.resetStats();
    EXPECT_FALSE(s.ownsLine(0x7000));
    EXPECT_EQ(s.installs(), 0u);
    EXPECT_EQ(s.probeHits(), 0u);
}

TEST(Smac, CoverageScalesWithEntries)
{
    SmacConfig small;
    small.entries = 8 * 1024;
    SmacConfig big;
    big.entries = 128 * 1024;
    EXPECT_EQ(small.coverageBytes() * 16, big.coverageBytes());
}

} // namespace
} // namespace storemlp
