/**
 * @file
 * Unit tests for the multi-chip coherence layer: MESI transitions on
 * the snoop bus, SMAC interaction, peer traffic.
 */

#include <gtest/gtest.h>

#include "coherence/bus.hh"
#include "coherence/chip.hh"
#include "coherence/traffic.hh"

namespace storemlp
{
namespace
{

struct TwoChips
{
    SnoopBus bus;
    ChipNode a{HierarchyConfig{}, 0};
    ChipNode b{HierarchyConfig{}, 1};

    TwoChips()
    {
        a.connect(&bus);
        b.connect(&bus);
    }
};

MesiState
l2State(ChipNode &chip, uint64_t line)
{
    auto st = chip.hierarchy().l2().probeState(line);
    return st ? static_cast<MesiState>(*st) : MesiState::Invalid;
}

TEST(Coherence, LoadMissExclusiveWhenAlone)
{
    TwoChips m;
    auto out = m.a.load(0x10000);
    EXPECT_EQ(out.level, MissLevel::OffChip);
    EXPECT_FALSE(out.remoteTransfer);
    EXPECT_EQ(l2State(m.a, 0x10000), MesiState::Exclusive);
}

TEST(Coherence, LoadSharedWhenRemoteHasIt)
{
    TwoChips m;
    m.a.load(0x10000);
    auto out = m.b.load(0x10000);
    EXPECT_TRUE(out.remoteTransfer);
    EXPECT_EQ(l2State(m.b, 0x10000), MesiState::Shared);
    EXPECT_EQ(l2State(m.a, 0x10000), MesiState::Shared);
}

TEST(Coherence, StoreInvalidatesRemoteCopy)
{
    TwoChips m;
    m.a.load(0x20000);
    auto out = m.b.store(0x20000);
    EXPECT_EQ(out.level, MissLevel::OffChip);
    EXPECT_TRUE(out.remoteInvalidation);
    EXPECT_EQ(l2State(m.b, 0x20000), MesiState::Modified);
    EXPECT_FALSE(m.a.hierarchy().l2Probe(0x20000));
}

TEST(Coherence, StoreMissWithNoRemoteCopyPaysNoInvalidation)
{
    TwoChips m;
    auto out = m.a.store(0x30000);
    EXPECT_EQ(out.level, MissLevel::OffChip);
    EXPECT_FALSE(out.remoteInvalidation);
}

TEST(Coherence, UpgradeOnStoreToSharedLine)
{
    TwoChips m;
    m.a.load(0x40000);
    m.b.load(0x40000); // both Shared now
    uint64_t upgr_before = m.bus.upgrades();
    auto out = m.a.store(0x40000);
    EXPECT_NE(out.level, MissLevel::OffChip); // L2 hit
    EXPECT_EQ(m.bus.upgrades(), upgr_before + 1);
    EXPECT_EQ(l2State(m.a, 0x40000), MesiState::Modified);
    EXPECT_FALSE(m.b.hierarchy().l2Probe(0x40000));
}

TEST(Coherence, StoreToExclusiveLineSilent)
{
    TwoChips m;
    m.a.load(0x50000); // Exclusive
    uint64_t reqs = m.bus.upgrades() + m.bus.readExclusives();
    m.a.store(0x50000);
    EXPECT_EQ(m.bus.upgrades() + m.bus.readExclusives(), reqs);
    EXPECT_EQ(l2State(m.a, 0x50000), MesiState::Modified);
}

TEST(Coherence, RemoteReadDowngradesModified)
{
    TwoChips m;
    m.a.store(0x60000); // Modified in a
    auto out = m.b.load(0x60000);
    EXPECT_TRUE(out.remoteTransfer);
    EXPECT_EQ(l2State(m.a, 0x60000), MesiState::Shared);
    EXPECT_EQ(l2State(m.b, 0x60000), MesiState::Shared);
}

TEST(Coherence, SingleChipNeverPaysInvalidation)
{
    ChipNode solo(HierarchyConfig{}, 0); // no bus
    auto out = solo.store(0x70000);
    EXPECT_EQ(out.level, MissLevel::OffChip);
    EXPECT_FALSE(out.remoteInvalidation);
}

TEST(Coherence, BusReportsRemoteModified)
{
    TwoChips m;
    m.a.store(0x90000); // Modified in a
    BusRequest req{BusRequest::Kind::Rd, 0x90000, 1};
    BusResponse resp = m.bus.request(req);
    EXPECT_TRUE(resp.remoteHad);
    EXPECT_TRUE(resp.remoteModified);
}

TEST(Coherence, BusCountsRequestKinds)
{
    TwoChips m;
    uint64_t rd = m.bus.reads();
    uint64_t rdx = m.bus.readExclusives();
    m.a.load(0xA0000);  // Rd
    m.b.store(0xB0000); // RdX
    EXPECT_EQ(m.bus.reads(), rd + 1);
    EXPECT_EQ(m.bus.readExclusives(), rdx + 1);
    m.bus.resetStats();
    EXPECT_EQ(m.bus.reads(), 0u);
}

// ---- SMAC integration ----

SmacConfig
testSmac()
{
    SmacConfig c;
    c.entries = 1024;
    c.assoc = 8;
    return c;
}

TEST(CoherenceSmac, DirtyEvictionPopulatesSmac)
{
    ChipNode chip(HierarchyConfig{}, 0, testSmac());
    chip.store(0x100000); // Modified
    // Evict by filling the L2 set (2MB 4-way: stride 512KB).
    for (int i = 1; i <= 5; ++i)
        chip.load(0x100000 + i * 512 * 1024);
    EXPECT_TRUE(chip.smac()->ownsLine(0x100000));
}

TEST(CoherenceSmac, StoreMissAcceleratedBySmac)
{
    ChipNode chip(HierarchyConfig{}, 0, testSmac());
    chip.store(0x100000);
    for (int i = 1; i <= 5; ++i)
        chip.load(0x100000 + i * 512 * 1024);
    auto out = chip.store(0x100000);
    EXPECT_EQ(out.level, MissLevel::OffChip);
    EXPECT_TRUE(out.smacHit);
    EXPECT_EQ(chip.smacAcceleratedStores(), 1u);
}

TEST(CoherenceSmac, CleanEvictionDoesNotPopulateSmac)
{
    ChipNode chip(HierarchyConfig{}, 0, testSmac());
    chip.load(0x200000); // clean
    for (int i = 1; i <= 5; ++i)
        chip.load(0x200000 + i * 512 * 1024);
    EXPECT_FALSE(chip.smac()->ownsLine(0x200000));
}

TEST(CoherenceSmac, RemoteStoreInvalidatesSmacEntry)
{
    SnoopBus bus;
    ChipNode a(HierarchyConfig{}, 0, testSmac());
    ChipNode b(HierarchyConfig{}, 1, testSmac());
    a.connect(&bus);
    b.connect(&bus);

    a.store(0x300000);
    for (int i = 1; i <= 5; ++i)
        a.load(0x300000 + i * 512 * 1024);
    ASSERT_TRUE(a.smac()->ownsLine(0x300000));

    b.store(0x300000); // remote RTO
    EXPECT_FALSE(a.smac()->ownsLine(0x300000));
    EXPECT_EQ(a.smac()->coherenceInvalidates(), 1u);

    // A later local store miss sees the invalidated marker.
    auto out = a.store(0x300000);
    EXPECT_FALSE(out.smacHit);
    EXPECT_TRUE(out.smacHitInvalidated);
}

TEST(CoherenceSmac, RemoteLoadAlsoInvalidatesSmacEntry)
{
    SnoopBus bus;
    ChipNode a(HierarchyConfig{}, 0, testSmac());
    ChipNode b(HierarchyConfig{}, 1);
    a.connect(&bus);
    b.connect(&bus);

    a.store(0x400000);
    for (int i = 1; i <= 5; ++i)
        a.load(0x400000 + i * 512 * 1024);
    ASSERT_TRUE(a.smac()->ownsLine(0x400000));

    b.load(0x400000); // shared snoop: paper says invalidate
    EXPECT_FALSE(a.smac()->ownsLine(0x400000));
}

TEST(CoherenceSmac, CoherenceInvalidationDoesNotRetainOwnership)
{
    SnoopBus bus;
    ChipNode a(HierarchyConfig{}, 0, testSmac());
    ChipNode b(HierarchyConfig{}, 1);
    a.connect(&bus);
    b.connect(&bus);

    a.store(0x500000); // Modified in a's L2
    b.store(0x500000); // remote RTO invalidates a's dirty copy
    // The dirty line left a's L2 via coherence, NOT via capacity
    // eviction: a's SMAC must not claim ownership.
    EXPECT_FALSE(a.smac()->ownsLine(0x500000));
}

TEST(CoherenceSmac, SmacOwnershipVisibleToBusSnoopResponse)
{
    SnoopBus bus;
    ChipNode a(HierarchyConfig{}, 0, testSmac());
    ChipNode b(HierarchyConfig{}, 1);
    a.connect(&bus);
    b.connect(&bus);

    a.store(0x600000);
    for (int i = 1; i <= 5; ++i)
        a.load(0x600000 + i * 512 * 1024);
    ASSERT_TRUE(a.smac()->ownsLine(0x600000));

    // b's store miss must see a remote holder (ownership in a's SMAC).
    auto out = b.store(0x600000);
    EXPECT_TRUE(out.remoteInvalidation);
}

TEST(CoherenceSmac, PrefetchForWriteConsultsSmac)
{
    ChipNode chip(HierarchyConfig{}, 0, testSmac());
    chip.store(0x700000);
    for (int i = 1; i <= 5; ++i)
        chip.load(0x700000 + i * 512 * 1024);
    ASSERT_TRUE(chip.smac()->ownsLine(0x700000));
    chip.prefetchLine(0x700000, true);
    // Prefetch re-acquired the line; SMAC entry consumed.
    EXPECT_FALSE(chip.smac()->ownsLine(0x700000));
    EXPECT_TRUE(chip.hierarchy().l2Probe(0x700000));
}

// ---- peer traffic ----

TEST(PeerTraffic, GeneratesBusActivity)
{
    SnoopBus bus;
    ChipNode a(HierarchyConfig{}, 0);
    ChipNode b(HierarchyConfig{}, 1);
    a.connect(&bus);
    b.connect(&bus);

    PeerTrafficAgent peer(WorkloadProfile::testTiny(), 99, b);
    peer.step(50000);
    EXPECT_EQ(peer.instructionsRetired(), 50000u);
    EXPECT_GT(bus.reads() + bus.readExclusives(), 0u);
}

TEST(PeerTraffic, SharedRegionCreatesCrossChipConflicts)
{
    SnoopBus bus;
    SmacConfig smac_cfg = testSmac();
    ChipNode a(HierarchyConfig{}, 0, smac_cfg);
    ChipNode b(HierarchyConfig{}, 1);
    a.connect(&bus);
    b.connect(&bus);

    WorkloadProfile p = WorkloadProfile::testTiny();
    p.sharedStoreFrac = 0.5;
    p.sharedStoreRegionBytes = 2ULL << 20;
    // Enough cold traffic that dirty lines actually get evicted from
    // the 2MB L2 into the SMAC.
    p.storeColdProb = 0.30;
    p.loadColdProb = 0.20;
    p.storeMissRegionBytes = 32ULL << 20;

    // Local chip writes the shared region, filling L2/SMAC.
    PeerTrafficAgent local(p, 1, a);
    local.step(600000);
    uint64_t inv_before = a.smac()->coherenceInvalidates();

    // The peer writes the same shared region: snoops must invalidate
    // some of chip a's SMAC ownership.
    PeerTrafficAgent peer(p, 2, b);
    peer.step(600000);
    EXPECT_GT(a.smac()->coherenceInvalidates(), inv_before);
}

} // namespace
} // namespace storemlp
