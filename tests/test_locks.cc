/**
 * @file
 * Unit tests for the lock detection tool and the PC->WC rewriter
 * (paper Section 4.2 methodology).
 */

#include <gtest/gtest.h>

#include "trace/generator.hh"
#include "trace/lock_detector.hh"
#include "trace/rewriter.hh"

namespace storemlp
{
namespace
{

TEST(LockDetector, DetectsSimplePcPair)
{
    Trace t = TraceBuilder()
        .casa(0x100, 2)
        .load(0x5000, 3)
        .store(0x6000, 4)
        .store(0x100, 5) // release
        .build();
    LockAnalysis a = LockDetector().analyze(t);
    ASSERT_EQ(a.pairs.size(), 1u);
    EXPECT_EQ(a.pairs[0].acquireIdx, 0u);
    EXPECT_EQ(a.pairs[0].releaseIdx, 3u);
    EXPECT_EQ(a.pairs[0].lockAddr, 0x100u);
    EXPECT_EQ(a.roles[0], LockRole::Acquire);
    EXPECT_EQ(a.roles[3], LockRole::Release);
    EXPECT_EQ(a.roles[1], LockRole::None);
}

TEST(LockDetector, UnmatchedCasaStaysUnpaired)
{
    Trace t = TraceBuilder()
        .casa(0x100, 2) // lock-free CAS, never released
        .load(0x5000, 3)
        .build();
    LockAnalysis a = LockDetector().analyze(t);
    EXPECT_TRUE(a.pairs.empty());
    EXPECT_EQ(a.roles[0], LockRole::None);
}

TEST(LockDetector, WindowLimitRejectsDistantRelease)
{
    TraceBuilder b;
    b.casa(0x100, 2);
    for (int i = 0; i < 20; ++i)
        b.alu();
    b.store(0x100, 3);
    Trace t = b.build();
    LockAnalysis near = LockDetector(64).analyze(t);
    EXPECT_EQ(near.pairs.size(), 1u);
    LockAnalysis tight = LockDetector(4).analyze(t);
    EXPECT_TRUE(tight.pairs.empty());
}

TEST(LockDetector, NestedDistinctLocks)
{
    Trace t = TraceBuilder()
        .casa(0x100)
        .casa(0x200)
        .store(0x200) // inner release
        .store(0x100) // outer release
        .build();
    LockAnalysis a = LockDetector().analyze(t);
    ASSERT_EQ(a.pairs.size(), 2u);
}

TEST(LockDetector, SupersededAcquire)
{
    Trace t = TraceBuilder()
        .casa(0x100) // stale, never released before re-acquire
        .casa(0x100)
        .store(0x100)
        .build();
    LockAnalysis a = LockDetector().analyze(t);
    ASSERT_EQ(a.pairs.size(), 1u);
    EXPECT_EQ(a.pairs[0].acquireIdx, 1u);
}

TEST(LockDetector, DetectsWcIdiom)
{
    Trace t = TraceBuilder()
        .loadLocked(0x100, 2)
        .storeCond(0x100, 2)
        .isync()
        .load(0x5000, 3)
        .lwsync()
        .store(0x100, 4)
        .build();
    LockAnalysis a = LockDetector().analyze(t);
    ASSERT_EQ(a.pairs.size(), 1u);
    EXPECT_EQ(a.roles[0], LockRole::Acquire);
    EXPECT_EQ(a.roles[1], LockRole::AcquireAux); // stwcx
    EXPECT_EQ(a.roles[2], LockRole::AcquireAux); // isync
    EXPECT_EQ(a.roles[4], LockRole::ReleaseAux); // lwsync
    EXPECT_EQ(a.roles[5], LockRole::Release);
}

TEST(LockDetector, LwarxWithoutStwcxIgnored)
{
    Trace t = TraceBuilder()
        .loadLocked(0x100, 2)
        .alu()
        .store(0x100, 4)
        .build();
    LockAnalysis a = LockDetector().analyze(t);
    EXPECT_TRUE(a.pairs.empty());
}

TEST(LockDetector, MatchesGeneratorGroundTruth)
{
    WorkloadProfile p = WorkloadProfile::specjbb();
    Trace t = SyntheticTraceGenerator(p, 7).generate(100000);
    LockAnalysis a = LockDetector().analyze(t);

    uint64_t truth_acquires = 0;
    for (uint64_t i = 0; i < t.size(); ++i) {
        if (t[i].lockAcquire()) {
            ++truth_acquires;
            EXPECT_TRUE(a.isAcquire(i))
                << "detector missed acquire at " << i;
        }
        if (t[i].lockRelease()) {
            EXPECT_TRUE(a.isRelease(i))
                << "detector missed release at " << i;
        }
    }
    EXPECT_EQ(a.pairs.size(), truth_acquires);
}

// ---- rewriter ----

TEST(Rewriter, ExpandsLockIdioms)
{
    Trace t = TraceBuilder()
        .alu(1)
        .casa(0x100, 2)
        .load(0x5000, 3)
        .store(0x100, 4) // release
        .alu(5)
        .build();
    Trace wc = TraceRewriter().toWeakConsistency(t);

    // 5 records -> casa becomes 3, release store becomes 2: total 8.
    ASSERT_EQ(wc.size(), 8u);
    EXPECT_EQ(wc[0].cls, InstClass::Alu);
    EXPECT_EQ(wc[1].cls, InstClass::LoadLocked);
    EXPECT_EQ(wc[2].cls, InstClass::StoreCond);
    EXPECT_EQ(wc[3].cls, InstClass::Isync);
    EXPECT_EQ(wc[4].cls, InstClass::Load);
    EXPECT_EQ(wc[5].cls, InstClass::Lwsync);
    EXPECT_EQ(wc[6].cls, InstClass::Store);
    EXPECT_EQ(wc[7].cls, InstClass::Alu);
}

TEST(Rewriter, PreservesAddressesAndRegisters)
{
    Trace t = TraceBuilder()
        .casa(0x140, 9)
        .store(0x140, 7)
        .build();
    Trace wc = TraceRewriter().toWeakConsistency(t);
    EXPECT_EQ(wc[0].addr, 0x140u);
    EXPECT_EQ(wc[0].dst, 9);
    EXPECT_EQ(wc[1].addr, 0x140u);
    EXPECT_EQ(wc[3].cls, InstClass::Lwsync);
    EXPECT_EQ(wc[4].src2, 7);
}

TEST(Rewriter, LeavesUnmatchedCasaAlone)
{
    Trace t = TraceBuilder()
        .casa(0x100, 2)
        .alu()
        .build();
    Trace wc = TraceRewriter().toWeakConsistency(t);
    ASSERT_EQ(wc.size(), 2u);
    EXPECT_EQ(wc[0].cls, InstClass::AtomicCas);
}

TEST(Rewriter, LeavesMembarsAlone)
{
    Trace t = TraceBuilder().membar().alu().build();
    Trace wc = TraceRewriter().toWeakConsistency(t);
    ASSERT_EQ(wc.size(), 2u);
    EXPECT_EQ(wc[0].cls, InstClass::Membar);
}

TEST(Rewriter, RewrittenTraceDetectableAsWcLocks)
{
    WorkloadProfile p = WorkloadProfile::tpcw();
    Trace t = SyntheticTraceGenerator(p, 11).generate(50000);
    LockAnalysis pc = LockDetector().analyze(t);
    Trace wc = TraceRewriter().toWeakConsistency(t, pc);
    LockAnalysis wca = LockDetector().analyze(wc);
    // Every PC lock pair survives as a WC lock pair.
    EXPECT_EQ(wca.pairs.size(), pc.pairs.size());
}

TEST(Rewriter, NonLockRecordsUnchanged)
{
    WorkloadProfile p = WorkloadProfile::testTiny();
    p.lockProb = 0.0;
    p.membarProb = 0.0;
    Trace t = SyntheticTraceGenerator(p, 13).generate(10000);
    Trace wc = TraceRewriter().toWeakConsistency(t);
    ASSERT_EQ(wc.size(), t.size());
    for (size_t i = 0; i < t.size(); ++i) {
        EXPECT_EQ(wc[i].cls, t[i].cls);
        EXPECT_EQ(wc[i].addr, t[i].addr);
    }
}

} // namespace
} // namespace storemlp
