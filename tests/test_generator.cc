/**
 * @file
 * Unit tests for the synthetic trace generator: determinism, mix
 * calibration, address-space discipline, lock idioms.
 */

#include <gtest/gtest.h>

#include <unordered_set>

#include "trace/generator.hh"

namespace storemlp
{
namespace
{

constexpr uint64_t kN = 200000;

TEST(Generator, DeterministicForSameSeed)
{
    WorkloadProfile p = WorkloadProfile::testTiny();
    Trace a = SyntheticTraceGenerator(p, 7).generate(10000);
    Trace b = SyntheticTraceGenerator(p, 7).generate(10000);
    ASSERT_EQ(a.size(), b.size());
    for (size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].pc, b[i].pc);
        EXPECT_EQ(a[i].addr, b[i].addr);
        EXPECT_EQ(a[i].cls, b[i].cls);
    }
}

TEST(Generator, DifferentSeedsDiffer)
{
    WorkloadProfile p = WorkloadProfile::testTiny();
    Trace a = SyntheticTraceGenerator(p, 1).generate(1000);
    Trace b = SyntheticTraceGenerator(p, 2).generate(1000);
    size_t same = 0;
    for (size_t i = 0; i < a.size(); ++i) {
        if (a[i].cls == b[i].cls && a[i].addr == b[i].addr)
            ++same;
    }
    EXPECT_LT(same, a.size());
}

TEST(Generator, GeneratesRequestedCount)
{
    WorkloadProfile p = WorkloadProfile::testTiny();
    Trace t = SyntheticTraceGenerator(p, 3).generate(12345);
    // Critical sections are emitted atomically, so the count may
    // overshoot by at most one critical section.
    EXPECT_GE(t.size(), 12345u);
    EXPECT_LE(t.size(), 12345u + 3 * p.csBodyLen + 2);
}

TEST(Generator, StreamingMatchesOneShot)
{
    WorkloadProfile p = WorkloadProfile::testTiny();
    SyntheticTraceGenerator g1(p, 5), g2(p, 5);
    Trace whole = g1.generate(5000);
    Trace piecewise;
    g2.generateInto(piecewise, 2500);
    g2.generateInto(piecewise, whole.size() - piecewise.size());
    ASSERT_EQ(piecewise.size(), whole.size());
    for (size_t i = 0; i < whole.size(); ++i)
        EXPECT_EQ(piecewise[i].addr, whole[i].addr);
}

TEST(Generator, MixMatchesProfileFractions)
{
    WorkloadProfile p = WorkloadProfile::database();
    Trace t = SyntheticTraceGenerator(p, 11).generate(kN);
    Trace::Mix m = t.mix();
    double n = static_cast<double>(m.total);
    // Stores include critical-section stores; allow headroom.
    EXPECT_NEAR(m.stores / n, p.storeFrac, 0.02);
    EXPECT_NEAR(m.loads / n, p.loadFrac, 0.02);
    EXPECT_NEAR(m.branches / n, p.branchFrac, 0.02);
}

TEST(Generator, LockSequencesWellFormed)
{
    WorkloadProfile p = WorkloadProfile::specjbb(); // high lock rate
    Trace t = SyntheticTraceGenerator(p, 13).generate(kN);
    uint64_t acquires = 0, releases = 0;
    int64_t open = 0;
    for (size_t i = 0; i < t.size(); ++i) {
        if (t[i].lockAcquire()) {
            EXPECT_EQ(t[i].cls, InstClass::AtomicCas);
            ++acquires;
            ++open;
            EXPECT_LE(open, 1) << "nested critical section at " << i;
        }
        if (t[i].lockRelease()) {
            EXPECT_EQ(t[i].cls, InstClass::Store);
            ++releases;
            --open;
            EXPECT_GE(open, 0);
        }
    }
    EXPECT_EQ(acquires, releases);
    EXPECT_GT(acquires, kN * p.lockProb / 2);
}

TEST(Generator, AcquireReleaseAddressesMatch)
{
    WorkloadProfile p = WorkloadProfile::specweb();
    Trace t = SyntheticTraceGenerator(p, 17).generate(50000);
    uint64_t open_addr = 0;
    bool open = false;
    for (size_t i = 0; i < t.size(); ++i) {
        if (t[i].lockAcquire()) {
            open_addr = t[i].addr;
            open = true;
        } else if (t[i].lockRelease()) {
            ASSERT_TRUE(open);
            EXPECT_EQ(t[i].addr, open_addr);
            open = false;
        }
    }
}

TEST(Generator, LockAddressesInLockRegion)
{
    WorkloadProfile p = WorkloadProfile::tpcw();
    Trace t = SyntheticTraceGenerator(p, 19).generate(50000);
    for (size_t i = 0; i < t.size(); ++i) {
        if (t[i].lockAcquire()) {
            EXPECT_GE(t[i].addr, AddressMap::kLockBase);
            EXPECT_LT(t[i].addr,
                      AddressMap::kLockBase +
                          p.lockCount * 64ull);
        }
    }
}

TEST(Generator, ColdLoadsAreFreshLines)
{
    WorkloadProfile p = WorkloadProfile::database();
    Trace t = SyntheticTraceGenerator(p, 23).generate(kN);
    std::unordered_set<uint64_t> cold_lines;
    for (size_t i = 0; i < t.size(); ++i) {
        const TraceRecord &r = t[i];
        if (r.cls == InstClass::Load &&
            r.addr >= AddressMap::kColdLoadBase) {
            uint64_t line = r.addr & ~63ull;
            EXPECT_TRUE(cold_lines.insert(line).second)
                << "cold load line revisited";
        }
    }
    EXPECT_GT(cold_lines.size(), 100u);
}

TEST(Generator, StoreMissAddressesInRegions)
{
    WorkloadProfile p = WorkloadProfile::database();
    Trace t = SyntheticTraceGenerator(p, 29).generate(kN);
    uint64_t priv = 0, shared = 0;
    for (size_t i = 0; i < t.size(); ++i) {
        const TraceRecord &r = t[i];
        if (!isStoreClass(r.cls))
            continue;
        if (r.addr >= AddressMap::kPrivateStoreBase &&
            r.addr < AddressMap::kPrivateStoreBase +
                         p.storeMissRegionBytes) {
            ++priv;
        } else if (r.addr >= AddressMap::kSharedStoreBase &&
                   r.addr < AddressMap::kSharedStoreBase +
                                p.sharedStoreRegionBytes) {
            ++shared;
        }
    }
    EXPECT_GT(priv, 0u);
    EXPECT_GT(shared, 0u);
    // Shared fraction should be roughly profile.sharedStoreFrac.
    double frac = static_cast<double>(shared) /
        static_cast<double>(priv + shared);
    EXPECT_NEAR(frac, p.sharedStoreFrac, 0.08);
}

TEST(Generator, DistinctChipsUseDistinctPrivateRegions)
{
    WorkloadProfile p = WorkloadProfile::testTiny();
    Trace t0 = SyntheticTraceGenerator(p, 31, 0).generate(20000);
    Trace t1 = SyntheticTraceGenerator(p, 31, 1).generate(20000);

    auto priv_base = [](uint32_t chip) {
        return AddressMap::kPrivateStoreBase +
            chip * AddressMap::kPrivateStoreStride;
    };
    for (size_t i = 0; i < t1.size(); ++i) {
        const TraceRecord &r = t1[i];
        if (!isStoreClass(r.cls))
            continue;
        bool in_chip0_private = r.addr >= priv_base(0) &&
            r.addr < priv_base(0) + p.storeMissRegionBytes;
        EXPECT_FALSE(in_chip0_private)
            << "chip 1 store in chip 0's private region";
    }
    (void)t0;
}

TEST(Generator, BranchesCarryOutcomes)
{
    WorkloadProfile p = WorkloadProfile::database();
    Trace t = SyntheticTraceGenerator(p, 37).generate(50000);
    uint64_t taken = 0, total = 0;
    for (size_t i = 0; i < t.size(); ++i) {
        if (t[i].cls == InstClass::Branch) {
            ++total;
            taken += t[i].taken() ? 1 : 0;
        }
    }
    ASSERT_GT(total, 1000u);
    double frac = static_cast<double>(taken) / static_cast<double>(total);
    EXPECT_GT(frac, 0.3);
    EXPECT_LT(frac, 0.7);
}

TEST(Generator, RegistersWithinRange)
{
    WorkloadProfile p = WorkloadProfile::testTiny();
    Trace t = SyntheticTraceGenerator(p, 41).generate(20000);
    for (size_t i = 0; i < t.size(); ++i) {
        EXPECT_LT(t[i].dst, 64);
        EXPECT_LT(t[i].src1, 64);
        EXPECT_LT(t[i].src2, 64);
    }
}

TEST(Generator, HotCodeStaysInRegion)
{
    WorkloadProfile p = WorkloadProfile::testTiny();
    p.instColdProb = 0.0;
    Trace t = SyntheticTraceGenerator(p, 43).generate(20000);
    for (size_t i = 0; i < t.size(); ++i) {
        EXPECT_GE(t[i].pc, AddressMap::kHotCodeBase);
        EXPECT_LT(t[i].pc, AddressMap::kHotCodeBase + p.hotCodeBytes);
    }
}

TEST(Generator, ColdCodeExcursionsVisitFreshLines)
{
    WorkloadProfile p = WorkloadProfile::testTiny();
    p.instColdProb = 0.01;
    Trace t = SyntheticTraceGenerator(p, 47).generate(50000);
    std::unordered_set<uint64_t> cold_pcs;
    uint64_t cold = 0;
    for (size_t i = 0; i < t.size(); ++i) {
        // Branches snap to shared per-32B sites; skip them here.
        if (t[i].cls == InstClass::Branch)
            continue;
        if (t[i].pc >= AddressMap::kColdCodeBase) {
            ++cold;
            cold_pcs.insert(t[i].pc);
        }
    }
    EXPECT_GT(cold, 100u);
    // Each non-branch excursion pc is unique (monotone cold cursor).
    EXPECT_EQ(cold_pcs.size(), cold);
}

TEST(Generator, AllCommercialProfilesNamed)
{
    auto all = WorkloadProfile::allCommercial();
    ASSERT_EQ(all.size(), 4u);
    EXPECT_EQ(all[0].name, "Database");
    EXPECT_EQ(all[1].name, "TPC-W");
    EXPECT_EQ(all[2].name, "SPECjbb");
    EXPECT_EQ(all[3].name, "SPECweb");
}

} // namespace
} // namespace storemlp
