/**
 * @file
 * Unit tests for SimResult derived metrics and merging.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "core/sim_result.hh"

namespace storemlp
{
namespace
{

TEST(SimResult, EmptyResultMetricsAreZero)
{
    SimResult r;
    EXPECT_DOUBLE_EQ(r.epi(), 0.0);
    EXPECT_DOUBLE_EQ(r.mlp(), 0.0);
    EXPECT_DOUBLE_EQ(r.storeMlp(), 0.0);
    EXPECT_DOUBLE_EQ(r.overlappedStoreFraction(), 0.0);
    EXPECT_DOUBLE_EQ(r.termFraction(TermCond::WindowFull), 0.0);
    EXPECT_DOUBLE_EQ(r.missLoadsPer100(), 0.0);
}

TEST(SimResult, DerivedMetrics)
{
    SimResult r;
    r.instructions = 10000;
    r.epochs = 20;
    r.epochMisses = 50;
    r.missLoads = 30;
    r.missStores = 15;
    r.missInsts = 5;
    r.overlappedStores = 3;
    r.termCounts[static_cast<unsigned>(TermCond::WindowFull)] = 12;
    r.termCounts[static_cast<unsigned>(TermCond::StoreSerialize)] = 8;

    EXPECT_DOUBLE_EQ(r.epi(), 0.002);
    EXPECT_DOUBLE_EQ(r.epochsPer1000(), 2.0);
    EXPECT_DOUBLE_EQ(r.mlp(), 2.5);
    EXPECT_DOUBLE_EQ(r.offChipCpi(500), 1.0);
    EXPECT_DOUBLE_EQ(r.overlappedStoreFraction(), 0.2);
    EXPECT_DOUBLE_EQ(r.termFraction(TermCond::WindowFull), 0.6);
    EXPECT_DOUBLE_EQ(r.termFraction(TermCond::StoreSerialize), 0.4);
    EXPECT_DOUBLE_EQ(r.missLoadsPer100(), 0.3);
    EXPECT_DOUBLE_EQ(r.missStoresPer100(), 0.15);
    EXPECT_DOUBLE_EQ(r.missInstsPer100(), 0.05);
}

TEST(SimResult, StoreEpochFractions)
{
    SimResult r;
    r.epochs = 10;
    r.storeMlpHist.sample(1);
    r.storeMlpHist.sample(2);
    r.termCountsStoreEpochs[static_cast<unsigned>(
        TermCond::StoreSerialize)] = 2;
    EXPECT_DOUBLE_EQ(r.storeEpochFraction(), 0.2);
    EXPECT_DOUBLE_EQ(
        r.termFractionStoreEpochs(TermCond::StoreSerialize), 0.2);
}

TEST(SimResult, MergeAddsEverything)
{
    SimResult a;
    a.instructions = 100;
    a.epochs = 2;
    a.missLoads = 3;
    a.epochMissLoads = 2;
    a.epochMissStores = 1;
    a.tmAborts = 1;
    a.mlpHist.sample(2);
    a.storeVsOtherMlp.sample(1, 1);
    a.termCounts[0] = 2;

    SimResult b;
    b.instructions = 200;
    b.epochs = 3;
    b.missLoads = 4;
    b.epochMissLoads = 3;
    b.epochMissInsts = 2;
    b.tmAborts = 2;
    b.mlpHist.sample(3);
    b.storeVsOtherMlp.sample(2, 0);
    b.termCounts[0] = 3;

    a.merge(b);
    EXPECT_EQ(a.instructions, 300u);
    EXPECT_EQ(a.epochs, 5u);
    EXPECT_EQ(a.missLoads, 7u);
    EXPECT_EQ(a.mlpHist.total(), 2u);
    EXPECT_EQ(a.mlpHist.bucket(3), 1u);
    EXPECT_EQ(a.storeVsOtherMlp.cell(2, 0), 1u);
    EXPECT_EQ(a.termCounts[0], 5u);
    EXPECT_EQ(a.epochMissLoads, 5u);
    EXPECT_EQ(a.epochMissStores, 1u);
    EXPECT_EQ(a.epochMissInsts, 2u);
    EXPECT_EQ(a.tmAborts, 3u);
}

TEST(SimResult, PrintMentionsKeyMetrics)
{
    SimResult r;
    r.instructions = 1000;
    r.epochs = 4;
    r.epochMisses = 6;
    r.termCounts[static_cast<unsigned>(TermCond::WindowFull)] = 4;
    std::ostringstream oss;
    r.print(oss);
    std::string s = oss.str();
    EXPECT_NE(s.find("epochs/1000"), std::string::npos);
    EXPECT_NE(s.find("WindowFull"), std::string::npos);
}

TEST(TermCond, AllConditionsNamed)
{
    for (unsigned i = 0; i < kNumTermConds; ++i) {
        const char *name = termCondName(static_cast<TermCond>(i));
        EXPECT_STRNE(name, "?");
    }
    EXPECT_STREQ(termCondName(TermCond::None), "None");
    EXPECT_STREQ(missKindName(MissKind::Store), "store");
}

} // namespace
} // namespace storemlp
