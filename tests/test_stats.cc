/**
 * @file
 * Unit tests for the stats module: counters, histograms, tables.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "stats/counter.hh"
#include "stats/histogram.hh"
#include "stats/table.hh"

namespace storemlp
{
namespace
{

TEST(Counter, StartsAtZero)
{
    Counter c("x");
    EXPECT_EQ(c.value(), 0u);
    EXPECT_EQ(c.name(), "x");
}

TEST(Counter, IncrementAndAdd)
{
    Counter c;
    ++c;
    c++;
    c.add(3);
    EXPECT_EQ(c.value(), 5u);
}

TEST(Counter, Reset)
{
    Counter c;
    c.add(10);
    c.reset();
    EXPECT_EQ(c.value(), 0u);
}

TEST(Counter, RatePerThousand)
{
    Counter c;
    c.add(5);
    EXPECT_DOUBLE_EQ(c.rate(1000), 5.0);
    EXPECT_DOUBLE_EQ(c.rate(500), 10.0);
}

TEST(Counter, RateZeroDenominator)
{
    Counter c;
    c.add(5);
    EXPECT_DOUBLE_EQ(c.rate(0), 0.0);
}

TEST(Counter, RatePer100)
{
    Counter c;
    c.add(36);
    EXPECT_NEAR(c.rate(10000, 100.0), 0.36, 1e-12);
}

TEST(RunningMean, Empty)
{
    RunningMean m;
    EXPECT_DOUBLE_EQ(m.mean(), 0.0);
    EXPECT_EQ(m.count(), 0u);
}

TEST(RunningMean, Mean)
{
    RunningMean m;
    m.sample(1.0);
    m.sample(2.0);
    m.sample(3.0);
    EXPECT_DOUBLE_EQ(m.mean(), 2.0);
    EXPECT_EQ(m.count(), 3u);
    EXPECT_DOUBLE_EQ(m.sum(), 6.0);
}

TEST(RunningMean, Reset)
{
    RunningMean m;
    m.sample(5.0);
    m.reset();
    EXPECT_EQ(m.count(), 0u);
    EXPECT_DOUBLE_EQ(m.mean(), 0.0);
}

TEST(BoundedHistogram, BasicSampling)
{
    BoundedHistogram h(5);
    h.sample(0);
    h.sample(3);
    h.sample(3);
    EXPECT_EQ(h.bucket(0), 1u);
    EXPECT_EQ(h.bucket(3), 2u);
    EXPECT_EQ(h.total(), 3u);
}

TEST(BoundedHistogram, ClampsToMaxBucket)
{
    BoundedHistogram h(5);
    h.sample(7);
    h.sample(100);
    EXPECT_EQ(h.bucket(5), 2u);
    // The raw sum keeps the unclamped values.
    EXPECT_DOUBLE_EQ(h.sum(), 107.0);
}

TEST(BoundedHistogram, MeanUsesUnclampedValues)
{
    BoundedHistogram h(2);
    h.sample(1);
    h.sample(9);
    EXPECT_DOUBLE_EQ(h.mean(), 5.0);
}

TEST(BoundedHistogram, Weighted)
{
    BoundedHistogram h(4);
    h.sample(2, 10);
    EXPECT_EQ(h.bucket(2), 10u);
    EXPECT_EQ(h.total(), 10u);
    EXPECT_DOUBLE_EQ(h.mean(), 2.0);
}

TEST(BoundedHistogram, Fraction)
{
    BoundedHistogram h(4);
    h.sample(1);
    h.sample(1);
    h.sample(2);
    EXPECT_NEAR(h.fraction(1), 2.0 / 3.0, 1e-12);
    EXPECT_NEAR(h.fraction(2), 1.0 / 3.0, 1e-12);
}

TEST(BoundedHistogram, EmptyFractionIsZero)
{
    BoundedHistogram h(4);
    EXPECT_DOUBLE_EQ(h.fraction(0), 0.0);
    EXPECT_DOUBLE_EQ(h.mean(), 0.0);
}

TEST(BoundedHistogram, Reset)
{
    BoundedHistogram h(4);
    h.sample(2);
    h.reset();
    EXPECT_EQ(h.total(), 0u);
    EXPECT_EQ(h.bucket(2), 0u);
}

TEST(JointHistogram, BasicCells)
{
    JointHistogram j(5, 3);
    j.sample(1, 2);
    j.sample(1, 2);
    j.sample(0, 0);
    EXPECT_EQ(j.cell(1, 2), 2u);
    EXPECT_EQ(j.cell(0, 0), 1u);
    EXPECT_EQ(j.total(), 3u);
}

TEST(JointHistogram, ClampsBothAxes)
{
    JointHistogram j(2, 2);
    j.sample(10, 10);
    EXPECT_EQ(j.cell(2, 2), 1u);
}

TEST(JointHistogram, MarginalX)
{
    JointHistogram j(3, 2);
    j.sample(1, 0);
    j.sample(1, 1);
    j.sample(1, 2);
    j.sample(2, 0);
    EXPECT_EQ(j.marginalX(1), 3u);
    EXPECT_EQ(j.marginalX(2), 1u);
    EXPECT_EQ(j.marginalX(0), 0u);
}

TEST(JointHistogram, Fraction)
{
    JointHistogram j(3, 2);
    j.sample(1, 1);
    j.sample(2, 0);
    EXPECT_NEAR(j.fraction(1, 1), 0.5, 1e-12);
}

TEST(JointHistogram, WeightedAndReset)
{
    JointHistogram j(3, 2);
    j.sample(1, 1, 7);
    EXPECT_EQ(j.total(), 7u);
    j.reset();
    EXPECT_EQ(j.total(), 0u);
    EXPECT_EQ(j.cell(1, 1), 0u);
}

TEST(TextTable, RowsAndCells)
{
    TextTable t("demo");
    t.header({"a", "b"});
    t.beginRow();
    t.cell(std::string("x"));
    t.cell(uint64_t(42));
    EXPECT_EQ(t.rows(), 1u);
    EXPECT_EQ(t.columns(), 2u);
    EXPECT_EQ(t.at(0, 0), "x");
    EXPECT_EQ(t.at(0, 1), "42");
}

TEST(TextTable, NumericPrecision)
{
    TextTable t("demo");
    t.header({"v"});
    t.beginRow();
    t.cell(3.14159, 2);
    EXPECT_EQ(t.at(0, 0), "3.14");
}

TEST(TextTable, PrintContainsTitleAndHeader)
{
    TextTable t("My Title");
    t.header({"col1", "col2"});
    t.beginRow();
    t.cell(std::string("v1"));
    t.cell(std::string("v2"));
    std::ostringstream oss;
    t.print(oss);
    std::string s = oss.str();
    EXPECT_NE(s.find("My Title"), std::string::npos);
    EXPECT_NE(s.find("col1"), std::string::npos);
    EXPECT_NE(s.find("v2"), std::string::npos);
}

TEST(TextTable, CsvOutput)
{
    TextTable t("demo");
    t.header({"a", "b"});
    t.beginRow();
    t.cell(std::string("1"));
    t.cell(std::string("2"));
    std::ostringstream oss;
    t.printCsv(oss);
    EXPECT_EQ(oss.str(), "a,b\n1,2\n");
}

TEST(FormatFixed, Rounds)
{
    EXPECT_EQ(formatFixed(1.005, 1), "1.0");
    EXPECT_EQ(formatFixed(2.25, 1), "2.2");
    EXPECT_EQ(formatFixed(-1.5, 0), "-2");
}

} // namespace
} // namespace storemlp
