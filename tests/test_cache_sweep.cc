/**
 * @file
 * Property tests for the cache substrate: the SetAssocCache is fuzzed
 * against a straightforward reference LRU model across a grid of
 * geometries, and structural invariants are checked along the way.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <list>
#include <map>
#include <tuple>
#include <unordered_map>

#include "cache/set_assoc_cache.hh"
#include "trace/rng.hh"

namespace storemlp
{
namespace
{

/**
 * Reference model: per-set list of line addresses in LRU order plus a
 * dirty map. Deliberately simple and obviously correct.
 */
class RefCache
{
  public:
    RefCache(uint64_t size_bytes, uint32_t assoc, uint32_t line_bytes)
        : _assoc(assoc), _lineBytes(line_bytes),
          _numSets(size_bytes / (assoc * line_bytes))
    {
    }

    struct Result
    {
        bool hit = false;
        bool victimValid = false;
        uint64_t victimLine = 0;
        bool victimDirty = false;
    };

    Result
    access(uint64_t addr, bool is_write, bool allocate)
    {
        Result r;
        uint64_t line = addr & ~static_cast<uint64_t>(_lineBytes - 1);
        uint64_t set = (line / _lineBytes) % _numSets;
        auto &lru = _sets[set];
        auto it = std::find(lru.begin(), lru.end(), line);
        if (it != lru.end()) {
            r.hit = true;
            lru.erase(it);
            lru.push_back(line);
            if (is_write)
                _dirty[line] = true;
            return r;
        }
        if (!allocate)
            return r;
        if (lru.size() >= _assoc) {
            uint64_t victim = lru.front();
            lru.pop_front();
            r.victimValid = true;
            r.victimLine = victim;
            r.victimDirty = _dirty.count(victim) && _dirty[victim];
            _dirty.erase(victim);
        }
        lru.push_back(line);
        _dirty[line] = is_write;
        return r;
    }

    bool
    probe(uint64_t addr) const
    {
        uint64_t line = addr & ~static_cast<uint64_t>(_lineBytes - 1);
        uint64_t set = (line / _lineBytes) % _numSets;
        auto it = _sets.find(set);
        if (it == _sets.end())
            return false;
        return std::find(it->second.begin(), it->second.end(), line) !=
            it->second.end();
    }

    void
    invalidate(uint64_t addr)
    {
        uint64_t line = addr & ~static_cast<uint64_t>(_lineBytes - 1);
        uint64_t set = (line / _lineBytes) % _numSets;
        auto &lru = _sets[set];
        auto it = std::find(lru.begin(), lru.end(), line);
        if (it != lru.end())
            lru.erase(it);
        _dirty.erase(line);
    }

  private:
    uint32_t _assoc;
    uint32_t _lineBytes;
    uint64_t _numSets;
    std::map<uint64_t, std::list<uint64_t>> _sets;
    std::unordered_map<uint64_t, bool> _dirty;
};

/** (sizeBytes, assoc, lineBytes) geometry grid. */
class CacheFuzzTest
    : public testing::TestWithParam<
          std::tuple<uint64_t, uint32_t, uint32_t>>
{
};

TEST_P(CacheFuzzTest, MatchesReferenceLru)
{
    auto [size, assoc, line] = GetParam();
    SetAssocCache cache({size, assoc, line});
    RefCache ref(size, assoc, line);
    Pcg32 rng(1234 + size + assoc + line);

    // Footprint ~4x the cache so evictions are common.
    uint64_t span = 4 * size;
    for (int i = 0; i < 20000; ++i) {
        uint64_t addr = rng.below64(span);
        uint32_t op = rng.below(10);
        if (op < 6) {
            bool write = rng.chance(0.3);
            bool alloc = rng.chance(0.9);
            AccessResult got = cache.access(addr, write, alloc);
            RefCache::Result want = ref.access(addr, write, alloc);
            ASSERT_EQ(got.hit, want.hit) << "iter " << i;
            ASSERT_EQ(got.victimValid, want.victimValid) << "iter " << i;
            if (got.victimValid) {
                ASSERT_EQ(got.victimLineAddr, want.victimLine)
                    << "iter " << i;
                ASSERT_EQ(got.victimDirty, want.victimDirty)
                    << "iter " << i;
            }
        } else if (op < 8) {
            ASSERT_EQ(cache.probe(addr), ref.probe(addr)) << "iter "
                                                          << i;
        } else {
            auto inv = cache.invalidate(addr);
            bool present = ref.probe(addr);
            ASSERT_EQ(inv.wasPresent, present) << "iter " << i;
            ref.invalidate(addr);
        }
    }
}

TEST_P(CacheFuzzTest, ResidencyNeverExceedsCapacity)
{
    auto [size, assoc, line] = GetParam();
    SetAssocCache cache({size, assoc, line});
    Pcg32 rng(99);
    for (int i = 0; i < 5000; ++i)
        cache.access(rng.below64(16 * size), rng.chance(0.5), true);
    EXPECT_LE(cache.residentLines(), size / line);
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, CacheFuzzTest,
    testing::Values(std::make_tuple(uint64_t(1024), 1u, 64u),
                    std::make_tuple(uint64_t(2048), 2u, 64u),
                    std::make_tuple(uint64_t(4096), 4u, 64u),
                    std::make_tuple(uint64_t(8192), 8u, 32u),
                    std::make_tuple(uint64_t(32768), 4u, 128u),
                    std::make_tuple(uint64_t(16384), 16u, 64u)));

} // namespace
} // namespace storemlp
