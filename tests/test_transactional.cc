/**
 * @file
 * Unit and engine tests for transactional-memory execution of
 * critical sections (the paper's SLE alternative, Section 3.3.4).
 */

#include <gtest/gtest.h>

#include "core/runner.hh"
#include "sim_test_util.hh"
#include "consistency/transactional.hh"

namespace storemlp
{
namespace
{

using namespace storemlp::test;

Trace
lockTrace()
{
    uint64_t lock = warmAddr(0);
    TraceBuilder b;
    b.store(missAddr(0), 2);
    b.casa(lock, 3).withFlags(kFlagLockAcquire);
    b.alu();
    b.store(lock, 4).withFlags(kFlagLockRelease);
    fillers(b, 600);
    return b.build();
}

TEST(TransactionalMemory, DisabledClassifiesNormal)
{
    Trace t = lockTrace();
    LockAnalysis a = LockDetector().analyze(t);
    TmConfig cfg; // enabled = false
    TransactionalMemory tm(&a, cfg);
    EXPECT_FALSE(tm.enabled());
    EXPECT_EQ(tm.classify(1), TransactionalMemory::Action::Normal);
    EXPECT_FALSE(tm.peekElided(1));
}

TEST(TransactionalMemory, CommittingSectionElides)
{
    Trace t = lockTrace();
    LockAnalysis a = LockDetector().analyze(t);
    TmConfig cfg;
    cfg.enabled = true;
    cfg.abortProb = 0.0; // every section commits
    TransactionalMemory tm(&a, cfg);
    EXPECT_EQ(tm.sections(), 1u);
    EXPECT_EQ(tm.abortedSections(), 0u);
    EXPECT_EQ(tm.classify(1),
              TransactionalMemory::Action::AcquireAsLoad);
    EXPECT_EQ(tm.classify(3), TransactionalMemory::Action::Nop);
    EXPECT_FALSE(tm.abortsAt(1));
}

TEST(TransactionalMemory, AbortingSectionFallsBackToLock)
{
    Trace t = lockTrace();
    LockAnalysis a = LockDetector().analyze(t);
    TmConfig cfg;
    cfg.enabled = true;
    cfg.abortProb = 1.0; // every section aborts
    TransactionalMemory tm(&a, cfg);
    EXPECT_EQ(tm.abortedSections(), 1u);
    EXPECT_EQ(tm.classify(1), TransactionalMemory::Action::Normal);
    EXPECT_EQ(tm.classify(3), TransactionalMemory::Action::Normal);
    EXPECT_TRUE(tm.abortsAt(1));
    EXPECT_FALSE(tm.abortsAt(3)); // only the acquire charges penalty
}

TEST(TransactionalMemory, AbortDecisionDeterministic)
{
    Trace t = lockTrace();
    LockAnalysis a = LockDetector().analyze(t);
    TmConfig cfg;
    cfg.enabled = true;
    cfg.abortProb = 0.5;
    TransactionalMemory tm1(&a, cfg);
    TransactionalMemory tm2(&a, cfg);
    EXPECT_EQ(tm1.abortsAt(1), tm2.abortsAt(1));
    cfg.seed = 999;
    // Different seeds may flip decisions, but stay internally stable.
    TransactionalMemory tm3(&a, cfg);
    EXPECT_EQ(tm3.abortsAt(1), tm3.abortsAt(1));
}

TEST(TransactionalMemory, ElidesWcIdiom)
{
    uint64_t lock = warmAddr(0);
    TraceBuilder b;
    b.loadLocked(lock, 2);
    b.storeCond(lock, 2);
    b.isync();
    b.alu();
    b.lwsync();
    b.store(lock, 3);
    Trace t = b.build();
    LockAnalysis a = LockDetector().analyze(t);
    TmConfig cfg;
    cfg.enabled = true;
    cfg.abortProb = 0.0;
    TransactionalMemory tm(&a, cfg);
    EXPECT_EQ(tm.classify(0),
              TransactionalMemory::Action::AcquireAsLoad);
    EXPECT_EQ(tm.classify(1), TransactionalMemory::Action::Nop);
    EXPECT_EQ(tm.classify(2), TransactionalMemory::Action::Nop);
    EXPECT_EQ(tm.classify(4), TransactionalMemory::Action::Nop);
    EXPECT_EQ(tm.classify(5), TransactionalMemory::Action::Nop);
}

// ---- engine integration ----

TEST(TmEngine, AllCommitMatchesSle)
{
    SimConfig tm_cfg = SimConfig::defaults();
    tm_cfg.tm.enabled = true;
    tm_cfg.tm.abortProb = 0.0;
    SimRig rig1;
    SimResult tm_res = rig1.run(lockTrace(), tm_cfg);

    SimConfig sle_cfg = SimConfig::defaults();
    sle_cfg.sle = true;
    SimRig rig2;
    SimResult sle_res = rig2.run(lockTrace(), sle_cfg);

    // With no aborts, TM is exactly SLE (the paper's equivalence).
    EXPECT_EQ(tm_res.epochs, sle_res.epochs);
    EXPECT_EQ(tm_res.epochMisses, sle_res.epochMisses);
}

TEST(TmEngine, AllAbortMatchesBaseline)
{
    SimConfig tm_cfg = SimConfig::defaults();
    tm_cfg.tm.enabled = true;
    tm_cfg.tm.abortProb = 1.0;
    SimRig rig1;
    SimResult tm_res = rig1.run(lockTrace(), tm_cfg);

    SimRig rig2;
    SimResult base = rig2.run(lockTrace(), SimConfig::defaults());

    // Aborted sections take the locked path: same epoch structure,
    // plus the abort accounting.
    EXPECT_EQ(tm_res.epochs, base.epochs);
    EXPECT_EQ(tm_res.tmAborts, 1u);
}

TEST(TmEngine, SleAndTmMutuallyExclusive)
{
    SimConfig cfg = SimConfig::defaults();
    cfg.sle = true;
    cfg.tm.enabled = true;
    ChipNode chip(HierarchyConfig{}, 0);
    LockAnalysis locks;
    EXPECT_THROW(MlpSimulator(cfg, chip, &locks),
                 std::invalid_argument);
}

TEST(TmEngine, WorkloadLevelBetweenBaselineAndSle)
{
    // With a moderate abort rate, TM lands between the lock baseline
    // and perfect SLE on a lock-heavy workload.
    auto run_cfg = [](SimConfig cfg) {
        RunSpec spec;
        spec.profile = WorkloadProfile::specjbb();
        spec.config = cfg;
        spec.warmupInsts = 200 * 1000;
        spec.measureInsts = 300 * 1000;
        return test::runMaterialized(spec).sim;
    };
    SimConfig base = SimConfig::defaults();
    SimConfig sle = base;
    sle.sle = true;
    SimConfig tm = base;
    tm.tm.enabled = true;
    tm.tm.abortProb = 0.3;

    SimResult r_base = run_cfg(base);
    SimResult r_sle = run_cfg(sle);
    SimResult r_tm = run_cfg(tm);

    EXPECT_LE(r_sle.epochs, r_tm.epochs);
    EXPECT_LE(r_tm.epochs, r_base.epochs);
    EXPECT_GT(r_tm.tmAborts, 0u);
}

} // namespace
} // namespace storemlp
