/**
 * @file
 * Networked sweep service tests: wire-framing torture (truncated
 * frames, oversized and zero length prefixes), handshake version
 * gating, server fault containment (garbage frames, clients that
 * vanish mid-batch), client shard-retry recovery against an injected
 * server-side connection drop, request serialization round-trips, and
 * the end-to-end loopback proof that per-run stats streamed by the
 * daemon are bit-identical to a local engine executing the same
 * request — the property that makes remote sweeps trustworthy.
 */

#include <gtest/gtest.h>

#include <filesystem>
#include <algorithm>
#include <string>
#include <vector>

#ifndef _WIN32
#include <sys/socket.h>
#include <unistd.h>
#endif

#include "core/config_io.hh"
#include "core/sweep.hh"
#include "core/sweep_request.hh"
#include "net/frame.hh"
#include "net/socket.hh"
#include "net/sweep_client.hh"
#include "net/sweep_server.hh"
#include "stats/stats_json.hh"

using namespace storemlp;
using namespace storemlp::net;

namespace
{

#ifndef STOREMLP_CONFIG_DIR
#define STOREMLP_CONFIG_DIR "configs"
#endif

/** Load the shipped configs (sorted by stem), optionally capped. */
std::vector<SweepConfigEntry>
shippedConfigs(size_t limit = 0)
{
    std::vector<std::filesystem::path> files;
    for (const auto &entry :
         std::filesystem::directory_iterator(STOREMLP_CONFIG_DIR)) {
        if (entry.path().extension() == ".cfg")
            files.push_back(entry.path());
    }
    std::sort(files.begin(), files.end());
    if (limit && files.size() > limit)
        files.resize(limit);
    std::vector<SweepConfigEntry> out;
    for (const auto &f : files) {
        SweepConfigEntry e;
        e.name = f.stem().string();
        e.config = loadSimConfigFile(f.string());
        out.push_back(std::move(e));
    }
    return out;
}

/** A fast request over the test workload. */
SweepRequest
tinyRequest(size_t nconfigs, std::vector<std::string> models = {})
{
    SweepRequest req;
    req.configs = shippedConfigs(nconfigs);
    req.workloads = {"tiny"};
    req.models = std::move(models);
    req.warmupInsts = 2000;
    req.measureInsts = 4000;
    req.seed = 7;
    return req;
}

/** Connected socketpair wrapped in FrameConns. */
struct ConnPair
{
    std::unique_ptr<FrameConn> a, b;

    ConnPair()
    {
        int fds[2] = {-1, -1};
        EXPECT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
        a = std::make_unique<FrameConn>(fds[0]);
        b = std::make_unique<FrameConn>(fds[1]);
    }
};

// ---------------------------------------------------------------------
// Framing
// ---------------------------------------------------------------------

TEST(NetFrame, RoundTripsTypesAndPayloads)
{
    ConnPair p;
    p.a->send(MsgType::Hello, std::string("\x01\x00\x00\x00", 4));
    p.a->send(MsgType::Submit, "workloads = tiny");
    p.a->send(MsgType::JobDone, ""); // empty payload is legal

    Frame f;
    ASSERT_TRUE(p.b->recv(f));
    EXPECT_EQ(f.type, MsgType::Hello);
    EXPECT_EQ(getU32(f.payload, 0), 1u);
    ASSERT_TRUE(p.b->recv(f));
    EXPECT_EQ(f.type, MsgType::Submit);
    EXPECT_EQ(f.payload, "workloads = tiny");
    ASSERT_TRUE(p.b->recv(f));
    EXPECT_EQ(f.type, MsgType::JobDone);
    EXPECT_TRUE(f.payload.empty());

    // Clean close at a frame boundary reads as EOF, not an error.
    p.a->close();
    EXPECT_FALSE(p.b->recv(f));
}

TEST(NetFrame, TruncatedFrameThrows)
{
    ConnPair p;
    // Length prefix promises 100 bytes; deliver the type byte and 3
    // more, then vanish.
    std::string partial;
    putU32(partial, 100);
    partial.push_back(static_cast<char>(MsgType::Submit));
    partial += "abc";
    ASSERT_EQ(::send(p.a->fd(), partial.data(), partial.size(),
                     MSG_NOSIGNAL),
              static_cast<ssize_t>(partial.size()));
    p.a->close();

    Frame f;
    try {
        p.b->recv(f);
        FAIL() << "expected NetError";
    } catch (const NetError &e) {
        EXPECT_NE(std::string(e.what()).find("truncated"),
                  std::string::npos)
            << e.what();
    }
}

TEST(NetFrame, OversizedLengthPrefixRejectedBeforeAllocation)
{
    ConnPair p;
    std::string prefix;
    putU32(prefix, 0xffffffffu); // ~4 GB claim
    ASSERT_EQ(::send(p.a->fd(), prefix.data(), prefix.size(),
                     MSG_NOSIGNAL),
              static_cast<ssize_t>(prefix.size()));

    Frame f;
    try {
        p.b->recv(f);
        FAIL() << "expected NetError";
    } catch (const NetError &e) {
        EXPECT_NE(std::string(e.what()).find("oversized"),
                  std::string::npos)
            << e.what();
    }
}

TEST(NetFrame, ZeroLengthFrameRejected)
{
    ConnPair p;
    std::string prefix;
    putU32(prefix, 0);
    ASSERT_EQ(::send(p.a->fd(), prefix.data(), prefix.size(),
                     MSG_NOSIGNAL),
              static_cast<ssize_t>(prefix.size()));
    Frame f;
    EXPECT_THROW(p.b->recv(f), NetError);
}

TEST(NetFrame, SendRefusesPayloadOverCap)
{
    ConnPair p;
    std::string huge(kMaxFrameBytes, 'x');
    EXPECT_THROW(p.a->send(MsgType::Submit, huge), NetError);
}

TEST(NetFrame, GetU32PastEndThrows)
{
    EXPECT_THROW(getU32("abc", 0), NetError);
    std::string four;
    putU32(four, 0xdeadbeefu);
    EXPECT_EQ(getU32(four, 0), 0xdeadbeefu);
    EXPECT_THROW(getU32(four, 1), NetError);
}

// ---------------------------------------------------------------------
// Request serialization
// ---------------------------------------------------------------------

TEST(SweepRequestIo, TextRoundTripIsFixpoint)
{
    SweepRequest req = tinyRequest(3, {"pc", "wc"});
    req.retries = 2;
    req.streaming = true;
    req.chunkInsts = 1024;

    std::string text = sweepRequestToText(req);
    SweepRequest back = sweepRequestFromText(text);
    EXPECT_EQ(sweepRequestToText(back), text);

    EXPECT_EQ(back.workloads, req.workloads);
    EXPECT_EQ(back.models, req.models);
    EXPECT_EQ(back.warmupInsts, req.warmupInsts);
    EXPECT_EQ(back.measureInsts, req.measureInsts);
    EXPECT_EQ(back.seed, req.seed);
    EXPECT_EQ(back.retries, req.retries);
    EXPECT_EQ(back.streaming, req.streaming);
    EXPECT_EQ(back.chunkInsts, req.chunkInsts);
    ASSERT_EQ(back.configs.size(), req.configs.size());
    for (size_t i = 0; i < back.configs.size(); ++i)
        EXPECT_EQ(back.configs[i].name, req.configs[i].name);

    // The round-tripped request expands to the same planned runs.
    std::vector<PlannedRun> a = expandSweepRuns(req);
    std::vector<PlannedRun> b = expandSweepRuns(back);
    ASSERT_EQ(a.size(), b.size());
    for (size_t i = 0; i < a.size(); ++i)
        EXPECT_EQ(a[i].name, b[i].name);
}

TEST(SweepRequestIo, FingerprintIgnoresRunFilter)
{
    SweepRequest req = tinyRequest(2, {"pc"});
    std::string fp = sweepRequestFingerprint(req);
    EXPECT_EQ(fp.size(), 16u);

    SweepRequest filtered = req;
    filtered.runFilter = {"tiny_" + req.configs[0].name + "@PC"};
    EXPECT_EQ(sweepRequestFingerprint(filtered), fp);

    SweepRequest changed = req;
    changed.seed += 1;
    EXPECT_NE(sweepRequestFingerprint(changed), fp);
}

TEST(SweepRequestIo, ExpansionValidatesNamesAndFilters)
{
    SweepRequest empty;
    EXPECT_THROW(expandSweepRuns(empty), ConfigError);

    SweepRequest req = tinyRequest(2);
    req.workloads = {"nosuch"};
    EXPECT_THROW(expandSweepRuns(req), ConfigError);

    req = tinyRequest(2);
    req.runFilter = {"tiny_" + req.configs[0].name, "tiny_ghost"};
    EXPECT_THROW(expandSweepRuns(req), ConfigError);

    req = tinyRequest(2);
    req.runFilter = {"tiny_" + req.configs[1].name};
    std::vector<PlannedRun> runs = expandSweepRuns(req);
    ASSERT_EQ(runs.size(), 1u);
    EXPECT_EQ(runs[0].configName, req.configs[1].name);

    // Duplicate config entries expand to duplicate run names.
    req = tinyRequest(1);
    req.configs.push_back(req.configs[0]);
    EXPECT_THROW(expandSweepRuns(req), ConfigError);

    // Unparsable request text is a ConfigError, not a crash.
    EXPECT_THROW(sweepRequestFromText("frobnicate = yes"),
                 ConfigError);
    EXPECT_THROW(sweepRequestFromText("[config x]\nnot closed"),
                 ConfigError);
}

// ---------------------------------------------------------------------
// Server protocol behavior
// ---------------------------------------------------------------------

/** Dial a running server and complete the handshake. */
std::unique_ptr<FrameConn>
handshake(uint16_t port, uint32_t version = kProtocolVersion)
{
    auto conn =
        std::make_unique<FrameConn>(tcpConnect("127.0.0.1", port));
    std::string hello;
    putU32(hello, version);
    conn->send(MsgType::Hello, hello);
    return conn;
}

TEST(SweepServer, RejectsVersionMismatchWithErrorFrame)
{
    SweepServer server;
    server.start();

    auto conn = handshake(server.port(), /*version=*/99);
    Frame f;
    ASSERT_TRUE(conn->recv(f));
    EXPECT_EQ(f.type, MsgType::Error);
    EXPECT_NE(f.payload.find("version mismatch"), std::string::npos)
        << f.payload;
    server.stop();
}

TEST(SweepServer, UnknownFrameTypeDrawsErrorAndConnectionSurvives)
{
    SweepServer server;
    server.start();

    auto conn = handshake(server.port());
    Frame f;
    ASSERT_TRUE(conn->recv(f));
    ASSERT_EQ(f.type, MsgType::HelloAck);
    EXPECT_EQ(getU32(f.payload, 0), kProtocolVersion);
    EXPECT_EQ(getU32(f.payload, 4),
              static_cast<uint32_t>(kStatsSchemaVersion));

    // Garbage type: Error frame, not a dropped connection.
    conn->send(static_cast<MsgType>(42), "???");
    ASSERT_TRUE(conn->recv(f));
    EXPECT_EQ(f.type, MsgType::Error);

    // Malformed request body: same containment.
    conn->send(MsgType::Submit, "definitely not a request");
    ASSERT_TRUE(conn->recv(f));
    EXPECT_EQ(f.type, MsgType::Error);
    EXPECT_NE(f.payload.find("bad sweep request"), std::string::npos);

    // The connection is still usable for a real batch afterwards.
    conn->send(MsgType::Submit,
               sweepRequestToText(tinyRequest(1)));
    size_t results = 0;
    bool done = false;
    while (!done && conn->recv(f)) {
        if (f.type == MsgType::RunResult)
            ++results;
        else if (f.type == MsgType::JobDone)
            done = true;
        else
            FAIL() << "unexpected frame type";
    }
    EXPECT_TRUE(done);
    EXPECT_EQ(results, 1u);
    server.stop();
}

TEST(SweepServer, ClientVanishingMidBatchDoesNotKillServer)
{
    SweepServer server;
    server.start();

    {
        // Submit a multi-run batch, read one result, disappear.
        auto conn = handshake(server.port());
        Frame f;
        ASSERT_TRUE(conn->recv(f));
        ASSERT_EQ(f.type, MsgType::HelloAck);
        conn->send(MsgType::Submit,
                   sweepRequestToText(tinyRequest(4)));
        ASSERT_TRUE(conn->recv(f));
        EXPECT_EQ(f.type, MsgType::RunResult);
        conn->close();
    }

    // The server survives and serves a complete batch on a fresh
    // connection.
    SweepClientOptions copts;
    copts.port = server.port();
    copts.maxReconnects = 0;
    RemoteSweepReport report =
        runSweepRemote(tinyRequest(2), copts);
    EXPECT_EQ(report.results.size(), 2u);
    EXPECT_EQ(report.failedRuns(), 0u);
    EXPECT_EQ(report.reconnects, 0u);
    server.stop();
}

// ---------------------------------------------------------------------
// Client retry / shard recovery
// ---------------------------------------------------------------------

TEST(SweepClient, RecoversAllShardsAfterServerSideDrop)
{
    SweepServerOptions sopts;
    sopts.dropAfterResults = 2; // crash the first stream after 2 runs
    SweepServer server(sopts);
    server.start();

    SweepClientOptions copts;
    copts.port = server.port();
    copts.maxReconnects = 3;

    SweepRequest req = tinyRequest(3, {"pc", "wc"}); // 6 runs
    size_t streamed = 0;
    RemoteSweepReport report = runSweepRemote(
        req, copts,
        [&](const RemoteRunResult &, size_t, size_t) { ++streamed; });

    ASSERT_EQ(report.results.size(), 6u);
    EXPECT_EQ(streamed, 6u);
    EXPECT_GE(report.reconnects, 1u);
    EXPECT_EQ(report.failedRuns(), 0u);
    // Results hold their expansion-order slots with matching names.
    std::vector<PlannedRun> planned = expandSweepRuns(req);
    for (size_t i = 0; i < planned.size(); ++i)
        EXPECT_EQ(report.results[i].name, planned[i].name);
    EXPECT_FALSE(report.summaryJson.empty());
    server.stop();
}

TEST(SweepClient, ExhaustedReconnectBudgetRaisesNetError)
{
    // A server that drops after every first result and only accepts
    // one connection: the client cannot finish a 3-run batch.
    SweepServerOptions sopts;
    sopts.dropAfterResults = 1;
    sopts.maxConnections = 1;
    SweepServer server(sopts);
    server.start();

    SweepClientOptions copts;
    copts.port = server.port();
    copts.maxReconnects = 0;
    EXPECT_THROW(runSweepRemote(tinyRequest(3), copts), NetError);
    server.stop();
}

// ---------------------------------------------------------------------
// End-to-end: remote == local, bit for bit
// ---------------------------------------------------------------------

/**
 * The acceptance property: every shipped config crossed with the four
 * model presets, submitted over loopback, must come back with per-run
 * stats bit-identical to a local engine executing the same request —
 * and stay identical when a mid-batch connection drop forces the
 * client to recover shards by resubmission.
 */
void
expectRemoteMatchesLocal(unsigned drop_after)
{
    SweepRequest req;
    req.configs = shippedConfigs(); // all nine
    req.workloads = {"tiny"};
    req.models = {"pc", "wc", "rmo", "wmm"};
    req.warmupInsts = 2000;
    req.measureInsts = 4000;
    req.seed = 11;

    // Local reference: same request, in-process engine.
    SweepEngine local;
    std::vector<RunOutcome> expected = local.execute(req);
    ASSERT_FALSE(expected.empty());

    SweepServerOptions sopts;
    sopts.dropAfterResults = drop_after;
    SweepServer server(sopts);
    server.start();
    SweepClientOptions copts;
    copts.port = server.port();
    RemoteSweepReport report = runSweepRemote(req, copts);
    server.stop();

    ASSERT_EQ(report.results.size(), expected.size());
    if (drop_after)
        EXPECT_GE(report.reconnects, 1u);
    for (size_t i = 0; i < expected.size(); ++i) {
        const RunOutcome &want = expected[i];
        const RemoteRunResult &got = report.results[i];
        ASSERT_TRUE(got.ok) << got.name << ": " << got.errorMessage;
        ASSERT_EQ(got.name, want.name);

        StatsEnvelope env;
        int version = 0;
        StatsRegistry remote_reg =
            statsFromJson(got.json, &env, &version);
        EXPECT_EQ(version, kStatsSchemaVersion);

        StatsRegistry want_reg;
        want.output.exportStats(want_reg);
        // Compare canonical serializations: parsing is value- but not
        // kind-preserving (an integral Scalar reads back as a
        // Counter), and the acceptance bar is bit-identical JSON
        // stats, which is exactly what re-serialization checks.
        EXPECT_EQ(statsToJson(remote_reg, StatsMeta{}, false),
                  statsToJson(want_reg, StatsMeta{}, false))
            << got.name
            << ": remote stats diverged from the local engine";

        // The v2 envelope carries the run identity and provenance.
        auto runVal = [&](const char *key) -> std::string {
            for (const auto &[k, v] : env.run)
                if (k == key)
                    return v;
            return "<missing>";
        };
        EXPECT_EQ(runVal("name"), want.name);
        EXPECT_EQ(runVal("workload"), "tiny");
        EXPECT_EQ(runVal("seed"), "11");
        EXPECT_EQ(runVal("ok"), "1");
        auto srcVal = [&](const char *key) -> std::string {
            for (const auto &[k, v] : env.source)
                if (k == key)
                    return v;
            return "<missing>";
        };
        EXPECT_EQ(srcVal("request"), sweepRequestFingerprint(req));
        EXPECT_EQ(srcVal("tool"), "storemlp_sweepd");
    }
}

TEST(SweepLoopback, AllConfigsAllModelsBitIdenticalToLocal)
{
    expectRemoteMatchesLocal(/*drop_after=*/0);
}

TEST(SweepLoopback, BitIdenticalEvenAcrossInjectedShardLoss)
{
    expectRemoteMatchesLocal(/*drop_after=*/5);
}

} // namespace
