/**
 * @file
 * Unit tests for the cache substrate: set-associative cache,
 * hierarchy (write-through no-write-allocate L1D), TLB.
 */

#include <gtest/gtest.h>

#include "cache/hierarchy.hh"
#include "cache/set_assoc_cache.hh"
#include "cache/tlb.hh"

namespace storemlp
{
namespace
{

CacheConfig
tinyCache()
{
    return {1024, 2, 64}; // 8 sets x 2 ways x 64B
}

TEST(SetAssocCache, MissThenHit)
{
    SetAssocCache c(tinyCache());
    EXPECT_FALSE(c.access(0x1000, false).hit);
    EXPECT_TRUE(c.access(0x1000, false).hit);
    EXPECT_EQ(c.accesses(), 2u);
    EXPECT_EQ(c.misses(), 1u);
}

TEST(SetAssocCache, SameLineDifferentOffsetsHit)
{
    SetAssocCache c(tinyCache());
    c.access(0x1000, false);
    EXPECT_TRUE(c.access(0x103f, false).hit);
    EXPECT_FALSE(c.access(0x1040, false).hit); // next line
}

TEST(SetAssocCache, LruEviction)
{
    SetAssocCache c(tinyCache()); // 2 ways
    uint64_t set_stride = 8 * 64;  // 8 sets
    // Three lines mapping to the same set.
    c.access(0x0, false);
    c.access(set_stride, false);
    c.access(0x0, false); // touch line 0: line 1 becomes LRU
    AccessResult r = c.access(2 * set_stride, false);
    EXPECT_FALSE(r.hit);
    EXPECT_TRUE(r.victimValid);
    EXPECT_EQ(r.victimLineAddr, set_stride);
    EXPECT_TRUE(c.access(0x0, false).hit);       // survived
    EXPECT_FALSE(c.access(set_stride, false).hit); // evicted
}

TEST(SetAssocCache, DirtyVictimReported)
{
    SetAssocCache c(tinyCache());
    uint64_t set_stride = 8 * 64;
    c.access(0x0, true); // dirty
    c.access(set_stride, false);
    AccessResult r = c.access(2 * set_stride, false);
    EXPECT_TRUE(r.victimValid);
    EXPECT_EQ(r.victimLineAddr, 0u);
    EXPECT_TRUE(r.victimDirty);
    EXPECT_EQ(c.evictionsDirty(), 1u);
}

TEST(SetAssocCache, WriteHitMarksDirty)
{
    SetAssocCache c(tinyCache());
    c.access(0x1000, false);
    c.access(0x1000, true);
    auto inv = c.invalidate(0x1000);
    EXPECT_TRUE(inv.wasPresent);
    EXPECT_TRUE(inv.wasDirty);
}

TEST(SetAssocCache, NoAllocateLeavesCacheUntouched)
{
    SetAssocCache c(tinyCache());
    AccessResult r = c.access(0x2000, true, false);
    EXPECT_FALSE(r.hit);
    EXPECT_FALSE(c.probe(0x2000));
}

TEST(SetAssocCache, ProbeDoesNotUpdateLru)
{
    SetAssocCache c(tinyCache());
    uint64_t set_stride = 8 * 64;
    c.access(0x0, false);
    c.access(set_stride, false);
    // Probing line 0 must NOT make it MRU.
    EXPECT_TRUE(c.probe(0x0));
    c.access(2 * set_stride, false); // evicts true-LRU = line 0
    EXPECT_FALSE(c.probe(0x0));
    EXPECT_TRUE(c.probe(set_stride));
}

TEST(SetAssocCache, StateByteRoundTrip)
{
    SetAssocCache c(tinyCache());
    c.access(0x40, false);
    EXPECT_TRUE(c.setState(0x40, 3));
    auto st = c.probeState(0x40);
    ASSERT_TRUE(st.has_value());
    EXPECT_EQ(*st, 3);
    EXPECT_FALSE(c.setState(0x9999000, 1));
    EXPECT_FALSE(c.probeState(0x9999000).has_value());
}

TEST(SetAssocCache, StateResetOnRefill)
{
    SetAssocCache c(tinyCache());
    uint64_t set_stride = 8 * 64;
    c.access(0x0, false);
    c.setState(0x0, 2);
    c.access(set_stride, false);
    c.access(2 * set_stride, false); // evicts 0x0
    c.access(0x0, false);            // refill
    EXPECT_EQ(*c.probeState(0x0), 0);
}

TEST(SetAssocCache, InvalidateAbsentLine)
{
    SetAssocCache c(tinyCache());
    auto inv = c.invalidate(0x5000);
    EXPECT_FALSE(inv.wasPresent);
}

TEST(SetAssocCache, ClearDropsEverything)
{
    SetAssocCache c(tinyCache());
    c.access(0x0, true);
    c.access(0x40, false);
    EXPECT_EQ(c.residentLines(), 2u);
    c.clear();
    EXPECT_EQ(c.residentLines(), 0u);
    EXPECT_FALSE(c.probe(0x0));
}

TEST(SetAssocCache, CapacityBound)
{
    SetAssocCache c(tinyCache());
    for (uint64_t a = 0; a < 4096; a += 64)
        c.access(a, false);
    EXPECT_LE(c.residentLines(), 1024u / 64u);
}

TEST(SetAssocCache, PaperDefaultGeometry)
{
    CacheConfig l2 = CacheConfig::l2Default();
    EXPECT_EQ(l2.sizeBytes, 2u * 1024 * 1024);
    EXPECT_EQ(l2.assoc, 4u);
    EXPECT_EQ(l2.lineBytes, 64u);
    EXPECT_EQ(l2.numSets(), 8192u);
    CacheConfig l1 = CacheConfig::l1Default();
    EXPECT_EQ(l1.sizeBytes, 32u * 1024);
}

// ---- hierarchy ----

TEST(Hierarchy, LoadMissFillsBothLevels)
{
    CacheHierarchy h;
    EXPECT_EQ(h.load(0x100000), MissLevel::OffChip);
    EXPECT_EQ(h.load(0x100000), MissLevel::L1Hit);
    EXPECT_TRUE(h.l2Probe(0x100000));
}

TEST(Hierarchy, LoadL2HitAfterL1Eviction)
{
    CacheHierarchy h;
    h.load(0x100000);
    // Evict from the 32KB L1 by loading conflicting lines
    // (same L1 set: stride = 8KB for 128-set 4-way L1).
    for (int i = 1; i <= 8; ++i)
        h.load(0x100000 + i * 8192);
    EXPECT_EQ(h.load(0x100000), MissLevel::L2Hit);
}

TEST(Hierarchy, StoreMissDoesNotAllocateL1)
{
    CacheHierarchy h;
    EXPECT_EQ(h.store(0x200000), MissLevel::OffChip);
    // Line is in L2 (write-allocate) but not in L1D.
    EXPECT_TRUE(h.l2Probe(0x200000));
    EXPECT_FALSE(h.l1d().probe(0x200000));
    // A subsequent load misses L1 but hits L2.
    EXPECT_EQ(h.load(0x200000), MissLevel::L2Hit);
}

TEST(Hierarchy, StoreHitWritesThrough)
{
    CacheHierarchy h;
    h.load(0x300000); // brings into L1D+L2
    uint64_t l2_accesses = h.l2Accesses();
    EXPECT_EQ(h.store(0x300000), MissLevel::L2Hit);
    // Write-through: the store reached the L2 even on an L1 hit.
    EXPECT_GT(h.l2Accesses(), l2_accesses);
}

TEST(Hierarchy, InstFetchSequentialFastPath)
{
    CacheHierarchy h;
    EXPECT_EQ(h.instFetch(0x10000), MissLevel::OffChip);
    // Same line: fast path, no new L2 access.
    uint64_t l2 = h.l2Accesses();
    EXPECT_EQ(h.instFetch(0x10004), MissLevel::L1Hit);
    EXPECT_EQ(h.instFetch(0x1003c), MissLevel::L1Hit);
    EXPECT_EQ(h.l2Accesses(), l2);
    // Next line misses again.
    EXPECT_EQ(h.instFetch(0x10040), MissLevel::OffChip);
}

TEST(Hierarchy, PrefetchInstallsLine)
{
    CacheHierarchy h;
    EXPECT_FALSE(h.prefetchLine(0x400000, false));
    EXPECT_EQ(h.load(0x400000), MissLevel::L2Hit);
    EXPECT_TRUE(h.prefetchLine(0x400000, false)); // already present
}

TEST(Hierarchy, PrefetchForWriteMarksDirty)
{
    CacheHierarchy h;
    h.prefetchLine(0x500000, true);
    uint64_t evicted = 0;
    bool evicted_dirty = false;
    h.setEvictionListener([&](uint64_t line, bool dirty, uint8_t) {
        if (line == 0x500000) {
            ++evicted;
            evicted_dirty = dirty;
        }
    });
    // Force eviction of that L2 set: 2MB 4-way, set stride 512KB.
    for (int i = 1; i <= 5; ++i)
        h.load(0x500000 + i * 512 * 1024);
    EXPECT_EQ(evicted, 1u);
    EXPECT_TRUE(evicted_dirty);
}

TEST(Hierarchy, EvictionListenerSeesDirtyStoreVictims)
{
    CacheHierarchy h;
    std::vector<uint64_t> dirty_victims;
    h.setEvictionListener([&](uint64_t line, bool dirty, uint8_t) {
        if (dirty)
            dirty_victims.push_back(line);
    });
    h.store(0x600000);
    for (int i = 1; i <= 5; ++i)
        h.load(0x600000 + i * 512 * 1024);
    ASSERT_EQ(dirty_victims.size(), 1u);
    EXPECT_EQ(dirty_victims[0], 0x600000u);
}

TEST(Hierarchy, InvalidateLineRemovesEverywhere)
{
    CacheHierarchy h;
    h.load(0x700000);
    h.invalidateLine(0x700000);
    EXPECT_FALSE(h.l2Probe(0x700000));
    EXPECT_EQ(h.load(0x700000), MissLevel::OffChip);
}

TEST(Hierarchy, InvalidateForCoherenceSkipsListener)
{
    CacheHierarchy h;
    uint64_t notifications = 0;
    h.setEvictionListener([&](uint64_t, bool, uint8_t) { ++notifications; });
    h.store(0x800000); // dirty in L2
    h.invalidateForCoherence(0x800000);
    EXPECT_EQ(notifications, 0u);
    EXPECT_FALSE(h.l2Probe(0x800000));
}

TEST(Hierarchy, StatsCountMisses)
{
    CacheHierarchy h;
    h.load(0x10000);
    h.load(0x20000);
    h.load(0x10000);
    h.store(0x30000);
    h.instFetch(0x40000);
    EXPECT_EQ(h.loadL2Misses(), 2u);
    EXPECT_EQ(h.storeL2Misses(), 1u);
    EXPECT_EQ(h.instL2Misses(), 1u);
    h.resetStats();
    EXPECT_EQ(h.loadL2Misses(), 0u);
    EXPECT_EQ(h.loadAccesses(), 0u);
}

// ---- TLB ----

TEST(Tlb, MissThenHit)
{
    Tlb t;
    EXPECT_FALSE(t.access(0x10000));
    EXPECT_TRUE(t.access(0x10000));
    EXPECT_TRUE(t.access(0x10000 + 4096)); // same 8KB page
    EXPECT_FALSE(t.access(0x10000 + 8192));
}

TEST(Tlb, CapacityEviction)
{
    TlbConfig cfg;
    cfg.entries = 16;
    cfg.assoc = 2;
    cfg.pageBytes = 8192;
    Tlb t(cfg);
    // 3 pages in the same set (set stride = 8 sets * 8KB).
    uint64_t stride = 8 * 8192;
    t.access(0);
    t.access(stride);
    t.access(2 * stride);
    EXPECT_FALSE(t.access(0)); // LRU-evicted
}

TEST(Tlb, StatsAndClear)
{
    Tlb t;
    t.access(0x1000);
    t.access(0x1000);
    EXPECT_EQ(t.accesses(), 2u);
    EXPECT_EQ(t.misses(), 1u);
    t.clear();
    t.resetStats();
    EXPECT_FALSE(t.access(0x1000));
    EXPECT_EQ(t.accesses(), 1u);
}

} // namespace
} // namespace storemlp
