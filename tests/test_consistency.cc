/**
 * @file
 * Unit tests for memory-model policy and SLE classification.
 */

#include <gtest/gtest.h>

#include "consistency/memory_model.hh"
#include "consistency/sle.hh"
#include "trace/trace.hh"

namespace storemlp
{
namespace
{

TEST(ModelDescriptor, PresetNames)
{
    EXPECT_EQ(ModelDescriptor::pc().name, "PC");
    EXPECT_EQ(ModelDescriptor::wc().name, "WC");
    EXPECT_EQ(ModelDescriptor::rmo().name, "RMO");
    EXPECT_EQ(ModelDescriptor::wmm().name, "WMM");
    EXPECT_EQ(ModelDescriptor::sc().name, "SC");
}

TEST(ModelDescriptor, CommitOrderPredicates)
{
    EXPECT_TRUE(ModelDescriptor::pc().inOrderCommit());
    EXPECT_FALSE(ModelDescriptor::wc().inOrderCommit());
    EXPECT_EQ(ModelDescriptor::pc().coalesce, CoalesceScope::Tail);
    EXPECT_EQ(ModelDescriptor::wc().coalesce,
              CoalesceScope::ToYoungestFence);
}

TEST(ModelDescriptor, TraceDialectDrivesWcRewrite)
{
    EXPECT_FALSE(ModelDescriptor::pc().wcTraceRewrite());
    EXPECT_TRUE(ModelDescriptor::wc().wcTraceRewrite());
    EXPECT_FALSE(ModelDescriptor::rmo().wcTraceRewrite());
    EXPECT_TRUE(ModelDescriptor::wmm().wcTraceRewrite());
}

TEST(SerializeEffect, CasaDrainsStoresUnderPc)
{
    SerializeEffect e =
        ModelDescriptor::pc().effectOf(InstClass::AtomicCas);
    EXPECT_TRUE(e.pipelineDrain);
    EXPECT_TRUE(e.storeDrain);
    EXPECT_FALSE(e.storeFence);
}

TEST(SerializeEffect, MembarFullFence)
{
    for (const ModelDescriptor &m :
         {ModelDescriptor::pc(), ModelDescriptor::wc()}) {
        SerializeEffect e = m.effectOf(InstClass::Membar);
        EXPECT_TRUE(e.pipelineDrain) << m.name;
        EXPECT_TRUE(e.storeDrain) << m.name;
    }
}

TEST(SerializeEffect, IsyncDoesNotDrainStores)
{
    // The key WC property (paper 3.3.4): isync does not wait for the
    // store buffer and store queue to drain.
    SerializeEffect e =
        ModelDescriptor::wc().effectOf(InstClass::Isync);
    EXPECT_TRUE(e.pipelineDrain);
    EXPECT_FALSE(e.storeDrain);
}

TEST(SerializeEffect, LwsyncIsQueueFenceOnly)
{
    SerializeEffect e =
        ModelDescriptor::wc().effectOf(InstClass::Lwsync);
    EXPECT_FALSE(e.pipelineDrain);
    EXPECT_FALSE(e.storeDrain);
    EXPECT_TRUE(e.storeFence);
}

TEST(SerializeEffect, PlainInstructionsDoNotSerialize)
{
    for (InstClass c : {InstClass::Alu, InstClass::Load,
                        InstClass::Store, InstClass::Branch,
                        InstClass::LoadLocked, InstClass::StoreCond}) {
        SerializeEffect e = ModelDescriptor::pc().effectOf(c);
        EXPECT_FALSE(e.any()) << instClassName(c);
    }
}

TEST(Sle, DisabledClassifiesEverythingNormal)
{
    Trace t = TraceBuilder().casa(0x100).store(0x100).build();
    LockAnalysis a = LockDetector().analyze(t);
    Sle sle(&a, false);
    EXPECT_EQ(sle.classify(0), Sle::Action::Normal);
    EXPECT_EQ(sle.classify(1), Sle::Action::Normal);
    EXPECT_FALSE(sle.peekElided(0));
}

TEST(Sle, ElidesAcquireAndRelease)
{
    Trace t = TraceBuilder()
        .casa(0x100)
        .load(0x5000)
        .store(0x100)
        .build();
    LockAnalysis a = LockDetector().analyze(t);
    Sle sle(&a, true);
    EXPECT_EQ(sle.classify(0), Sle::Action::AcquireAsLoad);
    EXPECT_EQ(sle.classify(1), Sle::Action::Normal);
    EXPECT_EQ(sle.classify(2), Sle::Action::Nop);
    EXPECT_EQ(sle.elidedAcquires(), 1u);
    EXPECT_EQ(sle.elidedReleases(), 1u);
}

TEST(Sle, ElidesWcAuxInstructions)
{
    Trace t = TraceBuilder()
        .loadLocked(0x100, 2)
        .storeCond(0x100, 2)
        .isync()
        .load(0x5000)
        .lwsync()
        .store(0x100)
        .build();
    LockAnalysis a = LockDetector().analyze(t);
    Sle sle(&a, true);
    EXPECT_EQ(sle.classify(0), Sle::Action::AcquireAsLoad);
    EXPECT_EQ(sle.classify(1), Sle::Action::Nop); // stwcx
    EXPECT_EQ(sle.classify(2), Sle::Action::Nop); // isync
    EXPECT_EQ(sle.classify(4), Sle::Action::Nop); // lwsync
    EXPECT_EQ(sle.classify(5), Sle::Action::Nop); // release
}

TEST(Sle, PeekMatchesClassifyWithoutStats)
{
    Trace t = TraceBuilder().casa(0x100).store(0x100).build();
    LockAnalysis a = LockDetector().analyze(t);
    Sle sle(&a, true);
    EXPECT_TRUE(sle.peekElided(0));
    EXPECT_TRUE(sle.peekElided(1));
    EXPECT_FALSE(sle.peekElided(99));
    EXPECT_EQ(sle.elidedAcquires(), 0u); // peek has no side effects
}

TEST(Sle, UnpairedCasaNotElided)
{
    Trace t = TraceBuilder().casa(0x100).alu().build();
    LockAnalysis a = LockDetector().analyze(t);
    Sle sle(&a, true);
    EXPECT_EQ(sle.classify(0), Sle::Action::Normal);
    EXPECT_FALSE(sle.peekElided(0));
}

} // namespace
} // namespace storemlp
