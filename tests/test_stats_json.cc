/**
 * @file
 * Structured-results API tests: StatsRegistry semantics, the
 * BoundedHistogram overflow bucket, and the versioned JSON/CSV run
 * artifacts. The load-bearing property is lossless round-trip — a
 * fully-populated SimResult exported to a registry, serialized to
 * JSON, parsed back and rebuilt must compare equal field-for-field.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "core/sim_result.hh"
#include "stats/histogram.hh"
#include "stats/registry.hh"
#include "stats/stats_json.hh"

namespace storemlp
{
namespace
{

// ---------------------------------------------------------------------
// StatsRegistry
// ---------------------------------------------------------------------

TEST(StatsRegistry, InsertionOrderIsPreserved)
{
    StatsRegistry reg;
    reg.counter("z.last", 1);
    reg.scalar("a.first", 2.0);
    reg.text("m.middle", "hello");

    ASSERT_EQ(reg.size(), 3u);
    EXPECT_EQ(reg.entries()[0].name, "z.last");
    EXPECT_EQ(reg.entries()[1].name, "a.first");
    EXPECT_EQ(reg.entries()[2].name, "m.middle");
}

TEST(StatsRegistry, UpsertKeepsOriginalPosition)
{
    StatsRegistry reg;
    reg.counter("one", 1);
    reg.counter("two", 2);
    reg.counter("one", 11); // overwrite: must stay at index 0

    ASSERT_EQ(reg.size(), 2u);
    EXPECT_EQ(reg.entries()[0].name, "one");
    EXPECT_EQ(reg.getCounter("one"), 11u);
}

TEST(StatsRegistry, TypedGettersThrowOnMismatch)
{
    StatsRegistry reg;
    reg.text("meta.workload", "database");
    reg.counter("core.epochs", 42);

    EXPECT_THROW(reg.getCounter("meta.workload"), StatsError);
    EXPECT_THROW(reg.getHistogram("core.epochs"), StatsError);
    EXPECT_THROW(reg.getText("absent"), StatsError);
    EXPECT_FALSE(reg.has("absent"));
    EXPECT_EQ(reg.kindOf("meta.workload"), StatKind::Text);
}

TEST(StatsRegistry, CounterAndScalarInterconvert)
{
    StatsRegistry reg;
    reg.counter("n", 7);
    reg.scalar("whole", 3.0);
    reg.scalar("frac", 3.5);

    EXPECT_DOUBLE_EQ(reg.getScalar("n"), 7.0);
    EXPECT_EQ(reg.getCounter("whole"), 3u);
    EXPECT_THROW(reg.getCounter("frac"), StatsError);
}

TEST(StatsRegistry, MergeFromOverwritesAndAppends)
{
    StatsRegistry a;
    a.counter("shared", 1);
    a.counter("only.a", 2);

    StatsRegistry b;
    b.counter("shared", 10);
    b.counter("only.b", 20);

    a.mergeFrom(b);
    ASSERT_EQ(a.size(), 3u);
    EXPECT_EQ(a.entries()[0].name, "shared"); // position kept
    EXPECT_EQ(a.getCounter("shared"), 10u);   // value overwritten
    EXPECT_EQ(a.getCounter("only.b"), 20u);
}

// ---------------------------------------------------------------------
// BoundedHistogram overflow bucket
// ---------------------------------------------------------------------

TEST(BoundedHistogram, OverflowIsCountedNotSilent)
{
    BoundedHistogram h(10);
    h.sample(3);
    h.sample(10);
    h.sample(11);     // clamped into bucket 10, counted as overflow
    h.sample(37, 2);  // weighted overflow

    EXPECT_EQ(h.bucket(3), 1u);
    EXPECT_EQ(h.bucket(10), 4u); // 10 + 11 + 37x2 all land here
    EXPECT_EQ(h.overflow(), 3u); // only the >10 samples
    EXPECT_EQ(h.total(), 5u);
    // The sum keeps the unclamped values so means stay honest.
    EXPECT_DOUBLE_EQ(h.sum(), 3 + 10 + 11 + 37 * 2.0);
}

TEST(BoundedHistogram, MergeAndFromPartsAreExact)
{
    BoundedHistogram a(10), b(10);
    a.sample(1);
    a.sample(25);
    b.sample(25);
    b.sample(9, 4);

    BoundedHistogram merged(10);
    merged.merge(a);
    merged.merge(b);
    EXPECT_EQ(merged.total(), a.total() + b.total());
    EXPECT_EQ(merged.overflow(), a.overflow() + b.overflow());
    EXPECT_DOUBLE_EQ(merged.sum(), a.sum() + b.sum());

    std::vector<uint64_t> buckets;
    for (unsigned i = 0; i <= merged.maxBucket(); ++i)
        buckets.push_back(merged.bucket(i));
    BoundedHistogram rebuilt = BoundedHistogram::fromParts(
        merged.maxBucket(), buckets, merged.total(), merged.sum(),
        merged.overflow());
    EXPECT_EQ(rebuilt, merged);
}

// ---------------------------------------------------------------------
// JSON round-trip
// ---------------------------------------------------------------------

/** A SimResult with every field set to a distinct nonzero value. */
SimResult
fullyPopulatedResult()
{
    SimResult r;
    r.instructions = 1000001;
    r.epochs = 4242;
    r.missLoads = 311;
    r.missStores = 207;
    r.missInsts = 53;
    r.epochMisses = 499;
    r.epochMissLoads = 288;
    r.epochMissStores = 181;
    r.epochMissInsts = 30;
    r.overlappedStores = 26;
    r.smacAcceleratedStores = 17;
    r.l2StoreAccesses = 90210;
    r.storePrefetchesIssued = 612;
    r.coalescedStores = 77;
    r.sqInserts = 8181;
    r.scoutEntries = 5;
    r.scoutPrefetches = 44;
    r.elidedLocks = 13;
    r.tmAborts = 2;
    r.serializeStalls = 101;
    r.branchMispredicts = 909;
    r.branches = 123456;
    r.onChipCycles = 987654.125;

    for (size_t i = 0; i < kNumTermConds; ++i) {
        r.termCounts[i] = 100 + 7 * i;
        r.termCountsStoreEpochs[i] = 50 + 3 * i;
    }

    r.mlpHist.sample(1, 2000);
    r.mlpHist.sample(4, 600);
    r.mlpHist.sample(23, 9); // exercise the overflow bucket
    r.storeMlpHist.sample(1, 1500);
    r.storeMlpHist.sample(10, 40);
    r.storeMlpHist.sample(12, 3);
    r.storeVsOtherMlp.sample(1, 0, 1200);
    r.storeVsOtherMlp.sample(3, 2, 310);
    r.storeVsOtherMlp.sample(15, 9, 6); // clamps on both axes
    return r;
}

TEST(StatsJson, SimResultRoundTripIsLossless)
{
    SimResult original = fullyPopulatedResult();

    StatsRegistry reg;
    original.exportStats(reg);
    std::string doc = statsToJson(reg, {{"tool", "test"}});

    StatsMeta meta;
    StatsRegistry parsed = statsFromJson(doc, &meta);
    SimResult rebuilt = SimResult::fromStats(parsed);

    EXPECT_EQ(rebuilt, original);
    ASSERT_EQ(meta.size(), 1u);
    EXPECT_EQ(meta[0].first, "tool");
    EXPECT_EQ(meta[0].second, "test");
}

TEST(StatsJson, RegistryRoundTripKeepsOrderAndKinds)
{
    StatsRegistry reg;
    reg.counter("big", 0xFFFFFFFFFFFFFFFFull); // needs full u64 range
    reg.scalar("tiny", 1e-17);
    reg.scalar("tenth", 0.1); // not exactly representable
    reg.text("name", "SQ+StoreBufferFull, \"quoted\"");
    BoundedHistogram h(4);
    h.sample(2, 3);
    h.sample(99);
    reg.histogram("hist", h);
    JointHistogram j(2, 1);
    j.sample(0, 1, 5);
    j.sample(7, 7, 2);
    reg.joint("joint", j);

    StatsRegistry back =
        statsFromJson(statsToJson(reg, StatsMeta{}, /*pretty=*/false));
    EXPECT_EQ(back, reg);
    // Compact and pretty emissions must parse identically.
    EXPECT_EQ(statsFromJson(statsToJson(reg)), reg);
}

TEST(StatsJson, SchemaVersionMismatchIsRejected)
{
    std::string doc =
        "{\"schemaVersion\": 99, \"meta\": {}, \"stats\": {}}";
    try {
        statsFromJson(doc);
        FAIL() << "expected StatsJsonError";
    } catch (const StatsJsonError &e) {
        // The error must name the version so the user can tell a
        // stale artifact from a corrupt one.
        EXPECT_NE(std::string(e.what()).find("99"), std::string::npos)
            << e.what();
        EXPECT_NE(std::string(e.what()).find("schemaVersion"),
                  std::string::npos)
            << e.what();
    }
}

TEST(StatsJson, V2EnvelopeRoundTripsSourceAndRunBlocks)
{
    StatsRegistry reg;
    reg.counter("sim.instructions", 4000);
    reg.scalar("sim.cpi", 1.25);

    StatsEnvelope env{{{"tool", "storemlp_sweepd"}, {"kind", "run"}},
                      {{"host", "ci-worker"}, {"request", "deadbeef"}},
                      {{"name", "database_pc1@WC"}, {"seed", "11"}}};

    for (bool pretty : {false, true}) {
        std::string doc = statsToJson(reg, env, pretty);
        // The envelope emits at the current schema version.
        EXPECT_NE(doc.find("\"schemaVersion\""), std::string::npos);

        StatsEnvelope back;
        int version = 0;
        StatsRegistry parsed = statsFromJson(doc, &back, &version);
        EXPECT_EQ(version, kStatsSchemaVersion);
        EXPECT_EQ(parsed, reg);
        EXPECT_EQ(back.meta, env.meta);
        EXPECT_EQ(back.source, env.source);
        EXPECT_EQ(back.run, env.run);
    }
}

TEST(StatsJson, V1DocumentsStillParseWithEmptyEnvelopeBlocks)
{
    // Pre-envelope artifacts must stay readable: schemaVersion 1,
    // meta only, no source/run blocks.
    std::string doc = "{\"schemaVersion\": 1, \"meta\": "
                      "{\"tool\": \"old\"}, \"stats\": {\"n\": 7}}";
    StatsEnvelope env;
    int version = 0;
    StatsRegistry reg = statsFromJson(doc, &env, &version);
    EXPECT_EQ(version, 1);
    EXPECT_EQ(reg.getCounter("n"), 7u);
    ASSERT_EQ(env.meta.size(), 1u);
    EXPECT_EQ(env.meta[0].second, "old");
    EXPECT_TRUE(env.source.empty());
    EXPECT_TRUE(env.run.empty());
}

TEST(StatsJson, FutureSchemaVersionsAreRejected)
{
    for (int v : {kStatsSchemaVersion + 1, 99}) {
        std::string doc = "{\"schemaVersion\": " + std::to_string(v) +
                          ", \"meta\": {}, \"stats\": {}}";
        EXPECT_THROW(statsFromJson(doc), StatsJsonError) << v;
        StatsEnvelope env;
        int version = 0;
        EXPECT_THROW(statsFromJson(doc, &env, &version),
                     StatsJsonError)
            << v;
    }
}

TEST(StatsJson, MalformedDocumentsAreRejected)
{
    EXPECT_THROW(statsFromJson("not json"), StatsJsonError);
    EXPECT_THROW(statsFromJson("{\"meta\": {}, \"stats\": {}}"),
                 StatsJsonError); // missing schemaVersion
    EXPECT_THROW(statsFromJson("{\"schemaVersion\": 1}"),
                 StatsJsonError); // missing stats
}

// ---------------------------------------------------------------------
// CSV
// ---------------------------------------------------------------------

/** Count top-level CSV fields (commas inside quotes don't split). */
size_t
csvFieldCount(const std::string &line)
{
    size_t fields = 1;
    bool quoted = false;
    for (char c : line) {
        if (c == '"')
            quoted = !quoted;
        else if (c == ',' && !quoted)
            ++fields;
    }
    return fields;
}

TEST(StatsCsv, ColumnCountMatchesHeader)
{
    SimResult res = fullyPopulatedResult();
    StatsRegistry reg;
    res.exportStats(reg);
    reg.text("note", "has,comma"); // forces quoting on the value row

    std::string csv =
        statsToCsv(reg, {{"tool", "test"}, {"workload", "database"}});
    std::istringstream is(csv);
    std::string header, values, extra;
    ASSERT_TRUE(std::getline(is, header));
    ASSERT_TRUE(std::getline(is, values));
    EXPECT_FALSE(std::getline(is, extra)) << "expected two lines";

    EXPECT_EQ(csvFieldCount(header), csvFieldCount(values));
    // Meta pairs lead the row; histograms expand per-bucket.
    EXPECT_EQ(header.rfind("tool,workload,", 0), 0u) << header;
    EXPECT_NE(header.find("core.mlpHist.overflow"), std::string::npos);
    EXPECT_NE(header.find("core.storeVsOtherMlp.x0y0"),
              std::string::npos);
}

} // namespace
} // namespace storemlp
