/**
 * @file
 * Hot-loop equivalence suite: pins the simulator's observable results
 * against goldens recorded *before* the throughput restructuring
 * (SoA chunk lanes, devirtualized dispatch, cache way memos, batched
 * bookkeeping), so any optimization that changes a single counter,
 * histogram bucket or cycle count fails here.
 *
 * Every case renders its full stats registry (SimResult or RunOutput,
 * machine counters included) to the schemaVersion-1 JSON text — whose
 * number formatting round-trips exactly — and hashes it with FNV-1a.
 * The hashes live in tests/golden/hotloop.golden; regenerate with
 *
 *   STOREMLP_HOTLOOP_REGEN=1 ./tests/test_hotloop
 *
 * ONLY when a semantic change is intended and reviewed. The matrix
 * covers all shipped configs (PC1-PC3, WC1-WC3, scout, TM, SMAC,
 * multi-chip peer traffic, sibling core), materialized vs generator vs
 * on-disk v1/v3/v4 sources, chunk sizes 1 / non-divisor / default, and
 * jobs=1 vs jobs=4 sweeps.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <string>
#include <vector>

#include "coherence/chip.hh"
#include "core/mlp_sim.hh"
#include "core/runner.hh"
#include "core/sweep.hh"
#include "stats/stats_json.hh"
#include "trace/generator.hh"
#include "trace/lock_detector.hh"
#include "trace/trace_file_source.hh"
#include "trace/trace_io.hh"
#include "trace/trace_source.hh"
#include "sim_test_util.hh"

using namespace storemlp;

namespace
{

constexpr uint64_t kWarmup = 20000;
constexpr uint64_t kMeasure = 40000;

uint64_t
fnv1a(const std::string &s)
{
    uint64_t h = 1469598103934665603ULL;
    for (unsigned char c : s) {
        h ^= c;
        h *= 1099511628211ULL;
    }
    return h;
}

/**
 * Hash a registry as its serialized document, with the envelope's
 * schemaVersion pinned to 1: the goldens were recorded before the v2
 * envelope existed, and the version token is presentation, not
 * simulation — pinning it keeps the pre-optimization anchors valid
 * across schema bumps.
 */
std::string
hashRegistry(const StatsRegistry &reg)
{
    std::string doc = statsToJson(reg, StatsMeta{}, false);
    const std::string tag =
        "\"schemaVersion\":" + std::to_string(kStatsSchemaVersion);
    size_t pos = doc.find(tag);
    if (pos != std::string::npos)
        doc.replace(pos, tag.size(), "\"schemaVersion\":1");
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%016llx",
                  static_cast<unsigned long long>(fnv1a(doc)));
    return buf;
}

std::string
hashRunOutput(const RunOutput &out)
{
    StatsRegistry reg;
    out.exportStats(reg);
    return hashRegistry(reg);
}

std::string
hashSimResult(const SimResult &res)
{
    StatsRegistry reg;
    res.exportStats(reg);
    return hashRegistry(reg);
}

RunSpec
baseSpec(SimConfig cfg)
{
    RunSpec spec;
    spec.profile = WorkloadProfile::database();
    spec.config = std::move(cfg);
    spec.warmupInsts = kWarmup;
    spec.measureInsts = kMeasure;
    return spec;
}

/** name -> stats hash, in deterministic order. */
using CaseMap = std::map<std::string, std::string>;

/**
 * The full case matrix. Kept in one function so the regen path and
 * the compare path can never drift apart.
 */
CaseMap
buildCases()
{
    CaseMap out;

    // ---- every shipped config, materialized path ----
    struct NamedCfg
    {
        const char *name;
        SimConfig cfg;
    };
    const NamedCfg shipped[] = {
        {"pc1", SimConfig::defaults()},
        {"pc2", SimConfig::pc2()},
        {"pc3", SimConfig::pc3()},
        {"wc1", SimConfig::wc1()},
        {"wc2", SimConfig::wc2()},
        {"wc3", SimConfig::wc3()},
        {"pc1_sp0", SimConfig::defaults().withPrefetch(StorePrefetch::None)},
        {"pc1_sp2",
         SimConfig::defaults().withPrefetch(StorePrefetch::AtExecute)},
        {"pc1_hws2", SimConfig::defaults().withScout(ScoutMode::Hws2)},
        {"wc1_hws1", SimConfig::wc1().withScout(ScoutMode::Hws1)},
    };
    for (const NamedCfg &nc : shipped) {
        RunSpec spec = baseSpec(nc.cfg);
        out[std::string("run/") + nc.name] = hashRunOutput(test::runMaterialized(spec));
    }

    // ---- transactional memory ----
    {
        RunSpec spec = baseSpec(SimConfig::defaults());
        spec.config.tm.enabled = true;
        out["run/tm"] = hashRunOutput(test::runMaterialized(spec));
    }

    // ---- machine variants: SMAC, peer traffic, sibling core ----
    {
        RunSpec spec = baseSpec(SimConfig::defaults());
        spec.numChips = 2;
        spec.peerTraffic = true;
        spec.smac = SmacConfig{};
        out["run/smac_peer"] = hashRunOutput(test::runMaterialized(spec));
    }
    {
        RunSpec spec = baseSpec(SimConfig::defaults());
        spec.numChips = 2;
        spec.peerTraffic = true;
        spec.siblingCore = true;
        spec.smac = SmacConfig{};
        out["run/smac_sibling"] = hashRunOutput(test::runMaterialized(spec));
    }

    // ---- streaming (generator / WC-rewrite sources), chunk sizes ----
    for (const char *model : {"pc", "wc"}) {
        SimConfig cfg = model[0] == 'p' ? SimConfig::defaults()
                                        : SimConfig::wc2();
        for (uint64_t chunk : {uint64_t{1}, uint64_t{7777}, uint64_t{0}}) {
            RunSpec spec = baseSpec(cfg);
            auto src = Runner::makeSource(spec, chunk);
            std::string name = std::string("stream/") + model + "_chunk" +
                std::to_string(chunk);
            out[name] = hashRunOutput(Runner::run(spec, *src));
        }
    }

    // ---- on-disk containers v1 / v3 / v4, direct simulator runs ----
    {
        SyntheticTraceGenerator gen(WorkloadProfile::database(), 7);
        Trace trace = gen.generate(kWarmup + kMeasure);
        LockAnalysis locks = LockDetector().analyze(trace);
        std::string base =
            ::testing::TempDir() + "hotloop_equiv_" +
            std::to_string(static_cast<unsigned>(::getpid()));
        std::string v1 = base + "_v1.trc";
        std::string v3 = base + "_v3.trc";
        std::string v4 = base + "_v4.trc";
        writeTraceFile(v1, trace);
        writeTraceFileV3(v3, trace, "hotloop", /*compressed=*/true);
        writeTraceFileV4(v4, trace, "hotloop");

        const SimConfig cfgs[] = {SimConfig::defaults(), SimConfig::pc3()};
        for (const SimConfig &cfg : cfgs) {
            // Materialized reference.
            {
                ChipNode chip(HierarchyConfig{}, 0);
                MlpSimulator sim(cfg, chip, &locks);
                out[std::string("file/") + cfg.name + "_mat"] =
                    hashSimResult(sim.run(trace, kWarmup));
            }
            struct FileCase
            {
                const char *tag;
                const std::string *path;
                uint64_t chunk;
            };
            const FileCase fcs[] = {
                {"v1_default", &v1, 0},  {"v1_chunk7777", &v1, 7777},
                {"v1_chunk1", &v1, 1},   {"v3_default", &v3, 0},
                {"v3_chunk7777", &v3, 7777}, {"v4_file", &v4, 0},
            };
            for (const FileCase &fc : fcs) {
                StreamingFileSource src(
                    *fc.path, fc.chunk ? fc.chunk : kDefaultChunkInsts);
                ChipNode chip(HierarchyConfig{}, 0);
                MlpSimulator sim(cfg, chip, &locks);
                out[std::string("file/") + cfg.name + "_" + fc.tag] =
                    hashSimResult(sim.run(src, kWarmup));
            }
        }
        std::remove(v1.c_str());
        std::remove(v3.c_str());
        std::remove(v4.c_str());
    }

    return out;
}

std::string
goldenPath()
{
#ifdef STOREMLP_HOTLOOP_GOLDEN
    return STOREMLP_HOTLOOP_GOLDEN;
#else
    return "hotloop.golden";
#endif
}

CaseMap
readGolden(const std::string &path)
{
    CaseMap out;
    std::ifstream in(path);
    std::string name, hash;
    while (in >> name >> hash)
        out[name] = hash;
    return out;
}

TEST(HotloopEquivalence, BitIdenticalAgainstGolden)
{
    CaseMap cases = buildCases();
    ASSERT_GE(cases.size(), 30u);

    if (std::getenv("STOREMLP_HOTLOOP_REGEN")) {
        std::ofstream outf(goldenPath());
        ASSERT_TRUE(outf.good()) << "cannot write " << goldenPath();
        for (const auto &[name, hash] : cases)
            outf << name << " " << hash << "\n";
        GTEST_SKIP() << "regenerated " << goldenPath();
    }

    CaseMap golden = readGolden(goldenPath());
    ASSERT_FALSE(golden.empty())
        << "golden file missing/empty: " << goldenPath()
        << " (regen with STOREMLP_HOTLOOP_REGEN=1)";
    EXPECT_EQ(golden.size(), cases.size());
    for (const auto &[name, hash] : cases) {
        auto it = golden.find(name);
        ASSERT_NE(it, golden.end()) << "no golden entry for " << name;
        EXPECT_EQ(it->second, hash)
            << name << ": SimResult diverged from pre-optimization golden";
    }
}

/**
 * Parallel sweep determinism through the restructured hot loop: the
 * same batch at jobs=1 and jobs=4, streamed and materialized, must be
 * bit-identical (and hit the same goldens as each other).
 */
TEST(HotloopEquivalence, SweepJobsAndStreamingAgree)
{
    std::vector<RunSpec> specs;
    for (const SimConfig &cfg :
         {SimConfig::defaults(), SimConfig::wc1(),
          SimConfig::defaults().withScout(ScoutMode::Hws2)}) {
        RunSpec spec = baseSpec(cfg);
        spec.warmupInsts = 10000;
        spec.measureInsts = 20000;
        specs.push_back(spec);
    }

    auto runWith = [&](unsigned jobs, bool streaming) {
        TraceCache cache;
        SweepOptions opts;
        opts.jobs = jobs;
        opts.progress = false;
        opts.streaming = streaming;
        SweepEngine engine(opts, &cache);
        return engine.run(specs);
    };

    auto ref = runWith(1, false);
    for (unsigned jobs : {1u, 4u}) {
        for (bool streaming : {false, true}) {
            auto got = runWith(jobs, streaming);
            ASSERT_EQ(got.size(), ref.size());
            for (size_t i = 0; i < ref.size(); ++i) {
                ASSERT_TRUE(got[i].ok);
                EXPECT_EQ(hashRunOutput(got[i].output),
                          hashRunOutput(ref[i].output))
                    << "spec " << i << " jobs=" << jobs
                    << " streaming=" << streaming;
            }
        }
    }
}

} // namespace
