/**
 * @file
 * Broad configuration-matrix test: every combination of the major
 * engine knobs runs to completion on a small workload and satisfies
 * the epoch-model accounting invariants. This is the regression net
 * for knob interactions (e.g. WC + scout + coalescing off).
 */

#include <gtest/gtest.h>

#include <tuple>

#include "core/runner.hh"
#include "sim_test_util.hh"

namespace storemlp
{
namespace
{

using MatrixParam = std::tuple<int /*prefetch*/, int /*model*/,
                               int /*scout*/, int /*elide*/,
                               int /*coalesce*/>;

class EngineMatrixTest : public testing::TestWithParam<MatrixParam>
{
};

TEST_P(EngineMatrixTest, RunsAndSatisfiesInvariants)
{
    auto [sp, model, scout, elide, coalesce] = GetParam();

    RunSpec spec;
    spec.profile = WorkloadProfile::testTiny();
    spec.config = SimConfig::defaults();
    spec.config.storePrefetch = static_cast<StorePrefetch>(sp);
    spec.config.memoryModel = model
        ? ModelDescriptor::wc()
        : ModelDescriptor::pc();
    spec.config.scout = static_cast<ScoutMode>(scout);
    if (elide == 1) {
        spec.config.sle = true;
    } else if (elide == 2) {
        spec.config.tm.enabled = true;
        spec.config.tm.abortProb = 0.5;
    }
    spec.config.coalesceBytes = coalesce ? 8 : 0;
    spec.warmupInsts = 20000;
    spec.measureInsts = 60000;

    SimResult res = test::runMaterialized(spec).sim;

    EXPECT_GE(res.instructions, 60000u);
    uint64_t term_sum = 0;
    for (unsigned i = 0; i < kNumTermConds; ++i)
        term_sum += res.termCounts[i];
    EXPECT_EQ(term_sum, res.epochs);
    EXPECT_EQ(res.mlpHist.total(), res.epochs);
    EXPECT_EQ(res.storeVsOtherMlp.total(), res.epochs);
    EXPECT_EQ(res.mlpHist.bucket(0), 0u);
    uint64_t misses = res.missLoads + res.missStores + res.missInsts;
    EXPECT_GE(misses, res.epochMisses);
    EXPECT_LE(res.overlappedStores,
              res.missStores + res.smacAcceleratedStores);
}

std::string
matrixName(const testing::TestParamInfo<MatrixParam> &info)
{
    auto [sp, model, scout, elide, coalesce] = info.param;
    static const char *sps[] = {"Sp0", "Sp1", "Sp2"};
    static const char *scouts[] = {"NoHws", "Hws0", "Hws1", "Hws2"};
    static const char *elides[] = {"Plain", "Sle", "Tm"};
    std::string s = sps[sp];
    s += model ? "Wc" : "Pc";
    s += scouts[scout];
    s += elides[elide];
    s += coalesce ? "Coal" : "NoCoal";
    return s;
}

INSTANTIATE_TEST_SUITE_P(
    AllKnobs, EngineMatrixTest,
    testing::Combine(testing::Range(0, 3),  // prefetch
                     testing::Range(0, 2),  // model
                     testing::Range(0, 4),  // scout
                     testing::Range(0, 3),  // plain/SLE/TM
                     testing::Range(0, 2)), // coalescing
    matrixName);

} // namespace
} // namespace storemlp
