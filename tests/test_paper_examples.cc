/**
 * @file
 * Integration tests reproducing the paper's worked examples (Section
 * 3): the epoch sets, epoch counts and MLP values of Examples 1-6 and
 * the store-prefetching variants of Example 4.
 */

#include <gtest/gtest.h>

#include "sim_test_util.hh"
#include "trace/rewriter.hh"

namespace storemlp
{
namespace
{

using namespace storemlp::test;

// Example 1: missing store; 4 other stores; missing load.
// SB=2, SQ=2, PC, no prefetching. Epoch sets {{I1}, {I2..I6}}: two
// epochs, MLP = (1+1)/2 = 1.
Trace
example1Trace()
{
    TraceBuilder b;
    b.store(missAddr(0), 2);  // I1 missing store
    b.store(warmAddr(1), 3);  // I2
    b.store(warmAddr(2), 4);  // I3
    b.store(warmAddr(3), 5);  // I4
    b.store(warmAddr(4), 6);  // I5
    b.load(missAddr(1), 7);   // I6 missing load
    fillers(b, 80);
    return b.build();
}

TEST(PaperExample1, PcTwoEpochsMlpOne)
{
    SimRig rig;
    SimResult res = rig.run(example1Trace(), exampleConfig());

    EXPECT_EQ(res.epochs, 2u);
    EXPECT_EQ(res.epochMisses, 2u);
    EXPECT_DOUBLE_EQ(res.mlp(), 1.0);
    EXPECT_EQ(res.missStores, 1u);
    EXPECT_EQ(res.missLoads, 1u);
    // First epoch: store buffer full preceded by store queue full.
    EXPECT_EQ(res.termCounts[static_cast<unsigned>(
                  TermCond::SqStoreBufferFull)],
              1u);
    EXPECT_EQ(res.termCounts[static_cast<unsigned>(TermCond::WindowFull)],
              1u);
}

// Example 1 under weak consistency: "stores I2..I5 can commit even
// while the missing store I1 is waiting ... the missing load I6 can
// issue in the first epoch, reducing the number of epochs from two to
// one."
TEST(PaperExample1, WcOneEpochMlpTwo)
{
    SimRig rig;
    SimConfig cfg = exampleConfig();
    cfg.memoryModel = ModelDescriptor::wc();
    SimResult res = rig.run(example1Trace(), cfg);

    EXPECT_EQ(res.epochs, 1u);
    EXPECT_EQ(res.epochMisses, 2u);
    EXPECT_DOUBLE_EQ(res.mlp(), 2.0);
}

// Example 2: missing store; serializing instruction; missing load.
// Epoch sets {{I1}, {I2, I3}}: two epochs, MLP 1.
TEST(PaperExample2, SerializingInstructionSplitsEpochs)
{
    TraceBuilder b;
    b.store(missAddr(0), 2); // I1 missing store
    b.membar();              // I2 serializing
    b.load(missAddr(1), 3);  // I3 missing load
    fillers(b, 80);

    SimRig rig;
    SimResult res = rig.run(b.build(), exampleConfig());

    EXPECT_EQ(res.epochs, 2u);
    EXPECT_EQ(res.epochMisses, 2u);
    EXPECT_DOUBLE_EQ(res.mlp(), 1.0);
    // The first epoch ends in store serialize: the serializing
    // instruction was preceded by a missing store, not a missing load.
    EXPECT_EQ(res.termCounts[static_cast<unsigned>(
                  TermCond::StoreSerialize)],
              1u);
}

// Example 3: missing load; missing store; missing instruction;
// missing store. Epoch sets {{I1,I3}, {I2,I3}, {I4}}: three epochs,
// MLP = (2+1+1)/3 = 1.33. (A trailing membar materializes the stalls
// the example implies; it adds no off-chip accesses of its own.)
TEST(PaperExample3, InstructionMissOverlapsWithLoadMiss)
{
    TraceBuilder b;
    b.load(missAddr(0), 2);            // I1 missing load
    b.store(missAddr(1), 3);           // I2 missing store
    b.alu().atPc(missPc(0));           // I3 missing instruction
    b.store(missAddr(2), 4).atPc(0x2000); // I4 (back in warm code)
    b.membar();
    fillers(b, 10);

    SimRig rig;
    SimConfig cfg = exampleConfig();
    cfg.storeQueueSize = 32;
    cfg.storeBufferSize = 16;
    SimResult res = rig.run(b.build(), cfg);

    EXPECT_EQ(res.epochs, 3u);
    EXPECT_EQ(res.epochMisses, 4u);
    EXPECT_NEAR(res.mlp(), 4.0 / 3.0, 1e-9);
    EXPECT_EQ(res.missLoads, 1u);
    EXPECT_EQ(res.missStores, 2u);
    EXPECT_EQ(res.missInsts, 1u);
    // The first epoch ends at the instruction miss and contains two
    // misses (the load I1 and the instruction fetch I3).
    EXPECT_EQ(res.termCounts[static_cast<unsigned>(
                  TermCond::InstructionMiss)],
              1u);
    EXPECT_EQ(res.mlpHist.bucket(2), 1u);
    EXPECT_EQ(res.mlpHist.bucket(1), 2u);
}

// Example 4: three missing stores before a serializing instruction.
// No prefetching: {{I1},{I2},{I3}}; prefetch at retire: {{I1,I2},{I3}};
// prefetch at execute: {{I1,I2,I3}}.
Trace
example4Trace()
{
    TraceBuilder b;
    b.store(missAddr(0), 2); // I1
    b.store(missAddr(1), 3); // I2
    b.store(missAddr(2), 4); // I3
    b.membar();              // I4 serializing
    fillers(b, 10);
    return b.build();
}

TEST(PaperExample4, NoPrefetchThreeEpochs)
{
    SimRig rig;
    SimConfig cfg = exampleConfig();
    cfg.storePrefetch = StorePrefetch::None;
    SimResult res = rig.run(example4Trace(), cfg);
    EXPECT_EQ(res.epochs, 3u);
    EXPECT_EQ(res.epochMisses, 3u);
    EXPECT_DOUBLE_EQ(res.storeMlp(), 1.0);
}

TEST(PaperExample4, PrefetchAtRetireTwoEpochs)
{
    SimRig rig;
    SimConfig cfg = exampleConfig();
    cfg.storePrefetch = StorePrefetch::AtRetire;
    SimResult res = rig.run(example4Trace(), cfg);
    EXPECT_EQ(res.epochs, 2u);
    EXPECT_EQ(res.epochMisses, 3u);
    // First epoch overlaps I1 and I2 (both in the store queue).
    EXPECT_EQ(res.storeMlpHist.bucket(2), 1u);
    EXPECT_EQ(res.storeMlpHist.bucket(1), 1u);
}

TEST(PaperExample4, PrefetchAtExecuteOneEpoch)
{
    SimRig rig;
    SimConfig cfg = exampleConfig();
    cfg.storePrefetch = StorePrefetch::AtExecute;
    SimResult res = rig.run(example4Trace(), cfg);
    EXPECT_EQ(res.epochs, 1u);
    EXPECT_EQ(res.epochMisses, 3u);
    EXPECT_DOUBLE_EQ(res.storeMlp(), 3.0);
}

// Example 4 with the SMAC: "assume that I2 and I3 hit in the SMAC
// ... all three stores can proceed in the same epoch." With ownership
// retained on chip, the SMAC-hit stores never stall the queue.
TEST(PaperExample4, SmacHitsEliminateStalls)
{
    SmacConfig smac_cfg;
    smac_cfg.entries = 1024;
    SimRig rig(smac_cfg);

    // Give the SMAC ownership of I2's and I3's lines.
    rig.chip.smac()->installEvicted(missAddr(1));
    rig.chip.smac()->installEvicted(missAddr(2));

    SimConfig cfg = exampleConfig();
    cfg.storePrefetch = StorePrefetch::None;
    SimResult res = rig.run(example4Trace(), cfg);

    // Only I1's miss can stall; I2/I3 commit without waiting.
    EXPECT_EQ(res.epochs, 1u);
    EXPECT_EQ(res.smacAcceleratedStores, 2u);
}

// Example 5 (PC critical section): missing store; casa; missing load;
// missing store; ...; release store; missing load. With prefetch at
// execute the paper's grouping {{I1}, {I2,I3,I4,I7}} emerges: the
// casa waits for I1, then the three remaining misses overlap.
TEST(PaperExample5, PcCriticalSectionGrouping)
{
    uint64_t lock = warmAddr(0);
    TraceBuilder b;
    b.store(missAddr(0), 2);                      // I1 missing store
    b.casa(lock, 3).withFlags(kFlagLockAcquire);  // I2 lock acquire
    b.load(missAddr(1), 4);                       // I3 missing load
    b.store(missAddr(2), 5);                      // I4 missing store
    b.alu();                                      // I5 ...
    b.store(lock, 6).withFlags(kFlagLockRelease); // I6 lock release
    b.load(missAddr(3), 7);                       // I7 missing load
    fillers(b, 80);

    SimRig rig;
    SimConfig cfg = exampleConfig();
    cfg.storeQueueSize = 32;
    cfg.storeBufferSize = 16;
    cfg.storePrefetch = StorePrefetch::AtExecute;
    SimResult res = rig.run(b.build(), cfg);

    EXPECT_EQ(res.epochs, 2u);
    EXPECT_EQ(res.epochMisses, 4u);
    // First epoch: just I1. Second: I3, I4, I7 overlapping.
    EXPECT_EQ(res.mlpHist.bucket(1), 1u);
    EXPECT_EQ(res.mlpHist.bucket(3), 1u);
    EXPECT_EQ(res.termCounts[static_cast<unsigned>(
                  TermCond::StoreSerialize)],
              1u);
}

// Example 6 (WC critical section): the isync acquire does NOT wait
// for the missing store I1 to drain, so all four misses overlap in a
// single epoch: {{I1,I2,I3,I4,I5,I8}, {I6,I7}}.
TEST(PaperExample6, WcCriticalSectionSingleEpoch)
{
    uint64_t lock = warmAddr(0);
    TraceBuilder b;
    b.store(missAddr(0), 2);                        // I1 missing store
    b.loadLocked(lock, 3);                          // I2 lock acquire
    b.storeCond(lock, 3);
    b.isync();                                      // I3
    b.load(missAddr(1), 4);                         // I4 missing load
    b.store(missAddr(2), 5);                        // I5 missing store
    b.lwsync();                                     // I6
    b.store(lock, 6).withFlags(kFlagLockRelease);   // I7 lock release
    b.load(missAddr(3), 7);                         // I8 missing load
    fillers(b, 80);

    SimRig rig;
    SimConfig cfg = exampleConfig();
    cfg.memoryModel = ModelDescriptor::wc();
    cfg.storeQueueSize = 32;
    cfg.storeBufferSize = 16;
    // Prefetch at execute lets I5's miss issue while the missing load
    // I4 still blocks its retirement (as in the Example 5 test).
    cfg.storePrefetch = StorePrefetch::AtExecute;
    SimResult res = rig.run(b.build(), cfg);

    EXPECT_EQ(res.epochs, 1u);
    EXPECT_EQ(res.epochMisses, 4u);
    EXPECT_DOUBLE_EQ(res.mlp(), 4.0);
}

// The same critical section under PC takes more epochs than under WC
// (the paper's central consistency-gap observation).
TEST(PaperExample56, PcWorseThanWc)
{
    uint64_t lock = warmAddr(0);
    auto build = [&]() {
        TraceBuilder b;
        b.store(missAddr(0), 2);
        b.casa(lock, 3).withFlags(kFlagLockAcquire);
        b.load(missAddr(1), 4);
        b.store(missAddr(2), 5);
        b.store(lock, 6).withFlags(kFlagLockRelease);
        b.load(missAddr(3), 7);
        fillers(b, 80);
        return b.build();
    };

    SimConfig pc = exampleConfig();
    pc.storeQueueSize = 32;
    pc.storeBufferSize = 16;
    pc.storePrefetch = StorePrefetch::AtRetire;

    SimRig rig_pc;
    SimResult res_pc = rig_pc.run(build(), pc);

    SimConfig wc = pc;
    wc.memoryModel = ModelDescriptor::wc();
    SimRig rig_wc;
    // The WC run uses the rewritten rendition of the same code.
    Trace wc_trace = TraceRewriter().toWeakConsistency(build());
    SimResult res_wc = rig_wc.run(wc_trace, wc);

    EXPECT_GT(res_pc.epochs, res_wc.epochs);
}

} // namespace
} // namespace storemlp
