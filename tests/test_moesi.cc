/**
 * @file
 * Tests for the MOESI protocol extension (paper Section 3.3.3: the
 * SMAC scheme "can be easily extended to the MOESI protocol").
 */

#include <gtest/gtest.h>

#include "coherence/bus.hh"
#include "coherence/chip.hh"

namespace storemlp
{
namespace
{

MesiState
l2State(ChipNode &chip, uint64_t line)
{
    auto st = chip.hierarchy().l2().probeState(line);
    return st ? static_cast<MesiState>(*st) : MesiState::Invalid;
}

struct MoesiPair
{
    SnoopBus bus;
    ChipNode a{HierarchyConfig{}, 0, std::nullopt,
               CoherenceProtocol::Moesi};
    ChipNode b{HierarchyConfig{}, 1, std::nullopt,
               CoherenceProtocol::Moesi};

    MoesiPair()
    {
        a.connect(&bus);
        b.connect(&bus);
    }
};

TEST(Moesi, RemoteReadKeepsDirtyLineOwned)
{
    MoesiPair m;
    m.a.store(0x10000); // Modified in a
    m.b.load(0x10000);  // remote read
    // MOESI: the dirty line stays on chip a in Owned state.
    EXPECT_EQ(l2State(m.a, 0x10000), MesiState::Owned);
    EXPECT_EQ(l2State(m.b, 0x10000), MesiState::Shared);
}

TEST(Moesi, MesiWritesBackInstead)
{
    SnoopBus bus;
    ChipNode a(HierarchyConfig{}, 0); // MESI default
    ChipNode b(HierarchyConfig{}, 1);
    a.connect(&bus);
    b.connect(&bus);
    a.store(0x10000);
    b.load(0x10000);
    EXPECT_EQ(l2State(a, 0x10000), MesiState::Shared);
}

TEST(Moesi, FurtherReadsLeaveOwnerAlone)
{
    SnoopBus bus;
    ChipNode a(HierarchyConfig{}, 0, std::nullopt,
               CoherenceProtocol::Moesi);
    ChipNode b(HierarchyConfig{}, 1, std::nullopt,
               CoherenceProtocol::Moesi);
    ChipNode c(HierarchyConfig{}, 2, std::nullopt,
               CoherenceProtocol::Moesi);
    a.connect(&bus);
    b.connect(&bus);
    c.connect(&bus);

    a.store(0x20000);
    b.load(0x20000);
    c.load(0x20000);
    EXPECT_EQ(l2State(a, 0x20000), MesiState::Owned);
    EXPECT_EQ(l2State(c, 0x20000), MesiState::Shared);
}

TEST(Moesi, StoreToOwnedLineUpgrades)
{
    MoesiPair m;
    m.a.store(0x30000);
    m.b.load(0x30000); // a: Owned, b: Shared
    uint64_t upgr = m.bus.upgrades();
    auto out = m.a.store(0x30000); // write again: must invalidate b
    EXPECT_NE(out.level, MissLevel::OffChip);
    EXPECT_EQ(m.bus.upgrades(), upgr + 1);
    EXPECT_EQ(l2State(m.a, 0x30000), MesiState::Modified);
    EXPECT_FALSE(m.b.hierarchy().l2Probe(0x30000));
}

TEST(Moesi, RemoteStoreInvalidatesOwnedCopy)
{
    MoesiPair m;
    m.a.store(0x40000);
    m.b.load(0x40000); // a: Owned, b: Shared
    // b already holds a Shared copy: its store is an L2 hit that
    // upgrades via the bus and invalidates a's Owned copy.
    uint64_t upgr = m.bus.upgrades();
    auto out = m.b.store(0x40000);
    EXPECT_NE(out.level, MissLevel::OffChip);
    EXPECT_EQ(m.bus.upgrades(), upgr + 1);
    EXPECT_FALSE(m.a.hierarchy().l2Probe(0x40000));
    EXPECT_EQ(l2State(m.b, 0x40000), MesiState::Modified);
}

TEST(Moesi, OwnedEvictionDoesNotClaimSmacOwnership)
{
    SnoopBus bus;
    SmacConfig smac_cfg;
    smac_cfg.entries = 1024;
    ChipNode a(HierarchyConfig{}, 0, smac_cfg,
               CoherenceProtocol::Moesi);
    ChipNode b(HierarchyConfig{}, 1, std::nullopt,
               CoherenceProtocol::Moesi);
    a.connect(&bus);
    b.connect(&bus);

    a.store(0x50000); // Modified
    b.load(0x50000);  // a: Owned (b holds a shared copy!)
    // Evict the Owned line from a's L2 by filling the set.
    for (int i = 1; i <= 5; ++i)
        a.load(0x50000 + i * 512 * 1024);
    // The line is dirty, but shared by b: the SMAC must NOT retain
    // exclusive ownership.
    EXPECT_FALSE(a.smac()->ownsLine(0x50000));
}

TEST(Moesi, ModifiedEvictionStillPopulatesSmac)
{
    SmacConfig smac_cfg;
    smac_cfg.entries = 1024;
    ChipNode a(HierarchyConfig{}, 0, smac_cfg,
               CoherenceProtocol::Moesi);
    a.store(0x60000);
    for (int i = 1; i <= 5; ++i)
        a.load(0x60000 + i * 512 * 1024);
    EXPECT_TRUE(a.smac()->ownsLine(0x60000));
}

TEST(Moesi, OwnedLineAnswersAsDirtyTransfer)
{
    // Regression: the bus only flagged remoteModified for Modified
    // lines, but under MOESI a dirty line demoted to Owned by a
    // remote read is still the data supplier — a later read must be
    // reported as a dirty cache-to-cache transfer too.
    MoesiPair m;
    m.a.store(0x70000); // a: Modified
    m.b.load(0x70000);  // a: Owned, b: Shared
    ASSERT_EQ(l2State(m.a, 0x70000), MesiState::Owned);

    uint64_t before = m.bus.dirtyTransfers();
    BusRequest req;
    req.kind = BusRequest::Kind::Rd;
    req.line = m.a.hierarchy().lineAddr(0x70000);
    req.srcChip = 1;
    BusResponse resp = m.bus.request(req);
    EXPECT_TRUE(resp.remoteHad);
    EXPECT_TRUE(resp.remoteModified)
        << "an Owned remote line is dirty and supplies the data";
    EXPECT_EQ(m.bus.dirtyTransfers(), before + 1);
}

TEST(Moesi, ModifiedLineCountsDirtyTransferOnRemoteRead)
{
    MoesiPair m;
    m.a.store(0x80000); // a: Modified
    uint64_t before = m.bus.dirtyTransfers();
    m.b.load(0x80000);  // remote read hits the dirty line
    EXPECT_EQ(m.bus.dirtyTransfers(), before + 1);
}

TEST(Moesi, CleanRemoteLineIsNotADirtyTransfer)
{
    MoesiPair m;
    m.a.load(0x90000);  // a: Exclusive (clean)
    uint64_t before = m.bus.dirtyTransfers();
    m.b.load(0x90000);
    EXPECT_EQ(m.bus.dirtyTransfers(), before);
}

TEST(Moesi, ProtocolAccessorsReport)
{
    ChipNode mesi(HierarchyConfig{}, 0);
    ChipNode moesi(HierarchyConfig{}, 1, std::nullopt,
                   CoherenceProtocol::Moesi);
    EXPECT_EQ(mesi.protocol(), CoherenceProtocol::Mesi);
    EXPECT_EQ(moesi.protocol(), CoherenceProtocol::Moesi);
    EXPECT_STREQ(mesiName(MesiState::Owned), "O");
}

} // namespace
} // namespace storemlp
