/**
 * @file
 * Tests for the dual-core runner (two full epoch engines sharing one
 * L2, the paper's Section 4.3 chip configuration).
 */

#include <gtest/gtest.h>

#include <vector>

#include "core/dual_core.hh"
#include "core/runner.hh"
#include "sim_test_util.hh"

namespace storemlp
{
namespace
{

DualRunSpec
tinySpec()
{
    DualRunSpec spec;
    spec.profile = WorkloadProfile::testTiny();
    spec.config = SimConfig::defaults();
    spec.warmupInsts = 50 * 1000;
    spec.measureInsts = 100 * 1000;
    return spec;
}

TEST(DualCore, BothCoresMeasure)
{
    DualRunOutput out = DualCoreRunner::run(tinySpec());
    EXPECT_GT(out.core0.instructions, 90 * 1000u);
    EXPECT_GT(out.core1.instructions, 90 * 1000u);
    EXPECT_GT(out.core0.epochs, 0u);
    EXPECT_GT(out.core1.epochs, 0u);
    EXPECT_GT(out.combinedEpochsPer1000(), 0.0);
}

TEST(DualCore, Deterministic)
{
    DualRunOutput a = DualCoreRunner::run(tinySpec());
    DualRunOutput b = DualCoreRunner::run(tinySpec());
    EXPECT_EQ(a.core0.epochs, b.core0.epochs);
    EXPECT_EQ(a.core1.epochs, b.core1.epochs);
    EXPECT_EQ(a.core0.epochMisses, b.core0.epochMisses);
}

TEST(DualCore, CoresSeeDifferentStreams)
{
    DualRunOutput out = DualCoreRunner::run(tinySpec());
    // Different seeds and region ids: the cores' statistics differ.
    EXPECT_NE(out.core0.epochMisses, out.core1.epochMisses);
}

TEST(DualCore, SharingRaisesPressureOverSoloCore)
{
    // The same core 0 workload, alone on the chip, should see no more
    // misses than when a sibling competes for the shared L2.
    DualRunSpec dspec;
    dspec.profile = WorkloadProfile::database();
    dspec.config = SimConfig::defaults();
    dspec.warmupInsts = 300 * 1000;
    dspec.measureInsts = 400 * 1000;
    DualRunOutput dual = DualCoreRunner::run(dspec);

    RunSpec solo;
    solo.profile = dspec.profile;
    solo.config = dspec.config;
    solo.warmupInsts = dspec.warmupInsts;
    solo.measureInsts = dspec.measureInsts;
    RunOutput alone = test::runMaterialized(solo);

    uint64_t dual_misses = dual.core0.missLoads + dual.core0.missStores;
    uint64_t solo_misses =
        alone.sim.missLoads + alone.sim.missStores;
    EXPECT_GE(dual_misses * 102, solo_misses * 100)
        << "sharing the L2 should not reduce core 0's misses";
}

TEST(DualCore, QuantumDoesNotChangeTotalsMuch)
{
    DualRunSpec a = tinySpec();
    a.quantum = 64;
    DualRunSpec b = tinySpec();
    b.quantum = 1024;
    DualRunOutput ra = DualCoreRunner::run(a);
    DualRunOutput rb = DualCoreRunner::run(b);
    // Interleaving granularity perturbs cache interleaving slightly
    // but must not change the picture.
    double ea = ra.combinedEpochsPer1000();
    double eb = rb.combinedEpochsPer1000();
    EXPECT_NEAR(ea, eb, 0.25 * std::max(ea, eb));
}

TEST(DualCore, WarmupBoundaryExactWhenQuantumDoesNotDivide)
{
    // Regression: the runner used to hand whole quanta to the
    // simulator with collection flipped per quantum, so a warmup that
    // is not a multiple of the quantum (50000 % 256 = 80,
    // 50000 % 192 = 72) measured the trailing warmup records. The
    // measured instruction count must be streamLen - warmup no matter
    // the interleaving granularity.
    std::vector<uint64_t> quanta = {1, 64, 256, 192};
    std::vector<DualRunOutput> outs;
    for (uint64_t q : quanta) {
        DualRunSpec spec = tinySpec();
        spec.quantum = q;
        outs.push_back(DualCoreRunner::run(spec));
    }
    for (size_t i = 1; i < outs.size(); ++i) {
        EXPECT_EQ(outs[i].core0.instructions, outs[0].core0.instructions)
            << "quantum " << quanta[i];
        EXPECT_EQ(outs[i].core1.instructions, outs[0].core1.instructions)
            << "quantum " << quanta[i];
    }
}

TEST(DualCore, WeakConsistencySupported)
{
    DualRunSpec spec = tinySpec();
    spec.config.memoryModel = ModelDescriptor::wc();
    DualRunOutput out = DualCoreRunner::run(spec);
    EXPECT_GT(out.core0.epochs, 0u);
}

} // namespace
} // namespace storemlp
