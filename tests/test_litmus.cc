/**
 * @file
 * Litmus-test matrix: which classic relaxed outcomes (store
 * buffering, message passing, load buffering) each memory-model
 * descriptor admits, and that the fenced variants of the idioms are
 * forbidden everywhere. This pins the architectural semantics of
 * every shipped preset — the timing engine is covered separately by
 * the golden-hash suite.
 */

#include <gtest/gtest.h>

#include "consistency/litmus.hh"
#include "consistency/memory_model.hh"
#include "trace/generator.hh"
#include "util/error.hh"

namespace storemlp
{
namespace
{

bool
allows(const ModelDescriptor &m, LitmusIdiom idiom, bool fenced)
{
    LitmusProgram prog = litmusProgram(
        idiom, m.dialect == TraceDialect::Power, fenced);
    return litmusAllowsRelaxed(prog, m);
}

struct MatrixRow
{
    ModelDescriptor model;
    bool sb; ///< store buffering admitted?
    bool mp; ///< message passing reordering admitted?
    bool lb; ///< load buffering admitted?
};

TEST(Litmus, PresetMatrix)
{
    // The load-ordering axes and the commit order fully determine the
    // three idioms:
    //   SB needs store->load reordering (every store buffer has it,
    //      SC forbids it);
    //   MP needs the writer's stores or the reader's loads out of
    //      order (weak commit or relaxed load->load);
    //   LB needs load->store reordering (WMM's in-order execution
    //      point forbids it even though its stores commit weakly).
    const MatrixRow rows[] = {
        {ModelDescriptor::pc(), true, false, false},
        {ModelDescriptor::wc(), true, true, true},
        {ModelDescriptor::rmo(), true, true, true},
        {ModelDescriptor::wmm(), true, true, false},
        {ModelDescriptor::sc(), false, false, false},
    };
    for (const MatrixRow &r : rows) {
        EXPECT_EQ(allows(r.model, LitmusIdiom::StoreBuffering, false),
                  r.sb)
            << r.model.name << " SB";
        EXPECT_EQ(allows(r.model, LitmusIdiom::MessagePassing, false),
                  r.mp)
            << r.model.name << " MP";
        EXPECT_EQ(allows(r.model, LitmusIdiom::LoadBuffering, false),
                  r.lb)
            << r.model.name << " LB";
    }
}

TEST(Litmus, FencedVariantsForbiddenEverywhere)
{
    // Full fences between the accesses restore SC per idiom: no
    // preset may admit the relaxed outcome of a fenced test.
    for (const ModelDescriptor &m : ModelDescriptor::presets()) {
        for (LitmusIdiom idiom :
             {LitmusIdiom::StoreBuffering, LitmusIdiom::MessagePassing,
              LitmusIdiom::LoadBuffering}) {
            EXPECT_FALSE(allows(m, idiom, true))
                << m.name << " fenced idiom "
                << static_cast<int>(idiom);
        }
    }
}

TEST(Litmus, ScOutcomesAreSubsetOfEveryPreset)
{
    // Relaxation only adds behaviours: every outcome reachable under
    // SC must stay reachable under every weaker preset.
    for (const ModelDescriptor &m : ModelDescriptor::presets()) {
        for (LitmusIdiom idiom :
             {LitmusIdiom::StoreBuffering, LitmusIdiom::MessagePassing,
              LitmusIdiom::LoadBuffering}) {
            ModelDescriptor sc = ModelDescriptor::sc();
            sc.dialect = m.dialect; // compare over the same trace
            LitmusProgram prog = litmusProgram(
                idiom, m.dialect == TraceDialect::Power, false);
            std::set<LitmusOutcome> strong =
                litmusOutcomes(prog, sc);
            std::set<LitmusOutcome> weak = litmusOutcomes(prog, m);
            for (const LitmusOutcome &o : strong)
                EXPECT_TRUE(weak.count(o))
                    << m.name << " idiom " << static_cast<int>(idiom);
        }
    }
}

TEST(Litmus, SbOutcomeSetUnderSc)
{
    // SC store buffering: {0,1}, {1,0}, {1,1} reachable; {0,0} (the
    // relaxed outcome) is not.
    LitmusProgram prog =
        litmusProgram(LitmusIdiom::StoreBuffering, false, false);
    std::set<LitmusOutcome> outs =
        litmusOutcomes(prog, ModelDescriptor::sc());
    EXPECT_EQ(outs.size(), 3u);
    EXPECT_FALSE(outs.count(prog.relaxedOutcome));
    EXPECT_TRUE(outs.count(LitmusOutcome{0, 1}));
    EXPECT_TRUE(outs.count(LitmusOutcome{1, 0}));
    EXPECT_TRUE(outs.count(LitmusOutcome{1, 1}));
}

TEST(Litmus, SbGainsExactlyTheRelaxedOutcomeUnderPc)
{
    LitmusProgram prog =
        litmusProgram(LitmusIdiom::StoreBuffering, false, false);
    std::set<LitmusOutcome> outs =
        litmusOutcomes(prog, ModelDescriptor::pc());
    EXPECT_EQ(outs.size(), 4u);
    EXPECT_TRUE(outs.count(prog.relaxedOutcome));
}

TEST(Litmus, ProgramNamesEncodeDialectAndFencing)
{
    EXPECT_EQ(
        litmusProgram(LitmusIdiom::StoreBuffering, false, false).name,
        "SB.sparc");
    EXPECT_EQ(
        litmusProgram(LitmusIdiom::MessagePassing, true, true).name,
        "MP.power+fence");
}

TEST(Descriptor, ParseSpecRoundTripForPresets)
{
    for (const ModelDescriptor &m : ModelDescriptor::presets()) {
        ModelDescriptor r = ModelDescriptor::parse(m.spec());
        EXPECT_TRUE(r.sameRules(m)) << m.name;
        EXPECT_EQ(r.name, m.name) << m.name;
    }
}

TEST(Descriptor, ParseSpecRoundTripForCustom)
{
    ModelDescriptor m =
        ModelDescriptor::parse("wc,commit=inorder,isync=none");
    EXPECT_EQ(m.name, "custom");
    ModelDescriptor r = ModelDescriptor::parse(m.spec());
    EXPECT_TRUE(r.sameRules(m));
}

TEST(Descriptor, CustomizedPresetRecoversPresetName)
{
    // Overriding a preset with its own values is still the preset.
    ModelDescriptor m = ModelDescriptor::parse("pc,coalesce=tail");
    EXPECT_EQ(m.name, "PC");
    EXPECT_EQ(m, ModelDescriptor::pc());
}

TEST(Descriptor, ParseRejectsBadInput)
{
    EXPECT_THROW(ModelDescriptor::parse("bogus"), ConfigError);
    EXPECT_THROW(ModelDescriptor::parse("pc,frobnicate=yes"),
                 ConfigError);
    EXPECT_THROW(ModelDescriptor::parse("pc,commit=sideways"),
                 ConfigError);
    EXPECT_THROW(ModelDescriptor::parse(""), ConfigError);
}

TEST(Descriptor, FindPresetIsCaseInsensitiveAndKnowsTso)
{
    ASSERT_NE(ModelDescriptor::findPreset("WC"), nullptr);
    ASSERT_NE(ModelDescriptor::findPreset("wc"), nullptr);
    ASSERT_NE(ModelDescriptor::findPreset("tso"), nullptr);
    EXPECT_EQ(ModelDescriptor::findPreset("tso")->name, "PC");
    EXPECT_EQ(ModelDescriptor::findPreset("nope"), nullptr);
}

} // namespace
} // namespace storemlp
