/**
 * @file
 * Unit tests for the on-chip CPI model (Section 3.4).
 */

#include <gtest/gtest.h>

#include "core/cpi_model.hh"
#include "core/sim_result.hh"
#include "trace/generator.hh"

namespace storemlp
{
namespace
{

TEST(CpiModel, EmptyTraceIsZero)
{
    CpiModel m;
    CpiModel::Breakdown b = m.evaluate(Trace());
    EXPECT_DOUBLE_EQ(b.total(), 0.0);
}

TEST(CpiModel, AllHitAluStreamIsBaseCpi)
{
    TraceBuilder tb;
    for (int i = 0; i < 2000; ++i)
        tb.alu(1, 2, 3).atPc(0x1000); // one fetch line: no L1I misses
    CpiModel m;
    CpiModel::Breakdown b = m.evaluate(tb.build(), 1000);
    EXPECT_DOUBLE_EQ(b.loadUse, 0.0);
    EXPECT_DOUBLE_EQ(b.l1dMiss, 0.0);
    EXPECT_DOUBLE_EQ(b.branch, 0.0);
    EXPECT_NEAR(b.total(), m.params().baseCpi, 1e-9);
}

TEST(CpiModel, LoadsAddLoadUseComponent)
{
    TraceBuilder tb;
    for (int i = 0; i < 2000; ++i)
        tb.load(0x1000, 1).atPc(0x1000); // one data+fetch line
    CpiModel m;
    CpiModel::Breakdown b = m.evaluate(tb.build(), 1000);
    EXPECT_GT(b.loadUse, 0.0);
    EXPECT_DOUBLE_EQ(b.l1dMiss, 0.0);
}

TEST(CpiModel, L1ThrashingAddsL1dComponent)
{
    // Loads striding over 256KB: mostly L1 misses (32KB L1).
    TraceBuilder tb;
    for (int i = 0; i < 8000; ++i)
        tb.load(0x100000 + (i % 4096) * 64, 1);
    CpiModel m;
    CpiModel::Breakdown b = m.evaluate(tb.build(), 4000);
    EXPECT_GT(b.l1dMiss, 0.1);
}

TEST(CpiModel, MispredictsAddBranchComponent)
{
    // Branches with alternating outcomes at many different pcs: the
    // cold predictor mispredicts plenty.
    TraceBuilder tb;
    for (int i = 0; i < 4000; ++i)
        tb.branch(i % 3 == 0, 1).atPc(0x1000 + (i % 512) * 64);
    CpiModel m;
    CpiModel::Breakdown b = m.evaluate(tb.build(), 0);
    EXPECT_GT(b.branch, 0.0);
}

TEST(CpiModel, StoresDoNotStallOnChip)
{
    // Write-through no-write-allocate L1D: a pure store stream adds
    // nothing beyond base CPI.
    TraceBuilder tb;
    for (int i = 0; i < 2000; ++i)
        tb.store(0x200000 + i * 64, 1).atPc(0x1000);
    CpiModel m;
    CpiModel::Breakdown b = m.evaluate(tb.build(), 1000);
    EXPECT_NEAR(b.total(), m.params().baseCpi, 1e-9);
}

TEST(CpiModel, OverallCpiComposition)
{
    // CPIoverall = CPIon-chip(1-overlap) + EPI x MissPenalty: check
    // the off-chip term from SimResult composes linearly.
    SimResult res;
    res.instructions = 1000;
    res.epochs = 5;
    EXPECT_NEAR(res.offChipCpi(500), 2.5, 1e-12);
}

TEST(CpiModel, ParamsArePluggable)
{
    CpiModelParams params;
    params.baseCpi = 1.5;
    CpiModel m(params);
    TraceBuilder tb;
    for (int i = 0; i < 100; ++i)
        tb.alu().atPc(0x1000);
    // One compulsory L1I miss on the single line; warm past it.
    EXPECT_NEAR(m.evaluate(tb.build(), 10).total(), 1.5, 1e-9);
}

} // namespace
} // namespace storemlp
