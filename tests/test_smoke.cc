/**
 * @file
 * Smoke test: the full stack runs end to end on a small workload.
 */

#include <gtest/gtest.h>

#include "core/runner.hh"
#include "sim_test_util.hh"

namespace storemlp
{
namespace
{

TEST(Smoke, TinyWorkloadRuns)
{
    RunSpec spec;
    spec.profile = WorkloadProfile::testTiny();
    spec.config = SimConfig::defaults();
    spec.warmupInsts = 20000;
    spec.measureInsts = 50000;

    RunOutput out = test::runMaterialized(spec);
    EXPECT_EQ(out.sim.instructions, 50000u);
    EXPECT_GT(out.sim.epochs, 0u);
    EXPECT_GT(out.sim.mlp(), 0.9);
}

} // namespace
} // namespace storemlp
