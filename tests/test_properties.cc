/**
 * @file
 * Property-based tests: invariants and monotonicity laws of the epoch
 * model, swept over all four workloads (and several seeds for the
 * invariants). These encode the paper's directional claims:
 * prefetching, bigger queues, WC, SLE, the SMAC and scout modes can
 * only reduce epochs (improve MLP).
 */

#include <gtest/gtest.h>

#include <tuple>

#include "core/runner.hh"
#include "sim_test_util.hh"

namespace storemlp
{
namespace
{

constexpr uint64_t kWarmup = 250 * 1000;
constexpr uint64_t kMeasure = 250 * 1000;

RunOutput
runWith(int workload, uint64_t seed,
        const std::function<void(SimConfig &)> &tweak)
{
    RunSpec spec;
    spec.profile = WorkloadProfile::allCommercial()[workload];
    spec.config = SimConfig::defaults();
    tweak(spec.config);
    spec.seed = seed;
    spec.warmupInsts = kWarmup;
    spec.measureInsts = kMeasure;
    return test::runMaterialized(spec);
}

// ---- invariants over (workload, seed) ----

std::string
workloadName(const testing::TestParamInfo<int> &info)
{
    static const char *names[] = {"Database", "TPCW", "SPECjbb",
                                  "SPECweb"};
    return names[info.param];
}

class InvariantTest
    : public testing::TestWithParam<std::tuple<int, uint64_t>>
{
  protected:
    RunOutput
    run(const std::function<void(SimConfig &)> &tweak = [](SimConfig &) {
    }) const
    {
        return runWith(std::get<0>(GetParam()),
                       std::get<1>(GetParam()), tweak);
    }
};

TEST_P(InvariantTest, EpochAccountingConsistent)
{
    SimResult res = run().sim;
    uint64_t term_sum = 0;
    uint64_t store_term_sum = 0;
    for (unsigned i = 0; i < kNumTermConds; ++i) {
        term_sum += res.termCounts[i];
        store_term_sum += res.termCountsStoreEpochs[i];
        EXPECT_LE(res.termCountsStoreEpochs[i], res.termCounts[i]);
    }
    EXPECT_EQ(term_sum, res.epochs);
    EXPECT_EQ(res.mlpHist.total(), res.epochs);
    EXPECT_EQ(res.storeVsOtherMlp.total(), res.epochs);
    EXPECT_EQ(store_term_sum, res.storeMlpHist.total());
    // Every counted epoch contains at least one miss.
    EXPECT_EQ(res.mlpHist.bucket(0), 0u);
    EXPECT_GE(res.mlp(), 1.0);
}

TEST_P(InvariantTest, MissAccountingConsistent)
{
    SimResult res = run().sim;
    // Misses are either attributed to epochs or quietly overlapped.
    uint64_t total = res.missLoads + res.missStores + res.missInsts;
    EXPECT_GE(total, res.epochMisses);
    EXPECT_LE(res.overlappedStores,
              res.missStores + res.smacAcceleratedStores);
    EXPECT_GE(res.overlappedStoreFraction(), 0.0);
    EXPECT_LE(res.overlappedStoreFraction(), 1.0);
}

TEST_P(InvariantTest, RatesWithinPhysicalBounds)
{
    SimResult res = run().sim;
    EXPECT_GT(res.instructions, 0u);
    EXPECT_GT(res.epochs, 0u);
    EXPECT_LT(res.epochsPer1000(), 100.0);
    EXPECT_LT(res.mlp(), 64.0); // bounded by window resources
    EXPECT_LE(res.branchMispredicts, res.branches);
}

TEST_P(InvariantTest, PerfectStoresIsALowerBound)
{
    SimResult base = run().sim;
    SimResult perfect =
        run([](SimConfig &c) { c.perfectStores = true; }).sim;
    EXPECT_LE(perfect.epochs, base.epochs);
}

TEST_P(InvariantTest, OffChipCpiLinearInEpi)
{
    SimResult res = run().sim;
    EXPECT_NEAR(res.offChipCpi(500), res.epi() * 500.0, 1e-9);
    EXPECT_NEAR(res.offChipCpi(1000), 2.0 * res.offChipCpi(500), 1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    WorkloadsAndSeeds, InvariantTest,
    testing::Combine(testing::Range(0, 4),
                     testing::Values(uint64_t(42), uint64_t(1234))));

// ---- monotonicity laws over workloads ----

class MonotonicityTest : public testing::TestWithParam<int>
{
  protected:
    RunOutput
    run(const std::function<void(SimConfig &)> &tweak) const
    {
        return runWith(GetParam(), 42, tweak);
    }
};

TEST_P(MonotonicityTest, StorePrefetchingReducesEpochs)
{
    auto sp0 = run([](SimConfig &c) {
        c.storePrefetch = StorePrefetch::None;
    });
    auto sp1 = run([](SimConfig &c) {
        c.storePrefetch = StorePrefetch::AtRetire;
    });
    auto sp2 = run([](SimConfig &c) {
        c.storePrefetch = StorePrefetch::AtExecute;
    });
    EXPECT_LE(sp1.sim.epochs, sp0.sim.epochs);
    EXPECT_LE(sp2.sim.epochs, sp1.sim.epochs);
}

TEST_P(MonotonicityTest, BiggerStoreQueueNeverHurts)
{
    auto sq16 = run([](SimConfig &c) { c.storeQueueSize = 16; });
    auto sq64 = run([](SimConfig &c) { c.storeQueueSize = 64; });
    auto sq256 = run([](SimConfig &c) { c.storeQueueSize = 256; });
    EXPECT_LE(sq64.sim.epochs, sq16.sim.epochs);
    EXPECT_LE(sq256.sim.epochs * 0.999, sq64.sim.epochs * 1.001);
}

TEST_P(MonotonicityTest, WeakConsistencyBeatsProcessorConsistency)
{
    // The WC run executes the rewritten (longer) trace, so compare
    // rates, not raw epoch counts, over a longer interval.
    RunSpec pc_spec;
    pc_spec.profile = WorkloadProfile::allCommercial()[GetParam()];
    pc_spec.config = SimConfig::defaults();
    pc_spec.warmupInsts = 400 * 1000;
    pc_spec.measureInsts = 500 * 1000;
    RunOutput pc = test::runMaterialized(pc_spec);

    RunSpec wc_spec = pc_spec;
    wc_spec.config.memoryModel = ModelDescriptor::wc();
    RunOutput wc = test::runMaterialized(wc_spec);

    EXPECT_LT(wc.sim.epochsPer1000(),
              pc.sim.epochsPer1000() * 1.02);
}

TEST_P(MonotonicityTest, SleReducesEpochs)
{
    auto base = run([](SimConfig &) {});
    auto sle = run([](SimConfig &c) { c.sle = true; });
    EXPECT_LE(sle.sim.epochs, base.sim.epochs);
}

TEST_P(MonotonicityTest, PrefetchPastSerializingReducesEpochs)
{
    auto base = run([](SimConfig &) {});
    auto pps = run([](SimConfig &c) {
        c.prefetchPastSerializing = true;
    });
    EXPECT_LE(pps.sim.epochs, base.sim.epochs);
}

TEST_P(MonotonicityTest, ScoutModesImproveProgressively)
{
    auto off = run([](SimConfig &c) { c.scout = ScoutMode::Off; });
    auto hws0 = run([](SimConfig &c) { c.scout = ScoutMode::Hws0; });
    auto hws1 = run([](SimConfig &c) { c.scout = ScoutMode::Hws1; });
    auto hws2 = run([](SimConfig &c) { c.scout = ScoutMode::Hws2; });
    EXPECT_LE(hws0.sim.epochs, off.sim.epochs);
    EXPECT_LE(hws1.sim.epochs, hws0.sim.epochs);
    EXPECT_LE(hws2.sim.epochs, hws1.sim.epochs);
}

TEST_P(MonotonicityTest, Hws2NearlyClosesConsistencyGap)
{
    // The paper's Figure 8 claim: with HWS2 the PC/WC gap nearly
    // disappears. "Nearly": within 25% relative at this run length.
    auto pc = run([](SimConfig &c) { c.scout = ScoutMode::Hws2; });
    RunSpec spec;
    spec.profile = WorkloadProfile::allCommercial()[GetParam()];
    spec.config = SimConfig::wc1().withScout(ScoutMode::Hws2);
    spec.warmupInsts = kWarmup;
    spec.measureInsts = kMeasure;
    auto wc = test::runMaterialized(spec);

    double gap = pc.sim.epochsPer1000() - wc.sim.epochsPer1000();
    EXPECT_LT(gap, 0.25 * pc.sim.epochsPer1000() + 0.05);
}

TEST_P(MonotonicityTest, CoalescingNeverHurts)
{
    auto off = run([](SimConfig &c) { c.coalesceBytes = 0; });
    auto on8 = run([](SimConfig &c) { c.coalesceBytes = 8; });
    auto on64 = run([](SimConfig &c) { c.coalesceBytes = 64; });
    EXPECT_LE(on8.sim.epochs, off.sim.epochs);
    EXPECT_LE(on64.sim.epochs, on8.sim.epochs);
}

TEST_P(MonotonicityTest, PrefetchingTradesBandwidthForMlp)
{
    auto sp0 = run([](SimConfig &c) {
        c.storePrefetch = StorePrefetch::None;
    });
    auto sp1 = run([](SimConfig &c) {
        c.storePrefetch = StorePrefetch::AtRetire;
    });
    // The paper's bandwidth argument for the SMAC: prefetching issues
    // additional L2 write requests.
    EXPECT_GT(sp1.sim.storePrefetchesIssued,
              sp0.sim.storePrefetchesIssued);
    EXPECT_GT(sp1.l2Accesses, sp0.l2Accesses);
}

INSTANTIATE_TEST_SUITE_P(AllWorkloads, MonotonicityTest,
                         testing::Range(0, 4), workloadName);

// ---- SMAC size monotonicity (heavier: Database only) ----

TEST(SmacProperty, BiggerSmacMonotone)
{
    auto run_smac = [](uint32_t entries) {
        RunSpec spec;
        spec.profile = WorkloadProfile::database();
        spec.config = SimConfig::defaults();
        spec.config.storePrefetch = StorePrefetch::None;
        spec.warmupInsts = 600 * 1000;
        spec.measureInsts = 300 * 1000;
        if (entries) {
            SmacConfig smac;
            smac.entries = entries;
            spec.smac = smac;
        }
        return test::runMaterialized(spec).sim.epochs;
    };
    uint64_t none = run_smac(0);
    uint64_t small = run_smac(8 * 1024);
    uint64_t big = run_smac(128 * 1024);
    EXPECT_LE(small, none);
    EXPECT_LT(big, none);
    EXPECT_LE(big, small);
}

} // namespace
} // namespace storemlp
