/**
 * @file
 * Tests for the N-core contention runner: determinism (repeated runs,
 * worker-pool concurrency, quantum granularity), agreement with the
 * fixed dual-core runner at N=2/M=1, contention-knob behaviour on the
 * real snoop bus, and topology validation.
 */

#include <gtest/gtest.h>

#include <functional>
#include <vector>

#include "core/dual_core.hh"
#include "core/multi_core.hh"
#include "core/sweep.hh"
#include "util/error.hh"

namespace storemlp
{
namespace
{

MultiRunSpec
tinySpec(uint32_t cores = 2, uint32_t chips = 1)
{
    MultiRunSpec spec;
    spec.profile = WorkloadProfile::testTiny();
    spec.config = SimConfig::defaults();
    spec.warmupInsts = 50 * 1000;
    spec.measureInsts = 100 * 1000;
    spec.cores = cores;
    spec.chips = chips;
    return spec;
}

TEST(MultiCore, RejectsDegenerateTopology)
{
    MultiRunSpec spec = tinySpec();
    spec.cores = 0;
    EXPECT_THROW(MultiCoreRunner::run(spec), ConfigError);
    spec = tinySpec();
    spec.chips = 0;
    EXPECT_THROW(MultiCoreRunner::run(spec), ConfigError);
    spec = tinySpec(2, 3);
    EXPECT_THROW(MultiCoreRunner::run(spec), ConfigError);
}

TEST(MultiCore, EveryCoreMeasures)
{
    MultiRunOutput out = MultiCoreRunner::run(tinySpec(4, 2));
    ASSERT_EQ(out.cores.size(), 4u);
    for (const SimResult &r : out.cores) {
        EXPECT_GT(r.instructions, 90 * 1000u);
        EXPECT_GT(r.epochs, 0u);
    }
    EXPECT_EQ(out.combined.instructions,
              out.cores[0].instructions + out.cores[1].instructions +
                  out.cores[2].instructions + out.cores[3].instructions);
    EXPECT_GT(out.combinedEpochsPer1000(), 0.0);
}

TEST(MultiCore, RepeatedRunsBitIdentical)
{
    MultiRunOutput a = MultiCoreRunner::run(tinySpec(4, 2));
    MultiRunOutput b = MultiCoreRunner::run(tinySpec(4, 2));
    ASSERT_EQ(a.cores.size(), b.cores.size());
    for (size_t i = 0; i < a.cores.size(); ++i)
        EXPECT_EQ(a.cores[i], b.cores[i]) << "core " << i;
    EXPECT_EQ(a.busInvalidations, b.busInvalidations);
    EXPECT_EQ(a.busDirtyTransfers, b.busDirtyTransfers);
    EXPECT_EQ(a.machine, b.machine);
}

TEST(MultiCore, DeterministicAcrossWorkerPools)
{
    // Four independent runs executed serially and on a 4-worker pool
    // must agree slot for slot: MultiCoreRunner shares no mutable
    // state between invocations.
    auto batch = [](unsigned jobs) {
        std::vector<MultiRunOutput> outs(4);
        std::vector<std::function<void()>> tasks;
        for (int i = 0; i < 4; ++i) {
            tasks.push_back([&outs, i] {
                MultiRunSpec spec = tinySpec(3, i % 2 ? 3 : 1);
                spec.seed = 42 + i;
                outs[i] = MultiCoreRunner::run(spec);
            });
        }
        for (const TaskStatus &st : parallelForEach(tasks, jobs))
            EXPECT_TRUE(st.ok) << st.errorMessage;
        return outs;
    };
    std::vector<MultiRunOutput> serial = batch(1);
    std::vector<MultiRunOutput> pooled = batch(4);
    for (int i = 0; i < 4; ++i) {
        EXPECT_EQ(serial[i].cores, pooled[i].cores) << "slot " << i;
        EXPECT_EQ(serial[i].busInvalidations, pooled[i].busInvalidations)
            << "slot " << i;
    }
}

TEST(MultiCore, QuantumPreservesMeasuredInstructions)
{
    // The number of measured records is streamLen - warmup no matter
    // how the interleaving quantizes: the warmup boundary is honoured
    // exactly even when warmup % quantum != 0 (50000 % 256 = 80,
    // 50000 % 192 = 72).
    std::vector<uint64_t> quanta = {1, 64, 256, 192};
    std::vector<MultiRunOutput> outs;
    for (uint64_t q : quanta) {
        MultiRunSpec spec = tinySpec(2, 2);
        spec.quantum = q;
        outs.push_back(MultiCoreRunner::run(spec));
    }
    for (size_t i = 1; i < outs.size(); ++i) {
        ASSERT_EQ(outs[i].cores.size(), outs[0].cores.size());
        for (size_t c = 0; c < outs[0].cores.size(); ++c) {
            EXPECT_EQ(outs[i].cores[c].instructions,
                      outs[0].cores[c].instructions)
                << "quantum " << quanta[i] << " core " << c;
        }
    }
    // Interleaving granularity perturbs which accesses collide on the
    // bus, but the ping-pong invalidation picture must stay stable.
    for (size_t i = 1; i < outs.size(); ++i) {
        double a = static_cast<double>(outs[0].busInvalidations);
        double b = static_cast<double>(outs[i].busInvalidations);
        EXPECT_NEAR(a, b, 0.30 * std::max(a, b) + 16.0)
            << "quantum " << quanta[i];
    }
}

TEST(MultiCore, TwoCoresOneChipMatchesDualCoreRunner)
{
    // N=2 on one chip is exactly the dual-core configuration; the two
    // independent implementations must agree bit for bit.
    DualRunSpec dspec;
    dspec.profile = WorkloadProfile::testTiny();
    dspec.config = SimConfig::defaults();
    dspec.warmupInsts = 50 * 1000;
    dspec.measureInsts = 100 * 1000;
    DualRunOutput dual = DualCoreRunner::run(dspec);

    MultiRunSpec mspec = tinySpec(2, 1);
    MultiRunOutput multi = MultiCoreRunner::run(mspec);
    ASSERT_EQ(multi.cores.size(), 2u);
    EXPECT_EQ(multi.cores[0], dual.core0);
    EXPECT_EQ(multi.cores[1], dual.core1);
}

TEST(MultiCore, SingleChipHasNoBusTraffic)
{
    MultiRunOutput out = MultiCoreRunner::run(tinySpec(4, 1));
    EXPECT_EQ(out.busInvalidations, 0u);
    EXPECT_EQ(out.busDirtyTransfers, 0u);
    EXPECT_FALSE(out.machine.has("coherence.invalidations"));
}

TEST(MultiCore, SharedStoresDriveBusInvalidations)
{
    MultiRunSpec low = tinySpec(4, 4);
    low.sharedStoreFrac = 0.02;
    MultiRunSpec high = tinySpec(4, 4);
    high.sharedStoreFrac = 0.40;
    MultiRunOutput lo = MultiCoreRunner::run(low);
    MultiRunOutput hi = MultiCoreRunner::run(high);
    EXPECT_GT(lo.busInvalidations, 0u);
    EXPECT_GT(hi.busInvalidations, lo.busInvalidations)
        << "raising the shared-store fraction must raise cross-chip "
           "invalidation traffic";
}

TEST(MultiCore, MoesiSuppliesDirtyTransfers)
{
    MultiRunSpec spec = tinySpec(4, 4);
    spec.protocol = CoherenceProtocol::Moesi;
    spec.sharedStoreFrac = 0.30;
    MultiRunOutput out = MultiCoreRunner::run(spec);
    // Shared data written by one chip and read by another crosses the
    // bus as a dirty (Modified or Owned) cache-to-cache transfer.
    EXPECT_GT(out.busDirtyTransfers, 0u);
    EXPECT_EQ(out.busDirtyTransfers,
              out.machine.getCounter("coherence.dirtyTransfers"));
}

TEST(MultiCore, ExportStatsCarriesTopologyAndPerCore)
{
    MultiRunOutput out = MultiCoreRunner::run(tinySpec(3, 2));
    StatsRegistry reg;
    out.exportStats(reg);
    EXPECT_EQ(reg.getCounter("multicore.cores"), 3u);
    EXPECT_EQ(reg.getCounter("multicore.chips"), 2u);
    EXPECT_EQ(reg.getCounter("core.instructions"),
              out.combined.instructions);
    EXPECT_EQ(reg.getCounter("cpu0.core.instructions"),
              out.cores[0].instructions);
    EXPECT_EQ(reg.getCounter("cpu2.core.instructions"),
              out.cores[2].instructions);
    EXPECT_TRUE(reg.has("chip0.cache.l2Accesses"));
    EXPECT_TRUE(reg.has("chip1.cache.l2Accesses"));
    EXPECT_TRUE(reg.has("derived.busInvalidationsPer1000"));
}

TEST(MultiCore, LockDensityKnobTakesEffect)
{
    // Raising lockProb changes the synthesized streams (more
    // critical sections); the runs must still be deterministic and
    // the knob must actually reach the generator.
    MultiRunSpec base = tinySpec(2, 2);
    MultiRunSpec locky = tinySpec(2, 2);
    locky.lockProb = 0.05;
    MultiRunOutput a = MultiCoreRunner::run(base);
    MultiRunOutput b = MultiCoreRunner::run(locky);
    EXPECT_NE(a.cores[0], b.cores[0])
        << "lockProb override did not reach the trace generator";
}

} // namespace
} // namespace storemlp
