/**
 * @file
 * Figure-shape regression tests: the paper's headline qualitative
 * claims, asserted at moderate run lengths so they guard the
 * calibration and the engine together. These are the statements
 * EXPERIMENTS.md reports; if one breaks, the reproduction story
 * breaks.
 */

#include <gtest/gtest.h>

#include "core/runner.hh"
#include "sim_test_util.hh"

namespace storemlp
{
namespace
{

constexpr uint64_t kWarmup = 600 * 1000;
constexpr uint64_t kMeasure = 500 * 1000;

std::string
workloadName(const testing::TestParamInfo<int> &info)
{
    static const char *names[] = {"Database", "TPCW", "SPECjbb",
                                  "SPECweb"};
    return names[info.param];
}

class FigureShapeTest : public testing::TestWithParam<int>
{
  protected:
    RunOutput
    run(const std::function<void(RunSpec &)> &tweak) const
    {
        RunSpec spec;
        spec.profile = WorkloadProfile::allCommercial()[GetParam()];
        spec.config = SimConfig::defaults();
        spec.warmupInsts = kWarmup;
        spec.measureInsts = kMeasure;
        tweak(spec);
        return test::runMaterialized(spec);
    }
};

// Figure 2 / Section 5.1: "store prefetching is highly effective";
// without it, missing stores contribute a large share of off-chip CPI.
TEST_P(FigureShapeTest, StoresContributeSubstantiallyWithoutPrefetch)
{
    RunOutput sp0 = run([](RunSpec &s) {
        s.config.storePrefetch = StorePrefetch::None;
    });
    RunOutput perfect = run([](RunSpec &s) {
        s.config.storePrefetch = StorePrefetch::None;
        s.config.perfectStores = true;
    });
    double contribution = 1.0 -
        perfect.sim.epochsPer1000() / sp0.sim.epochsPer1000();
    // Paper: 17%..46% across workloads at Sp0.
    EXPECT_GT(contribution, 0.12);
    EXPECT_LT(contribution, 0.70);
}

// Section 5.1: prefetching shrinks the store contribution but does
// not eliminate it (serializing instructions remain).
TEST_P(FigureShapeTest, PrefetchingShrinksButKeepsStoreContribution)
{
    RunOutput sp0 = run([](RunSpec &s) {
        s.config.storePrefetch = StorePrefetch::None;
    });
    RunOutput sp1 = run([](RunSpec &) {});
    RunOutput perfect = run([](RunSpec &s) {
        s.config.perfectStores = true;
    });
    double at_sp0 = sp0.sim.epochsPer1000() -
        perfect.sim.epochsPer1000();
    double at_sp1 = sp1.sim.epochsPer1000() -
        perfect.sim.epochsPer1000();
    EXPECT_LT(at_sp1, at_sp0);       // prefetching helps...
    EXPECT_GT(at_sp1, 0.05 * at_sp0); // ...but a gap remains
}

// Figure 2: "for all four workloads, store MLP is not sensitive to
// the store buffer size" (8 entries suffice).
TEST_P(FigureShapeTest, StoreBufferSizeIrrelevant)
{
    RunOutput sb8 = run([](RunSpec &s) {
        s.config.storeBufferSize = 8;
    });
    RunOutput sb32 = run([](RunSpec &s) {
        s.config.storeBufferSize = 32;
    });
    EXPECT_NEAR(sb8.sim.epochsPer1000(), sb32.sim.epochsPer1000(),
                0.05 * sb32.sim.epochsPer1000() + 0.05);
}

// Figure 3: store serialize is the dominant condition among epochs
// with store MLP >= 1 for TPC-W / SPECjbb / SPECweb.
TEST_P(FigureShapeTest, StoreSerializeDominatesStoreEpochs)
{
    if (GetParam() == 0)
        GTEST_SKIP() << "Database has the mixed profile";
    RunOutput out = run([](RunSpec &) {});
    double serialize =
        out.sim.termFractionStoreEpochs(TermCond::StoreSerialize);
    double store_epochs = out.sim.storeEpochFraction();
    ASSERT_GT(store_epochs, 0.0);
    EXPECT_GT(serialize / store_epochs, 0.5)
        << "store serialize should dominate the store epochs";
}

// Figure 3B / Section 5.3: under PC3 the store-serialize condition
// collapses.
TEST_P(FigureShapeTest, Pc3CollapsesStoreSerialize)
{
    RunOutput base = run([](RunSpec &) {});
    RunOutput pc3 = run([](RunSpec &s) {
        SimConfig c = SimConfig::pc3();
        c.storePrefetch = s.config.storePrefetch;
        s.config = c;
    });
    EXPECT_LT(pc3.sim.termFractionStoreEpochs(
                  TermCond::StoreSerialize),
              0.5 * base.sim.termFractionStoreEpochs(
                        TermCond::StoreSerialize) +
                  0.01);
}

// Figure 7: the consistency gap exists and SLE narrows it.
TEST_P(FigureShapeTest, SleNarrowsConsistencyGap)
{
    RunOutput pc1 = run([](RunSpec &) {});
    RunOutput wc1 = run([](RunSpec &s) {
        s.config = SimConfig::wc1();
    });
    RunOutput pc3 = run([](RunSpec &s) {
        s.config = SimConfig::pc3();
    });
    double gap1 = pc1.sim.epochsPer1000() - wc1.sim.epochsPer1000();
    double gap3 = pc3.sim.epochsPer1000() - wc1.sim.epochsPer1000();
    EXPECT_GT(gap1, 0.0);
    EXPECT_LT(gap3, 0.55 * gap1 + 0.02);
}

// Figure 8: HWS2 nearly eliminates the store impact.
TEST_P(FigureShapeTest, Hws2NearlyEliminatesStoreImpact)
{
    RunOutput hws2 = run([](RunSpec &s) {
        s.config.scout = ScoutMode::Hws2;
    });
    RunOutput floor = run([](RunSpec &s) {
        s.config.scout = ScoutMode::Hws2;
        s.config.perfectStores = true;
    });
    RunOutput base = run([](RunSpec &) {});
    RunOutput base_floor = run([](RunSpec &s) {
        s.config.perfectStores = true;
    });
    double store_cpi_hws2 = hws2.sim.epochsPer1000() -
        floor.sim.epochsPer1000();
    double store_cpi_base = base.sim.epochsPer1000() -
        base_floor.sim.epochsPer1000();
    EXPECT_LT(store_cpi_hws2, 0.75 * store_cpi_base + 0.02);
}

INSTANTIATE_TEST_SUITE_P(AllWorkloads, FigureShapeTest,
                         testing::Range(0, 4), workloadName);

} // namespace
} // namespace storemlp
