/**
 * @file
 * Streaming trace pipeline tests: every TraceSource must be
 * indistinguishable from the materialized trace it streams — same
 * records for every chunk size (including pathological ones), same
 * lock analysis, same WC rewrite, and bit-identical SimResults end to
 * end. Chunking is an execution strategy, never a model input.
 */

#include <cstdio>
#include <fstream>
#include <functional>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/config_io.hh"
#include "core/runner.hh"
#include "trace/generator.hh"
#include "trace/lock_detector.hh"
#include "trace/rewriter.hh"
#include "trace/trace_cache.hh"
#include "trace/trace_file_source.hh"
#include "trace/trace_io.hh"
#include "trace/trace_source.hh"
#include "sim_test_util.hh"

namespace storemlp
{
namespace
{

bool
sameRec(const TraceRecord &a, const TraceRecord &b)
{
    return a.pc == b.pc && a.addr == b.addr && a.cls == b.cls &&
        a.size == b.size && a.dst == b.dst && a.src1 == b.src1 &&
        a.src2 == b.src2 && a.flags == b.flags;
}

/** Drain a source and compare against a reference trace. */
void
expectStreamEquals(TraceSource &src, const Trace &ref)
{
    uint64_t i = 0;
    uint64_t visited = forEachRecord(
        src, 0, ~uint64_t{0}, [&](const TraceRecord &r) {
            ASSERT_LT(i, ref.size());
            EXPECT_TRUE(sameRec(r, ref[i]))
                << "record " << i << " differs";
            ++i;
        });
    EXPECT_EQ(visited, ref.size());
}

Trace
makeTrace(uint64_t n, uint64_t seed = 7)
{
    SyntheticTraceGenerator gen(WorkloadProfile::tpcw(), seed, 0);
    return gen.generate(n);
}

TEST(GeneratorSource, MatchesOneShotGenerateAcrossChunkSizes)
{
    // The generator emits whole slots, so a run can overshoot the
    // requested count; chunked production must stop at the same slot
    // boundary as a single generate(N) call.
    const uint64_t n = 5000;
    Trace ref = makeTrace(n);
    for (uint64_t chunk : {uint64_t{1}, uint64_t{7}, uint64_t{509},
                           uint64_t{4096}, uint64_t{1} << 16}) {
        GeneratorSource src(WorkloadProfile::tpcw(), 7, n, 0, chunk);
        expectStreamEquals(src, ref);
    }
}

TEST(GeneratorSource, RestartsDeterministicallyOnBackwardFetch)
{
    const uint64_t n = 3000;
    GeneratorSource src(WorkloadProfile::tpcw(), 7, n, 0, 256);
    TraceCursor cur(src);
    const TraceRecord *late = cur.tryAt(2000);
    ASSERT_NE(late, nullptr);
    TraceRecord saved_late = *late;
    const TraceRecord *early = cur.tryAt(3);
    ASSERT_NE(early, nullptr);
    TraceRecord saved_early = *early;
    // Forward again after the restart: identical bytes.
    const TraceRecord *late2 = cur.tryAt(2000);
    ASSERT_NE(late2, nullptr);
    EXPECT_TRUE(sameRec(*late2, saved_late));
    Trace ref = makeTrace(n);
    EXPECT_TRUE(sameRec(saved_early, ref[3]));
    EXPECT_TRUE(sameRec(saved_late, ref[2000]));
}

TEST(MaterializedSource, RoundTripsAndReportsSize)
{
    Trace ref = makeTrace(2000);
    MaterializedSource src(ref, 777);
    ASSERT_TRUE(src.knownSize().has_value());
    EXPECT_EQ(*src.knownSize(), ref.size());
    expectStreamEquals(src, ref);
    Trace copy = materializeSource(src);
    ASSERT_EQ(copy.size(), ref.size());
    for (size_t i = 0; i < ref.size(); ++i)
        EXPECT_TRUE(sameRec(copy[i], ref[i]));
}

TEST(StreamingLockDetector, MatchesBatchAnalysis)
{
    Trace trace = makeTrace(20000, 11);
    LockAnalysis batch = LockDetector().analyze(trace);

    MaterializedSource src(trace);
    LockAnalysis streamed = analyzeSource(src);

    ASSERT_EQ(streamed.roles.size(), batch.roles.size());
    for (size_t i = 0; i < batch.roles.size(); ++i)
        EXPECT_EQ(streamed.roles[i], batch.roles[i]) << "role " << i;
    ASSERT_EQ(streamed.pairs.size(), batch.pairs.size());
    for (size_t i = 0; i < batch.pairs.size(); ++i) {
        EXPECT_EQ(streamed.pairs[i].acquireIdx,
                  batch.pairs[i].acquireIdx);
        EXPECT_EQ(streamed.pairs[i].releaseIdx,
                  batch.pairs[i].releaseIdx);
        EXPECT_EQ(streamed.pairs[i].lockAddr, batch.pairs[i].lockAddr);
    }
}

TEST(WcRewriteSource, MatchesBatchRewriteAcrossChunkSizes)
{
    // Lock idioms that straddle a chunk boundary are the hard case:
    // the carry state (detector window + pending output) must splice
    // the expansion exactly where the batch rewriter puts it.
    Trace trace = makeTrace(20000, 13);
    LockAnalysis locks = LockDetector().analyze(trace);
    Trace ref = TraceRewriter().toWeakConsistency(trace, locks);

    for (uint64_t chunk : {uint64_t{1}, uint64_t{193}, uint64_t{4096}}) {
        auto inner = std::make_unique<MaterializedSource>(trace, chunk);
        WcRewriteSource src(std::move(inner));
        expectStreamEquals(src, ref);
        ASSERT_TRUE(src.knownSize().has_value());
        EXPECT_EQ(*src.knownSize(), ref.size());
    }
}

TEST(TraceCursor, TrimKeepsCurrentChunkUsable)
{
    Trace ref = makeTrace(1000);
    MaterializedSource src(ref, 128);
    TraceCursor cur(src);
    for (uint64_t i = 0; i < ref.size(); ++i) {
        const TraceRecord *rp = cur.tryAt(i);
        ASSERT_NE(rp, nullptr);
        EXPECT_TRUE(sameRec(*rp, ref[i]));
        cur.trim(i); // aggressive trim must never invalidate *rp's chunk
    }
    EXPECT_EQ(cur.tryAt(ref.size()), nullptr);
}

class FileSourceTest : public ::testing::Test
{
  protected:
    std::string
    writeTemp(const std::string &name,
              const std::function<void(std::ostream &)> &writer)
    {
        std::string path =
            ::testing::TempDir() + "trace_source_" + name + ".trc";
        std::ofstream os(path, std::ios::binary);
        writer(os);
        os.close();
        _paths.push_back(path);
        return path;
    }

    void TearDown() override
    {
        for (const std::string &p : _paths)
            std::remove(p.c_str());
    }

    std::vector<std::string> _paths;
};

TEST_F(FileSourceTest, StreamsV1V2V3Identically)
{
    Trace ref = makeTrace(6000, 17);
    std::string v1 = writeTemp(
        "v1", [&](std::ostream &os) { writeTrace(os, ref); });
    std::string v2 = writeTemp("v2", [&](std::ostream &os) {
        writeTraceCompressed(os, ref);
    });
    std::string v3 = writeTemp("v3", [&](std::ostream &os) {
        writeTraceV3(os, ref, "fp-test", /*compressed=*/true);
    });

    for (const std::string &path : {v1, v2, v3}) {
        for (uint64_t chunk : {uint64_t{1}, uint64_t{251},
                               uint64_t{1} << 16}) {
            StreamingFileSource src(path, chunk);
            ASSERT_TRUE(src.knownSize().has_value());
            EXPECT_EQ(*src.knownSize(), ref.size());
            expectStreamEquals(src, ref);
        }
    }
}

TEST_F(FileSourceTest, RandomAccessAcrossChunks)
{
    // The v2 body is a stateful delta encoding; random chunk access
    // goes through memoized boundaries and must still decode exact
    // records in any visit order.
    Trace ref = makeTrace(4000, 19);
    std::string path = writeTemp("rand", [&](std::ostream &os) {
        writeTraceCompressed(os, ref);
    });
    StreamingFileSource src(path, 256);
    TraceCursor cur(src);
    for (uint64_t idx : {uint64_t{3900}, uint64_t{0}, uint64_t{2048},
                         uint64_t{255}, uint64_t{256}, uint64_t{3900}}) {
        const TraceRecord *rp = cur.tryAt(idx);
        ASSERT_NE(rp, nullptr) << "index " << idx;
        EXPECT_TRUE(sameRec(*rp, ref[idx])) << "index " << idx;
    }
}

TEST_F(FileSourceTest, ProbeReadsHeaderOnly)
{
    Trace ref = makeTrace(1234, 23);
    std::string path = writeTemp("probe", [&](std::ostream &os) {
        writeTraceV3(os, ref, "probe-fingerprint", /*compressed=*/false);
    });
    TraceFileInfo info = probeTraceFile(path);
    EXPECT_EQ(info.version, 3u);
    EXPECT_EQ(info.bodyFormat, 1u);
    EXPECT_EQ(info.records, ref.size());
    EXPECT_EQ(info.fingerprint, "probe-fingerprint");
    EXPECT_GT(info.fileBytes, 0u);

    StreamingFileSource src(path);
    EXPECT_EQ(src.fingerprint(), "probe-fingerprint");
}

TEST(CachedSource, SharesChunksAndStaysExact)
{
    Trace ref = makeTrace(5000, 29);
    TraceCache cache(64ull << 20);
    auto make = [&] {
        return std::make_unique<CachedSource>(
            std::make_unique<MaterializedSource>(ref, 512), cache,
            "cached-source-test");
    };
    auto a = make();
    expectStreamEquals(*a, ref);
    uint64_t misses_after_first = cache.stats().misses;
    EXPECT_GT(misses_after_first, 0u);

    auto b = make();
    expectStreamEquals(*b, ref);
    EXPECT_EQ(cache.stats().misses, misses_after_first)
        << "second pass must be served from the chunk cache";
    EXPECT_GT(cache.stats().hits, 0u);
}

TEST(RunnerStreaming, BitIdenticalToMaterializedOnShippedConfigs)
{
    // The acceptance bar for the whole streaming pipeline: for every
    // shipped config (PC/WC, SLE, scout), SimResult must be
    // bit-identical between the materialized path and the chunked
    // streaming path — including chunk sizes that are not divisors of
    // the run length.
    const char *files[] = {"pc1.cfg", "pc2.cfg", "pc3.cfg",
                           "wc1.cfg", "wc2.cfg", "wc3.cfg",
                           "hws2.cfg"};
    int compared = 0;
    for (const char *f : files) {
        std::string path;
        for (const std::string &prefix :
             {std::string("configs/"), std::string("../configs/"),
              std::string("../../configs/")}) {  // NOLINT
            std::ifstream probe(prefix + f);
            if (probe) {
                path = prefix + f;
                break;
            }
        }
        if (path.empty())
            continue;

        RunSpec spec;
        spec.profile = WorkloadProfile::specjbb();
        spec.config = loadSimConfigFile(path);
        spec.warmupInsts = 20000;
        spec.measureInsts = 40000;

        RunOutput mat = test::runMaterialized(spec);
        for (uint64_t chunk : {uint64_t{1009}, uint64_t{0}}) {
            std::unique_ptr<TraceSource> src =
                Runner::makeSource(spec, chunk);
            RunOutput streamed = Runner::run(spec, *src);
            EXPECT_EQ(streamed.sim, mat.sim)
                << f << " chunk=" << chunk;
            EXPECT_EQ(streamed.storesPer100, mat.storesPer100) << f;
            EXPECT_EQ(streamed.l2Accesses, mat.l2Accesses) << f;
        }
        ++compared;
    }
    if (compared == 0)
        GTEST_SKIP() << "configs/ not reachable from test cwd";
}

TEST(RunnerStreaming, FileSourceMatchesInMemoryRun)
{
    RunSpec spec;
    spec.profile = WorkloadProfile::tpcw();
    spec.warmupInsts = 10000;
    spec.measureInsts = 20000;

    Trace trace = Runner::buildTrace(spec);
    RunOutput mem = test::runMaterialized(spec, trace);

    std::string path = ::testing::TempDir() + "runner_file_src.trc";
    writeTraceFileV3(path, trace, "runner-file", /*compressed=*/true);
    {
        StreamingFileSource src(path, 777);
        RunOutput filed = Runner::run(spec, src);
        EXPECT_EQ(filed.sim, mem.sim);
    }
    std::remove(path.c_str());
}

} // namespace
} // namespace storemlp
