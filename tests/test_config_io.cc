/**
 * @file
 * Tests for config/profile text serialization.
 */

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>

#include "core/config_io.hh"

namespace storemlp
{
namespace
{

TEST(ConfigIo, SimConfigRoundTrip)
{
    SimConfig c = SimConfig::wc3();
    c.storePrefetch = StorePrefetch::AtExecute;
    c.storeQueueSize = 64;
    c.scout = ScoutMode::Hws2;
    c.tm.enabled = false;
    c.missLatency = 750;

    std::stringstream ss;
    saveSimConfig(ss, c);
    SimConfig r = loadSimConfig(ss);

    EXPECT_EQ(r.name, c.name);
    EXPECT_EQ(r.storePrefetch, c.storePrefetch);
    EXPECT_EQ(r.storeQueueSize, c.storeQueueSize);
    EXPECT_EQ(r.memoryModel, c.memoryModel);
    EXPECT_EQ(r.sle, c.sle);
    EXPECT_EQ(r.prefetchPastSerializing, c.prefetchPastSerializing);
    EXPECT_EQ(r.scout, c.scout);
    EXPECT_EQ(r.missLatency, c.missLatency);
}

TEST(ConfigIo, ParsesMinimalConfig)
{
    std::stringstream ss(
        "# a comment\n"
        "\n"
        "storePrefetch = sp2\n"
        "memoryModel = wc\n"
        "sle = true\n");
    SimConfig c = loadSimConfig(ss);
    EXPECT_EQ(c.storePrefetch, StorePrefetch::AtExecute);
    EXPECT_EQ(c.memoryModel, ModelDescriptor::wc());
    EXPECT_TRUE(c.sle);
    // Untouched knobs keep their defaults.
    EXPECT_EQ(c.storeQueueSize, 32u);
}

TEST(ConfigIo, RejectsUnknownKey)
{
    std::stringstream ss("storeQueue = 64\n"); // typo
    EXPECT_THROW(loadSimConfig(ss), ConfigParseError);
}

TEST(ConfigIo, RejectsBadValues)
{
    {
        std::stringstream ss("storeQueueSize = many\n");
        EXPECT_THROW(loadSimConfig(ss), ConfigParseError);
    }
    {
        std::stringstream ss("sle = maybe\n");
        EXPECT_THROW(loadSimConfig(ss), ConfigParseError);
    }
    {
        std::stringstream ss("storePrefetch = sp9\n");
        EXPECT_THROW(loadSimConfig(ss), ConfigParseError);
    }
    {
        std::stringstream ss("just a line without equals\n");
        EXPECT_THROW(loadSimConfig(ss), ConfigParseError);
    }
}

TEST(ConfigIo, TmKnobs)
{
    std::stringstream ss(
        "tmEnabled = true\n"
        "tmAbortProb = 0.25\n"
        "tmAbortPenaltyCycles = 80\n");
    SimConfig c = loadSimConfig(ss);
    EXPECT_TRUE(c.tm.enabled);
    EXPECT_DOUBLE_EQ(c.tm.abortProb, 0.25);
    EXPECT_DOUBLE_EQ(c.tm.abortPenaltyCycles, 80.0);
}

TEST(ConfigIo, ProfileRoundTrip)
{
    WorkloadProfile p = WorkloadProfile::tpcw();
    std::stringstream ss;
    saveWorkloadProfile(ss, p);
    WorkloadProfile r = loadWorkloadProfile(ss);

    EXPECT_EQ(r.name, p.name);
    EXPECT_DOUBLE_EQ(r.loadFrac, p.loadFrac);
    EXPECT_DOUBLE_EQ(r.storeFrac, p.storeFrac);
    EXPECT_DOUBLE_EQ(r.storeColdProb, p.storeColdProb);
    EXPECT_EQ(r.storeMissRegionBytes, p.storeMissRegionBytes);
    EXPECT_DOUBLE_EQ(r.lockProb, p.lockProb);
    EXPECT_DOUBLE_EQ(r.cpiOnChip, p.cpiOnChip);
    EXPECT_EQ(r.flushLenMean, p.flushLenMean);
}

TEST(ConfigIo, ProfileBaseSelection)
{
    std::stringstream ss(
        "base = specjbb\n"
        "lockProb = 0.01\n");
    WorkloadProfile p = loadWorkloadProfile(ss);
    EXPECT_EQ(p.name, "SPECjbb");
    EXPECT_DOUBLE_EQ(p.lockProb, 0.01);
    // Other knobs come from the base profile.
    EXPECT_DOUBLE_EQ(p.storeFrac, WorkloadProfile::specjbb().storeFrac);
}

TEST(ConfigIo, BaseMustComeFirst)
{
    std::stringstream ss(
        "lockProb = 0.01\n"
        "base = specjbb\n");
    EXPECT_THROW(loadWorkloadProfile(ss), ConfigParseError);
}

TEST(ConfigIo, ProfileRejectsUnknownKey)
{
    std::stringstream ss("storeFrequency = 0.1\n");
    EXPECT_THROW(loadWorkloadProfile(ss), ConfigParseError);
}

TEST(ConfigIo, MissingFileThrows)
{
    EXPECT_THROW(loadSimConfigFile("/nonexistent/x.cfg"),
                 ConfigParseError);
    EXPECT_THROW(loadWorkloadProfileFile("/nonexistent/x.prof"),
                 ConfigParseError);
}

TEST(ConfigIo, FileRoundTrip)
{
    std::string path = testing::TempDir() + "/storemlp_cfg_test.cfg";
    {
        std::ofstream ofs(path);
        SimConfig c = SimConfig::pc3();
        c.storeBufferSize = 8;
        saveSimConfig(ofs, c);
    }
    SimConfig r = loadSimConfigFile(path);
    EXPECT_TRUE(r.sle);
    EXPECT_EQ(r.storeBufferSize, 8u);
}

TEST(ConfigIo, ShippedPresetsLoad)
{
    // The configs/ presets must stay loadable as the schema evolves.
    const char *files[] = {"pc1.cfg", "pc2.cfg", "pc3.cfg",
                           "wc1.cfg", "wc2.cfg", "wc3.cfg",
                           "hws2.cfg", "rmo1.cfg", "wmm1.cfg"};
    int loaded = 0;
    for (const char *f : files) {
        // Tests run from the build tree; look for the source configs.
        for (const std::string &prefix :
             {std::string("configs/"), std::string("../configs/"),
              std::string("../../configs/")}) {  // NOLINT
            std::ifstream probe(prefix + f);
            if (!probe)
                continue;
            SimConfig c = loadSimConfigFile(prefix + f);
            EXPECT_FALSE(c.name.empty());
            ++loaded;
            break;
        }
    }
    if (loaded == 0)
        GTEST_SKIP() << "configs/ not reachable from test cwd";
    EXPECT_EQ(loaded, 9);
}

TEST(ConfigIo, ModelKeyParsesPresets)
{
    std::stringstream ss("model = rmo\n");
    SimConfig c = loadSimConfig(ss);
    EXPECT_EQ(c.memoryModel, ModelDescriptor::rmo());
}

TEST(ConfigIo, ModelKeyParsesDescriptorList)
{
    std::stringstream ss("model = wc,commit=inorder\n");
    SimConfig c = loadSimConfig(ss);
    EXPECT_TRUE(c.memoryModel.inOrderCommit());
    EXPECT_EQ(c.memoryModel.coalesce, CoalesceScope::ToYoungestFence);
    EXPECT_EQ(c.memoryModel.name, "custom");
}

TEST(ConfigIo, ModelKeyRejectsBadValues)
{
    {
        std::stringstream ss("model = bogus\n");
        EXPECT_THROW(loadSimConfig(ss), ConfigParseError);
    }
    {
        std::stringstream ss("model = pc,frobnicate=yes\n");
        EXPECT_THROW(loadSimConfig(ss), ConfigParseError);
    }
    {
        std::stringstream ss("model = pc,commit=sideways\n");
        EXPECT_THROW(loadSimConfig(ss), ConfigParseError);
    }
}

TEST(ConfigIo, CustomDescriptorRoundTrip)
{
    // A descriptor that matches no preset must survive
    // save -> load unchanged, via its canonical spec().
    SimConfig c;
    c.memoryModel = ModelDescriptor::parse("wc,commit=inorder");
    std::stringstream ss;
    saveSimConfig(ss, c);
    SimConfig r = loadSimConfig(ss);
    EXPECT_EQ(r.memoryModel, c.memoryModel);
    EXPECT_TRUE(r.memoryModel.sameRules(c.memoryModel));
}

TEST(ConfigIo, PresetDescriptorSpecRoundTrip)
{
    for (const ModelDescriptor &m : ModelDescriptor::presets())
        EXPECT_TRUE(
            ModelDescriptor::parse(m.spec()).sameRules(m))
            << m.name;
}

TEST(ConfigIo, PresetPc3Semantics)
{
    std::stringstream ss;
    saveSimConfig(ss, SimConfig::pc3());
    SimConfig c = loadSimConfig(ss);
    EXPECT_TRUE(c.sle);
    EXPECT_TRUE(c.prefetchPastSerializing);
    EXPECT_EQ(c.memoryModel, ModelDescriptor::pc());
}

} // namespace
} // namespace storemlp
