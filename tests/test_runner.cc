/**
 * @file
 * Tests for the experiment runner and the workload calibration: the
 * four commercial profiles must land near the paper's Table 1 / Table
 * 2 / Table 3 values, runs must be deterministic, and multi-chip /
 * SMAC plumbing must work end to end.
 */

#include <gtest/gtest.h>

#include "core/cpi_model.hh"
#include "core/runner.hh"
#include "trace/generator.hh"
#include "sim_test_util.hh"

namespace storemlp
{
namespace
{

// Moderate lengths keep the suite fast; tolerances account for the
// shorter-than-bench measurement interval.
constexpr uint64_t kWarmup = 600 * 1000;
constexpr uint64_t kMeasure = 400 * 1000;

std::string
workloadName(const testing::TestParamInfo<int> &info)
{
    static const char *names[] = {"Database", "TPCW", "SPECjbb",
                                  "SPECweb"};
    return names[info.param];
}

class CalibrationTest : public testing::TestWithParam<int>
{
  protected:
    WorkloadProfile profile() const
    {
        return WorkloadProfile::allCommercial()[GetParam()];
    }
};

TEST_P(CalibrationTest, Table1MissRatesNearPaper)
{
    WorkloadProfile p = profile();
    Runner::MissRates r =
        Runner::measureMissRates(p, 42, kWarmup, kMeasure);

    EXPECT_NEAR(r.storesPer100, p.targetStoresPer100,
                0.06 * p.targetStoresPer100 + 0.1);
    EXPECT_NEAR(r.storeMissPer100, p.targetStoreMissPer100,
                0.45 * p.targetStoreMissPer100 + 0.03);
    EXPECT_NEAR(r.loadMissPer100, p.targetLoadMissPer100,
                0.35 * p.targetLoadMissPer100 + 0.02);
    EXPECT_NEAR(r.instMissPer100, p.targetInstMissPer100,
                0.35 * p.targetInstMissPer100 + 0.02);
}

TEST_P(CalibrationTest, Table3OnChipCpiNearPaper)
{
    WorkloadProfile p = profile();
    SyntheticTraceGenerator gen(p, 42, 0);
    Trace trace = gen.generate(kWarmup + kMeasure);
    CpiModel::Breakdown bd = CpiModel().evaluate(trace, kWarmup);
    // Within ~20% of the paper's CPIon-chip.
    EXPECT_NEAR(bd.total(), p.cpiOnChip, 0.20 * p.cpiOnChip + 0.05);
}

TEST_P(CalibrationTest, Table2OverlapInBand)
{
    static const double paper[] = {0.09, 0.12, 0.06, 0.22};
    RunSpec spec;
    spec.profile = profile();
    spec.config = SimConfig::defaults();
    spec.warmupInsts = kWarmup;
    spec.measureInsts = 600 * 1000;
    RunOutput out = test::runMaterialized(spec);
    double target = paper[GetParam()];
    // The fraction is noisy at this scale; require the right band.
    EXPECT_GT(out.sim.overlappedStoreFraction(), target * 0.25);
    EXPECT_LT(out.sim.overlappedStoreFraction(), target * 2.5 + 0.03);
}

INSTANTIATE_TEST_SUITE_P(AllWorkloads, CalibrationTest,
                         testing::Range(0, 4), workloadName);

TEST(Runner, Deterministic)
{
    RunSpec spec;
    spec.profile = WorkloadProfile::testTiny();
    spec.config = SimConfig::defaults();
    spec.warmupInsts = 20000;
    spec.measureInsts = 60000;

    RunOutput a = test::runMaterialized(spec);
    RunOutput b = test::runMaterialized(spec);
    EXPECT_EQ(a.sim.epochs, b.sim.epochs);
    EXPECT_EQ(a.sim.missLoads, b.sim.missLoads);
    EXPECT_EQ(a.sim.missStores, b.sim.missStores);
    EXPECT_EQ(a.sim.overlappedStores, b.sim.overlappedStores);
    for (unsigned i = 0; i < kNumTermConds; ++i)
        EXPECT_EQ(a.sim.termCounts[i], b.sim.termCounts[i]);
}

TEST(Runner, SeedChangesResults)
{
    RunSpec spec;
    spec.profile = WorkloadProfile::testTiny();
    spec.config = SimConfig::defaults();
    spec.warmupInsts = 20000;
    spec.measureInsts = 60000;
    RunOutput a = test::runMaterialized(spec);
    spec.seed = 43;
    RunOutput b = test::runMaterialized(spec);
    EXPECT_NE(a.sim.epochMisses, b.sim.epochMisses);
}

TEST(Runner, MeasuresRequestedInstructionCount)
{
    RunSpec spec;
    spec.profile = WorkloadProfile::testTiny();
    spec.config = SimConfig::defaults();
    spec.warmupInsts = 10000;
    spec.measureInsts = 50000;
    RunOutput out = test::runMaterialized(spec);
    // The generator may overshoot by at most one critical section.
    EXPECT_GE(out.sim.instructions, 50000u);
    EXPECT_LE(out.sim.instructions, 50100u);
}

TEST(Runner, WeakConsistencyRewritesTrace)
{
    RunSpec spec;
    spec.profile = WorkloadProfile::testTiny();
    spec.config = SimConfig::wc1();
    spec.warmupInsts = 20000;
    spec.measureInsts = 60000;
    RunOutput wc = test::runMaterialized(spec);
    // WC runs see the lwarx/stwcx/isync/lwsync rendition, which has
    // strictly more records per lock, but still executes.
    EXPECT_GT(wc.sim.instructions, 0u);
    EXPECT_GT(wc.sim.epochs, 0u);
}

TEST(Runner, SmacReducesEpochs)
{
    RunSpec base;
    base.profile = WorkloadProfile::database();
    base.config = SimConfig::defaults();
    base.config.storePrefetch = StorePrefetch::None;
    base.warmupInsts = 500 * 1000;
    base.measureInsts = 400 * 1000;
    base.numChips = 1;
    RunOutput no_smac = test::runMaterialized(base);

    RunSpec with = base;
    SmacConfig smac;
    smac.entries = 128 * 1024; // covers 256MB > store-miss region
    with.smac = smac;
    RunOutput yes_smac = test::runMaterialized(with);

    EXPECT_LT(yes_smac.sim.epochs, no_smac.sim.epochs);
    EXPECT_GT(yes_smac.sim.smacAcceleratedStores, 0u);
}

TEST(Runner, SmacCoherenceStatsPopulated)
{
    RunSpec spec;
    spec.profile = WorkloadProfile::database();
    spec.config = SimConfig::defaults();
    spec.warmupInsts = 500 * 1000;
    spec.measureInsts = 300 * 1000;
    spec.numChips = 2;
    spec.peerTraffic = true;
    SmacConfig smac;
    smac.entries = 64 * 1024;
    spec.smac = smac;

    RunOutput out = test::runMaterialized(spec);
    EXPECT_GT(out.peerInstructions, 0u);
    EXPECT_GT(out.smacProbeHits + out.smacProbeHitInvalidated +
                  out.smacCoherenceInvalidates,
              0u);
    EXPECT_GE(out.smacInvalidatesPer1000(), 0.0);
    EXPECT_GE(out.smacHitInvalidPct(), 0.0);
    EXPECT_LE(out.smacHitInvalidPct(), 100.0);
}

TEST(Runner, MoreNodesMoreInvalidates)
{
    // SMAC entries only form once the shared L2 cycles, so this needs
    // the sibling core and a longer horizon (cf. bench/fig6).
    auto run_nodes = [](uint32_t n) {
        RunSpec spec;
        spec.profile = WorkloadProfile::database();
        spec.config = SimConfig::defaults();
        spec.config.storePrefetch = StorePrefetch::None;
        spec.warmupInsts = 2000 * 1000;
        spec.measureInsts = 1000 * 1000;
        spec.numChips = n;
        spec.peerTraffic = true;
        spec.siblingCore = true;
        SmacConfig smac;
        smac.entries = 128 * 1024;
        spec.smac = smac;
        return test::runMaterialized(spec);
    };
    RunOutput two = run_nodes(2);
    RunOutput four = run_nodes(4);
    EXPECT_GT(two.smacCoherenceInvalidates, 0u);
    EXPECT_GT(four.smacCoherenceInvalidates,
              two.smacCoherenceInvalidates);
}

TEST(Runner, MoesiProtocolPassesThrough)
{
    RunSpec spec;
    spec.profile = WorkloadProfile::testTiny();
    spec.config = SimConfig::defaults();
    spec.warmupInsts = 20000;
    spec.measureInsts = 40000;
    spec.numChips = 2;
    spec.peerTraffic = true;
    spec.protocol = CoherenceProtocol::Moesi;
    RunOutput out = test::runMaterialized(spec);
    EXPECT_GT(out.sim.epochs, 0u);
}

TEST(Runner, HierarchyOverridePlumbsThrough)
{
    RunSpec spec;
    spec.profile = WorkloadProfile::testTiny();
    spec.config = SimConfig::defaults();
    spec.warmupInsts = 20000;
    spec.measureInsts = 60000;

    RunOutput paper = test::runMaterialized(spec);

    // A 64KB direct-mapped-ish L2 must miss far more than the paper's
    // 2MB default on the same trace.
    HierarchyConfig tiny;
    tiny.l2.sizeBytes = 64 * 1024;
    tiny.l2.assoc = 2;
    spec.hierarchy = tiny;
    RunOutput small = test::runMaterialized(spec);

    EXPECT_GT(small.sim.missLoads + small.sim.missStores,
              paper.sim.missLoads + paper.sim.missStores);
    // Unset optional reproduces the default exactly.
    spec.hierarchy.reset();
    RunOutput again = test::runMaterialized(spec);
    EXPECT_EQ(again.sim.missLoads, paper.sim.missLoads);
    EXPECT_EQ(again.sim.missStores, paper.sim.missStores);
    EXPECT_EQ(again.sim.epochs, paper.sim.epochs);
}

TEST(Runner, PrefillCanBeDisabled)
{
    RunSpec spec;
    spec.profile = WorkloadProfile::testTiny();
    spec.config = SimConfig::defaults();
    spec.warmupInsts = 20000;
    spec.measureInsts = 40000;
    spec.prefillL2 = false;
    RunOutput cold = test::runMaterialized(spec);
    spec.prefillL2 = true;
    RunOutput full = test::runMaterialized(spec);
    // A pre-filled L2 can only raise conflict/capacity pressure.
    EXPECT_GE(full.sim.missLoads + full.sim.missStores + 5,
              cold.sim.missLoads + cold.sim.missStores);
}

} // namespace
} // namespace storemlp
