/**
 * @file
 * Unit tests for the deterministic PCG32 RNG.
 */

#include <gtest/gtest.h>

#include "trace/rng.hh"

namespace storemlp
{
namespace
{

TEST(Pcg32, DeterministicForSameSeed)
{
    Pcg32 a(123), b(123);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Pcg32, DifferentSeedsDiffer)
{
    Pcg32 a(1), b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i) {
        if (a.next() == b.next())
            ++same;
    }
    EXPECT_LT(same, 4);
}

TEST(Pcg32, DifferentStreamsDiffer)
{
    Pcg32 a(7, 1), b(7, 2);
    int same = 0;
    for (int i = 0; i < 64; ++i) {
        if (a.next() == b.next())
            ++same;
    }
    EXPECT_LT(same, 4);
}

TEST(Pcg32, BelowRespectsBound)
{
    Pcg32 r(42);
    for (int i = 0; i < 10000; ++i)
        EXPECT_LT(r.below(17), 17u);
}

TEST(Pcg32, Below64RespectsBound)
{
    Pcg32 r(42);
    uint64_t bound = 1234567891011ULL;
    for (int i = 0; i < 10000; ++i)
        EXPECT_LT(r.below64(bound), bound);
}

TEST(Pcg32, Below64TrivialBounds)
{
    Pcg32 r(42);
    EXPECT_EQ(r.below64(0), 0u);
    EXPECT_EQ(r.below64(1), 0u);
}

TEST(Pcg32, UniformInUnitInterval)
{
    Pcg32 r(42);
    for (int i = 0; i < 10000; ++i) {
        double u = r.uniform();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
    }
}

TEST(Pcg32, UniformMeanNearHalf)
{
    Pcg32 r(42);
    double sum = 0.0;
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        sum += r.uniform();
    EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Pcg32, ChanceExtremes)
{
    Pcg32 r(42);
    for (int i = 0; i < 1000; ++i) {
        EXPECT_FALSE(r.chance(0.0));
        EXPECT_TRUE(r.chance(1.0));
    }
}

TEST(Pcg32, ChanceFrequency)
{
    Pcg32 r(42);
    int hits = 0;
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        hits += r.chance(0.25) ? 1 : 0;
    EXPECT_NEAR(static_cast<double>(hits) / n, 0.25, 0.01);
}

TEST(Pcg32, GeometricMean)
{
    Pcg32 r(42);
    double sum = 0.0;
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        sum += r.geometric(0.5);
    // Mean of geometric >= 1 with continuation 0.5 is 2.
    EXPECT_NEAR(sum / n, 2.0, 0.05);
}

TEST(Pcg32, GeometricRespectsCap)
{
    Pcg32 r(42);
    for (int i = 0; i < 1000; ++i)
        EXPECT_LE(r.geometric(0.99, 8), 8u);
}

TEST(Pcg32, GeometricAtLeastOne)
{
    Pcg32 r(42);
    for (int i = 0; i < 1000; ++i)
        EXPECT_GE(r.geometric(0.0), 1u);
}

} // namespace
} // namespace storemlp
