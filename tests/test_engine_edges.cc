/**
 * @file
 * Engine edge cases: degenerate traces, minimal structure sizes,
 * extreme configurations, fence-heavy weak-consistency patterns, and
 * atomics to missing lock words.
 */

#include <gtest/gtest.h>

#include "sim_test_util.hh"
#include "trace/generator.hh"

namespace storemlp
{
namespace
{

using namespace storemlp::test;

TEST(EngineEdges, EmptyTrace)
{
    SimRig rig;
    SimResult res = rig.run(Trace(), SimConfig::defaults());
    EXPECT_EQ(res.instructions, 0u);
    EXPECT_EQ(res.epochs, 0u);
}

TEST(EngineEdges, SingleInstruction)
{
    SimRig rig;
    SimResult res =
        rig.run(TraceBuilder().alu(1, 2, 3).build(),
                SimConfig::defaults());
    EXPECT_EQ(res.instructions, 1u);
    EXPECT_EQ(res.epochs, 0u);
}

TEST(EngineEdges, AllMembarTrace)
{
    TraceBuilder b;
    for (int i = 0; i < 200; ++i)
        b.membar();
    SimRig rig;
    SimResult res = rig.run(b.build(), SimConfig::defaults());
    // Nothing misses: serializing instructions alone cost no epochs.
    EXPECT_EQ(res.epochs, 0u);
    EXPECT_EQ(res.instructions, 200u);
}

TEST(EngineEdges, AllLwsyncTraceUnderWc)
{
    TraceBuilder b;
    for (int i = 0; i < 100; ++i) {
        b.store(warmAddr(i % 8), 2);
        b.lwsync();
    }
    SimConfig wc = SimConfig::defaults();
    wc.memoryModel = ModelDescriptor::wc();
    SimRig rig;
    SimResult res = rig.run(b.build(), wc);
    EXPECT_EQ(res.epochs, 0u); // hit stores drain through fences
}

TEST(EngineEdges, MinimalQueues)
{
    // SB=1, SQ=1: everything still retires correctly.
    TraceBuilder b;
    for (int i = 0; i < 50; ++i)
        b.store(warmAddr(i % 4), 2);
    b.store(missAddr(0), 3);
    fillers(b, 700);

    SimConfig cfg = SimConfig::defaults();
    cfg.storeBufferSize = 1;
    cfg.storeQueueSize = 1;
    SimRig rig;
    SimResult res = rig.run(b.build(), cfg);
    EXPECT_EQ(res.missStores, 1u);
    // The lone miss resolves quietly (filler-only aftermath).
    EXPECT_EQ(res.epochs, 0u);
}

TEST(EngineEdges, CasaToMissingLockWord)
{
    // A cold lock word: the casa's own load is the epoch trigger.
    TraceBuilder b;
    b.casa(missAddr(0), 3);
    b.store(missAddr(0), 4); // release pairs it as a lock
    fillers(b, 100);

    SimRig rig;
    SimResult res = rig.run(b.build(), SimConfig::defaults());
    EXPECT_EQ(res.missLoads, 1u); // the casa's load half
    EXPECT_GE(res.epochs, 1u);
}

TEST(EngineEdges, TinyRobStillProgresses)
{
    TraceBuilder b;
    b.load(missAddr(0), 5);
    fillers(b, 200);
    SimConfig cfg = SimConfig::defaults();
    cfg.robSize = 4;
    cfg.issueWindowSize = 4;
    SimRig rig;
    SimResult res = rig.run(b.build(), cfg);
    EXPECT_EQ(res.epochs, 1u);
    EXPECT_EQ(res.termCounts[static_cast<unsigned>(
                  TermCond::WindowFull)],
              1u);
}

TEST(EngineEdges, ZeroMissLatencyDegenerates)
{
    // latency 0: every generation resolves instantly; no epochs.
    TraceBuilder b;
    b.load(missAddr(0), 5);
    fillers(b, 100);
    SimConfig cfg = SimConfig::defaults();
    cfg.missLatency = 0;
    SimRig rig;
    SimResult res = rig.run(b.build(), cfg);
    EXPECT_EQ(res.epochs, 0u);
}

TEST(EngineEdges, BackToBackSerializingWithMisses)
{
    TraceBuilder b;
    for (int i = 0; i < 5; ++i) {
        b.store(missAddr(i), 2);
        b.membar();
    }
    fillers(b, 50);
    SimRig rig;
    SimConfig cfg = SimConfig::defaults();
    cfg.storePrefetch = StorePrefetch::None;
    SimResult res = rig.run(b.build(), cfg);
    // Each store serializes against its own membar: five epochs.
    EXPECT_EQ(res.epochs, 5u);
    EXPECT_EQ(res.termCounts[static_cast<unsigned>(
                  TermCond::StoreSerialize)],
              5u);
}

TEST(EngineEdges, WcFenceChainsCommitInOrder)
{
    // miss / fence / miss / fence: fences force serial commit under
    // WC even with prefetching.
    TraceBuilder b;
    b.store(missAddr(0), 2);
    b.lwsync();
    b.store(missAddr(1), 3);
    b.lwsync();
    b.store(missAddr(2), 4);
    b.membar(); // expose
    fillers(b, 50);

    SimConfig wc = SimConfig::defaults();
    wc.memoryModel = ModelDescriptor::wc();
    wc.storePrefetch = StorePrefetch::AtRetire;
    SimRig rig;
    SimResult res = rig.run(b.build(), wc);
    // Prefetch overlaps the latencies, but commits stay ordered;
    // the final membar drains everything in one epoch.
    EXPECT_GE(res.epochs, 1u);
    EXPECT_EQ(res.missStores, 3u);
}

TEST(EngineEdges, StoreDataDependsOnMissingLoad)
{
    // The store's DATA comes from a missing load: it cannot retire
    // until the load resolves, then commits (its own line is warm).
    TraceBuilder b;
    b.load(missAddr(0), 5);
    b.store(warmAddr(0), 5); // data = r5
    fillers(b, 100);
    SimRig rig;
    SimResult res = rig.run(b.build(), SimConfig::defaults());
    EXPECT_EQ(res.epochs, 1u);
    EXPECT_EQ(res.missStores, 0u);
}

TEST(EngineEdges, StoreAddressDependsOnMissingLoad)
{
    // Address-dependent store: with Sp2 the prefetch cannot fire
    // until the address resolves; the store's miss forms its own
    // epoch exposed by a membar.
    TraceBuilder b;
    b.load(missAddr(0), 5);
    TraceRecord st;
    b.store(missAddr(1), 6, 5); // base register = missing load's dst
    b.membar();
    fillers(b, 100);
    (void)st;

    SimConfig cfg = SimConfig::defaults();
    cfg.storePrefetch = StorePrefetch::AtExecute;
    SimRig rig;
    SimResult res = rig.run(b.build(), cfg);
    EXPECT_EQ(res.epochs, 2u);
    EXPECT_EQ(res.missStores, 1u);
}

TEST(EngineEdges, RerunAfterTakeResultContinues)
{
    // process() can be called after takeResult(): state persists.
    Trace t1 = TraceBuilder().load(missAddr(0), 5).build();
    TraceBuilder b2;
    fillers(b2, 100);
    Trace t2 = b2.build();

    SimRig rig;
    rig.locks = LockDetector().analyze(t1);
    rig.warmFor(t1);
    MlpSimulator sim(SimConfig::defaults(), rig.chip, &rig.locks);
    sim.process(t1, 0, t1.size(), true);
    SimResult first = sim.takeResult();
    sim.process(t2, 0, t2.size(), true);
    SimResult both = sim.takeResult();
    EXPECT_GE(both.instructions, first.instructions + 100);
}

TEST(EngineEdges, ChunkedProcessingMatchesSingleRun)
{
    // The dual-core runner interleaves cores at a quantum; that is
    // only sound if chunked process() calls are equivalent to one
    // continuous run for a single core.
    WorkloadProfile p = WorkloadProfile::testTiny();
    Trace t = SyntheticTraceGenerator(p, 5).generate(60000);
    LockAnalysis locks = LockDetector().analyze(t);

    auto run_chunked = [&](uint64_t chunk) {
        ChipNode chip(HierarchyConfig{}, 0);
        SimConfig cfg = SimConfig::defaults();
        MlpSimulator sim(cfg, chip, &locks);
        for (uint64_t pos = 0; pos < t.size(); pos += chunk)
            sim.process(t, pos, std::min<uint64_t>(pos + chunk,
                                                   t.size()),
                        true);
        return sim.takeResult();
    };

    SimResult whole = run_chunked(t.size());
    SimResult chunked = run_chunked(257); // odd chunk on purpose
    EXPECT_EQ(whole.epochs, chunked.epochs);
    EXPECT_EQ(whole.epochMisses, chunked.epochMisses);
    EXPECT_EQ(whole.missLoads, chunked.missLoads);
    EXPECT_EQ(whole.missStores, chunked.missStores);
    EXPECT_EQ(whole.overlappedStores, chunked.overlappedStores);
    for (unsigned i = 0; i < kNumTermConds; ++i)
        EXPECT_EQ(whole.termCounts[i], chunked.termCounts[i]);
}

TEST(EngineEdges, TmUnderWeakConsistency)
{
    // TM composes with the WC model: elided WC lock idioms.
    uint64_t lock = warmAddr(0);
    TraceBuilder b;
    b.store(missAddr(0), 2);
    b.loadLocked(lock, 3);
    b.storeCond(lock, 3);
    b.isync();
    b.alu();
    b.lwsync();
    b.store(lock, 4);
    fillers(b, 600);

    SimConfig cfg = SimConfig::defaults();
    cfg.memoryModel = ModelDescriptor::wc();
    cfg.tm.enabled = true;
    cfg.tm.abortProb = 0.0;
    SimRig rig;
    SimResult res = rig.run(b.build(), cfg);
    // Fully elided: the lone store miss overlaps quietly.
    EXPECT_EQ(res.epochs, 0u);
}

TEST(EngineEdges, HighCpiShortensScoutReach)
{
    // At high on-chip CPI the scout's instruction budget shrinks:
    // a distant miss falls out of reach.
    auto build = [] {
        TraceBuilder b;
        b.load(missAddr(0), 5);
        fillers(b, 300);
        b.load(missAddr(1), 6);
        fillers(b, 100);
        return b.build();
    };
    SimConfig fast = SimConfig::defaults().withScout(ScoutMode::Hws0);
    fast.cpiOnChip = 1.0; // budget ~500 insts: reaches the 2nd load
    SimRig rig1;
    SimResult far = rig1.run(build(), fast);
    EXPECT_EQ(far.epochs, 1u);

    SimConfig slow = fast;
    slow.cpiOnChip = 4.0; // budget ~125 insts: cannot reach it
    SimRig rig2;
    SimResult near = rig2.run(build(), slow);
    EXPECT_EQ(near.epochs, 2u);
}

} // namespace
} // namespace storemlp
